package phom

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The exported-API golden test: a snapshot of every exported identifier
// of the phom package (with full signatures) lives in
// testdata/api.golden, and any drift — an accidental rename, a changed
// signature, a silently dropped symbol — fails CI until the snapshot is
// regenerated deliberately:
//
//	go test . -run TestExportedAPIGolden -update

var updateGolden = flag.Bool("update", false, "rewrite testdata/api.golden from the current exported API")

const apiGoldenPath = "testdata/api.golden"

// exportedAPI renders the exported surface of the package in this
// directory, one declaration per line, sorted.
func exportedAPI(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["phom"]
	if !ok {
		t.Fatalf("package phom not found (got %v)", pkgs)
	}
	var lines []string
	cfg := printer.Config{Mode: printer.RawFormat}
	render := func(node any) string {
		var buf bytes.Buffer
		if err := cfg.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		// Collapse internal newlines/tabs so each decl is one line.
		return strings.Join(strings.Fields(buf.String()), " ")
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue // the package exports no methods of its own
				}
				lines = append(lines, render(&ast.FuncDecl{Name: d.Name, Type: d.Type}))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() {
							lines = append(lines, "type "+render(&ast.TypeSpec{
								Name: sp.Name, Assign: sp.Assign, Type: sp.Type,
							}))
						}
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, name := range sp.Names {
							if name.IsExported() {
								lines = append(lines, fmt.Sprintf("%s %s", kind, name.Name))
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func TestExportedAPIGolden(t *testing.T) {
	got := strings.Join(exportedAPI(t), "\n") + "\n"
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(apiGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d exported declarations)", apiGoldenPath, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(apiGoldenPath)
	if err != nil {
		t.Fatalf("%v — regenerate with: go test . -run TestExportedAPIGolden -update", err)
	}
	if got != string(want) {
		t.Fatalf("exported API drifted from %s.\n"+
			"If the change is intentional, regenerate with: go test . -run TestExportedAPIGolden -update\n\n"+
			"--- got ---\n%s\n--- want ---\n%s", apiGoldenPath, got, want)
	}
}

// TestExportedAPIMentionsV2Essentials guards the golden file itself: if
// someone regenerates it after accidentally deleting the v2 surface,
// this still fails.
func TestExportedAPIMentionsV2Essentials(t *testing.T) {
	api := strings.Join(exportedAPI(t), "\n")
	for _, sym := range []string{
		"func SolveContext(ctx context.Context, req Request) (*Result, error)",
		"func CompileContext(ctx context.Context, req Request) (*Plan, error)",
		"func NewRequest(query *Graph, instance *ProbGraph, opts ...RequestOption) Request",
		"func ParseRat(s string) (*big.Rat, error)",
		"var ErrCanceled",
		"var ErrBadInput",
		"type Request = engine.Job",
		"type StreamResult = engine.StreamResult",
	} {
		if !strings.Contains(api, sym) {
			t.Errorf("exported API is missing %q", sym)
		}
	}
}
