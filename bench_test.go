// Benchmarks regenerating every table and figure of the paper; see the
// experiment index (E1–E21) and the recorded results in EXPERIMENTS.md.
// Run with:
//
//	go test -bench=. -benchmem
//
// PTIME cells are benchmarked by running the dispatched polynomial-time
// algorithm on seeded random instances of the cell; #P-hard cells by
// executing the paper's reduction and the exponential exact baseline.
package phom

import (
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/betadnf"
	"phom/internal/core"
	"phom/internal/counting"
	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/lineage"
	"phom/internal/reductions"
	"phom/internal/treeauto"
	"phom/internal/xprop"
)

var sink *big.Rat // prevents dead-code elimination

// solveCell benchmarks the dispatched solver on one classification cell.
func solveCell(b *testing.B, qc, ic graph.Class, labeled bool, qSize, iSize int) {
	b.Helper()
	labels := []graph.Label{graph.Unlabeled}
	if labeled {
		labels = []graph.Label{"R", "S"}
	}
	r := rand.New(rand.NewSource(1))
	q := gen.RandInClass(r, qc, qSize, labels)
	h := gen.RandProb(r, gen.RandInClass(r, ic, iSize, labels), 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(q, h, &core.Options{DisableFallback: true})
		if err != nil {
			b.Fatal(err)
		}
		sink = res.Prob
	}
}

// bruteCell benchmarks the exponential baseline on a hard cell.
func bruteCell(b *testing.B, qc, ic graph.Class, labeled bool, iSize int) {
	b.Helper()
	labels := []graph.Label{graph.Unlabeled}
	if labeled {
		labels = []graph.Label{"R", "S"}
	}
	r := rand.New(rand.NewSource(1))
	q := gen.RandInClass(r, qc, 4, labels)
	h := gen.RandProb(r, gen.RandInClass(r, ic, iSize, labels), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.BruteForceLimit(q, h, 0)
		if err != nil {
			b.Fatal(err)
		}
		sink = p
	}
}

// planPair compiles one representative structural plan (Prop 5.4: the
// circuit-backed cell, where the interpreter-vs-tree contrast is
// largest) and a reweighted probability vector for the IR benchmarks.
func planPair(b *testing.B) (*core.CompiledPlan, []*big.Rat) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	un := []graph.Label{graph.Unlabeled}
	q := gen.RandDWT(r, 4, un)
	h := gen.RandProb(r, gen.RandInClass(r, graph.ClassUPT, 128, un), 0.5)
	cp, err := core.Compile(q, h, &core.Options{DisableFallback: true})
	if err != nil {
		b.Fatal(err)
	}
	probs := make([]*big.Rat, h.G.NumEdges())
	for i := range probs {
		probs[i] = big.NewRat(int64(1+r.Intn(16)), 17)
	}
	return cp, probs
}

// ---- E21: the flattened evaluation IR ----

func BenchmarkE21_ProgramExec(b *testing.B) {
	cp, probs := planPair(b)
	prog := cp.Program()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := prog.Exec(probs)
		if err != nil {
			b.Fatal(err)
		}
		sink = p
	}
}

func BenchmarkE21_PlanTreeEvaluate(b *testing.B) {
	cp, probs := planPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cp.EvaluateTree(probs)
		if err != nil {
			b.Fatal(err)
		}
		sink = res.Prob
	}
}

// ---- E1: Table 1 (unlabeled, disconnected queries) ----

func BenchmarkTable1_U1WP_on_PT_ptime(b *testing.B) {
	solveCell(b, graph.ClassU1WP, graph.ClassPT, false, 6, 512)
}
func BenchmarkTable1_UDWT_on_PT_ptime(b *testing.B) {
	solveCell(b, graph.ClassUDWT, graph.ClassPT, false, 8, 512)
}
func BenchmarkTable1_All_on_DWT_ptime(b *testing.B) {
	solveCell(b, graph.ClassAll, graph.ClassDWT, false, 10, 512)
}
func BenchmarkTable1_U2WP_on_2WP_hard(b *testing.B) {
	bruteCell(b, graph.ClassU2WP, graph.Class2WP, false, 12)
}
func BenchmarkTable1_U1WP_on_Conn_hard(b *testing.B) {
	bruteCell(b, graph.ClassU1WP, graph.ClassConnected, false, 12)
}

// ---- E2: Table 2 (labeled, connected queries) ----

func BenchmarkTable2_1WP_on_DWT_ptime(b *testing.B) {
	solveCell(b, graph.Class1WP, graph.ClassDWT, true, 5, 512)
}
func BenchmarkTable2_Conn_on_2WP_ptime(b *testing.B) {
	solveCell(b, graph.ClassConnected, graph.Class2WP, true, 5, 512)
}
func BenchmarkTable2_1WP_on_PT_hard(b *testing.B) {
	bruteCell(b, graph.Class1WP, graph.ClassPT, true, 12)
}
func BenchmarkTable2_2WP_on_DWT_hard(b *testing.B) {
	bruteCell(b, graph.Class2WP, graph.ClassDWT, true, 12)
}
func BenchmarkTable2_DWT_on_DWT_hard(b *testing.B) {
	bruteCell(b, graph.ClassDWT, graph.ClassDWT, true, 12)
}

// ---- E3: Table 3 (unlabeled, connected queries) ----

func BenchmarkTable3_1WP_on_PT_ptime(b *testing.B) {
	solveCell(b, graph.Class1WP, graph.ClassPT, false, 6, 512)
}
func BenchmarkTable3_DWT_on_PT_ptime(b *testing.B) {
	solveCell(b, graph.ClassDWT, graph.ClassPT, false, 8, 512)
}
func BenchmarkTable3_Conn_on_DWT_ptime(b *testing.B) {
	solveCell(b, graph.ClassConnected, graph.ClassDWT, false, 8, 512)
}
func BenchmarkTable3_Conn_on_2WP_ptime(b *testing.B) {
	solveCell(b, graph.ClassConnected, graph.Class2WP, false, 5, 512)
}
func BenchmarkTable3_2WP_on_PT_hard(b *testing.B) {
	bruteCell(b, graph.Class2WP, graph.ClassPT, false, 12)
}

// ---- E4: Figure 1 + Example 2.2 ----

func BenchmarkFig1_Example22(b *testing.B) {
	q := New(4)
	q.MustAddEdge(0, 1, "R")
	q.MustAddEdge(1, 2, "S")
	q.MustAddEdge(3, 2, "S")
	g := New(4)
	g.MustAddEdge(0, 1, "R")
	g.MustAddEdge(0, 2, "R")
	g.MustAddEdge(1, 2, "R")
	g.MustAddEdge(1, 3, "R")
	g.MustAddEdge(0, 3, "R")
	g.MustAddEdge(2, 3, "S")
	h := NewProbGraph(g)
	h.MustSetEdgeProb(0, 2, Rat("0.1"))
	h.MustSetEdgeProb(1, 2, Rat("0.8"))
	h.MustSetEdgeProb(1, 3, Rat("0.1"))
	h.MustSetEdgeProb(0, 3, Rat("0.05"))
	h.MustSetEdgeProb(2, 3, Rat("0.7"))
	want := Rat("0.574")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := BruteForce(q, h)
		if p.Cmp(want) != 0 {
			b.Fatalf("Example 2.2 = %s, want 0.574", p.RatString())
		}
		sink = p
	}
}

// ---- E5: Figure 2 (inclusion lattice) ----

func BenchmarkFig2_Inclusions(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	graphs := make([]*Graph, 64)
	for i := range graphs {
		graphs[i] = gen.RandInClass(r, AllClasses[r.Intn(len(AllClasses))], 1+r.Intn(8), []Label{"R", "S"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graphs[i%len(graphs)]
		for _, a := range AllClasses {
			for _, bb := range AllClasses {
				if ClassIncluded(a, bb) && g.InClass(a) && !g.InClass(bb) {
					b.Fatal("inclusion lattice violated")
				}
			}
		}
	}
}

// ---- E6: Figures 3/4 (class examples) ----

func BenchmarkFig34_Classes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig3top := Path1WP("R", "S", "S", "T")
		fig3bot := Path2WP(Fwd("R"), Bwd("S"), Fwd("S"), Bwd("T"), Fwd("R"))
		if !fig3top.Is1WP() || !fig3bot.Is2WP() {
			b.Fatal("Figure 3 shapes misclassified")
		}
	}
}

// ---- E7: Figure 5 + Prop 3.3 (#Bipartite-Edge-Cover) ----

func BenchmarkFig5_EdgeCoverReduction(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	bg := gen.RandBipartite(r, 3, 3, 8)
	want, err := bg.CountEdgeCovers()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red, err := reductions.EdgeCoverLabeled(bg)
		if err != nil {
			b.Fatal(err)
		}
		p := BruteForce(red.Query, red.Instance)
		if red.CountFromProb(p).Cmp(want) != 0 {
			b.Fatal("edge-cover identity violated")
		}
		sink = p
	}
}

// ---- E8: Figure 6 (graded DAGs) ----

func BenchmarkFig6_GradedDAG(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g := gen.RandGradedDAG(r, 2048, 6000, 6, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.DifferenceOfLevels(); !ok {
			b.Fatal("constructed graded DAG not graded")
		}
	}
}

// ---- E9/E10: Figures 7/8 + Props 4.1/5.6 (#PP2DNF) ----

func benchPP2DNF(b *testing.B, build func(*counting.PP2DNF) (*reductions.Reduction, error)) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	f := gen.RandPP2DNF(r, 4, 4, 6)
	want, err := f.CountSatisfying()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red, err := build(f)
		if err != nil {
			b.Fatal(err)
		}
		p := BruteForce(red.Query, red.Instance)
		if red.CountFromProb(p).Cmp(want) != 0 {
			b.Fatal("PP2DNF identity violated")
		}
		sink = p
	}
}

func BenchmarkFig7_PP2DNFLabeled(b *testing.B)   { benchPP2DNF(b, reductions.PP2DNFLabeled) }
func BenchmarkFig8_PP2DNFUnlabeled(b *testing.B) { benchPP2DNF(b, reductions.PP2DNFUnlabeled) }

// ---- E11: Prop 3.4 (label simulation) ----

func BenchmarkProp34_LabelSimulation(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	bg := gen.RandBipartite(r, 2, 2, 4)
	want, err := bg.CountEdgeCovers()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red, err := reductions.EdgeCoverUnlabeled(bg)
		if err != nil {
			b.Fatal(err)
		}
		p := BruteForce(red.Query, red.Instance)
		if red.CountFromProb(p).Cmp(want) != 0 {
			b.Fatal("unlabeled edge-cover identity violated")
		}
		sink = p
	}
}

// ---- E12–E17: per-proposition scaling ----

func benchScaling(b *testing.B, qc, ic graph.Class, labeled bool, qSize int) {
	b.Helper()
	for _, n := range []int{128, 512, 2048} {
		n := n
		b.Run(sizeName(n), func(b *testing.B) {
			solveCell(b, qc, ic, labeled, qSize, n)
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 128:
		return "n=128"
	case 512:
		return "n=512"
	default:
		return "n=2048"
	}
}

func BenchmarkProp36_AllOnDWT(b *testing.B) {
	benchScaling(b, graph.ClassAll, graph.ClassUDWT, false, 10)
}
func BenchmarkProp410_PathOnTree(b *testing.B) {
	benchScaling(b, graph.Class1WP, graph.ClassDWT, true, 5)
}
func BenchmarkProp411_ConnectedOn2WP(b *testing.B) {
	benchScaling(b, graph.ClassConnected, graph.Class2WP, true, 5)
}
func BenchmarkProp54_PathOnPolytree(b *testing.B) {
	benchScaling(b, graph.Class1WP, graph.ClassPT, false, 6)
}
func BenchmarkProp55_TreeQueryNormalize(b *testing.B) {
	benchScaling(b, graph.ClassDWT, graph.ClassPT, false, 10)
}
func BenchmarkLemma37_DisconnectedInstances(b *testing.B) {
	benchScaling(b, graph.Class1WP, graph.ClassUPT, false, 5)
}

// ---- E18: ablations ----

// BenchmarkAblation_DDNNFPipeline vs BenchmarkAblation_DirectDP: the cost
// of materializing the d-DNNF circuit against the direct state-
// distribution DP of Proposition 5.4.
func ablationPolytree() *graph.ProbGraph {
	r := rand.New(rand.NewSource(1))
	return gen.RandProb(r, gen.RandPolytree(r, 512, nil), 0.5)
}

func BenchmarkAblation_DDNNFPipeline(b *testing.B) {
	h := ablationPolytree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := treeauto.PathProbPolytree(h, 6)
		if err != nil {
			b.Fatal(err)
		}
		sink = p
	}
}

func BenchmarkAblation_DirectDP(b *testing.B) {
	h := ablationPolytree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := treeauto.PathProbPolytreeDirect(h, 6)
		if err != nil {
			b.Fatal(err)
		}
		sink = p
	}
}

// BenchmarkAblation_BruteForce vs Lineage: the two exponential baselines
// on a sparse-match instance (16 coins).
func ablationSparse() (*Graph, *graph.ProbGraph) {
	r := rand.New(rand.NewSource(1))
	q := gen.Rand1WP(r, 4, []Label{"R", "S"})
	h := gen.RandProb(r, gen.RandDWT(r, 17, []Label{"R", "S"}), 0)
	return q, h
}

func BenchmarkAblation_BruteForce(b *testing.B) {
	q, h := ablationSparse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.BruteForceLimit(q, h, 0)
		if err != nil {
			b.Fatal(err)
		}
		sink = p
	}
}

func BenchmarkAblation_LineageShannon(b *testing.B) {
	q, h := ablationSparse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.LineageShannon(q, h, 0)
		if err != nil {
			b.Fatal(err)
		}
		sink = p
	}
}

// BenchmarkAblation_ACHom vs Backtracking: the X-property homomorphism
// test against generic backtracking on 2WP instances.
func ablationXprop() (*Graph, *Graph) {
	r := rand.New(rand.NewSource(1))
	q := gen.RandInClass(r, graph.ClassConnected, 6, []Label{"R", "S"})
	h := gen.Rand2WP(r, 256, []Label{"R", "S"})
	return q, h
}

func BenchmarkAblation_ACHom(b *testing.B) {
	q, h := ablationXprop()
	order := xprop.IdentityOrder(h.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = xprop.HasHomomorphism(q, h, order)
	}
}

func BenchmarkAblation_BacktrackingHom(b *testing.B) {
	q, h := ablationXprop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HasHomomorphism(q, h)
	}
}

// BenchmarkAblation_RatDP vs FloatDP: exact rational vs float64
// arithmetic in the Proposition 4.10 chain DP.
func ablationChain() (*betadnf.ChainSystem, []*big.Rat, []float64) {
	r := rand.New(rand.NewSource(1))
	q := gen.Rand1WP(r, 5, []Label{"R", "S"})
	h := gen.RandProb(r, gen.RandDWT(r, 2048, []Label{"R", "S"}), 0.5)
	lin, err := lineage.Path1WPOnDWT(q, h)
	if err != nil {
		panic(err)
	}
	floats := make([]float64, len(lin.Probs))
	for i, p := range lin.Probs {
		floats[i], _ = p.Float64()
	}
	return lin.System, lin.Probs, floats
}

func BenchmarkAblation_RatDP(b *testing.B) {
	sys, probs, _ := ablationChain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := sys.Prob(probs)
		if err != nil {
			b.Fatal(err)
		}
		sink = p
	}
}

func BenchmarkAblation_FloatDP(b *testing.B) {
	sys, _, floats := ablationChain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ProbFloat(floats); err != nil {
			b.Fatal(err)
		}
	}
}
