package phom

import (
	"context"
	"errors"
	"testing"
	"time"

	"phom/internal/core"
)

// reqTestInstance builds a small ⊔2WP instance with mixed
// probabilities.
func reqTestInstance(t *testing.T) *ProbGraph {
	t.Helper()
	g := Path2WP(Fwd("R"), Fwd("S"), Bwd("R"), Fwd("S"), Fwd("R"))
	h := NewProbGraph(g)
	probs := []string{"1/2", "1/3", "1", "3/4", "2/5"}
	for i, p := range probs {
		if err := h.SetProb(i, Rat(p)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// hardRequestPair is a #P-hard pair small enough to brute-force in a
// test.
func hardRequestPair(t *testing.T) (*Graph, *ProbGraph) {
	t.Helper()
	g := New(4)
	edges := [][2]Vertex{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 0}, {1, 3}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1], Unlabeled); err != nil {
			t.Fatal(err)
		}
	}
	h := NewProbGraph(g)
	for i := 0; i < g.NumEdges(); i++ {
		if err := h.SetProb(i, Rat("1/2")); err != nil {
			t.Fatal(err)
		}
	}
	return UnlabeledPath(2), h
}

// TestV1ShimsByteIdenticalToV2: the satellite differential — Solve,
// SolveUCQ and Compile answer byte-identically to the v2 request path
// they now delegate to, on a tractable cell, a UCQ, and a hard cell.
func TestV1ShimsByteIdenticalToV2(t *testing.T) {
	ctx := context.Background()
	h := reqTestInstance(t)
	q := Path1WP("R", "S")
	hq, hh := hardRequestPair(t)

	t.Run("solve", func(t *testing.T) {
		for _, pair := range []struct {
			name string
			q    *Graph
			h    *ProbGraph
		}{{"tractable", q, h}, {"hard", hq, hh}} {
			v1, err1 := Solve(pair.q, pair.h, nil)
			v2, err2 := SolveContext(ctx, NewRequest(pair.q, pair.h))
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: errs %v, %v", pair.name, err1, err2)
			}
			if v1.Prob.RatString() != v2.Prob.RatString() || v1.Method != v2.Method {
				t.Fatalf("%s: v1 (%s, %v) != v2 (%s, %v)", pair.name,
					v1.Prob.RatString(), v1.Method, v2.Prob.RatString(), v2.Method)
			}
		}
	})
	t.Run("solve-ucq", func(t *testing.T) {
		// Multi-disjunct, single-disjunct (whose lifted routing may pick
		// a different cell than the single-query table — the shim must
		// preserve it, Method included), empty, and nil unions: each
		// must answer exactly as core.SolveUCQ always has.
		for _, qs := range []UCQ{
			{Path1WP("R", "S"), Path1WP("S", "R")},
			{UnlabeledPath(2)},
			{},
			nil,
		} {
			v1, err1 := SolveUCQ(qs, h, nil)
			ref, errRef := core.SolveUCQ(qs, h, nil)
			v2, err2 := SolveContext(ctx, NewUCQRequest(qs, h))
			if err1 != nil || err2 != nil || errRef != nil {
				t.Fatalf("union %d: errs %v, %v, %v", len(qs), err1, err2, errRef)
			}
			for name, v := range map[string]*Result{"shim": v1, "v2": v2} {
				if v.Prob.RatString() != ref.Prob.RatString() || v.Method != ref.Method {
					t.Fatalf("union %d: %s (%s, %v) != core.SolveUCQ (%s, %v)", len(qs),
						name, v.Prob.RatString(), v.Method, ref.Prob.RatString(), ref.Method)
				}
			}
		}
	})
	t.Run("compile", func(t *testing.T) {
		p1, err1 := Compile(q, h, nil)
		p2, err2 := CompileContext(ctx, NewRequest(q, h))
		if err1 != nil || err2 != nil {
			t.Fatalf("errs %v, %v", err1, err2)
		}
		b1, err1 := p1.MarshalBinary()
		b2, err2 := p2.MarshalBinary()
		if err1 != nil || err2 != nil {
			t.Fatalf("marshal errs %v, %v", err1, err2)
		}
		if string(b1) != string(b2) {
			t.Fatal("v1 and v2 compiled plans differ in serialized form")
		}
	})
}

// TestRequestOptionsComposeIntoSolverOptions: the functional options
// build the same core options a v1 caller would pass explicitly, and
// WithOptions copies rather than aliases.
func TestRequestOptionsComposeIntoSolverOptions(t *testing.T) {
	req := NewRequest(UnlabeledPath(2), NewProbGraph(UnlabeledPath(3)),
		WithBruteForceLimit(10),
		WithMatchLimit(100),
		WithoutFallback(),
		WithPrecision(PrecisionAuto),
		WithFloatTolerance(1e-6),
		WithTimeout(time.Minute),
	)
	want := Options{BruteForceLimit: 10, MatchLimit: 100, DisableFallback: true,
		Precision: PrecisionAuto, FloatTolerance: 1e-6}
	if req.Opts == nil || *req.Opts != want {
		t.Fatalf("composed options %+v, want %+v", req.Opts, want)
	}
	if req.Timeout != time.Minute {
		t.Fatalf("Timeout = %v", req.Timeout)
	}

	base := &Options{BruteForceLimit: 5}
	req2 := NewRequest(UnlabeledPath(2), NewProbGraph(UnlabeledPath(3)),
		WithOptions(base), WithMatchLimit(7))
	if base.MatchLimit != 0 {
		t.Fatal("WithOptions aliased the caller's Options struct")
	}
	if req2.Opts.BruteForceLimit != 5 || req2.Opts.MatchLimit != 7 {
		t.Fatalf("options after WithOptions+WithMatchLimit: %+v", req2.Opts)
	}
}

// TestRequestValidationTyped: requests without a query or instance are
// typed bad-input failures, not panics.
func TestRequestValidationTyped(t *testing.T) {
	ctx := context.Background()
	if _, err := SolveContext(ctx, Request{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty request err = %v, want ErrBadInput", err)
	}
	if _, err := SolveContext(ctx, NewRequest(UnlabeledPath(2), nil)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil instance err = %v, want ErrBadInput", err)
	}
	if _, err := CompileContext(ctx, NewUCQRequest(UCQ{nil}, reqTestInstance(t))); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil disjunct err = %v, want ErrBadInput", err)
	}
}

// TestRequestTimeoutAndCancel: WithTimeout and context cancellation
// surface as the documented sentinels through the public API.
func TestRequestTimeoutAndCancel(t *testing.T) {
	hq, hh := hardRequestPair(t)
	bigQ, bigH := hq, hh
	// A bigger hard pair so the timeout reliably fires first.
	{
		g := New(8)
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8 && j <= i+3; j++ {
				if err := g.AddEdge(Vertex(i), Vertex(j), Unlabeled); err != nil {
					t.Fatal(err)
				}
			}
		}
		h := NewProbGraph(g)
		for i := 0; i < g.NumEdges(); i++ {
			if err := h.SetProb(i, Rat("1/2")); err != nil {
				t.Fatal(err)
			}
		}
		bigH = h
		bigQ = UnlabeledPath(2)
	}
	req := NewRequest(bigQ, bigH, WithTimeout(30*time.Millisecond),
		WithBruteForceLimit(bigH.G.NumEdges()))
	if _, err := SolveContext(context.Background(), req); !errors.Is(err, ErrDeadline) {
		t.Fatalf("timeout err = %v, want ErrDeadline", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, NewRequest(hq, hh)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancel err = %v, want ErrCanceled", err)
	}
	if CodeOf(context.Canceled) != CodeCanceled {
		t.Fatal("CodeOf(context.Canceled) != CodeCanceled")
	}
}

// TestParseRatTyped: the exported non-panicking parser accepts what Rat
// accepts and rejects garbage with ErrBadInput.
func TestParseRatTyped(t *testing.T) {
	for _, ok := range []string{"1/2", "0.35", "1", "2.5e-3"} {
		r, err := ParseRat(ok)
		if err != nil {
			t.Fatalf("ParseRat(%q): %v", ok, err)
		}
		if r.RatString() != Rat(ok).RatString() {
			t.Fatalf("ParseRat(%q) = %s, Rat = %s", ok, r.RatString(), Rat(ok).RatString())
		}
	}
	for _, bad := range []string{"", "x", "1/", "1e999999999"} {
		if _, err := ParseRat(bad); !errors.Is(err, ErrBadInput) {
			t.Fatalf("ParseRat(%q) err = %v, want ErrBadInput", bad, err)
		}
	}
}

// TestEngineRequestRoundTrip: Request flows through the engine's
// context API unchanged (Request and Job are one type), and streaming
// yields one result per request.
func TestEngineRequestRoundTrip(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2})
	defer e.Close()
	h := reqTestInstance(t)
	reqs := []Request{
		NewRequest(Path1WP("R", "S"), h),
		NewUCQRequest(UCQ{Path1WP("R"), Path1WP("S")}, h),
	}
	want := make([]string, len(reqs))
	for i, req := range reqs {
		res, err := SolveContext(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Prob.RatString()
		jr := e.DoContext(context.Background(), req)
		if jr.Err != nil {
			t.Fatal(jr.Err)
		}
		if jr.Result.Prob.RatString() != want[i] {
			t.Fatalf("engine result %s != direct %s", jr.Result.Prob.RatString(), want[i])
		}
	}
	seen := 0
	for sr := range e.Stream(context.Background(), reqs) {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		if sr.Result.Prob.RatString() != want[sr.Index] {
			t.Fatalf("stream result %d: %s != %s", sr.Index, sr.Result.Prob.RatString(), want[sr.Index])
		}
		seen++
	}
	if seen != len(reqs) {
		t.Fatalf("stream delivered %d of %d", seen, len(reqs))
	}
}
