package phom

import (
	"math/big"

	"phom/internal/graphio"
	"phom/internal/phomerr"
)

// This file re-exports the typed error taxonomy of the v2 request API.
// Every failure the package can report carries an ErrorCode; test with
// errors.Is against the sentinels (or errors.As against *Error), never
// by string matching:
//
//	res, err := phom.SolveContext(ctx, req)
//	switch {
//	case errors.Is(err, phom.ErrCanceled):   // caller cancelled
//	case errors.Is(err, phom.ErrDeadline):   // timeout / deadline
//	case errors.Is(err, phom.ErrBadInput):   // malformed request
//	case errors.Is(err, phom.ErrLimit):      // baseline cap exceeded
//	case errors.Is(err, phom.ErrIntractable): // #P-hard, fallback off
//	}
//
// The serving layer (cmd/phomserve) maps the codes to HTTP statuses:
// bad-input → 400, deadline → 408, limit/intractable → 422,
// canceled → 499, unavailable → 503.

// Error is a typed failure: an ErrorCode classifying the failure mode
// plus the wrapped cause, compatible with errors.Is/As.
type Error = phomerr.Error

// ErrorCode classifies a failure of the request API.
type ErrorCode = phomerr.Code

// The error codes.
const (
	CodeUnknown     = phomerr.CodeUnknown
	CodeBadInput    = phomerr.CodeBadInput
	CodeLimit       = phomerr.CodeLimit
	CodeIntractable = phomerr.CodeIntractable
	CodeCanceled    = phomerr.CodeCanceled
	CodeDeadline    = phomerr.CodeDeadline
	CodeUnavailable = phomerr.CodeUnavailable
)

// The per-code sentinel errors, for errors.Is.
var (
	// ErrBadInput: the request is malformed — an empty query, an
	// invalid probability, out-of-range options.
	ErrBadInput = phomerr.ErrBadInput
	// ErrLimit: the job exceeded a configured resource cap (the
	// brute-force coin limit, the lineage match limit).
	ErrLimit = phomerr.ErrLimit
	// ErrIntractable: the input pair lies in a #P-hard cell of
	// Tables 1–3 and the exponential fallback is disabled.
	ErrIntractable = phomerr.ErrIntractable
	// ErrCanceled: the request's context was cancelled.
	ErrCanceled = phomerr.ErrCanceled
	// ErrDeadline: the request's deadline or per-request timeout passed.
	ErrDeadline = phomerr.ErrDeadline
	// ErrUnavailable: the serving component cannot accept work (see
	// also ErrEngineClosed, which carries this code).
	ErrUnavailable = phomerr.ErrUnavailable
)

// CodeOf extracts the taxonomy code from an error chain, mapping bare
// context errors to their cancellation codes and anything unknown to
// CodeUnknown.
func CodeOf(err error) ErrorCode { return phomerr.CodeOf(err) }

// CheckpointInterval is the granularity of cooperative cancellation:
// the solver's long loops (possible-world enumeration, compile-time
// dynamic programs, exact plan evaluation) poll their context every
// CheckpointInterval iterations, so a cancelled context aborts the
// computation within one interval plus the cost of a single iteration.
const CheckpointInterval = phomerr.CheckInterval

// ParseRat parses an exact rational probability such as "1/2", "0.35"
// or "2.5e-3", returning a typed ErrBadInput error on malformed input
// (unlike Rat, which panics and is intended for literals). The token
// length and decimal exponent are bounded, so ParseRat is safe on
// untrusted input; it does not enforce the [0,1] probability range —
// that happens when the value is attached to an edge.
func ParseRat(s string) (*big.Rat, error) {
	r, err := graphio.ParseRat(s)
	if err != nil {
		return nil, phomerr.Wrap(phomerr.CodeBadInput, err)
	}
	return r, nil
}
