package phom

import "phom/internal/engine"

// Concurrent batch evaluation, re-exported from internal/engine. An
// Engine owns a worker pool that executes Solve/SolveUCQ jobs,
// deduplicates identical in-flight jobs (singleflight), and memoizes
// completed results in a bounded LRU cache keyed by a canonical hash of
// (query, instance, options). A second, structure-keyed cache holds
// compiled plans (see Compile), so jobs that differ from earlier ones
// only in edge probabilities skip recompilation and pay only linear
// evaluation. The plan cache is persistent: Engine.SavePlans and
// Engine.LoadPlans snapshot and restore it in the canonical binary
// plan format (warm-starting fresh engines or replicas with zero
// recompiles), and EngineOptions.PlanSnapshotPath automates the loop
// across restarts. Results are byte-identical to sequential Solve: the
// engine changes scheduling, never arithmetic. For huge batches,
// Engine.Stream yields results in completion order instead of
// buffering the whole result slice (it backs the NDJSON streaming mode
// of cmd/phomserve's /batch endpoint).
type (
	// Engine is a concurrent batch evaluator; create with NewEngine and
	// release with Close. Submission is context-aware: DoContext,
	// SolveBatchContext and Stream take a context.Context (and honor
	// each Request's Timeout), cancel work nobody is waiting for at the
	// next cooperative checkpoint, and report cancellation as typed
	// ErrCanceled/ErrDeadline errors. Do and SolveBatch remain as the
	// context-free v1 shims.
	Engine = engine.Engine
	// EngineOptions configures NewEngine. EngineOptions.BaseContext is
	// the lifetime context of every job: cancel it (the serving layer
	// wires its shutdown context here) and all in-flight solves abort.
	EngineOptions = engine.Options
	// Job is one (query or UCQ, instance, options) evaluation for
	// Engine.Do and Engine.SolveBatch. It is the same type as Request —
	// the unified v2 request — under the v1 name.
	Job = engine.Job
	// JobResult is the outcome of one Job, with cache provenance.
	JobResult = engine.JobResult
	// StreamResult is one completed job of an Engine.Stream call: the
	// JobResult of the input job at Index, delivered in completion
	// order.
	StreamResult = engine.StreamResult
	// EngineStats is a snapshot of engine counters.
	EngineStats = engine.Stats
)

// DefaultEngineCacheSize is the default capacity of an Engine's result
// cache.
const DefaultEngineCacheSize = engine.DefaultCacheSize

// DefaultEnginePlanCacheSize is the default capacity of an Engine's
// structure-keyed compiled-plan cache.
const DefaultEnginePlanCacheSize = engine.DefaultPlanCacheSize

// ErrEngineClosed is returned by Engine methods after Close.
var ErrEngineClosed = engine.ErrClosed

// NewEngine starts a concurrent evaluation engine with the given
// options; EngineOptions{} gives GOMAXPROCS workers and the default
// cache size. Callers must Close the engine when done.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }
