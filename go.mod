module phom

go 1.21
