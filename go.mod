module phom

go 1.22
