package phom

import (
	"context"
	"time"

	"phom/internal/core"
	"phom/internal/engine"
	"phom/internal/phomerr"
)

// Request is the unified v2 request: one evaluation job — a query (or
// a union of conjunctive queries), a probabilistic instance, solver
// options and an optional per-request timeout — accepted by every
// context-aware entry point: SolveContext and CompileContext here, and
// Engine.DoContext / Engine.SolveBatchContext / Engine.Stream on the
// engine (Request and Job are the same type).
//
// Construct requests with NewRequest / NewUCQRequest and the
// functional options (WithPrecision, WithTimeout, …), or fill the
// fields literally; the zero value of every field means its default.
type Request = engine.Job

// RequestOption configures a Request under construction; pass to
// NewRequest or NewUCQRequest.
type RequestOption func(*Request)

// NewRequest builds a single-query request against instance.
func NewRequest(query *Graph, instance *ProbGraph, opts ...RequestOption) Request {
	r := Request{Query: query, Instance: instance}
	for _, o := range opts {
		o(&r)
	}
	return r
}

// NewUCQRequest builds a request for a union of conjunctive queries
// Pr(G₁ ∨ … ∨ G_k ⇝ H) against instance. A nil or empty union is a
// valid request: an empty disjunction is false, so it solves to
// probability 0 (matching SolveUCQ since v1).
func NewUCQRequest(queries UCQ, instance *ProbGraph, opts ...RequestOption) Request {
	if queries == nil {
		queries = UCQ{}
	}
	r := Request{Queries: queries, Instance: instance}
	for _, o := range opts {
		o(&r)
	}
	return r
}

// reqOpts returns the request's solver options, allocating them on
// first use so functional options compose in any order.
func reqOpts(r *Request) *Options {
	if r.Opts == nil {
		r.Opts = &Options{}
	}
	return r.Opts
}

// WithOptions replaces the request's solver options wholesale (copied,
// so later functional options do not mutate the caller's struct). A
// nil o resets to defaults. It is the bridge from v1 code that already
// builds *Options values.
func WithOptions(o *Options) RequestOption {
	return func(r *Request) {
		if o == nil {
			r.Opts = nil
			return
		}
		c := *o
		r.Opts = &c
	}
}

// WithBruteForceLimit caps the number of uncertain edges the
// brute-force baseline accepts (0 = the default limit).
func WithBruteForceLimit(n int) RequestOption {
	return func(r *Request) { reqOpts(r).BruteForceLimit = n }
}

// WithMatchLimit caps the number of matches the lineage baseline
// enumerates (0 = the default limit).
func WithMatchLimit(n int) RequestOption {
	return func(r *Request) { reqOpts(r).MatchLimit = n }
}

// WithoutFallback makes the request fail with ErrIntractable instead
// of running an exponential baseline on a #P-hard input pair.
func WithoutFallback() RequestOption {
	return func(r *Request) { reqOpts(r).DisableFallback = true }
}

// WithPrecision selects the numeric substrate of plan evaluation
// (PrecisionExact, PrecisionFast, PrecisionAuto or PrecisionApprox).
func WithPrecision(p Precision) RequestOption {
	return func(r *Request) { reqOpts(r).Precision = p }
}

// WithFloatTolerance sets the widest certified error PrecisionAuto
// serves without falling back to exact arithmetic (0 = the default,
// DefaultFloatTolerance).
func WithFloatTolerance(tol float64) RequestOption {
	return func(r *Request) { reqOpts(r).FloatTolerance = tol }
}

// WithEpsilon sets the PrecisionApprox relative error bound, in (0,1)
// (0 = the default, DefaultEpsilon). Requests carrying an epsilon under
// any other precision mode are rejected with ErrBadInput.
func WithEpsilon(eps float64) RequestOption {
	return func(r *Request) { reqOpts(r).Epsilon = eps }
}

// WithDelta sets the PrecisionApprox failure probability budget, in
// (0,1) (0 = the default, DefaultDelta). Like WithEpsilon it is
// rejected outside approx mode.
func WithDelta(delta float64) RequestOption {
	return func(r *Request) { reqOpts(r).Delta = delta }
}

// WithSeed seeds the PrecisionApprox sampler: equal requests with equal
// seeds reproduce the estimate byte-for-byte. A non-zero seed is
// rejected outside approx mode.
func WithSeed(seed uint64) RequestOption {
	return func(r *Request) { reqOpts(r).Seed = seed }
}

// WithTimeout gives the request an execution budget: it fails with
// ErrDeadline once d has elapsed. The timeout is scheduling policy,
// not semantics — it takes no part in engine cache keys.
func WithTimeout(d time.Duration) RequestOption {
	return func(r *Request) { r.Timeout = d }
}

// resolveRequest validates the request and decides its solver family.
// A non-nil Queries slice — even empty or single-element — is a UCQ
// request and keeps SolveUCQ's lifted routing, exactly as v1 did: an
// empty union solves to probability 0, and a one-disjunct union may
// dispatch through a different lifted cell (hence report a different
// Result.Method) than the single-query guard table would. Only a nil
// Queries with Query set is a single-CQ request. This is deliberately
// NOT Request.Disjuncts: the engine has always collapsed one-element
// unions onto the single-query compiler, while the library's SolveUCQ
// has always used the lifted table — each path stays faithful to its
// own v1 behavior.
func resolveRequest(req Request) (qs UCQ, ucq bool, err error) {
	if req.Queries == nil && req.Query == nil {
		return nil, false, phomerr.New(phomerr.CodeBadInput, "phom: request has no query graph")
	}
	if req.Instance == nil {
		return nil, false, phomerr.New(phomerr.CodeBadInput, "phom: request has no instance graph")
	}
	if req.Queries != nil {
		for _, q := range req.Queries {
			if q == nil {
				return nil, false, phomerr.New(phomerr.CodeBadInput, "phom: nil query graph in request")
			}
		}
		return UCQ(req.Queries), true, nil
	}
	return UCQ{req.Query}, false, nil
}

// SolveContext computes Pr(G ⇝ H) (or its UCQ lift) for the request
// under ctx — the v2 form of Solve and SolveUCQ, and the path both
// shims delegate to.
//
// Cancellation contract: compilation, the exponential baselines and
// exact evaluation poll ctx at cooperative checkpoints (every
// CheckpointInterval iterations), so a cancelled or deadlined context
// — including one derived from WithTimeout — aborts the job within one
// checkpoint interval; the error then satisfies errors.Is(err,
// ErrCanceled) or errors.Is(err, ErrDeadline). A run that completes is
// byte-identical to the context-free v1 call.
func SolveContext(ctx context.Context, req Request) (*Result, error) {
	qs, ucq, err := resolveRequest(req)
	if err != nil {
		return nil, err
	}
	ctx, cancel := requestContext(ctx, req)
	defer cancel()
	if ucq {
		return core.SolveUCQContext(ctx, qs, req.Instance, req.Opts)
	}
	return core.SolveContext(ctx, qs[0], req.Instance, req.Opts)
}

// CompileContext runs the probability-independent phase of
// SolveContext and returns the reusable Plan — the v2 form of Compile
// and CompileUCQ, with the same cancellation contract as SolveContext.
func CompileContext(ctx context.Context, req Request) (*Plan, error) {
	qs, ucq, err := resolveRequest(req)
	if err != nil {
		return nil, err
	}
	ctx, cancel := requestContext(ctx, req)
	defer cancel()
	if ucq {
		return core.CompileUCQContext(ctx, qs, req.Instance, req.Opts)
	}
	return core.CompileContext(ctx, qs[0], req.Instance, req.Opts)
}

// requestContext applies the request's Timeout on top of ctx, with the
// same rule as Engine.DoContext: only a positive Timeout counts. The
// returned cancel must be called (it releases the timer).
func requestContext(ctx context.Context, req Request) (context.Context, context.CancelFunc) {
	if req.Timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, req.Timeout)
}
