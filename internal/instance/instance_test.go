package instance

import (
	"errors"
	"math/big"
	"sync"
	"testing"

	"phom/internal/graph"
	"phom/internal/phomerr"
)

func twoPath(t *testing.T) *graph.ProbGraph {
	t.Helper()
	h := graph.NewProbGraph(graph.UnlabeledPath(2)) // 0→1→2
	h.MustSetEdgeProb(0, 1, big.NewRat(1, 2))
	h.MustSetEdgeProb(1, 2, big.NewRat(1, 3))
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil); !errors.Is(err, phomerr.ErrBadInput) {
		t.Fatalf("New(nil) = %v, want ErrBadInput", err)
	}
	if _, err := New("x", graph.NewProbGraph(graph.New(0))); !errors.Is(err, phomerr.ErrBadInput) {
		t.Fatalf("New(empty) = %v, want ErrBadInput", err)
	}
	in, err := New("x", twoPath(t))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if in.ID() != "x" || in.Version() != 1 || in.DeltasApplied() != 0 {
		t.Fatalf("fresh instance: id=%q version=%d deltas=%d", in.ID(), in.Version(), in.DeltasApplied())
	}
}

func TestNewIsolatesCallerGraph(t *testing.T) {
	h := twoPath(t)
	in, err := New("iso", h)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Mutating the caller's graph must not reach the instance.
	h.MustSetEdgeProb(0, 1, big.NewRat(9, 10))
	if got := in.Snapshot().H.Prob(0).RatString(); got != "1/2" {
		t.Fatalf("instance saw caller mutation: prob = %s", got)
	}
}

func TestApplySetProbCOW(t *testing.T) {
	in, _ := New("p", twoPath(t))
	old := in.Snapshot()
	res, err := in.Apply(-1, []Delta{{Op: OpSetProb, From: 0, To: 1, Prob: big.NewRat(3, 4)}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Structural {
		t.Fatal("set_prob reported structural")
	}
	if res.New.Version != 2 || in.Version() != 2 {
		t.Fatalf("version = %d, want 2", res.New.Version)
	}
	if res.New.H.G != old.H.G {
		t.Fatal("probability-only batch did not share the immutable graph")
	}
	if old.H.Prob(0).RatString() != "1/2" {
		t.Fatalf("old snapshot mutated: %s", old.H.Prob(0).RatString())
	}
	if res.New.H.Prob(0).RatString() != "3/4" || res.New.H.Prob(1).RatString() != "1/3" {
		t.Fatalf("new probs = %s, %s", res.New.H.Prob(0).RatString(), res.New.H.Prob(1).RatString())
	}
	if in.DeltasApplied() != 1 {
		t.Fatalf("deltas applied = %d", in.DeltasApplied())
	}
}

func TestApplyCAS(t *testing.T) {
	in, _ := New("cas", twoPath(t))
	d := []Delta{{Op: OpSetProb, From: 0, To: 1, Prob: big.NewRat(1, 4)}}
	if _, err := in.Apply(5, d); !errors.Is(err, phomerr.ErrConflict) {
		t.Fatalf("stale ifVersion = %v, want ErrConflict", err)
	}
	if in.Version() != 1 || in.DeltasApplied() != 0 {
		t.Fatal("failed CAS mutated the instance")
	}
	if _, err := in.Apply(1, d); err != nil {
		t.Fatalf("matching ifVersion: %v", err)
	}
	if _, err := in.Apply(-1, d); err != nil {
		t.Fatalf("unconditional apply: %v", err)
	}
	if in.Version() != 3 {
		t.Fatalf("version = %d, want 3", in.Version())
	}
}

func TestApplyStructural(t *testing.T) {
	in, _ := New("s", twoPath(t))
	old := in.Snapshot()
	res, err := in.Apply(-1, []Delta{
		{Op: OpAddEdge, From: 2, To: 0, Label: graph.Unlabeled, Prob: big.NewRat(1, 5)},
		{Op: OpRemoveEdge, From: 0, To: 1},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !res.Structural {
		t.Fatal("edge deltas not reported structural")
	}
	if res.New.H.G == old.H.G {
		t.Fatal("structural batch shared the old graph")
	}
	g := res.New.H.G
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	// Removal of edge 0 (0→1) shifts 1→2 down to index 0; the added
	// 2→0 sits after it. Probabilities must have tracked the shift.
	i, ok := g.EdgeIndex(1, 2)
	if !ok || res.New.H.Prob(i).RatString() != "1/3" {
		t.Fatalf("edge 1>2 lost its probability after the shift")
	}
	j, ok := g.EdgeIndex(2, 0)
	if !ok || res.New.H.Prob(j).RatString() != "1/5" {
		t.Fatalf("added edge 2>0 prob wrong")
	}
	if _, ok := g.EdgeIndex(0, 1); ok {
		t.Fatal("removed edge still present")
	}
	// The old snapshot is untouched.
	if old.H.G.NumEdges() != 2 || old.H.Prob(0).RatString() != "1/2" {
		t.Fatal("old snapshot mutated by structural batch")
	}
}

func TestApplyAtomicOnError(t *testing.T) {
	in, _ := New("a", twoPath(t))
	cases := [][]Delta{
		nil, // empty batch
		{{Op: OpSetProb, From: 0, To: 1, Prob: big.NewRat(1, 2)}, {Op: OpSetProb, From: 0, To: 2}},                     // missing prob
		{{Op: OpSetProb, From: 0, To: 2, Prob: big.NewRat(1, 2)}},                                                      // no such edge
		{{Op: OpSetProb, From: 0, To: 1, Prob: big.NewRat(3, 2)}},                                                      // out of range
		{{Op: OpAddEdge, From: 0, To: 1, Label: graph.Unlabeled}},                                                      // duplicate edge
		{{Op: OpAddEdge, From: 0, To: 9, Label: graph.Unlabeled}},                                                      // endpoint out of range
		{{Op: OpRemoveEdge, From: 2, To: 1}},                                                                           // no such edge
		{{Op: OpAddEdge, From: 2, To: 0, Label: graph.Unlabeled}, {Op: OpSetProb, From: 1, To: 0, Prob: graph.RatOne}}, // second delta bad
		{{Op: Op(99)}}, // unknown op
	}
	for i, batch := range cases {
		if _, err := in.Apply(-1, batch); !errors.Is(err, phomerr.ErrBadInput) {
			t.Errorf("case %d: err = %v, want ErrBadInput", i, err)
		}
	}
	if in.Version() != 1 || in.DeltasApplied() != 0 || in.Snapshot().H.G.NumEdges() != 2 {
		t.Fatal("a failed batch left a partial commit behind")
	}
}

func TestApplyMidBatchVisibility(t *testing.T) {
	// A batch may address an edge added earlier in the same batch.
	in, _ := New("mb", twoPath(t))
	if _, err := in.Apply(-1, []Delta{
		{Op: OpAddEdge, From: 2, To: 0, Label: graph.Unlabeled},
		{Op: OpSetProb, From: 2, To: 0, Prob: big.NewRat(2, 5)},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	h := in.Snapshot().H
	i, _ := h.G.EdgeIndex(2, 0)
	if h.Prob(i).RatString() != "2/5" {
		t.Fatalf("mid-batch set_prob on fresh edge = %s", h.Prob(i).RatString())
	}
	if in.Version() != 2 {
		t.Fatalf("one batch is one version; got %d", in.Version())
	}
}

func TestConcurrentApplySerializes(t *testing.T) {
	in, _ := New("cc", twoPath(t))
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				p := big.NewRat(int64(1+(w+k)%7), 8)
				if _, err := in.Apply(-1, []Delta{{Op: OpSetProb, From: 0, To: 1, Prob: p}}); err != nil {
					t.Errorf("Apply: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := in.Version(); got != 1+writers*per {
		t.Fatalf("version = %d, want %d", got, 1+writers*per)
	}
	if got := in.DeltasApplied(); got != writers*per {
		t.Fatalf("deltas = %d, want %d", got, writers*per)
	}
}

func TestParseOp(t *testing.T) {
	for _, op := range []Op{OpSetProb, OpAddEdge, OpRemoveEdge} {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Fatalf("ParseOp(%q) = %v, %v", op.String(), got, err)
		}
	}
	if _, err := ParseOp("truncate"); !errors.Is(err, phomerr.ErrBadInput) {
		t.Fatalf("ParseOp(unknown) = %v, want ErrBadInput", err)
	}
	if Op(99).String() != "op(99)" {
		t.Fatalf("stray op string = %q", Op(99).String())
	}
	if (Delta{Op: OpSetProb}).Structural() || !(Delta{Op: OpAddEdge}).Structural() {
		t.Fatal("Structural misclassifies ops")
	}
}

func TestClassCensus(t *testing.T) {
	g, _ := graph.DisjointUnion(graph.UnlabeledPath(2), graph.UnlabeledPath(1))
	census := ClassCensus(g)
	if census[graph.Class1WP.String()] != 2 || len(census) != 1 {
		t.Fatalf("census = %v, want 2 one-way paths", census)
	}
}
