// Package instance implements versioned, mutable probabilistic-graph
// instances: the stateful counterpart of the otherwise immutable jobs
// the solver pipeline consumes.
//
// An Instance wraps a graph.ProbGraph behind a monotonically increasing
// version and accepts typed deltas — probability updates, edge inserts,
// edge removals — applied atomically per batch under an optimistic
// concurrency check (Apply's ifVersion; a mismatch is the typed
// phomerr.CodeConflict). State is copy-on-write: every Apply publishes
// a fresh immutable Snapshot and never mutates a published one, so
// in-flight solves that captured the pre-delta snapshot finish against
// it unperturbed while new work sees the new version. Deltas serialize
// per instance (a mutex around Apply); reads are a lock-free atomic
// load.
//
// Plan maintenance across structural deltas — reusing the untouched
// per-component parts of the previous version's compiled plans — is
// core.PatchCompile; the engine's instance registry wires the two
// together and keeps the caches honest.
package instance

import (
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"

	"phom/internal/graph"
	"phom/internal/phomerr"
)

// Op is the kind of one Delta.
type Op uint8

const (
	// OpSetProb replaces the probability of an existing edge. A batch of
	// OpSetProb deltas is structure-preserving: plans survive verbatim
	// and evaluation is a plain reweight.
	OpSetProb Op = iota
	// OpAddEdge inserts a new edge (appended to the edge list) carrying
	// the given label and probability (nil Prob means 1).
	OpAddEdge
	// OpRemoveEdge deletes an existing edge; later edges shift down one
	// index (the renumbering core.PatchCompile transports plans across).
	OpRemoveEdge

	numOps = iota
)

var opNames = [numOps]string{"set_prob", "add_edge", "remove_edge"}

func (o Op) String() string {
	if int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// ParseOp parses the wire name of a delta op ("set_prob", "add_edge",
// "remove_edge").
func ParseOp(s string) (Op, error) {
	for i, name := range opNames {
		if s == name {
			return Op(i), nil
		}
	}
	return 0, phomerr.New(phomerr.CodeBadInput, "instance: unknown delta op %q (want one of %v)", s, opNames)
}

// Delta is one typed mutation of an instance. Edges are addressed by
// their (From, To) endpoint pair — graphs have no multi-edges, so the
// pair is a unique edge identity that survives renumbering.
type Delta struct {
	Op       Op
	From, To graph.Vertex
	Label    graph.Label // OpAddEdge only
	Prob     *big.Rat    // OpSetProb (required), OpAddEdge (nil = 1)
}

// Structural reports whether the delta changes the underlying graph
// (and therefore the structure key) rather than only π.
func (d Delta) Structural() bool { return d.Op != OpSetProb }

// Snapshot is one immutable published version of an instance. H and
// everything reachable from it must never be mutated: concurrent solves
// hold snapshots without locks.
type Snapshot struct {
	H       *graph.ProbGraph
	Version uint64
}

// Instance is a named, versioned mutable probabilistic graph. The zero
// value is not usable; create instances with New.
type Instance struct {
	id  string
	mu  sync.Mutex // serializes Apply (writers); readers never take it
	cur atomic.Pointer[Snapshot]
	// deltas counts individual deltas applied over the instance's
	// lifetime (not batches), for the serving tier's counters.
	deltas atomic.Int64
}

// New creates an instance at version 1 owning a deep copy of h (the
// caller's graph stays free to mutate). The instance must be non-empty
// and carry valid probabilities; failures are typed CodeBadInput.
func New(id string, h *graph.ProbGraph) (*Instance, error) {
	if h == nil || h.G.NumVertices() == 0 {
		return nil, phomerr.New(phomerr.CodeBadInput, "instance: empty instance graph")
	}
	if err := phomerr.Wrap(phomerr.CodeBadInput, h.Validate()); err != nil {
		return nil, err
	}
	in := &Instance{id: id}
	in.cur.Store(&Snapshot{H: h.Clone(), Version: 1})
	return in, nil
}

// ID returns the instance's name.
func (in *Instance) ID() string { return in.id }

// Snapshot returns the current published version. The result is
// immutable and safe to use concurrently with Apply.
func (in *Instance) Snapshot() *Snapshot { return in.cur.Load() }

// Version returns the current version number.
func (in *Instance) Version() uint64 { return in.cur.Load().Version }

// DeltasApplied returns the lifetime count of individual deltas applied.
func (in *Instance) DeltasApplied() int64 { return in.deltas.Load() }

// ApplyResult reports one successful Apply: the snapshot the batch was
// applied against, the newly published snapshot, and whether any delta
// changed the graph structure (plans must be patched or recompiled)
// rather than only probabilities (plans survive verbatim).
type ApplyResult struct {
	Old, New   *Snapshot
	Structural bool
}

// Apply validates and applies a batch of deltas atomically: either the
// whole batch commits as one new version or the instance is left
// untouched. ifVersion < 0 applies unconditionally; ifVersion ≥ 0 is an
// optimistic concurrency check against the current version, failing
// with the typed phomerr.CodeConflict on mismatch (the serving layer's
// 409). Malformed deltas — unknown edges, out-of-range endpoints or
// probabilities, duplicate inserts — fail with CodeBadInput.
//
// Apply is copy-on-write: the new version's ProbGraph shares nothing
// mutable with the old one (a probability-only batch shares the
// underlying *Graph, which is immutable once published), so concurrent
// readers of older snapshots are never disturbed.
func (in *Instance) Apply(ifVersion int64, deltas []Delta) (*ApplyResult, error) {
	if len(deltas) == 0 {
		return nil, phomerr.New(phomerr.CodeBadInput, "instance: empty delta batch")
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	old := in.cur.Load()
	if ifVersion >= 0 && uint64(ifVersion) != old.Version {
		return nil, phomerr.New(phomerr.CodeConflict,
			"instance %s is at version %d, not %d", in.id, old.Version, ifVersion)
	}

	g := old.H.G // shared until the first structural delta clones it
	probs := old.H.Probs()
	structural := false
	for di, d := range deltas {
		switch d.Op {
		case OpSetProb:
			if d.Prob == nil {
				return nil, phomerr.New(phomerr.CodeBadInput, "instance: delta %d: set_prob without a probability", di)
			}
			i, ok := g.EdgeIndex(d.From, d.To)
			if !ok {
				return nil, phomerr.New(phomerr.CodeBadInput, "instance: delta %d: no edge %d>%d", di, d.From, d.To)
			}
			if err := validProb(d.Prob); err != nil {
				return nil, phomerr.New(phomerr.CodeBadInput, "instance: delta %d: %v", di, err)
			}
			probs[i] = new(big.Rat).Set(d.Prob)
		case OpAddEdge:
			p := graph.RatOne
			if d.Prob != nil {
				if err := validProb(d.Prob); err != nil {
					return nil, phomerr.New(phomerr.CodeBadInput, "instance: delta %d: %v", di, err)
				}
				p = new(big.Rat).Set(d.Prob)
			}
			if g == old.H.G {
				g = g.Clone()
			}
			if err := g.AddEdge(d.From, d.To, d.Label); err != nil {
				return nil, phomerr.Wrap(phomerr.CodeBadInput, fmt.Errorf("instance: delta %d: %w", di, err))
			}
			probs = append(probs, p)
			structural = true
		case OpRemoveEdge:
			i, ok := g.EdgeIndex(d.From, d.To)
			if !ok {
				return nil, phomerr.New(phomerr.CodeBadInput, "instance: delta %d: no edge %d>%d", di, d.From, d.To)
			}
			g = g.WithoutEdge(i) // always returns a fresh graph
			probs = append(probs[:i], probs[i+1:]...)
			structural = true
		default:
			return nil, phomerr.New(phomerr.CodeBadInput, "instance: delta %d: unknown op %d", di, d.Op)
		}
	}

	h2 := graph.NewProbGraph(g)
	for i, r := range probs {
		if err := h2.SetProb(i, r); err != nil {
			return nil, phomerr.Wrap(phomerr.CodeBadInput, err)
		}
	}
	next := &Snapshot{H: h2, Version: old.Version + 1}
	in.cur.Store(next)
	in.deltas.Add(int64(len(deltas)))
	return &ApplyResult{Old: old, New: next, Structural: structural}, nil
}

func validProb(r *big.Rat) error {
	if r.Sign() < 0 || r.Cmp(graph.RatOne) > 0 {
		return fmt.Errorf("probability %s outside [0,1]", r.RatString())
	}
	return nil
}

// ClassCensus tallies the tightest class of every connected component
// of g — the per-component view of the Tables 1–3 dispatch the serving
// tier reports for a live instance.
func ClassCensus(g *graph.Graph) map[string]int {
	out := make(map[string]int)
	for _, comp := range g.Components() {
		out[comp.TightestClass().String()]++
	}
	return out
}
