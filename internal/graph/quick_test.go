package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickGraph derives a pseudo-random graph from a seed, for use inside
// testing/quick properties.
func quickGraph(seed int64) *Graph {
	return randomGraphForClasses(rand.New(rand.NewSource(seed)))
}

// TestQuickReverseInvolution: reversing twice is the identity.
func TestQuickReverseInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		g := quickGraph(seed)
		return g.Reverse().Reverse().String() == g.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReversePreservesPolytree: polytrees, connectivity and edge
// counts are invariant under reversal; 1WPs map to 1WPs of the reversed
// orientation.
func TestQuickReversePreservesStructure(t *testing.T) {
	prop := func(seed int64) bool {
		g := quickGraph(seed)
		r := g.Reverse()
		if g.IsPolytree() != r.IsPolytree() {
			return false
		}
		if g.IsConnected() != r.IsConnected() {
			return false
		}
		if g.Is2WP() != r.Is2WP() {
			return false
		}
		return g.NumEdges() == r.NumEdges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickComponentsPartition: components partition the vertex set and
// preserve the total edge count.
func TestQuickComponentsPartition(t *testing.T) {
	prop := func(seed int64) bool {
		g := quickGraph(seed)
		comps := g.ConnectedComponents()
		seen := map[Vertex]int{}
		for _, comp := range comps {
			for _, v := range comp {
				seen[v]++
			}
		}
		if len(seen) != g.NumVertices() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		edges := 0
		for _, sub := range g.Components() {
			edges += sub.NumEdges()
		}
		return edges == g.NumEdges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDisjointUnionClassClosure: the union of two graphs of a base
// class is in the ⊔-class, and membership of parts is preserved under
// the offsets.
func TestQuickDisjointUnionClassClosure(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() *Graph {
			n := 1 + r.Intn(5)
			g := New(n)
			for i := 1; i < n; i++ {
				g.MustAddEdge(Vertex(r.Intn(i)), Vertex(i), Unlabeled)
			}
			return g
		}
		a, b := mk(), mk() // both DWTs
		u, offsets := DisjointUnion(a, b)
		if !u.InClass(ClassUDWT) {
			return false
		}
		if len(offsets) != 2 || offsets[0] != 0 || int(offsets[1]) != a.NumVertices() {
			return false
		}
		return u.NumEdges() == a.NumEdges()+b.NumEdges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHomomorphismComposition: if g ⇝ h and h ⇝ k then g ⇝ k.
func TestQuickHomomorphismComposition(t *testing.T) {
	prop := func(s1, s2, s3 int64) bool {
		g, h, k := quickGraph(s1), quickGraph(s2), quickGraph(s3)
		if HasHomomorphism(g, h) && HasHomomorphism(h, k) {
			return HasHomomorphism(g, k)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubgraphMonotone: adding edges to the instance preserves any
// existing homomorphism (PHom's events are monotone).
func TestQuickSubgraphMonotone(t *testing.T) {
	prop := func(s1, s2 int64, mask uint16) bool {
		q := quickGraph(s1)
		h := quickGraph(s2)
		keep := make([]bool, h.NumEdges())
		for i := range keep {
			keep[i] = mask&(1<<uint(i%16)) != 0
		}
		sub := h.SubgraphKeeping(keep)
		if HasHomomorphism(q, sub) && !HasHomomorphism(q, h) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEquivalenceIsEquivalence: homomorphic equivalence is
// reflexive and symmetric on random graphs.
func TestQuickEquivalenceProperties(t *testing.T) {
	prop := func(s1, s2 int64) bool {
		g, h := quickGraph(s1), quickGraph(s2)
		if !Equivalent(g, g) {
			return false
		}
		return Equivalent(g, h) == Equivalent(h, g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLevelMappingShiftInvariance: adding a constant to a level
// mapping of a connected graded DAG yields another valid level mapping —
// i.e. validity only depends on differences, matching the paper's
// "unique up to an additive constant".
func TestQuickLevelMappingShiftInvariance(t *testing.T) {
	prop := func(seed int64, shift int8) bool {
		g := quickGraph(seed)
		level, ok := g.LevelMapping()
		if !ok {
			return true
		}
		for _, e := range g.Edges() {
			if (level[e.To] + int(shift)) != (level[e.From]+int(shift))-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
