package graph

import (
	"math/rand"
	"testing"
)

// fig6DAG reproduces the DAG of Figure 6: a graded DAG whose difference
// of levels (5) exceeds its longest directed path. We build a graded DAG
// with levels 0…5 where no single directed path spans all levels.
func fig6DAG() *Graph {
	g := New(7)
	// Levels: v0:5 v1:4 v2:3 v3:3 v4:2 v5:1 v6:0, edges drop one level.
	g.MustAddEdge(0, 1, Unlabeled) // 5→4
	g.MustAddEdge(1, 2, Unlabeled) // 4→3
	g.MustAddEdge(1, 3, Unlabeled) // 4→3
	g.MustAddEdge(3, 4, Unlabeled) // 3→2
	g.MustAddEdge(4, 5, Unlabeled) // 2→1
	g.MustAddEdge(5, 6, Unlabeled) // 1→0
	return g
}

func TestLevelMappingValid(t *testing.T) {
	g := fig6DAG()
	level, ok := g.LevelMapping()
	if !ok {
		t.Fatal("Figure 6 DAG should be graded")
	}
	for _, e := range g.Edges() {
		if level[e.To] != level[e.From]-1 {
			t.Fatalf("edge %v violates level mapping: %d -> %d", e, level[e.From], level[e.To])
		}
	}
	m, ok := g.DifferenceOfLevels()
	if !ok || m != 5 {
		t.Fatalf("difference of levels = %d, %v; want 5", m, ok)
	}
	lp, _ := g.LongestDirectedPath()
	if lp != 6-0-1+1 && lp != 6 { // path 0→1→2 has length 2; 0→1→3→4→5→6 has length 5
		// The longest path here is 5; the check below is the real one.
	}
	if lp != 5 {
		t.Fatalf("longest directed path = %d, want 5", lp)
	}
}

func TestJumpingEdgeNotGraded(t *testing.T) {
	// Two directed paths of different lengths between u and v.
	g := New(4)
	g.MustAddEdge(0, 1, Unlabeled)
	g.MustAddEdge(1, 2, Unlabeled)
	g.MustAddEdge(0, 2, Unlabeled) // jumping edge
	if g.IsGradedDAG() {
		t.Fatal("jumping edge must not be graded")
	}
	if !g.IsDAG() {
		t.Fatal("still a DAG")
	}
	if _, ok := g.DifferenceOfLevels(); ok {
		t.Fatal("difference of levels must fail")
	}
}

func TestCycleNotGraded(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, Unlabeled)
	g.MustAddEdge(1, 2, Unlabeled)
	g.MustAddEdge(2, 0, Unlabeled)
	if g.IsDAG() {
		t.Fatal("cycle reported acyclic")
	}
	if g.IsGradedDAG() {
		t.Fatal("cycle reported graded")
	}
	if _, ok := g.LongestDirectedPath(); ok {
		t.Fatal("longest path must fail on a cycle")
	}
	loop := New(1)
	loop.MustAddEdge(0, 0, Unlabeled)
	if loop.IsGradedDAG() {
		t.Fatal("self-loop reported graded")
	}
}

func TestDifferenceOfLevelsPerComponent(t *testing.T) {
	// Two components with spans 2 and 4: overall difference is 4.
	u, _ := DisjointUnion(UnlabeledPath(2), UnlabeledPath(4))
	m, ok := u.DifferenceOfLevels()
	if !ok || m != 4 {
		t.Fatalf("difference of levels = %d, %v; want 4", m, ok)
	}
}

func TestHeight(t *testing.T) {
	dwt := New(5)
	dwt.MustAddEdge(0, 1, Unlabeled)
	dwt.MustAddEdge(1, 2, Unlabeled)
	dwt.MustAddEdge(0, 3, Unlabeled)
	dwt.MustAddEdge(2, 4, Unlabeled)
	if h := dwt.Height(); h != 3 {
		t.Fatalf("height = %d, want 3", h)
	}
	u, _ := DisjointUnion(dwt, UnlabeledPath(1))
	if h := u.Height(); h != 3 {
		t.Fatalf("union height = %d, want 3", h)
	}
}

// TestEquivalentUnlabeledPathIsEquivalent: for random unlabeled ⊔DWT
// queries, the normalized path must be homomorphically equivalent to the
// query (Proposition 5.5), checked with the backtracking oracle.
func TestEquivalentUnlabeledPathIsEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(7)
		g := New(n)
		for i := 1; i < n; i++ {
			g.MustAddEdge(Vertex(r.Intn(i)), Vertex(i), Unlabeled)
		}
		if r.Intn(2) == 0 { // sometimes a union of two DWTs
			g2 := New(1 + r.Intn(4))
			for i := 1; i < g2.NumVertices(); i++ {
				g2.MustAddEdge(Vertex(r.Intn(i)), Vertex(i), Unlabeled)
			}
			g, _ = DisjointUnion(g, g2)
		}
		path, ok := g.EquivalentUnlabeledPath()
		if !ok {
			t.Fatalf("⊔DWT query not normalized: %v", g)
		}
		if !Equivalent(g, path) {
			t.Fatalf("normalized path not equivalent:\ng=%v\npath=%v", g, path)
		}
	}
}

func TestLevelMappingDeterministic(t *testing.T) {
	g := fig6DAG()
	l1, _ := g.LevelMapping()
	l2, _ := g.LevelMapping()
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("level mapping not deterministic")
		}
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, Unlabeled)
	g.MustAddEdge(0, 2, Unlabeled)
	g.MustAddEdge(1, 3, Unlabeled)
	g.MustAddEdge(2, 3, Unlabeled)
	order, ok := g.TopologicalOrder()
	if !ok || len(order) != 4 {
		t.Fatalf("topo order failed: %v %v", order, ok)
	}
	posOf := make([]int, 4)
	for i, v := range order {
		posOf[v] = i
	}
	for _, e := range g.Edges() {
		if posOf[e.From] >= posOf[e.To] {
			t.Fatalf("edge %v violates topological order", e)
		}
	}
}
