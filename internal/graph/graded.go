package graph

// This file implements the graded-DAG machinery of Definition 3.5 and the
// normalizations of Propositions 3.6 and 5.5: level mappings, the
// difference of levels, directed-acyclicity, longest directed paths and
// heights, and the equivalence of unlabeled ⊔DWT queries with one-way
// paths.

// TopologicalOrder returns a topological order of g's vertices, or false
// if g has a directed cycle.
func (g *Graph) TopologicalOrder() ([]Vertex, bool) {
	indeg := make([]int, g.n)
	for _, e := range g.edges {
		indeg[e.To]++
	}
	var queue []Vertex
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, Vertex(v))
		}
	}
	order := make([]Vertex, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range g.out[v] {
			t := g.edges[ei].To
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	return order, len(order) == g.n
}

// IsDAG reports whether g has no directed cycle.
func (g *Graph) IsDAG() bool {
	_, ok := g.TopologicalOrder()
	return ok
}

// LevelMapping computes a level mapping µ of g per Definition 3.5: for
// every edge u → v, µ(v) = µ(u) − 1. It returns false when no level
// mapping exists, i.e. g is not a graded DAG (it has a directed cycle, or
// two directed paths of different lengths between the same endpoints —
// a "jumping edge" in the terminology of [28]).
//
// Each connected component is explored breadth-first from its smallest
// vertex, pinned to level 0, so the returned mapping is deterministic; it
// is unique per component up to an additive constant.
func (g *Graph) LevelMapping() ([]int, bool) {
	const unset = int(^uint(0) >> 1) // max int as sentinel
	level := make([]int, g.n)
	for i := range level {
		level[i] = unset
	}
	for s := 0; s < g.n; s++ {
		if level[s] != unset {
			continue
		}
		level[s] = 0
		queue := []Vertex{Vertex(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			visit := func(u Vertex, l int) bool {
				if level[u] == unset {
					level[u] = l
					queue = append(queue, u)
					return true
				}
				return level[u] == l
			}
			for _, ei := range g.out[v] {
				if !visit(g.edges[ei].To, level[v]-1) {
					return nil, false
				}
			}
			for _, ei := range g.in[v] {
				if !visit(g.edges[ei].From, level[v]+1) {
					return nil, false
				}
			}
		}
	}
	return level, true
}

// IsGradedDAG reports whether g admits a level mapping (Definition 3.5).
func (g *Graph) IsGradedDAG() bool {
	_, ok := g.LevelMapping()
	return ok
}

// DifferenceOfLevels returns the paper's difference of levels of g: per
// connected component, the span between the largest and smallest level of
// the minimal level mapping; overall, the maximum span over components
// (appendix proof of Proposition 3.6). The second result is false when g
// is not a graded DAG.
func (g *Graph) DifferenceOfLevels() (int, bool) {
	level, ok := g.LevelMapping()
	if !ok {
		return 0, false
	}
	diff := 0
	for _, comp := range g.ConnectedComponents() {
		lo, hi := level[comp[0]], level[comp[0]]
		for _, v := range comp {
			if level[v] < lo {
				lo = level[v]
			}
			if level[v] > hi {
				hi = level[v]
			}
		}
		if hi-lo > diff {
			diff = hi - lo
		}
	}
	return diff, true
}

// LongestDirectedPath returns the number of edges of a longest directed
// path of g, or false if g has a directed cycle.
func (g *Graph) LongestDirectedPath() (int, bool) {
	order, ok := g.TopologicalOrder()
	if !ok {
		return 0, false
	}
	longest := make([]int, g.n)
	best := 0
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, ei := range g.out[v] {
			t := g.edges[ei].To
			if longest[t]+1 > longest[v] {
				longest[v] = longest[t] + 1
			}
		}
		if longest[v] > best {
			best = longest[v]
		}
	}
	return best, true
}

// Height returns the height of a ⊔DWT graph: the length in edges of its
// longest directed (downward) path. It panics if g is not a ⊔DWT, where
// height is the paper's notion (Proposition 5.5).
func (g *Graph) Height() int {
	if !g.InClass(ClassUDWT) {
		panic("graph: Height on a graph that is not a disjoint union of downward trees")
	}
	h, _ := g.LongestDirectedPath()
	return h
}

// EquivalentUnlabeledPath returns the unlabeled 1WP →^m equivalent to the
// unlabeled query graph g, when one exists:
//
//   - if g is a ⊔DWT, m is its height (Proposition 5.5 and §3.1);
//   - more generally, if g is a graded DAG, m is its difference of levels
//     and the equivalence holds over ⊔DWT instances (Proposition 3.6);
//
// The second result reports whether g is graded. Callers must check the
// instance-side applicability themselves: over non-⊔DWT instances a
// general graded query need not be equivalent to a path.
func (g *Graph) EquivalentUnlabeledPath() (*Graph, bool) {
	if !g.IsUnlabeled() {
		return nil, false
	}
	if g.InClass(ClassUDWT) {
		h, _ := g.LongestDirectedPath()
		return UnlabeledPath(h), true
	}
	m, ok := g.DifferenceOfLevels()
	if !ok {
		return nil, false
	}
	return UnlabeledPath(m), true
}
