package graph

import (
	"math/rand"
	"testing"
)

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1, "R"); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(0, 1, "S"); err == nil {
		t.Fatal("duplicate (0,1) edge accepted: multi-edges must be rejected")
	}
	if err := g.AddEdge(0, 3, "R"); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(-1, 0, "R"); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	if err := g.AddEdge(1, 0, "S"); err != nil {
		t.Fatalf("antiparallel edge must be allowed: %v", err)
	}
}

func TestBasicAccessors(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, "R")
	g.MustAddEdge(1, 2, "S")
	g.MustAddEdge(3, 2, "S")
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if l, ok := g.HasEdge(1, 2); !ok || l != "S" {
		t.Fatalf("HasEdge(1,2) = %q, %v", l, ok)
	}
	if _, ok := g.HasEdge(2, 1); ok {
		t.Fatal("HasEdge(2,1) should be false")
	}
	if g.OutDegree(1) != 1 || g.InDegree(2) != 2 {
		t.Fatalf("degrees wrong: out(1)=%d in(2)=%d", g.OutDegree(1), g.InDegree(2))
	}
	if d := g.UndirectedDegree(2); d != 2 {
		t.Fatalf("UndirectedDegree(2) = %d, want 2", d)
	}
	labels := g.Labels()
	if len(labels) != 2 || labels[0] != "R" || labels[1] != "S" {
		t.Fatalf("Labels = %v", labels)
	}
	if g.IsUnlabeled() {
		t.Fatal("two-label graph reported unlabeled")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, "R")
	h := g.Clone()
	h.AddVertex()
	h.MustAddEdge(1, 2, "R")
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatal("mutating clone affected original")
	}
}

func TestSubgraphKeeping(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, "R")
	g.MustAddEdge(1, 2, "S")
	sub := g.SubgraphKeeping([]bool{true, false})
	if sub.NumVertices() != 3 {
		t.Fatal("subgraphs must keep the full vertex set (paper convention)")
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("subgraph has %d edges", sub.NumEdges())
	}
	if _, ok := sub.HasEdge(1, 2); ok {
		t.Fatal("dropped edge still present")
	}
}

// paperFig3Top is the labeled 1WP of Figure 3: R S S T.
func paperFig3Top() *Graph { return Path1WP("R", "S", "S", "T") }

// paperFig3Bottom is the labeled 2WP of Figure 3: →R ←S →S ←T →R.
func paperFig3Bottom() *Graph {
	return Path2WP(Fwd("R"), Bwd("S"), Fwd("S"), Bwd("T"), Fwd("R"))
}

func TestClassesOnPaperExamples(t *testing.T) {
	oneWP := paperFig3Top()
	twoWP := paperFig3Bottom()

	dwt := New(6) // Figure 4, left: a root with branching children
	dwt.MustAddEdge(0, 1, Unlabeled)
	dwt.MustAddEdge(0, 2, Unlabeled)
	dwt.MustAddEdge(1, 3, Unlabeled)
	dwt.MustAddEdge(1, 4, Unlabeled)
	dwt.MustAddEdge(2, 5, Unlabeled)

	pt := New(6) // Figure 4, right: mixed orientations, branching, in-degree 2
	pt.MustAddEdge(0, 1, Unlabeled)
	pt.MustAddEdge(2, 1, Unlabeled) // vertex 1 has two parents: not a DWT
	pt.MustAddEdge(2, 3, Unlabeled)
	pt.MustAddEdge(4, 3, Unlabeled)
	pt.MustAddEdge(2, 5, Unlabeled) // vertex 2 branches: not a 2WP

	cases := []struct {
		name string
		g    *Graph
		in   []Class
		out  []Class
	}{
		{"1WP", oneWP, []Class{Class1WP, Class2WP, ClassDWT, ClassPT, ClassConnected, ClassU1WP, ClassAll}, nil},
		{"2WP", twoWP, []Class{Class2WP, ClassPT, ClassConnected, ClassU2WP, ClassAll}, []Class{Class1WP, ClassDWT, ClassU1WP, ClassUDWT}},
		{"DWT", dwt, []Class{ClassDWT, ClassPT, ClassConnected, ClassUDWT, ClassAll}, []Class{Class1WP, Class2WP}},
		{"PT", pt, []Class{ClassPT, ClassConnected, ClassUPT, ClassAll}, []Class{Class1WP, Class2WP, ClassDWT, ClassUDWT}},
	}
	for _, c := range cases {
		for _, cl := range c.in {
			if !c.g.InClass(cl) {
				t.Errorf("%s should be in %v", c.name, cl)
			}
		}
		for _, cl := range c.out {
			if c.g.InClass(cl) {
				t.Errorf("%s should not be in %v", c.name, cl)
			}
		}
	}
}

func TestSingleVertexIsEverything(t *testing.T) {
	g := New(1)
	for _, c := range AllClasses {
		if !g.InClass(c) {
			t.Errorf("single vertex should be in %v", c)
		}
	}
}

func TestAntiparallelPairClasses(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, Unlabeled)
	g.MustAddEdge(1, 0, Unlabeled)
	for _, c := range []Class{Class1WP, Class2WP, ClassDWT, ClassPT, ClassU2WP, ClassUPT} {
		if g.InClass(c) {
			t.Errorf("antiparallel pair wrongly in %v", c)
		}
	}
	if !g.IsConnected() {
		t.Error("antiparallel pair should be connected")
	}
}

func TestDisconnectedClasses(t *testing.T) {
	u, _ := DisjointUnion(Path1WP("R", "S"), Path1WP("T"))
	if u.IsConnected() {
		t.Fatal("disjoint union reported connected")
	}
	for _, c := range []Class{ClassU1WP, ClassU2WP, ClassUDWT, ClassUPT, ClassAll} {
		if !u.InClass(c) {
			t.Errorf("union of 1WPs should be in %v", c)
		}
	}
	for _, c := range []Class{Class1WP, Class2WP, ClassDWT, ClassPT, ClassConnected} {
		if u.InClass(c) {
			t.Errorf("union of 1WPs should not be in connected class %v", c)
		}
	}
}

// TestMembershipRespectsInclusionLattice is the Figure 2 check: for many
// random graphs, membership must be upward closed along ClassIncluded.
func TestMembershipRespectsInclusionLattice(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		g := randomGraphForClasses(r)
		for _, a := range AllClasses {
			for _, b := range AllClasses {
				if ClassIncluded(a, b) && g.InClass(a) && !g.InClass(b) {
					t.Fatalf("graph %v in %v but not in %v despite %v ⊆ %v", g, a, b, a, b)
				}
			}
		}
	}
}

// randomGraphForClasses produces a diverse mix of shapes.
func randomGraphForClasses(r *rand.Rand) *Graph {
	n := 1 + r.Intn(7)
	g := New(n)
	m := r.Intn(2 * n)
	for k := 0; k < m; k++ {
		u, v := Vertex(r.Intn(n)), Vertex(r.Intn(n))
		if u == v {
			continue
		}
		if _, dup := g.HasEdge(u, v); dup {
			continue
		}
		g.MustAddEdge(u, v, Label([]string{"R", "S"}[r.Intn(2)]))
	}
	return g
}

func TestClassIncludedLattice(t *testing.T) {
	// Spot-check the Figure 2 inclusions and some non-inclusions.
	wants := []struct {
		a, b Class
		want bool
	}{
		{Class1WP, Class2WP, true},
		{Class1WP, ClassDWT, true},
		{Class2WP, ClassPT, true},
		{ClassDWT, ClassPT, true},
		{ClassPT, ClassConnected, true},
		{ClassConnected, ClassAll, true},
		{Class1WP, ClassUPT, true},
		{ClassU1WP, ClassUDWT, true},
		{ClassUPT, ClassAll, true},
		{Class2WP, ClassDWT, false},
		{ClassDWT, Class2WP, false},
		{ClassU1WP, ClassConnected, false},
		{ClassConnected, ClassPT, false},
		{ClassAll, ClassConnected, false},
		{ClassU2WP, ClassUDWT, false},
	}
	for _, w := range wants {
		if got := ClassIncluded(w.a, w.b); got != w.want {
			t.Errorf("ClassIncluded(%v, %v) = %v, want %v", w.a, w.b, got, w.want)
		}
	}
}

func TestComponents(t *testing.T) {
	u, offsets := DisjointUnion(Path1WP("R"), Path1WP("S", "S"), New(1))
	if len(offsets) != 3 {
		t.Fatalf("offsets = %v", offsets)
	}
	comps := u.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components", len(comps))
	}
	if comps[0].NumEdges() != 1 || comps[1].NumEdges() != 2 || comps[2].NumEdges() != 0 {
		t.Fatalf("component edge counts wrong: %d %d %d",
			comps[0].NumEdges(), comps[1].NumEdges(), comps[2].NumEdges())
	}
	for _, c := range comps {
		if !c.IsConnected() {
			t.Fatal("component not connected")
		}
	}
}

func TestPathBuilders(t *testing.T) {
	p := Path1WP("R", "S")
	if !p.Is1WP() || p.NumVertices() != 3 {
		t.Fatal("Path1WP broken")
	}
	q := Path2WP(Fwd("R"), Bwd("S"))
	if !q.Is2WP() || q.Is1WP() {
		t.Fatal("Path2WP broken")
	}
	if l, ok := q.HasEdge(2, 1); !ok || l != "S" {
		t.Fatal("backward step misoriented")
	}
	single := Path1WP()
	if !single.Is1WP() || single.NumVertices() != 1 {
		t.Fatal("empty Path1WP should be the single vertex")
	}
	if UnlabeledPath(3).NumEdges() != 3 {
		t.Fatal("UnlabeledPath length wrong")
	}
}
