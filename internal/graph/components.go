package graph

import "sort"

// ConnectedComponents partitions the vertices of g into the connected
// components of its underlying undirected graph. Components are returned
// with vertices sorted, and components ordered by their smallest vertex,
// so the output is deterministic.
func (g *Graph) ConnectedComponents() [][]Vertex {
	seen := make([]bool, g.n)
	var comps [][]Vertex
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []Vertex
		stack := []Vertex{Vertex(s)}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			// Walk the incident edge indices directly rather than
			// through Neighbors: traversal only needs each endpoint
			// once, and seen[] already deduplicates, so the map and
			// sort Neighbors pays for are wasted here. Classification
			// asks for components on every serving-path prediction,
			// which makes this the hottest loop in the package.
			for _, i := range g.out[v] {
				if u := g.edges[i].To; !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
			for _, i := range g.in[v] {
				if u := g.edges[i].From; !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the underlying undirected graph of g is
// connected. Following the paper, the single-vertex graph is connected and
// the empty graph is not a valid graph (we report it as not connected).
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return false
	}
	seen := make([]bool, g.n)
	stack := []Vertex{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, i := range g.out[v] {
			if u := g.edges[i].To; !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
		for _, i := range g.in[v] {
			if u := g.edges[i].From; !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return count == g.n
}

// InducedSubgraph returns the subgraph of g induced by the given vertices
// (renumbered 0 … len(vs)−1 in the given order) together with the mapping
// old vertex → new vertex. Edges with an endpoint outside vs are dropped.
func (g *Graph) InducedSubgraph(vs []Vertex) (*Graph, map[Vertex]Vertex) {
	remap := make(map[Vertex]Vertex, len(vs))
	for i, v := range vs {
		remap[v] = Vertex(i)
	}
	h := New(len(vs))
	for _, e := range g.edges {
		nf, okf := remap[e.From]
		nt, okt := remap[e.To]
		if okf && okt {
			h.MustAddEdge(nf, nt, e.Label)
		}
	}
	return h, remap
}

// Components returns each connected component of g as a standalone graph
// (vertices renumbered), in deterministic order.
func (g *Graph) Components() []*Graph {
	var out []*Graph
	for _, comp := range g.ConnectedComponents() {
		h, _ := g.InducedSubgraph(comp)
		out = append(out, h)
	}
	return out
}
