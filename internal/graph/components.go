package graph

import "sort"

// ConnectedComponents partitions the vertices of g into the connected
// components of its underlying undirected graph. Components are returned
// with vertices sorted, and components ordered by their smallest vertex,
// so the output is deterministic.
func (g *Graph) ConnectedComponents() [][]Vertex {
	seen := make([]bool, g.n)
	var comps [][]Vertex
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []Vertex
		queue := []Vertex{Vertex(s)}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the underlying undirected graph of g is
// connected. Following the paper, the single-vertex graph is connected and
// the empty graph is not a valid graph (we report it as not connected).
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return false
	}
	return len(g.ConnectedComponents()) == 1
}

// InducedSubgraph returns the subgraph of g induced by the given vertices
// (renumbered 0 … len(vs)−1 in the given order) together with the mapping
// old vertex → new vertex. Edges with an endpoint outside vs are dropped.
func (g *Graph) InducedSubgraph(vs []Vertex) (*Graph, map[Vertex]Vertex) {
	remap := make(map[Vertex]Vertex, len(vs))
	for i, v := range vs {
		remap[v] = Vertex(i)
	}
	h := New(len(vs))
	for _, e := range g.edges {
		nf, okf := remap[e.From]
		nt, okt := remap[e.To]
		if okf && okt {
			h.MustAddEdge(nf, nt, e.Label)
		}
	}
	return h, remap
}

// Components returns each connected component of g as a standalone graph
// (vertices renumbered), in deterministic order.
func (g *Graph) Components() []*Graph {
	var out []*Graph
	for _, comp := range g.ConnectedComponents() {
		h, _ := g.InducedSubgraph(comp)
		out = append(out, h)
	}
	return out
}
