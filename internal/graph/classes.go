package graph

// Class identifies one of the paper's graph classes (§2, Figure 2).
type Class int

// The graph classes studied by the paper. U-prefixed classes are the
// disjoint-union closures ⊔1WP, ⊔2WP, ⊔DWT, ⊔PT: graphs whose connected
// components all lie in the base class.
const (
	Class1WP       Class = iota // one-way paths
	Class2WP                    // two-way paths
	ClassDWT                    // downward trees
	ClassPT                     // polytrees
	ClassConnected              // connected graphs
	ClassU1WP                   // disjoint unions of one-way paths
	ClassU2WP                   // disjoint unions of two-way paths
	ClassUDWT                   // disjoint unions of downward trees
	ClassUPT                    // disjoint unions of polytrees (forests)
	ClassAll                    // all graphs
	numClasses
)

// AllClasses lists every class in a fixed order.
var AllClasses = []Class{
	Class1WP, Class2WP, ClassDWT, ClassPT, ClassConnected,
	ClassU1WP, ClassU2WP, ClassUDWT, ClassUPT, ClassAll,
}

var classNames = map[Class]string{
	Class1WP:       "1WP",
	Class2WP:       "2WP",
	ClassDWT:       "DWT",
	ClassPT:        "PT",
	ClassConnected: "Connected",
	ClassU1WP:      "⊔1WP",
	ClassU2WP:      "⊔2WP",
	ClassUDWT:      "⊔DWT",
	ClassUPT:       "⊔PT",
	ClassAll:       "All",
}

func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return "Class(?)"
}

// Base returns the connected base class of a disjoint-union class, and the
// class itself otherwise.
func (c Class) Base() Class {
	switch c {
	case ClassU1WP:
		return Class1WP
	case ClassU2WP:
		return Class2WP
	case ClassUDWT:
		return ClassDWT
	case ClassUPT:
		return ClassPT
	}
	return c
}

// Union returns the disjoint-union closure of a base class (⊔C), the class
// itself for classes already closed under disjoint union.
func (c Class) Union() Class {
	switch c {
	case Class1WP:
		return ClassU1WP
	case Class2WP:
		return ClassU2WP
	case ClassDWT:
		return ClassUDWT
	case ClassPT:
		return ClassUPT
	case ClassConnected:
		return ClassAll
	}
	return c
}

// Is1WP reports whether g is a one-way path a₁ → a₂ → … → aₘ covering all
// vertices (Figure 3, top). The single-vertex graph is the 1WP of length 0.
func (g *Graph) Is1WP() bool {
	if g.n == 0 {
		return false
	}
	if g.n == 1 {
		return len(g.edges) == 0
	}
	if len(g.edges) != g.n-1 {
		return false
	}
	start := Vertex(-1)
	for v := 0; v < g.n; v++ {
		if g.OutDegree(Vertex(v)) > 1 || g.InDegree(Vertex(v)) > 1 {
			return false
		}
		if g.InDegree(Vertex(v)) == 0 {
			if start >= 0 {
				return false
			}
			start = Vertex(v)
		}
	}
	if start < 0 {
		return false
	}
	// Walk the path; with the degree bounds above it covers all vertices
	// iff we can take n−1 steps.
	v, steps := start, 0
	for len(g.out[v]) == 1 {
		v = g.edges[g.out[v][0]].To
		steps++
		if steps > g.n {
			return false
		}
	}
	return steps == g.n-1
}

// Is2WP reports whether g is a two-way path a₁ − a₂ − … − aₘ, each edge
// oriented arbitrarily (Figure 3, bottom).
func (g *Graph) Is2WP() bool {
	if g.n == 0 {
		return false
	}
	if g.n == 1 {
		return len(g.edges) == 0
	}
	// n−1 directed edges + connected underlying graph ⇒ underlying tree
	// with no antiparallel pairs; degree ≤ 2 then makes it a path.
	if len(g.edges) != g.n-1 || !g.IsConnected() {
		return false
	}
	for v := 0; v < g.n; v++ {
		if g.UndirectedDegree(Vertex(v)) > 2 {
			return false
		}
	}
	return true
}

// IsDWT reports whether g is a downward tree: a rooted unranked tree with
// every edge oriented from parent to child (Figure 4, left).
func (g *Graph) IsDWT() bool {
	if g.n == 0 {
		return false
	}
	if len(g.edges) != g.n-1 || !g.IsConnected() {
		return false
	}
	for v := 0; v < g.n; v++ {
		if g.InDegree(Vertex(v)) > 1 {
			return false
		}
	}
	return true
}

// DWTRoot returns the root of a downward tree. It panics if g is not a DWT.
func (g *Graph) DWTRoot() Vertex {
	if !g.IsDWT() {
		panic("graph: DWTRoot on a non-DWT graph")
	}
	for v := 0; v < g.n; v++ {
		if g.InDegree(Vertex(v)) == 0 {
			return Vertex(v)
		}
	}
	panic("graph: DWT without a root")
}

// IsPolytree reports whether the underlying undirected graph of g is a
// tree (Figure 4, right).
func (g *Graph) IsPolytree() bool {
	if g.n == 0 {
		return false
	}
	return len(g.edges) == g.n-1 && g.IsConnected()
}

// InClass reports whether g belongs to the given class.
func (g *Graph) InClass(c Class) bool {
	switch c {
	case Class1WP:
		return g.Is1WP()
	case Class2WP:
		return g.Is2WP()
	case ClassDWT:
		return g.IsDWT()
	case ClassPT:
		return g.IsPolytree()
	case ClassConnected:
		return g.IsConnected()
	case ClassAll:
		return g.n > 0
	case ClassU1WP, ClassU2WP, ClassUDWT, ClassUPT:
		base := c.Base()
		for _, comp := range g.Components() {
			if !comp.InClass(base) {
				return false
			}
		}
		return g.n > 0
	}
	return false
}

// Classify returns every class g belongs to, in AllClasses order.
func (g *Graph) Classify() []Class {
	var out []Class
	for _, c := range AllClasses {
		if g.InClass(c) {
			out = append(out, c)
		}
	}
	return out
}

// TightestClass returns the smallest class (w.r.t. the Figure 2
// inclusion lattice) that contains g; every class g belongs to includes
// the result. Used to locate the Tables 1–3 cell of an input pair. The
// answer is memoized on the graph (invalidated by mutation), so
// serving-path callers can re-ask per evaluation without re-walking the
// graph.
func (g *Graph) TightestClass() Class {
	if v := g.tightest.Load(); v != 0 {
		return Class(v - 1)
	}
	// Component structure is shared across the whole scan: the four
	// union-closure membership tests and the connectivity test all
	// reduce to it, and recomputing the partition per class would make
	// one TightestClass cost five traversals of the graph.
	comps := g.Components()
	inClass := func(c Class) bool {
		switch c {
		case ClassConnected:
			return len(comps) == 1
		case ClassU1WP, ClassU2WP, ClassUDWT, ClassUPT:
			if g.n == 0 {
				return false
			}
			base := c.Base()
			for _, comp := range comps {
				if !comp.InClass(base) {
					return false
				}
			}
			return true
		}
		return g.InClass(c)
	}
	best := ClassAll
	for _, c := range AllClasses {
		if inClass(c) && ClassIncluded(c, best) {
			best = c
		}
	}
	g.tightest.Store(int32(best) + 1)
	return best
}

// ClassIncluded reports whether every graph of class a is a graph of
// class b, following the inclusion diagram of Figure 2 extended to the
// disjoint-union classes.
func ClassIncluded(a, b Class) bool {
	if a == b || b == ClassAll {
		return true
	}
	direct := map[Class][]Class{
		Class1WP:       {Class2WP, ClassDWT, ClassU1WP},
		Class2WP:       {ClassPT, ClassU2WP},
		ClassDWT:       {ClassPT, ClassUDWT},
		ClassPT:        {ClassConnected, ClassUPT},
		ClassConnected: {ClassAll},
		ClassU1WP:      {ClassU2WP, ClassUDWT},
		ClassU2WP:      {ClassUPT},
		ClassUDWT:      {ClassUPT},
		ClassUPT:       {ClassAll},
	}
	seen := map[Class]bool{a: true}
	stack := []Class{a}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range direct[c] {
			if d == b {
				return true
			}
			if !seen[d] {
				seen[d] = true
				stack = append(stack, d)
			}
		}
	}
	return false
}
