package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// TestTightestClassMemo pins the memoization contract: repeated calls
// return the cached answer, mutation invalidates it, and concurrent
// callers on a shared graph agree.
func TestTightestClassMemo(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, "R")
	g.MustAddEdge(1, 2, "R")
	if c := g.TightestClass(); c != Class1WP {
		t.Fatalf("path classified as %v, want %v", c, Class1WP)
	}
	if c := g.TightestClass(); c != Class1WP {
		t.Fatalf("memoized answer %v, want %v", c, Class1WP)
	}

	// Mutation must recompute: adding a back-edge 2->1 leaves the
	// one-way path world.
	g.MustAddEdge(2, 1, "R")
	if c := g.TightestClass(); c == Class1WP {
		t.Fatal("stale memo survived AddEdge")
	}

	// AddVertex invalidates too: a new isolated vertex disconnects g.
	before := g.TightestClass()
	g.AddVertex()
	if after := g.TightestClass(); after == before && before == ClassConnected {
		t.Fatalf("stale memo survived AddVertex: %v", after)
	}

	// Clones never inherit the memo state wrongly: a clone classifies
	// like its source from scratch.
	if c := g.Clone().TightestClass(); c != g.TightestClass() {
		t.Fatal("clone classified differently from its source")
	}
}

func TestTightestClassMemoConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(20)
		g := New(n)
		for i := 0; i < n; i++ {
			from, to := Vertex(r.Intn(n)), Vertex(r.Intn(n))
			_ = g.AddEdge(from, to, "R") // duplicates rejected, fine
		}
		want := g.Clone().TightestClass()
		var wg sync.WaitGroup
		got := make([]Class, 8)
		for k := range got {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				got[k] = g.TightestClass()
			}(k)
		}
		wg.Wait()
		for k, c := range got {
			if c != want {
				t.Fatalf("trial %d goroutine %d: %v, want %v", trial, k, c, want)
			}
		}
	}
}
