package graph

import (
	"fmt"
	"math/big"
)

// Common rational constants. Treat as read-only.
var (
	RatZero = big.NewRat(0, 1)
	RatOne  = big.NewRat(1, 1)
	RatHalf = big.NewRat(1, 2)
)

// Rat parses a rational probability from a string such as "1/2", "0.35"
// or "1". It panics on malformed input; intended for literals.
func Rat(s string) *big.Rat {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		panic(fmt.Sprintf("graph: malformed rational %q", s))
	}
	return r
}

// ProbGraph is a probabilistic graph (H, π): a graph together with an
// independent existence probability π(e) ∈ [0, 1] for every edge,
// represented exactly as a rational number (§2). Its possible worlds are
// the subgraphs of H, weighted by Π_{e kept} π(e) · Π_{e dropped} (1−π(e)).
type ProbGraph struct {
	G     *Graph
	probs []*big.Rat // parallel to G's edge list
}

// NewProbGraph wraps g with every edge certain (probability 1).
func NewProbGraph(g *Graph) *ProbGraph {
	probs := make([]*big.Rat, g.NumEdges())
	for i := range probs {
		probs[i] = new(big.Rat).SetInt64(1)
	}
	return &ProbGraph{G: g, probs: probs}
}

// SetProb sets π of the i-th edge (edge-list order).
func (p *ProbGraph) SetProb(i int, r *big.Rat) error {
	if i < 0 || i >= len(p.probs) {
		return fmt.Errorf("probgraph: edge index %d out of range", i)
	}
	if r.Sign() < 0 || r.Cmp(RatOne) > 0 {
		return fmt.Errorf("probgraph: probability %s outside [0,1]", r.RatString())
	}
	p.probs[i] = new(big.Rat).Set(r)
	return nil
}

// SetEdgeProb sets π of the edge (from, to).
func (p *ProbGraph) SetEdgeProb(from, to Vertex, r *big.Rat) error {
	i, ok := p.G.EdgeIndex(from, to)
	if !ok {
		return fmt.Errorf("probgraph: no edge %d->%d", from, to)
	}
	return p.SetProb(i, r)
}

// MustSetEdgeProb is SetEdgeProb that panics on error.
func (p *ProbGraph) MustSetEdgeProb(from, to Vertex, r *big.Rat) {
	if err := p.SetEdgeProb(from, to, r); err != nil {
		panic(err)
	}
}

// Prob returns π of the i-th edge. The result must not be mutated.
func (p *ProbGraph) Prob(i int) *big.Rat { return p.probs[i] }

// EdgeProb returns π of the edge (from, to), and whether the edge exists.
func (p *ProbGraph) EdgeProb(from, to Vertex) (*big.Rat, bool) {
	i, ok := p.G.EdgeIndex(from, to)
	if !ok {
		return nil, false
	}
	return p.probs[i], true
}

// UncertainEdges returns the indices of edges with 0 < π < 1; only these
// need to be branched on when enumerating possible worlds.
func (p *ProbGraph) UncertainEdges() []int {
	var out []int
	for i, r := range p.probs {
		if r.Sign() > 0 && r.Cmp(RatOne) < 0 {
			out = append(out, i)
		}
	}
	return out
}

// WorldProb returns the probability of the possible world keeping exactly
// the edges with keep[i] true.
func (p *ProbGraph) WorldProb(keep []bool) *big.Rat {
	if len(keep) != len(p.probs) {
		panic("probgraph: keep mask length mismatch")
	}
	w := new(big.Rat).SetInt64(1)
	tmp := new(big.Rat)
	for i, k := range keep {
		if k {
			w.Mul(w, p.probs[i])
		} else {
			tmp.Sub(RatOne, p.probs[i])
			w.Mul(w, tmp)
		}
	}
	return w
}

// Clone returns a deep copy of p.
func (p *ProbGraph) Clone() *ProbGraph {
	q := &ProbGraph{G: p.G.Clone(), probs: make([]*big.Rat, len(p.probs))}
	for i, r := range p.probs {
		q.probs[i] = new(big.Rat).Set(r)
	}
	return q
}

// CloneProbs returns a probabilistic graph sharing p's underlying
// graph value but owning its probability assignment: SetProb on either
// never affects the other (probabilities are stored as fresh copies and
// replaced whole, never mutated in place). This is the reweight-lane
// constructor — K lanes over one structure share one *Graph, which is
// what lets batch consumers (the engine's same-structure grouping, the
// server's multi-vector reweight) recognize the lanes as groupable by
// graph identity instead of re-canonicalizing each.
func (p *ProbGraph) CloneProbs() *ProbGraph {
	q := &ProbGraph{G: p.G, probs: make([]*big.Rat, len(p.probs))}
	copy(q.probs, p.probs)
	return q
}

// Validate checks that every probability is a rational in [0, 1].
func (p *ProbGraph) Validate() error {
	if len(p.probs) != p.G.NumEdges() {
		return fmt.Errorf("probgraph: %d probabilities for %d edges", len(p.probs), p.G.NumEdges())
	}
	for i, r := range p.probs {
		if r == nil {
			return fmt.Errorf("probgraph: edge %d has nil probability", i)
		}
		if r.Sign() < 0 || r.Cmp(RatOne) > 0 {
			return fmt.Errorf("probgraph: edge %d probability %s outside [0,1]", i, r.RatString())
		}
	}
	return nil
}

// Components splits p into one probabilistic graph per connected component
// of the underlying graph, preserving edge probabilities. Per Lemma 3.7,
// for a connected query G, Pr(G ⇝ H) = 1 − Π_i (1 − Pr(G ⇝ Hᵢ)) over the
// components Hᵢ.
func (p *ProbGraph) Components() []*ProbGraph {
	out, _ := p.ComponentsWithEdges()
	return out
}

// ComponentsWithEdges is Components together with, per component, the map
// from the component's edge indices back to the edge indices of p. The
// maps let probability-independent artifacts compiled per component (the
// plans of internal/plan) be re-evaluated against fresh probability
// vectors indexed by p's full edge list.
func (p *ProbGraph) ComponentsWithEdges() ([]*ProbGraph, [][]int) {
	var out []*ProbGraph
	var edgeMaps [][]int
	for _, comp := range p.G.ConnectedComponents() {
		sub, remap := p.G.InducedSubgraph(comp)
		q := NewProbGraph(sub)
		// InducedSubgraph scans p's edge list in order, so the component's
		// j-th edge is the j-th edge of p with both endpoints in comp.
		em := make([]int, 0, sub.NumEdges())
		for i, e := range p.G.edges {
			nf, okf := remap[e.From]
			nt, okt := remap[e.To]
			if okf && okt {
				q.MustSetEdgeProb(nf, nt, p.probs[i])
				em = append(em, i)
			}
		}
		out = append(out, q)
		edgeMaps = append(edgeMaps, em)
	}
	return out, edgeMaps
}

// Probs returns the probability vector π in edge-list order, as a fresh
// slice sharing the underlying (read-only) *big.Rat values. It is the
// canonical argument to evaluate a compiled plan against p itself.
func (p *ProbGraph) Probs() []*big.Rat {
	out := make([]*big.Rat, len(p.probs))
	copy(out, p.probs)
	return out
}

// String renders the probabilistic graph for debugging.
func (p *ProbGraph) String() string {
	s := "prob" + p.G.String() + " π={"
	for i, r := range p.probs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s:%s", p.G.edges[i], r.RatString())
	}
	return s + "}"
}
