package graph

// ForEachHomomorphism enumerates every homomorphism from query to
// instance, invoking fn with each (the slice is reused; copy it to keep
// it). Enumeration stops early when fn returns false. The count of
// homomorphisms can be exponential; this is used by the match-enumeration
// fallback solver and by tests.
func ForEachHomomorphism(query, instance *Graph, fn func(Homomorphism) bool) {
	if query.n == 0 {
		fn(Homomorphism{})
		return
	}
	if instance.n == 0 {
		return
	}
	order := searchOrder(query)
	h := make(Homomorphism, query.n)
	for i := range h {
		h[i] = -1
	}
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == len(order) {
			return fn(h)
		}
		v := order[pos]
		for _, cand := range candidates(query, instance, v, h) {
			if consistent(query, instance, v, cand, h) {
				h[v] = cand
				if !rec(pos + 1) {
					h[v] = -1
					return false
				}
				h[v] = -1
			}
		}
		return true
	}
	rec(0)
}

// CountHomomorphisms returns the number of homomorphisms from query to
// instance, up to the given limit (0 = no limit). This differs from the
// PHom problem (which weights worlds, not matches); it exists for tests
// and diagnostics.
func CountHomomorphisms(query, instance *Graph, limit int) int {
	count := 0
	ForEachHomomorphism(query, instance, func(Homomorphism) bool {
		count++
		return limit == 0 || count < limit
	})
	return count
}
