package graph

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestRatHelper(t *testing.T) {
	if Rat("1/2").Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatal("Rat(1/2)")
	}
	if Rat("0.25").Cmp(big.NewRat(1, 4)) != 0 {
		t.Fatal("Rat(0.25)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("malformed rational should panic")
		}
	}()
	Rat("zz")
}

func TestProbGraphDefaultsAndValidation(t *testing.T) {
	g := Path1WP("R", "S")
	p := NewProbGraph(g)
	if err := p.Validate(); err != nil {
		t.Fatalf("fresh ProbGraph invalid: %v", err)
	}
	if p.Prob(0).Cmp(RatOne) != 0 {
		t.Fatal("default probability must be 1")
	}
	if err := p.SetProb(0, big.NewRat(3, 2)); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if err := p.SetProb(0, big.NewRat(-1, 2)); err == nil {
		t.Fatal("negative probability accepted")
	}
	if err := p.SetProb(5, RatHalf); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := p.SetEdgeProb(0, 2, RatHalf); err == nil {
		t.Fatal("missing edge accepted")
	}
	if err := p.SetEdgeProb(0, 1, RatHalf); err != nil {
		t.Fatalf("SetEdgeProb: %v", err)
	}
	if pr, ok := p.EdgeProb(0, 1); !ok || pr.Cmp(RatHalf) != 0 {
		t.Fatal("EdgeProb readback wrong")
	}
}

func TestSetProbCopies(t *testing.T) {
	g := Path1WP("R")
	p := NewProbGraph(g)
	r := big.NewRat(1, 2)
	p.MustSetEdgeProb(0, 1, r)
	r.SetInt64(0) // mutate caller's value
	if p.Prob(0).Cmp(RatHalf) != 0 {
		t.Fatal("SetProb must copy the rational")
	}
}

// TestWorldProbsSumToOne: the probabilities of all 2^|E| possible worlds
// must sum to exactly 1, for random probabilistic graphs.
func TestWorldProbsSumToOne(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		g := randomGraphForClasses(r)
		p := NewProbGraph(g)
		for i := 0; i < g.NumEdges(); i++ {
			d := int64(1 + r.Intn(8))
			if err := p.SetProb(i, big.NewRat(r.Int63n(d+1), d)); err != nil {
				t.Fatal(err)
			}
		}
		m := g.NumEdges()
		if m > 12 {
			continue
		}
		total := new(big.Rat)
		keep := make([]bool, m)
		for mask := 0; mask < 1<<uint(m); mask++ {
			for i := 0; i < m; i++ {
				keep[i] = mask&(1<<uint(i)) != 0
			}
			total.Add(total, p.WorldProb(keep))
		}
		if total.Cmp(RatOne) != 0 {
			t.Fatalf("world probabilities sum to %s, want 1", total.RatString())
		}
	}
}

func TestUncertainEdges(t *testing.T) {
	g := Path1WP("R", "S", "T")
	p := NewProbGraph(g)
	p.MustSetEdgeProb(1, 2, RatHalf)
	p.MustSetEdgeProb(2, 3, RatZero)
	u := p.UncertainEdges()
	if len(u) != 1 || u[0] != 1 {
		t.Fatalf("UncertainEdges = %v, want [1]", u)
	}
}

func TestProbGraphComponents(t *testing.T) {
	u, _ := DisjointUnion(Path1WP("R"), Path1WP("S", "S"))
	p := NewProbGraph(u)
	p.MustSetEdgeProb(0, 1, RatHalf)          // first component's edge
	p.MustSetEdgeProb(2, 3, big.NewRat(1, 4)) // second component's first edge
	comps := p.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components", len(comps))
	}
	if comps[0].Prob(0).Cmp(RatHalf) != 0 {
		t.Fatal("component 0 lost its probability")
	}
	if comps[1].Prob(0).Cmp(big.NewRat(1, 4)) != 0 {
		t.Fatal("component 1 lost its probability")
	}
	if err := comps[0].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneProbGraph(t *testing.T) {
	g := Path1WP("R")
	p := NewProbGraph(g)
	p.MustSetEdgeProb(0, 1, RatHalf)
	q := p.Clone()
	q.MustSetEdgeProb(0, 1, RatZero)
	if p.Prob(0).Cmp(RatHalf) != 0 {
		t.Fatal("clone mutation leaked")
	}
}
