package graph

// This file implements general graph homomorphism testing by backtracking
// search. It is used as the correctness oracle for the specialized
// polynomial-time algorithms, inside the possible-world brute-force
// solver, and for the candidate-match checks of §4.2 when the X-property
// algorithm does not apply.

// Homomorphism represents a homomorphism h : V(G) → V(H) as a slice
// indexed by the vertices of G.
type Homomorphism []Vertex

// FindHomomorphism searches for a homomorphism from query to instance and
// returns one if it exists. The search assigns query vertices in a
// connectivity-aware order and propagates adjacency constraints, which
// keeps it fast on the tree-shaped graphs of the paper, but the worst case
// is exponential: graph homomorphism is NP-complete in general.
func FindHomomorphism(query, instance *Graph) (Homomorphism, bool) {
	if query.n == 0 {
		return Homomorphism{}, true
	}
	if instance.n == 0 {
		return nil, false
	}
	order := searchOrder(query)
	h := make(Homomorphism, query.n)
	for i := range h {
		h[i] = -1
	}
	if assign(query, instance, order, 0, h) {
		return h, true
	}
	return nil, false
}

// HasHomomorphism reports whether query ⇝ instance.
func HasHomomorphism(query, instance *Graph) bool {
	_, ok := FindHomomorphism(query, instance)
	return ok
}

// Equivalent reports whether two query graphs are equivalent in the
// paper's sense: G ⇝ H iff G′ ⇝ H for every H, which holds iff G ⇝ G′ and
// G′ ⇝ G.
func Equivalent(g1, g2 *Graph) bool {
	return HasHomomorphism(g1, g2) && HasHomomorphism(g2, g1)
}

// IsHomomorphism verifies that h is a homomorphism from query to instance.
func IsHomomorphism(query, instance *Graph, h Homomorphism) bool {
	if len(h) != query.n {
		return false
	}
	for _, v := range h {
		if v < 0 || int(v) >= instance.n {
			return false
		}
	}
	for _, e := range query.edges {
		l, ok := instance.HasEdge(h[e.From], h[e.To])
		if !ok || l != e.Label {
			return false
		}
	}
	return true
}

// searchOrder returns the query vertices ordered so that each vertex
// (except component starters) has at least one earlier neighbor, starting
// each component from a vertex of maximum degree.
func searchOrder(g *Graph) []Vertex {
	visited := make([]bool, g.n)
	order := make([]Vertex, 0, g.n)
	for {
		start, bestDeg := Vertex(-1), -1
		for v := 0; v < g.n; v++ {
			if !visited[v] && g.UndirectedDegree(Vertex(v)) > bestDeg {
				start, bestDeg = Vertex(v), g.UndirectedDegree(Vertex(v))
			}
		}
		if start < 0 {
			break
		}
		queue := []Vertex{start}
		visited[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return order
}

// assign extends the partial homomorphism h to order[pos:].
func assign(query, instance *Graph, order []Vertex, pos int, h Homomorphism) bool {
	if pos == len(order) {
		return true
	}
	v := order[pos]
	for _, cand := range candidates(query, instance, v, h) {
		if consistent(query, instance, v, cand, h) {
			h[v] = cand
			if assign(query, instance, order, pos+1, h) {
				return true
			}
			h[v] = -1
		}
	}
	return false
}

// candidates returns candidate images for query vertex v given the partial
// assignment h, derived from the tightest constraint of an already
// assigned neighbor, or all instance vertices when v starts a component.
func candidates(query, instance *Graph, v Vertex, h Homomorphism) []Vertex {
	best := []Vertex(nil)
	bestN := -1
	consider := func(cands []Vertex) {
		if bestN < 0 || len(cands) < bestN {
			best, bestN = cands, len(cands)
		}
	}
	for _, ei := range query.out[v] {
		e := query.edges[ei]
		if h[e.To] >= 0 {
			var cs []Vertex
			for _, hi := range instance.in[h[e.To]] {
				he := instance.edges[hi]
				if he.Label == e.Label {
					cs = append(cs, he.From)
				}
			}
			consider(cs)
		}
	}
	for _, ei := range query.in[v] {
		e := query.edges[ei]
		if h[e.From] >= 0 {
			var cs []Vertex
			for _, hi := range instance.out[h[e.From]] {
				he := instance.edges[hi]
				if he.Label == e.Label {
					cs = append(cs, he.To)
				}
			}
			consider(cs)
		}
	}
	if bestN >= 0 {
		return best
	}
	all := make([]Vertex, instance.n)
	for i := range all {
		all[i] = Vertex(i)
	}
	return all
}

// consistent checks every edge between v and assigned neighbors under
// h[v] = img.
func consistent(query, instance *Graph, v Vertex, img Vertex, h Homomorphism) bool {
	for _, ei := range query.out[v] {
		e := query.edges[ei]
		to := h[e.To]
		if e.To == v {
			to = img // self-loop
		}
		if to >= 0 {
			l, ok := instance.HasEdge(img, to)
			if !ok || l != e.Label {
				return false
			}
		}
	}
	for _, ei := range query.in[v] {
		e := query.edges[ei]
		from := h[e.From]
		if e.From == v {
			from = img
		}
		if from >= 0 {
			l, ok := instance.HasEdge(from, img)
			if !ok || l != e.Label {
				return false
			}
		}
	}
	return true
}
