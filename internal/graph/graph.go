package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Vertex identifies a vertex of a Graph. Vertices of a graph with n
// vertices are exactly 0 … n−1.
type Vertex int

// Label is an edge label drawn from the finite alphabet σ. The unlabeled
// setting of the paper corresponds to every edge carrying the same label.
type Label string

// Unlabeled is the conventional single label used for graphs in the
// unlabeled setting (|σ| = 1).
const Unlabeled Label = "_"

// Edge is a directed labeled edge u → v.
type Edge struct {
	From  Vertex
	To    Vertex
	Label Label
}

func (e Edge) String() string {
	return fmt.Sprintf("%d -%s-> %d", e.From, e.Label, e.To)
}

type pair struct{ from, to Vertex }

// Graph is a finite directed graph with labeled edges and no multi-edges.
// The zero value is not usable; create graphs with New.
type Graph struct {
	n     int
	edges []Edge
	out   [][]int // vertex -> indices into edges
	in    [][]int
	index map[pair]int
	// tightest memoizes TightestClass()+1 (0 = not yet computed).
	// Classification walks the whole graph repeatedly, and serving paths
	// ask for it once per evaluation of a structure that never changes —
	// AddVertex/AddEdge reset it, everything else leaves the graph
	// immutable. Atomic so concurrent readers of a shared immutable
	// graph (the lanes of a multi-vector reweight) race benignly: every
	// writer stores the same value.
	tightest atomic.Int32
}

// New returns a graph with n isolated vertices (n ≥ 1; the paper requires
// a non-empty vertex set, but n = 0 is tolerated for intermediate
// construction and rejected by validation where it matters).
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:     n,
		out:   make([][]int, n),
		in:    make([][]int, n),
		index: make(map[pair]int),
	}
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddVertex appends a fresh isolated vertex and returns it.
func (g *Graph) AddVertex() Vertex {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.n++
	g.tightest.Store(0)
	return Vertex(g.n - 1)
}

// AddEdge inserts the edge from −label→ to. It fails if an endpoint is out
// of range, if the edge is a self-loop on the same pair already present,
// or if the ordered pair (from, to) already carries an edge (the paper's
// graphs have no multi-edges: λ is a function on E).
func (g *Graph) AddEdge(from, to Vertex, label Label) error {
	if from < 0 || int(from) >= g.n || to < 0 || int(to) >= g.n {
		return fmt.Errorf("graph: edge %d->%d out of range (n=%d)", from, to, g.n)
	}
	if _, dup := g.index[pair{from, to}]; dup {
		return fmt.Errorf("graph: duplicate edge %d->%d (multi-edges are not allowed)", from, to)
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{From: from, To: to, Label: label})
	g.out[from] = append(g.out[from], idx)
	g.in[to] = append(g.in[to], idx)
	g.index[pair{from, to}] = idx
	g.tightest.Store(0)
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for literals in
// tests and examples.
func (g *Graph) MustAddEdge(from, to Vertex, label Label) {
	if err := g.AddEdge(from, to, label); err != nil {
		panic(err)
	}
}

// Edge returns the i-th edge in insertion order.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list in insertion order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// EdgeIndex returns the index of the edge (from, to) and whether it exists.
func (g *Graph) EdgeIndex(from, to Vertex) (int, bool) {
	i, ok := g.index[pair{from, to}]
	return i, ok
}

// HasEdge reports whether the edge (from, to) exists, and its label.
func (g *Graph) HasEdge(from, to Vertex) (Label, bool) {
	if i, ok := g.index[pair{from, to}]; ok {
		return g.edges[i].Label, true
	}
	return "", false
}

// OutEdges returns the indices of edges leaving v.
func (g *Graph) OutEdges(v Vertex) []int { return g.out[v] }

// InEdges returns the indices of edges entering v.
func (g *Graph) InEdges(v Vertex) []int { return g.in[v] }

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v Vertex) int { return len(g.out[v]) }

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v Vertex) int { return len(g.in[v]) }

// Neighbors returns the sorted distinct neighbors of v in the underlying
// undirected graph (v itself is included only if v has a self-loop).
func (g *Graph) Neighbors(v Vertex) []Vertex {
	set := map[Vertex]struct{}{}
	for _, i := range g.out[v] {
		set[g.edges[i].To] = struct{}{}
	}
	for _, i := range g.in[v] {
		set[g.edges[i].From] = struct{}{}
	}
	out := make([]Vertex, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UndirectedDegree returns the degree of v in the underlying undirected
// graph: the number of distinct neighbors (antiparallel edge pairs count
// once).
func (g *Graph) UndirectedDegree(v Vertex) int { return len(g.Neighbors(v)) }

// Labels returns the sorted set of labels used by edges of g.
func (g *Graph) Labels() []Label {
	set := map[Label]struct{}{}
	for _, e := range g.edges {
		set[e.Label] = struct{}{}
	}
	out := make([]Label, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsUnlabeled reports whether g uses at most one distinct label.
func (g *Graph) IsUnlabeled() bool { return len(g.Labels()) <= 1 }

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := New(g.n)
	for _, e := range g.edges {
		h.MustAddEdge(e.From, e.To, e.Label)
	}
	return h
}

// WithoutEdge returns a fresh graph equal to g with the i-th edge
// removed; the remaining edges keep their relative insertion order
// (edge j > i becomes edge j−1). Graphs have no in-place edge removal
// by design — a removal renumbers the edge list, and every consumer of
// a *Graph (plans, caches, concurrent solves) relies on a published
// graph never mutating structurally — so removal is rebuild-as-copy.
// The copy also starts with a fresh class memo.
func (g *Graph) WithoutEdge(i int) *Graph {
	if i < 0 || i >= len(g.edges) {
		panic(fmt.Sprintf("graph: WithoutEdge index %d out of range (m=%d)", i, len(g.edges)))
	}
	h := New(g.n)
	for j, e := range g.edges {
		if j != i {
			h.MustAddEdge(e.From, e.To, e.Label)
		}
	}
	return h
}

// SubgraphKeeping returns the subgraph of g (same vertex set, per the
// paper's convention) whose edges are exactly those of g with keep[i]
// true, indexed by g's edge order.
func (g *Graph) SubgraphKeeping(keep []bool) *Graph {
	if len(keep) != len(g.edges) {
		panic("graph: keep mask length mismatch")
	}
	h := New(g.n)
	for i, e := range g.edges {
		if keep[i] {
			h.MustAddEdge(e.From, e.To, e.Label)
		}
	}
	return h
}

// Reverse returns the graph with every edge reversed (labels kept).
func (g *Graph) Reverse() *Graph {
	h := New(g.n)
	for _, e := range g.edges {
		h.MustAddEdge(e.To, e.From, e.Label)
	}
	return h
}

// String renders the graph compactly, for debugging and error messages.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph{n=%d;", g.n)
	for i, e := range g.edges {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte(' ')
		b.WriteString(e.String())
	}
	b.WriteString(" }")
	return b.String()
}

// Path1WP builds the one-way path a₀ −labels[0]→ a₁ −labels[1]→ … with
// len(labels)+1 vertices. An empty label list yields the single-vertex
// graph, which is the 1WP of length 0.
func Path1WP(labels ...Label) *Graph {
	g := New(len(labels) + 1)
	for i, l := range labels {
		g.MustAddEdge(Vertex(i), Vertex(i+1), l)
	}
	return g
}

// UnlabeledPath returns the unlabeled 1WP →^m with m edges.
func UnlabeledPath(m int) *Graph {
	labels := make([]Label, m)
	for i := range labels {
		labels[i] = Unlabeled
	}
	return Path1WP(labels...)
}

// Step is one edge of a two-way path description: the label, and whether
// the edge points forward (aᵢ → aᵢ₊₁) or backward (aᵢ ← aᵢ₊₁).
type Step struct {
	Label   Label
	Forward bool
}

// Fwd and Bwd construct Steps; they keep 2WP literals readable.
func Fwd(l Label) Step { return Step{Label: l, Forward: true} }

// Bwd constructs a backward step (see Fwd).
func Bwd(l Label) Step { return Step{Label: l, Forward: false} }

// Path2WP builds the two-way path a₀ − a₁ − … following steps.
func Path2WP(steps ...Step) *Graph {
	g := New(len(steps) + 1)
	for i, s := range steps {
		if s.Forward {
			g.MustAddEdge(Vertex(i), Vertex(i+1), s.Label)
		} else {
			g.MustAddEdge(Vertex(i+1), Vertex(i), s.Label)
		}
	}
	return g
}

// DisjointUnion returns the disjoint union of the given graphs, with the
// vertices of each part shifted after those of the previous parts, plus
// the vertex offset of each part.
func DisjointUnion(parts ...*Graph) (*Graph, []Vertex) {
	total := 0
	offsets := make([]Vertex, len(parts))
	for i, p := range parts {
		offsets[i] = Vertex(total)
		total += p.n
	}
	g := New(total)
	for i, p := range parts {
		off := offsets[i]
		for _, e := range p.edges {
			g.MustAddEdge(e.From+off, e.To+off, e.Label)
		}
	}
	return g, offsets
}
