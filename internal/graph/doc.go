// Package graph implements the directed edge-labeled graphs of Amarilli,
// Monet and Senellart, "Conjunctive Queries on Probabilistic Graphs:
// Combined Complexity" (PODS 2017), together with the graph classes,
// homomorphism tests and structural notions (graded DAGs, levels, heights)
// that the paper's algorithms rely on.
//
// A Graph is a triple (V, E, λ): V is {0, …, n−1}, E ⊆ V² has no
// multi-edges (each ordered pair carries at most one label), and
// λ : E → σ assigns a label to every edge. Following the paper, graphs are
// always directed and non-empty, and a subgraph keeps the full vertex set
// while dropping edges.
package graph
