package graph

import (
	"math/rand"
	"testing"
)

func TestHomomorphismBasics(t *testing.T) {
	// The query of Example 2.2: x −R→ y −S→ z ←S− t.
	q := New(4)
	q.MustAddEdge(0, 1, "R")
	q.MustAddEdge(1, 2, "S")
	q.MustAddEdge(3, 2, "S")

	// An instance where y and t can collapse.
	h := New(3)
	h.MustAddEdge(0, 1, "R")
	h.MustAddEdge(1, 2, "S")
	if !HasHomomorphism(q, h) {
		t.Fatal("query should map (t collapses onto y)")
	}

	// Without the R edge there is no match.
	h2 := New(3)
	h2.MustAddEdge(1, 2, "S")
	if HasHomomorphism(q, h2) {
		t.Fatal("query must not map without an R edge")
	}
}

func TestHomomorphismLabelsMatter(t *testing.T) {
	q := Path1WP("R")
	h := Path1WP("S")
	if HasHomomorphism(q, h) {
		t.Fatal("labels must match")
	}
}

func TestHomomorphismDirectionsMatter(t *testing.T) {
	q := UnlabeledPath(2)
	h := Path2WP(Fwd(Unlabeled), Bwd(Unlabeled))
	if HasHomomorphism(q, h) {
		t.Fatal("→→ must not map into →←")
	}
	h2 := UnlabeledPath(2)
	if !HasHomomorphism(q, h2) {
		t.Fatal("→→ should map into →→")
	}
}

func TestHomomorphismSelfLoop(t *testing.T) {
	q := New(1)
	q.MustAddEdge(0, 0, Unlabeled)
	h := UnlabeledPath(5)
	if HasHomomorphism(q, h) {
		t.Fatal("self-loop query cannot map to a DAG")
	}
	hl := New(2)
	hl.MustAddEdge(0, 1, Unlabeled)
	hl.MustAddEdge(1, 1, Unlabeled)
	if !HasHomomorphism(q, hl) {
		t.Fatal("self-loop query should map to an instance loop")
	}
	// Any graph maps into a self-loop (unlabeled).
	big := UnlabeledPath(4)
	if !HasHomomorphism(big, hl) {
		t.Fatal("path should map into the loop vertex")
	}
}

func TestEdgelessQuery(t *testing.T) {
	q := New(3) // three isolated vertices
	h := New(1)
	if !HasHomomorphism(q, h) {
		t.Fatal("edgeless query maps everything to the single vertex")
	}
}

func TestLongerPathsDontMapToShorter(t *testing.T) {
	for m := 1; m <= 6; m++ {
		for k := 0; k <= 6; k++ {
			got := HasHomomorphism(UnlabeledPath(m), UnlabeledPath(k))
			want := m <= k
			if got != want {
				t.Errorf("→^%d ⇝ →^%d = %v, want %v", m, k, got, want)
			}
		}
	}
}

// TestFoundHomomorphismsVerify: whatever the search returns must be a
// real homomorphism, across many random pairs; and when the search fails,
// exhaustive assignment enumeration (for tiny graphs) must fail too.
func TestFoundHomomorphismsVerify(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		q := randomGraphForClasses(r)
		h := randomGraphForClasses(r)
		hm, ok := FindHomomorphism(q, h)
		if ok {
			if !IsHomomorphism(q, h, hm) {
				t.Fatalf("FindHomomorphism returned a non-homomorphism:\nq=%v\nh=%v\nhm=%v", q, h, hm)
			}
			continue
		}
		if q.NumVertices() <= 4 && h.NumVertices() <= 4 {
			if exhaustiveHom(q, h) {
				t.Fatalf("search missed an existing homomorphism:\nq=%v\nh=%v", q, h)
			}
		}
	}
}

// exhaustiveHom tries all |V(H)|^|V(G)| assignments.
func exhaustiveHom(q, h *Graph) bool {
	n, m := q.NumVertices(), h.NumVertices()
	if m == 0 {
		return n == 0
	}
	assign := make(Homomorphism, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return IsHomomorphism(q, h, assign)
		}
		for w := 0; w < m; w++ {
			assign[i] = Vertex(w)
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func TestEquivalent(t *testing.T) {
	// A DWT is equivalent to its longest downward path (unlabeled).
	dwt := New(5)
	dwt.MustAddEdge(0, 1, Unlabeled)
	dwt.MustAddEdge(0, 2, Unlabeled)
	dwt.MustAddEdge(1, 3, Unlabeled)
	dwt.MustAddEdge(3, 4, Unlabeled)
	if !Equivalent(dwt, UnlabeledPath(3)) {
		t.Fatal("DWT should be equivalent to →^height")
	}
	if Equivalent(dwt, UnlabeledPath(2)) {
		t.Fatal("DWT must not be equivalent to a shorter path")
	}
}

func TestForEachHomomorphismCount(t *testing.T) {
	// →^1 into →^k has exactly k homomorphisms.
	for k := 1; k <= 5; k++ {
		got := CountHomomorphisms(UnlabeledPath(1), UnlabeledPath(k), 0)
		if got != k {
			t.Errorf("count(→, →^%d) = %d, want %d", k, got, k)
		}
	}
	// Early stop via limit.
	if got := CountHomomorphisms(UnlabeledPath(1), UnlabeledPath(5), 2); got != 2 {
		t.Errorf("limited count = %d, want 2", got)
	}
}

func TestForEachHomomorphismMatchesFind(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		q := randomGraphForClasses(r)
		h := randomGraphForClasses(r)
		any := false
		ForEachHomomorphism(q, h, func(hm Homomorphism) bool {
			any = true
			if !IsHomomorphism(q, h, hm) {
				t.Fatalf("enumerated non-homomorphism")
			}
			return false
		})
		if any != HasHomomorphism(q, h) {
			t.Fatalf("enumeration and search disagree on existence: q=%v h=%v", q, h)
		}
	}
}
