package approx

import (
	"context"
	"math/big"
	"testing"

	"phom/internal/boolform"
)

// FuzzKarpLubySample: the estimator must hold its deterministic
// invariants on arbitrary formula shapes — the estimate and its bounds
// are probabilities in [0,1] with Lo ≤ P ≤ Hi, equal seeds reproduce
// the full Estimate byte-for-byte, fully deterministic (probability
// 0/1) inputs agree exactly with brute-force enumeration, and nothing
// ever panics. The clause-conditioned sampler guarantees every drawn
// valuation satisfies its chosen clause, which surfaces here as
// N(ν) ≥ 1: a violation would make a score exceed 1 and push the
// estimate past the [0,1] clamp invariants below.
func FuzzKarpLubySample(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(2), []byte{0, 1, 1, 2}, []byte{4, 4, 4, 4})
	f.Add(uint64(7), uint8(8), uint8(3), []byte{0, 1, 2, 3, 4, 5, 6, 7, 0}, []byte{0, 8, 1, 7, 2, 6, 3, 5})
	f.Add(uint64(42), uint8(6), uint8(1), []byte{5, 5, 5}, []byte{8, 0, 8, 0, 8, 0})
	f.Add(uint64(0), uint8(2), uint8(2), []byte{}, []byte{4, 4})
	f.Fuzz(func(t *testing.T, seed uint64, nv, width uint8, clauseData, probData []byte) {
		n := int(nv%16) + 1
		w := int(width%4) + 1
		dnf := boolform.NewDNF(n)
		for i := 0; i+w <= len(clauseData) && len(dnf.Clauses) < 12; i += w {
			vars := make([]boolform.Var, w)
			for j := 0; j < w; j++ {
				vars[j] = boolform.Var(int(clauseData[i+j]) % n)
			}
			dnf.AddClause(vars...)
		}
		probs := make([]*big.Rat, n)
		deterministic := true
		for i := range probs {
			num := int64(0)
			if i < len(probData) {
				num = int64(probData[i] % 9)
			}
			probs[i] = big.NewRat(num, 8)
			if num != 0 && num != 8 {
				deterministic = false
			}
		}
		p := Params{Epsilon: 0.4, Delta: 0.3, Seed: seed}
		est, err := KarpLuby(context.Background(), dnf, probs, p)
		if err != nil {
			t.Fatalf("KarpLuby failed on valid input: %v", err)
		}
		if est.P < 0 || est.P > 1 || est.Lo < 0 || est.Hi > 1 || est.Lo > est.P || est.P > est.Hi {
			t.Fatalf("malformed estimate: %+v", est)
		}
		twin, err := KarpLuby(context.Background(), dnf, probs, p)
		if err != nil {
			t.Fatalf("twin run failed: %v", err)
		}
		if est != twin {
			t.Fatalf("equal seeds disagree: %+v vs %+v", est, twin)
		}
		if deterministic {
			if !est.Exact {
				t.Fatalf("deterministic input sampled: %+v", est)
			}
			want := dnf.BruteForceProb(probs)
			if got := new(big.Rat).SetFloat64(est.P); got.Cmp(want) != 0 {
				t.Fatalf("deterministic input: estimate %v, exact %v", got, want)
			}
		}
	})
}
