package approx

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/boolform"
	"phom/internal/phomerr"
)

func randDNF(r *rand.Rand, n, clauses, width int) *boolform.DNF {
	f := boolform.NewDNF(n)
	for c := 0; c < clauses; c++ {
		w := 1 + r.Intn(width)
		vars := make([]boolform.Var, w)
		for i := range vars {
			vars[i] = boolform.Var(r.Intn(n))
		}
		f.AddClause(vars...)
	}
	return f
}

func randProbs(r *rand.Rand, n int) []*big.Rat {
	out := make([]*big.Rat, n)
	for i := range out {
		d := int64(1 + r.Intn(8))
		out[i] = big.NewRat(r.Int63n(d+1), d)
	}
	return out
}

func halves(n int) []*big.Rat {
	out := make([]*big.Rat, n)
	for i := range out {
		out[i] = big.NewRat(1, 2)
	}
	return out
}

func TestKarpLubyParamValidation(t *testing.T) {
	f := boolform.NewDNF(2)
	f.AddClause(0, 1)
	probs := halves(2)
	bad := []Params{
		{Epsilon: 0, Delta: 0.1},
		{Epsilon: 1, Delta: 0.1},
		{Epsilon: -0.5, Delta: 0.1},
		{Epsilon: 0.1, Delta: 0},
		{Epsilon: 0.1, Delta: 1},
		{Epsilon: 0.1, Delta: 2},
	}
	for _, p := range bad {
		if _, err := KarpLuby(context.Background(), f, probs, p); !errors.Is(err, phomerr.ErrBadInput) {
			t.Errorf("KarpLuby(%+v) err = %v, want ErrBadInput", p, err)
		}
	}
	ok := Params{Epsilon: 0.5, Delta: 0.5}
	if _, err := KarpLuby(context.Background(), f, probs, ok); err != nil {
		t.Fatalf("KarpLuby(%+v): %v", ok, err)
	}
	// Probability vector: wrong length, nil entry, out of range.
	if _, err := KarpLuby(context.Background(), f, halves(3), ok); !errors.Is(err, phomerr.ErrBadInput) {
		t.Errorf("wrong-length probs err = %v, want ErrBadInput", err)
	}
	if _, err := KarpLuby(context.Background(), f, []*big.Rat{nil, big.NewRat(1, 2)}, ok); !errors.Is(err, phomerr.ErrBadInput) {
		t.Errorf("nil prob err = %v, want ErrBadInput", err)
	}
	if _, err := KarpLuby(context.Background(), f, []*big.Rat{big.NewRat(3, 2), big.NewRat(1, 2)}, ok); !errors.Is(err, phomerr.ErrBadInput) {
		t.Errorf("out-of-range prob err = %v, want ErrBadInput", err)
	}
}

// TestKarpLubyExactShortCircuits pins the deterministic-edge contract:
// formulas whose truth value is decided by probability-0/1 edges answer
// exactly, without sampling, byte-identical to the exact oracles.
func TestKarpLubyExactShortCircuits(t *testing.T) {
	p := Params{Epsilon: 0.3, Delta: 0.1, Seed: 1}
	one, zero := big.NewRat(1, 1), new(big.Rat)

	// All clauses dead (each contains a probability-0 variable).
	f := boolform.NewDNF(3)
	f.AddClause(0, 1)
	f.AddClause(0, 2)
	est, err := KarpLuby(context.Background(), f, []*big.Rat{zero, one, one}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Exact || est.P != 0 || est.Lo != 0 || est.Hi != 0 || est.Samples != 0 {
		t.Fatalf("dead formula: %+v, want exact 0", est)
	}

	// One clause certain (all its variables exactly 1).
	g := boolform.NewDNF(3)
	g.AddClause(0, 1)
	g.AddClause(2)
	est, err = KarpLuby(context.Background(), g, []*big.Rat{big.NewRat(1, 2), big.NewRat(1, 2), one}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Exact || est.P != 1 || est.Lo != 1 || est.Hi != 1 {
		t.Fatalf("certain formula: %+v, want exact 1", est)
	}

	// Empty formula is false.
	est, err = KarpLuby(context.Background(), boolform.NewDNF(2), halves(2), p)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Exact || est.P != 0 {
		t.Fatalf("empty formula: %+v, want exact 0", est)
	}

	// Fully deterministic probabilities always agree with brute force,
	// whatever the formula shape.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		f := randDNF(r, 8, 5, 3)
		probs := make([]*big.Rat, 8)
		for j := range probs {
			if r.Intn(2) == 0 {
				probs[j] = new(big.Rat)
			} else {
				probs[j] = big.NewRat(1, 1)
			}
		}
		est, err := KarpLuby(context.Background(), f, probs, p)
		if err != nil {
			t.Fatal(err)
		}
		want := f.BruteForceProb(probs)
		if !est.Exact {
			t.Fatalf("deterministic instance sampled: %+v", est)
		}
		if got := new(big.Rat).SetFloat64(est.P); got.Cmp(want) != 0 {
			t.Fatalf("deterministic instance: estimate %v, exact %v", got, want)
		}
	}
}

// TestKarpLubySeedDeterminism is the seeded-twin test: equal inputs and
// equal seeds reproduce the whole Estimate byte-for-byte; distinct
// seeds drive distinct sample paths.
func TestKarpLubySeedDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := randDNF(r, 12, 8, 3)
	probs := halves(12) // interior probabilities: no exact short-circuit, no clamp at 0/1
	p := Params{Epsilon: 0.2, Delta: 0.1, Seed: 42}
	a, err := KarpLuby(context.Background(), f, probs, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Exact || a.Samples == 0 {
		t.Fatalf("expected a sampled estimate, got %+v", a)
	}
	b, err := KarpLuby(context.Background(), f, probs, p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("equal seeds disagree: %+v vs %+v", a, b)
	}
	p2 := p
	p2.Seed = 43
	c, err := KarpLuby(context.Background(), f, probs, p2)
	if err != nil {
		t.Fatal(err)
	}
	if a.P == c.P {
		// Distinct seeds agreeing to the last bit on a genuinely sampled
		// estimate means the seed is not reaching the generator.
		t.Fatalf("seeds 42 and 43 produced identical estimates %v", a.P)
	}
}

func TestKarpLubySampleCountAndLimit(t *testing.T) {
	if got := SampleCount(0, 0.1, 0.1); got != 0 {
		t.Fatalf("SampleCount(0) = %d", got)
	}
	// ⌈3·10·ln(2/0.01)/0.05²⌉ = ⌈63592.0…⌉
	if got := SampleCount(10, 0.05, 0.01); got < 63000 || got > 64000 {
		t.Fatalf("SampleCount(10, 0.05, 0.01) = %d", got)
	}
	// Saturation instead of overflow.
	if got := SampleCount(1<<40, 1e-9, 1e-9); got <= 0 {
		t.Fatalf("SampleCount huge = %d, want saturated positive", got)
	}
	f := boolform.NewDNF(4)
	f.AddClause(0, 1)
	f.AddClause(2, 3)
	_, err := KarpLuby(context.Background(), f, halves(4), Params{Epsilon: 0.1, Delta: 0.1, MaxSamples: 10})
	if !errors.Is(err, phomerr.ErrLimit) {
		t.Fatalf("over-budget err = %v, want ErrLimit", err)
	}
}

func TestKarpLubyCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := randDNF(r, 20, 12, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Default (ε,δ) needs thousands of samples per clause, far past the
	// checkpoint interval, so the pre-canceled context must abort.
	_, err := KarpLuby(ctx, f, halves(20), Params{Epsilon: 0.05, Delta: 0.01, Seed: 1})
	if !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("pre-canceled err = %v, want ErrCanceled", err)
	}
}

// TestKarpLubyStatisticalSoundness is the estimator-level half of the
// differential suite: across many fixed seeds on enumerable formulas,
// the empirical failure rate of |p̂ − p| ≤ ε·p stays within the δ
// budget (with binomial slack). The solver-level half, over the
// dispatch lattice's hard-cell families, lives in internal/core.
func TestKarpLubyStatisticalSoundness(t *testing.T) {
	const seeds = 200
	// Loose (ε,δ) keep the per-seed sample count (≈ 77·m) small enough
	// for 200 runs; the Chernoff-derived count makes the true failure
	// rate far below δ, so the binomial tolerance below is generous.
	p := Params{Epsilon: 0.3, Delta: 0.2}
	r := rand.New(rand.NewSource(13))
	shapes := []struct{ n, clauses, width int }{
		{8, 6, 3},
		{12, 10, 4},
		{16, 20, 3},
	}
	for _, sh := range shapes {
		f := randDNF(r, sh.n, sh.clauses, sh.width)
		probs := randProbs(r, sh.n)
		exact := f.BruteForceProb(probs)
		exactF, _ := exact.Float64()
		failures := 0
		for seed := uint64(0); seed < seeds; seed++ {
			ps := p
			ps.Seed = seed
			est, err := KarpLuby(context.Background(), f, probs, ps)
			if err != nil {
				t.Fatalf("shape %+v seed %d: %v", sh, seed, err)
			}
			if est.P < 0 || est.P > 1 || est.Lo > est.P || est.P > est.Hi {
				t.Fatalf("shape %+v seed %d: malformed estimate %+v", sh, seed, est)
			}
			tol := p.Epsilon * exactF
			if diff := est.P - exactF; diff > tol || diff < -tol {
				failures++
			}
		}
		// Binomial tolerance: failures ~ Bin(seeds, q) with q ≤ δ, so
		// observing more than δ·N + 4·√(δ(1−δ)N) ≈ 62 would put the true
		// rate above δ with overwhelming confidence.
		if failures > 62 {
			t.Fatalf("shape %+v: %d/%d runs outside ε·p, δ budget is %v", sh, failures, seeds, p.Delta)
		}
	}
}
