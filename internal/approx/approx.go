// Package approx implements a seeded Karp–Luby (ε,δ) Monte-Carlo
// estimator for the probability of a positive DNF formula — the
// approximate-evaluation substrate of the solver's #P-hard cells.
//
// The estimator is the classic self-adjusting coverage estimator of
// Karp, Luby and Madras over the clause-weighted union space: sample a
// clause j with probability w_j/W (w_j the product of its variables'
// probabilities, W the sum over clauses), draw the remaining support
// variables from the product distribution conditioned on clause j being
// satisfied, and score the sample 1/N(ν), where N(ν) is the number of
// clauses the valuation satisfies. Each sample is an unbiased estimate
// of Pr(F)/W with values in (0, 1], and Pr(F)/W ≥ 1/m for m live
// clauses, so the Dyer/Karp–Luby sample count
//
//	T = ⌈3·m·ln(2/δ)/ε²⌉
//
// guarantees Pr(|p̂ − Pr(F)| > ε·Pr(F)) ≤ δ (multiplicative Chernoff on
// [0,1] variables with mean ≥ 1/m). The reported Lo/Hi interval is the
// two-sided (1−δ) Hoeffding bound W·(μ̂ ± √(ln(2/δ)/2T)) intersected
// with [0,1] — a statistical confidence interval, NOT the certified
// enclosure of the float kernel (plan.Enclosure semantics differ: those
// are machine-checked, these hold with probability 1−δ).
//
// Degenerate inputs short-circuit exactly, without sampling: a clause
// whose variables all have probability exactly 1 makes Pr(F) = 1, and a
// formula whose every clause contains a probability-0 variable has
// Pr(F) = 0. In particular the estimator agrees byte-for-byte with the
// exact solvers on fully deterministic (probability 0/1) instances.
//
// Randomness is a per-request math/rand/v2 PCG seeded from
// Params.Seed: equal (formula, probabilities, parameters, seed) runs
// are byte-deterministic, across processes and architectures. The
// sampling loop polls a phomerr.Checkpoint, so a cancelled context
// aborts within one checkpoint interval (CheckInterval samples).
package approx

import (
	"context"
	"math"
	"math/big"
	"math/rand/v2"
	"sort"

	"phom/internal/boolform"
	"phom/internal/phomerr"
)

// DefaultMaxSamples caps the sample budget of one estimation when
// Params.MaxSamples is 0. Beyond it the request is refused with a typed
// CodeLimit error — the caller asked for a (ε,δ) pair whose cost the
// server is not willing to pay — rather than silently degrading the
// guarantee. 2^26 samples keep a worst-case run in seconds.
const DefaultMaxSamples = 1 << 26

// pcgStream is the fixed second word of the PCG seed: Params.Seed
// selects the stream, this constant pins the increment so equal seeds
// mean equal streams everywhere.
const pcgStream = 0x9e3779b97f4a7c15

// Params configures one estimation.
type Params struct {
	// Epsilon is the relative error bound, in (0,1).
	Epsilon float64
	// Delta is the failure probability budget, in (0,1).
	Delta float64
	// Seed seeds the PCG generator; equal seeds reproduce the estimate
	// byte-for-byte.
	Seed uint64
	// MaxSamples caps the sample budget (0 = DefaultMaxSamples).
	// Estimations whose Dyer/Karp–Luby sample count exceeds the cap fail
	// with a typed CodeLimit error.
	MaxSamples int64
}

// Estimate is the outcome of one estimation.
type Estimate struct {
	// P is the point estimate of Pr(F), in [0,1]. With probability at
	// least 1−δ it satisfies |P − Pr(F)| ≤ ε·Pr(F).
	P float64
	// Lo and Hi bound Pr(F) with probability at least 1−δ (two-sided
	// Hoeffding at the drawn sample count), clipped to [0,1]. When Exact
	// is set, Lo = P = Hi.
	Lo, Hi float64
	// Samples is the number of Monte-Carlo samples drawn (0 when the
	// answer short-circuited exactly).
	Samples int64
	// Exact reports that P is exactly Pr(F): the formula was
	// deterministically true or false under the given probabilities, so
	// no sampling happened.
	Exact bool
}

// SampleCount returns the Dyer/Karp–Luby sample count for a formula
// with m live clauses at relative error eps and failure probability
// delta: ⌈3·m·ln(2/δ)/ε²⌉. It saturates at MaxInt64 instead of
// overflowing, so callers can compare it against a cap safely.
func SampleCount(m int, eps, delta float64) int64 {
	if m <= 0 {
		return 0
	}
	t := math.Ceil(3 * float64(m) * math.Log(2/delta) / (eps * eps))
	if !(t < math.MaxInt64) {
		return math.MaxInt64
	}
	return int64(t)
}

// KarpLuby estimates Pr(F) for the positive DNF f under the variable
// probabilities probs (indexed by variable, each in [0,1]). See the
// package comment for the estimator and its guarantee. Failures are
// typed: CodeBadInput for malformed parameters or probabilities,
// CodeLimit when the (ε,δ) pair demands more than Params.MaxSamples
// samples, CodeCanceled/CodeDeadline when ctx fires mid-sampling.
func KarpLuby(ctx context.Context, f *boolform.DNF, probs []*big.Rat, p Params) (Estimate, error) {
	if !(p.Epsilon > 0 && p.Epsilon < 1) {
		return Estimate{}, phomerr.New(phomerr.CodeBadInput, "approx: epsilon %v outside (0,1)", p.Epsilon)
	}
	if !(p.Delta > 0 && p.Delta < 1) {
		return Estimate{}, phomerr.New(phomerr.CodeBadInput, "approx: delta %v outside (0,1)", p.Delta)
	}
	if len(probs) != f.NumVars {
		return Estimate{}, phomerr.New(phomerr.CodeBadInput, "approx: %d probabilities for a formula over %d variables", len(probs), f.NumVars)
	}
	for i, pr := range probs {
		if pr == nil || pr.Num().Sign() < 0 || pr.Num().Cmp(pr.Denom()) > 0 {
			return Estimate{}, phomerr.New(phomerr.CodeBadInput, "approx: variable %d probability outside [0,1]", i)
		}
	}
	maxSamples := p.MaxSamples
	if maxSamples <= 0 {
		maxSamples = DefaultMaxSamples
	}

	// Classify clauses exactly: a variable with probability exactly 0
	// kills its clause (it is never satisfied in any world), a clause
	// whose variables are all exactly 1 is always satisfied. The float
	// weights below are used only to bias sampling among the remaining
	// genuinely uncertain clauses.
	one := big.NewRat(1, 1)
	var live []boolform.Clause
	var weights []float64
	W := 0.0
	for _, c := range f.Clauses {
		dead := false
		certain := true
		w := 1.0
		for _, v := range c {
			pv := probs[v]
			if pv.Sign() == 0 {
				dead = true
				break
			}
			if pv.Cmp(one) != 0 {
				certain = false
			}
			pf, _ := pv.Float64()
			w *= pf
		}
		if dead {
			continue
		}
		if certain {
			// All variables are exactly 1 (or the clause is empty): the
			// formula is true in every world.
			return Estimate{P: 1, Lo: 1, Hi: 1, Exact: true}, nil
		}
		live = append(live, c)
		weights = append(weights, w)
		W += w
	}
	if len(live) == 0 || W <= 0 {
		// Every clause contains an impossible variable (or there are no
		// clauses): the formula is false in every world.
		return Estimate{Exact: true}, nil
	}

	m := len(live)
	T := SampleCount(m, p.Epsilon, p.Delta)
	if T > maxSamples {
		return Estimate{}, phomerr.New(phomerr.CodeLimit,
			"approx: (eps=%v, delta=%v) over %d clauses needs %d samples, cap is %d", p.Epsilon, p.Delta, m, T, maxSamples)
	}

	// Support: the variables the live clauses mention, in ascending
	// order — the per-sample work is linear in the support and the live
	// clause literals, independent of NumVars (the instance size).
	inSupport := map[boolform.Var]bool{}
	for _, c := range live {
		for _, v := range c {
			inSupport[v] = true
		}
	}
	support := make([]boolform.Var, 0, len(inSupport))
	for v := range inSupport {
		support = append(support, v)
	}
	sort.Slice(support, func(i, j int) bool { return support[i] < support[j] })
	pv := make(map[boolform.Var]float64, len(support))
	for _, v := range support {
		pv[v], _ = probs[v].Float64()
	}

	// Cumulative clause weights for O(log m) weighted clause selection.
	cum := make([]float64, m)
	acc := 0.0
	for j, w := range weights {
		acc += w
		cum[j] = acc
	}

	rng := rand.New(rand.NewPCG(p.Seed, pcgStream))
	cp := phomerr.NewCheckpoint(ctx)
	nu := make([]bool, f.NumVars)
	sum := 0.0
	for i := int64(0); i < T; i++ {
		if err := cp.Check(); err != nil {
			return Estimate{}, err
		}
		// Pick clause j with probability w_j/W.
		j := sort.SearchFloat64s(cum, rng.Float64()*acc)
		if j >= m {
			j = m - 1
		}
		c := live[j]
		// Draw the support valuation conditioned on clause j: its own
		// variables are true, every other support variable is an
		// independent Bernoulli draw. Both lists are sorted, so one merge
		// walk assigns everything in deterministic order (determinism of
		// the rng consumption is what makes equal seeds byte-identical).
		ci := 0
		for _, v := range support {
			if ci < len(c) && c[ci] == v {
				nu[v] = true
				ci++
				continue
			}
			nu[v] = rng.Float64() < pv[v]
		}
		// N(ν): how many live clauses the valuation satisfies — at least
		// one (clause j), so the score 1/N is in (0, 1].
		n := 0
		for _, lc := range live {
			sat := true
			for _, v := range lc {
				if !nu[v] {
					sat = false
					break
				}
			}
			if sat {
				n++
			}
		}
		sum += 1 / float64(n)
	}

	mu := sum / float64(T)
	est := W * mu
	t := math.Sqrt(math.Log(2/p.Delta) / (2 * float64(T)))
	lo := W * (mu - t)
	hi := W * (mu + t)
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	return Estimate{P: clamp(est), Lo: clamp(lo), Hi: clamp(hi), Samples: T}, nil
}
