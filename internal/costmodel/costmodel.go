// Package costmodel prices phom jobs for phomgate's admission control.
//
// The estimate is deliberately crude — admission control needs ordering
// and magnitude, not accuracy. A job costs
//
//	units = classWeight × (edges+1) × vectors
//
// where classWeight encodes the dispatch verdict: tractable structures
// run the polynomial kernels (weight 1), predicted-#P-hard structures
// take the exponential brute-force fallback (weight 64), and hard
// structures with the fallback disabled are a fast typed refusal
// (weight 1 — the backend answers 422 without doing the work). The
// (edges+1)×vectors factor is the size axis: the E20 trajectory shows
// plan-cache reweight latency growing linearly in edge count, and E24
// shows batched multi-vector reweights costing per-lane, not per-call.
// The hard-class weight 64 comes from the same trajectory: at the
// instance sizes the serving tier admits, fallback solves run one to
// two orders of magnitude over the tractable kernels, and 64 keeps a
// single hard job from being priced like a page of cheap ones while
// still letting it through an idle backend.
//
// Units become seconds through a per-unit latency scale that starts at
// a calibrated default and is refined online from observed (units,
// elapsed) pairs via an exponentially weighted moving average — so a
// slow machine or an unusually expensive structure mix shifts the
// model instead of permanently shedding too little or too much.
package costmodel

import (
	"math"
	"sync"
	"time"
)

// Class weights (see the package comment for calibration).
const (
	weightTractable = 1
	weightFallback  = 64
)

// DefaultScaleUS is the boot-time estimate of microseconds per cost
// unit, calibrated from the E20 reweight trajectory on the development
// machine (a cached-plan reweight of a ~100-edge structure lands in the
// low hundreds of microseconds). Online observation replaces it within
// a few dozen requests.
const DefaultScaleUS = 3.0

// ewmaAlpha weights each new observation at 10%: smooth enough that a
// single outlier (GC pause, cold cache) does not flap admission, fresh
// enough to converge within ~30 observations.
const ewmaAlpha = 0.1

// Estimate returns the cost in units of a job with the given routing
// facts. It is a pure function so gate and tests agree by construction.
func Estimate(edges int, hard, disableFallback bool, vectors int) float64 {
	w := float64(weightTractable)
	if hard && !disableFallback {
		w = weightFallback
	}
	if edges < 0 {
		edges = 0
	}
	if vectors < 1 {
		vectors = 1
	}
	return w * float64(edges+1) * float64(vectors)
}

// samplesPerUnit converts Karp–Luby samples to cost units: one unit per
// 256 samples. Like everything else here it is deliberately crude — a
// sample is a weighted clause draw plus a clause-satisfaction scan,
// orders of magnitude cheaper than a kernel op over the whole instance,
// and 256 keeps a default-(ε,δ) job on a mid-size lineage priced within
// a small multiple of its tractable twin instead of at weight 64.
const samplesPerUnit = 256

// EstimateApprox prices a hard job answered by the Karp–Luby sampler:
// the linear extraction pass over the instance plus the sample budget.
// The sampler's cost scales with its sample count, not with 2^k, which
// is the whole point of approx mode — the gateway must not shed approx
// jobs as if they brute-forced.
func EstimateApprox(edges int, samples int64, vectors int) float64 {
	if edges < 0 {
		edges = 0
	}
	if samples < 0 {
		samples = 0
	}
	if vectors < 1 {
		vectors = 1
	}
	return (float64(edges+1) + float64(samples)/samplesPerUnit) * float64(vectors)
}

// Model converts units to predicted latency, learning the scale online.
type Model struct {
	mu      sync.Mutex
	scaleUS float64
}

// New returns a model seeded with DefaultScaleUS.
func New() *Model { return &Model{scaleUS: DefaultScaleUS} }

// Observe folds one completed request into the latency scale.
// Zero-unit or non-positive durations are ignored.
func (m *Model) Observe(units float64, elapsed time.Duration) {
	if units <= 0 || elapsed <= 0 {
		return
	}
	perUnit := float64(elapsed.Microseconds()) / units
	if perUnit <= 0 {
		return
	}
	m.mu.Lock()
	m.scaleUS = (1-ewmaAlpha)*m.scaleUS + ewmaAlpha*perUnit
	m.mu.Unlock()
}

// LatencyUS predicts the latency in microseconds of units of work.
func (m *Model) LatencyUS(units float64) float64 {
	m.mu.Lock()
	s := m.scaleUS
	m.mu.Unlock()
	return s * units
}

// RetryAfter predicts how many whole seconds until pending units of
// already-admitted work drain, clamped to [1, 30] — the value a shed
// response advertises in its Retry-After header. The clamp keeps the
// advice honest: never "retry immediately" while we are shedding, never
// park a client for minutes on a model guess.
func (m *Model) RetryAfter(pendingUnits float64) int {
	sec := int(math.Ceil(m.LatencyUS(pendingUnits) / 1e6))
	if sec < 1 {
		return 1
	}
	if sec > 30 {
		return 30
	}
	return sec
}

// Ledger tracks the admitted-but-unfinished cost units of one backend
// against a budget. It is the shedding decision: a job is admitted iff
// the backend is idle (something must always make progress) or the job
// fits in the remaining budget.
type Ledger struct {
	mu          sync.Mutex
	budget      float64
	outstanding float64
}

// NewLedger returns a ledger with the given budget; budget <= 0 means
// unlimited (Admit always succeeds).
func NewLedger(budget float64) *Ledger { return &Ledger{budget: budget} }

// Admit tries to reserve units. On success the caller must Release the
// same amount when the request finishes. An idle backend admits any
// single job regardless of size — shedding exists to protect queued
// work, not to refuse work no one is waiting behind.
func (l *Ledger) Admit(units float64) bool {
	if units < 0 {
		units = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.budget > 0 && l.outstanding > 0 && l.outstanding+units > l.budget {
		return false
	}
	l.outstanding += units
	return true
}

// Release returns units reserved by a successful Admit.
func (l *Ledger) Release(units float64) {
	if units < 0 {
		units = 0
	}
	l.mu.Lock()
	l.outstanding -= units
	if l.outstanding < 0 {
		l.outstanding = 0
	}
	l.mu.Unlock()
}

// Outstanding reports the currently reserved units.
func (l *Ledger) Outstanding() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.outstanding
}
