package costmodel

import (
	"testing"
	"time"
)

func TestEstimateClasses(t *testing.T) {
	tractable := Estimate(10, false, false, 1)
	hard := Estimate(10, true, false, 1)
	refused := Estimate(10, true, true, 1)
	if hard != 64*tractable {
		t.Fatalf("hard=%v tractable=%v, want 64x", hard, tractable)
	}
	// A hard job with the fallback disabled is a cheap typed 422, not
	// heavy work: priced like a tractable job.
	if refused != tractable {
		t.Fatalf("refused=%v tractable=%v, want equal", refused, tractable)
	}
	if got := Estimate(10, false, false, 8); got != 8*tractable {
		t.Fatalf("8 vectors = %v, want 8x single %v", got, tractable)
	}
	// Degenerate inputs clamp instead of producing zero/negative cost.
	if got := Estimate(-3, false, false, 0); got != 1 {
		t.Fatalf("clamped estimate = %v, want 1", got)
	}
}

func TestEstimateApprox(t *testing.T) {
	// A hard approx job is priced by its sample budget, not at the
	// exponential weight 64: with a default-scale budget of a few
	// thousand samples it must land well under the exact twin's price.
	exact := Estimate(24, true, false, 1)
	approx := EstimateApprox(24, 4096, 1)
	if approx >= exact {
		t.Fatalf("approx=%v exact=%v, sampler must be cheaper", approx, exact)
	}
	// The formula itself: extraction pass plus samples/256, per vector.
	if got, want := EstimateApprox(9, 512, 1), float64(9+1)+2; got != want {
		t.Fatalf("EstimateApprox(9, 512, 1) = %v, want %v", got, want)
	}
	if got, want := EstimateApprox(9, 512, 4), 4*(float64(9+1)+2); got != want {
		t.Fatalf("4 vectors = %v, want 4x single %v", got, want)
	}
	// Degenerate inputs clamp instead of producing zero/negative cost.
	if got := EstimateApprox(-3, -100, 0); got != 1 {
		t.Fatalf("clamped approx estimate = %v, want 1", got)
	}
}

func TestModelLearns(t *testing.T) {
	m := New()
	// Feed consistent 10µs/unit observations; the EWMA must converge
	// there from the calibrated default.
	for i := 0; i < 200; i++ {
		m.Observe(100, 1000*time.Microsecond)
	}
	if got := m.LatencyUS(1); got < 9.5 || got > 10.5 {
		t.Fatalf("scale after convergence = %vµs/unit, want ~10", got)
	}
	// Garbage observations must be ignored, not corrupt the scale.
	m.Observe(0, time.Second)
	m.Observe(100, -time.Second)
	if got := m.LatencyUS(1); got < 9.5 || got > 10.5 {
		t.Fatalf("scale moved on garbage observation: %v", got)
	}
}

func TestRetryAfterClamp(t *testing.T) {
	m := New()
	if got := m.RetryAfter(0); got != 1 {
		t.Fatalf("RetryAfter(0) = %d, want clamp to 1", got)
	}
	if got := m.RetryAfter(1e12); got != 30 {
		t.Fatalf("RetryAfter(huge) = %d, want clamp to 30", got)
	}
	// In between it tracks the model: 2e6 units at the 3µs default is
	// 6 seconds of predicted drain.
	if got := m.RetryAfter(2e6); got != 6 {
		t.Fatalf("RetryAfter(2e6) = %d, want 6", got)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger(100)
	if !l.Admit(150) {
		t.Fatal("idle backend must admit even an over-budget job")
	}
	if l.Admit(1) {
		t.Fatal("budget exhausted; second job must shed")
	}
	l.Release(150)
	if got := l.Outstanding(); got != 0 {
		t.Fatalf("outstanding after release = %v", got)
	}
	if !l.Admit(60) || !l.Admit(40) {
		t.Fatal("jobs within budget must admit")
	}
	if l.Admit(1) {
		t.Fatal("exactly-full ledger must shed the next job")
	}
	l.Release(40)
	if !l.Admit(40) {
		t.Fatal("released budget must readmit")
	}

	unlimited := NewLedger(0)
	for i := 0; i < 10; i++ {
		if !unlimited.Admit(1e9) {
			t.Fatal("unlimited ledger must always admit")
		}
	}
	// Over-release clamps at zero rather than going negative (which
	// would silently widen the budget).
	l2 := NewLedger(10)
	l2.Admit(5)
	l2.Release(500)
	if got := l2.Outstanding(); got != 0 {
		t.Fatalf("over-release left outstanding = %v", got)
	}
}
