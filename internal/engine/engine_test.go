package engine

import (
	"context"
	"math/big"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"phom/internal/core"
	"phom/internal/gen"
	"phom/internal/graph"
)

// mixedWorkload builds distinct jobs spanning the tractable cells of
// Tables 1–3 (plus small brute-force and UCQ jobs), duplicates each dup
// times, and returns the shuffled list.
func mixedWorkload(t *testing.T, seed int64, dup int) []Job {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rs := []graph.Label{"R", "S"}
	un := []graph.Label{graph.Unlabeled}
	var distinct []Job
	for i := 0; i < 6; i++ {
		// Prop 4.10: labeled 1WP query on a ⊔DWT instance.
		distinct = append(distinct, Job{
			Query:    gen.Rand1WP(r, 4, rs),
			Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 40, rs), 0.5),
		})
		// Prop 4.11: connected query on a ⊔2WP instance.
		distinct = append(distinct, Job{
			Query:    gen.RandConnected(r, 4, 1, rs),
			Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, 40, rs), 0.5),
		})
		// Prop 3.6: arbitrary unlabeled query on a ⊔DWT instance.
		distinct = append(distinct, Job{
			Query:    gen.RandGraph(r, 5, 7, un),
			Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 40, un), 0.5),
		})
		// Props 5.4/5.5: unlabeled DWT query on a ⊔PT instance.
		distinct = append(distinct, Job{
			Query:    gen.RandDWT(r, 4, un),
			Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassUPT, 30, un), 0.5),
		})
		// Exponential baseline on a small general instance.
		distinct = append(distinct, Job{
			Query:    gen.Rand1WP(r, 3, rs),
			Instance: gen.RandProb(r, gen.RandGraph(r, 5, 8, rs), 0.3),
		})
		// A union of conjunctive queries on a ⊔2WP instance.
		distinct = append(distinct, Job{
			Queries:  []*graph.Graph{gen.Rand1WP(r, 3, rs), gen.Rand1WP(r, 4, rs)},
			Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, 30, rs), 0.5),
		})
	}
	var jobs []Job
	for _, j := range distinct {
		for d := 0; d < dup; d++ {
			jobs = append(jobs, j)
		}
	}
	r.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	return jobs
}

func solveSequential(t *testing.T, jobs []Job) []*core.Result {
	t.Helper()
	out := make([]*core.Result, len(jobs))
	for i, j := range jobs {
		var err error
		if len(j.Queries) > 0 {
			out[i], err = core.SolveUCQ(j.Queries, j.Instance, j.Opts)
		} else {
			out[i], err = core.Solve(j.Query, j.Instance, j.Opts)
		}
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
	}
	return out
}

// TestBatchMatchesSequential is the acceptance stress test: a 100+ job
// mixed workload with shuffled duplicates must produce byte-identical
// *big.Rat results to sequential core.Solve, under any worker count
// (run with -race in CI).
func TestBatchMatchesSequential(t *testing.T) {
	jobs := mixedWorkload(t, 1, 4)
	if len(jobs) < 100 {
		t.Fatalf("workload too small: %d jobs", len(jobs))
	}
	want := solveSequential(t, jobs)

	for _, workers := range []int{1, 4, 8} {
		e := New(Options{Workers: workers})
		got := e.SolveBatch(jobs)
		st := e.Stats()
		if err := e.Close(); err != nil {
			t.Fatalf("workers=%d: Close: %v", workers, err)
		}
		for i := range jobs {
			if got[i].Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, got[i].Err)
			}
			if got[i].Result.Prob.RatString() != want[i].Prob.RatString() {
				t.Errorf("workers=%d job %d: engine %s, sequential %s",
					workers, i, got[i].Result.Prob.RatString(), want[i].Prob.RatString())
			}
			if got[i].Result.Method != want[i].Method {
				t.Errorf("workers=%d job %d: engine method %v, sequential %v",
					workers, i, got[i].Result.Method, want[i].Method)
			}
		}
		if st.Submitted != uint64(len(jobs)) {
			t.Errorf("workers=%d: Submitted = %d, want %d", workers, st.Submitted, len(jobs))
		}
		// Each distinct job must be solved exactly once; its three
		// duplicates are served by the cache or coalesced in flight.
		if st.Solved != uint64(len(jobs)/4) {
			t.Errorf("workers=%d: Solved = %d, want %d", workers, st.Solved, len(jobs)/4)
		}
		if st.CacheHits+st.Coalesced != uint64(len(jobs)-len(jobs)/4) {
			t.Errorf("workers=%d: CacheHits+Coalesced = %d+%d, want %d",
				workers, st.CacheHits, st.Coalesced, len(jobs)-len(jobs)/4)
		}
		if st.CacheHits == 0 {
			t.Errorf("workers=%d: expected a cache hit rate > 0 on duplicate jobs", workers)
		}
	}
}

// TestCanonicalDeduplication checks that jobs whose graphs were built
// with different edge insertion orders still share one cache entry.
func TestCanonicalDeduplication(t *testing.T) {
	build := func(reversed bool) Job {
		g := graph.New(3)
		if reversed {
			g.MustAddEdge(1, 2, "S")
			g.MustAddEdge(0, 1, "R")
		} else {
			g.MustAddEdge(0, 1, "R")
			g.MustAddEdge(1, 2, "S")
		}
		h := graph.New(4)
		if reversed {
			h.MustAddEdge(1, 2, "S")
			h.MustAddEdge(0, 1, "R")
			h.MustAddEdge(2, 3, "S")
		} else {
			h.MustAddEdge(0, 1, "R")
			h.MustAddEdge(1, 2, "S")
			h.MustAddEdge(2, 3, "S")
		}
		pg := graph.NewProbGraph(h)
		pg.MustSetEdgeProb(1, 2, graph.Rat("1/2"))
		return Job{Query: g, Instance: pg}
	}
	e := New(Options{Workers: 2})
	defer e.Close()
	a := e.Do(build(false))
	b := e.Do(build(true))
	if a.Err != nil || b.Err != nil {
		t.Fatalf("solve failed: %v / %v", a.Err, b.Err)
	}
	if !b.CacheHit {
		t.Error("insertion-order variant missed the cache")
	}
	if a.Result.Prob.RatString() != b.Result.Prob.RatString() {
		t.Errorf("variants disagree: %s vs %s", a.Result.Prob.RatString(), b.Result.Prob.RatString())
	}
}

// TestOptionsAffectKey checks that solver options take part in the cache
// key, with defaults normalized.
func TestOptionsAffectKey(t *testing.T) {
	job := mixedWorkload(t, 7, 1)[0]
	e := New(Options{Workers: 1})
	defer e.Close()
	if r := e.Do(job); r.Err != nil {
		t.Fatal(r.Err)
	}
	// nil options and explicit defaults share a cache entry.
	withDefaults := job
	withDefaults.Opts = &core.Options{BruteForceLimit: core.DefaultBruteForceLimit, MatchLimit: core.DefaultMatchLimit}
	if r := e.Do(withDefaults); r.Err != nil || !r.CacheHit {
		t.Errorf("explicit default options missed the cache (err=%v, hit=%v)", r.Err, r.CacheHit)
	}
	// Distinct options do not.
	withOther := job
	withOther.Opts = &core.Options{BruteForceLimit: 3}
	if r := e.Do(withOther); r.Err == nil && r.CacheHit {
		t.Error("distinct options hit the cache")
	}
}

func TestCacheHitAccounting(t *testing.T) {
	job := mixedWorkload(t, 2, 1)[0]
	e := New(Options{Workers: 2})
	defer e.Close()
	first := e.Do(job)
	second := e.Do(job)
	if first.Err != nil || second.Err != nil {
		t.Fatalf("solve failed: %v / %v", first.Err, second.Err)
	}
	if first.CacheHit || first.Shared {
		t.Error("first submission should execute, not hit")
	}
	if !second.CacheHit {
		t.Error("second submission should be a cache hit")
	}
	st := e.Stats()
	if st.Solved != 1 || st.CacheHits != 1 || st.Submitted != 2 || st.CacheLen != 1 {
		t.Errorf("stats = %+v, want Solved=1 CacheHits=1 Submitted=2 CacheLen=1", st)
	}
	// Mutating a returned result must not poison the cache.
	second.Result.Prob.SetInt64(42)
	third := e.Do(job)
	if third.Result.Prob.RatString() != first.Result.Prob.RatString() {
		t.Error("cache entry was mutated through a returned result")
	}
}

func TestCacheDisabled(t *testing.T) {
	job := mixedWorkload(t, 3, 1)[0]
	e := New(Options{Workers: 1, CacheSize: -1})
	defer e.Close()
	e.Do(job)
	r := e.Do(job)
	if r.CacheHit {
		t.Error("cache hit with memoization disabled")
	}
	if st := e.Stats(); st.Solved != 2 || st.CacheHits != 0 || st.CacheLen != 0 {
		t.Errorf("stats = %+v, want Solved=2 CacheHits=0 CacheLen=0", st)
	}
}

func TestLRUEviction(t *testing.T) {
	jobs := mixedWorkload(t, 4, 1)[:3]
	e := New(Options{Workers: 1, CacheSize: 2})
	defer e.Close()
	for _, j := range jobs { // fill: cache ends holding jobs[1], jobs[2]
		if r := e.Do(j); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if st := e.Stats(); st.CacheLen != 2 {
		t.Fatalf("CacheLen = %d, want 2", st.CacheLen)
	}
	if r := e.Do(jobs[0]); r.CacheHit {
		t.Error("oldest entry should have been evicted")
	}
	if r := e.Do(jobs[2]); !r.CacheHit {
		// jobs[2] was most recently used before jobs[0] re-entered.
		t.Error("recently used entry was evicted")
	}
}

// TestSingleflightCoalescing drives the internal do() with a controlled
// slow call, so coalescing is deterministic rather than timing-dependent.
func TestSingleflightCoalescing(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	want := &core.Result{Prob: big.NewRat(1, 3), Method: core.MethodBruteForce}

	var leader JobResult
	var leaderWG sync.WaitGroup
	leaderWG.Add(1)
	go func() {
		defer leaderWG.Done()
		leader, _ = e.do(context.Background(), "key", func(context.Context) (*core.Result, error) {
			close(started)
			<-block
			return want, nil
		})
	}()
	<-started // the call is now in flight on the only worker

	const followers = 3
	results := make([]JobResult, followers)
	var wg sync.WaitGroup
	wg.Add(followers)
	for i := 0; i < followers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], _ = e.do(context.Background(), "key", func(context.Context) (*core.Result, error) {
				t.Error("coalesced job must not execute")
				return want, nil
			})
		}(i)
	}
	// Wait until every follower is registered as coalesced, then release.
	for {
		if st := e.Stats(); st.Coalesced == followers {
			break
		}
		runtime.Gosched()
	}
	close(block)
	leaderWG.Wait()
	wg.Wait()

	if leader.Shared || leader.CacheHit {
		t.Errorf("leader flags = %+v, want executed", leader)
	}
	for i, r := range results {
		if !r.Shared {
			t.Errorf("follower %d not marked shared", i)
		}
		if r.Result.Prob.RatString() != "1/3" {
			t.Errorf("follower %d got %s", i, r.Result.Prob.RatString())
		}
	}
	if st := e.Stats(); st.Solved != 1 || st.Coalesced != followers {
		t.Errorf("stats = %+v, want Solved=1 Coalesced=%d", st, followers)
	}
}

// TestErrorsNotCached checks that failing jobs are counted and retried,
// never memoized.
func TestErrorsNotCached(t *testing.T) {
	// A labeled ⊔1WP query on a 1WP instance is #P-hard (Prop 3.3); with
	// the fallback disabled the solver must error.
	q, _ := graph.DisjointUnion(graph.Path1WP("R"), graph.Path1WP("S"))
	h := graph.NewProbGraph(graph.Path1WP("R", "S", "R"))
	h.MustSetEdgeProb(0, 1, graph.Rat("1/2"))
	job := Job{Query: q, Instance: h, Opts: &core.Options{DisableFallback: true}}

	e := New(Options{Workers: 1})
	defer e.Close()
	for i := 0; i < 2; i++ {
		if r := e.Do(job); r.Err == nil {
			t.Fatal("expected an error on a hard cell with fallback disabled")
		}
	}
	if st := e.Stats(); st.Errors != 2 || st.Solved != 2 || st.CacheLen != 0 {
		t.Errorf("stats = %+v, want Errors=2 Solved=2 CacheLen=0", st)
	}
}

func TestInvalidJobs(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	h := graph.NewProbGraph(graph.Path1WP("R"))
	for name, job := range map[string]Job{
		"no query":    {Instance: h},
		"nil query":   {Queries: []*graph.Graph{nil}, Instance: h},
		"no instance": {Query: graph.Path1WP("R")},
	} {
		if r := e.Do(job); r.Err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
	// Rejections are counted apart from solver errors.
	if st := e.Stats(); st.Rejected != 3 || st.Errors != 0 || st.Solved != 0 {
		t.Errorf("stats = %+v, want Rejected=3 Errors=0 Solved=0", st)
	}
}

func TestCloseSemantics(t *testing.T) {
	e := New(Options{Workers: 2})
	job := mixedWorkload(t, 5, 1)[0]
	if r := e.Do(job); r.Err != nil {
		t.Fatal(r.Err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
	if r := e.Do(job); r.Err != ErrClosed {
		t.Errorf("Do after Close: err = %v, want ErrClosed", r.Err)
	}
	if _, err := e.Solve(job.Query, job.Instance, nil); err != ErrClosed {
		t.Errorf("Solve after Close: err = %v, want ErrClosed", err)
	}
	for _, r := range e.SolveBatch([]Job{job}) {
		if r.Err != ErrClosed {
			t.Errorf("SolveBatch after Close: err = %v, want ErrClosed", r.Err)
		}
	}
}

// TestPlanCacheReweight: jobs sharing a structure but differing in edge
// probabilities must hit the compiled-plan cache, produce results
// byte-identical to sequential core.Solve, and be counted in PlanHits.
func TestPlanCacheReweight(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	base := mixedWorkload(t, 21, 1)[0] // Prop 4.10 job
	variants := make([]Job, 8)
	for i := range variants {
		inst := base.Instance.Clone()
		for ei := 0; ei < inst.G.NumEdges(); ei++ {
			if err := inst.SetProb(ei, big.NewRat(int64(r.Intn(17)), 16)); err != nil {
				t.Fatal(err)
			}
		}
		variants[i] = Job{Query: base.Query, Instance: inst}
	}
	want := solveSequential(t, variants)

	e := New(Options{Workers: 2})
	defer e.Close()
	if r := e.Do(base); r.Err != nil {
		t.Fatal(r.Err)
	} else if r.PlanHit {
		t.Error("first job of a structure cannot be a plan hit")
	}
	for i, v := range variants {
		res := e.Do(v)
		if res.Err != nil {
			t.Fatalf("variant %d: %v", i, res.Err)
		}
		if !res.PlanHit {
			t.Errorf("variant %d missed the plan cache", i)
		}
		if res.CacheHit {
			t.Errorf("variant %d hit the result cache despite fresh probabilities", i)
		}
		if res.Result.Prob.RatString() != want[i].Prob.RatString() {
			t.Errorf("variant %d: plan-evaluated %s, sequential %s",
				i, res.Result.Prob.RatString(), want[i].Prob.RatString())
		}
		if res.Result.Method != want[i].Method {
			t.Errorf("variant %d: method %v vs %v", i, res.Result.Method, want[i].Method)
		}
	}
	st := e.Stats()
	if st.PlanHits != uint64(len(variants)) {
		t.Errorf("PlanHits = %d, want %d", st.PlanHits, len(variants))
	}
	if st.PlanCompiles != 1 {
		t.Errorf("PlanCompiles = %d, want 1", st.PlanCompiles)
	}
	if st.PlanCacheLen != 1 {
		t.Errorf("PlanCacheLen = %d, want 1", st.PlanCacheLen)
	}
}

// TestPlanCacheReweightConcurrent race-tests the plan path: a batch of
// reweightings of a handful of structures, solved concurrently, must
// stay byte-identical to sequential solving (run with -race in CI).
func TestPlanCacheReweightConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	bases := mixedWorkload(t, 23, 1)[:4]
	var jobs []Job
	for round := 0; round < 8; round++ {
		for _, b := range bases {
			inst := b.Instance.Clone()
			for ei := 0; ei < inst.G.NumEdges(); ei++ {
				if err := inst.SetProb(ei, big.NewRat(int64(r.Intn(17)), 16)); err != nil {
					t.Fatal(err)
				}
			}
			j := b
			j.Instance = inst
			jobs = append(jobs, j)
		}
	}
	r.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	want := solveSequential(t, jobs)

	e := New(Options{Workers: 8})
	defer e.Close()
	got := e.SolveBatch(jobs)
	for i := range jobs {
		if got[i].Err != nil {
			t.Fatalf("job %d: %v", i, got[i].Err)
		}
		if got[i].Result.Prob.RatString() != want[i].Prob.RatString() {
			t.Errorf("job %d: engine %s, sequential %s",
				i, got[i].Result.Prob.RatString(), want[i].Prob.RatString())
		}
	}
	st := e.Stats()
	if st.PlanHits == 0 {
		t.Error("expected plan-cache hits across reweighted duplicates")
	}
	if st.PlanHits+st.PlanCompiles != st.Solved {
		t.Errorf("PlanHits+PlanCompiles = %d+%d, want Solved = %d",
			st.PlanHits, st.PlanCompiles, st.Solved)
	}
}

// TestPlanCacheEdgeOrderIndependent: a reweighted instance whose edges
// were inserted in a different order must still hit the plan cache and
// evaluate correctly through the canonical edge-order transport.
func TestPlanCacheEdgeOrderIndependent(t *testing.T) {
	build := func(reversed bool, p1, p2 string) Job {
		h := graph.New(4)
		if reversed {
			h.MustAddEdge(2, 3, "S")
			h.MustAddEdge(1, 2, "S")
			h.MustAddEdge(0, 1, "R")
		} else {
			h.MustAddEdge(0, 1, "R")
			h.MustAddEdge(1, 2, "S")
			h.MustAddEdge(2, 3, "S")
		}
		pg := graph.NewProbGraph(h)
		pg.MustSetEdgeProb(1, 2, graph.Rat(p1))
		pg.MustSetEdgeProb(2, 3, graph.Rat(p2))
		return Job{Query: graph.Path1WP("R", "S"), Instance: pg}
	}
	e := New(Options{Workers: 1})
	defer e.Close()
	if r := e.Do(build(false, "1/2", "1/3")); r.Err != nil {
		t.Fatal(r.Err)
	}
	// Same structure, permuted insertion order, fresh probabilities.
	r2 := e.Do(build(true, "1/5", "1/7"))
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if !r2.PlanHit {
		t.Error("permuted reweighted instance missed the plan cache")
	}
	seq, err := core.Solve(graph.Path1WP("R", "S"), build(true, "1/5", "1/7").Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Result.Prob.RatString() != seq.Prob.RatString() {
		t.Errorf("plan transport: engine %s, sequential %s",
			r2.Result.Prob.RatString(), seq.Prob.RatString())
	}
}

// TestPlanCacheDisabled: PlanCacheSize < 0 turns the plan layer off.
func TestPlanCacheDisabled(t *testing.T) {
	base := mixedWorkload(t, 29, 1)[0]
	inst := base.Instance.Clone()
	for ei := 0; ei < inst.G.NumEdges(); ei++ {
		if err := inst.SetProb(ei, graph.RatHalf); err != nil {
			t.Fatal(err)
		}
	}
	e := New(Options{Workers: 1, PlanCacheSize: -1})
	defer e.Close()
	e.Do(base)
	r := e.Do(Job{Query: base.Query, Instance: inst})
	if r.PlanHit {
		t.Error("plan hit with plan caching disabled")
	}
	if st := e.Stats(); st.PlanHits != 0 || st.PlanCacheLen != 0 {
		t.Errorf("stats = %+v, want no plan activity", st)
	}
}

// TestPlanCacheInvalidProbs: a plan-cache hit must report the same
// validation error a fresh solve would on out-of-range probabilities.
func TestPlanCacheInvalidProbs(t *testing.T) {
	job := Job{Query: graph.Path1WP("R"), Instance: graph.NewProbGraph(graph.Path1WP("R", "R"))}
	e := New(Options{Workers: 1})
	defer e.Close()
	if r := e.Do(job); r.Err != nil {
		t.Fatal(r.Err)
	}
	bad := graph.NewProbGraph(graph.Path1WP("R", "R"))
	// Corrupt a probability past SetProb's validation.
	badProbs := bad.Probs()
	badProbs[0].SetFrac64(3, 2)
	r := e.Do(Job{Query: graph.Path1WP("R"), Instance: bad})
	if r.Err == nil {
		t.Fatal("expected a validation error for an out-of-range probability")
	}
	want, wantErr := core.Solve(graph.Path1WP("R"), bad, nil)
	if wantErr == nil {
		t.Fatalf("sequential solve unexpectedly succeeded: %v", want)
	}
	if r.Err.Error() != wantErr.Error() {
		t.Errorf("engine error %q, sequential error %q", r.Err, wantErr)
	}
}

// TestPlanCacheOpaqueErrorNotRetried: when a cached opaque plan's
// evaluation fails (both baselines exceed their limits), the error is
// returned directly — the job must not be recompiled and re-run through
// the exponential baselines a second time.
func TestPlanCacheOpaqueErrorNotRetried(t *testing.T) {
	// A hard cell (1WP query on a connected non-polytree instance) with
	// tiny limits: with 4 uncertain edges and 4 matches, both baselines
	// exceed their caps.
	g := graph.New(4)
	g.MustAddEdge(0, 2, "R")
	g.MustAddEdge(1, 2, "R")
	g.MustAddEdge(0, 3, "R")
	g.MustAddEdge(1, 3, "R")
	q := graph.Path1WP("R")
	base := graph.NewProbGraph(g)
	opts := &core.Options{BruteForceLimit: 1, MatchLimit: 1}

	e := New(Options{Workers: 1})
	defer e.Close()
	// Prime the plan cache with a succeeding evaluation (no uncertainty).
	if res := e.Do(Job{Query: q, Instance: base, Opts: opts}); res.Err != nil {
		t.Fatal(res.Err)
	}
	st0 := e.Stats()
	// Reweight to many uncertain edges: both baselines must fail.
	bad := base.Clone()
	for i := 0; i < bad.G.NumEdges(); i++ {
		if err := bad.SetProb(i, graph.RatHalf); err != nil {
			t.Fatal(err)
		}
	}
	res := e.Do(Job{Query: q, Instance: bad, Opts: opts})
	if res.Err == nil {
		t.Fatal("expected both baselines to exceed their limits")
	}
	if !res.PlanHit {
		t.Error("failing evaluation still served by the cached plan must report PlanHit")
	}
	st := e.Stats()
	if st.PlanCompiles != st0.PlanCompiles {
		t.Errorf("failing plan hit triggered a recompile: PlanCompiles %d -> %d", st0.PlanCompiles, st.PlanCompiles)
	}
	if st.PlanHits != st0.PlanHits+1 {
		t.Errorf("PlanHits = %d, want %d", st.PlanHits, st0.PlanHits+1)
	}
	if st.Errors != st0.Errors+1 {
		t.Errorf("Errors = %d, want %d", st.Errors, st0.Errors+1)
	}
}
