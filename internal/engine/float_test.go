package engine

import (
	"math/big"
	"testing"

	"phom/internal/core"
	"phom/internal/graph"
)

// floatJob returns a tractable single-edge job with a non-dyadic
// probability, so the float kernel genuinely rounds.
func floatJob(opts *core.Options) Job {
	q := graph.Path1WP("R")
	hg := graph.New(3)
	hg.MustAddEdge(0, 1, "R")
	hg.MustAddEdge(1, 2, "R")
	h := graph.NewProbGraph(hg)
	h.MustSetEdgeProb(0, 1, big.NewRat(1, 3))
	h.MustSetEdgeProb(1, 2, big.NewRat(2, 7))
	return Job{Query: q, Instance: h, Opts: opts}
}

// TestEngineFloatCounters pins the dual-precision serving counters:
// fast-path answers count as FloatFast, forced fallbacks as
// FloatFallbacks, and exact jobs touch neither.
func TestEngineFloatCounters(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	if r := e.Do(floatJob(nil)); r.Err != nil {
		t.Fatal(r.Err)
	}
	if st := e.Stats(); st.FloatFast != 0 || st.FloatFallbacks != 0 {
		t.Fatalf("exact job touched float counters: %+v", st)
	}

	r := e.Do(floatJob(&core.Options{Precision: core.PrecisionFast}))
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Result.Precision != core.PrecisionFast || r.Result.Bounds == nil {
		t.Fatalf("fast job served on substrate %v", r.Result.Precision)
	}
	if st := e.Stats(); st.FloatFast != 1 {
		t.Fatalf("FloatFast = %d, want 1 (%+v)", st.FloatFast, st)
	}

	// A subnormal tolerance can never hold for a rounding computation:
	// auto must fall back, byte-identical to exact.
	exact := e.Do(floatJob(nil))
	auto := e.Do(floatJob(&core.Options{Precision: core.PrecisionAuto, FloatTolerance: 5e-324}))
	if auto.Err != nil {
		t.Fatal(auto.Err)
	}
	if auto.Result.Precision != core.PrecisionExact || auto.Result.Bounds != nil {
		t.Fatalf("forced fallback served on substrate %v", auto.Result.Precision)
	}
	if auto.Result.Prob.RatString() != exact.Result.Prob.RatString() {
		t.Fatalf("fallback %s differs from exact %s",
			auto.Result.Prob.RatString(), exact.Result.Prob.RatString())
	}
	if st := e.Stats(); st.FloatFallbacks != 1 {
		t.Fatalf("FloatFallbacks = %d, want 1 (%+v)", st.FloatFallbacks, st)
	}
}

// TestEngineFloatResultCaching pins cache hygiene across substrates:
// fast and exact variants of the same job key separately (no float
// answer is ever served to an exact job), and cached fast results keep
// their bounds through the deep copy.
func TestEngineFloatResultCaching(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	fast1 := e.Do(floatJob(&core.Options{Precision: core.PrecisionFast}))
	exact := e.Do(floatJob(nil))
	if fast1.Err != nil || exact.Err != nil {
		t.Fatal(fast1.Err, exact.Err)
	}
	if exact.CacheHit {
		t.Fatal("exact job was served the fast job's cached result")
	}
	if exact.Result.Precision != core.PrecisionExact {
		t.Fatalf("exact job answered on substrate %v", exact.Result.Precision)
	}
	fast2 := e.Do(floatJob(&core.Options{Precision: core.PrecisionFast}))
	if !fast2.CacheHit {
		t.Fatal("identical fast job missed the result cache")
	}
	if fast2.Result.Bounds == nil || *fast2.Result.Bounds != *fast1.Result.Bounds {
		t.Fatal("cached fast result lost or changed its bounds")
	}
	// The cached copy must not alias the caller's.
	fast2.Result.Bounds.Lo = -1
	fast3 := e.Do(floatJob(&core.Options{Precision: core.PrecisionFast}))
	if fast3.Result.Bounds.Lo == -1 {
		t.Fatal("cache entry shares its Bounds struct with callers")
	}
	if !fast3.Result.Bounds.Contains(exact.Result.Prob) {
		t.Fatal("cached enclosure misses the exact answer")
	}
}

// TestEnginePlanCacheSharedAcrossPrecisions pins that the plan cache is
// substrate-independent: a structure compiled by an exact job serves
// fast and auto jobs (and reweights) as plan hits — the job's options,
// not the cached plan, pick the kernel. Without this, plan snapshots
// would go cold whenever the serving precision changes.
func TestEnginePlanCacheSharedAcrossPrecisions(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	// Compile once, under exact precision.
	if r := e.Do(floatJob(nil)); r.Err != nil {
		t.Fatal(r.Err)
	}
	// A fast job over the same structure must hit that plan (the
	// probabilities differ, so the result cache cannot answer).
	job := floatJob(&core.Options{Precision: core.PrecisionFast})
	job.Instance.MustSetEdgeProb(0, 1, big.NewRat(3, 5))
	r := e.Do(job)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.PlanHit {
		t.Fatal("fast job did not hit the plan compiled by the exact job")
	}
	if r.Result.Precision != core.PrecisionFast || r.Result.Bounds == nil {
		t.Fatalf("plan-cache hit served on substrate %v", r.Result.Precision)
	}
	// And an auto job with a third probability assignment hits it too.
	job = floatJob(&core.Options{Precision: core.PrecisionAuto})
	job.Instance.MustSetEdgeProb(0, 1, big.NewRat(4, 9))
	r = e.Do(job)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.PlanHit {
		t.Fatal("auto job did not hit the shared plan")
	}
	st := e.Stats()
	if st.PlanCompiles != 1 {
		t.Fatalf("PlanCompiles = %d, want 1 (one structure, three precision modes)", st.PlanCompiles)
	}
	if st.FloatFast != 2 {
		t.Fatalf("FloatFast = %d, want 2", st.FloatFast)
	}
}
