package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/maphash"
	"math/big"
	"sort"
	"time"

	"phom/internal/core"
	"phom/internal/graph"
	"phom/internal/graphio"
	"phom/internal/phomerr"
)

// This file is the engine's batched reweight path. Production reweight
// traffic — one structure, many probability vectors — arrives at
// Stream/SolveBatch as K jobs differing only in probabilities. Run
// individually, each pays goroutine spawn, canonicalization and key
// hashing, a plan-cache fetch and a full interpreter walk. Grouped,
// the K lanes share one key-derivation pass (graphio.BatchJobKeys
// amortizes the canonical prefix), one plan fetch and one vectorized
// kernel dispatch (core.EvaluateBatchOptsContext): per-lane cost drops
// to the probability-suffix hash and the lane's arithmetic. Grouping
// is invisible in results — every lane's outcome matches what
// DoContext would have returned — and visible in Stats.BatchRuns and
// Stats.BatchLanes.

// batchMaxLanes caps the width of one batched kernel dispatch; wider
// groups are chunked. The cap bounds the kernel's register matrix
// (NumRegs × lanes enclosures) and keeps per-chunk latency compatible
// with completion-order streaming.
const batchMaxLanes = 256

// probsSeed seeds the in-group dedup fingerprint; per-process, like any
// maphash seed.
var probsSeed = maphash.MakeSeed()

// probsFingerprint hashes inst's probability assignment into a cheap
// 64-bit bucket key for in-group dedup when memoization is off: equal
// assignments always hash equal, and bucket collisions are resolved by
// sameProbs. buf is a reusable scratch buffer, returned for the next
// call.
func probsFingerprint(inst *graph.ProbGraph, buf []byte) (uint64, []byte) {
	buf = buf[:0]
	var b [8]byte
	for i := 0; i < inst.G.NumEdges(); i++ {
		p := inst.Prob(i)
		if n, d := p.Num(), p.Denom(); n.IsInt64() && d.IsInt64() {
			binary.LittleEndian.PutUint64(b[:], uint64(n.Int64()))
			buf = append(buf, b[:]...)
			binary.LittleEndian.PutUint64(b[:], uint64(d.Int64()))
			buf = append(buf, b[:]...)
		} else {
			buf = append(buf, 0xff)
			buf = append(buf, p.RatString()...)
			buf = append(buf, 0xff)
		}
	}
	return maphash.Bytes(probsSeed, buf), buf
}

// sameProbs reports whether two same-graph instances carry identical
// probability assignments, comparing numerators and denominators
// directly (big.Rat is normalized, and this avoids Rat.Cmp's allocating
// cross-multiplication).
func sameProbs(a, b *graph.ProbGraph) bool {
	if a == b {
		return true
	}
	for i := 0; i < a.G.NumEdges(); i++ {
		pa, pb := a.Prob(i), b.Prob(i)
		if pa.Num().Cmp(pb.Num()) != 0 || pa.Denom().Cmp(pb.Denom()) != 0 {
			return false
		}
	}
	return true
}

// batchGroups partitions a Stream batch into batchable groups (slices
// of job indices, each with at least 2 and at most batchMaxLanes
// lanes) and the remaining singles. Jobs group when they share the
// query graph, the instance's underlying graph value (pointer
// identity — the cheap, sound test; reweight producers share it via
// graph.ProbGraph.CloneProbs), the options fingerprint and the per-job
// Timeout (equal budgets become one group deadline, started when the
// group starts — the moment each lane's own clock would have started),
// and use the single-query form.
func batchGroups(jobs []Job) (groups [][]int, singles []int) {
	type groupKey struct {
		q       *graph.Graph
		g       *graph.Graph
		fp      string
		timeout time.Duration
	}
	idx := make(map[groupKey][]int)
	var order []groupKey
	for i, job := range jobs {
		if job.Query == nil || len(job.Queries) != 0 || job.Instance == nil {
			singles = append(singles, i)
			continue
		}
		k := groupKey{q: job.Query, g: job.Instance.G, fp: job.Opts.Fingerprint(), timeout: job.Timeout}
		if _, ok := idx[k]; !ok {
			order = append(order, k)
		}
		idx[k] = append(idx[k], i)
	}
	for _, k := range order {
		lanes := idx[k]
		for len(lanes) > batchMaxLanes {
			groups = append(groups, lanes[:batchMaxLanes])
			lanes = lanes[batchMaxLanes:]
		}
		if len(lanes) >= 2 {
			groups = append(groups, lanes)
		} else {
			singles = append(singles, lanes...)
		}
	}
	return groups, singles
}

// runBatchGroup executes one group of same-structure jobs: derive all
// lane keys in one pass, serve memo-cache hits immediately, and run the
// remaining lanes through the batched kernel on a worker. It emits
// exactly one StreamResult per lane.
func (e *Engine) runBatchGroup(ctx context.Context, out chan<- StreamResult, jobs []Job, lanes []int) {
	emitErr := func(idxs []int, err error) {
		for _, i := range idxs {
			out <- StreamResult{Index: i, JobResult: JobResult{Err: err}}
		}
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		emitErr(lanes, ErrClosed)
		return
	}
	e.active.Add(1)
	e.stats.Submitted += uint64(len(lanes))
	e.stats.BatchRuns++
	e.stats.BatchLanes += uint64(len(lanes))
	e.mu.Unlock()
	defer e.active.Done()

	lead := jobs[lanes[0]]
	if lead.Timeout > 0 {
		// All lanes carry the same budget (grouping keys on it); one
		// group deadline starting now is exactly the per-job clock each
		// lane would have started at this point on the singleflight path.
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, lead.Timeout)
		defer cancelTimeout()
	}
	qs, err := lead.Disjuncts()
	if err != nil { // unreachable given grouping eligibility, kept for parity with DoContext
		e.mu.Lock()
		e.stats.Rejected += uint64(len(lanes))
		e.mu.Unlock()
		emitErr(lanes, err)
		return
	}
	canon := make([]string, len(qs))
	for i, q := range qs {
		canon[i] = graphio.CanonicalGraph(q)
	}
	sort.Strings(canon)

	instances := make([]*graph.ProbGraph, len(lanes))
	for k, i := range lanes {
		instances[k] = jobs[i].Instance
	}
	var jobKeys []string
	var structKey string
	var canonOrder []int
	if e.cache != nil {
		// One keying pass for all lanes: the canonical prefix (query
		// sections, instance header, edge lines) is derived once and only
		// the probability suffixes are hashed per lane.
		jobKeys, structKey, canonOrder = graphio.BatchJobKeys(canon, instances,
			lead.Opts.Fingerprint(), lead.Opts.StructFingerprint())
	} else {
		// Memoization off: no lane needs a memo key, so skip per-lane
		// hashing entirely — only the group-level structure key (plan
		// cache) and canonical edge order (probability transport) are
		// derived, and in-group dedup compares assignments directly.
		structKey, canonOrder = graphio.StructKeyJob(canon, lead.Instance.G, lead.Opts.StructFingerprint())
	}

	// Memo pass: lanes whose exact job was answered before are served
	// from the result cache without occupying a kernel lane.
	pending := make([]int, 0, len(lanes))
	var hits []StreamResult
	if e.cache != nil {
		e.mu.Lock()
		for k := range lanes {
			if res, ok := e.cache.get(jobKeys[k]); ok {
				e.stats.CacheHits++
				hits = append(hits, StreamResult{Index: lanes[k], JobResult: JobResult{Result: cloneResult(res), CacheHit: true}})
				continue
			}
			pending = append(pending, k)
		}
		e.mu.Unlock()
	} else {
		for k := range lanes {
			pending = append(pending, k)
		}
	}
	for _, h := range hits {
		out <- h
	}
	if len(pending) == 0 {
		return
	}

	// Deduplicate identical lanes, the in-group analogue of the per-job
	// path's singleflight: one lane per distinct job key executes, its
	// duplicates share the outcome. With memoization on, a duplicate is
	// served by the memo entry its primary populates (a cache hit, just
	// without the redundant lookup); with it off, it counts as coalesced,
	// like an in-flight waiter.
	execLanes := make([]int, 0, len(pending))
	dupOf := make(map[int]int) // lane position → index into execLanes
	if jobKeys != nil {
		primary := make(map[string]int, len(pending))
		for _, k := range pending {
			if pi, ok := primary[jobKeys[k]]; ok {
				dupOf[k] = pi
				continue
			}
			primary[jobKeys[k]] = len(execLanes)
			execLanes = append(execLanes, k)
		}
	} else {
		// No memo keys to compare — bucket lanes by a cheap 64-bit
		// fingerprint of the assignment and resolve buckets exactly.
		// Within a group the query, graph and options already match, so
		// equal assignments are exactly the lanes equal job keys would
		// have found.
		buckets := make(map[uint64][]int, len(pending))
		var fbuf []byte
		for _, k := range pending {
			var fp uint64
			fp, fbuf = probsFingerprint(instances[k], fbuf)
			dup := -1
			for _, pi := range buckets[fp] {
				if sameProbs(instances[execLanes[pi]], instances[k]) {
					dup = pi
					break
				}
			}
			if dup >= 0 {
				dupOf[k] = dup
				continue
			}
			buckets[fp] = append(buckets[fp], len(execLanes))
			execLanes = append(execLanes, k)
		}
	}
	pending = execLanes

	// Lane execution runs under the engine's lifetime context with the
	// stream's cancellation propagated in — the double bound the
	// singleflight path gets by deriving call contexts off baseCtx and
	// cancelling on waiter abandonment.
	runCtx, cancel := context.WithCancel(e.baseCtx)
	defer cancel()
	stop := context.AfterFunc(ctx, cancel)
	defer stop()

	pendInst := make([]*graph.ProbGraph, len(pending))
	for pi, k := range pending {
		pendInst[pi] = instances[k]
	}
	var outs []core.BatchOutcome
	var planHit bool
	done := make(chan struct{})
	task := func() {
		defer close(done)
		outs, planHit = e.executeBatch(runCtx, qs, lead.Opts, structKey, canonOrder, pendInst)
	}
	abort := func(err error) {
		e.mu.Lock()
		e.stats.Canceled += uint64(len(pending) + len(dupOf))
		e.mu.Unlock()
		for _, k := range pending {
			out <- StreamResult{Index: lanes[k], JobResult: JobResult{Err: err}}
		}
		for k := range dupOf {
			out <- StreamResult{Index: lanes[k], JobResult: JobResult{Err: err, Shared: true}}
		}
	}
	// A group that is dead on arrival — stream already cancelled, or a
	// per-job deadline that expired before dispatch — must not execute.
	// The select below would also notice, but when a worker slot and
	// ctx.Done() are both ready it picks randomly, and the AfterFunc
	// propagation into runCtx is asynchronous, so a short group could
	// run to completion without ever observing the expired context.
	// Checking synchronously here makes the outcome deterministic.
	if err := phomerr.FromContext(ctx); err != nil {
		abort(err)
		return
	}
	// Hand the group to a worker, honoring the promptness contract: a
	// cancelled stream does not sit in the queue.
	select {
	case e.jobs <- task:
	case <-ctx.Done():
		abort(phomerr.FromContext(ctx))
		return
	}
	<-done

	if e.cache != nil {
		e.mu.Lock()
		for pi, k := range pending {
			if outs[pi].Err == nil {
				e.cache.add(jobKeys[k], outs[pi].Result)
			}
		}
		e.mu.Unlock()
	}
	for pi, k := range pending {
		jr := JobResult{Err: outs[pi].Err, PlanHit: planHit}
		if outs[pi].Err == nil {
			jr.Result = cloneResult(outs[pi].Result)
		}
		out <- StreamResult{Index: lanes[k], JobResult: jr}
	}
	for k, pi := range dupOf {
		jr := JobResult{Err: outs[pi].Err}
		if outs[pi].Err == nil {
			jr.Result = cloneResult(outs[pi].Result)
		}
		e.mu.Lock()
		if e.cache != nil && outs[pi].Err == nil {
			// The primary's result is in the memo cache by now; serving
			// the duplicate from it is a cache hit minus the lookup.
			jr.CacheHit = true
			e.stats.CacheHits++
		} else {
			jr.Shared = true
			e.stats.Coalesced++
		}
		e.mu.Unlock()
		out <- StreamResult{Index: lanes[k], JobResult: jr}
	}
}

// executeBatch runs one group's pending lanes on the calling worker:
// it acquires the group's compiled plan — cache hit, wait on an
// in-flight compile, or compile as the leader, the same per-structure
// singleflight protocol runPlanned uses — transports every lane's
// probabilities onto the plan's edge numbering, and evaluates all
// lanes through core's batched kernel. Returns one outcome per lane
// and whether the lanes were served by a cached plan.
func (e *Engine) executeBatch(ctx context.Context, qs []*graph.Graph, opts *core.Options, structKey string, canonOrder []int, instances []*graph.ProbGraph) ([]core.BatchOutcome, bool) {
	failAll := func(err error) []core.BatchOutcome {
		outs := make([]core.BatchOutcome, len(instances))
		for k := range outs {
			outs[k] = core.BatchOutcome{Err: err}
		}
		return outs
	}

	var ent *core.CompiledPlan
	registered := false
	for {
		var wait chan struct{}
		e.mu.Lock()
		if e.plans == nil {
			e.mu.Unlock()
			break
		}
		if got, ok := e.plans.get(structKey); ok {
			ent = got
		} else if ch, ok := e.planFlight[structKey]; ok {
			wait = ch
		} else {
			e.planFlight[structKey] = make(chan struct{})
			registered = true
		}
		e.mu.Unlock()
		if wait != nil {
			select {
			case <-wait:
				continue // the leader finished; re-check the plan cache
			case <-ctx.Done():
				return e.finishBatch(failAll(phomerr.FromContext(ctx)), opts, false), false
			}
		}
		break
	}

	planHit := false
	cp := ent
	if cp != nil {
		// All lanes share one structure, so the transport check is
		// lane-independent: probe with lane 0. A mismatch (only possible
		// under a structure-hash collision) falls through to a fresh
		// compile, mirroring runPlanned.
		if _, ok := transportProbs(cp, canonOrder, instances[0]); ok {
			planHit = true
		} else {
			cp = nil
		}
	}
	if cp == nil {
		var err error
		if len(qs) > 1 {
			cp, err = core.CompileUCQContext(ctx, qs, instances[0], opts)
		} else {
			cp, err = core.CompileContext(ctx, qs[0], instances[0], opts)
		}
		e.mu.Lock()
		if err == nil {
			e.stats.PlanCompiles++
			if e.plans != nil {
				e.plans.add(structKey, cp)
			}
		}
		if registered {
			// Release waiters; on error nothing was cached, so one of
			// them becomes the next leader and retries.
			close(e.planFlight[structKey])
			delete(e.planFlight, structKey)
		}
		e.mu.Unlock()
		if err != nil {
			return e.finishBatch(failAll(err), opts, false), false
		}
	}

	probVecs := make([][]*big.Rat, len(instances))
	for k, inst := range instances {
		vec, ok := transportProbs(cp, canonOrder, inst)
		if !ok { // unreachable: the plan was just matched or compiled against this structure
			return e.finishBatch(failAll(phomerr.New(phomerr.CodeUnknown, "engine: plan/instance edge count mismatch")), opts, planHit), planHit
		}
		probVecs[k] = vec
	}
	return e.finishBatch(cp.EvaluateBatchOptsContext(ctx, probVecs, opts), opts, planHit), planHit
}

// finishBatch applies per-lane execution accounting to a batch group's
// outcomes: every lane counts as executed (Solved), error lanes count
// like failed executions (with cancellations also counted Canceled,
// as the per-job path does for abandoned calls), plan-hit groups count
// one PlanHit per lane, and float-path lanes update the dual-precision
// counters exactly as noteFloat would.
func (e *Engine) finishBatch(outs []core.BatchOutcome, opts *core.Options, planHit bool) []core.BatchOutcome {
	prec := opts.EffectivePrecision()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Solved += uint64(len(outs))
	if planHit {
		e.stats.PlanHits += uint64(len(outs))
	}
	for _, o := range outs {
		if o.Err != nil {
			e.stats.Errors++
			if errors.Is(o.Err, phomerr.ErrCanceled) || errors.Is(o.Err, phomerr.ErrDeadline) {
				e.stats.Canceled++
			}
			continue
		}
		if prec == core.PrecisionExact || o.Result == nil {
			continue
		}
		// Same carve-outs as noteFloat: approx lanes feed the sampler
		// counters (and only when actually sampled), float lanes the
		// dual-precision ones.
		if prec == core.PrecisionApprox {
			if o.Result.Precision == core.PrecisionApprox {
				e.stats.ApproxRuns++
				e.stats.ApproxSamples += uint64(o.Result.ApproxSamples)
			}
			continue
		}
		if o.Result.Precision == core.PrecisionFast {
			e.stats.FloatFast++
		} else {
			e.stats.FloatFallbacks++
		}
	}
	return outs
}
