package engine

// instances.go: the engine's registry of live named instances
// (internal/instance) and the cache discipline around their mutations.
// A solve against an instance is an ordinary engine job over the
// instance's current snapshot — same memo cache, same plan cache, same
// singleflight — plus a tracking record: the entry remembers which memo
// keys and which structural plans the instance's snapshots produced.
// ApplyDelta then keeps the caches honest with surgical precision:
//
//   - every delta (probability or structural) evicts exactly the
//     instance's own memoized results — other instances' and plain
//     stateless jobs' entries are untouched;
//   - a probability-only batch leaves every compiled plan valid (the
//     structure key did not move): the next solve is a pure reweight,
//     zero recompilation;
//   - a structural batch eagerly migrates each tracked single-query
//     plan to the new structure through core.PatchCompile — untouched
//     components are spliced copy-on-write, only components incident
//     to the delta recompile (Stats.IncrementalRecompiles) — falling
//     back to a from-scratch compile when the splice is not provably
//     local (Stats.FullRecompiles); superseded plans are dropped from
//     the plan cache.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"

	"phom/internal/core"
	"phom/internal/graph"
	"phom/internal/instance"
	"phom/internal/phomerr"
)

// ErrNoInstance is returned by instance-scoped engine methods when the
// named instance does not exist. It carries CodeBadInput; the serving
// layer distinguishes it (404, not 400) by identity.
var ErrNoInstance error = phomerr.New(phomerr.CodeBadInput, "engine: no such instance")

// trackedPlan records one structural plan an instance's solves put in
// the plan cache, with everything ApplyDelta needs to migrate it across
// a structural delta: the resolved query graphs, the normalized
// options, and the exact graph value the plan was compiled against.
type trackedPlan struct {
	qs   []*graph.Graph
	opts *core.Options
	g    *graph.Graph
}

// instEntry is the registry record of one live instance. The maps are
// guarded by the engine mutex; applyMu serializes ApplyDelta (and
// DeleteInstance) per instance so plan migration never races a
// concurrent delta's migration on the same entry.
type instEntry struct {
	inst    *instance.Instance
	applyMu chan struct{} // 1-buffered semaphore: per-instance write lock
	plans   map[string]*trackedPlan
	results map[string]struct{}
}

func (ent *instEntry) lock()   { ent.applyMu <- struct{}{} }
func (ent *instEntry) unlock() { <-ent.applyMu }

// CreateInstance registers a new live instance owning a deep copy of h.
// An empty id mints a fresh unique one. The id (minted or supplied) is
// returned; a duplicate id or an invalid instance graph fails with
// CodeBadInput.
func (e *Engine) CreateInstance(id string, h *graph.ProbGraph) (*instance.Instance, error) {
	if id == "" {
		var buf [8]byte
		if _, err := rand.Read(buf[:]); err != nil {
			return nil, fmt.Errorf("engine: minting instance id: %w", err)
		}
		id = "inst-" + hex.EncodeToString(buf[:])
	}
	in, err := instance.New(id, h)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if _, dup := e.instances[id]; dup {
		return nil, phomerr.New(phomerr.CodeBadInput, "engine: instance %q already exists", id)
	}
	e.instances[id] = &instEntry{
		inst:    in,
		applyMu: make(chan struct{}, 1),
		plans:   make(map[string]*trackedPlan),
		results: make(map[string]struct{}),
	}
	return in, nil
}

// Instance returns the live instance named id, or nil, false.
func (e *Engine) Instance(id string) (*instance.Instance, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.instances[id]
	if !ok {
		return nil, false
	}
	return ent.inst, true
}

// ListInstances returns the ids of all live instances, sorted.
func (e *Engine) ListInstances() []string {
	e.mu.Lock()
	ids := make([]string, 0, len(e.instances))
	for id := range e.instances {
		ids = append(ids, id)
	}
	e.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// DeleteInstance unregisters the instance and evicts its memoized
// results and tracked plans from the caches. It reports whether the
// instance existed. Solves holding the last snapshot finish unharmed
// (the snapshot is immutable); they just no longer feed the tracking.
func (e *Engine) DeleteInstance(id string) bool {
	e.mu.Lock()
	ent, ok := e.instances[id]
	if !ok {
		e.mu.Unlock()
		return false
	}
	e.mu.Unlock()
	ent.lock()
	defer ent.unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, still := e.instances[id]; !still || cur != ent {
		return false // lost a delete race; the other call did the work
	}
	delete(e.instances, id)
	e.evictLocked(ent)
	return true
}

// evictLocked drops the entry's memoized results and tracked plans from
// the caches. Caller holds e.mu.
func (e *Engine) evictLocked(ent *instEntry) {
	if e.cache != nil {
		for k := range ent.results {
			e.cache.remove(k)
		}
	}
	ent.results = make(map[string]struct{})
	if e.plans != nil {
		for sk := range ent.plans {
			e.plans.remove(sk)
		}
	}
}

// InstanceJob resolves an instance-scoped job: it loads the instance's
// current snapshot into job.Instance and registers the job's memo key
// and structural plan with the instance's tracking record, so a later
// delta can invalidate and migrate exactly this work. The returned job
// is an ordinary engine job — run it through DoContext, Stream or
// SolveBatch as usual. The snapshot's version is returned so callers
// can report which version answered.
func (e *Engine) InstanceJob(id string, job Job) (Job, uint64, error) {
	e.mu.Lock()
	ent, ok := e.instances[id]
	e.mu.Unlock()
	if !ok {
		return Job{}, 0, ErrNoInstance
	}
	snap := ent.inst.Snapshot()
	job.Instance = snap.H
	qs, _, key, structKey, _, err := jobKeys(job)
	if err != nil {
		return Job{}, 0, err
	}
	e.mu.Lock()
	// Re-check liveness under the lock: a concurrent DeleteInstance
	// must not see its eviction silently undone by this tracking write.
	if cur, still := e.instances[id]; still && cur == ent {
		ent.results[key] = struct{}{}
		if _, tracked := ent.plans[structKey]; !tracked {
			ent.plans[structKey] = &trackedPlan{qs: qs, opts: job.Opts, g: snap.H.G}
		}
	}
	e.mu.Unlock()
	return job, snap.Version, nil
}

// ApplyDelta applies a batch of deltas to the named instance (see
// instance.Apply for atomicity and the ifVersion optimistic check) and
// keeps the engine caches coherent: the instance's memoized results are
// evicted, and — when the batch changed the structure — every tracked
// single-query plan is migrated to the new structure through
// core.PatchCompile, reusing the untouched components' compiled parts.
// Failed batches (conflict, malformed delta) change nothing.
func (e *Engine) ApplyDelta(id string, ifVersion int64, deltas []instance.Delta) (*instance.ApplyResult, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	ent, ok := e.instances[id]
	e.mu.Unlock()
	if !ok {
		return nil, ErrNoInstance
	}
	ent.lock()
	defer ent.unlock()
	res, err := ent.inst.Apply(ifVersion, deltas)
	if err != nil {
		return nil, err
	}

	e.mu.Lock()
	e.stats.DeltasApplied += uint64(len(deltas))
	if e.cache != nil {
		for k := range ent.results {
			e.cache.remove(k)
		}
	}
	ent.results = make(map[string]struct{})
	var work map[string]*trackedPlan
	if res.Structural {
		work = ent.plans
		ent.plans = make(map[string]*trackedPlan)
	}
	e.mu.Unlock()
	if !res.Structural {
		return res, nil
	}

	// Structural delta: migrate each tracked plan to the new structure.
	// Compilation runs outside the engine mutex (it can be the dominant
	// cost); applyMu keeps concurrent deltas to this instance from
	// migrating over each other.
	for oldSK, tp := range work {
		var (
			cp          *core.CompiledPlan
			incremental bool
			cerr        error
		)
		e.mu.Lock()
		var old *core.CompiledPlan
		if e.plans != nil {
			old, _ = e.plans.get(oldSK)
		}
		e.mu.Unlock()
		switch {
		case old == nil:
			// Evicted since it was tracked: nothing to migrate; the next
			// solve compiles fresh through the ordinary path.
			continue
		case len(tp.qs) == 1:
			cp, incremental, cerr = core.PatchCompileContext(e.baseCtx, tp.qs[0], old, tp.g, res.New.H, tp.opts)
		default:
			// UCQ plans have no single-query splice; recompile eagerly so
			// the instance keeps serving reweights without a cold stop.
			cp, cerr = core.CompileUCQContext(e.baseCtx, tp.qs, res.New.H, tp.opts)
		}
		e.mu.Lock()
		if e.plans != nil {
			e.plans.remove(oldSK) // superseded structure
		}
		if cerr == nil && cp != nil {
			if incremental {
				e.stats.IncrementalRecompiles++
			} else {
				e.stats.FullRecompiles++
			}
			if e.plans != nil {
				e.plans.add(cp.StructKey(), cp)
			}
			if cur, still := e.instances[id]; still && cur == ent {
				ent.plans[cp.StructKey()] = &trackedPlan{qs: tp.qs, opts: tp.opts, g: res.New.H.G}
			}
		}
		// A migration error (the new structure fell off the tractable
		// cell and fallbacks are disabled, say) is not a delta error: the
		// delta committed; the next solve will surface the typed error
		// through the ordinary compile path.
		e.mu.Unlock()
	}
	return res, nil
}
