package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"phom/internal/core"
	"phom/internal/graph"
	"phom/internal/graphio"
	"phom/internal/phomerr"
)

// DefaultCacheSize is the default capacity of the result cache.
const DefaultCacheSize = 4096

// DefaultPlanCacheSize is the default capacity of the compiled-plan
// cache. Plans are heavier than results (they hold lineage systems and
// d-DNNF circuits), so the default is smaller than the result cache.
const DefaultPlanCacheSize = 1024

// ErrClosed is returned by Solve and SolveBatch after Close. It
// carries phomerr.CodeUnavailable, so errors.Is(err,
// phomerr.ErrUnavailable) holds and the serving layer maps it to 503.
var ErrClosed error = phomerr.New(phomerr.CodeUnavailable, "engine: closed")

// Options configures an Engine.
type Options struct {
	// Workers is the number of worker goroutines. 0 means GOMAXPROCS.
	Workers int
	// CacheSize bounds the number of memoized results. 0 means
	// DefaultCacheSize; negative disables memoization entirely
	// (in-flight deduplication still applies).
	CacheSize int
	// PlanCacheSize bounds the number of cached compiled plans, keyed by
	// job structure (probabilities stripped). 0 means
	// DefaultPlanCacheSize; negative disables plan caching, making every
	// executed job compile from scratch.
	PlanCacheSize int
	// BaseContext, when non-nil, is the lifetime context of every job
	// the engine executes: cancelling it aborts all in-flight solves at
	// their next cooperative checkpoint (they fail with
	// phomerr.ErrCanceled) and makes queued work abort on entry. The
	// serving layer wires its shutdown context here so SIGTERM stops
	// burning CPU on abandoned jobs. Nil means context.Background() —
	// jobs are then bounded only by their callers' contexts.
	BaseContext context.Context
	// PlanSnapshotPath, when non-empty, names a snapshot file for the
	// plan cache: New restores cached plans from it if it exists (a
	// warm start — restored structures serve reweights without ever
	// compiling), and Close writes the current plan cache back to it.
	// Snapshot failures never fail the engine — the snapshot is a
	// cache, not state — they are counted in Stats.SnapshotErrors (and
	// a failed save is additionally reported by Close).
	PlanSnapshotPath string
}

// Job is one evaluation: a query (or a union of conjunctive queries), a
// probabilistic instance, and solver options. It is also the v2
// request type of the public API (phom.Request): construct it
// literally or through phom.NewRequest and the functional options.
type Job struct {
	// Query is the query graph of a single conjunctive query. For a
	// union of conjunctive queries, set Queries instead and leave Query
	// nil; a one-element Queries is equivalent to Query.
	Query *graph.Graph
	// Queries are the disjuncts of a union of conjunctive queries.
	Queries []*graph.Graph
	// Instance is the probabilistic instance graph (H, π).
	Instance *graph.ProbGraph
	// Opts configures the solver; nil means defaults. Options take part
	// in the cache key (with defaults normalized, so nil and the
	// explicit default options share cache entries).
	Opts *core.Options
	// Timeout, when positive, is this job's execution budget: DoContext
	// derives a deadline that far in the future on top of its context,
	// and the job fails with phomerr.ErrDeadline when it passes. The
	// timeout is scheduling policy, not semantics, so it takes no part
	// in any cache key — two jobs differing only in Timeout share cache
	// entries and in-flight executions.
	Timeout time.Duration
}

func (j Job) disjuncts() []*graph.Graph {
	if len(j.Queries) > 0 {
		return j.Queries
	}
	if j.Query != nil {
		return []*graph.Graph{j.Query}
	}
	return nil
}

// Disjuncts validates the request and resolves its query set with the
// engine's canonical precedence: Queries wins when non-empty, and a
// one-element Queries is equivalent to Query (the engine has always
// collapsed one-disjunct unions onto the single-query compiler; the
// library's SolveContext instead preserves SolveUCQ's lifted routing
// for any non-nil Queries — see phom.resolveRequest). Failures are
// typed phomerr.CodeBadInput.
func (j Job) Disjuncts() ([]*graph.Graph, error) {
	qs := j.disjuncts()
	if len(qs) == 0 {
		return nil, phomerr.New(phomerr.CodeBadInput, "phom: request has no query graph")
	}
	for _, q := range qs {
		if q == nil {
			return nil, phomerr.New(phomerr.CodeBadInput, "phom: nil query graph in request")
		}
	}
	if j.Instance == nil {
		return nil, phomerr.New(phomerr.CodeBadInput, "phom: request has no instance graph")
	}
	return qs, nil
}

// JobResult is the outcome of one Job in a batch.
type JobResult struct {
	Result *core.Result
	Err    error
	// CacheHit reports that the result was served from the memo cache
	// without running the solver.
	CacheHit bool
	// Shared reports that the job was coalesced onto an identical job
	// already in flight (singleflight) rather than executed itself.
	Shared bool
	// PlanHit reports that this call executed the job by evaluating a
	// cached compiled plan (a structure match with different
	// probabilities) instead of compiling from scratch. It is false for
	// results served from the result cache or coalesced onto another
	// call.
	PlanHit bool
}

// Stats is a snapshot of engine counters. The JSON tags match the
// snake_case wire style of cmd/phomserve, which exposes these counters.
type Stats struct {
	// Submitted counts jobs accepted by Solve, SolveUCQ, Do and
	// SolveBatch (including ones that later failed).
	Submitted uint64 `json:"submitted"`
	// Solved counts jobs actually executed by a worker.
	Solved uint64 `json:"solved"`
	// CacheHits counts jobs answered from the memo cache.
	CacheHits uint64 `json:"cache_hits"`
	// Coalesced counts jobs deduplicated onto an identical in-flight job.
	Coalesced uint64 `json:"coalesced"`
	// Rejected counts jobs refused before execution (no query, no
	// instance, …).
	Rejected uint64 `json:"rejected"`
	// Errors counts executed jobs whose solver returned an error
	// (cancelled executions included).
	Errors uint64 `json:"errors"`
	// Canceled counts calls abandoned because their context fired while
	// the job was queued or running — before its result (if any)
	// arrived. The execution itself additionally lands in Errors when
	// the last waiter's departure aborted it.
	Canceled uint64 `json:"canceled"`
	// PlanHits counts executed jobs evaluated against a cached compiled
	// plan (structure-only cache; the job's probabilities differed from
	// every memoized result), whether or not the evaluation succeeded.
	PlanHits uint64 `json:"plan_hits"`
	// PlanCompiles counts executed jobs that compiled a fresh plan.
	PlanCompiles uint64 `json:"plan_compiles"`
	// BatchRuns counts batched executions: groups of same-structure,
	// same-options reweight jobs that Stream/SolveBatch routed through
	// the vectorized kernel as one dispatch (each chunk of up to
	// batchMaxLanes lanes is one run).
	BatchRuns uint64 `json:"batch_runs"`
	// BatchLanes counts the jobs carried by those batched runs — lanes
	// served from the memo cache included, kernel-evaluated or not.
	BatchLanes uint64 `json:"batch_lanes"`
	// FloatFast counts executed jobs that requested the float64 fast
	// path (precision fast or auto) and were answered by it — the
	// result carries a certified error bound instead of an exact
	// rational.
	FloatFast uint64 `json:"float_fast"`
	// FloatFallbacks counts executed jobs that requested the fast path
	// but were answered by exact rational arithmetic instead: the
	// certified enclosure was wider than the tolerance (auto), the
	// plan was opaque, or the float kernel could not produce a finite
	// bound. Fallback results are byte-identical to precision-exact
	// ones.
	FloatFallbacks uint64 `json:"float_fallbacks"`
	// ApproxRuns counts executed jobs answered by the Karp–Luby
	// estimator (precision approx on a #P-hard cell). Approx jobs that
	// landed on a tractable cell answered exactly and count nowhere —
	// neither here nor in the float counters.
	ApproxRuns uint64 `json:"approx_runs"`
	// ApproxSamples totals the Monte-Carlo samples drawn across
	// ApproxRuns (a run whose lineage short-circuited exactly
	// contributes zero).
	ApproxSamples uint64 `json:"approx_samples"`
	// PlansLoaded counts plan records restored into the plan cache by
	// LoadPlans (including the boot restore of Options.PlanSnapshotPath).
	PlansLoaded uint64 `json:"plans_loaded"`
	// PlansSaved counts plan records written by SavePlans (including
	// the Close snapshot of Options.PlanSnapshotPath).
	PlansSaved uint64 `json:"plans_saved"`
	// SnapshotErrors counts failed snapshot restores and saves
	// (malformed snapshot files, filesystem errors). A missing boot
	// snapshot is a cold start, not an error.
	SnapshotErrors uint64 `json:"snapshot_errors"`
	// DeltasApplied counts individual instance deltas committed through
	// ApplyDelta (batches count once per delta, failed batches not at
	// all).
	DeltasApplied uint64 `json:"deltas_applied"`
	// IncrementalRecompiles counts tracked plans carried across a
	// structural delta by the component-localized splice
	// (core.PatchCompile reusing untouched parts).
	IncrementalRecompiles uint64 `json:"incremental_recompiles"`
	// FullRecompiles counts tracked plans a structural delta forced
	// through a from-scratch compile — the splice was not provably
	// local (route change, component merge touching everything, UCQ
	// plan).
	FullRecompiles uint64 `json:"full_recompiles"`
	// Instances is the current number of live registered instances.
	Instances int `json:"instances"`
	// CacheLen is the current number of memoized results.
	CacheLen int `json:"cache_len"`
	// PlanCacheLen is the current number of cached compiled plans.
	PlanCacheLen int `json:"plan_cache_len"`
}

// call is one singleflight execution shared by all identical jobs that
// arrive while it is in flight. Its context is derived from the
// engine's base context and reference-counted over the waiters: every
// caller that abandons the call (its own context fired) decrements
// waiters, and when the last one leaves the call's context is
// cancelled, so the worker stops computing a result nobody wants at
// its next cooperative checkpoint. waiters is guarded by the engine
// mutex.
type call struct {
	done    chan struct{}
	res     *core.Result
	err     error
	waiters int
	cancel  context.CancelFunc
	// abandoned is set (under the engine mutex) once nobody can ever
	// receive this call's result: the last waiter left, or the leader
	// withdrew before enqueueing. New arrivals must not coalesce onto
	// an abandoned call — its context is cancelled and cannot be
	// revived — they replace it in the in-flight table instead.
	abandoned bool
}

// Engine is a concurrent batch evaluator. Create with New; an Engine
// must not be copied. All methods are safe for concurrent use.
type Engine struct {
	workers  int
	jobs     chan func()
	wg       sync.WaitGroup // worker goroutines
	snapPath string         // Options.PlanSnapshotPath
	baseCtx  context.Context
	baseStop context.CancelFunc // releases baseCtx's child registration on Close

	mu         sync.Mutex
	closed     bool
	active     sync.WaitGroup // Solve/SolveBatch calls in flight, for Close
	inflight   map[string]*call
	cache      *lruCache[*core.Result]       // nil when memoization is disabled
	plans      *lruCache[*core.CompiledPlan] // nil when plan caching is disabled
	planFlight map[string]chan struct{}      // structures being compiled right now
	instances  map[string]*instEntry         // live named instances (instances.go)
	stats      Stats
}

// New starts an Engine with the given options. When
// Options.PlanSnapshotPath names an existing snapshot, the plan cache
// is warm-started from it before the engine accepts jobs; restore
// failures are counted (Stats.SnapshotErrors) but never prevent
// startup, since the snapshot is only a cache.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var cache *lruCache[*core.Result]
	switch {
	case opts.CacheSize == 0:
		cache = newLRUCache[*core.Result](DefaultCacheSize)
	case opts.CacheSize > 0:
		cache = newLRUCache[*core.Result](opts.CacheSize)
	}
	var plans *lruCache[*core.CompiledPlan]
	switch {
	case opts.PlanCacheSize == 0:
		plans = newLRUCache[*core.CompiledPlan](DefaultPlanCacheSize)
	case opts.PlanCacheSize > 0:
		plans = newLRUCache[*core.CompiledPlan](opts.PlanCacheSize)
	}
	base := opts.BaseContext
	if base == nil {
		base = context.Background()
	}
	baseCtx, baseStop := context.WithCancel(base)
	e := &Engine{
		workers:    workers,
		jobs:       make(chan func()),
		snapPath:   opts.PlanSnapshotPath,
		baseCtx:    baseCtx,
		baseStop:   baseStop,
		inflight:   make(map[string]*call),
		cache:      cache,
		plans:      plans,
		planFlight: make(map[string]chan struct{}),
		instances:  make(map[string]*instEntry),
	}
	if e.snapPath != "" && e.plans != nil {
		if f, err := os.Open(e.snapPath); err == nil {
			_, lerr := e.LoadPlans(f)
			f.Close()
			if lerr != nil {
				e.mu.Lock()
				e.stats.SnapshotErrors++
				e.mu.Unlock()
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			e.stats.SnapshotErrors++ // engine not yet shared: no lock needed
		}
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer e.wg.Done()
			for task := range e.jobs {
				task()
			}
		}()
	}
	return e
}

// Workers returns the size of the worker pool.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	if e.cache != nil {
		s.CacheLen = e.cache.len()
	}
	if e.plans != nil {
		s.PlanCacheLen = e.plans.len()
	}
	s.Instances = len(e.instances)
	return s
}

// Solve computes Pr(G ⇝ H) through the engine, equivalent to core.Solve
// but scheduled on the worker pool, deduplicated and memoized.
func (e *Engine) Solve(q *graph.Graph, h *graph.ProbGraph, opts *core.Options) (*core.Result, error) {
	r := e.Do(Job{Query: q, Instance: h, Opts: opts})
	return r.Result, r.Err
}

// SolveUCQ computes Pr(G₁ ∨ … ∨ G_k ⇝ H) through the engine, equivalent
// to core.SolveUCQ.
func (e *Engine) SolveUCQ(qs []*graph.Graph, h *graph.ProbGraph, opts *core.Options) (*core.Result, error) {
	r := e.Do(Job{Queries: qs, Instance: h, Opts: opts})
	return r.Result, r.Err
}

// Do runs a single job to completion, blocking until its result is
// available (possibly computed by a concurrent identical job). It is
// DoContext under context.Background(): no cancellation, no deadline.
func (e *Engine) Do(job Job) JobResult {
	return e.DoContext(context.Background(), job)
}

// DoContext runs a single job to completion under ctx, blocking until
// its result is available (possibly computed by a concurrent identical
// job) or ctx fires.
//
// Cancellation semantics: when ctx is cancelled (or its deadline — or
// the job's own Timeout — passes), DoContext returns promptly with a
// typed error (phomerr.ErrCanceled / ErrDeadline). The underlying
// execution is aborted at its next cooperative checkpoint if this was
// the only caller interested in it; if identical concurrent jobs are
// still waiting, the execution continues for them — one impatient
// client cannot cancel another's work. Results computed under an
// already-abandoned call are discarded, never cached.
func (e *Engine) DoContext(ctx context.Context, job Job) JobResult {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return JobResult{Err: ErrClosed}
	}
	e.active.Add(1)
	e.stats.Submitted++
	e.mu.Unlock()
	defer e.active.Done()

	if job.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.Timeout)
		defer cancel()
	}
	key, run, planHit, err := e.prepare(job)
	if err != nil {
		e.mu.Lock()
		e.stats.Rejected++
		e.mu.Unlock()
		return JobResult{Err: err}
	}
	r, completed := e.do(ctx, key, run)
	// planHit is written by run before the call's done channel closes,
	// so reading it after a completed call is race-free — but it MUST
	// not be read when the call was abandoned on ctx (the worker may
	// still be writing it). It is only meaningful when this call was
	// the one that executed (not served from cache or coalesced).
	if completed && !r.CacheHit && !r.Shared && *planHit {
		r.PlanHit = true
	}
	return r
}

// SolveBatch evaluates all jobs concurrently on the worker pool and
// returns their results in job order. Identical jobs (within the batch
// or with other concurrent callers) are solved once and shared; results
// of previously solved jobs come from the cache. The call blocks until
// every job is done; per-job failures are reported in the corresponding
// JobResult, not by failing the batch.
func (e *Engine) SolveBatch(jobs []Job) []JobResult {
	return e.SolveBatchContext(context.Background(), jobs)
}

// SolveBatchContext is SolveBatch under a context: every job runs as
// DoContext(ctx, job), so cancelling ctx mid-batch makes the remaining
// jobs fail fast with phomerr.ErrCanceled (already-finished results
// are kept) and the call still returns one JobResult per job. It is
// exactly Stream drained into a job-ordered slice — one fan-out
// implementation serves both shapes.
func (e *Engine) SolveBatchContext(ctx context.Context, jobs []Job) []JobResult {
	out := make([]JobResult, len(jobs))
	for sr := range e.Stream(ctx, jobs) {
		out[sr.Index] = sr.JobResult
	}
	return out
}

// StreamResult is one completed job of a Stream call: the result (or
// error) of jobs[Index].
type StreamResult struct {
	// Index is the job's position in the Stream input slice.
	Index int
	JobResult
}

// Stream evaluates all jobs concurrently and delivers results in
// completion order, as they become available, instead of buffering the
// whole batch: huge batches start yielding answers after the first job
// finishes, and the caller's memory stays bounded by what it retains.
//
// The returned channel yields exactly one StreamResult per job — fast
// jobs first, each carrying its input index — and is then closed,
// always, whether or not ctx fires. The channel's buffer holds the
// whole batch, so delivery never blocks: a consumer may drain at its
// own pace, stop early, or abandon the channel entirely without
// leaking the delivering goroutines. Cancelling ctx aborts the
// remaining jobs — they fail fast and their StreamResults carry the
// typed phomerr.ErrCanceled. Per-job failures arrive as StreamResults
// with Err set, like SolveBatch's.
//
// Jobs that share one query, one instance structure (graph identity —
// see graph.ProbGraph.CloneProbs) and one options fingerprint — the
// reweight pattern — are grouped and executed through the batched
// evaluation kernel: one plan fetch and one vectorized dispatch for the
// whole group instead of one interpreter walk per job (Stats.BatchRuns
// / BatchLanes). Grouping changes scheduling only, never results:
// per-lane results, errors, memo-cache interaction and cancellation
// behave as if each job ran alone.
func (e *Engine) Stream(ctx context.Context, jobs []Job) <-chan StreamResult {
	// Buffered to len(jobs): each job sends exactly once, so the sends
	// can never block and every job's result is delivered even if ctx
	// fires while the consumer is mid-drain. The buffer is the same
	// O(len(jobs)) a SolveBatch result slice costs; what Stream saves
	// is the *latency* of the barrier, not the result storage.
	out := make(chan StreamResult, len(jobs))
	groups, singles := batchGroups(jobs)
	go func() {
		// Bound the submission fan-out like the historical SolveBatch:
		// a slot is acquired *before* spawning, so a million-job stream
		// holds at most a few goroutines per worker alive at a time
		// rather than a million stacks. Coalesced waiters holding a
		// slot cannot deadlock the stream: a waiter only ever waits on
		// a call whose leader has already enqueued, and the workers
		// drain independently of these slots. A batch group occupies
		// one slot for all its lanes.
		sem := make(chan struct{}, 4*e.workers)
		var wg sync.WaitGroup
		// launch runs f on a fresh goroutine once a slot frees up; it
		// reports false when ctx fired first (nothing was launched).
		launch := func(f func()) bool {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return false
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				f()
				<-sem
			}()
			return true
		}
		for _, lanes := range groups {
			lanes := lanes
			if !launch(func() { e.runBatchGroup(ctx, out, jobs, lanes) }) {
				// Cancelled while queueing: deliver the typed error
				// directly — no worker slot, no goroutine — so the
				// consumer still sees one result per job.
				err := phomerr.FromContext(ctx)
				for _, i := range lanes {
					out <- StreamResult{Index: i, JobResult: JobResult{Err: err}}
				}
			}
		}
		for _, i := range singles {
			i := i
			if !launch(func() {
				out <- StreamResult{Index: i, JobResult: e.DoContext(ctx, jobs[i])}
			}) {
				out <- StreamResult{Index: i, JobResult: JobResult{Err: phomerr.FromContext(ctx)}}
			}
		}
		wg.Wait()
		close(out)
	}()
	return out
}

// Close shuts the engine down: it waits for in-flight jobs to finish,
// stops the workers, snapshots the plan cache to
// Options.PlanSnapshotPath if one was configured, and makes further
// submissions fail with ErrClosed. Close is idempotent: the second and
// later calls return nil without repeating any of this (in particular
// the snapshot is written at most once).
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.active.Wait() // no submission can enqueue after closed is set
	close(e.jobs)
	e.wg.Wait()
	// All jobs have drained; release the engine's registration in the
	// base context (a leak otherwise when BaseContext is long-lived).
	e.baseStop()
	if e.snapPath != "" && e.plans != nil {
		if err := e.snapshotToPath(); err != nil {
			e.mu.Lock()
			e.stats.SnapshotErrors++
			e.mu.Unlock()
			return fmt.Errorf("engine: plan snapshot: %w", err)
		}
	}
	return nil
}

// snapshotToPath writes the plan cache to the configured snapshot file
// via a temp-file rename, so a crash mid-write never leaves a
// truncated snapshot behind.
func (e *Engine) snapshotToPath() error {
	dir := filepath.Dir(e.snapPath)
	tmp, err := os.CreateTemp(dir, ".phom-plans-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := e.savePlansUnchecked(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), e.snapPath)
}

// SavePlans writes a snapshot of the plan cache to w — every cached
// structural plan in its canonical binary encoding (opaque plans are
// skipped: they are closures over exponential baselines, not data).
// The snapshot can be restored by LoadPlans on any engine, including
// in another process or on another replica: plans embed their
// structure key, so a restored cache serves reweights of the same
// structures without a single compilation. Returns the number of
// plans written.
func (e *Engine) SavePlans(w io.Writer) (int, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	e.mu.Unlock()
	return e.savePlansUnchecked(w)
}

// savePlansUnchecked is SavePlans without the closed check, shared with
// the Close-time snapshot (which runs after closed is set).
func (e *Engine) savePlansUnchecked(w io.Writer) (int, error) {
	// Snapshot the entries under the lock, then encode and write
	// without it: plans are immutable, so only the cache walk needs
	// synchronization.
	e.mu.Lock()
	var cps []*core.CompiledPlan
	if e.plans != nil {
		// Oldest first: sequential re-insertion on load restores the
		// recency order.
		for _, cp := range e.plans.values() {
			cps = append(cps, cp)
		}
	}
	e.mu.Unlock()
	var records [][]byte
	for _, cp := range cps {
		if cp.Opaque() {
			continue
		}
		rec, err := cp.MarshalBinary()
		if err != nil {
			return 0, err
		}
		records = append(records, rec)
	}
	if err := graphio.WritePlanSnapshot(w, records); err != nil {
		return 0, err
	}
	e.mu.Lock()
	e.stats.PlansSaved += uint64(len(records))
	e.mu.Unlock()
	return len(records), nil
}

// LoadPlans restores plans from a snapshot written by SavePlans,
// merging them into the plan cache keyed by their embedded structure
// keys (existing entries for the same structure are replaced; the
// cache bound applies as usual). Every record is fully validated —
// corrupt snapshots yield an error, never a panic or an invalid
// cached plan. Returns the number of plans restored; on error, plans
// decoded before the failure remain cached.
func (e *Engine) LoadPlans(r io.Reader) (int, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	if e.plans == nil {
		e.mu.Unlock()
		return 0, fmt.Errorf("engine: plan caching is disabled")
	}
	e.mu.Unlock()
	loaded := 0
	err := graphio.ReadPlanSnapshot(r, func(rec []byte) error {
		cp := new(core.CompiledPlan)
		if err := cp.UnmarshalBinary(rec); err != nil {
			return err
		}
		e.mu.Lock()
		if e.plans != nil {
			e.plans.add(cp.StructKey(), cp)
			e.stats.PlansLoaded++
			loaded++
		}
		e.mu.Unlock()
		return nil
	})
	return loaded, err
}

// prepare validates the job (through Job.Disjuncts, the shared
// validation point) and returns its canonical key and the solver thunk
// that executes it. The thunk routes through the structure-keyed plan
// cache: a job whose structure was compiled before (under any
// probabilities) evaluates the cached plan, everything else compiles
// fresh and populates the cache. The returned bool is set by the thunk
// when it served a plan-cache hit.
func (e *Engine) prepare(job Job) (string, func(context.Context) (*core.Result, error), *bool, error) {
	qs, _, key, structKey, canonOrder, err := jobKeys(job)
	if err != nil {
		return "", nil, nil, err
	}
	planHit := new(bool)
	run := func(ctx context.Context) (*core.Result, error) {
		return e.runPlanned(ctx, structKey, canonOrder, job, qs, planHit)
	}
	return key, run, planHit, nil
}

// jobKeys validates the job (through Job.Disjuncts, the shared
// validation point) and derives its canonical identities: the resolved
// disjuncts, their sorted canonical encodings, the full memo key
// (probabilities included), the structure key (probabilities stripped)
// and the instance's canonical edge order. It is the single key
// derivation shared by prepare and the instance registry.
func jobKeys(job Job) (qs []*graph.Graph, canon []string, key, structKey string, canonOrder []int, err error) {
	qs, err = job.Disjuncts()
	if err != nil {
		return nil, nil, "", "", nil, err
	}
	canon = make([]string, len(qs))
	for i, q := range qs {
		canon[i] = graphio.CanonicalGraph(q)
	}
	// Disjunct order is irrelevant to the probability of a union.
	sort.Strings(canon)
	key, structKey, canonOrder = graphio.JobKeys(canon, job.Instance,
		job.Opts.Fingerprint(), job.Opts.StructFingerprint())
	return qs, canon, key, structKey, canonOrder, nil
}

// runPlanned executes a job through the compile/evaluate pipeline,
// consulting and feeding the structure-keyed plan cache. canonOrder is
// the job instance's canonical edge order, already computed during key
// derivation.
//
// Compilation is deduplicated per structure: the singleflight table of
// do() coalesces only byte-identical jobs (probabilities included), so
// without this a cold burst of reweighted variants of one structure —
// the dominant serving pattern — would compile the same plan once per
// worker. A job that finds its structure being compiled waits for that
// compilation and then evaluates the cached plan. Waiting holds a
// worker, which cannot deadlock: the flight is only ever registered by
// a task already running on some worker, which finishes independently.
func (e *Engine) runPlanned(ctx context.Context, structKey string, canonOrder []int, job Job, qs []*graph.Graph, planHit *bool) (*core.Result, error) {
	registered := false
	for {
		var ent *core.CompiledPlan
		var wait chan struct{}
		e.mu.Lock()
		if e.plans == nil {
			e.mu.Unlock()
			break
		}
		if got, ok := e.plans.get(structKey); ok {
			ent = got
		} else if ch, ok := e.planFlight[structKey]; ok {
			wait = ch
		} else {
			e.planFlight[structKey] = make(chan struct{})
			registered = true
		}
		e.mu.Unlock()
		if wait != nil {
			select {
			case <-wait:
			case <-ctx.Done():
				return nil, phomerr.FromContext(ctx)
			}
			continue // the leader finished; re-check the plan cache
		}
		if ent == nil {
			break // this call is the compile leader
		}
		// The fresh-compile path validates probabilities inside
		// core.Compile; mirror it so both paths fail identically.
		if err := phomerr.Wrap(phomerr.CodeBadInput, job.Instance.Validate()); err != nil {
			return nil, err
		}
		// A transport mismatch (only possible under a structure-hash
		// collision) falls through to a fresh compile; an evaluation
		// error does not — a fresh compile of the same structure would
		// produce the same plan and the same error, and for opaque
		// (baseline) plans retrying would re-run exponential work just
		// to fail identically.
		probs, ok := transportProbs(ent, canonOrder, job.Instance)
		if !ok {
			break
		}
		*planHit = true
		e.mu.Lock()
		e.stats.PlanHits++
		e.mu.Unlock()
		// EvaluateOpts rather than Evaluate: the job's own options pick
		// the numeric substrate, which matters for snapshot-restored
		// plans (they carry no precision of their own) and for cached
		// plans shared across precision modes.
		res, err := ent.EvaluateOptsContext(ctx, probs, job.Opts)
		e.noteFloat(job.Opts, res, err)
		return res, err
	}
	var cp *core.CompiledPlan
	var err error
	if len(qs) > 1 {
		cp, err = core.CompileUCQContext(ctx, qs, job.Instance, job.Opts)
	} else {
		cp, err = core.CompileContext(ctx, qs[0], job.Instance, job.Opts)
	}
	e.mu.Lock()
	if err == nil {
		e.stats.PlanCompiles++
		if e.plans != nil {
			e.plans.add(structKey, cp)
		}
	}
	if registered {
		// Release waiters; on error nothing was cached, so one of them
		// becomes the next leader and retries (errors are never cached).
		close(e.planFlight[structKey])
		delete(e.planFlight, structKey)
	}
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	res, evalErr := cp.EvaluateOptsContext(ctx, job.Instance.Probs(), job.Opts)
	e.noteFloat(job.Opts, res, evalErr)
	return res, evalErr
}

// noteFloat updates the dual-precision counters after an evaluation:
// jobs that requested the float fast path (precision fast or auto)
// count as FloatFast when the float kernel answered and as
// FloatFallbacks when exact arithmetic did. Exact-precision jobs touch
// neither counter. Approx jobs feed the sampler counters instead: a
// sampled answer counts ApproxRuns/ApproxSamples, an approx job that
// landed on a tractable cell (answered exactly) counts nothing.
func (e *Engine) noteFloat(opts *core.Options, res *core.Result, err error) {
	if err != nil || res == nil || opts.EffectivePrecision() == core.PrecisionExact {
		return
	}
	if opts.EffectivePrecision() == core.PrecisionApprox {
		if res.Precision == core.PrecisionApprox {
			e.mu.Lock()
			e.stats.ApproxRuns++
			e.stats.ApproxSamples += uint64(res.ApproxSamples)
			e.mu.Unlock()
		}
		return
	}
	e.mu.Lock()
	if res.Precision == core.PrecisionFast {
		e.stats.FloatFast++
	} else {
		e.stats.FloatFallbacks++
	}
	e.mu.Unlock()
}

// transportProbs maps the probability vector of h onto the edge
// numbering of the cached plan: rank k of h's canonical edge order cur
// corresponds to rank k of the compile-time instance's canonical order
// (carried by the plan itself, surviving serialization), because equal
// StructKeys mean equal canonical edge sequences.
func transportProbs(cp *core.CompiledPlan, cur []int, h *graph.ProbGraph) ([]*big.Rat, bool) {
	order := cp.CanonOrder()
	if len(cur) != len(order) || cp.NumEdges() != len(order) {
		return nil, false
	}
	probs := make([]*big.Rat, len(cur))
	for k, ei := range cur {
		probs[order[k]] = h.Prob(ei)
	}
	return probs, true
}

// do answers the keyed job from the cache, an in-flight identical call,
// or a fresh execution on the worker pool, in that order. The second
// return reports whether the call ran to completion (as opposed to
// being abandoned because ctx fired first).
func (e *Engine) do(ctx context.Context, key string, run func(context.Context) (*core.Result, error)) (JobResult, bool) {
	for {
		e.mu.Lock()
		if e.cache != nil {
			if res, ok := e.cache.get(key); ok {
				e.stats.CacheHits++
				e.mu.Unlock()
				return JobResult{Result: cloneResult(res), CacheHit: true}, true
			}
		}
		// Coalesce only onto a call somebody is still waiting for. An
		// abandoned call's context is already cancelled — joining it
		// would hand this caller a cancellation it never asked for — so
		// a fresh leader replaces it in the table (the old execution,
		// if still running, aborts at its next checkpoint and its
		// cleanup recognizes it was replaced).
		if c, ok := e.inflight[key]; ok && !c.abandoned {
			e.stats.Coalesced++
			c.waiters++
			e.mu.Unlock()
			r, completed, retry := e.wait(ctx, c, true)
			if retry {
				continue // the leader withdrew before enqueueing; start over
			}
			return r, completed
		}
		// This call is the leader: it owns a fresh execution, run under
		// a context derived from the engine's base context (so
		// engine-level shutdown aborts it) and reference-counted over
		// the waiters (so it is cancelled once nobody wants the answer
		// anymore).
		callCtx, cancel := context.WithCancel(e.baseCtx)
		c := &call{done: make(chan struct{}), waiters: 1, cancel: cancel}
		e.inflight[key] = c
		e.mu.Unlock()

		task := func() {
			c.res, c.err = run(callCtx)
			cancel() // release the context's resources; idempotent
			e.mu.Lock()
			e.stats.Solved++
			if c.err != nil {
				e.stats.Errors++
			} else if e.cache != nil && !c.abandoned {
				// A short run can complete between its abandonment and
				// its next checkpoint; honor the documented invariant
				// that abandoned results never reach the cache.
				e.cache.add(key, c.res)
			}
			// Only remove the entry if it is still ours — an abandoned
			// call may have been replaced by a fresh leader under the
			// same key while this execution was winding down.
			if cur, ok := e.inflight[key]; ok && cur == c {
				delete(e.inflight, key)
			}
			e.mu.Unlock()
			close(c.done)
		}
		// Hand the task to a worker, but do not let a caller whose
		// context has fired sit in the queue: withdrawing here keeps
		// the promptness contract even when every worker is busy.
		select {
		case e.jobs <- task:
		case <-ctx.Done():
			e.mu.Lock()
			c.abandoned = true
			if cur, ok := e.inflight[key]; ok && cur == c {
				delete(e.inflight, key)
			}
			c.err = phomerr.FromContext(ctx)
			e.stats.Canceled++
			e.mu.Unlock()
			cancel()
			close(c.done) // waiters see abandoned and retry with a fresh leader
			return JobResult{Err: c.err}, false
		}
		r, completed, _ := e.wait(ctx, c, false)
		return r, completed
	}
}

// wait blocks until the call completes or ctx fires, whichever comes
// first. An abandoning waiter decrements the call's reference count
// and cancels the execution when it was the last one interested. The
// third return asks the caller to retry from scratch: the call's
// leader withdrew before the task ever reached a worker, so no result
// is coming, but this waiter's own context is still live.
func (e *Engine) wait(ctx context.Context, c *call, shared bool) (JobResult, bool, bool) {
	select {
	case <-c.done:
		if c.abandoned && shared {
			return JobResult{}, false, true
		}
		if c.err != nil {
			return JobResult{Err: c.err, Shared: shared}, true, false
		}
		return JobResult{Result: cloneResult(c.res), Shared: shared}, true, false
	case <-ctx.Done():
		e.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			c.abandoned = true
		}
		last := c.waiters == 0
		e.stats.Canceled++
		e.mu.Unlock()
		if last {
			c.cancel()
		}
		return JobResult{Err: phomerr.FromContext(ctx), Shared: shared}, false, false
	}
}

// cloneResult deep-copies a result so cache entries and singleflight
// peers never share a mutable *big.Rat (or bounds struct) with a
// caller.
func cloneResult(r *core.Result) *core.Result {
	c := &core.Result{Prob: new(big.Rat).Set(r.Prob), Method: r.Method, Precision: r.Precision, ApproxSamples: r.ApproxSamples}
	if r.Bounds != nil {
		b := *r.Bounds
		c.Bounds = &b
	}
	return c
}

// lruCache is a plain bounded LRU over canonical job keys, generic in
// the cached value (solver results, compiled plans). It is not itself
// synchronized; the Engine's mutex guards it.
type lruCache[V any] struct {
	capacity int
	order    *list.List // front = most recently used; values are *lruEntry[V]
	entries  map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRUCache[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

func (c *lruCache[V]) len() int { return c.order.Len() }

// values returns the cached values oldest-first, without touching
// recency.
func (c *lruCache[V]) values() []V {
	out := make([]V, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		out = append(out, el.Value.(*lruEntry[V]).val)
	}
	return out
}

func (c *lruCache[V]) get(key string) (V, bool) {
	el, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// remove drops the entry under key, if any. It is how the instance
// registry performs targeted invalidation: a delta evicts exactly the
// touched instance's memoized results (and its superseded structural
// plans), never a neighbor's.
func (c *lruCache[V]) remove(key string) {
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

func (c *lruCache[V]) add(key string, val V) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry[V]{key: key, val: val})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry[V]).key)
	}
}
