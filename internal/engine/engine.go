// Package engine provides a concurrent batch-evaluation engine on top of
// the core solver. An Engine owns a bounded pool of worker goroutines
// that execute solver jobs, deduplicates identical in-flight jobs
// (singleflight: concurrent submissions of the same job share one
// execution), and memoizes completed results in a bounded LRU cache
// keyed by the canonical job hash of package graphio.
//
// All results are exact *big.Rat probabilities, byte-identical to what a
// sequential call to core.Solve / core.SolveUCQ would return: the engine
// changes scheduling, never arithmetic. Cached results are deep-copied on
// the way out, so callers may mutate what they receive.
package engine

import (
	"container/list"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"

	"phom/internal/core"
	"phom/internal/graph"
	"phom/internal/graphio"
)

// DefaultCacheSize is the default capacity of the result cache.
const DefaultCacheSize = 4096

// ErrClosed is returned by Solve and SolveBatch after Close.
var ErrClosed = errors.New("engine: closed")

// Options configures an Engine.
type Options struct {
	// Workers is the number of worker goroutines. 0 means GOMAXPROCS.
	Workers int
	// CacheSize bounds the number of memoized results. 0 means
	// DefaultCacheSize; negative disables memoization entirely
	// (in-flight deduplication still applies).
	CacheSize int
}

// Job is one evaluation: a query (or a union of conjunctive queries), a
// probabilistic instance, and solver options.
type Job struct {
	// Query is the query graph of a single conjunctive query. For a
	// union of conjunctive queries, set Queries instead and leave Query
	// nil; a one-element Queries is equivalent to Query.
	Query *graph.Graph
	// Queries are the disjuncts of a union of conjunctive queries.
	Queries []*graph.Graph
	// Instance is the probabilistic instance graph (H, π).
	Instance *graph.ProbGraph
	// Opts configures the solver; nil means defaults. Options take part
	// in the cache key (with defaults normalized, so nil and the
	// explicit default options share cache entries).
	Opts *core.Options
}

func (j Job) disjuncts() []*graph.Graph {
	if len(j.Queries) > 0 {
		return j.Queries
	}
	if j.Query != nil {
		return []*graph.Graph{j.Query}
	}
	return nil
}

// JobResult is the outcome of one Job in a batch.
type JobResult struct {
	Result *core.Result
	Err    error
	// CacheHit reports that the result was served from the memo cache
	// without running the solver.
	CacheHit bool
	// Shared reports that the job was coalesced onto an identical job
	// already in flight (singleflight) rather than executed itself.
	Shared bool
}

// Stats is a snapshot of engine counters. The JSON tags match the
// snake_case wire style of cmd/phomserve, which exposes these counters.
type Stats struct {
	// Submitted counts jobs accepted by Solve, SolveUCQ, Do and
	// SolveBatch (including ones that later failed).
	Submitted uint64 `json:"submitted"`
	// Solved counts jobs actually executed by a worker.
	Solved uint64 `json:"solved"`
	// CacheHits counts jobs answered from the memo cache.
	CacheHits uint64 `json:"cache_hits"`
	// Coalesced counts jobs deduplicated onto an identical in-flight job.
	Coalesced uint64 `json:"coalesced"`
	// Rejected counts jobs refused before execution (no query, no
	// instance, …).
	Rejected uint64 `json:"rejected"`
	// Errors counts executed jobs whose solver returned an error.
	Errors uint64 `json:"errors"`
	// CacheLen is the current number of memoized results.
	CacheLen int `json:"cache_len"`
}

// call is one singleflight execution shared by all identical jobs that
// arrive while it is in flight.
type call struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// Engine is a concurrent batch evaluator. Create with New; an Engine
// must not be copied. All methods are safe for concurrent use.
type Engine struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup // worker goroutines

	mu       sync.Mutex
	closed   bool
	active   sync.WaitGroup // Solve/SolveBatch calls in flight, for Close
	inflight map[string]*call
	cache    *lruCache // nil when memoization is disabled
	stats    Stats
}

// New starts an Engine with the given options.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var cache *lruCache
	switch {
	case opts.CacheSize == 0:
		cache = newLRUCache(DefaultCacheSize)
	case opts.CacheSize > 0:
		cache = newLRUCache(opts.CacheSize)
	}
	e := &Engine{
		workers:  workers,
		jobs:     make(chan func()),
		inflight: make(map[string]*call),
		cache:    cache,
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer e.wg.Done()
			for task := range e.jobs {
				task()
			}
		}()
	}
	return e
}

// Workers returns the size of the worker pool.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	if e.cache != nil {
		s.CacheLen = e.cache.len()
	}
	return s
}

// Solve computes Pr(G ⇝ H) through the engine, equivalent to core.Solve
// but scheduled on the worker pool, deduplicated and memoized.
func (e *Engine) Solve(q *graph.Graph, h *graph.ProbGraph, opts *core.Options) (*core.Result, error) {
	r := e.Do(Job{Query: q, Instance: h, Opts: opts})
	return r.Result, r.Err
}

// SolveUCQ computes Pr(G₁ ∨ … ∨ G_k ⇝ H) through the engine, equivalent
// to core.SolveUCQ.
func (e *Engine) SolveUCQ(qs []*graph.Graph, h *graph.ProbGraph, opts *core.Options) (*core.Result, error) {
	r := e.Do(Job{Queries: qs, Instance: h, Opts: opts})
	return r.Result, r.Err
}

// Do runs a single job to completion, blocking until its result is
// available (possibly computed by a concurrent identical job).
func (e *Engine) Do(job Job) JobResult {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return JobResult{Err: ErrClosed}
	}
	e.active.Add(1)
	e.stats.Submitted++
	e.mu.Unlock()
	defer e.active.Done()

	key, run, err := e.prepare(job)
	if err != nil {
		e.mu.Lock()
		e.stats.Rejected++
		e.mu.Unlock()
		return JobResult{Err: err}
	}
	return e.do(key, run)
}

// SolveBatch evaluates all jobs concurrently on the worker pool and
// returns their results in job order. Identical jobs (within the batch
// or with other concurrent callers) are solved once and shared; results
// of previously solved jobs come from the cache. The call blocks until
// every job is done; per-job failures are reported in the corresponding
// JobResult, not by failing the batch.
func (e *Engine) SolveBatch(jobs []Job) []JobResult {
	out := make([]JobResult, len(jobs))
	// Bound the submission fan-out: beyond a few jobs per worker,
	// additional goroutines could only block on the pool anyway, and an
	// unbounded spawn would cost gigabytes of stacks on huge batches.
	// Coalesced waiters holding a slot cannot deadlock the batch: a
	// waiter only ever waits on a call whose leader has already
	// enqueued, and the workers drain independently of these slots.
	sem := make(chan struct{}, 4*e.workers)
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i, job := range jobs {
		sem <- struct{}{}
		go func(i int, job Job) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = e.Do(job)
		}(i, job)
	}
	wg.Wait()
	return out
}

// Close shuts the engine down: it waits for in-flight jobs to finish,
// stops the workers, and makes further submissions fail with ErrClosed.
// Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.active.Wait() // no submission can enqueue after closed is set
	close(e.jobs)
	e.wg.Wait()
	return nil
}

// prepare validates the job and returns its canonical key and the solver
// thunk that executes it.
func (e *Engine) prepare(job Job) (string, func() (*core.Result, error), error) {
	qs := job.disjuncts()
	if len(qs) == 0 {
		return "", nil, fmt.Errorf("engine: job has no query graph")
	}
	for _, q := range qs {
		if q == nil {
			return "", nil, fmt.Errorf("engine: nil query graph in job")
		}
	}
	if job.Instance == nil {
		return "", nil, fmt.Errorf("engine: job has no instance graph")
	}

	canon := make([]string, len(qs))
	for i, q := range qs {
		canon[i] = graphio.CanonicalGraph(q)
	}
	// Disjunct order is irrelevant to the probability of a union.
	sort.Strings(canon)
	key := graphio.JobKey(canon, graphio.CanonicalProbGraph(job.Instance), job.Opts.Fingerprint())

	run := func() (*core.Result, error) {
		if len(qs) > 1 {
			return core.SolveUCQ(qs, job.Instance, job.Opts)
		}
		return core.Solve(qs[0], job.Instance, job.Opts)
	}
	return key, run, nil
}

// do answers the keyed job from the cache, an in-flight identical call,
// or a fresh execution on the worker pool, in that order.
func (e *Engine) do(key string, run func() (*core.Result, error)) JobResult {
	e.mu.Lock()
	if e.cache != nil {
		if res, ok := e.cache.get(key); ok {
			e.stats.CacheHits++
			e.mu.Unlock()
			return JobResult{Result: cloneResult(res), CacheHit: true}
		}
	}
	if c, ok := e.inflight[key]; ok {
		e.stats.Coalesced++
		e.mu.Unlock()
		<-c.done
		if c.err != nil {
			return JobResult{Err: c.err, Shared: true}
		}
		return JobResult{Result: cloneResult(c.res), Shared: true}
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()

	e.jobs <- func() {
		c.res, c.err = run()
		e.mu.Lock()
		e.stats.Solved++
		if c.err != nil {
			e.stats.Errors++
		} else if e.cache != nil {
			e.cache.add(key, c.res)
		}
		delete(e.inflight, key)
		e.mu.Unlock()
		close(c.done)
	}
	<-c.done
	if c.err != nil {
		return JobResult{Err: c.err}
	}
	return JobResult{Result: cloneResult(c.res)}
}

// cloneResult deep-copies a result so cache entries and singleflight
// peers never share a mutable *big.Rat with a caller.
func cloneResult(r *core.Result) *core.Result {
	return &core.Result{Prob: new(big.Rat).Set(r.Prob), Method: r.Method}
}

// lruCache is a plain bounded LRU over canonical job keys. It is not
// itself synchronized; the Engine's mutex guards it.
type lruCache struct {
	capacity int
	order    *list.List // front = most recently used; values are *lruEntry
	entries  map[string]*list.Element
}

type lruEntry struct {
	key string
	res *core.Result
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

func (c *lruCache) len() int { return c.order.Len() }

func (c *lruCache) get(key string) (*core.Result, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) add(key string, res *core.Result) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}
