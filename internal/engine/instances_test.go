package engine

import (
	"context"
	"errors"
	"math/big"
	"sync"
	"testing"

	"phom/internal/core"
	"phom/internal/graph"
	"phom/internal/instance"
	"phom/internal/phomerr"
)

func instPath(probs ...*big.Rat) *graph.ProbGraph {
	h := graph.NewProbGraph(graph.UnlabeledPath(len(probs)))
	for i, p := range probs {
		if err := h.SetProb(i, p); err != nil {
			panic(err)
		}
	}
	return h
}

func TestInstanceRegistryLifecycle(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	in, err := e.CreateInstance("alpha", instPath(big.NewRat(1, 2)))
	if err != nil {
		t.Fatalf("CreateInstance: %v", err)
	}
	if in.ID() != "alpha" {
		t.Fatalf("id = %q", in.ID())
	}
	if _, err := e.CreateInstance("alpha", instPath(big.NewRat(1, 2))); !errors.Is(err, phomerr.ErrBadInput) {
		t.Fatalf("duplicate id = %v, want ErrBadInput", err)
	}
	minted, err := e.CreateInstance("", instPath(big.NewRat(1, 3)))
	if err != nil {
		t.Fatalf("CreateInstance(minted): %v", err)
	}
	if minted.ID() == "" || minted.ID() == "alpha" {
		t.Fatalf("minted id = %q", minted.ID())
	}
	if got := e.ListInstances(); len(got) != 2 || got[0] != "alpha" {
		t.Fatalf("ListInstances = %v", got)
	}
	if s := e.Stats(); s.Instances != 2 {
		t.Fatalf("Stats.Instances = %d", s.Instances)
	}
	if _, ok := e.Instance("alpha"); !ok {
		t.Fatal("Instance(alpha) not found")
	}
	if !e.DeleteInstance("alpha") || e.DeleteInstance("alpha") {
		t.Fatal("DeleteInstance idempotence broken")
	}
	if _, ok := e.Instance("alpha"); ok {
		t.Fatal("deleted instance still resolvable")
	}
	if _, _, err := e.InstanceJob("alpha", Job{Query: graph.UnlabeledPath(1)}); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("InstanceJob on deleted = %v, want ErrNoInstance", err)
	}
	if _, err := e.ApplyDelta("alpha", -1, []instance.Delta{{Op: instance.OpSetProb, From: 0, To: 1, Prob: graph.RatOne}}); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("ApplyDelta on deleted = %v, want ErrNoInstance", err)
	}
}

// TestDeltaInvalidatesOnlyTouchedInstance is the targeted-invalidation
// pin: a delta evicts exactly the touched instance's memoized results.
// A sibling instance's entries and a plain stateless job's entry keep
// serving cache hits.
func TestDeltaInvalidatesOnlyTouchedInstance(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	q := graph.UnlabeledPath(1)

	if _, err := e.CreateInstance("a", instPath(big.NewRat(1, 2), big.NewRat(1, 3))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateInstance("b", instPath(big.NewRat(1, 5), big.NewRat(1, 7))); err != nil {
		t.Fatal(err)
	}
	stateless := Job{Query: q, Instance: instPath(big.NewRat(2, 3))}

	runInst := func(id string) JobResult {
		job, _, err := e.InstanceJob(id, Job{Query: q})
		if err != nil {
			t.Fatalf("InstanceJob(%s): %v", id, err)
		}
		r := e.Do(job)
		if r.Err != nil {
			t.Fatalf("Do(%s): %v", id, r.Err)
		}
		return r
	}
	// Warm all three cache entries, then confirm they hit.
	runInst("a")
	runInst("b")
	if r := e.Do(stateless); r.Err != nil {
		t.Fatal(r.Err)
	}
	if !runInst("a").CacheHit || !runInst("b").CacheHit || !e.Do(stateless).CacheHit {
		t.Fatal("expected warm cache hits before the delta")
	}

	if _, err := e.ApplyDelta("a", -1, []instance.Delta{
		{Op: instance.OpSetProb, From: 0, To: 1, Prob: big.NewRat(3, 4)},
	}); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	ra := runInst("a")
	if ra.CacheHit {
		t.Fatal("touched instance served a stale cached result after the delta")
	}
	// The fresh result reflects the new probability: 1 − (1−3/4)(1−1/3)
	// for the single-edge query on the two-edge path = … just compare to
	// a from-scratch solve.
	snap, _ := e.Instance("a")
	want, err := core.Solve(q, snap.Snapshot().H, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Result.Prob.RatString() != want.Prob.RatString() {
		t.Fatalf("post-delta result %s != scratch %s", ra.Result.Prob.RatString(), want.Prob.RatString())
	}
	if !runInst("b").CacheHit {
		t.Fatal("sibling instance's cache entry was evicted")
	}
	if !e.Do(stateless).CacheHit {
		t.Fatal("stateless job's cache entry was evicted")
	}
	if s := e.Stats(); s.DeltasApplied != 1 {
		t.Fatalf("DeltasApplied = %d, want 1", s.DeltasApplied)
	}
}

// TestStructuralDeltaMigratesPlan pins the eager plan migration: after
// an edge delta on a tracked instance the new structure's plan is
// already in the cache (the next solve is a plan hit, not a compile),
// produced by the incremental splice.
func TestStructuralDeltaMigratesPlan(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	q := graph.UnlabeledPath(1)
	// Two disjoint paths: removing one edge touches one component only.
	g, _ := graph.DisjointUnion(graph.UnlabeledPath(2), graph.UnlabeledPath(2))
	h := graph.NewProbGraph(g)
	h.MustSetEdgeProb(0, 1, big.NewRat(1, 2))
	if _, err := e.CreateInstance("m", h); err != nil {
		t.Fatal(err)
	}
	job, ver, err := e.InstanceJob("m", Job{Query: q})
	if err != nil || ver != 1 {
		t.Fatalf("InstanceJob: %v (version %d)", err, ver)
	}
	if r := e.Do(job); r.Err != nil {
		t.Fatal(r.Err)
	}
	before := e.Stats()
	if before.PlanCompiles != 1 {
		t.Fatalf("PlanCompiles = %d, want 1", before.PlanCompiles)
	}

	res, err := e.ApplyDelta("m", 1, []instance.Delta{{Op: instance.OpRemoveEdge, From: 3, To: 4}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if !res.Structural || res.New.Version != 2 {
		t.Fatalf("ApplyRes = %+v", res)
	}
	after := e.Stats()
	if after.IncrementalRecompiles != before.IncrementalRecompiles+1 {
		t.Fatalf("IncrementalRecompiles = %d, want %d", after.IncrementalRecompiles, before.IncrementalRecompiles+1)
	}
	if after.FullRecompiles != before.FullRecompiles {
		t.Fatalf("FullRecompiles moved: %d", after.FullRecompiles)
	}

	job2, ver2, err := e.InstanceJob("m", Job{Query: q})
	if err != nil || ver2 != 2 {
		t.Fatalf("InstanceJob v2: %v (version %d)", err, ver2)
	}
	r2 := e.Do(job2)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if !r2.PlanHit {
		t.Fatal("post-delta solve compiled instead of hitting the migrated plan")
	}
	final := e.Stats()
	if final.PlanCompiles != before.PlanCompiles {
		t.Fatalf("post-delta solve ran a compile: %d", final.PlanCompiles)
	}
	snap, _ := e.Instance("m")
	want, err := core.Solve(q, snap.Snapshot().H, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Result.Prob.RatString() != want.Prob.RatString() {
		t.Fatalf("migrated plan answered %s, scratch %s", r2.Result.Prob.RatString(), want.Prob.RatString())
	}
}

// TestApplyDeltaConflictThroughEngine pins the typed conflict surface.
func TestApplyDeltaConflictThroughEngine(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	if _, err := e.CreateInstance("c", instPath(big.NewRat(1, 2))); err != nil {
		t.Fatal(err)
	}
	_, err := e.ApplyDelta("c", 99, []instance.Delta{{Op: instance.OpSetProb, From: 0, To: 1, Prob: graph.RatOne}})
	if !errors.Is(err, phomerr.ErrConflict) {
		t.Fatalf("stale CAS through engine = %v, want ErrConflict", err)
	}
	if s := e.Stats(); s.DeltasApplied != 0 {
		t.Fatalf("failed delta counted: %d", s.DeltasApplied)
	}
}

// TestApplyRacesSolves drives concurrent deltas (probability and
// structural) against solves and streams on the same instance under the
// race detector: every solve must answer some published version
// exactly, with no torn state. COW means a solve that resolved its
// snapshot before a delta finishes against the pre-delta version.
func TestApplyRacesSolves(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	g, _ := graph.DisjointUnion(graph.UnlabeledPath(2), graph.UnlabeledPath(2))
	h := graph.NewProbGraph(g)
	if _, err := e.CreateInstance("race", h); err != nil {
		t.Fatal(err)
	}
	q := graph.UnlabeledPath(1)
	ctx := context.Background()

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	// Writer: alternates probability drifts with a remove/add flip of
	// the same edge (structural both ways).
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			var batch []instance.Delta
			switch k % 4 {
			case 0, 1:
				batch = []instance.Delta{{Op: instance.OpSetProb, From: 0, To: 1, Prob: big.NewRat(int64(1+k%5), 6)}}
			case 2:
				batch = []instance.Delta{{Op: instance.OpRemoveEdge, From: 3, To: 4}}
			case 3:
				batch = []instance.Delta{{Op: instance.OpAddEdge, From: 3, To: 4, Label: graph.Unlabeled, Prob: big.NewRat(1, 2)}}
			}
			if _, err := e.ApplyDelta("race", -1, batch); err != nil {
				t.Errorf("ApplyDelta: %v", err)
				return
			}
		}
	}()
	// Readers: single solves and streams against whatever snapshot
	// InstanceJob resolves.
	for w := 0; w < 3; w++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for k := 0; k < 40; k++ {
				job, _, err := e.InstanceJob("race", Job{Query: q})
				if err != nil {
					t.Errorf("InstanceJob: %v", err)
					return
				}
				if k%2 == 0 {
					if r := e.DoContext(ctx, job); r.Err != nil {
						t.Errorf("DoContext: %v", r.Err)
						return
					}
					continue
				}
				jobs := []Job{job, job}
				for sr := range e.Stream(ctx, jobs) {
					if sr.Err != nil {
						t.Errorf("Stream: %v", sr.Err)
						return
					}
				}
			}
		}()
	}
	// Readers run a fixed number of iterations; once they are done the
	// writer has raced against every one of them and can stop.
	readerWG.Wait()
	close(stop)
	writerWG.Wait()

	// Post-race coherence: a final solve equals a from-scratch solve of
	// the final snapshot.
	job, _, err := e.InstanceJob("race", Job{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Do(job)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	snap, _ := e.Instance("race")
	want, err := core.Solve(q, snap.Snapshot().H, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.Prob.RatString() != want.Prob.RatString() {
		t.Fatalf("final solve %s != scratch %s", r.Result.Prob.RatString(), want.Prob.RatString())
	}
}
