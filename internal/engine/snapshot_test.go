package engine

import (
	"bytes"
	"math/big"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
)

// reweightedCopy returns a structurally identical instance with fresh
// random probabilities.
func reweightedCopy(t *testing.T, r *rand.Rand, h *graph.ProbGraph) *graph.ProbGraph {
	t.Helper()
	h2 := graph.NewProbGraph(h.G)
	for i := 0; i < h.G.NumEdges(); i++ {
		if err := h2.SetProb(i, big.NewRat(int64(r.Intn(17)), 16)); err != nil {
			t.Fatal(err)
		}
	}
	return h2
}

// snapshotJobs builds one job per structural cell for snapshot tests.
func snapshotJobs(r *rand.Rand) []Job {
	rs := []graph.Label{"R", "S"}
	un := []graph.Label{graph.Unlabeled}
	return []Job{
		{Query: gen.Rand1WP(r, 4, rs),
			Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 30, rs), 0.5)},
		{Query: gen.RandConnected(r, 4, 1, rs),
			Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, 30, rs), 0.5)},
		{Query: gen.RandDWT(r, 4, un),
			Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassUPT, 20, un), 0.5)},
		{Queries: []*graph.Graph{gen.Rand1WP(r, 3, rs), gen.Rand1WP(r, 4, rs)},
			Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, 25, rs), 0.5)},
	}
}

// TestSaveLoadPlansWarmStart is the warm-start acceptance test: a plan
// cache exported from one engine and imported into a fresh one serves
// reweights of the exported structures as plan hits with zero
// compilations, byte-identical to cold solving.
func TestSaveLoadPlansWarmStart(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	jobs := snapshotJobs(r)

	warmer := New(Options{Workers: 2})
	for i, j := range jobs {
		if res := warmer.Do(j); res.Err != nil {
			t.Fatalf("warming job %d: %v", i, res.Err)
		}
	}
	var snap bytes.Buffer
	saved, err := warmer.SavePlans(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if saved != len(jobs) {
		t.Fatalf("saved %d plans for %d structural jobs", saved, len(jobs))
	}
	if st := warmer.Stats(); st.PlansSaved != uint64(saved) {
		t.Fatalf("PlansSaved = %d, want %d", st.PlansSaved, saved)
	}
	if err := warmer.Close(); err != nil {
		t.Fatal(err)
	}

	fresh := New(Options{Workers: 2})
	defer fresh.Close()
	loaded, err := fresh.LoadPlans(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != saved {
		t.Fatalf("loaded %d of %d plans", loaded, saved)
	}
	for round := 0; round < 3; round++ {
		for i, j := range jobs {
			reweighted := j
			reweighted.Instance = reweightedCopy(t, r, j.Instance)
			res := fresh.Do(reweighted)
			if res.Err != nil {
				t.Fatalf("warm job %d: %v", i, res.Err)
			}
			if !res.PlanHit {
				t.Fatalf("warm job %d round %d: not a plan hit", i, round)
			}
			want := solveSequential(t, []Job{reweighted})[0]
			if res.Result.Prob.RatString() != want.Prob.RatString() {
				t.Fatalf("warm job %d: %s, cold solve %s",
					i, res.Result.Prob.RatString(), want.Prob.RatString())
			}
			if res.Result.Method != want.Method {
				t.Fatalf("warm job %d: method %v, cold %v", i, res.Result.Method, want.Method)
			}
		}
	}
	st := fresh.Stats()
	if st.PlanCompiles != 0 {
		t.Fatalf("warm-started engine compiled %d plans, want 0", st.PlanCompiles)
	}
	if st.PlansLoaded != uint64(loaded) {
		t.Fatalf("PlansLoaded = %d, want %d", st.PlansLoaded, loaded)
	}
}

// TestSavePlansSkipsOpaque: baseline (hard-cell) plans are cached but
// never serialized.
func TestSavePlansSkipsOpaque(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	e := New(Options{Workers: 1})
	defer e.Close()
	opaqueJob := Job{
		Query:    gen.Rand1WP(r, 3, []graph.Label{"R", "S"}),
		Instance: gen.RandProb(r, gen.RandGraph(r, 5, 8, []graph.Label{"R", "S"}), 0.3),
	}
	if res := e.Do(opaqueJob); res.Err != nil {
		t.Fatal(res.Err)
	}
	structural := snapshotJobs(r)[0]
	if res := e.Do(structural); res.Err != nil {
		t.Fatal(res.Err)
	}
	var snap bytes.Buffer
	saved, err := e.SavePlans(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if saved != 1 {
		t.Fatalf("saved %d plans, want 1 (opaque plan must be skipped)", saved)
	}
}

// TestLoadPlansRejectsCorruptSnapshot: corrupt snapshots error without
// panicking, and records before the corruption stay loaded.
func TestLoadPlansRejectsCorruptSnapshot(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	warmer := New(Options{Workers: 1})
	for _, j := range snapshotJobs(r)[:2] {
		if res := warmer.Do(j); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	var snap bytes.Buffer
	if _, err := warmer.SavePlans(&snap); err != nil {
		t.Fatal(err)
	}
	if err := warmer.Close(); err != nil {
		t.Fatal(err)
	}

	fresh := New(Options{Workers: 1})
	defer fresh.Close()
	if _, err := fresh.LoadPlans(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("loaded garbage")
	}
	corrupt := append([]byte(nil), snap.Bytes()...)
	corrupt[len(corrupt)-2] ^= 0xff // damage the last record's payload
	n, err := fresh.LoadPlans(bytes.NewReader(corrupt))
	if err == nil {
		t.Fatal("loaded a corrupt snapshot without error")
	}
	if n != 1 {
		t.Fatalf("loaded %d records before the corruption, want 1", n)
	}
	// Truncated container.
	n2, err := fresh.LoadPlans(bytes.NewReader(snap.Bytes()[:snap.Len()-1]))
	if err == nil {
		t.Fatal("loaded a truncated snapshot without error")
	}
	_ = n2
}

// TestLoadPlansDisabled: restoring into an engine without a plan cache
// fails loudly instead of silently dropping the snapshot.
func TestLoadPlansDisabled(t *testing.T) {
	e := New(Options{Workers: 1, PlanCacheSize: -1})
	defer e.Close()
	if _, err := e.LoadPlans(strings.NewReader("")); err == nil {
		t.Fatal("LoadPlans succeeded with plan caching disabled")
	}
}

// TestPlanSnapshotPath: Options.PlanSnapshotPath persists the plan
// cache across engine lifetimes — the second engine serves reweights
// with zero compilations.
func TestPlanSnapshotPath(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	path := filepath.Join(t.TempDir(), "plans.bin")
	jobs := snapshotJobs(r)

	first := New(Options{Workers: 1, PlanSnapshotPath: path})
	for _, j := range jobs {
		if res := first.Do(j); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot not written: %v", err)
	}

	second := New(Options{Workers: 1, PlanSnapshotPath: path})
	defer second.Close()
	if st := second.Stats(); st.PlansLoaded != uint64(len(jobs)) || st.SnapshotErrors != 0 {
		t.Fatalf("boot restore: PlansLoaded=%d SnapshotErrors=%d, want %d/0",
			st.PlansLoaded, st.SnapshotErrors, len(jobs))
	}
	for _, j := range jobs {
		reweighted := j
		reweighted.Instance = reweightedCopy(t, r, j.Instance)
		res := second.Do(reweighted)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !res.PlanHit {
			t.Fatal("restart did not warm-start the plan cache")
		}
	}
	if st := second.Stats(); st.PlanCompiles != 0 {
		t.Fatalf("restarted engine compiled %d plans", st.PlanCompiles)
	}
}

// TestPlanSnapshotPathMissingFile: a missing boot snapshot is a cold
// start, not an error.
func TestPlanSnapshotPathMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never-written.bin")
	e := New(Options{Workers: 1, PlanSnapshotPath: path})
	if st := e.Stats(); st.SnapshotErrors != 0 || st.PlansLoaded != 0 {
		t.Fatalf("missing snapshot counted as error: %+v", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanSnapshotPathCorruptFile: a corrupt boot snapshot is counted
// and skipped; the engine still starts and serves.
func TestPlanSnapshotPathCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.bin")
	if err := os.WriteFile(path, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 1, PlanSnapshotPath: path})
	defer e.Close()
	if st := e.Stats(); st.SnapshotErrors != 1 {
		t.Fatalf("SnapshotErrors = %d, want 1", st.SnapshotErrors)
	}
	r := rand.New(rand.NewSource(59))
	if res := e.Do(snapshotJobs(r)[0]); res.Err != nil {
		t.Fatalf("engine with corrupt snapshot cannot serve: %v", res.Err)
	}
}

// TestCloseIdempotent is the regression test for repeated Close: the
// second and later calls return nil, do not block, and do not rewrite
// the snapshot.
func TestCloseIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	path := filepath.Join(t.TempDir(), "plans.bin")
	e := New(Options{Workers: 2, PlanSnapshotPath: path})
	if res := e.Do(snapshotJobs(r)[0]); res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	savedOnce := e.Stats().PlansSaved
	fi1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Close(); err != nil {
			t.Fatalf("Close call %d: %v", i+2, err)
		}
	}
	if got := e.Stats().PlansSaved; got != savedOnce {
		t.Fatalf("repeated Close re-saved the snapshot: %d → %d", savedOnce, got)
	}
	fi2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.ModTime() != fi1.ModTime() || fi2.Size() != fi1.Size() {
		t.Fatal("repeated Close rewrote the snapshot file")
	}
	// Concurrent Close calls must also be safe.
	e2 := New(Options{Workers: 2})
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- e2.Close() }()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent Close: %v", err)
		}
	}
	// Snapshot APIs after Close fail with ErrClosed.
	if _, err := e.SavePlans(&bytes.Buffer{}); err != ErrClosed {
		t.Fatalf("SavePlans after Close = %v, want ErrClosed", err)
	}
	if _, err := e.LoadPlans(strings.NewReader("")); err != ErrClosed {
		t.Fatalf("LoadPlans after Close = %v, want ErrClosed", err)
	}
}
