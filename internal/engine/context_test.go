package engine

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"phom/internal/core"
	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/phomerr"
)

// slowJob returns a #P-hard job whose brute-force baseline enumerates
// 2^edges worlds — far more work than any test budget — so only
// cancellation can end it quickly. All edges sit at probability 1/2.
func slowJob(t *testing.T, n, extra int) Job {
	t.Helper()
	r := rand.New(rand.NewSource(5))
	g := gen.RandConnected(r, n, extra, nil)
	h := graph.NewProbGraph(g)
	for i := 0; i < g.NumEdges(); i++ {
		if err := h.SetProb(i, graph.RatHalf); err != nil {
			t.Fatal(err)
		}
	}
	if g.InClass(graph.ClassUPT) || g.InClass(graph.ClassU2WP) || g.InClass(graph.ClassUDWT) {
		t.Fatal("slow job accidentally tractable")
	}
	// Allow however many coins the instance has.
	return Job{Query: graph.UnlabeledPath(3), Instance: h,
		Opts: &core.Options{BruteForceLimit: g.NumEdges()}}
}

// fastJob returns a trivially tractable job (milliseconds at worst).
func fastJob(seed int64) Job {
	r := rand.New(rand.NewSource(seed))
	q := gen.Rand1WP(r, 3, nil)
	h := gen.RandProb(r, gen.Rand2WP(r, 8, nil), 0.5)
	return Job{Query: q, Instance: h}
}

// closeWithin fails the test if Close does not return within d — a
// hanging Close means a worker is stuck on work cancellation should
// have stopped (the goroutine-leak guard of these tests).
func closeWithin(t *testing.T, e *Engine, d time.Duration) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- e.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(d):
		t.Fatalf("Close did not return within %v: cancelled work is still running", d)
	}
}

// TestDoContextCancelMidSolve: cancelling the only caller of a running
// exponential job aborts the execution promptly (Close returning is
// the proof the worker stopped) and reports the typed error.
func TestDoContextCancelMidSolve(t *testing.T) {
	e := New(Options{Workers: 2})
	job := slowJob(t, 14, 16) // ≈ 2^29 worlds: days of work uncancelled
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	r := e.DoContext(ctx, job)
	if !errors.Is(r.Err, phomerr.ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", r.Err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if st := e.Stats(); st.Canceled == 0 {
		t.Fatalf("stats.Canceled = 0 after an abandoned call: %+v", st)
	}
	closeWithin(t, e, 30*time.Second)
}

// TestJobTimeout: a per-job Timeout turns into ErrDeadline, and the
// timeout takes no part in the cache key — the same job without a
// timeout later hits the same cache entry.
func TestJobTimeout(t *testing.T) {
	e := New(Options{Workers: 2})
	slow := slowJob(t, 14, 16)
	slow.Timeout = 40 * time.Millisecond
	r := e.DoContext(context.Background(), slow)
	if !errors.Is(r.Err, phomerr.ErrDeadline) {
		t.Fatalf("Err = %v, want ErrDeadline", r.Err)
	}

	fast := fastJob(1)
	fast.Timeout = time.Hour
	if r := e.DoContext(context.Background(), fast); r.Err != nil {
		t.Fatalf("fast job failed: %v", r.Err)
	}
	same := fastJob(1) // identical structure and probabilities, no timeout
	r2 := e.DoContext(context.Background(), same)
	if r2.Err != nil || !r2.CacheHit {
		t.Fatalf("timeout leaked into the cache key: err=%v cacheHit=%v", r2.Err, r2.CacheHit)
	}
	closeWithin(t, e, 30*time.Second)
}

// TestCoalescedCancelIndependence: one impatient caller abandoning a
// shared in-flight job must not cancel it for the caller still
// waiting.
func TestCoalescedCancelIndependence(t *testing.T) {
	e := New(Options{Workers: 1})
	job := fastJobSlowEnough(t)

	ctx1, cancel1 := context.WithCancel(context.Background())
	var r1, r2 JobResult
	var wg sync.WaitGroup
	wg.Add(2)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		r1 = e.DoContext(ctx1, job)
	}()
	<-started
	go func() {
		defer wg.Done()
		r2 = e.DoContext(context.Background(), job)
	}()
	// Wait until the second caller has actually coalesced onto the
	// first's call, then cancel the first.
	for {
		if st := e.Stats(); st.Coalesced >= 1 {
			break
		}
		runtime.Gosched()
	}
	cancel1()
	wg.Wait()
	if !errors.Is(r1.Err, phomerr.ErrCanceled) && r1.Err != nil {
		t.Fatalf("caller 1 err = %v", r1.Err)
	}
	if r2.Err != nil {
		t.Fatalf("caller 2 must still get the answer, got err %v", r2.Err)
	}
	if r2.Result == nil || r2.Result.Prob == nil {
		t.Fatal("caller 2 got an empty result")
	}
	closeWithin(t, e, 30*time.Second)
}

// fastJobSlowEnough returns a job slow enough (hundreds of ms) for
// deterministic coalescing windows but fast enough to complete in a
// test: a brute-force job over ~2^17 worlds.
func fastJobSlowEnough(t *testing.T) Job {
	t.Helper()
	return slowJob(t, 10, 7) // ≈ 2^16 worlds
}

// TestBaseContextCancelAbortsJobs: cancelling the engine's base
// context aborts a job whose own caller never cancels — the server
// shutdown path.
func TestBaseContextCancelAbortsJobs(t *testing.T) {
	base, cancelBase := context.WithCancel(context.Background())
	e := New(Options{Workers: 2, BaseContext: base})
	job := slowJob(t, 14, 16)
	done := make(chan JobResult, 1)
	go func() { done <- e.Do(job) }() // v1 call: caller has no context at all
	time.Sleep(50 * time.Millisecond)
	cancelBase()
	select {
	case r := <-done:
		if !errors.Is(r.Err, phomerr.ErrCanceled) {
			t.Fatalf("Err = %v, want ErrCanceled via base context", r.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("base-context cancellation did not abort the job")
	}
	closeWithin(t, e, 30*time.Second)
}

// TestSolveBatchContextCancelMidBatch: cancelling a batch returns one
// result per job promptly; the slow jobs report the typed error.
func TestSolveBatchContextCancelMidBatch(t *testing.T) {
	e := New(Options{Workers: 2})
	jobs := []Job{fastJob(1), slowJob(t, 14, 16), fastJob(2), slowJob(t, 15, 17)}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	out := e.SolveBatchContext(ctx, jobs)
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("batch cancellation took %v", elapsed)
	}
	if len(out) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(out), len(jobs))
	}
	canceled := 0
	for i, r := range out {
		if r.Err != nil {
			if !errors.Is(r.Err, phomerr.ErrCanceled) {
				t.Fatalf("job %d err = %v, want ErrCanceled", i, r.Err)
			}
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no job reported cancellation")
	}
	closeWithin(t, e, 30*time.Second)
}

// TestStreamCompletionOrder: results arrive as they complete — the
// batch's one exponential job (index 0) is delivered last, after every
// fast job — and each job is delivered exactly once with its index.
func TestStreamCompletionOrder(t *testing.T) {
	e := New(Options{Workers: 2})
	defer func() { closeWithin(t, e, 60*time.Second) }()
	jobs := []Job{fastJobSlowEnough(t), fastJob(1), fastJob(2), fastJob(3)}
	var order []int
	seen := map[int]bool{}
	for sr := range e.Stream(context.Background(), jobs) {
		if sr.Err != nil {
			t.Fatalf("job %d: %v", sr.Index, sr.Err)
		}
		if seen[sr.Index] {
			t.Fatalf("job %d delivered twice", sr.Index)
		}
		seen[sr.Index] = true
		order = append(order, sr.Index)
	}
	if len(order) != len(jobs) {
		t.Fatalf("delivered %d of %d results", len(order), len(jobs))
	}
	if order[len(order)-1] != 0 {
		t.Fatalf("slow job was not delivered last: order %v", order)
	}
}

// TestStreamCancel: cancelling the stream context still delivers
// exactly one result per job (the aborted ones carry the typed error),
// closes the channel, and leaks no delivering goroutine (Close
// returning is the guard).
func TestStreamCancel(t *testing.T) {
	e := New(Options{Workers: 2})
	jobs := []Job{slowJob(t, 14, 16), slowJob(t, 15, 17), fastJob(1)}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	n, canceled := 0, 0
	for sr := range e.Stream(ctx, jobs) {
		n++
		if errors.Is(sr.Err, phomerr.ErrCanceled) {
			canceled++
		}
	}
	if n != len(jobs) {
		t.Fatalf("delivered %d results for %d jobs, want exactly one each", n, len(jobs))
	}
	if canceled == 0 {
		t.Fatal("no streamed job reported cancellation")
	}
	closeWithin(t, e, 30*time.Second)
}

// TestDoContextCancelWhileQueued: a caller whose context fires while
// its job is still waiting for a worker slot returns promptly — it
// must not sit in the queue behind long-running jobs.
func TestDoContextCancelWhileQueued(t *testing.T) {
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	e := New(Options{Workers: 1, BaseContext: base})
	// Occupy the only worker with an exponential job.
	hog := make(chan JobResult, 1)
	go func() { hog <- e.Do(slowJob(t, 14, 16)) }()
	for {
		if st := e.Stats(); st.Submitted >= 1 && st.CacheHits == 0 {
			break
		}
		runtime.Gosched()
	}
	time.Sleep(50 * time.Millisecond) // let the worker actually pick it up

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	r := e.DoContext(ctx, fastJob(99))
	if !errors.Is(r.Err, phomerr.ErrCanceled) {
		t.Fatalf("queued job err = %v, want ErrCanceled", r.Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("queued cancellation took %v", elapsed)
	}
	// Release the hog via the base context and drain.
	cancelBase()
	<-hog
	closeWithin(t, e, 30*time.Second)
}

// TestFreshCallerDoesNotInheritAbandonedCancellation: after the sole
// waiter of an in-flight execution abandons it, a new caller for the
// identical job must get a real answer, not the stale cancellation —
// even though the abandoned execution may still be winding down.
func TestFreshCallerDoesNotInheritAbandonedCancellation(t *testing.T) {
	e := New(Options{Workers: 2})
	job := fastJobSlowEnough(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if r := e.DoContext(ctx, job); !errors.Is(r.Err, phomerr.ErrCanceled) {
		t.Fatalf("first caller err = %v, want ErrCanceled", r.Err)
	}
	// Immediately retry with a live context: the abandoned call may
	// still occupy the in-flight table for up to a checkpoint interval.
	r := e.DoContext(context.Background(), job)
	if r.Err != nil {
		t.Fatalf("fresh caller inherited stale cancellation: %v", r.Err)
	}
	if r.Result == nil || r.Result.Prob == nil {
		t.Fatal("fresh caller got an empty result")
	}
	closeWithin(t, e, 30*time.Second)
}

// TestCloseRacingDoContext: concurrent Close and DoContext never
// panic, deadlock, or invent results — every call either completes or
// fails with a typed closed/cancellation error.
func TestCloseRacingDoContext(t *testing.T) {
	e := New(Options{Workers: 2})
	var wg sync.WaitGroup
	const callers = 16
	results := make([]JobResult, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.DoContext(context.Background(), fastJob(int64(i%3)))
		}(i)
	}
	runtime.Gosched()
	closeWithin(t, e, 60*time.Second)
	wg.Wait()
	for i, r := range results {
		if r.Err != nil && !errors.Is(r.Err, ErrClosed) {
			t.Fatalf("caller %d: unexpected err %v", i, r.Err)
		}
		if r.Err == nil && (r.Result == nil || r.Result.Prob == nil) {
			t.Fatalf("caller %d: empty success", i)
		}
		if errors.Is(r.Err, ErrClosed) && !errors.Is(r.Err, phomerr.ErrUnavailable) {
			t.Fatalf("ErrClosed must carry the unavailable code")
		}
	}
	// Idempotent close after the race.
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
