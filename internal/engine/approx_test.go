package engine

import (
	"math/rand"
	"testing"

	"phom/internal/core"
	"phom/internal/gen"
	"phom/internal/graph"
)

// hardApproxJob returns a #P-hard job (cyclic unlabeled instance, every
// edge at probability 1/2) small enough for the exact fallback to serve
// as an oracle, under the given options.
func hardApproxJob(t *testing.T, opts *core.Options) Job {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	g := gen.RandConnected(r, 8, 6, nil)
	h := graph.NewProbGraph(g)
	for i := 0; i < g.NumEdges(); i++ {
		if err := h.SetProb(i, graph.RatHalf); err != nil {
			t.Fatal(err)
		}
	}
	if g.InClass(graph.ClassUPT) || g.InClass(graph.ClassU2WP) || g.InClass(graph.ClassUDWT) {
		t.Fatal("hard instance accidentally fell in a tractable class")
	}
	return Job{Query: graph.UnlabeledPath(3), Instance: h, Opts: opts}
}

func approxEngineOpts(seed uint64) *core.Options {
	return &core.Options{Precision: core.PrecisionApprox, Epsilon: 0.4, Delta: 0.3, Seed: seed}
}

// TestEngineApproxCounters pins the sampler accounting: a hard approx
// job counts one ApproxRuns and its drawn samples; exact jobs and
// tractable approx jobs (which evaluate exactly) touch neither the
// approx nor the float counters.
func TestEngineApproxCounters(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	// Exact hard job: no approx accounting.
	if r := e.Do(hardApproxJob(t, nil)); r.Err != nil {
		t.Fatal(r.Err)
	}
	if st := e.Stats(); st.ApproxRuns != 0 || st.ApproxSamples != 0 {
		t.Fatalf("exact job touched approx counters: %+v", st)
	}

	// Hard approx job: one run, a positive sample total.
	r := e.Do(hardApproxJob(t, approxEngineOpts(1)))
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Result.Precision != core.PrecisionApprox || r.Result.ApproxSamples <= 0 {
		t.Fatalf("hard approx job served %+v", r.Result)
	}
	st := e.Stats()
	if st.ApproxRuns != 1 || st.ApproxSamples != uint64(r.Result.ApproxSamples) {
		t.Fatalf("approx counters after one run: %+v", st)
	}
	if st.FloatFast != 0 || st.FloatFallbacks != 0 {
		t.Fatalf("approx job touched float counters: %+v", st)
	}

	// Tractable approx job: evaluates exactly, counts nothing.
	q := graph.Path1WP("R")
	hg := graph.New(3)
	hg.MustAddEdge(0, 1, "R")
	hg.MustAddEdge(1, 2, "R")
	h := graph.NewProbGraph(hg)
	h.MustSetEdgeProb(0, 1, graph.RatHalf)
	h.MustSetEdgeProb(1, 2, graph.RatHalf)
	tr := e.Do(Job{Query: q, Instance: h, Opts: approxEngineOpts(1)})
	if tr.Err != nil {
		t.Fatal(tr.Err)
	}
	if tr.Result.Precision != core.PrecisionExact {
		t.Fatalf("tractable approx job served precision %v", tr.Result.Precision)
	}
	if st2 := e.Stats(); st2.ApproxRuns != 1 || st2.ApproxSamples != st.ApproxSamples {
		t.Fatalf("tractable approx job moved the approx counters: %+v", st2)
	}
}

// TestEngineApproxResultCaching pins cache hygiene for the sampler:
// identical (ε,δ,seed) jobs share a cache entry (the estimate is
// deterministic, so serving it again is sound), a different seed is a
// different result and must miss, and the cached copy keeps its
// statistical bounds without aliasing.
func TestEngineApproxResultCaching(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	first := e.Do(hardApproxJob(t, approxEngineOpts(42)))
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	again := e.Do(hardApproxJob(t, approxEngineOpts(42)))
	if again.Err != nil {
		t.Fatal(again.Err)
	}
	if !again.CacheHit {
		t.Fatal("identical approx job missed the result cache")
	}
	if again.Result.Prob.Cmp(first.Result.Prob) != 0 ||
		again.Result.Bounds == nil || *again.Result.Bounds != *first.Result.Bounds ||
		again.Result.ApproxSamples != first.Result.ApproxSamples {
		t.Fatalf("cached approx result diverged: %+v vs %+v", again.Result, first.Result)
	}
	// The cached copy must not alias the caller's.
	again.Result.Bounds.Lo = -1
	third := e.Do(hardApproxJob(t, approxEngineOpts(42)))
	if third.Result.Bounds.Lo == -1 {
		t.Fatal("cache entry shares its Bounds struct with callers")
	}

	// A different seed is a different sampled answer: cache miss, and
	// (with overwhelming probability on this instance) a different
	// estimate.
	other := e.Do(hardApproxJob(t, approxEngineOpts(43)))
	if other.Err != nil {
		t.Fatal(other.Err)
	}
	if other.CacheHit {
		t.Fatal("different-seed approx job hit the result cache")
	}
	// An exact job on the same structure must not be served the
	// sampled answer.
	exact := e.Do(hardApproxJob(t, nil))
	if exact.Err != nil {
		t.Fatal(exact.Err)
	}
	if exact.CacheHit {
		t.Fatal("exact job was served the approx job's cached result")
	}
	if exact.Result.Precision != core.PrecisionExact {
		t.Fatalf("exact job answered on substrate %v", exact.Result.Precision)
	}
}
