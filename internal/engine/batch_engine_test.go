package engine

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"phom/internal/core"
	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/phomerr"
)

// reweightWorkload builds the canonical batchable workload: one query,
// one instance structure, lanes probability vectors produced by
// CloneProbs + SetProb — exactly how a reweight producer (the server's
// multi-vector endpoint, phomgen -replay) constructs jobs.
func reweightWorkload(t *testing.T, seed int64, lanes int, opts *core.Options) []Job {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rs := []graph.Label{"R", "S"}
	q := gen.Rand1WP(r, 4, rs)
	base := gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, 40, rs), 0.5)
	jobs := make([]Job, lanes)
	for k := range jobs {
		inst := base.CloneProbs()
		for i := 0; i < inst.G.NumEdges(); i++ {
			if err := inst.SetProb(i, big.NewRat(int64(r.Intn(18)), 17)); err != nil {
				t.Fatal(err)
			}
		}
		jobs[k] = Job{Query: q, Instance: inst, Opts: opts}
	}
	return jobs
}

// TestBatchedReweightMatchesPerJob: a same-structure reweight batch must
// route through the vectorized kernel (BatchRuns/BatchLanes), compile
// its plan exactly once, and return results byte-identical to
// per-lane core.Solve.
func TestBatchedReweightMatchesPerJob(t *testing.T) {
	jobs := reweightWorkload(t, 41, 24, nil)
	want := solveSequential(t, jobs)

	for _, workers := range []int{1, 4} {
		e := New(Options{Workers: workers})
		got := e.SolveBatch(jobs)
		st := e.Stats()
		if err := e.Close(); err != nil {
			t.Fatalf("workers=%d: Close: %v", workers, err)
		}
		for i := range jobs {
			if got[i].Err != nil {
				t.Fatalf("workers=%d lane %d: %v", workers, i, got[i].Err)
			}
			if got[i].Result.Prob.RatString() != want[i].Prob.RatString() {
				t.Errorf("workers=%d lane %d: batched %s, sequential %s",
					workers, i, got[i].Result.Prob.RatString(), want[i].Prob.RatString())
			}
			if got[i].Result.Method != want[i].Method {
				t.Errorf("workers=%d lane %d: method %v, want %v", workers, i, got[i].Result.Method, want[i].Method)
			}
		}
		if st.BatchRuns != 1 {
			t.Errorf("workers=%d: BatchRuns = %d, want 1", workers, st.BatchRuns)
		}
		if st.BatchLanes != uint64(len(jobs)) {
			t.Errorf("workers=%d: BatchLanes = %d, want %d", workers, st.BatchLanes, len(jobs))
		}
		if st.Solved != uint64(len(jobs)) {
			t.Errorf("workers=%d: Solved = %d, want %d", workers, st.Solved, len(jobs))
		}
		if st.PlanCompiles != 1 {
			t.Errorf("workers=%d: PlanCompiles = %d, want 1 (one structure)", workers, st.PlanCompiles)
		}
	}
}

// TestBatchedReweightFloatAccounting: a fast/auto batch updates the
// dual-precision counters per lane, exactly as the per-job path's
// noteFloat would.
func TestBatchedReweightFloatAccounting(t *testing.T) {
	jobs := reweightWorkload(t, 43, 12, &core.Options{Precision: core.PrecisionAuto})
	want := solveSequential(t, jobs)

	e := New(Options{Workers: 2})
	defer e.Close()
	got := e.SolveBatch(jobs)
	st := e.Stats()
	for i := range jobs {
		if got[i].Err != nil {
			t.Fatalf("lane %d: %v", i, got[i].Err)
		}
		if got[i].Result.Prob.RatString() != want[i].Prob.RatString() {
			t.Errorf("lane %d: batched %s, sequential %s", i, got[i].Result.Prob.RatString(), want[i].Prob.RatString())
		}
		if got[i].Result.Precision != want[i].Precision {
			t.Errorf("lane %d: precision %v, want %v", i, got[i].Result.Precision, want[i].Precision)
		}
	}
	if st.FloatFast+st.FloatFallbacks != st.Solved {
		t.Errorf("FloatFast+FloatFallbacks = %d+%d, want Solved = %d", st.FloatFast, st.FloatFallbacks, st.Solved)
	}
}

// TestBatchInGroupDedup: identical lanes inside one group are executed
// once; with memoization on, the duplicates are cache hits (the
// primary's result is in the memo cache by the time they are served).
func TestBatchInGroupDedup(t *testing.T) {
	distinct := reweightWorkload(t, 47, 8, nil)
	var jobs []Job
	for _, j := range distinct {
		for d := 0; d < 3; d++ {
			jobs = append(jobs, j)
		}
	}
	want := solveSequential(t, jobs)

	e := New(Options{Workers: 4})
	defer e.Close()
	got := e.SolveBatch(jobs)
	st := e.Stats()
	hits := 0
	for i := range jobs {
		if got[i].Err != nil {
			t.Fatalf("lane %d: %v", i, got[i].Err)
		}
		if got[i].Result.Prob.RatString() != want[i].Prob.RatString() {
			t.Errorf("lane %d: batched %s, sequential %s", i, got[i].Result.Prob.RatString(), want[i].Prob.RatString())
		}
		if got[i].CacheHit {
			hits++
		}
	}
	if st.Solved != 8 {
		t.Errorf("Solved = %d, want 8 (one per distinct vector)", st.Solved)
	}
	if st.CacheHits != 16 || hits != 16 {
		t.Errorf("CacheHits = %d (flagged %d), want 16", st.CacheHits, hits)
	}
	if st.BatchLanes != 24 {
		t.Errorf("BatchLanes = %d, want 24", st.BatchLanes)
	}
}

// TestBatchInGroupDedupWithoutCache: with memoization disabled the
// in-group dedup still holds — duplicates coalesce onto their primary
// lane (Shared), the in-group analogue of singleflight.
func TestBatchInGroupDedupWithoutCache(t *testing.T) {
	distinct := reweightWorkload(t, 53, 6, nil)
	var jobs []Job
	for _, j := range distinct {
		jobs = append(jobs, j, j)
	}
	want := solveSequential(t, jobs)

	e := New(Options{Workers: 2, CacheSize: -1})
	defer e.Close()
	got := e.SolveBatch(jobs)
	st := e.Stats()
	shared := 0
	for i := range jobs {
		if got[i].Err != nil {
			t.Fatalf("lane %d: %v", i, got[i].Err)
		}
		if got[i].Result.Prob.RatString() != want[i].Prob.RatString() {
			t.Errorf("lane %d: batched %s, sequential %s", i, got[i].Result.Prob.RatString(), want[i].Prob.RatString())
		}
		if got[i].Shared {
			shared++
		}
	}
	if st.Solved != 6 {
		t.Errorf("Solved = %d, want 6", st.Solved)
	}
	if st.CacheHits != 0 {
		t.Errorf("CacheHits = %d, want 0 with memoization disabled", st.CacheHits)
	}
	if st.Coalesced != 6 || shared != 6 {
		t.Errorf("Coalesced = %d (flagged %d), want 6", st.Coalesced, shared)
	}
}

// TestBatchMemoInterop: the batched path and the per-job path share the
// memo cache in both directions.
func TestBatchMemoInterop(t *testing.T) {
	jobs := reweightWorkload(t, 59, 8, nil)

	// Per-job first, batch second: the batch's memo pass serves the
	// pre-solved lanes without occupying kernel lanes.
	e := New(Options{Workers: 2})
	for _, j := range jobs[:4] {
		if r := e.Do(j); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	got := e.SolveBatch(jobs)
	st := e.Stats()
	for i := range jobs {
		if got[i].Err != nil {
			t.Fatalf("lane %d: %v", i, got[i].Err)
		}
		if i < 4 && !got[i].CacheHit {
			t.Errorf("lane %d: pre-solved lane not served from memo cache", i)
		}
	}
	if st.CacheHits != 4 {
		t.Errorf("CacheHits = %d, want 4", st.CacheHits)
	}
	if st.Solved != 8 {
		t.Errorf("Solved = %d, want 8 (4 per-job + 4 kernel lanes; memo hits are not executions)", st.Solved)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Batch first, per-job second: the batch populates the memo cache
	// for the per-job path.
	e2 := New(Options{Workers: 2})
	defer e2.Close()
	if got := e2.SolveBatch(jobs); got[0].Err != nil {
		t.Fatal(got[0].Err)
	}
	r := e2.Do(jobs[0])
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.CacheHit {
		t.Error("per-job Do after a batch did not hit the memo cache")
	}
}

// TestBatchPlanHitAcrossBatches: a second batch over the same structure
// (fresh probability vectors) is served by the cached compiled plan —
// no recompile, PlanHit set on every lane.
func TestBatchPlanHitAcrossBatches(t *testing.T) {
	first := reweightWorkload(t, 61, 6, nil)
	second := reweightWorkload(t, 61, 6, nil)
	r := rand.New(rand.NewSource(67))
	for _, j := range second {
		for i := 0; i < j.Instance.G.NumEdges(); i++ {
			if err := j.Instance.SetProb(i, big.NewRat(int64(r.Intn(18)), 17)); err != nil {
				t.Fatal(err)
			}
		}
	}

	e := New(Options{Workers: 2, CacheSize: -1}) // memoization off isolates the plan cache
	defer e.Close()
	if got := e.SolveBatch(first); got[0].Err != nil {
		t.Fatal(got[0].Err)
	}
	if st := e.Stats(); st.PlanCompiles != 1 {
		t.Fatalf("PlanCompiles after first batch = %d, want 1", st.PlanCompiles)
	}
	got := e.SolveBatch(second)
	st := e.Stats()
	for i := range second {
		if got[i].Err != nil {
			t.Fatalf("lane %d: %v", i, got[i].Err)
		}
		if !got[i].PlanHit {
			t.Errorf("lane %d: second batch did not report a plan hit", i)
		}
	}
	if st.PlanCompiles != 1 {
		t.Errorf("PlanCompiles = %d, want 1 (second batch reuses the plan)", st.PlanCompiles)
	}
	if st.PlanHits != uint64(len(second)) {
		t.Errorf("PlanHits = %d, want %d", st.PlanHits, len(second))
	}
	if st.BatchRuns != 2 {
		t.Errorf("BatchRuns = %d, want 2", st.BatchRuns)
	}
}

// TestBatchGroupsPartition pins the grouping predicate: same query
// pointer + same underlying graph value + same options fingerprint +
// same per-job timeout, single-query form; groups need at least two
// lanes and chunk at batchMaxLanes.
func TestBatchGroupsPartition(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	rs := []graph.Label{"R"}
	q := gen.Rand1WP(r, 3, rs)
	base := gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 20, rs), 0.5)

	lane := func() Job { return Job{Query: q, Instance: base.CloneProbs()} }

	jobs := []Job{
		lane(), // group A
		lane(), // group A
		{Query: q, Instance: base.CloneProbs(), Timeout: time.Second},                               // group B: equal timeouts group
		{Queries: []*graph.Graph{q}, Instance: base.CloneProbs()},                                   // UCQ form → single
		{Query: q, Instance: base.Clone()},                                                          // different graph value → its own key, alone → single
		{Query: q, Instance: base.CloneProbs(), Opts: &core.Options{Precision: core.PrecisionFast}}, // different fingerprint, alone → single
		lane(), // group A
		{Query: q, Instance: base.CloneProbs(), Timeout: time.Second}, // group B: shares the timeout budget with lane 2
	}
	groups, singles := batchGroups(jobs)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	for gi, wantGroup := range [][]int{{0, 1, 6}, {2, 7}} {
		if len(groups[gi]) != len(wantGroup) {
			t.Fatalf("group %d lanes = %v, want %v", gi, groups[gi], wantGroup)
		}
		for i, idx := range wantGroup {
			if groups[gi][i] != idx {
				t.Fatalf("group %d lanes = %v, want %v", gi, groups[gi], wantGroup)
			}
		}
	}
	if len(singles) != 3 {
		t.Fatalf("singles = %v, want 3 lanes", singles)
	}

	// Chunking: a group wider than batchMaxLanes splits.
	var wide []Job
	for i := 0; i < batchMaxLanes+10; i++ {
		wide = append(wide, lane())
	}
	groups, singles = batchGroups(wide)
	if len(singles) != 0 {
		t.Fatalf("wide group produced singles: %v", singles)
	}
	if len(groups) != 2 || len(groups[0]) != batchMaxLanes || len(groups[1]) != 10 {
		t.Fatalf("wide group chunking: got %d groups", len(groups))
	}

	// A lone wide-chunk remainder of one lane falls back to singles.
	groups, singles = batchGroups(wide[:batchMaxLanes+1])
	if len(groups) != 1 || len(groups[0]) != batchMaxLanes || len(singles) != 1 {
		t.Fatalf("remainder of 1: groups=%d singles=%d", len(groups), len(singles))
	}
}

// TestBatchGroupTimeout: lanes sharing a per-job Timeout batch together
// and the shared group deadline surfaces as the typed deadline (or
// cancellation, if the clock fires before dispatch) error on every
// lane — equal budgets don't disqualify jobs from the vectorized path.
func TestBatchGroupTimeout(t *testing.T) {
	jobs := reweightWorkload(t, 47, 8, nil)
	for k := range jobs {
		jobs[k].Timeout = time.Nanosecond
	}
	e := New(Options{})
	defer e.Close()
	got := e.SolveBatch(jobs)
	// A 1ns budget has expired by the time the group reaches dispatch,
	// so the group must abort deterministically before executing: every
	// lane carries the typed error and the canceled counter accounts
	// for all of them.
	st := e.Stats()
	if st.Canceled != uint64(len(jobs)) {
		t.Errorf("Canceled=%d, want %d", st.Canceled, len(jobs))
	}
	for i, res := range got {
		if !errors.Is(res.Err, phomerr.ErrDeadline) && !errors.Is(res.Err, phomerr.ErrCanceled) {
			t.Errorf("lane %d: err = %v, want deadline", i, res.Err)
		}
	}

	// A comfortable budget leaves results intact.
	for k := range jobs {
		jobs[k].Timeout = time.Minute
	}
	e2 := New(Options{})
	defer e2.Close()
	for i, res := range e2.SolveBatch(jobs) {
		if res.Err != nil {
			t.Fatalf("lane %d with 1m budget: %v", i, res.Err)
		}
	}
	if st2 := e2.Stats(); st2.BatchRuns == 0 {
		t.Errorf("BatchRuns = 0 with a 1m budget")
	}
}

// TestBatchStreamCancellation: a cancelled stream context fails every
// lane with the typed cancellation error instead of hanging or
// executing.
func TestBatchStreamCancellation(t *testing.T) {
	jobs := reweightWorkload(t, 73, 8, nil)
	e := New(Options{Workers: 1})
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	for sr := range e.Stream(ctx, jobs) {
		n++
		if sr.JobResult.Err == nil {
			continue // a lane may have slipped in before the cancel was observed
		}
		if !errors.Is(sr.JobResult.Err, phomerr.ErrCanceled) {
			t.Fatalf("lane %d: err = %v, want ErrCanceled", sr.Index, sr.JobResult.Err)
		}
	}
	if n != len(jobs) {
		t.Fatalf("stream emitted %d results, want %d", n, len(jobs))
	}
}

// TestBatchMixedWithSingles: groupable reweight lanes and ungroupable
// jobs coexist in one Stream call; every lane matches its sequential
// answer and only the groupable lanes count as batch lanes.
func TestBatchMixedWithSingles(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	rs := []graph.Label{"R", "S"}
	jobs := reweightWorkload(t, 83, 10, nil)
	ucq := Job{
		Queries:  []*graph.Graph{gen.Rand1WP(r, 3, rs), gen.Rand1WP(r, 4, rs)},
		Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, 30, rs), 0.5),
	}
	jobs = append(jobs, ucq)
	want := solveSequential(t, jobs)

	e := New(Options{Workers: 4})
	defer e.Close()
	got := e.SolveBatch(jobs)
	st := e.Stats()
	for i := range jobs {
		if got[i].Err != nil {
			t.Fatalf("lane %d: %v", i, got[i].Err)
		}
		if got[i].Result.Prob.RatString() != want[i].Prob.RatString() {
			t.Errorf("lane %d: batched %s, sequential %s", i, got[i].Result.Prob.RatString(), want[i].Prob.RatString())
		}
	}
	if st.BatchLanes != 10 {
		t.Errorf("BatchLanes = %d, want 10 (the UCQ job runs per-job)", st.BatchLanes)
	}
	if st.Submitted != 11 {
		t.Errorf("Submitted = %d, want 11", st.Submitted)
	}
}
