// Package engine provides a concurrent batch-evaluation engine on top of
// the core solver. An Engine owns a bounded pool of worker goroutines
// that execute solver jobs, deduplicates identical in-flight jobs
// (singleflight: concurrent submissions of the same job share one
// execution), and memoizes completed results in a bounded LRU cache
// keyed by the canonical job hash of package graphio.
//
// Below the result cache sits a second, structure-keyed cache of
// compiled solver plans (core.Compile / internal/plan), keyed by
// graphio.StructKey — the job hash with probabilities stripped. Jobs
// that differ from a previously executed job only in edge probabilities
// skip the structural phase (classification, lineage and circuit
// construction) and pay only the linear evaluation, which is the
// dominant serving pattern: what-if analysis, probability sweeps and
// streaming weight updates over a fixed query/instance topology.
//
// By default all results are exact *big.Rat probabilities,
// byte-identical to what a sequential call to core.Solve / core.SolveUCQ
// would return: the engine changes scheduling, never arithmetic. Jobs
// may opt into the dual-precision fast path (core.Options.Precision):
// their plans evaluate on the certified float64 interval kernel, with
// the per-job options — not the cached plan — picking the substrate,
// and the Stats counters FloatFast / FloatFallbacks reporting which
// substrate answered. Cached results are deep-copied on the way out, so
// callers may mutate what they receive.
package engine
