package reductions

import (
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/core"
	"phom/internal/counting"
	"phom/internal/gen"
	"phom/internal/graph"
)

// checkIdentity verifies the counting identity of a reduction by brute
// force: Pr(Query ⇝ Instance) · 2^CoinExponent must equal want.
func checkIdentity(t *testing.T, r *Reduction, want *big.Int, context string) {
	t.Helper()
	p := core.BruteForce(r.Query, r.Instance)
	got := r.CountFromProb(p)
	if got.Cmp(want) != 0 {
		t.Fatalf("%s: recovered count %s, want %s (Pr=%s, coins=%d)",
			context, got.String(), want.String(), p.RatString(), r.CoinExponent)
	}
}

func TestEdgeCoverLabeledIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		bg := gen.RandBipartite(r, 1+r.Intn(3), 1+r.Intn(3), 1+r.Intn(6))
		red, err := EdgeCoverLabeled(bg)
		if err != nil {
			t.Fatal(err)
		}
		// Class assertions (Proposition 3.3: ⊔1WP query, 1WP instance).
		if !red.Query.InClass(graph.ClassU1WP) {
			t.Fatalf("query not in ⊔1WP: %v", red.Query)
		}
		if !red.Instance.G.Is1WP() {
			t.Fatalf("instance not a 1WP: %v", red.Instance.G)
		}
		want, err := bg.CountEdgeCovers()
		if err != nil {
			t.Fatal(err)
		}
		checkIdentity(t, red, want, "edge-cover labeled")
	}
}

func TestEdgeCoverLabeledKnownValues(t *testing.T) {
	// Single edge between x1 and y1: exactly one edge cover.
	bg := &counting.BipartiteGraph{NX: 1, NY: 1, Edges: [][2]int{{0, 0}}}
	red, err := EdgeCoverLabeled(bg)
	if err != nil {
		t.Fatal(err)
	}
	p := core.BruteForce(red.Query, red.Instance)
	if p.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("single-edge cover probability = %s, want 1/2", p.RatString())
	}
	// Two parallel edges x1–y1, x1–y2 … every cover must hit both y's:
	// covers = {e1,e2} only → 1 of 4 subsets.
	bg2 := &counting.BipartiteGraph{NX: 1, NY: 2, Edges: [][2]int{{0, 0}, {0, 1}}}
	want2, _ := bg2.CountEdgeCovers()
	if want2.Int64() != 1 {
		t.Fatalf("expected exactly 1 edge cover, got %v", want2)
	}
	red2, _ := EdgeCoverLabeled(bg2)
	checkIdentity(t, red2, want2, "two-edge star")
}

func TestEdgeCoverUnlabeledIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		bg := gen.RandBipartite(r, 1+r.Intn(2), 1+r.Intn(2), 1+r.Intn(4))
		red, err := EdgeCoverUnlabeled(bg)
		if err != nil {
			t.Fatal(err)
		}
		// Proposition 3.4: ⊔2WP query, 2WP instance, single label.
		if !red.Query.InClass(graph.ClassU2WP) {
			t.Fatalf("query not in ⊔2WP")
		}
		if !red.Instance.G.Is2WP() {
			t.Fatalf("instance not a 2WP")
		}
		if !red.Query.IsUnlabeled() || !red.Instance.G.IsUnlabeled() {
			t.Fatalf("rewriting must produce unlabeled graphs")
		}
		want, err := bg.CountEdgeCovers()
		if err != nil {
			t.Fatal(err)
		}
		checkIdentity(t, red, want, "edge-cover unlabeled")
	}
}

func TestPP2DNFLabeledIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		f := gen.RandPP2DNF(r, 1+r.Intn(3), 1+r.Intn(3), 1+r.Intn(4))
		red, err := PP2DNFLabeled(f)
		if err != nil {
			t.Fatal(err)
		}
		// Proposition 4.1: 1WP query, PT instance.
		if !red.Query.Is1WP() {
			t.Fatalf("query not a 1WP")
		}
		if !red.Instance.G.IsPolytree() {
			t.Fatalf("instance not a polytree: %v", red.Instance.G)
		}
		want, err := f.CountSatisfying()
		if err != nil {
			t.Fatal(err)
		}
		checkIdentity(t, red, want, "PP2DNF labeled")
	}
}

func TestPP2DNFLabeledKnownValue(t *testing.T) {
	// Single clause X1 ∧ Y1: 1 of 4 valuations satisfies.
	f := &counting.PP2DNF{N1: 1, N2: 1, Clauses: [][2]int{{0, 0}}}
	red, err := PP2DNFLabeled(f)
	if err != nil {
		t.Fatal(err)
	}
	p := core.BruteForce(red.Query, red.Instance)
	if p.Cmp(big.NewRat(1, 4)) != 0 {
		t.Fatalf("single-clause probability = %s, want 1/4", p.RatString())
	}
}

func TestPP2DNFUnlabeledIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		f := gen.RandPP2DNF(r, 1+r.Intn(2), 1+r.Intn(2), 1+r.Intn(3))
		red, err := PP2DNFUnlabeled(f)
		if err != nil {
			t.Fatal(err)
		}
		// Proposition 5.6: 2WP query, PT instance, single label.
		if !red.Query.Is2WP() {
			t.Fatalf("query not a 2WP: %v", red.Query)
		}
		if !red.Instance.G.IsPolytree() {
			t.Fatalf("instance not a polytree")
		}
		if !red.Query.IsUnlabeled() || !red.Instance.G.IsUnlabeled() {
			t.Fatalf("rewriting must be unlabeled")
		}
		want, err := f.CountSatisfying()
		if err != nil {
			t.Fatal(err)
		}
		checkIdentity(t, red, want, "PP2DNF unlabeled")
	}
}

func TestPP2DNFConnectedIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		f := gen.RandPP2DNF(r, 1+r.Intn(3), 1+r.Intn(3), 1+r.Intn(5))
		red, err := PP2DNFConnected(f)
		if err != nil {
			t.Fatal(err)
		}
		// Proposition 5.1: 1WP query, connected instance, single label.
		if !red.Query.Is1WP() || !red.Query.IsUnlabeled() {
			t.Fatalf("query not an unlabeled 1WP")
		}
		if !red.Instance.G.IsConnected() {
			t.Fatalf("instance not connected: %v", red.Instance.G)
		}
		want, err := f.CountSatisfying()
		if err != nil {
			t.Fatal(err)
		}
		checkIdentity(t, red, want, "PP2DNF connected")
	}
}

func TestCountFromProbPanicsOnNonIntegral(t *testing.T) {
	red := &Reduction{CoinExponent: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("non-integral recovery should panic")
		}
	}()
	red.CountFromProb(big.NewRat(1, 3))
}

// TestReductionSizesPolynomial sanity-checks that the constructions are
// polynomial-size in their sources (they are PTIME reductions).
func TestReductionSizesPolynomial(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	bg := gen.RandBipartite(r, 5, 5, 12)
	red, err := EdgeCoverLabeled(bg)
	if err != nil {
		t.Fatal(err)
	}
	n := red.Instance.G.NumVertices()
	bound := 4 * (len(bg.Edges)*(bg.NX+bg.NY+2) + 2)
	if n > bound {
		t.Fatalf("instance has %d vertices, exceeds bound %d", n, bound)
	}
	f := gen.RandPP2DNF(r, 6, 6, 10)
	red2, err := PP2DNFLabeled(f)
	if err != nil {
		t.Fatal(err)
	}
	m := len(f.Clauses)
	bound2 := 2 + f.N1 + f.N2 + (f.N1+f.N2)*m + 2*m
	if red2.Instance.G.NumVertices() > bound2 {
		t.Fatalf("PP2DNF instance has %d vertices, exceeds bound %d",
			red2.Instance.G.NumVertices(), bound2)
	}
}
