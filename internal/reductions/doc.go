// Package reductions implements the hardness constructions of the paper
// as executable polynomial-time reductions. Each construction converts an
// instance of a #P-hard counting problem into a PHom input pair that
// satisfies an exact counting identity; the test suite validates the
// identity against brute-force counters, which is the strongest
// machine-checkable evidence for the #P-hard cells of Tables 1–3.
//
//   - EdgeCoverLabeled: #Bipartite-Edge-Cover → PHomL(⊔1WP, 1WP)
//     (Proposition 3.3, Figure 5).
//   - EdgeCoverUnlabeled: the same with labels simulated by two-wayness,
//     → PHom̸L(⊔2WP, 2WP) (Proposition 3.4).
//   - PP2DNFLabeled: #PP2DNF → PHomL(1WP, PT) (Proposition 4.1, Figure 7).
//   - PP2DNFUnlabeled: #PP2DNF → PHom̸L(2WP, PT) (Proposition 5.6,
//     Figure 8).
//   - PP2DNFConnected: #PP2DNF → PHom̸L(1WP, Connected), a graph-only
//     variant of [32, Example 3.3] cited by Proposition 5.1 (see the
//     substitution note in DESIGN.md).
package reductions
