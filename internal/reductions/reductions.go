package reductions

import (
	"fmt"
	"math/big"

	"phom/internal/counting"
	"phom/internal/graph"
)

// Reduction is a PHom input pair constructed from a counting problem,
// with the denominator of the counting identity:
//
//	Pr(Query ⇝ Instance) = count / 2^CoinExponent
//
// where count is the number of edge covers (edge-cover reductions) or
// satisfying valuations (PP2DNF reductions) of the source instance.
type Reduction struct {
	Query        *graph.Graph
	Instance     *graph.ProbGraph
	CoinExponent int
}

// CountFromProb inverts the identity: the exact source count recovered
// from the PHom probability.
func (r *Reduction) CountFromProb(p *big.Rat) *big.Int {
	scaled := new(big.Rat).Mul(p, new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(r.CoinExponent))))
	if !scaled.IsInt() {
		panic(fmt.Sprintf("reductions: probability %s times 2^%d is not integral", p.RatString(), r.CoinExponent))
	}
	return new(big.Int).Set(scaled.Num())
}

// asm incrementally assembles a probabilistic graph with named vertices.
type asm struct {
	g     *graph.Graph
	names map[string]graph.Vertex
	probs map[int]*big.Rat // edge index → probability (default 1)
}

func newAsm() *asm {
	return &asm{g: graph.New(0), names: map[string]graph.Vertex{}, probs: map[int]*big.Rat{}}
}

func (a *asm) v(name string) graph.Vertex {
	if v, ok := a.names[name]; ok {
		return v
	}
	v := a.g.AddVertex()
	a.names[name] = v
	return v
}

// fresh returns an anonymous vertex.
func (a *asm) fresh() graph.Vertex { return a.g.AddVertex() }

func (a *asm) edge(from, to graph.Vertex, l graph.Label, p *big.Rat) {
	a.g.MustAddEdge(from, to, l)
	if p != nil {
		a.probs[a.g.NumEdges()-1] = p
	}
}

func (a *asm) build() *graph.ProbGraph {
	pg := graph.NewProbGraph(a.g)
	for i, p := range a.probs {
		if err := pg.SetProb(i, p); err != nil {
			panic(err)
		}
	}
	return pg
}

// Labels of the Proposition 3.3 construction.
const (
	labelC graph.Label = "C"
	labelL graph.Label = "L"
	labelR graph.Label = "R"
	labelV graph.Label = "V"
	labelS graph.Label = "S"
	labelT graph.Label = "T"
)

// EdgeCoverLabeled builds the Proposition 3.3 reduction (Figure 5): a
// ⊔1WP query and a 1WP instance over σ = {C, L, R, V} such that
// Pr(G ⇝ H) · 2^|E(Γ)| is the number of edge covers of the bipartite
// graph Γ. V-edges carry probability 1/2 (one coin per edge of Γ); all
// other edges are certain.
func EdgeCoverLabeled(bg *counting.BipartiteGraph) (*Reduction, error) {
	if err := bg.Validate(); err != nil {
		return nil, err
	}
	// Instance H = C→ He₁ C→ He₂ C→ … C→ He_m C→ with
	// He_j = (L→)^{l_j} V→ (R→)^{r_j}, where e_j = (x_{l_j}, y_{r_j})
	// (1-based in the paper; 0-based vertices here, so lengths are
	// index+1).
	a := newAsm()
	cur := a.fresh()
	next := func() graph.Vertex { return a.fresh() }
	step := func(l graph.Label, p *big.Rat) {
		n := next()
		a.edge(cur, n, l, p)
		cur = n
	}
	step(labelC, nil)
	for _, e := range bg.Edges {
		for k := 0; k <= e[0]; k++ { // l_j = e[0]+1 L-edges
			step(labelL, nil)
		}
		step(labelV, graph.RatHalf)
		for k := 0; k <= e[1]; k++ { // r_j = e[1]+1 R-edges
			step(labelR, nil)
		}
		step(labelC, nil)
	}
	instance := a.build()

	// Query G: per X-vertex xᵢ the component C→ (L→)^{i+1} V→; per
	// Y-vertex yᵢ the component V→ (R→)^{i+1} C→.
	var comps []*graph.Graph
	for i := 0; i < bg.NX; i++ {
		labels := []graph.Label{labelC}
		for k := 0; k <= i; k++ {
			labels = append(labels, labelL)
		}
		labels = append(labels, labelV)
		comps = append(comps, graph.Path1WP(labels...))
	}
	for i := 0; i < bg.NY; i++ {
		labels := []graph.Label{labelV}
		for k := 0; k <= i; k++ {
			labels = append(labels, labelR)
		}
		labels = append(labels, labelC)
		comps = append(comps, graph.Path1WP(labels...))
	}
	query, _ := graph.DisjointUnion(comps...)
	return &Reduction{Query: query, Instance: instance, CoinExponent: len(bg.Edges)}, nil
}

// rewrite2W rewrites a labeled graph into an unlabeled one per
// Proposition 3.4: each L- or R-edge a → b becomes a →→← b, each C-edge
// becomes a ←←← b, and each V-edge becomes a →→→→→← b whose first edge
// inherits the original edge's probability. Edge probabilities of the
// source are read from probs (nil = all certain).
func rewrite2W(g *graph.Graph, probs func(i int) *big.Rat) (*graph.Graph, map[int]*big.Rat) {
	out := graph.New(g.NumVertices())
	outProbs := map[int]*big.Rat{}
	addEdge := func(from, to graph.Vertex, p *big.Rat) {
		out.MustAddEdge(from, to, graph.Unlabeled)
		if p != nil {
			outProbs[out.NumEdges()-1] = p
		}
	}
	for i, e := range g.Edges() {
		var p *big.Rat
		if probs != nil {
			p = probs(i)
		}
		switch e.Label {
		case labelL, labelR: // a →→← b
			c1, c2 := out.AddVertex(), out.AddVertex()
			addEdge(e.From, c1, nil)
			addEdge(c1, c2, nil)
			addEdge(e.To, c2, nil)
		case labelC: // a ←←← b
			c1, c2 := out.AddVertex(), out.AddVertex()
			addEdge(c1, e.From, nil)
			addEdge(c2, c1, nil)
			addEdge(e.To, c2, nil)
		case labelV: // a →→→→→← b, first edge carries the coin
			cs := make([]graph.Vertex, 5)
			for k := range cs {
				cs[k] = out.AddVertex()
			}
			addEdge(e.From, cs[0], p)
			for k := 0; k < 4; k++ {
				addEdge(cs[k], cs[k+1], nil)
			}
			addEdge(e.To, cs[4], nil)
		default:
			panic(fmt.Sprintf("reductions: unexpected label %q", e.Label))
		}
	}
	return out, outProbs
}

// EdgeCoverUnlabeled builds the Proposition 3.4 reduction: the
// Proposition 3.3 pair rewritten to simulate the labels with
// two-wayness, yielding a ⊔2WP query and a 2WP instance over a single
// label with the same counting identity.
func EdgeCoverUnlabeled(bg *counting.BipartiteGraph) (*Reduction, error) {
	base, err := EdgeCoverLabeled(bg)
	if err != nil {
		return nil, err
	}
	query, _ := rewrite2W(base.Query, nil)
	instG, instProbs := rewrite2W(base.Instance.G, func(i int) *big.Rat { return base.Instance.Prob(i) })
	inst := graph.NewProbGraph(instG)
	for i, p := range instProbs {
		if err := inst.SetProb(i, p); err != nil {
			return nil, err
		}
	}
	return &Reduction{Query: query, Instance: inst, CoinExponent: base.CoinExponent}, nil
}

// PP2DNFLabeled builds the Proposition 4.1 reduction (Figure 7): a 1WP
// query and a polytree instance over σ = {S, T} such that
// Pr(G ⇝ H) · 2^(N1+N2) is the number of satisfying valuations of the
// PP2DNF formula. The S-edges Xᵢ → R and R → Yᵢ carry probability 1/2
// (one coin per variable); all other edges are certain.
func PP2DNFLabeled(f *counting.PP2DNF) (*Reduction, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	m := len(f.Clauses)
	a := newAsm()
	r := a.v("R")
	// Variable coins.
	for i := 1; i <= f.N1; i++ {
		a.edge(a.v(fmt.Sprintf("X%d", i)), r, labelS, graph.RatHalf)
	}
	for i := 1; i <= f.N2; i++ {
		a.edge(r, a.v(fmt.Sprintf("Y%d", i)), labelS, graph.RatHalf)
	}
	// Index chains.
	for i := 1; i <= f.N1; i++ {
		if m > 0 {
			a.edge(a.v(fmt.Sprintf("X%d,%d", i, m)), a.v(fmt.Sprintf("X%d", i)), labelS, nil)
		}
		for j := 1; j < m; j++ {
			a.edge(a.v(fmt.Sprintf("X%d,%d", i, j)), a.v(fmt.Sprintf("X%d,%d", i, j+1)), labelS, nil)
		}
	}
	for i := 1; i <= f.N2; i++ {
		if m > 0 {
			a.edge(a.v(fmt.Sprintf("Y%d", i)), a.v(fmt.Sprintf("Y%d,1", i)), labelS, nil)
		}
		for j := 1; j < m; j++ {
			a.edge(a.v(fmt.Sprintf("Y%d,%d", i, j)), a.v(fmt.Sprintf("Y%d,%d", i, j+1)), labelS, nil)
		}
	}
	// Clause gadgets: A_j −T→ X_{x_j, j} and Y_{y_j, j} −T→ B_j.
	for j, c := range f.Clauses {
		xj, yj := c[0]+1, c[1]+1
		a.edge(a.v(fmt.Sprintf("A%d", j+1)), a.v(fmt.Sprintf("X%d,%d", xj, j+1)), labelT, nil)
		a.edge(a.v(fmt.Sprintf("Y%d,%d", yj, j+1)), a.v(fmt.Sprintf("B%d", j+1)), labelT, nil)
	}
	// Query: T→ (S→)^{m+3} T→.
	labels := []graph.Label{labelT}
	for k := 0; k < m+3; k++ {
		labels = append(labels, labelS)
	}
	labels = append(labels, labelT)
	return &Reduction{
		Query:        graph.Path1WP(labels...),
		Instance:     a.build(),
		CoinExponent: f.N1 + f.N2,
	}, nil
}

// PP2DNFUnlabeled builds the Proposition 5.6 reduction (Figure 8): the
// Proposition 4.1 pair rewritten to simulate labels with two-wayness in
// the query, yielding a 2WP query and a polytree instance over a single
// label. Each S-edge a → b becomes a →→← b (the middle edge of a former
// coin edge carries the coin) and each T-edge becomes a →→→ b.
func PP2DNFUnlabeled(f *counting.PP2DNF) (*Reduction, error) {
	base, err := PP2DNFLabeled(f)
	if err != nil {
		return nil, err
	}
	rewrite := func(g *graph.Graph, probs func(i int) *big.Rat) (*graph.Graph, map[int]*big.Rat) {
		out := graph.New(g.NumVertices())
		outProbs := map[int]*big.Rat{}
		addEdge := func(from, to graph.Vertex, p *big.Rat) {
			out.MustAddEdge(from, to, graph.Unlabeled)
			if p != nil {
				outProbs[out.NumEdges()-1] = p
			}
		}
		for i, e := range g.Edges() {
			var p *big.Rat
			if probs != nil {
				p = probs(i)
			}
			switch e.Label {
			case labelS: // a →→← b, middle edge carries the coin
				c1, c2 := out.AddVertex(), out.AddVertex()
				addEdge(e.From, c1, nil)
				addEdge(c1, c2, p)
				addEdge(e.To, c2, nil)
			case labelT: // a →→→ b
				c1, c2 := out.AddVertex(), out.AddVertex()
				addEdge(e.From, c1, nil)
				addEdge(c1, c2, nil)
				addEdge(c2, e.To, nil)
			default:
				panic(fmt.Sprintf("reductions: unexpected label %q", e.Label))
			}
		}
		return out, outProbs
	}
	query, _ := rewrite(base.Query, nil)
	instG, instProbs := rewrite(base.Instance.G, func(i int) *big.Rat { return base.Instance.Prob(i) })
	inst := graph.NewProbGraph(instG)
	for i, p := range instProbs {
		if err := inst.SetProb(i, p); err != nil {
			return nil, err
		}
	}
	return &Reduction{Query: query, Instance: inst, CoinExponent: base.CoinExponent}, nil
}

// PP2DNFConnected builds a graph-only analogue of [32, Example 3.3] for
// Proposition 5.1: an unlabeled 1WP query of length 4 and a connected
// unlabeled instance such that Pr(G ⇝ H) · 2^(N1+N2) is the number of
// satisfying valuations. The instance is the layered graph
// w →(½) xᵢ → c_{ij} → y_j →(½) t_j, whose only directed paths of
// length 4 are w → x_{x_j} → c_j → y_{y_j} → t_{y_j}; the formula must
// mention every variable (Definition 4.3) for the instance to be
// connected.
func PP2DNFConnected(f *counting.PP2DNF) (*Reduction, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	a := newAsm()
	w := a.v("w")
	for i := 1; i <= f.N1; i++ {
		a.edge(w, a.v(fmt.Sprintf("x%d", i)), graph.Unlabeled, graph.RatHalf)
	}
	for i := 1; i <= f.N2; i++ {
		a.edge(a.v(fmt.Sprintf("y%d", i)), a.v(fmt.Sprintf("t%d", i)), graph.Unlabeled, graph.RatHalf)
	}
	for j, c := range f.Clauses {
		cj := a.v(fmt.Sprintf("c%d", j+1))
		a.edge(a.v(fmt.Sprintf("x%d", c[0]+1)), cj, graph.Unlabeled, nil)
		a.edge(cj, a.v(fmt.Sprintf("y%d", c[1]+1)), graph.Unlabeled, nil)
	}
	return &Reduction{
		Query:        graph.UnlabeledPath(4),
		Instance:     a.build(),
		CoinExponent: f.N1 + f.N2,
	}, nil
}
