package counting

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestEdgeCoverKnown(t *testing.T) {
	cases := []struct {
		name string
		g    BipartiteGraph
		want int64
	}{
		{"single edge", BipartiteGraph{NX: 1, NY: 1, Edges: [][2]int{{0, 0}}}, 1},
		{"two parallel paths", BipartiteGraph{NX: 2, NY: 2, Edges: [][2]int{{0, 0}, {1, 1}}}, 1},
		// Star from x1 to y1..y3: the only cover is all edges.
		{"star", BipartiteGraph{NX: 1, NY: 3, Edges: [][2]int{{0, 0}, {0, 1}, {0, 2}}}, 1},
		// x1 with two edges to the same y? not possible (distinct ys):
		// x1–y1, x1–y2, x2–y1: covers must include an edge at x2 ({x2,y1})
		// and an edge at y2 ({x1,y2}); edge {x1,y1} optional → 2 covers.
		{"triangle-ish", BipartiteGraph{NX: 2, NY: 2, Edges: [][2]int{{0, 0}, {0, 1}, {1, 0}}}, 2},
		// Isolated vertex: no cover.
		{"isolated", BipartiteGraph{NX: 2, NY: 1, Edges: [][2]int{{0, 0}}}, 0},
		// K22: each xi needs an edge, each yj needs an edge; subsets of 4
		// edges that cover all 4 vertices: 16 total, count manually = 7.
		{"K22", BipartiteGraph{NX: 2, NY: 2, Edges: [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}}, 7},
	}
	for _, c := range cases {
		got, err := c.g.CountEdgeCovers()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got.Int64() != c.want {
			t.Errorf("%s: count = %v, want %d", c.name, got, c.want)
		}
	}
}

func TestEdgeCoverValidation(t *testing.T) {
	bad := BipartiteGraph{NX: 1, NY: 1, Edges: [][2]int{{0, 5}}}
	if _, err := bad.CountEdgeCovers(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	huge := BipartiteGraph{NX: 1, NY: 1, Edges: make([][2]int, 40)}
	if _, err := huge.CountEdgeCovers(); err == nil {
		t.Fatal("oversized enumeration accepted")
	}
}

func TestPP2DNFEval(t *testing.T) {
	f := PP2DNF{N1: 2, N2: 2, Clauses: [][2]int{{0, 1}, {1, 0}}}
	if !f.Eval(0b01, 0b10) { // X1 ∧ Y2
		t.Fatal("clause (X1,Y2) should fire")
	}
	if f.Eval(0b01, 0b01) { // X1 true but only Y1 true
		t.Fatal("no clause should fire")
	}
}

// TestCountSatisfyingAgainstFullEnumeration cross-checks the 2^N1-loop
// counter against direct 2^(N1+N2) enumeration.
func TestCountSatisfyingAgainstFullEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		f := PP2DNF{N1: 1 + r.Intn(4), N2: 1 + r.Intn(4)}
		for k := r.Intn(6); k > 0; k-- {
			f.Clauses = append(f.Clauses, [2]int{r.Intn(f.N1), r.Intn(f.N2)})
		}
		want := int64(0)
		for xs := uint64(0); xs < 1<<uint(f.N1); xs++ {
			for ys := uint64(0); ys < 1<<uint(f.N2); ys++ {
				if f.Eval(xs, ys) {
					want++
				}
			}
		}
		got, err := f.CountSatisfying()
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != want {
			t.Fatalf("count = %v, want %d for %+v", got, want, f)
		}
	}
}

func TestPP2DNFProbability(t *testing.T) {
	f := PP2DNF{N1: 1, N2: 1, Clauses: [][2]int{{0, 0}}}
	p, err := f.Probability()
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(big.NewRat(1, 4)) != 0 {
		t.Fatalf("Probability = %s, want 1/4", p.RatString())
	}
	empty := PP2DNF{N1: 2, N2: 2}
	p, _ = empty.Probability()
	if p.Sign() != 0 {
		t.Fatal("empty formula must have probability 0")
	}
}

func TestPP2DNFValidation(t *testing.T) {
	bad := PP2DNF{N1: 1, N2: 1, Clauses: [][2]int{{0, 3}}}
	if _, err := bad.CountSatisfying(); err == nil {
		t.Fatal("out-of-range clause accepted")
	}
}
