package counting

import (
	"fmt"
	"math/big"
)

// BipartiteGraph is an undirected bipartite graph with parts X (of size
// NX) and Y (of size NY); edges connect an X-vertex to a Y-vertex.
type BipartiteGraph struct {
	NX, NY int
	Edges  [][2]int // {x, y} with 0 ≤ x < NX, 0 ≤ y < NY
}

// Validate checks index ranges.
func (g *BipartiteGraph) Validate() error {
	if g.NX < 0 || g.NY < 0 {
		return fmt.Errorf("counting: negative part size")
	}
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= g.NX || e[1] < 0 || e[1] >= g.NY {
			return fmt.Errorf("counting: edge %v out of range", e)
		}
	}
	return nil
}

// IsEdgeCover reports whether the edge subset given by the bitmask subset
// covers every vertex of g (every vertex is incident to a chosen edge).
// Vertices of degree 0 make any cover impossible.
func (g *BipartiteGraph) IsEdgeCover(subset uint64) bool {
	coveredX := make([]bool, g.NX)
	coveredY := make([]bool, g.NY)
	for i, e := range g.Edges {
		if subset&(1<<uint(i)) != 0 {
			coveredX[e[0]] = true
			coveredY[e[1]] = true
		}
	}
	for _, c := range coveredX {
		if !c {
			return false
		}
	}
	for _, c := range coveredY {
		if !c {
			return false
		}
	}
	return true
}

// CountEdgeCovers counts the edge covers of g by enumerating all 2^|E|
// edge subsets. #Bipartite-Edge-Cover is #P-complete (Theorem 3.2 /
// Theorem D.1); this exponential counter is usable for |E| ≲ 24 and
// exists to validate the reduction of Proposition 3.3.
func (g *BipartiteGraph) CountEdgeCovers() (*big.Int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := len(g.Edges)
	if m > 30 {
		return nil, fmt.Errorf("counting: %d edges too many for brute-force edge-cover counting", m)
	}
	count := big.NewInt(0)
	for subset := uint64(0); subset < 1<<uint(m); subset++ {
		if g.IsEdgeCover(subset) {
			count.Add(count, big.NewInt(1))
		}
	}
	return count, nil
}

// PP2DNF is a positive partitioned 2-DNF formula (Definition 4.3):
// variables X₁…X_{N1} and Y₁…Y_{N2}, and clauses (X_{xⱼ} ∧ Y_{yⱼ}).
// Indices in Clauses are 0-based.
type PP2DNF struct {
	N1, N2  int
	Clauses [][2]int // {x, y} with 0 ≤ x < N1, 0 ≤ y < N2
}

// Validate checks index ranges.
func (f *PP2DNF) Validate() error {
	if f.N1 < 0 || f.N2 < 0 {
		return fmt.Errorf("counting: negative variable count")
	}
	for _, c := range f.Clauses {
		if c[0] < 0 || c[0] >= f.N1 || c[1] < 0 || c[1] >= f.N2 {
			return fmt.Errorf("counting: clause %v out of range", c)
		}
	}
	return nil
}

// Eval evaluates the formula under X and Y valuations given as bitmasks.
func (f *PP2DNF) Eval(xs, ys uint64) bool {
	for _, c := range f.Clauses {
		if xs&(1<<uint(c[0])) != 0 && ys&(1<<uint(c[1])) != 0 {
			return true
		}
	}
	return false
}

// CountSatisfying counts the satisfying valuations of the formula over
// all 2^(N1+N2) valuations. #PP2DNF is #P-hard [29, 32]. The counter
// enumerates X-valuations only (2^N1 iterations): given an X-valuation,
// the satisfying Y-valuations are those setting at least one variable of
// S = {y : some clause (x, y) has X_x true}, i.e. 2^N2 − 2^(N2−|S|).
func (f *PP2DNF) CountSatisfying() (*big.Int, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if f.N1 > 30 || f.N2 > 62 {
		return nil, fmt.Errorf("counting: PP2DNF with %d+%d variables too large", f.N1, f.N2)
	}
	total := big.NewInt(0)
	pow := func(k int) *big.Int { return new(big.Int).Lsh(big.NewInt(1), uint(k)) }
	for xs := uint64(0); xs < 1<<uint(f.N1); xs++ {
		var ymask uint64
		for _, c := range f.Clauses {
			if xs&(1<<uint(c[0])) != 0 {
				ymask |= 1 << uint(c[1])
			}
		}
		s := popcount(ymask)
		// 2^N2 − 2^(N2−s) satisfying Y-valuations.
		part := pow(f.N2)
		part.Sub(part, pow(f.N2-s))
		total.Add(total, part)
	}
	return total, nil
}

// Probability returns Pr(φ, π) where every variable has probability 1/2:
// the satisfying count divided by 2^(N1+N2) (the #PP2DNF problem).
func (f *PP2DNF) Probability() (*big.Rat, error) {
	count, err := f.CountSatisfying()
	if err != nil {
		return nil, err
	}
	den := new(big.Int).Lsh(big.NewInt(1), uint(f.N1+f.N2))
	return new(big.Rat).SetFrac(count, den), nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
