// Package counting implements the #P-hard counting problems the paper
// reduces from — #Bipartite-Edge-Cover (Definition 3.1, Theorem 3.2) and
// #PP2DNF (Definition 4.3) — together with exact (exponential)
// brute-force counters used to validate the reductions of package
// reductions, and the Hamming-weight signature problems of Appendix D.
package counting
