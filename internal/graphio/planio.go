package graphio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"phom/internal/plan"
)

// This file defines the canonical binary encoding of compiled plans —
// the flattened evaluation IR of internal/plan together with the
// identity a serving engine needs to re-key it (structure key,
// canonical edge order, solver method). The format is versioned and
// deliberately simple: a fixed magic, unsigned varints for every
// integer, and RatString bytes for constants (unique per rational, so
// encodings of equal plans are byte-identical). Decoding is hardened
// the same way the graph parsers are: every count is bounded before
// allocation, buffers grow with the input actually present, and a
// decoded program must pass plan.Program.Validate before it is
// returned, so corrupt or hostile snapshots yield errors, never panics
// or unbounded memory.
//
// Record layout (version 1), after the 8-byte magic "phomplan" and the
// version varint:
//
//	structKey   varint length + bytes (the StructKey of the job)
//	method      varint (the solver Method, validated by package core)
//	numEdges    varint
//	canonOrder  numEdges varints (a permutation of 0…numEdges−1: the
//	            compile-time instance's canonical edge order)
//	numRegs     varint
//	out         varint (result register)
//	consts      varint count, then per constant: varint length +
//	            RatString bytes
//	ops         varint count, then per op: opcode byte + dst + a + b
//	            varints
//
// A plan snapshot (Engine.SavePlans) is the 9-byte magic "phomsnap1"
// followed by length-prefixed records.

const (
	planMagic    = "phomplan"
	planVersion  = 1
	snapMagic    = "phomsnap1"
	maxStructKey = 128     // sha256 hex is 64 bytes
	maxPlanEdges = 1 << 24 // edges per instance
	maxPlanOps   = 1 << 26 // instructions per program
	maxPlanConst = 1 << 20 // constant-pool entries
	// MaxPlanRecordBytes caps one encoded plan inside a snapshot.
	MaxPlanRecordBytes = 1 << 26
)

// PlanRecord is the serializable identity of one compiled plan: the
// flattened program plus everything a plan cache needs to serve it
// (structure key, canonical edge order of the compile-time instance,
// and the solver method the results report). Package core converts
// between PlanRecord and its CompiledPlan.
type PlanRecord struct {
	StructKey  string
	Method     uint8
	CanonOrder []int
	Program    *plan.Program
}

// AppendPlanRecord appends the canonical encoding of rec to b. The
// record must be well-formed (a validated program with a canonical
// order matching its edge count); malformed records are an error, not
// a silent corrupt encoding.
func AppendPlanRecord(b []byte, rec *PlanRecord) ([]byte, error) {
	p := rec.Program
	if p == nil {
		return nil, fmt.Errorf("graphio: plan record has no program")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("graphio: refusing to encode an invalid program: %v", err)
	}
	if len(rec.StructKey) == 0 || len(rec.StructKey) > maxStructKey {
		return nil, fmt.Errorf("graphio: structure key of %d bytes", len(rec.StructKey))
	}
	if len(rec.CanonOrder) != p.NumEdges {
		return nil, fmt.Errorf("graphio: canonical order of %d entries for %d edges", len(rec.CanonOrder), p.NumEdges)
	}
	b = append(b, planMagic...)
	b = binary.AppendUvarint(b, planVersion)
	b = binary.AppendUvarint(b, uint64(len(rec.StructKey)))
	b = append(b, rec.StructKey...)
	b = binary.AppendUvarint(b, uint64(rec.Method))
	b = binary.AppendUvarint(b, uint64(p.NumEdges))
	for _, ei := range rec.CanonOrder {
		if ei < 0 || ei >= p.NumEdges {
			return nil, fmt.Errorf("graphio: canonical order entry %d of %d", ei, p.NumEdges)
		}
		b = binary.AppendUvarint(b, uint64(ei))
	}
	b = binary.AppendUvarint(b, uint64(p.NumRegs))
	b = binary.AppendUvarint(b, uint64(p.Out))
	b = binary.AppendUvarint(b, uint64(len(p.Consts)))
	for _, c := range p.Consts {
		s := c.RatString()
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	b = binary.AppendUvarint(b, uint64(len(p.Ops)))
	for _, op := range p.Ops {
		b = append(b, byte(op.Code))
		b = binary.AppendUvarint(b, uint64(op.Dst))
		b = binary.AppendUvarint(b, uint64(op.A))
		b = binary.AppendUvarint(b, uint64(op.B))
	}
	return b, nil
}

// byteCursor walks an encoded record with bounds checking.
type byteCursor struct {
	data []byte
	off  int
}

func (c *byteCursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("graphio: truncated or malformed %s varint", what)
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) count(what string, max int) (int, error) {
	v, err := c.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, fmt.Errorf("graphio: %s %d exceeds limit %d", what, v, max)
	}
	return int(v), nil
}

func (c *byteCursor) bytes(what string, n int) ([]byte, error) {
	if c.off+n > len(c.data) {
		return nil, fmt.Errorf("graphio: truncated %s", what)
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *byteCursor) byteVal(what string) (byte, error) {
	if c.off >= len(c.data) {
		return 0, fmt.Errorf("graphio: truncated %s", what)
	}
	b := c.data[c.off]
	c.off++
	return b, nil
}

// DecodePlanRecord decodes one canonical plan record. The returned
// program has passed Validate and the canonical order is a verified
// permutation, so the record is safe to execute and to re-encode; the
// method byte is opaque here and validated by package core.
func DecodePlanRecord(data []byte) (*PlanRecord, error) {
	c := &byteCursor{data: data}
	magic, err := c.bytes("magic", len(planMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != planMagic {
		return nil, fmt.Errorf("graphio: not a plan record (bad magic)")
	}
	version, err := c.uvarint("version")
	if err != nil {
		return nil, err
	}
	if version != planVersion {
		return nil, fmt.Errorf("graphio: unsupported plan version %d (want %d)", version, planVersion)
	}
	keyLen, err := c.count("structure key length", maxStructKey)
	if err != nil {
		return nil, err
	}
	if keyLen == 0 {
		return nil, fmt.Errorf("graphio: empty structure key")
	}
	keyBytes, err := c.bytes("structure key", keyLen)
	if err != nil {
		return nil, err
	}
	method, err := c.uvarint("method")
	if err != nil {
		return nil, err
	}
	if method > 255 {
		return nil, fmt.Errorf("graphio: method %d out of range", method)
	}
	numEdges, err := c.count("edge count", maxPlanEdges)
	if err != nil {
		return nil, err
	}
	// Each canonical-order entry takes at least one byte, so a claimed
	// edge count beyond the remaining input is a truncation — reject it
	// before sizing any buffer by the claim.
	if numEdges > len(c.data)-c.off {
		return nil, fmt.Errorf("graphio: edge count %d exceeds remaining input", numEdges)
	}
	canonOrder := make([]int, 0, min(numEdges, 4096))
	seen := make([]bool, numEdges)
	for i := 0; i < numEdges; i++ {
		ei, err := c.uvarint("canonical order entry")
		if err != nil {
			return nil, err
		}
		if ei >= uint64(numEdges) || seen[ei] {
			return nil, fmt.Errorf("graphio: canonical order is not a permutation (entry %d)", ei)
		}
		seen[ei] = true
		canonOrder = append(canonOrder, int(ei))
	}
	numRegs, err := c.count("register count", maxPlanOps)
	if err != nil {
		return nil, err
	}
	out, err := c.uvarint("output register")
	if err != nil {
		return nil, err
	}
	numConsts, err := c.count("constant count", maxPlanConst)
	if err != nil {
		return nil, err
	}
	prog := &plan.Program{NumEdges: numEdges, NumRegs: numRegs, Out: uint32(out)}
	if out > uint64(numRegs) {
		return nil, fmt.Errorf("graphio: output register %d of %d", out, numRegs)
	}
	for i := 0; i < numConsts; i++ {
		sl, err := c.count("constant length", maxRatLen)
		if err != nil {
			return nil, err
		}
		sb, err := c.bytes("constant", sl)
		if err != nil {
			return nil, err
		}
		r, err := ParseRat(string(sb))
		if err != nil {
			return nil, fmt.Errorf("graphio: constant %d: %v", i, err)
		}
		prog.Consts = append(prog.Consts, r)
	}
	numOps, err := c.count("op count", maxPlanOps)
	if err != nil {
		return nil, err
	}
	// Each op takes at least four bytes (opcode + three varints).
	if numOps > (len(c.data)-c.off)/4 {
		return nil, fmt.Errorf("graphio: op count %d exceeds remaining input", numOps)
	}
	prog.Ops = make([]plan.Op, 0, min(numOps, 4096))
	for i := 0; i < numOps; i++ {
		code, err := c.byteVal("opcode")
		if err != nil {
			return nil, err
		}
		dst, err := c.uvarint("op destination")
		if err != nil {
			return nil, err
		}
		a, err := c.uvarint("op operand")
		if err != nil {
			return nil, err
		}
		bv, err := c.uvarint("op operand")
		if err != nil {
			return nil, err
		}
		const maxOperand = 1 << 32
		if dst >= maxOperand || a >= maxOperand || bv >= maxOperand {
			return nil, fmt.Errorf("graphio: op %d operand overflow", i)
		}
		prog.Ops = append(prog.Ops, plan.Op{Code: plan.OpCode(code), Dst: uint32(dst), A: uint32(a), B: uint32(bv)})
	}
	if c.off != len(data) {
		return nil, fmt.Errorf("graphio: %d trailing bytes after plan record", len(data)-c.off)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &PlanRecord{
		StructKey:  string(keyBytes),
		Method:     uint8(method),
		CanonOrder: canonOrder,
		Program:    prog,
	}, nil
}

// WritePlanSnapshot writes a snapshot container: the snapshot magic
// followed by each record length-prefixed.
func WritePlanSnapshot(w io.Writer, records [][]byte) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for _, rec := range records {
		if len(rec) > MaxPlanRecordBytes {
			return fmt.Errorf("graphio: plan record of %d bytes exceeds limit %d", len(rec), MaxPlanRecordBytes)
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(rec)))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// ReadPlanSnapshot reads a snapshot container, invoking fn for each
// record until EOF. A record that fails fn aborts the read with fn's
// error; truncated or oversized input is an error.
func ReadPlanSnapshot(r io.Reader, fn func(rec []byte) error) error {
	br := newByteReader(r)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("graphio: reading snapshot magic: %w", err)
	}
	if string(magic) != snapMagic {
		return fmt.Errorf("graphio: not a plan snapshot (bad magic)")
	}
	for {
		size, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return nil // clean end of snapshot
		}
		if err != nil {
			return fmt.Errorf("graphio: reading record length: %w", err)
		}
		if size > MaxPlanRecordBytes {
			return fmt.Errorf("graphio: plan record of %d bytes exceeds limit %d", size, MaxPlanRecordBytes)
		}
		// Copy in bounded chunks so memory grows with bytes actually
		// received, not with the length the stream claims — a stalled
		// or truncated source must not pin a MaxPlanRecordBytes buffer.
		var rec bytes.Buffer
		if _, err := io.CopyN(&rec, br, int64(size)); err != nil {
			return fmt.Errorf("graphio: truncated plan record: %w", err)
		}
		if err := fn(rec.Bytes()); err != nil {
			return err
		}
	}
}

// byteReader adapts an io.Reader for binary.ReadUvarint without
// double-buffering callers that already hand us a byte-oriented
// source.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

func (b *byteReader) Read(p []byte) (int, error) { return io.ReadFull(b.r, p) }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}
