package graphio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
)

const sample = `
# Example 2.2-style instance
vertices 4
edge 0 1 R
edge 1 2 S 1/2
edge 3 2 S 0.25
`

func TestParseProbGraph(t *testing.T) {
	p, err := ParseProbGraph(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if p.G.NumVertices() != 4 || p.G.NumEdges() != 3 {
		t.Fatalf("parsed %d vertices, %d edges", p.G.NumVertices(), p.G.NumEdges())
	}
	if pr, _ := p.EdgeProb(1, 2); pr.Cmp(graph.RatHalf) != 0 {
		t.Fatalf("edge 1->2 prob = %s", pr.RatString())
	}
	if pr, _ := p.EdgeProb(3, 2); pr.Cmp(graph.Rat("1/4")) != 0 {
		t.Fatalf("decimal probability parsed as %s", pr.RatString())
	}
	if pr, _ := p.EdgeProb(0, 1); pr.Cmp(graph.RatOne) != 0 {
		t.Fatal("unannotated edge must be certain")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                   // no vertices
		"edge 0 1 R",                         // edge before vertices
		"vertices 0",                         // empty graph
		"vertices 2\nvertices 2",             // duplicate directive
		"vertices 2\nedge 0 5 R",             // out of range
		"vertices 2\nedge 0 1 R zz",          // bad probability
		"vertices 2\nedge 0 1 R 2",           // probability > 1
		"vertices 2\nedge 0 1",               // missing label
		"vertices 2\nfoo",                    // unknown directive
		"vertices 2\nedge 0 1 R\nedge 0 1 S", // multi-edge
	}
	for _, s := range bad {
		if _, err := ParseProbGraph(strings.NewReader(s)); err == nil {
			t.Errorf("accepted bad input %q", s)
		}
	}
}

func TestParseGraphRejectsProbabilities(t *testing.T) {
	if _, err := ParseGraph(strings.NewReader("vertices 2\nedge 0 1 R 1/2")); err == nil {
		t.Fatal("query parser accepted a probability")
	}
	g, err := ParseGraph(strings.NewReader("vertices 2\nedge 0 1 R"))
	if err != nil || g.NumEdges() != 1 {
		t.Fatalf("query parse failed: %v", err)
	}
}

// TestTextRoundTrip: Write then Parse must reproduce the graph exactly,
// for random probabilistic graphs.
func TestTextRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		g := gen.RandInClass(r, graph.ClassAll, 1+r.Intn(8), []graph.Label{"R", "S"})
		p := gen.RandProb(r, g, 0.3)
		var buf bytes.Buffer
		if err := WriteProbGraph(&buf, p); err != nil {
			t.Fatal(err)
		}
		q, err := ParseProbGraph(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\n%s", err, buf.String())
		}
		if p.String() != q.String() {
			t.Fatalf("round trip changed the graph:\nbefore %s\nafter  %s", p, q)
		}
	}
}

// TestJSONRoundTrip mirrors the text round trip for JSON.
func TestJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		g := gen.RandInClass(r, graph.ClassAll, 1+r.Intn(8), []graph.Label{"R", "S"})
		p := gen.RandProb(r, g, 0.3)
		data, err := MarshalProbGraphJSON(p)
		if err != nil {
			t.Fatal(err)
		}
		q, err := UnmarshalProbGraphJSON(data)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != q.String() {
			t.Fatalf("JSON round trip changed the graph")
		}
	}
}

func TestWriteDOT(t *testing.T) {
	p, _ := ParseProbGraph(strings.NewReader(sample))
	var buf bytes.Buffer
	if err := WriteDOT(&buf, p, "H"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph H {", "0 -> 1", "style=dashed", "1/2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
