package graphio

import (
	"bytes"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"phom/internal/graph"
	"phom/internal/plan"
)

// buildTestProgram lowers a small Components-of-Consts plan plus a
// loaded edge, exercising every opcode.
func buildTestProgram(t *testing.T) *plan.Program {
	t.Helper()
	b := plan.NewBuilder(3)
	p0 := b.Load(0)
	om := b.OneMinus(p0)
	c := b.Const(big.NewRat(2, 7))
	m := b.Mul(om, c)
	p2 := b.Load(2)
	out := b.Add(m, p2)
	prog, err := b.Finish(out)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func testRecord(t *testing.T) *PlanRecord {
	t.Helper()
	return &PlanRecord{
		StructKey:  strings.Repeat("ab", 32),
		Method:     3,
		CanonOrder: []int{2, 0, 1},
		Program:    buildTestProgram(t),
	}
}

func TestPlanRecordRoundTrip(t *testing.T) {
	rec := testRecord(t)
	data, err := AppendPlanRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlanRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.StructKey != rec.StructKey || got.Method != rec.Method {
		t.Fatalf("identity changed: %+v", got)
	}
	for i, ei := range rec.CanonOrder {
		if got.CanonOrder[i] != ei {
			t.Fatalf("canonical order changed at %d", i)
		}
	}
	probs := []*big.Rat{graph.Rat("1/2"), graph.Rat("1/3"), graph.Rat("1/5")}
	want, err := rec.Program.Exec(probs)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Program.Exec(probs)
	if err != nil {
		t.Fatal(err)
	}
	if want.RatString() != have.RatString() {
		t.Fatalf("decoded program diverged: %s vs %s", have.RatString(), want.RatString())
	}
	// Canonical: re-encoding is byte-identical.
	again, err := AppendPlanRecord(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding changed bytes")
	}
}

func TestAppendPlanRecordRejectsMalformed(t *testing.T) {
	good := testRecord(t)
	cases := []struct {
		name   string
		mutate func(*PlanRecord)
	}{
		{"no program", func(r *PlanRecord) { r.Program = nil }},
		{"empty struct key", func(r *PlanRecord) { r.StructKey = "" }},
		{"oversized struct key", func(r *PlanRecord) { r.StructKey = strings.Repeat("x", maxStructKey+1) }},
		{"order length mismatch", func(r *PlanRecord) { r.CanonOrder = []int{0} }},
		{"order out of range", func(r *PlanRecord) { r.CanonOrder = []int{0, 1, 9} }},
		{"invalid program", func(r *PlanRecord) {
			r.Program = &plan.Program{NumEdges: 3, NumRegs: 1, Ops: []plan.Op{{Code: 99}}}
		}},
	}
	for _, tc := range cases {
		rec := *good
		rec.CanonOrder = append([]int(nil), good.CanonOrder...)
		tc.mutate(&rec)
		if _, err := AppendPlanRecord(nil, &rec); err == nil {
			t.Errorf("%s: encoded a malformed record", tc.name)
		}
	}
}

func TestDecodePlanRecordRejectsCorruption(t *testing.T) {
	data, err := AppendPlanRecord(nil, testRecord(t))
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix length must error, never panic.
	for i := 0; i < len(data); i++ {
		if _, err := DecodePlanRecord(data[:i]); err == nil {
			t.Fatalf("accepted a %d-byte truncation", i)
		}
	}
	// Trailing garbage is rejected (the record is self-delimiting).
	if _, err := DecodePlanRecord(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	// Every single-byte flip either errors or round-trips to a valid
	// record; it must never panic (the fuzz target expands on this).
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		rec, err := DecodePlanRecord(mut)
		if err != nil {
			continue
		}
		if _, err := AppendPlanRecord(nil, rec); err != nil {
			t.Fatalf("flip at %d decoded to an unencodable record: %v", i, err)
		}
	}
}

func TestPlanSnapshotRoundTrip(t *testing.T) {
	rec := testRecord(t)
	one, err := AppendPlanRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlanSnapshot(&buf, [][]byte{one, one, one}); err != nil {
		t.Fatal(err)
	}
	var got int
	err = ReadPlanSnapshot(&buf, func(b []byte) error {
		if !bytes.Equal(b, one) {
			t.Fatal("record changed inside the snapshot")
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("read %d records, wrote 3", got)
	}
	// Empty snapshots are valid.
	buf.Reset()
	if err := WritePlanSnapshot(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := ReadPlanSnapshot(&buf, func([]byte) error { t.Fatal("record in empty snapshot"); return nil }); err != nil {
		t.Fatal(err)
	}
	// Bad magic and truncated records error out.
	if err := ReadPlanSnapshot(strings.NewReader("phomsnapX"), func([]byte) error { return nil }); err == nil {
		t.Fatal("accepted a bad snapshot magic")
	}
	var trunc bytes.Buffer
	if err := WritePlanSnapshot(&trunc, [][]byte{one}); err != nil {
		t.Fatal(err)
	}
	short := trunc.Bytes()[:trunc.Len()-3]
	if err := ReadPlanSnapshot(bytes.NewReader(short), func([]byte) error { return nil }); err == nil {
		t.Fatal("accepted a truncated snapshot")
	}
}

// TestStructKeyJobMatchesJobKeys pins the invariant the warm-start path
// depends on: the structure key core stamps on compiled plans
// (StructKeyJob) is the key the engine derives for the same job
// (JobKeys), for any edge insertion order.
func TestStructKeyJobMatchesJobKeys(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(6)
		g := graph.New(n)
		type edge struct{ from, to int }
		var edges []edge
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from != to && r.Intn(2) == 0 {
					edges = append(edges, edge{from, to})
				}
			}
		}
		r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for _, e := range edges {
			g.MustAddEdge(graph.Vertex(e.from), graph.Vertex(e.to), "R")
		}
		p := graph.NewProbGraph(g)
		for i := 0; i < g.NumEdges(); i++ {
			if err := p.SetProb(i, big.NewRat(int64(1+r.Intn(16)), 17)); err != nil {
				t.Fatal(err)
			}
		}
		queryCanon := []string{"g;n=2;0>1:\"R\""}
		fp := "brute=20;match=65536;nofallback=false"
		// JobKeys takes the full result fingerprint and the structure
		// fingerprint separately; the structure hash consumes only the
		// latter, which is what StructKeyJob must match.
		_, structKey, order := JobKeys(queryCanon, p, fp+";prec=fast;tol=-", fp)
		gotKey, gotOrder := StructKeyJob(queryCanon, g, fp)
		if gotKey != structKey {
			t.Fatalf("trial %d: StructKeyJob %s, JobKeys %s", trial, gotKey, structKey)
		}
		for i := range order {
			if order[i] != gotOrder[i] {
				t.Fatalf("trial %d: canonical orders diverge at %d", trial, i)
			}
		}
	}
}
