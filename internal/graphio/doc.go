// Package graphio serializes query graphs and probabilistic instance
// graphs to and from a small line-oriented text format, JSON, and
// Graphviz DOT (export only). The text format is what the cmd/phom CLI
// reads:
//
//	# comment
//	vertices 4
//	edge 0 1 R        # certain edge with label R
//	edge 1 2 S 1/2    # probability 1/2
//	edge 2 3 S 0.25   # decimal probabilities are parsed exactly
//
// Labels are arbitrary non-space tokens; use "_" for unlabeled graphs.
package graphio
