package graphio

import (
	"bytes"
	"math/big"
	"strings"
	"testing"

	"phom/internal/graph"
	"phom/internal/plan"
)

// FuzzParseProbGraph: the text parser must never panic — malformed input
// errors cleanly — and accepted input must round-trip through
// WriteProbGraph with a stable canonical form.
func FuzzParseProbGraph(f *testing.F) {
	f.Add("vertices 4\nedge 0 1 R 1/2\nedge 1 2 S\nedge 2 3 S 0.25\n")
	f.Add("vertices 1\n")
	f.Add("# comment\nvertices 2\nedge 0 1 _ 1\n")
	f.Add("vertices 2\nedge 0 1 R 3/2\n")    // probability out of range
	f.Add("vertices 2\nedge 1 7 R\n")        // endpoint out of range
	f.Add("vertices 2\nedge 0 1 R 1e999\n")  // huge exponent
	f.Add("vertices 999999999\n")            // huge vertex count
	f.Add("edge 0 1 R\n")                    // edge before vertices
	f.Add("vertices 2\nvertices 2\n")        // duplicate directive
	f.Add("vertices two\n")                  // malformed count
	f.Add("vertices 3\nedge 0 1 R .5e-2\n")  // exponent form
	f.Add("vertices 2\nedge 0 1 \"R S\"\n")  // quote in label token
	f.Add("vertices 2\nedge 0 1 R 0.5 junk") // arity error
	f.Fuzz(func(t *testing.T, data string) {
		pg, err := ParseProbGraph(strings.NewReader(data))
		// ParseGraph shares the scanner; it must be panic-free as well.
		_, _ = ParseGraph(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := pg.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid probabilistic graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteProbGraph(&buf, pg); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		pg2, err := ParseProbGraph(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip re-parse failed: %v\ninput: %q", err, buf.String())
		}
		if CanonicalProbGraph(pg) != CanonicalProbGraph(pg2) {
			t.Fatalf("round-trip changed the canonical form:\n%s\nvs\n%s",
				CanonicalProbGraph(pg), CanonicalProbGraph(pg2))
		}
		if CanonicalGraph(pg.G) != CanonicalGraph(pg2.G) {
			t.Fatalf("round-trip changed the structural canonical form")
		}
	})
}

// FuzzDecodePlanRecord: the plan decoder must never panic or demand
// unbounded memory on corrupt snapshots — malformed records error
// cleanly — and accepted records must re-encode canonically (decode ∘
// encode ∘ decode is the identity) and execute without panicking.
func FuzzDecodePlanRecord(f *testing.F) {
	// Seed with a well-formed record and some near-misses.
	b := plan.NewBuilder(2)
	p0 := b.Load(0)
	om := b.OneMinus(p0)
	p1 := b.Load(1)
	m := b.Mul(om, p1)
	c := b.Const(big.NewRat(1, 3))
	out := b.Add(m, c)
	prog, err := b.Finish(out)
	if err != nil {
		f.Fatal(err)
	}
	seed, err := AppendPlanRecord(nil, &PlanRecord{
		StructKey:  strings.Repeat("f0", 32),
		Method:     2,
		CanonOrder: []int{1, 0},
		Program:    prog,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte("phomplan"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodePlanRecord(data)
		if err != nil {
			return
		}
		// Accepted records are valid by contract: re-encoding must
		// succeed and be stable, and the program must execute.
		enc, err := AppendPlanRecord(nil, rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		rec2, err := DecodePlanRecord(enc)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		enc2, err := AppendPlanRecord(nil, rec2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("round trip is not stable")
		}
		probs := make([]*big.Rat, rec.Program.NumEdges)
		for i := range probs {
			probs[i] = big.NewRat(1, 2)
		}
		if _, err := rec.Program.Exec(probs); err != nil {
			t.Fatalf("validated program failed to execute: %v", err)
		}
	})
}

// FuzzUnmarshalProbGraphJSON: the JSON parser must never panic, and
// accepted graphs must round-trip through MarshalProbGraphJSON with the
// same canonical form.
func FuzzUnmarshalProbGraphJSON(f *testing.F) {
	f.Add([]byte(`{"vertices": 3, "edges": [{"from":0,"to":1,"label":"R","prob":"1/2"},{"from":1,"to":2,"label":"S"}]}`))
	f.Add([]byte(`{"vertices": 0, "edges": []}`))
	f.Add([]byte(`{"vertices": 2, "edges": [{"from":0,"to":9,"label":"R"}]}`))
	f.Add([]byte(`{"vertices": 2, "edges": [{"from":0,"to":1,"label":"R","prob":"1e99999"}]}`))
	f.Add([]byte(`{"vertices": 2000000000}`))
	f.Add([]byte(`{"vertices": 2, "edges": [{"from":0,"to":1,"label":"R"},{"from":0,"to":1,"label":"S"}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		pg, err := UnmarshalProbGraphJSON(data)
		if err != nil {
			return
		}
		if err := pg.Validate(); err != nil {
			t.Fatalf("JSON parser accepted an invalid probabilistic graph: %v", err)
		}
		out, err := MarshalProbGraphJSON(pg)
		if err != nil {
			t.Fatalf("marshal-back failed: %v", err)
		}
		pg2, err := UnmarshalProbGraphJSON(out)
		if err != nil {
			t.Fatalf("round-trip re-parse failed: %v\njson: %s", err, out)
		}
		if CanonicalProbGraph(pg) != CanonicalProbGraph(pg2) {
			t.Fatalf("JSON round-trip changed the canonical form")
		}
	})
}

// TestParseCanonicalizeInsertionOrderStable: parsing the same edge set
// listed in different orders yields identical canonical forms, identical
// StructKeys, and canonical edge orders that point at matching edges.
func TestParseCanonicalizeInsertionOrderStable(t *testing.T) {
	a := "vertices 4\nedge 0 1 R 1/2\nedge 1 2 S\nedge 2 3 S 1/4\n"
	b := "vertices 4\nedge 2 3 S 1/4\nedge 0 1 R 1/2\nedge 1 2 S\n"
	pa, err := ParseProbGraph(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ParseProbGraph(strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalProbGraph(pa) != CanonicalProbGraph(pb) {
		t.Error("canonical prob form depends on insertion order")
	}
	if CanonicalGraph(pa.G) != CanonicalGraph(pb.G) {
		t.Error("canonical structural form depends on insertion order")
	}
	ka := StructKey([]string{"q"}, CanonicalGraph(pa.G), "o")
	kb := StructKey([]string{"q"}, CanonicalGraph(pb.G), "o")
	if ka != kb {
		t.Error("StructKey depends on insertion order")
	}
	oa, ob := CanonicalEdgeOrder(pa.G), CanonicalEdgeOrder(pb.G)
	if len(oa) != len(ob) {
		t.Fatal("canonical edge orders differ in length")
	}
	for k := range oa {
		ea, eb := pa.G.Edge(oa[k]), pb.G.Edge(ob[k])
		if ea != eb {
			t.Errorf("canonical rank %d: %v vs %v", k, ea, eb)
		}
		if pa.Prob(oa[k]).Cmp(pb.Prob(ob[k])) != 0 {
			t.Errorf("canonical rank %d: probabilities diverge", k)
		}
	}
}

func TestStructKeyStripsProbabilities(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, "R")
	g.MustAddEdge(1, 2, "S")
	h1 := graph.NewProbGraph(g.Clone())
	h1.MustSetEdgeProb(0, 1, graph.Rat("1/2"))
	h2 := graph.NewProbGraph(g.Clone())
	h2.MustSetEdgeProb(1, 2, graph.Rat("1/3"))
	qc := []string{CanonicalGraph(graph.Path1WP("R"))}
	if JobKey(qc, CanonicalProbGraph(h1), "o") == JobKey(qc, CanonicalProbGraph(h2), "o") {
		t.Error("JobKey must distinguish probability assignments")
	}
	k1 := StructKey(qc, CanonicalGraph(h1.G), "o")
	k2 := StructKey(qc, CanonicalGraph(h2.G), "o")
	if k1 != k2 {
		t.Error("StructKey must ignore probability assignments")
	}
	if k1 == JobKey(qc, CanonicalGraph(h1.G), "o") {
		t.Error("StructKey and JobKey must live in disjoint domains")
	}
	other := StructKey(qc, CanonicalGraph(graph.Path1WP("R", "S", "S")), "o")
	if k1 == other {
		t.Error("StructKey must distinguish structures")
	}
	if StructKey(qc, CanonicalGraph(h1.G), "o'") == k1 {
		t.Error("StructKey must incorporate the options fingerprint")
	}
}

func TestParserResourceCaps(t *testing.T) {
	if _, err := ParseProbGraph(strings.NewReader("vertices 99999999\n")); err == nil {
		t.Error("text parser accepted an absurd vertex count")
	}
	if _, err := UnmarshalProbGraphJSON([]byte(`{"vertices": 99999999}`)); err == nil {
		t.Error("JSON parser accepted an absurd vertex count")
	}
	if _, err := ParseProbGraph(strings.NewReader("vertices 2\nedge 0 1 R 1e99999\n")); err == nil {
		t.Error("text parser accepted a huge exponent")
	}
	if _, err := ParseRat("0." + strings.Repeat("1", 5000)); err == nil {
		t.Error("ParseRat accepted an oversized token")
	}
	if p, err := ParseRat("2.5e-3"); err != nil || p.Cmp(graph.Rat("1/400")) != 0 {
		t.Errorf("ParseRat rejected a legitimate exponent form: %v %v", p, err)
	}
}

// TestJobKeysMatchesReferenceEquivalence: JobKeys (the engine's
// streamed one-pass hashing) and the string-based JobKey/StructKey
// reference forms hash different byte streams, so their VALUES differ —
// but they must induce the same equivalence on jobs: equal under one
// scheme iff equal under the other. This pins the property that makes
// having two schemes safe as long as a cache uses one consistently.
func TestJobKeysMatchesReferenceEquivalence(t *testing.T) {
	build := func(order []int, probs map[int]string) *graph.ProbGraph {
		g := graph.New(4)
		edges := [][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}}
		labels := []graph.Label{"R", "S", "S"}
		for _, i := range order {
			g.MustAddEdge(edges[i][0], edges[i][1], labels[i])
		}
		pg := graph.NewProbGraph(g)
		for i, p := range probs {
			pg.MustSetEdgeProb(edges[i][0], edges[i][1], graph.Rat(p))
		}
		return pg
	}
	qc := []string{CanonicalGraph(graph.Path1WP("R"))}
	cases := []*graph.ProbGraph{
		build([]int{0, 1, 2}, map[int]string{1: "1/2"}),
		build([]int{2, 0, 1}, map[int]string{1: "0.5"}), // same job, permuted + decimal
		build([]int{0, 1, 2}, map[int]string{1: "1/3"}), // same structure, other probs
		build([]int{0, 1, 2}, map[int]string{2: "1/2"}), // other structure? no — same edges, prob moved
	}
	for i, a := range cases {
		for j, b := range cases {
			refJob := JobKey(qc, CanonicalProbGraph(a), "o") == JobKey(qc, CanonicalProbGraph(b), "o")
			refStruct := StructKey(qc, CanonicalGraph(a.G), "o") == StructKey(qc, CanonicalGraph(b.G), "o")
			ja, sa, _ := JobKeys(qc, a, "o", "o")
			jb, sb, _ := JobKeys(qc, b, "o", "o")
			if (ja == jb) != refJob {
				t.Errorf("cases %d,%d: job-key equivalence diverges (streamed %v, reference %v)", i, j, ja == jb, refJob)
			}
			if (sa == sb) != refStruct {
				t.Errorf("cases %d,%d: struct-key equivalence diverges (streamed %v, reference %v)", i, j, sa == sb, refStruct)
			}
		}
	}
}
