package graphio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"strconv"
	"strings"

	"phom/internal/graph"
)

// MaxParseVertices caps the vertex count accepted by the text and JSON
// parsers. A "vertices" directive is a handful of bytes but makes the
// graph constructor allocate per-vertex adjacency state, so without a
// cap a tiny malicious input could demand gigabytes (the parsers back
// the HTTP serving layer). Raise it here if a workload ever legitimately
// needs more.
const MaxParseVertices = 1 << 20

// maxRatLen caps the length of a probability token, and maxRatExpDigits
// the number of digits of a decimal exponent inside one: big.Rat parses
// "1e9999999999" by materializing the power of ten, so unbounded
// exponents are another tiny-input/huge-allocation vector.
const (
	maxRatLen       = 4096
	maxRatExpDigits = 4
)

// ParseRat parses an exact rational probability token ("1/2", "0.35",
// "1", "2.5e-3") with the malicious-input guards of this package: the
// token length and any decimal exponent are bounded before big.Rat
// allocates. It does not enforce the [0,1] probability range — that is
// the job of graph.ProbGraph.SetProb.
func ParseRat(s string) (*big.Rat, error) {
	if len(s) > maxRatLen {
		return nil, fmt.Errorf("graphio: rational token longer than %d bytes", maxRatLen)
	}
	if i := strings.IndexAny(s, "eE"); i >= 0 {
		exp := s[i+1:]
		if len(exp) > 0 && (exp[0] == '+' || exp[0] == '-') {
			exp = exp[1:]
		}
		if len(exp) > maxRatExpDigits {
			return nil, fmt.Errorf("graphio: exponent %q too large", s[i+1:])
		}
	}
	p, ok := new(big.Rat).SetString(s)
	if !ok {
		return nil, fmt.Errorf("graphio: bad rational %q", s)
	}
	return p, nil
}

// ParseEdgeKey splits a "from>to" edge designator (the wire form used
// by phomserve's /reweight probability maps and cmd/phom's -setprob
// overrides — one parser, so the two cannot diverge). Whitespace
// around either endpoint is ignored.
func ParseEdgeKey(key string) (from, to int, ok bool) {
	a, b, found := strings.Cut(key, ">")
	if !found {
		return 0, 0, false
	}
	from, err1 := strconv.Atoi(strings.TrimSpace(a))
	to, err2 := strconv.Atoi(strings.TrimSpace(b))
	return from, to, err1 == nil && err2 == nil
}

// ParseProbGraph reads the text format from r.
func ParseProbGraph(r io.Reader) (*graph.ProbGraph, error) {
	var g *graph.Graph
	type probEdge struct {
		idx int
		p   *big.Rat
	}
	var probs []probEdge
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "vertices":
			if g != nil {
				return nil, fmt.Errorf("graphio: line %d: duplicate vertices directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: vertices takes one argument", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("graphio: line %d: bad vertex count %q", lineNo, fields[1])
			}
			if n > MaxParseVertices {
				return nil, fmt.Errorf("graphio: line %d: vertex count %d exceeds limit %d", lineNo, n, MaxParseVertices)
			}
			g = graph.New(n)
		case "edge":
			if g == nil {
				return nil, fmt.Errorf("graphio: line %d: edge before vertices", lineNo)
			}
			if len(fields) != 4 && len(fields) != 5 {
				return nil, fmt.Errorf("graphio: line %d: edge takes 3 or 4 arguments", lineNo)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graphio: line %d: bad endpoints", lineNo)
			}
			if err := g.AddEdge(graph.Vertex(from), graph.Vertex(to), graph.Label(fields[3])); err != nil {
				return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
			}
			if len(fields) == 5 {
				p, err := ParseRat(fields[4])
				if err != nil {
					return nil, fmt.Errorf("graphio: line %d: bad probability %q: %v", lineNo, fields[4], err)
				}
				probs = append(probs, probEdge{idx: g.NumEdges() - 1, p: p})
			}
		default:
			return nil, fmt.Errorf("graphio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graphio: no vertices directive")
	}
	pg := graph.NewProbGraph(g)
	for _, pe := range probs {
		if err := pg.SetProb(pe.idx, pe.p); err != nil {
			return nil, err
		}
	}
	return pg, nil
}

// ParseGraph reads the text format from r, rejecting probability
// annotations (query graphs are deterministic).
func ParseGraph(r io.Reader) (*graph.Graph, error) {
	pg, err := ParseProbGraph(r)
	if err != nil {
		return nil, err
	}
	for i := 0; i < pg.G.NumEdges(); i++ {
		if pg.Prob(i).Cmp(graph.RatOne) != 0 {
			return nil, fmt.Errorf("graphio: query graph has a probability on edge %d", i)
		}
	}
	return pg.G, nil
}

// WriteProbGraph writes p in the text format.
func WriteProbGraph(w io.Writer, p *graph.ProbGraph) error {
	if _, err := fmt.Fprintf(w, "vertices %d\n", p.G.NumVertices()); err != nil {
		return err
	}
	for i, e := range p.G.Edges() {
		pr := p.Prob(i)
		if pr.Cmp(graph.RatOne) == 0 {
			if _, err := fmt.Fprintf(w, "edge %d %d %s\n", e.From, e.To, e.Label); err != nil {
				return err
			}
		} else if _, err := fmt.Fprintf(w, "edge %d %d %s %s\n", e.From, e.To, e.Label, pr.RatString()); err != nil {
			return err
		}
	}
	return nil
}

// WriteGraph writes g in the text format.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	return WriteProbGraph(w, graph.NewProbGraph(g))
}

// jsonGraph is the JSON wire form.
type jsonGraph struct {
	Vertices int        `json:"vertices"`
	Edges    []jsonEdge `json:"edges"`
}

type jsonEdge struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Label string `json:"label"`
	Prob  string `json:"prob,omitempty"` // rational string; omitted = 1
}

// MarshalProbGraphJSON encodes p as JSON.
func MarshalProbGraphJSON(p *graph.ProbGraph) ([]byte, error) {
	jg := jsonGraph{Vertices: p.G.NumVertices()}
	for i, e := range p.G.Edges() {
		je := jsonEdge{From: int(e.From), To: int(e.To), Label: string(e.Label)}
		if pr := p.Prob(i); pr.Cmp(graph.RatOne) != 0 {
			je.Prob = pr.RatString()
		}
		jg.Edges = append(jg.Edges, je)
	}
	return json.MarshalIndent(jg, "", "  ")
}

// UnmarshalProbGraphJSON decodes JSON produced by MarshalProbGraphJSON.
func UnmarshalProbGraphJSON(data []byte) (*graph.ProbGraph, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, err
	}
	if jg.Vertices < 1 {
		return nil, fmt.Errorf("graphio: bad vertex count %d", jg.Vertices)
	}
	if jg.Vertices > MaxParseVertices {
		return nil, fmt.Errorf("graphio: vertex count %d exceeds limit %d", jg.Vertices, MaxParseVertices)
	}
	g := graph.New(jg.Vertices)
	type probEdge struct {
		idx int
		p   *big.Rat
	}
	var probs []probEdge
	for _, je := range jg.Edges {
		if err := g.AddEdge(graph.Vertex(je.From), graph.Vertex(je.To), graph.Label(je.Label)); err != nil {
			return nil, err
		}
		if je.Prob != "" {
			p, err := ParseRat(je.Prob)
			if err != nil {
				return nil, fmt.Errorf("graphio: bad probability %q: %v", je.Prob, err)
			}
			probs = append(probs, probEdge{idx: g.NumEdges() - 1, p: p})
		}
	}
	pg := graph.NewProbGraph(g)
	for _, pe := range probs {
		if err := pg.SetProb(pe.idx, pe.p); err != nil {
			return nil, err
		}
	}
	return pg, nil
}

// WriteDOT renders p as a Graphviz digraph; uncertain edges are dashed
// and annotated with their probability, matching the figures of the
// paper.
func WriteDOT(w io.Writer, p *graph.ProbGraph, name string) error {
	if name == "" {
		name = "H"
	}
	if _, err := fmt.Fprintf(w, "digraph %s {\n", name); err != nil {
		return err
	}
	for v := 0; v < p.G.NumVertices(); v++ {
		if _, err := fmt.Fprintf(w, "  %d;\n", v); err != nil {
			return err
		}
	}
	for i, e := range p.G.Edges() {
		attrs := fmt.Sprintf("label=%q", string(e.Label))
		if pr := p.Prob(i); pr.Cmp(graph.RatOne) != 0 {
			attrs = fmt.Sprintf("label=\"%s:%s\", style=dashed", e.Label, pr.RatString())
		}
		if _, err := fmt.Fprintf(w, "  %d -> %d [%s];\n", e.From, e.To, attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
