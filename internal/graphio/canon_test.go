package graphio

import (
	"strings"
	"testing"

	"phom/internal/graph"
)

func TestCanonicalGraphOrderIndependent(t *testing.T) {
	a := graph.New(3)
	a.MustAddEdge(0, 1, "R")
	a.MustAddEdge(1, 2, "S")
	b := graph.New(3)
	b.MustAddEdge(1, 2, "S")
	b.MustAddEdge(0, 1, "R")
	if CanonicalGraph(a) != CanonicalGraph(b) {
		t.Fatalf("insertion order changed canonical form:\n%s\n%s", CanonicalGraph(a), CanonicalGraph(b))
	}
}

func TestCanonicalGraphDistinguishes(t *testing.T) {
	base := graph.New(3)
	base.MustAddEdge(0, 1, "R")

	moreVertices := graph.New(4)
	moreVertices.MustAddEdge(0, 1, "R")

	otherLabel := graph.New(3)
	otherLabel.MustAddEdge(0, 1, "S")

	otherEdge := graph.New(3)
	otherEdge.MustAddEdge(1, 0, "R")

	for name, g := range map[string]*graph.Graph{
		"vertex count": moreVertices,
		"label":        otherLabel,
		"direction":    otherEdge,
	} {
		if CanonicalGraph(base) == CanonicalGraph(g) {
			t.Errorf("%s not reflected in canonical form %q", name, CanonicalGraph(g))
		}
	}
}

func TestCanonicalProbGraphNormalizesRationals(t *testing.T) {
	mk := func(p string) *graph.ProbGraph {
		g := graph.New(2)
		g.MustAddEdge(0, 1, "R")
		pg := graph.NewProbGraph(g)
		pg.MustSetEdgeProb(0, 1, graph.Rat(p))
		return pg
	}
	if CanonicalProbGraph(mk("0.5")) != CanonicalProbGraph(mk("1/2")) {
		t.Fatal("equal rationals canonicalize differently")
	}
	if CanonicalProbGraph(mk("1/2")) == CanonicalProbGraph(mk("1/3")) {
		t.Fatal("distinct probabilities canonicalize identically")
	}
}

func TestCanonicalProbVsPlainGraphDistinct(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, "R")
	if CanonicalGraph(g) == CanonicalProbGraph(graph.NewProbGraph(g)) {
		t.Fatal("graph and prob-graph canonical forms collide")
	}
}

func TestCanonicalGraphQuotesLabels(t *testing.T) {
	// A label containing the serialization separators must not collide
	// with a structurally different graph.
	tricky := graph.New(3)
	tricky.MustAddEdge(0, 1, `R";2>1:"S`)
	plain := graph.New(3)
	plain.MustAddEdge(0, 1, "R")
	plain.MustAddEdge(2, 1, "S")
	if CanonicalGraph(tricky) == CanonicalGraph(plain) {
		t.Fatal("label injection collides with a real edge list")
	}
}

func TestJobKey(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, "R")
	inst := CanonicalProbGraph(graph.NewProbGraph(g))
	q := CanonicalGraph(g)

	k1 := JobKey([]string{q}, inst, "opts")
	if len(k1) != 64 || strings.ToLower(k1) != k1 {
		t.Fatalf("key %q is not lowercase sha256 hex", k1)
	}
	if k1 != JobKey([]string{q}, inst, "opts") {
		t.Fatal("JobKey not deterministic")
	}
	if k1 == JobKey([]string{q}, inst, "opts2") {
		t.Fatal("options fingerprint ignored")
	}
	if k1 == JobKey([]string{q, q}, inst, "opts") {
		t.Fatal("duplicate disjunct ignored")
	}
	if k1 == JobKey(nil, inst, "opts") {
		t.Fatal("missing query ignored")
	}
	// Length prefixes prevent concatenation ambiguity between sections.
	if JobKey([]string{"a"}, "b", "c") == JobKey([]string{"ab"}, "", "c") {
		t.Fatal("section boundaries are ambiguous")
	}
}
