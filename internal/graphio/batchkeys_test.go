package graphio

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/graph"
)

// randProbInstance builds a random labeled graph with random rational
// probabilities, shuffled insertion order.
func randProbInstance(r *rand.Rand, n int) *graph.ProbGraph {
	g := graph.New(n)
	type edge struct{ from, to int }
	var edges []edge
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from != to && r.Intn(2) == 0 {
				edges = append(edges, edge{from, to})
			}
		}
	}
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		g.MustAddEdge(graph.Vertex(e.from), graph.Vertex(e.to), "R")
	}
	p := graph.NewProbGraph(g)
	for i := 0; i < g.NumEdges(); i++ {
		if err := p.SetProb(i, big.NewRat(int64(1+r.Intn(16)), 17)); err != nil {
			panic(err)
		}
	}
	return p
}

// TestBatchJobKeysMatchesJobKeys pins the batched keying's contract:
// every lane's job key, the structure key and the canonical order are
// byte-identical to independent JobKeys calls — including for a lane
// that does not share the batch's underlying graph (the unamortized
// fallback path).
func TestBatchJobKeysMatchesJobKeys(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	queryCanon := []string{"g;n=2;0>1:\"R\""}
	fp := "brute=20;match=65536;nofallback=false;prec=auto;tol=1e-09"
	sfp := "brute=20;match=65536;nofallback=false"
	for trial := 0; trial < 30; trial++ {
		base := randProbInstance(r, 2+r.Intn(6))
		lanes := []*graph.ProbGraph{base}
		for k := 0; k < 4; k++ {
			lane := base.CloneProbs()
			for i := 0; i < lane.G.NumEdges(); i++ {
				if err := lane.SetProb(i, big.NewRat(int64(r.Intn(18)), 17)); err != nil {
					t.Fatal(err)
				}
			}
			lanes = append(lanes, lane)
		}
		// A foreign lane: same probabilities, separate graph value.
		lanes = append(lanes, base.Clone())

		jobKeys, structKey, order := BatchJobKeys(queryCanon, lanes, fp, sfp)
		if len(jobKeys) != len(lanes) {
			t.Fatalf("trial %d: %d keys for %d lanes", trial, len(jobKeys), len(lanes))
		}
		for k, lane := range lanes {
			wantJob, wantStruct, wantOrder := JobKeys(queryCanon, lane, fp, sfp)
			if jobKeys[k] != wantJob {
				t.Fatalf("trial %d lane %d: batch job key %s != %s", trial, k, jobKeys[k], wantJob)
			}
			if k == 0 {
				if structKey != wantStruct {
					t.Fatalf("trial %d: batch struct key %s != %s", trial, structKey, wantStruct)
				}
				for i := range wantOrder {
					if order[i] != wantOrder[i] {
						t.Fatalf("trial %d: canonical orders diverge at %d", trial, i)
					}
				}
			}
		}
		// The deep-cloned lane carries the same probabilities as lane 0,
		// so their job keys must also collide (keying is structural, not
		// pointer-based).
		if jobKeys[len(lanes)-1] != jobKeys[0] {
			t.Fatalf("trial %d: equal jobs keyed differently", trial)
		}
	}
}

// TestBatchJobKeysEmpty: no lanes, no keys.
func TestBatchJobKeysEmpty(t *testing.T) {
	jobKeys, structKey, order := BatchJobKeys(nil, nil, "fp", "sfp")
	if jobKeys != nil || structKey != "" || order != nil {
		t.Fatalf("empty batch produced (%v, %q, %v)", jobKeys, structKey, order)
	}
}

// TestCloneProbsIndependence pins the aliasing contract CloneProbs
// gives the batch lanes: the underlying graph is shared by value, while
// probability updates on a lane never leak into its siblings.
func TestCloneProbsIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	base := randProbInstance(r, 5)
	lane := base.CloneProbs()
	if lane.G != base.G {
		t.Fatal("CloneProbs must share the underlying graph value")
	}
	before := base.Prob(0).RatString()
	if err := lane.SetProb(0, big.NewRat(1, 13)); err != nil {
		t.Fatal(err)
	}
	if base.Prob(0).RatString() != before {
		t.Fatal("SetProb on a clone mutated the base assignment")
	}
	if lane.Prob(0).RatString() != "1/13" {
		t.Fatalf("clone probability not updated: %s", lane.Prob(0).RatString())
	}
}

// TestOptimizedProgramRoundTrips is the forward-compat regression the
// optimizer must not break: a record holding an Optimize()d program
// encodes, decodes to an op-for-op identical program (decoding never
// re-optimizes), and re-encodes byte-identically — so snapshot
// warm-start serves exactly the program that was persisted, whatever
// optimizer version wrote it.
func TestOptimizedProgramRoundTrips(t *testing.T) {
	raw := buildTestProgram(t)
	opt := raw.Optimize()
	rec := testRecord(t)
	rec.Program = opt
	data, err := AppendPlanRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlanRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program.NumOps() != opt.NumOps() || got.Program.NumRegs != opt.NumRegs || got.Program.Out != opt.Out {
		t.Fatalf("decoded shape changed: %d ops/%d regs/out %d, want %d/%d/%d",
			got.Program.NumOps(), got.Program.NumRegs, got.Program.Out, opt.NumOps(), opt.NumRegs, opt.Out)
	}
	for i, op := range opt.Ops {
		if got.Program.Ops[i] != op {
			t.Fatalf("decoded op %d changed: %+v != %+v", i, got.Program.Ops[i], op)
		}
	}
	for i, c := range opt.Consts {
		if got.Program.Consts[i].Cmp(c) != 0 {
			t.Fatalf("decoded const %d changed", i)
		}
	}
	again, err := AppendPlanRecord(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding an optimized program changed bytes")
	}
	probs := []*big.Rat{graph.Rat("1/2"), graph.Rat("1/3"), graph.Rat("1/5")}
	want, err := raw.Exec(probs)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Program.Exec(probs)
	if err != nil {
		t.Fatal(err)
	}
	if want.RatString() != have.RatString() {
		t.Fatalf("optimized round-trip diverged: %s vs %s", have.RatString(), want.RatString())
	}
}
