package graphio

import (
	"bytes"
	"crypto/sha256"
	"encoding"
	"encoding/hex"
	"fmt"
	"io"
	"math/big"
	"sort"
	"strconv"
	"strings"

	"phom/internal/graph"
)

// This file defines a canonical serialization of graphs and solver jobs,
// used by package engine to key its memoization cache and to deduplicate
// identical in-flight jobs. Canonical means insertion-order independent:
// two graphs with the same vertex count and the same edge set serialize
// identically no matter in which order the edges were added, and two
// probabilistic graphs additionally need identical (normalized) edge
// probabilities. It is NOT an isomorphism canonical form — vertex
// numbering matters, exactly as it does for the solver itself.

// canonEdgeLine appends the canonical line of an edge — "from>to:"label""
// — to b. Labels are quoted so that arbitrary label tokens cannot
// collide with the serialization syntax. Built with strconv rather than
// fmt: canonicalization runs on every engine submission, so it is part
// of the serving hot path.
func canonEdgeLine(b []byte, e graph.Edge) []byte {
	b = strconv.AppendInt(b, int64(e.From), 10)
	b = append(b, '>')
	b = strconv.AppendInt(b, int64(e.To), 10)
	b = append(b, ':')
	return strconv.AppendQuote(b, string(e.Label))
}

// CanonicalGraph returns the canonical serialization of g.
func CanonicalGraph(g *graph.Graph) string {
	lines := make([]string, 0, g.NumEdges())
	for _, e := range g.Edges() {
		lines = append(lines, string(canonEdgeLine(nil, e)))
	}
	sort.Strings(lines)
	return fmt.Sprintf("g;n=%d;%s", g.NumVertices(), strings.Join(lines, ";"))
}

// CanonicalProbGraph returns the canonical serialization of p. Edge
// probabilities are rendered with RatString, which is unique per rational
// (big.Rat normalizes), so "0.5" and "1/2" canonicalize identically.
func CanonicalProbGraph(p *graph.ProbGraph) string {
	lines := make([]string, 0, p.G.NumEdges())
	for i, e := range p.G.Edges() {
		b := canonEdgeLine(nil, e)
		b = append(b, '=')
		b = append(b, p.Prob(i).RatString()...)
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	return fmt.Sprintf("pg;n=%d;%s", p.G.NumVertices(), strings.Join(lines, ";"))
}

// JobKey hashes a solver job — the canonical serializations of its query
// disjuncts, the canonical serialization of its instance, and an opaque
// options fingerprint — into a fixed-size hexadecimal key. Every section
// is length-prefixed, so distinct jobs cannot collide by concatenation
// tricks. Callers should sort queryCanon first if they want union
// disjunct order not to matter (Pr(G₁ ∨ G₂) = Pr(G₂ ∨ G₁)).
func JobKey(queryCanon []string, instanceCanon, optsFingerprint string) string {
	h := sha256.New()
	for _, q := range queryCanon {
		fmt.Fprintf(h, "q %d\n%s\n", len(q), q)
	}
	fmt.Fprintf(h, "i %d\n%s\n", len(instanceCanon), instanceCanon)
	fmt.Fprintf(h, "o %d\n%s\n", len(optsFingerprint), optsFingerprint)
	return hex.EncodeToString(h.Sum(nil))
}

// StructKey hashes the structure of a solver job: like JobKey, but the
// instance section is the probability-stripped CanonicalGraph of the
// instance's underlying graph, so jobs that differ only in edge
// probabilities share a key. It is the string-based reference form of
// the structure key; package engine derives its cache keys with the
// one-pass JobKeys below instead, which hashes a different byte stream
// — the two schemes define the same equivalence on jobs but produce
// different key values, so a single cache must use one consistently. A
// leading domain tag keeps StructKey and JobKey values disjoint even
// for identical sections.
func StructKey(queryCanon []string, instanceStructCanon, optsFingerprint string) string {
	h := sha256.New()
	fmt.Fprintf(h, "struct\n")
	for _, q := range queryCanon {
		fmt.Fprintf(h, "q %d\n%s\n", len(q), q)
	}
	fmt.Fprintf(h, "i %d\n%s\n", len(instanceStructCanon), instanceStructCanon)
	fmt.Fprintf(h, "o %d\n%s\n", len(optsFingerprint), optsFingerprint)
	return hex.EncodeToString(h.Sum(nil))
}

// The structure byte stream — "struct\n", the query sections, the
// instance header, one canonical edge line per edge, the options
// section — is written by exactly one set of helpers below, shared by
// JobKeys and StructKeyJob. Plan-cache correctness depends on the two
// producing identical structure keys (compiled plans are stamped with
// StructKeyJob, the engine keys lookups with JobKeys), so the stream
// must have a single definition; TestStructKeyJobMatchesJobKeys pins
// the equality end to end.

// writeJobSections writes the query sections and the instance header
// shared by the job and structure streams.
func writeJobSections(w io.Writer, queryCanon []string, numVertices int) {
	for _, q := range queryCanon {
		fmt.Fprintf(w, "q %d\n%s\n", len(q), q)
	}
	fmt.Fprintf(w, "i n=%d\n", numVertices)
}

// writeOptsSection writes the options fingerprint section closing both
// streams.
func writeOptsSection(w io.Writer, optsFingerprint string) {
	fmt.Fprintf(w, "o %d\n%s\n", len(optsFingerprint), optsFingerprint)
}

// JobKeys computes JobKey and StructKey for an instance in one pass:
// the instance's edges are visited once in canonical edge order
// (numeric, no string sort) and streamed into both hashes, instead of
// materializing the CanonicalProbGraph / CanonicalGraph strings and
// hashing them separately. Equal inputs up to edge insertion order
// yield equal keys, like the string-based forms; the key VALUES differ
// from JobKey/StructKey over Canonical* strings (different byte
// streams), so a cache must consistently use one scheme. Package engine
// uses this one — key derivation runs on every submission, and the
// plan-hit fast path should not spend its win on hashing. The canonical
// edge order is returned so callers can reuse it (probability
// transport) without re-sorting.
//
// The two keys take separate options fingerprints: the job key hashes
// the full result-affecting fingerprint, the structure key hashes the
// compile-affecting subset (core.Options.StructFingerprint) — which is
// how jobs differing only in evaluation policy (precision, tolerance)
// share one cached plan while keeping distinct result-cache entries.
func JobKeys(queryCanon []string, p *graph.ProbGraph, optsFingerprint, structOptsFingerprint string) (jobKey, structKey string, order []int) {
	hj, hs := sha256.New(), sha256.New()
	fmt.Fprintf(hs, "struct\n")
	both := io.MultiWriter(hj, hs)
	writeJobSections(both, queryCanon, p.G.NumVertices())
	order = CanonicalEdgeOrder(p.G)
	var buf []byte
	for _, ei := range order {
		// Lines self-delimit: labels are quoted, so '\n' cannot occur
		// unescaped inside one.
		buf = canonEdgeLine(buf[:0], p.G.Edge(ei))
		buf = append(buf, '\n')
		hs.Write(buf)
		buf = buf[:len(buf)-1]
		buf = append(buf, '=')
		buf = p.Prob(ei).Num().Append(buf, 10)
		buf = append(buf, '/')
		buf = p.Prob(ei).Denom().Append(buf, 10)
		buf = append(buf, '\n')
		hj.Write(buf)
	}
	writeOptsSection(hj, optsFingerprint)
	writeOptsSection(hs, structOptsFingerprint)
	return hex.EncodeToString(hj.Sum(nil)), hex.EncodeToString(hs.Sum(nil)), order
}

// StructKeyJob computes the structure key and canonical edge order of
// a job directly from the instance's underlying graph, writing the
// exact byte stream that JobKeys feeds its structure hash — the two
// functions return identical structKey values for the same job. It
// exists for callers that have no probability assignment at hand:
// package core stamps every compiled plan with its structure key so
// plans serialize self-describing (the engine's snapshot restore keys
// them without re-deriving anything).
func StructKeyJob(queryCanon []string, g *graph.Graph, optsFingerprint string) (structKey string, order []int) {
	hs := sha256.New()
	fmt.Fprintf(hs, "struct\n")
	writeJobSections(hs, queryCanon, g.NumVertices())
	order = CanonicalEdgeOrder(g)
	var buf []byte
	for _, ei := range order {
		buf = canonEdgeLine(buf[:0], g.Edge(ei))
		buf = append(buf, '\n')
		hs.Write(buf)
	}
	writeOptsSection(hs, optsFingerprint)
	return hex.EncodeToString(hs.Sum(nil)), order
}

// BatchJobKeys computes JobKeys for a batch of same-structure lanes in
// one pass: K instances sharing one underlying graph get K job keys,
// one structure key and one canonical edge order, byte-identical to K
// independent JobKeys calls. The shared work — canonical edge ordering,
// edge-line rendering, the query/instance header hash — is done once;
// per lane only the probability suffixes and the options section are
// hashed, with the header's sha256 state cloned via its binary
// marshaling instead of re-hashed. This is the keying half of the
// engine's batched reweight path: deriving K memo-cache keys must not
// cost K full canonicalizations, or batching's win dies in the hasher.
//
// Lanes whose instance does not share instances[0]'s underlying graph
// value are keyed with a full per-lane JobKeys pass — correct, just not
// amortized. Callers that group by graph identity (package engine) never
// hit that path.
func BatchJobKeys(queryCanon []string, instances []*graph.ProbGraph, optsFingerprint, structOptsFingerprint string) (jobKeys []string, structKey string, order []int) {
	if len(instances) == 0 {
		return nil, "", nil
	}
	g := instances[0].G
	hs, hp := sha256.New(), sha256.New()
	fmt.Fprintf(hs, "struct\n")
	var prefix bytes.Buffer
	writeJobSections(io.MultiWriter(hp, hs, &prefix), queryCanon, g.NumVertices())
	order = CanonicalEdgeOrder(g)
	// Render every canonical edge line once, ending in the '=' that the
	// per-lane probability suffix continues.
	lines := make([][]byte, len(order))
	for i, ei := range order {
		b := canonEdgeLine(nil, g.Edge(ei))
		hs.Write(append(b, '\n'))
		lines[i] = append(b[:len(b):len(b)], '=')
	}
	writeOptsSection(hs, structOptsFingerprint)
	structKey = hex.EncodeToString(hs.Sum(nil))

	snap, snapErr := hp.(encoding.BinaryMarshaler).MarshalBinary()
	jobKeys = make([]string, len(instances))
	var buf []byte
	for k, inst := range instances {
		if inst.G != g {
			jobKeys[k], _, _ = JobKeys(queryCanon, inst, optsFingerprint, structOptsFingerprint)
			continue
		}
		hj := sha256.New()
		if snapErr == nil && hj.(encoding.BinaryUnmarshaler).UnmarshalBinary(snap) == nil {
			// header state restored without re-hashing
		} else {
			hj = sha256.New()
			hj.Write(prefix.Bytes())
		}
		// The whole probability suffix is rendered into one reused buffer
		// and hashed with a single Write: per-edge hash writes and
		// big.Int decimal rendering are exactly the per-lane costs that
		// must stay negligible for batched keying to beat K full passes.
		buf = buf[:0]
		for i, ei := range order {
			buf = append(buf, lines[i]...)
			buf = appendRat(buf, inst.Prob(ei))
			buf = append(buf, '\n')
		}
		hj.Write(buf)
		writeOptsSection(hj, optsFingerprint)
		jobKeys[k] = hex.EncodeToString(hj.Sum(nil))
	}
	return jobKeys, structKey, order
}

// appendRat appends r in the canonical "num/denom" form, with a fast
// path for machine-word-sized numerators and denominators (the shape of
// real probability traffic) that skips big.Int's slower decimal
// rendering. Byte-identical to Num().Append + "/" + Denom().Append.
func appendRat(buf []byte, r *big.Rat) []byte {
	if n, d := r.Num(), r.Denom(); n.IsInt64() && d.IsInt64() {
		buf = strconv.AppendInt(buf, n.Int64(), 10)
		buf = append(buf, '/')
		return strconv.AppendInt(buf, d.Int64(), 10)
	}
	buf = r.Num().Append(buf, 10)
	buf = append(buf, '/')
	return r.Denom().Append(buf, 10)
}

// CanonicalEdgeOrder returns the edge indices of g sorted by endpoint
// pair (from, to) — a deterministic, insertion-order-independent order.
// The ordered pair identifies an edge uniquely (graphs have no
// multi-edges), so two graphs with equal CanonicalGraph serializations
// have pointwise-equal edges (including labels) under their respective
// canonical edge orders. This lets a probability vector indexed by one
// edge numbering be transported onto the other, which is how the engine
// evaluates a cached plan against an instance whose edges were inserted
// in a different order. Sorting integers rather than canonical strings
// keeps the transport cheap: it runs on every plan-cache hit.
func CanonicalEdgeOrder(g *graph.Graph) []int {
	order := make([]int, g.NumEdges())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := g.Edge(order[a]), g.Edge(order[b])
		if ea.From != eb.From {
			return ea.From < eb.From
		}
		return ea.To < eb.To
	})
	return order
}
