package graphio

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"phom/internal/graph"
)

// This file defines a canonical serialization of graphs and solver jobs,
// used by package engine to key its memoization cache and to deduplicate
// identical in-flight jobs. Canonical means insertion-order independent:
// two graphs with the same vertex count and the same edge set serialize
// identically no matter in which order the edges were added, and two
// probabilistic graphs additionally need identical (normalized) edge
// probabilities. It is NOT an isomorphism canonical form — vertex
// numbering matters, exactly as it does for the solver itself.

// CanonicalGraph returns the canonical serialization of g. Labels are
// quoted so that arbitrary label tokens cannot collide with the
// serialization syntax.
func CanonicalGraph(g *graph.Graph) string {
	lines := make([]string, 0, g.NumEdges())
	for _, e := range g.Edges() {
		lines = append(lines, fmt.Sprintf("%d>%d:%q", e.From, e.To, string(e.Label)))
	}
	sort.Strings(lines)
	return fmt.Sprintf("g;n=%d;%s", g.NumVertices(), strings.Join(lines, ";"))
}

// CanonicalProbGraph returns the canonical serialization of p. Edge
// probabilities are rendered with RatString, which is unique per rational
// (big.Rat normalizes), so "0.5" and "1/2" canonicalize identically.
func CanonicalProbGraph(p *graph.ProbGraph) string {
	lines := make([]string, 0, p.G.NumEdges())
	for i, e := range p.G.Edges() {
		lines = append(lines, fmt.Sprintf("%d>%d:%q=%s", e.From, e.To, string(e.Label), p.Prob(i).RatString()))
	}
	sort.Strings(lines)
	return fmt.Sprintf("pg;n=%d;%s", p.G.NumVertices(), strings.Join(lines, ";"))
}

// JobKey hashes a solver job — the canonical serializations of its query
// disjuncts, the canonical serialization of its instance, and an opaque
// options fingerprint — into a fixed-size hexadecimal key. Every section
// is length-prefixed, so distinct jobs cannot collide by concatenation
// tricks. Callers should sort queryCanon first if they want union
// disjunct order not to matter (Pr(G₁ ∨ G₂) = Pr(G₂ ∨ G₁)).
func JobKey(queryCanon []string, instanceCanon, optsFingerprint string) string {
	h := sha256.New()
	for _, q := range queryCanon {
		fmt.Fprintf(h, "q %d\n%s\n", len(q), q)
	}
	fmt.Fprintf(h, "i %d\n%s\n", len(instanceCanon), instanceCanon)
	fmt.Fprintf(h, "o %d\n%s\n", len(optsFingerprint), optsFingerprint)
	return hex.EncodeToString(h.Sum(nil))
}
