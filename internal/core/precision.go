package core

import (
	"context"
	"fmt"
	"math"
	"math/big"

	"phom/internal/phomerr"
	"phom/internal/plan"
)

// This file defines the dual-precision evaluation contract: which
// numeric substrate — the exact big.Rat interpreter (plan.Program.Exec)
// or the certified float64 interval kernel (plan.Program.ExecFloat) —
// a compiled plan evaluates with, and when the auto mode is allowed to
// serve the float result instead of falling back to exact arithmetic.
// See DESIGN.md, "Numerics: dual-precision evaluation".

// Precision selects the numeric substrate of plan evaluation.
type Precision int

const (
	// PrecisionExact evaluates with exact rational arithmetic — every
	// answer is the mathematically exact probability. The default.
	PrecisionExact Precision = iota
	// PrecisionFast evaluates with the float64 interval kernel: the
	// answer is a point estimate carrying a certified absolute-error
	// bound (Result.Bounds), at near-hardware speed. It falls back to
	// exact arithmetic only when the float kernel cannot produce a
	// finite certified enclosure at all (opaque plans, overflow).
	PrecisionFast
	// PrecisionAuto evaluates with the float64 kernel first and falls
	// back to exact arithmetic whenever the certified enclosure is wider
	// than the tolerance (Options.FloatTolerance): callers get float
	// speed when the bound is tight and exact rationals otherwise, and a
	// fallback answer is byte-identical to PrecisionExact's.
	PrecisionAuto
	// PrecisionApprox evaluates #P-hard (opaque) plans with the seeded
	// Karp–Luby (ε,δ) Monte-Carlo estimator of internal/approx instead
	// of the exponential exact baselines: the answer is a point estimate
	// within relative error Options.Epsilon of the exact probability
	// with probability at least 1−Options.Delta, carrying statistical
	// Hoeffding bounds in Result.Bounds. Tractable (structural) plans
	// ignore the mode and evaluate exactly — sampling where a
	// polynomial-time exact algorithm exists would only lose precision.
	PrecisionApprox

	numPrecisions = iota // count of defined modes, for validation
)

var precisionNames = [numPrecisions]string{"exact", "fast", "auto", "approx"}

func (p Precision) String() string {
	if p < 0 || int(p) >= len(precisionNames) {
		return fmt.Sprintf("precision(%d)", int(p))
	}
	return precisionNames[p]
}

// ParsePrecision parses a precision mode name as accepted on the wire
// and on command lines: "exact", "fast", "auto" or "approx". The empty
// string is PrecisionExact, matching the zero value of
// Options.Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "exact":
		return PrecisionExact, nil
	case "fast":
		return PrecisionFast, nil
	case "auto":
		return PrecisionAuto, nil
	case "approx":
		return PrecisionApprox, nil
	}
	return 0, fmt.Errorf("core: unknown precision %q (want exact, fast, auto or approx)", s)
}

// DefaultFloatTolerance is the default cap on the certified interval
// width the auto mode accepts before falling back to exact arithmetic.
// It is far above the width the float kernel actually reaches on the
// linear-size programs of the tractable cells (around 10⁻¹³ even for
// instances with millions of edges) while still guaranteeing nine
// correct decimal digits.
const DefaultFloatTolerance = 1e-9

// EffectivePrecision returns the precision mode with the nil receiver
// resolved to the default (PrecisionExact).
func (o *Options) EffectivePrecision() Precision {
	if o == nil {
		return PrecisionExact
	}
	return o.Precision
}

// EffectiveFloatTolerance returns the auto-mode tolerance with nil and
// zero resolved to DefaultFloatTolerance.
func (o *Options) EffectiveFloatTolerance() float64 {
	if o == nil || o.FloatTolerance == 0 {
		return DefaultFloatTolerance
	}
	return o.FloatTolerance
}

// DefaultEpsilon and DefaultDelta are the (ε,δ) guarantee of the approx
// mode when the request does not choose its own: relative error 5% with
// failure probability 1%. Both are deliberately loose enough that the
// Dyer/Karp–Luby sample count stays serveable on lineages with
// thousands of clauses.
const (
	DefaultEpsilon = 0.05
	DefaultDelta   = 0.01
)

// EffectiveEpsilon returns the approx-mode relative error bound with
// nil and zero resolved to DefaultEpsilon.
func (o *Options) EffectiveEpsilon() float64 {
	if o == nil || o.Epsilon == 0 {
		return DefaultEpsilon
	}
	return o.Epsilon
}

// EffectiveDelta returns the approx-mode failure budget with nil and
// zero resolved to DefaultDelta.
func (o *Options) EffectiveDelta() float64 {
	if o == nil || o.Delta == 0 {
		return DefaultDelta
	}
	return o.Delta
}

// evalPolicy is the full evaluation-time policy of one job — the
// numeric substrate plus its mode parameters — with every default
// resolved. It travels as one value so the routing core and the batched
// path cannot drift on which options matter.
type evalPolicy struct {
	prec       Precision
	tol        float64 // auto-mode certified-width cap
	eps, delta float64 // approx-mode (ε,δ) guarantee
	seed       uint64  // approx-mode PCG seed
}

// policy resolves the options into their evaluation policy.
func (o *Options) policy() evalPolicy {
	pol := evalPolicy{
		prec:  o.EffectivePrecision(),
		tol:   o.EffectiveFloatTolerance(),
		eps:   o.EffectiveEpsilon(),
		delta: o.EffectiveDelta(),
	}
	if o != nil {
		pol.seed = o.Seed
	}
	return pol
}

// EvaluateOpts is Evaluate with the precision mode and tolerance taken
// from opts instead of from the options the plan was compiled with.
// The engine evaluates cached and snapshot-restored plans through this
// (the per-job options decide the substrate; a restored plan carries no
// precision of its own), and tests use it to force substrates.
func (cp *CompiledPlan) EvaluateOpts(probs []*big.Rat, opts *Options) (*Result, error) {
	return cp.evaluate(context.Background(), probs, opts.policy())
}

// EvaluateOptsContext is EvaluateOpts under a context: exact program
// execution polls ctx every phomerr.CheckInterval ops and opaque plans
// pass ctx into their exponential re-solve (or, under the approx mode,
// into the sampling loop), so cancellation works on the evaluation side
// of the pipeline too.
func (cp *CompiledPlan) EvaluateOptsContext(ctx context.Context, probs []*big.Rat, opts *Options) (*Result, error) {
	return cp.evaluate(ctx, probs, opts.policy())
}

// evaluate is the routing core shared by Evaluate and EvaluateOpts:
// validate the probability vector, then pick the numeric substrate.
func (cp *CompiledPlan) evaluate(ctx context.Context, probs []*big.Rat, pol evalPolicy) (*Result, error) {
	if err := cp.validateProbs(probs); err != nil {
		return nil, err
	}
	if cp.opaque {
		// Opaque plans have no program, hence no float kernel. The approx
		// mode routes them to the Karp–Luby estimator over the plan's
		// lineage DNF; every other mode evaluates them exactly (the
		// baselines are the arbiter, not a fast path).
		if pol.prec == PrecisionApprox {
			return cp.evaluateApprox(ctx, probs, pol)
		}
		return cp.resolve(ctx, probs)
	}
	if pol.prec == PrecisionFast || pol.prec == PrecisionAuto {
		if res, ok := cp.evaluateFloat(probs, pol.prec, pol.tol); ok {
			return res, nil
		}
	}
	pr, err := cp.prog.ExecCtx(ctx, probs)
	if err != nil {
		return nil, err
	}
	return &Result{Prob: pr, Method: cp.method, Precision: PrecisionExact}, nil
}

// validateProbs checks a probability vector against the plan: right
// length, no nils, every entry in [0,1]. Shared by the single-vector
// and batched evaluation entry points.
func (cp *CompiledPlan) validateProbs(probs []*big.Rat) error {
	if len(probs) != cp.numEdges {
		return phomerr.New(phomerr.CodeBadInput, "core: %d probabilities for a plan over %d edges", len(probs), cp.numEdges)
	}
	for i, p := range probs {
		if p == nil {
			return phomerr.New(phomerr.CodeBadInput, "core: nil probability for edge %d", i)
		}
		// p ∈ [0,1] iff 0 ≤ num ≤ denom (big.Rat keeps denom > 0 and the
		// sign on num). Comparing the parts directly avoids Rat.Cmp's
		// cross-multiplication, which allocates — this runs per edge per
		// lane on the batched reweight path.
		if p.Num().Sign() < 0 || p.Num().Cmp(p.Denom()) > 0 {
			return phomerr.New(phomerr.CodeBadInput, "core: edge %d probability %s outside [0,1]", i, p.RatString())
		}
	}
	return nil
}

// evaluateFloat runs the float64 interval kernel and decides whether
// its result may be served: always for PrecisionFast (the caller asked
// for float speed), and only within tolerance for PrecisionAuto. ok is
// false when the caller must fall back to exact arithmetic — kernel
// failure, a non-finite enclosure, or an auto-mode tolerance miss.
func (cp *CompiledPlan) evaluateFloat(probs []*big.Rat, prec Precision, tol float64) (*Result, bool) {
	iv, err := cp.prog.ExecFloat(probs)
	if err != nil {
		return nil, false
	}
	return cp.serveFloat(iv, prec, tol)
}

// serveFloat applies the serve-or-fall-back decision to one certified
// enclosure — the per-lane half of evaluateFloat, shared with the
// batched path, which produces K enclosures from a single kernel
// dispatch and routes each lane through this independently.
func (cp *CompiledPlan) serveFloat(iv plan.Enclosure, prec Precision, tol float64) (*Result, bool) {
	mid := iv.Mid()
	if math.IsInf(mid, 0) || math.IsNaN(mid) {
		return nil, false
	}
	if prec == PrecisionAuto && !(iv.Width() <= tol) {
		return nil, false
	}
	// The exact answer is a probability, so it lies in [0,1] ∩ [Lo,Hi];
	// clamp the midpoint into that intersection so the served estimate
	// is itself a valid probability (an enclosure straddling 0 or 1
	// would otherwise yield estimates like -5.6e-17, which downstream
	// consumers — log-space code, re-used edge probabilities — reject).
	// Clamping within the enclosure keeps |estimate − exact| ≤ Width.
	if mid < 0 {
		mid = 0
	} else if mid > 1 {
		mid = 1
	}
	if mid < iv.Lo {
		mid = iv.Lo
	} else if mid > iv.Hi {
		mid = iv.Hi
	}
	// SetFloat64 is exact — Prob is the precise rational value of the
	// point estimate, within Bounds of the true probability.
	return &Result{
		Prob:      new(big.Rat).SetFloat64(mid),
		Method:    cp.method,
		Precision: PrecisionFast,
		Bounds:    &plan.Enclosure{Lo: iv.Lo, Hi: iv.Hi},
	}, true
}
