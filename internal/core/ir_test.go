package core

import (
	"bytes"
	"math/rand"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
)

// constJobs builds jobs decided by structure alone — the Const
// short-circuits of the guard table: a trivial (edgeless) query, a
// query label absent from the instance, and a non-graded query on
// forest worlds.
func constJobs(r *rand.Rand, n int) []struct {
	name string
	q    *graph.Graph
	h    *graph.ProbGraph
} {
	rs := []graph.Label{"R", "S"}
	un := []graph.Label{graph.Unlabeled}
	nonGraded := graph.New(2)
	nonGraded.MustAddEdge(0, 1, graph.Unlabeled)
	nonGraded.MustAddEdge(1, 0, graph.Unlabeled) // a directed cycle is never graded
	return []struct {
		name string
		q    *graph.Graph
		h    *graph.ProbGraph
	}{
		{"trivial edgeless query", graph.New(3),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, rs), 0.5)},
		{"label mismatch", gen.Rand1WP(r, 3, []graph.Label{"T"}),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, rs), 0.5)},
		{"non-graded on ⊔DWT", nonGraded,
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, un), 0.5)},
	}
}

// TestProgramExecMatchesTreeAndSolve is the IR acceptance differential:
// for every guard-table row (the four tractable cells) and every Const
// short-circuit, the flattened Program executed by CompiledPlan.Evaluate
// must be RatString-byte-identical to the PR 2 plan-tree evaluation
// (EvaluateTree) and to a fresh Solve of the reweighted instance, across
// seeded reweightings.
func TestProgramExecMatchesTreeAndSolve(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	var jobs []struct {
		name string
		q    *graph.Graph
		h    *graph.ProbGraph
	}
	for _, j := range tractableJobs(r, 20) {
		if j.name == "baseline (hard cell)" {
			continue // opaque: no program; covered by TestOpaquePlanHasNoProgram
		}
		jobs = append(jobs, j)
	}
	jobs = append(jobs, constJobs(r, 20)...)
	for _, job := range jobs {
		cp, err := Compile(job.q, job.h, nil)
		if err != nil {
			t.Fatalf("%s: Compile: %v", job.name, err)
		}
		if cp.Program() == nil {
			t.Fatalf("%s: structural plan has no program", job.name)
		}
		if err := cp.Program().Validate(); err != nil {
			t.Fatalf("%s: program invalid: %v", job.name, err)
		}
		for reweight := 0; reweight < 5; reweight++ {
			probs := job.h.Probs()
			exec, err := cp.Evaluate(probs)
			if err != nil {
				t.Fatalf("%s: Evaluate (program): %v", job.name, err)
			}
			tree, err := cp.EvaluateTree(probs)
			if err != nil {
				t.Fatalf("%s: EvaluateTree: %v", job.name, err)
			}
			solve, err := Solve(job.q, job.h, nil)
			if err != nil {
				t.Fatalf("%s: Solve: %v", job.name, err)
			}
			if exec.Prob.RatString() != tree.Prob.RatString() {
				t.Fatalf("%s reweight %d: program %s, tree %s",
					job.name, reweight, exec.Prob.RatString(), tree.Prob.RatString())
			}
			if exec.Prob.RatString() != solve.Prob.RatString() {
				t.Fatalf("%s reweight %d: program %s, solve %s",
					job.name, reweight, exec.Prob.RatString(), solve.Prob.RatString())
			}
			if exec.Method != solve.Method {
				t.Fatalf("%s: program method %v, solve method %v", job.name, exec.Method, solve.Method)
			}
			reweightRandomly(r, job.h)
		}
	}
}

// TestPlanMarshalRoundTrip pins the serialized form: a plan restored
// from MarshalBinary evaluates byte-identically, keeps its identity
// (structure key, canonical order, method, edge count), and re-encodes
// to the same bytes.
func TestPlanMarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for _, job := range tractableJobs(r, 16) {
		if job.name == "baseline (hard cell)" {
			continue
		}
		cp, err := Compile(job.q, job.h, nil)
		if err != nil {
			t.Fatalf("%s: Compile: %v", job.name, err)
		}
		data, err := cp.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: MarshalBinary: %v", job.name, err)
		}
		restored := new(CompiledPlan)
		if err := restored.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: UnmarshalBinary: %v", job.name, err)
		}
		if restored.StructKey() != cp.StructKey() {
			t.Fatalf("%s: structure key changed across the wire", job.name)
		}
		if restored.NumEdges() != cp.NumEdges() {
			t.Fatalf("%s: NumEdges %d → %d", job.name, cp.NumEdges(), restored.NumEdges())
		}
		if m1, _ := cp.Method(); true {
			if m2, ok := restored.Method(); !ok || m2 != m1 {
				t.Fatalf("%s: method %v → %v (ok=%v)", job.name, m1, m2, ok)
			}
		}
		for i, ei := range cp.CanonOrder() {
			if restored.CanonOrder()[i] != ei {
				t.Fatalf("%s: canonical order changed at %d", job.name, i)
			}
		}
		for reweight := 0; reweight < 3; reweight++ {
			want, err := cp.Evaluate(job.h.Probs())
			if err != nil {
				t.Fatal(err)
			}
			got, err := restored.Evaluate(job.h.Probs())
			if err != nil {
				t.Fatalf("%s: restored Evaluate: %v", job.name, err)
			}
			if got.Prob.RatString() != want.Prob.RatString() {
				t.Fatalf("%s: restored plan diverged: %s vs %s",
					job.name, got.Prob.RatString(), want.Prob.RatString())
			}
			reweightRandomly(r, job.h)
		}
		// Canonical encoding: re-marshaling the restored plan is
		// byte-identical.
		again, err := restored.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", job.name, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("%s: encoding not canonical (round-trip changed bytes)", job.name)
		}
		// A restored plan has no tree to evaluate.
		if _, err := restored.EvaluateTree(job.h.Probs()); err == nil {
			t.Fatalf("%s: EvaluateTree on a restored plan should fail", job.name)
		}
	}
}

// TestOpaquePlanHasNoProgram pins the opaque contract: hard-cell plans
// expose no program, refuse serialization, and still evaluate.
func TestOpaquePlanHasNoProgram(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	q := gen.Rand1WP(r, 3, []graph.Label{"R", "S"})
	h := gen.RandProb(r, gen.RandGraph(r, 5, 8, []graph.Label{"R", "S"}), 0.3)
	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Opaque() {
		t.Skip("random hard-cell job compiled structurally; adjust the generator seed")
	}
	if cp.Program() != nil {
		t.Fatal("opaque plan exposes a program")
	}
	if _, err := cp.MarshalBinary(); err == nil {
		t.Fatal("opaque plan serialized")
	}
	if _, err := cp.EvaluateTree(h.Probs()); err == nil {
		t.Fatal("opaque plan evaluated through a tree")
	}
	if cp.StructKey() == "" {
		t.Fatal("opaque plan has no structure key")
	}
	want, err := Solve(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Evaluate(h.Probs())
	if err != nil {
		t.Fatal(err)
	}
	if got.Prob.RatString() != want.Prob.RatString() {
		t.Fatalf("opaque evaluate %s, solve %s", got.Prob.RatString(), want.Prob.RatString())
	}
}

// TestUnmarshalRejectsGarbage pins the decoder's failure mode: errors,
// not panics, for corrupt input.
func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		{},
		[]byte("phomplan"),
		[]byte("not a plan at all"),
		bytes.Repeat([]byte{0xff}, 64),
	} {
		cp := new(CompiledPlan)
		if err := cp.UnmarshalBinary(data); err == nil {
			t.Fatalf("UnmarshalBinary accepted %q", data)
		}
	}
	// A structurally valid record with a baseline method byte must be
	// rejected by core even though graphio accepts it.
	r := rand.New(rand.NewSource(37))
	q := gen.Rand1WP(r, 3, []graph.Label{"R", "S"})
	h := gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 10, []graph.Label{"R", "S"}), 0.5)
	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The method varint sits right after the magic, version and
	// length-prefixed structure key; patch it to MethodBruteForce.
	idx := len("phomplan") + 1 + 1 + len(cp.StructKey())
	patched := append([]byte(nil), data...)
	patched[idx] = byte(MethodBruteForce)
	if err := new(CompiledPlan).UnmarshalBinary(patched); err == nil {
		t.Fatal("UnmarshalBinary accepted a baseline method")
	}
}
