package core

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/plan"
)

// fig1Instance builds the probabilistic graph of Figure 1 / Example 2.1:
// five R-edges with probabilities 1, 0.1, 0.8, 0.1, 0.05 and one S-edge
// with probability 0.7, arranged so that the Example 2.2 computation
// Pr(G ⇝ H) = 0.7 × (1 − (1 − 0.1)(1 − 0.8)) = 0.574 holds.
func fig1Instance() *graph.ProbGraph {
	g := graph.New(4)
	g.MustAddEdge(0, 1, "R") // 1
	g.MustAddEdge(0, 2, "R") // 0.1
	g.MustAddEdge(1, 2, "R") // 0.8
	g.MustAddEdge(1, 3, "R") // 0.1
	g.MustAddEdge(0, 3, "R") // 0.05
	g.MustAddEdge(2, 3, "S") // 0.7
	h := graph.NewProbGraph(g)
	h.MustSetEdgeProb(0, 2, graph.Rat("0.1"))
	h.MustSetEdgeProb(1, 2, graph.Rat("0.8"))
	h.MustSetEdgeProb(1, 3, graph.Rat("0.1"))
	h.MustSetEdgeProb(0, 3, graph.Rat("0.05"))
	h.MustSetEdgeProb(2, 3, graph.Rat("0.7"))
	return h
}

// fig1Query is the query of Example 2.2: −R→ −S→ ←S−.
func fig1Query() *graph.Graph {
	q := graph.New(4)
	q.MustAddEdge(0, 1, "R")
	q.MustAddEdge(1, 2, "S")
	q.MustAddEdge(3, 2, "S")
	return q
}

func TestExample22(t *testing.T) {
	want := graph.Rat("0.574")
	got := BruteForce(fig1Query(), fig1Instance())
	if got.Cmp(want) != 0 {
		t.Fatalf("Example 2.2 brute force = %s, want 0.574", got.RatString())
	}
	res, err := Solve(fig1Query(), fig1Instance(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob.Cmp(want) != 0 {
		t.Fatalf("Example 2.2 Solve = %s (method %v), want 0.574", res.Prob.RatString(), res.Method)
	}
}

func TestBruteForceLimitEnforced(t *testing.T) {
	g := graph.UnlabeledPath(5)
	h := graph.NewProbGraph(g)
	for i := 0; i < 5; i++ {
		if err := h.SetProb(i, graph.RatHalf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := BruteForceLimit(graph.UnlabeledPath(2), h, 3); err == nil {
		t.Fatal("limit not enforced")
	}
	if _, err := BruteForceLimit(graph.UnlabeledPath(2), h, 5); err != nil {
		t.Fatalf("limit 5 should suffice: %v", err)
	}
}

// labelSets per setting.
var (
	twoLabels = []graph.Label{"R", "S"}
	oneLabel  = []graph.Label{graph.Unlabeled}
)

// tractableCells enumerates the PTIME cells of Tables 1–3 that the
// solver must handle with a PTIME method; each entry names the cell and
// the expected method family.
var tractableCells = []struct {
	name    string
	qc, ic  graph.Class
	labeled bool
}{
	// Table 2 (labeled, connected queries).
	{"T2 1WP/1WP", graph.Class1WP, graph.Class1WP, true},
	{"T2 1WP/2WP", graph.Class1WP, graph.Class2WP, true},
	{"T2 1WP/DWT", graph.Class1WP, graph.ClassDWT, true},
	{"T2 2WP/2WP", graph.Class2WP, graph.Class2WP, true},
	{"T2 DWT/2WP", graph.ClassDWT, graph.Class2WP, true},
	{"T2 PT/2WP", graph.ClassPT, graph.Class2WP, true},
	{"T2 Connected/2WP", graph.ClassConnected, graph.Class2WP, true},
	{"T2 Connected/U2WP", graph.ClassConnected, graph.ClassU2WP, true},
	{"T2 1WP/UDWT", graph.Class1WP, graph.ClassUDWT, true},
	// Table 3 (unlabeled, connected queries).
	{"T3 1WP/1WP", graph.Class1WP, graph.Class1WP, false},
	{"T3 1WP/2WP", graph.Class1WP, graph.Class2WP, false},
	{"T3 1WP/DWT", graph.Class1WP, graph.ClassDWT, false},
	{"T3 1WP/PT", graph.Class1WP, graph.ClassPT, false},
	{"T3 2WP/2WP", graph.Class2WP, graph.Class2WP, false},
	{"T3 2WP/DWT", graph.Class2WP, graph.ClassDWT, false},
	{"T3 DWT/DWT", graph.ClassDWT, graph.ClassDWT, false},
	{"T3 DWT/PT", graph.ClassDWT, graph.ClassPT, false},
	{"T3 PT/DWT", graph.ClassPT, graph.ClassDWT, false},
	{"T3 Connected/2WP", graph.ClassConnected, graph.Class2WP, false},
	{"T3 Connected/DWT", graph.ClassConnected, graph.ClassDWT, false},
	// Table 1 (unlabeled, disconnected queries).
	{"T1 U1WP/1WP", graph.ClassU1WP, graph.Class1WP, false},
	{"T1 U1WP/2WP", graph.ClassU1WP, graph.Class2WP, false},
	{"T1 U1WP/DWT", graph.ClassU1WP, graph.ClassDWT, false},
	{"T1 U1WP/PT", graph.ClassU1WP, graph.ClassPT, false},
	{"T1 U1WP/UPT", graph.ClassU1WP, graph.ClassUPT, false},
	{"T1 U2WP/1WP", graph.ClassU2WP, graph.Class1WP, false},
	{"T1 U2WP/DWT", graph.ClassU2WP, graph.ClassDWT, false},
	{"T1 UDWT/PT", graph.ClassUDWT, graph.ClassPT, false},
	{"T1 UDWT/UPT", graph.ClassUDWT, graph.ClassUPT, false},
	{"T1 UPT/DWT", graph.ClassUPT, graph.ClassDWT, false},
	{"T1 All/1WP", graph.ClassAll, graph.Class1WP, false},
	{"T1 All/DWT", graph.ClassAll, graph.ClassDWT, false},
	{"T1 All/UDWT", graph.ClassAll, graph.ClassUDWT, false},
}

// TestSolveMatchesBruteForceOnTractableCells is the central correctness
// test: for every tractable cell, over many random seeded inputs, the
// dispatched PTIME algorithm must agree exactly with world enumeration,
// and must not have fallen back to an exponential method.
func TestSolveMatchesBruteForceOnTractableCells(t *testing.T) {
	for _, cell := range tractableCells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			labels := oneLabel
			if cell.labeled {
				labels = twoLabels
			}
			r := rand.New(rand.NewSource(int64(len(cell.name)) * 7919))
			trials := 60
			for trial := 0; trial < trials; trial++ {
				q := gen.RandInClass(r, cell.qc, 1+r.Intn(4), labels)
				inst := gen.RandInClass(r, cell.ic, 1+r.Intn(8), labels)
				h := gen.RandProb(r, inst, 0.3)
				res, err := Solve(q, h, &Options{DisableFallback: true})
				if err != nil {
					t.Fatalf("trial %d: solver refused a tractable cell: %v\nq=%v\nh=%v", trial, err, q, h)
				}
				if !res.Method.PTime() {
					t.Fatalf("trial %d: solver used exponential method %v on tractable cell", trial, res.Method)
				}
				want := BruteForce(q, h)
				if res.Prob.Cmp(want) != 0 {
					t.Fatalf("trial %d: Solve=%s (method %v) brute=%s\nq=%v\nh=%v",
						trial, res.Prob.RatString(), res.Method, want.RatString(), q, h)
				}
			}
		})
	}
}

// TestSolveFallbackMatchesBruteForce: on hard cells the solver falls back
// but must still be exact.
func TestSolveFallbackMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		q := gen.RandInClass(r, graph.Class2WP, 2+r.Intn(3), twoLabels)
		inst := gen.RandInClass(r, graph.ClassDWT, 2+r.Intn(6), twoLabels)
		h := gen.RandProb(r, inst, 0.3)
		res, err := Solve(q, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForce(q, h)
		if res.Prob.Cmp(want) != 0 {
			t.Fatalf("fallback mismatch: %s vs %s", res.Prob.RatString(), want.RatString())
		}
	}
}

// TestLineageShannonMatchesBruteForce validates the second baseline.
func TestLineageShannonMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 100; trial++ {
		q := gen.RandInClass(r, graph.ClassConnected, 1+r.Intn(4), twoLabels)
		inst := gen.RandInClass(r, graph.ClassAll, 1+r.Intn(6), twoLabels)
		h := gen.RandProb(r, inst, 0.3)
		got, err := LineageShannon(q, h, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForce(q, h)
		if got.Cmp(want) != 0 {
			t.Fatalf("lineage mismatch: %s vs %s\nq=%v\nh=%v", got.RatString(), want.RatString(), q, h)
		}
	}
}

func TestSolveTrivialCases(t *testing.T) {
	// Edgeless query: probability 1.
	q := graph.New(3)
	h := graph.NewProbGraph(graph.UnlabeledPath(2))
	res, err := Solve(q, h, &Options{DisableFallback: true})
	if err != nil || res.Method != MethodTrivial || res.Prob.Cmp(graph.RatOne) != 0 {
		t.Fatalf("edgeless query: %v %v", res, err)
	}
	// Label mismatch: probability 0.
	q2 := graph.Path1WP("Z")
	res, err = Solve(q2, h, &Options{DisableFallback: true})
	if err != nil || res.Method != MethodLabelMismatch || res.Prob.Sign() != 0 {
		t.Fatalf("label mismatch: %v %v", res, err)
	}
	// Empty graphs are rejected.
	if _, err := Solve(graph.New(0), h, nil); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := Solve(q2, graph.NewProbGraph(graph.New(0)), nil); err == nil {
		t.Fatal("empty instance accepted")
	}
}

func TestSolveDisableFallbackOnHardCell(t *testing.T) {
	// Labeled 2WP query on DWT instance is #P-hard (Prop 4.5): with
	// fallback disabled the solver must refuse.
	q := graph.Path2WP(graph.Fwd("R"), graph.Bwd("S"))
	inst := graph.New(4) // a genuinely branching DWT (not a 2WP)
	inst.MustAddEdge(0, 1, "R")
	inst.MustAddEdge(0, 2, "S")
	inst.MustAddEdge(0, 3, "R")
	h := graph.NewProbGraph(inst)
	if _, err := Solve(q, h, &Options{DisableFallback: true}); err == nil {
		t.Fatal("hard cell solved without fallback?")
	}
}

// TestDichotomyCoverage verifies that the classifier's tractable pairs
// and hard borders partition all 10 × 10 × 2 cells with no gap and no
// overlap — the machine-checked form of the paper's completeness claim.
func TestDichotomyCoverage(t *testing.T) {
	for _, labeled := range []bool{false, true} {
		tract, hard := tractableUnlabeled, hardUnlabeled
		if labeled {
			tract, hard = tractableLabeled, hardLabeled
		}
		for _, qc := range graph.AllClasses {
			for _, ic := range graph.AllClasses {
				coveredT := false
				for _, tc := range tract {
					if graph.ClassIncluded(qc, tc.q) && graph.ClassIncluded(ic, tc.i) {
						coveredT = true
					}
				}
				coveredH := false
				for _, hc := range hard {
					if graph.ClassIncluded(hc.q, qc) && graph.ClassIncluded(hc.i, ic) {
						coveredH = true
					}
				}
				if coveredT == coveredH {
					t.Errorf("cell (%v, %v, labeled=%v): tractable=%v hard=%v — dichotomy violated",
						qc, ic, labeled, coveredT, coveredH)
				}
				if v := Predict(qc, ic, labeled); strings.Contains(v.Reason, "UNCOVERED") {
					t.Errorf("Predict left cell (%v, %v, labeled=%v) uncovered", qc, ic, labeled)
				}
			}
		}
	}
}

// TestPredictMonotone: tractability must be downward closed along class
// inclusion (smaller classes can only be easier).
func TestPredictMonotone(t *testing.T) {
	for _, labeled := range []bool{false, true} {
		for _, qc := range graph.AllClasses {
			for _, ic := range graph.AllClasses {
				if !Predict(qc, ic, labeled).Tractable {
					continue
				}
				for _, qc2 := range graph.AllClasses {
					for _, ic2 := range graph.AllClasses {
						if graph.ClassIncluded(qc2, qc) && graph.ClassIncluded(ic2, ic) {
							if !Predict(qc2, ic2, labeled).Tractable {
								t.Errorf("(%v,%v) tractable but smaller (%v,%v) not (labeled=%v)",
									qc, ic, qc2, ic2, labeled)
							}
						}
					}
				}
			}
		}
	}
}

// TestPredictPaperBorderCells pins the border cells named in Tables 1–3.
func TestPredictPaperBorderCells(t *testing.T) {
	cases := []struct {
		qc, ic    graph.Class
		labeled   bool
		tractable bool
		propWant  string
	}{
		// Table 1.
		{graph.ClassU1WP, graph.ClassConnected, false, false, "5.1"},
		{graph.ClassU2WP, graph.Class2WP, false, false, "3.4"},
		{graph.ClassUDWT, graph.ClassPT, false, true, "5.5"},
		{graph.ClassAll, graph.ClassDWT, false, true, "3.6"},
		// Table 2.
		{graph.Class1WP, graph.ClassDWT, true, true, "4.10"},
		{graph.Class1WP, graph.ClassPT, true, false, "4.1"},
		{graph.Class2WP, graph.ClassDWT, true, false, "4.5"},
		{graph.ClassDWT, graph.ClassDWT, true, false, "4.4"},
		{graph.ClassConnected, graph.Class2WP, true, true, "4.11"},
		// Table 3.
		{graph.Class1WP, graph.ClassConnected, false, false, "5.1"},
		{graph.Class2WP, graph.ClassPT, false, false, "5.6"},
		{graph.ClassDWT, graph.ClassPT, false, true, "5.5"},
		{graph.ClassConnected, graph.Class2WP, false, true, "4.11"},
		{graph.ClassConnected, graph.ClassDWT, false, true, "3.6"},
		// §3.1: labeled disconnected queries are hard everywhere.
		{graph.ClassU1WP, graph.Class1WP, true, false, "3.3"},
	}
	for _, c := range cases {
		v := Predict(c.qc, c.ic, c.labeled)
		if v.Tractable != c.tractable {
			t.Errorf("Predict(%v, %v, labeled=%v) = %v, want tractable=%v",
				c.qc, c.ic, c.labeled, v, c.tractable)
		}
		if !strings.Contains(v.Reason, c.propWant) {
			t.Errorf("Predict(%v, %v, labeled=%v) reason %q, want mention of %q",
				c.qc, c.ic, c.labeled, v.Reason, c.propWant)
		}
	}
}

// TestSolverAgreesWithPrediction: whenever Predict says a cell is
// tractable, Solve with fallback disabled must succeed on random members
// of the cell; the converse (refusal on hard cells) is not required cell-
// wide since concrete inputs may fall in easier subclasses.
func TestSolverAgreesWithPrediction(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, labeled := range []bool{false, true} {
		labels := oneLabel
		if labeled {
			labels = twoLabels
		}
		for _, qc := range graph.AllClasses {
			for _, ic := range graph.AllClasses {
				if !Predict(qc, ic, labeled).Tractable {
					continue
				}
				for trial := 0; trial < 5; trial++ {
					q := gen.RandInClass(r, qc, 1+r.Intn(4), labels)
					h := gen.RandProb(r, gen.RandInClass(r, ic, 1+r.Intn(7), labels), 0.3)
					if _, err := Solve(q, h, &Options{DisableFallback: true}); err != nil {
						t.Fatalf("predicted-tractable cell (%v, %v, labeled=%v) refused: %v\nq=%v\nh=%v",
							qc, ic, labeled, err, q, h)
					}
				}
			}
		}
	}
}

func TestMethodStrings(t *testing.T) {
	for m := MethodTrivial; m <= MethodLineage; m++ {
		if m.String() == "method(?)" {
			t.Errorf("method %d has no name", m)
		}
	}
	if MethodBruteForce.PTime() || MethodLineage.PTime() {
		t.Error("baselines must not be PTime")
	}
	if !MethodAutomatonPT.PTime() {
		t.Error("automaton method is PTime")
	}
}

func TestCombineComponents(t *testing.T) {
	// Lemma 3.7 combination, now hosted by plan.Components:
	// 1 − (1 − 1/2)(1 − 1/3) = 1 − 1/3 = 2/3.
	c := plan.Components{Parts: []plan.Plan{
		plan.NewConst(big.NewRat(1, 2)),
		plan.NewConst(big.NewRat(1, 3)),
	}}
	got, err := c.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewRat(2, 3)) != 0 {
		t.Fatalf("Components.Evaluate = %s, want 2/3", got.RatString())
	}
}
