package core

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"phom/internal/boolform"
	"phom/internal/graph"
	"phom/internal/graphio"
	"phom/internal/phomerr"
	"phom/internal/plan"
)

// This file implements the two-stage solver pipeline: Compile runs the
// probability-independent phase of Solve (classification, dispatch,
// lineage/circuit construction) and returns a CompiledPlan; Evaluate
// replays only the linear probability computation. Solve and SolveUCQ
// are thin compositions of the two, so a compiled plan evaluated
// against any probability assignment is byte-identical to a fresh
// solve of the reweighted instance.

// CompiledPlan is an evaluable solver plan for one (query or UCQ,
// instance structure, options) job. Plans are immutable and safe for
// concurrent Evaluate calls.
//
// A non-opaque plan holds the same artifact twice: the plan tree built
// by the cell compilers of internal/plan (the PR 2 evaluation path,
// kept as the differential reference and for benchmarks) and its
// lowering to the flat Program IR, which is what Evaluate executes and
// what MarshalBinary serializes. Plans restored from a serialized form
// carry only the program (Tree evaluation is then unavailable); their
// Evaluate results are identical, because lowering preserves the exact
// rational arithmetic op for op.
type CompiledPlan struct {
	method Method
	opaque bool
	tree   plan.Plan     // plan tree; nil when opaque or restored from bytes
	prog   *plan.Program // flattened IR; nil when opaque
	// resolve is the opaque re-solve; it picks the baseline per
	// evaluation and honors the caller's context (the baselines are the
	// exponential work cancellation exists for).
	resolve  func(context.Context, []*big.Rat) (*Result, error)
	numEdges int
	// pol is the compile-time evaluation policy (Options precision,
	// tolerance and approx parameters, defaults resolved): Evaluate
	// routes through it, so a plan compiled for fast, auto or approx
	// serving keeps that behavior. Plans restored from bytes default to
	// exact — the serialized form carries arithmetic, not policy — and
	// the engine overrides per job via EvaluateOpts either way.
	pol evalPolicy
	// approx is the Karp–Luby sampling state of an opaque plan: the
	// lineage extraction and its memoized DNF (see approx.go). Nil on
	// structural plans — the approx mode never samples where a
	// polynomial-time exact algorithm exists. It is set on every opaque
	// plan, not just approx-compiled ones, because the plan cache shares
	// one plan across precision modes.
	approx *approxState
	// key yields the job's structure identity — graphio.StructKeyJob
	// plus the compile-time canonical edge order — memoized and
	// computed on first use (sync.OnceValues), so plain Solve callers
	// never pay for hashing a key they don't consume. Plans restored
	// from bytes carry the decoded identity directly.
	key func() (structKey string, canonOrder []int)
}

// NumEdges returns the length of the probability vector Evaluate
// expects: the number of edges of the instance the plan was compiled
// from.
func (cp *CompiledPlan) NumEdges() int { return cp.numEdges }

// StructKey returns the structure key of the job the plan was compiled
// for — the probability-independent job hash of graphio (identical to
// the structKey of graphio.JobKeys), which keys the engine's plan
// cache and is embedded in the serialized form. Computed on first use,
// then memoized; safe for concurrent callers.
func (cp *CompiledPlan) StructKey() string {
	k, _ := cp.key()
	return k
}

// CanonOrder returns the canonical edge order of the compile-time
// instance (graphio.CanonicalEdgeOrder), used to transport probability
// vectors of structurally identical instances with different edge
// numberings onto the plan's numbering. The returned slice is shared
// and must not be mutated.
func (cp *CompiledPlan) CanonOrder() []int {
	_, order := cp.key()
	return order
}

// Program returns the flattened evaluation program, or nil for opaque
// plans.
func (cp *CompiledPlan) Program() *plan.Program { return cp.prog }

// Opaque reports whether the plan has no exploitable structure (an
// exponential-baseline cell): evaluation re-solves from scratch, so
// reuse is correct but not faster.
func (cp *CompiledPlan) Opaque() bool { return cp.opaque }

// Method returns the solver method a structural plan evaluates with.
// For opaque plans ok is false: the baseline (brute force vs lineage)
// is chosen per evaluation, since it depends on how many edges the
// probability assignment leaves uncertain.
func (cp *CompiledPlan) Method() (m Method, ok bool) {
	if cp.opaque {
		return 0, false
	}
	return cp.method, true
}

// Evaluate computes Pr(G ⇝ H) under the probability assignment probs,
// indexed by the edge list of the instance the plan was compiled from
// (see graph.ProbGraph.Probs), on the numeric substrate the plan was
// compiled for (Options.Precision; see EvaluateOpts to override). With
// the default exact precision the result is byte-identical to Solve on
// the correspondingly reweighted instance; with fast or auto it may be
// a certified float64 enclosure instead (Result.Bounds).
func (cp *CompiledPlan) Evaluate(probs []*big.Rat) (*Result, error) {
	return cp.evaluate(context.Background(), probs, cp.pol)
}

// EvaluateContext is Evaluate under a context: exact evaluation and
// opaque re-solves poll ctx at cooperative checkpoints (the float
// kernel runs to completion — it is microseconds even on huge plans).
func (cp *CompiledPlan) EvaluateContext(ctx context.Context, probs []*big.Rat) (*Result, error) {
	return cp.evaluate(ctx, probs, cp.pol)
}

// EvaluateTree evaluates through the plan tree instead of the
// flattened program — the PR 2 evaluation path, kept as the
// differential reference (the tests pin Exec and tree evaluation
// byte-identical) and for the interpreter-vs-tree benchmark. It fails
// for opaque plans and for plans restored from bytes, which carry no
// tree.
func (cp *CompiledPlan) EvaluateTree(probs []*big.Rat) (*Result, error) {
	if cp.tree == nil {
		return nil, fmt.Errorf("core: plan has no tree evaluator (opaque or restored from bytes)")
	}
	pr, err := cp.tree.Evaluate(probs)
	if err != nil {
		return nil, err
	}
	return &Result{Prob: pr, Method: cp.method}, nil
}

// EvaluateInstance evaluates the plan against the probabilities of h,
// which must carry the structure the plan was compiled from.
func (cp *CompiledPlan) EvaluateInstance(h *graph.ProbGraph) (*Result, error) {
	return cp.Evaluate(h.Probs())
}

// MarshalBinary encodes the plan in the canonical binary form of
// graphio (versioned header, flattened program, embedded structure key
// and canonical edge order). Opaque plans are not serializable: their
// evaluation is an exponential re-solve, not data.
func (cp *CompiledPlan) MarshalBinary() ([]byte, error) {
	if cp.opaque {
		return nil, fmt.Errorf("core: opaque plans are not serializable: %w", plan.ErrOpaque)
	}
	structKey, canonOrder := cp.key()
	return graphio.AppendPlanRecord(nil, &graphio.PlanRecord{
		StructKey:  structKey,
		Method:     uint8(cp.method),
		CanonOrder: canonOrder,
		Program:    cp.prog,
	})
}

// UnmarshalBinary decodes a plan encoded by MarshalBinary. The decoded
// program has passed full static validation, so a plan restored from
// untrusted bytes can be evaluated but not made to panic; results are
// correct exactly when the bytes came from an honest encoder.
func (cp *CompiledPlan) UnmarshalBinary(data []byte) error {
	rec, err := graphio.DecodePlanRecord(data)
	if err != nil {
		return err
	}
	m := Method(rec.Method)
	if m > MethodAutomatonPT {
		return fmt.Errorf("core: serialized plan has non-structural method %d", rec.Method)
	}
	structKey, canonOrder := rec.StructKey, rec.CanonOrder
	*cp = CompiledPlan{
		method:   m,
		prog:     rec.Program,
		numEdges: rec.Program.NumEdges,
		key:      func() (string, []int) { return structKey, canonOrder },
	}
	return nil
}

// solveRoute is one tractable cell the solver can dispatch a single
// conjunctive query to: a guard over the input pair and the
// probability-independent compiler realizing the cell's algorithm. The
// guard table below replaces the previously mirrored connected /
// disconnected dispatch arms of Solve; routes are tried in order and
// the first applicable one wins, preserving the historical dispatch
// priority exactly (2WP intervals, then graded normalization, then
// labeled chains, then the polytree automaton).
type solveRoute struct {
	method  Method
	applies func(q *graph.Graph, h *graph.ProbGraph, unlabeled bool) bool
	compile func(q *graph.Graph, h *graph.ProbGraph) (plan.Plan, error)
}

var solveRoutes = []solveRoute{
	{
		// Proposition 4.11 + Lemma 3.7.
		method: MethodXProperty2WP,
		applies: func(q *graph.Graph, h *graph.ProbGraph, _ bool) bool {
			return q.IsConnected() && h.G.InClass(graph.ClassU2WP)
		},
		compile: func(q *graph.Graph, h *graph.ProbGraph) (plan.Plan, error) {
			return plan.ConnectedOn2WP(q, h)
		},
	},
	{
		// Proposition 3.6: any unlabeled query on ⊔DWT, graded or not
		// (a non-graded query has probability 0 on forest worlds).
		method: MethodGradedDWT,
		applies: func(_ *graph.Graph, h *graph.ProbGraph, unlabeled bool) bool {
			return unlabeled && h.G.InClass(graph.ClassUDWT)
		},
		compile: func(q *graph.Graph, h *graph.ProbGraph) (plan.Plan, error) {
			m, graded := q.DifferenceOfLevels()
			if !graded {
				return plan.NewConst(new(big.Rat)), nil
			}
			return plan.DirectedPathOnDWTs(h, m)
		},
	},
	{
		// Proposition 4.10 + Lemma 3.7 (labeled: the unlabeled case was
		// caught by the graded route above). A 1WP is connected, so this
		// route subsumes the old connected-arm guard.
		method: MethodBetaAcyclicDWT,
		applies: func(q *graph.Graph, h *graph.ProbGraph, _ bool) bool {
			return q.Is1WP() && h.G.InClass(graph.ClassUDWT)
		},
		compile: func(q *graph.Graph, h *graph.ProbGraph) (plan.Plan, error) {
			return plan.Path1WPOnDWT(q, h)
		},
	},
	{
		// Propositions 5.4/5.5 + Lemma 3.7. For a connected query,
		// membership in ⊔DWT coincides with membership in DWT, so one
		// guard covers both historical dispatch arms.
		method: MethodAutomatonPT,
		applies: func(q *graph.Graph, h *graph.ProbGraph, unlabeled bool) bool {
			return unlabeled && q.InClass(graph.ClassUDWT) && h.G.InClass(graph.ClassUPT)
		},
		compile: func(q *graph.Graph, h *graph.ProbGraph) (plan.Plan, error) {
			return plan.DirectedPathOnPolytrees(h, q.Height())
		},
	},
}

// Compile runs the probability-independent phase of Solve on (q, h):
// validation, classification, dispatch, construction of the cell's
// evaluation artifact, and its lowering to the flat Program IR. The
// probabilities of h are used only for validation — the returned plan
// depends solely on the structure of q and h (and on opts, for the
// baseline limits), so it can be evaluated against any probability
// assignment over h's edge list.
func Compile(q *graph.Graph, h *graph.ProbGraph, opts *Options) (*CompiledPlan, error) {
	return CompileContext(context.Background(), q, h, opts)
}

// CompileContext is Compile under a context. The guard-table dispatch
// polls ctx before each route, and the lowering of the chosen cell's
// artifact to the Program IR polls it every phomerr.CheckInterval
// emitted ops, so a cancelled context aborts even a large compile-time
// dynamic program within one checkpoint interval. A compile that
// completes is identical to Compile's.
func CompileContext(ctx context.Context, q *graph.Graph, h *graph.ProbGraph, opts *Options) (*CompiledPlan, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := phomerr.FromContext(ctx); err != nil {
		return nil, err
	}
	if q.NumVertices() == 0 {
		return nil, phomerr.New(phomerr.CodeBadInput, "core: empty query graph")
	}
	if h.G.NumVertices() == 0 {
		return nil, phomerr.New(phomerr.CodeBadInput, "core: empty instance graph")
	}
	if err := phomerr.Wrap(phomerr.CodeBadInput, h.Validate()); err != nil {
		return nil, err
	}
	n := h.G.NumEdges()
	key := sync.OnceValues(func() (string, []int) {
		return graphio.StructKeyJob([]string{graphio.CanonicalGraph(q)}, h.G, opts.StructFingerprint())
	})
	// An edgeless query maps every vertex to any instance vertex.
	if q.NumEdges() == 0 {
		return seal(ctx, MethodTrivial, plan.NewConst(graph.RatOne), n, key, opts)
	}
	// A query label absent from the instance kills every match.
	hLabels := map[graph.Label]bool{}
	for _, l := range h.G.Labels() {
		hLabels[l] = true
	}
	for _, l := range q.Labels() {
		if !hLabels[l] {
			return seal(ctx, MethodLabelMismatch, plan.NewConst(new(big.Rat)), n, key, opts)
		}
	}
	// After the check above, the unlabeled setting (|σ| = 1) holds iff
	// the instance uses at most one label.
	unlabeled := len(hLabels) <= 1

	for _, rt := range solveRoutes {
		// The guard-table checkpoint: route guards run class membership
		// tests (linear in the instance), so poll between routes.
		if err := phomerr.FromContext(ctx); err != nil {
			return nil, err
		}
		if rt.applies(q, h, unlabeled) {
			p, err := rt.compile(q, h)
			if err != nil {
				return nil, err
			}
			return seal(ctx, rt.method, p, n, key, opts)
		}
	}

	bruteLimit, matchLimit := opts.bruteLimit(), opts.matchLimit()
	extract := cqLineageExtract(q, h.G, matchLimit)
	if opts.disableFallback() {
		err := phomerr.New(phomerr.CodeIntractable,
			"core: no polynomial-time algorithm applies (the case is #P-hard per Tables 1–3) and fallback is disabled")
		if opts.EffectivePrecision() != PrecisionApprox {
			return nil, err
		}
		// Approx mode under DisableFallback: the caller refused the
		// exponential baselines, not the sampler. Compile an opaque plan
		// whose exact re-solve still fails with the pinned intractable
		// error (an exact job hitting this cached plan behaves exactly as
		// if it had compiled it) while approx evaluation samples.
		resolve := func(context.Context, []*big.Rat) (*Result, error) { return nil, err }
		return opaquePlan(resolve, extract, n, key, opts), nil
	}
	resolve := func(ctx context.Context, probs []*big.Rat) (*Result, error) {
		h2, err := reweighted(h, probs)
		if err != nil {
			return nil, err
		}
		if p, err := BruteForceLimitContext(ctx, q, h2, bruteLimit); err == nil {
			return &Result{Prob: p, Method: MethodBruteForce}, nil
		} else if phomerr.CodeOf(err) != phomerr.CodeLimit {
			return nil, err // cancellation, not an over-limit instance
		}
		p, err := LineageShannonContext(ctx, q, h2, matchLimit)
		if err != nil {
			if phomerr.CodeOf(err) == phomerr.CodeLimit {
				return nil, phomerr.New(phomerr.CodeLimit, "core: instance too large for exact baselines: %v", err)
			}
			return nil, err
		}
		return &Result{Prob: p, Method: MethodLineage}, nil
	}
	return opaquePlan(resolve, extract, n, key, opts), nil
}

// CompileUCQ runs the probability-independent phase of SolveUCQ,
// dispatching to a lifted polynomial-time compiler when every disjunct
// falls in a compatible tractable cell and to an opaque re-solve plan
// otherwise (unless fallback is disabled).
func CompileUCQ(qs UCQ, h *graph.ProbGraph, opts *Options) (*CompiledPlan, error) {
	return CompileUCQContext(context.Background(), qs, h, opts)
}

// CompileUCQContext is CompileUCQ under a context, with the same
// checkpoint contract as CompileContext.
func CompileUCQContext(ctx context.Context, qs UCQ, h *graph.ProbGraph, opts *Options) (*CompiledPlan, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := phomerr.FromContext(ctx); err != nil {
		return nil, err
	}
	if len(qs) == 0 {
		key := sync.OnceValues(func() (string, []int) {
			return graphio.StructKeyJob(nil, h.G, opts.StructFingerprint())
		})
		return seal(ctx, MethodTrivial, plan.NewConst(new(big.Rat)), h.G.NumEdges(), key, opts)
	}
	if h.G.NumVertices() == 0 {
		return nil, phomerr.New(phomerr.CodeBadInput, "core: empty instance graph")
	}
	if err := phomerr.Wrap(phomerr.CodeBadInput, h.Validate()); err != nil {
		return nil, err
	}
	n := h.G.NumEdges()
	// The lazy key canonicalizes the original disjunct list (copied —
	// the caller keeps its slice — and sorted: union order is
	// irrelevant to the probability), matching the engine's keying, so
	// the structure key stamped on the plan is the one the engine's
	// plan cache derives for the same job.
	qsCopy := append(UCQ(nil), qs...)
	key := sync.OnceValues(func() (string, []int) {
		queryCanon := make([]string, len(qsCopy))
		for i, q := range qsCopy {
			queryCanon[i] = graphio.CanonicalGraph(q)
		}
		sort.Strings(queryCanon)
		return graphio.StructKeyJob(queryCanon, h.G, opts.StructFingerprint())
	})
	hLabels := map[graph.Label]bool{}
	for _, l := range h.G.Labels() {
		hLabels[l] = true
	}
	// Drop disjuncts that can never match; an edgeless disjunct matches
	// always.
	var live UCQ
	for _, q := range qs {
		if q.NumVertices() == 0 {
			return nil, phomerr.New(phomerr.CodeBadInput, "core: empty query graph in union")
		}
		if q.NumEdges() == 0 {
			return seal(ctx, MethodTrivial, plan.NewConst(graph.RatOne), n, key, opts)
		}
		ok := true
		for _, l := range q.Labels() {
			if !hLabels[l] {
				ok = false
				break
			}
		}
		if ok {
			live = append(live, q)
		}
	}
	if len(live) == 0 {
		return seal(ctx, MethodLabelMismatch, plan.NewConst(new(big.Rat)), n, key, opts)
	}
	unlabeled := len(hLabels) <= 1
	// The UCQ guard-table checkpoint, mirroring CompileContext's: the
	// lifted dispatch below runs class membership tests per disjunct.
	if err := phomerr.FromContext(ctx); err != nil {
		return nil, err
	}

	allConnected := true
	for _, q := range live {
		if !q.IsConnected() {
			allConnected = false
			break
		}
	}

	// Unlabeled ⊔DWT-equivalent unions collapse to the shortest path.
	if unlabeled {
		minM := -1
		for _, q := range live {
			m, ok := q.DifferenceOfLevels()
			if !ok {
				continue // non-graded disjunct: contributes only on ⊔DWT instances, where it is 0
			}
			if minM < 0 || m < minM {
				minM = m
			}
		}
		if h.G.InClass(graph.ClassUDWT) {
			// Prop 3.6 lifted: non-graded disjuncts never match a forest
			// world; the rest collapse to →^minM.
			if minM < 0 {
				return seal(ctx, MethodGradedDWT, plan.NewConst(new(big.Rat)), n, key, opts)
			}
			p, err := plan.DirectedPathOnDWTs(h, minM)
			if err != nil {
				return nil, err
			}
			return seal(ctx, MethodGradedDWT, p, n, key, opts)
		}
		if h.G.InClass(graph.ClassUPT) {
			// Prop 5.5 lifted, when every disjunct is a ⊔DWT query (the
			// equivalence with →^m then holds on all instances).
			allUDWT := true
			for _, q := range live {
				if !q.InClass(graph.ClassUDWT) {
					allUDWT = false
					break
				}
			}
			if allUDWT {
				m := 0
				for i, q := range live {
					hq := q.Height()
					if i == 0 || hq < m {
						m = hq
					}
				}
				p, err := plan.DirectedPathOnPolytrees(h, m)
				if err != nil {
					return nil, err
				}
				return seal(ctx, MethodAutomatonPT, p, n, key, opts)
			}
		}
	}

	// Connected disjuncts on ⊔2WP instances: merged interval lineage.
	if allConnected && h.G.InClass(graph.ClassU2WP) {
		p, err := plan.UnionConnectedOn2WP(live, h)
		if err != nil {
			return nil, err
		}
		return seal(ctx, MethodXProperty2WP, p, n, key, opts)
	}

	// Labeled 1WP disjuncts on ⊔DWT instances: merged chain lineage
	// (keep the shortest clause per node).
	all1WP := true
	for _, q := range live {
		if !q.Is1WP() {
			all1WP = false
			break
		}
	}
	if all1WP && h.G.InClass(graph.ClassUDWT) {
		p, err := plan.Union1WPOnDWT(live, h)
		if err != nil {
			return nil, err
		}
		return seal(ctx, MethodBetaAcyclicDWT, p, n, key, opts)
	}

	extract := ucqLineageExtract(live, h.G, opts.matchLimit())
	if opts.disableFallback() {
		err := phomerr.New(phomerr.CodeIntractable,
			"core: no lifted polynomial-time algorithm applies to this UCQ and fallback is disabled")
		if opts.EffectivePrecision() != PrecisionApprox {
			return nil, err
		}
		// Same contract as CompileContext: exact re-solves keep the pinned
		// intractable error, approx evaluation samples the union lineage.
		resolve := func(context.Context, []*big.Rat) (*Result, error) { return nil, err }
		return opaquePlan(resolve, extract, n, key, opts), nil
	}
	bruteLimit := opts.bruteLimit()
	resolve := func(ctx context.Context, probs []*big.Rat) (*Result, error) {
		h2, err := reweighted(h, probs)
		if err != nil {
			return nil, err
		}
		p, err := BruteForceUCQContext(ctx, live, h2, bruteLimit)
		if err != nil {
			return nil, err
		}
		return &Result{Prob: p, Method: MethodBruteForce}, nil
	}
	return opaquePlan(resolve, extract, n, key, opts), nil
}

// seal lowers a plan tree to its flattened program and stamps the
// job's structure identity and evaluation substrate (opts precision)
// on the resulting CompiledPlan. Every structural compile path funnels
// through here, so non-opaque plans always carry both evaluation forms
// and are always serializable — and every lowering polls ctx (the
// compile-time dynamic programs unroll inside Lower, so this is where
// the bulk of compile-side cancellation happens).
func seal(ctx context.Context, m Method, p plan.Plan, numEdges int, key func() (string, []int), opts *Options) (*CompiledPlan, error) {
	prog, err := plan.LowerContext(ctx, p, numEdges)
	if err != nil {
		return nil, err
	}
	return &CompiledPlan{
		method:   m,
		tree:     p,
		prog:     prog,
		numEdges: numEdges,
		key:      key,
		pol:      opts.policy(),
	}, nil
}

// opaquePlan builds the plan of an exponential-baseline cell: resolve
// is the exact re-solve, extract the lineage extraction the approx mode
// samples over. Every opaque plan carries both — which path an
// evaluation takes is decided by its policy, and a cached plan serves
// jobs of every precision mode.
func opaquePlan(resolve func(context.Context, []*big.Rat) (*Result, error), extract func(context.Context) (*boolform.DNF, error), numEdges int, key func() (string, []int), opts *Options) *CompiledPlan {
	return &CompiledPlan{
		opaque:   true,
		resolve:  resolve,
		approx:   &approxState{extract: extract},
		numEdges: numEdges,
		key:      key,
		pol:      opts.policy(),
	}
}

// reweighted returns h's structure carrying the given probability
// assignment; the underlying graph is shared (it is read-only to the
// solver), the probabilities are fresh.
func reweighted(h *graph.ProbGraph, probs []*big.Rat) (*graph.ProbGraph, error) {
	h2 := graph.NewProbGraph(h.G)
	for i, p := range probs {
		if err := h2.SetProb(i, p); err != nil {
			return nil, err
		}
	}
	return h2, nil
}
