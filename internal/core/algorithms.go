package core

import (
	"fmt"
	"math/big"

	"phom/internal/graph"
	"phom/internal/plan"
)

// The per-proposition solvers below are kept as the stable names of the
// paper's algorithms; since the compile/evaluate split they are thin
// wrappers that build the cell's probability-independent plan (package
// plan) and evaluate it against the instance's own probabilities. The
// Lemma 3.7 component combination lives in plan.Components.

// SolvePath1WPOnDWT implements Proposition 4.10 extended to forests by
// Lemma 3.7: Pr(G ⇝ H) for a 1WP query with at least one edge and an
// instance whose components are downward trees, in polynomial time, by
// building the β-acyclic DNF lineage of the query and evaluating it with
// the chain-system dynamic program.
func SolvePath1WPOnDWT(q *graph.Graph, h *graph.ProbGraph) (*big.Rat, error) {
	if !q.Is1WP() || q.NumEdges() == 0 {
		return nil, fmt.Errorf("core: SolvePath1WPOnDWT needs a 1WP query with ≥1 edge")
	}
	if !h.G.InClass(graph.ClassUDWT) {
		return nil, fmt.Errorf("core: SolvePath1WPOnDWT needs a ⊔DWT instance")
	}
	p, err := plan.Path1WPOnDWT(q, h)
	if err != nil {
		return nil, err
	}
	return p.Evaluate(h.Probs())
}

// SolveConnectedOn2WP implements Proposition 4.11 extended to forests of
// paths by Lemma 3.7: Pr(G ⇝ H) for a connected query with at least one
// edge and an instance whose components are two-way paths, in polynomial
// time, via the X-property homomorphism test and the interval-system
// dynamic program on the β-acyclic lineage.
func SolveConnectedOn2WP(q *graph.Graph, h *graph.ProbGraph) (*big.Rat, error) {
	if !q.IsConnected() || q.NumEdges() == 0 {
		return nil, fmt.Errorf("core: SolveConnectedOn2WP needs a connected query with ≥1 edge")
	}
	if !h.G.InClass(graph.ClassU2WP) {
		return nil, fmt.Errorf("core: SolveConnectedOn2WP needs a ⊔2WP instance")
	}
	p, err := plan.ConnectedOn2WP(q, h)
	if err != nil {
		return nil, err
	}
	return p.Evaluate(h.Probs())
}

// DirectedPathProbOnPolytrees computes the probability that a possible
// world of the ⊔PT instance h contains a directed path of m edges
// (ignoring labels, as in the unlabeled setting), by running the
// Proposition 5.4 automaton/d-DNNF pipeline on every polytree component
// and combining with Lemma 3.7.
func DirectedPathProbOnPolytrees(h *graph.ProbGraph, m int) (*big.Rat, error) {
	if m == 0 {
		return big.NewRat(1, 1), nil
	}
	if !h.G.InClass(graph.ClassUPT) {
		return nil, fmt.Errorf("core: DirectedPathProbOnPolytrees needs a ⊔PT instance")
	}
	p, err := plan.DirectedPathOnPolytrees(h, m)
	if err != nil {
		return nil, err
	}
	return p.Evaluate(h.Probs())
}

// DirectedPathProbOnDWTs computes the probability that a possible world
// of the ⊔DWT instance h contains a directed path of m edges, using the
// chain-system dynamic program (the unlabeled special case of the
// Proposition 4.10 lineage). It is the workhorse of Proposition 3.6.
func DirectedPathProbOnDWTs(h *graph.ProbGraph, m int) (*big.Rat, error) {
	if m == 0 {
		return big.NewRat(1, 1), nil
	}
	if !h.G.InClass(graph.ClassUDWT) {
		return nil, fmt.Errorf("core: DirectedPathProbOnDWTs needs a ⊔DWT instance")
	}
	p, err := plan.DirectedPathOnDWTs(h, m)
	if err != nil {
		return nil, err
	}
	return p.Evaluate(h.Probs())
}

// SolveAllOnDWT implements Proposition 3.6: Pr(G ⇝ H) for an arbitrary
// unlabeled query (connected or not) on a ⊔DWT instance, in polynomial
// time. If G is not a graded DAG the probability is 0; otherwise, on
// every possible world of H, G is equivalent to the one-way path →^m
// where m is G's difference of levels, so the answer is the probability
// that a world contains a directed path of length m.
//
// The caller must ensure the unlabeled setting (G's labels occur in H and
// |σ| ≤ 1); labels are ignored here.
func SolveAllOnDWT(q *graph.Graph, h *graph.ProbGraph) (*big.Rat, error) {
	if !h.G.InClass(graph.ClassUDWT) {
		return nil, fmt.Errorf("core: SolveAllOnDWT needs a ⊔DWT instance")
	}
	m, graded := q.DifferenceOfLevels()
	if !graded {
		return new(big.Rat), nil
	}
	return DirectedPathProbOnDWTs(h, m)
}

// SolveUDWTQueryOnPolytrees implements Proposition 5.5 (with
// Proposition 5.4 and Lemma 3.7): Pr(G ⇝ H) for an unlabeled ⊔DWT query
// on a ⊔PT instance, in polynomial time. The query is equivalent to the
// one-way path of length its height, over every instance.
func SolveUDWTQueryOnPolytrees(q *graph.Graph, h *graph.ProbGraph) (*big.Rat, error) {
	if !q.InClass(graph.ClassUDWT) {
		return nil, fmt.Errorf("core: SolveUDWTQueryOnPolytrees needs a ⊔DWT query")
	}
	m := q.Height()
	return DirectedPathProbOnPolytrees(h, m)
}
