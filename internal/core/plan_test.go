package core

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
)

// tractableJobs generates one (query, instance) pair per tractable cell
// of Tables 1–3, plus a baseline (hard-cell) pair.
func tractableJobs(r *rand.Rand, n int) []struct {
	name string
	q    *graph.Graph
	h    *graph.ProbGraph
} {
	rs := []graph.Label{"R", "S"}
	un := []graph.Label{graph.Unlabeled}
	return []struct {
		name string
		q    *graph.Graph
		h    *graph.ProbGraph
	}{
		{"prop4.10 labeled 1WP on ⊔DWT", gen.Rand1WP(r, 4, rs),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, rs), 0.5)},
		{"prop4.11 connected on ⊔2WP", gen.RandConnected(r, 4, 1, rs),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, n, rs), 0.5)},
		{"prop3.6 any on ⊔DWT", gen.RandGraph(r, 5, 7, un),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, un), 0.5)},
		{"prop5.4/5.5 ⊔DWT on ⊔PT", gen.RandDWT(r, 4, un),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUPT, n, un), 0.5)},
		{"baseline (hard cell)", gen.Rand1WP(r, 3, rs),
			gen.RandProb(r, gen.RandGraph(r, 5, 8, rs), 0.3)},
	}
}

// reweightRandomly assigns fresh random probabilities to every edge.
func reweightRandomly(r *rand.Rand, h *graph.ProbGraph) {
	for i := 0; i < h.G.NumEdges(); i++ {
		if err := h.SetProb(i, big.NewRat(int64(r.Intn(17)), 16)); err != nil {
			panic(err)
		}
	}
}

// TestCompileEvaluateMatchesSolve is the pipeline acceptance test: for
// every tractable cell (and the baselines), Compile(q, h).Evaluate(π)
// must return results byte-identical (RatString) to Solve, both on the
// original probabilities and across reweightings of the same structure.
func TestCompileEvaluateMatchesSolve(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for round := 0; round < 4; round++ {
		for _, job := range tractableJobs(r, 24) {
			cp, err := Compile(job.q, job.h, nil)
			if err != nil {
				t.Fatalf("%s: Compile: %v", job.name, err)
			}
			if cp.NumEdges() != job.h.G.NumEdges() {
				t.Fatalf("%s: NumEdges = %d, want %d", job.name, cp.NumEdges(), job.h.G.NumEdges())
			}
			for reweight := 0; reweight < 4; reweight++ {
				want, err := Solve(job.q, job.h, nil)
				if err != nil {
					t.Fatalf("%s: Solve: %v", job.name, err)
				}
				got, err := cp.Evaluate(job.h.Probs())
				if err != nil {
					t.Fatalf("%s: Evaluate: %v", job.name, err)
				}
				if got.Prob.RatString() != want.Prob.RatString() {
					t.Fatalf("%s reweight %d: plan %s, solve %s",
						job.name, reweight, got.Prob.RatString(), want.Prob.RatString())
				}
				if got.Method != want.Method {
					t.Fatalf("%s reweight %d: plan method %v, solve method %v",
						job.name, reweight, got.Method, want.Method)
				}
				if m, ok := cp.Method(); ok && m != want.Method {
					t.Fatalf("%s: declared method %v, solve method %v", job.name, m, want.Method)
				}
				reweightRandomly(r, job.h)
			}
		}
	}
}

// TestCompileUCQEvaluateMatchesSolveUCQ mirrors the pipeline test for
// unions of conjunctive queries across the lifted tractable cells.
func TestCompileUCQEvaluateMatchesSolveUCQ(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rs := []graph.Label{"R", "S"}
	un := []graph.Label{graph.Unlabeled}
	unions := []struct {
		name string
		qs   UCQ
		h    *graph.ProbGraph
	}{
		{"interval union on ⊔2WP",
			UCQ{gen.Rand1WP(r, 3, rs), gen.RandConnected(r, 4, 1, rs)},
			gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, 20, rs), 0.5)},
		{"chain union on ⊔DWT",
			UCQ{gen.Rand1WP(r, 3, rs), gen.Rand1WP(r, 4, rs)},
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 20, rs), 0.5)},
		{"graded union on ⊔DWT",
			UCQ{gen.RandGraph(r, 4, 5, un), gen.RandGraph(r, 5, 6, un)},
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 20, un), 0.5)},
		{"automaton union on ⊔PT",
			UCQ{gen.RandDWT(r, 3, un), gen.RandDWT(r, 4, un)},
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUPT, 16, un), 0.5)},
		{"baseline union",
			UCQ{gen.Rand1WP(r, 2, rs), gen.RandConnected(r, 3, 1, rs)},
			gen.RandProb(r, gen.RandGraph(r, 5, 8, rs), 0.3)},
	}
	for _, u := range unions {
		cp, err := CompileUCQ(u.qs, u.h, nil)
		if err != nil {
			t.Fatalf("%s: CompileUCQ: %v", u.name, err)
		}
		for reweight := 0; reweight < 4; reweight++ {
			want, err := SolveUCQ(u.qs, u.h, nil)
			if err != nil {
				t.Fatalf("%s: SolveUCQ: %v", u.name, err)
			}
			got, err := cp.Evaluate(u.h.Probs())
			if err != nil {
				t.Fatalf("%s: Evaluate: %v", u.name, err)
			}
			if got.Prob.RatString() != want.Prob.RatString() {
				t.Fatalf("%s reweight %d: plan %s, solve %s",
					u.name, reweight, got.Prob.RatString(), want.Prob.RatString())
			}
			if got.Method != want.Method {
				t.Fatalf("%s reweight %d: method %v vs %v", u.name, reweight, got.Method, want.Method)
			}
			reweightRandomly(r, u.h)
		}
	}
}

// TestOpaquePlanSwitchesBaseline: the opaque plan picks brute force or
// lineage per evaluation, matching what a fresh Solve would do on the
// same probabilities.
func TestOpaquePlanSwitchesBaseline(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	rs := []graph.Label{"R", "S"}
	q := gen.Rand1WP(r, 3, rs)
	h := gen.RandProb(r, gen.RandGraph(r, 6, 10, rs), 0.5)
	// A tiny brute-force limit forces the lineage baseline whenever more
	// than one edge is uncertain.
	opts := &Options{BruteForceLimit: 1}
	cp, err := Compile(q, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Opaque() {
		t.Fatal("hard cell must compile to an opaque plan")
	}
	if _, ok := cp.Method(); ok {
		t.Fatal("opaque plans must not declare a method upfront")
	}
	// Certain probabilities: 0 uncertain edges, brute force applies.
	certain := make([]*big.Rat, h.G.NumEdges())
	for i := range certain {
		certain[i] = graph.RatOne
	}
	res, err := cp.Evaluate(certain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodBruteForce {
		t.Fatalf("certain evaluation used %v, want brute force", res.Method)
	}
	// Half probabilities: many uncertain edges, lineage takes over.
	res2, err := cp.Evaluate(halves(h.G.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Method != MethodLineage {
		t.Fatalf("uncertain evaluation used %v, want lineage", res2.Method)
	}
	want, err := Solve(q, reweightedTo(h, halves(h.G.NumEdges())), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Prob.RatString() != want.Prob.RatString() {
		t.Fatalf("opaque plan %s, solve %s", res2.Prob.RatString(), want.Prob.RatString())
	}
}

func halves(n int) []*big.Rat {
	out := make([]*big.Rat, n)
	for i := range out {
		out[i] = graph.RatHalf
	}
	return out
}

func reweightedTo(h *graph.ProbGraph, probs []*big.Rat) *graph.ProbGraph {
	h2, err := reweighted(h, probs)
	if err != nil {
		panic(err)
	}
	return h2
}

// TestPlanEvaluateRejectsBadProbs: evaluation validates the probability
// vector (length, nil entries, [0,1] range).
func TestPlanEvaluateRejectsBadProbs(t *testing.T) {
	q := graph.Path1WP("R")
	h := graph.NewProbGraph(graph.Path1WP("R", "R"))
	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Evaluate([]*big.Rat{graph.RatOne}); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := cp.Evaluate([]*big.Rat{graph.RatOne, nil}); err == nil {
		t.Error("nil probability accepted")
	}
	if _, err := cp.Evaluate([]*big.Rat{graph.RatOne, big.NewRat(3, 2)}); err == nil {
		t.Error("probability > 1 accepted")
	}
}

// TestOptionsValidate: negative limits are rejected by Solve, SolveUCQ
// and Compile instead of silently meaning "unbounded".
func TestOptionsValidate(t *testing.T) {
	q := graph.Path1WP("R")
	h := graph.NewProbGraph(graph.Path1WP("R"))
	for name, opts := range map[string]*Options{
		"negative brute limit": {BruteForceLimit: -1},
		"negative match limit": {MatchLimit: -7},
	} {
		if _, err := Solve(q, h, opts); err == nil || !strings.Contains(err.Error(), "negative") {
			t.Errorf("Solve with %s: err = %v, want negative-limit rejection", name, err)
		}
		if _, err := SolveUCQ(UCQ{q}, h, opts); err == nil || !strings.Contains(err.Error(), "negative") {
			t.Errorf("SolveUCQ with %s: err = %v, want negative-limit rejection", name, err)
		}
		if _, err := Compile(q, h, opts); err == nil || !strings.Contains(err.Error(), "negative") {
			t.Errorf("Compile with %s: err = %v, want negative-limit rejection", name, err)
		}
	}
	if err := (*Options)(nil).Validate(); err != nil {
		t.Errorf("nil options must validate: %v", err)
	}
	if err := (&Options{BruteForceLimit: 10, MatchLimit: 100}).Validate(); err != nil {
		t.Errorf("positive limits must validate: %v", err)
	}
}

// TestFingerprintRoundTrip: nil options and explicitly spelled-out
// defaults fingerprint identically (they select the same behavior and
// must share cache entries), while any differing field — including the
// fallback switch — fingerprints apart.
func TestFingerprintRoundTrip(t *testing.T) {
	var nilOpts *Options
	explicit := &Options{
		BruteForceLimit: DefaultBruteForceLimit,
		MatchLimit:      DefaultMatchLimit,
	}
	if nilOpts.Fingerprint() != explicit.Fingerprint() {
		t.Errorf("nil vs explicit defaults: %q vs %q", nilOpts.Fingerprint(), explicit.Fingerprint())
	}
	if (&Options{}).Fingerprint() != nilOpts.Fingerprint() {
		t.Errorf("zero options differ from nil: %q vs %q", (&Options{}).Fingerprint(), nilOpts.Fingerprint())
	}
	distinct := []*Options{
		{BruteForceLimit: 3},
		{MatchLimit: 9},
		{DisableFallback: true},
	}
	seen := map[string]bool{nilOpts.Fingerprint(): true}
	for _, o := range distinct {
		fp := o.Fingerprint()
		if seen[fp] {
			t.Errorf("options %+v collide with a previous fingerprint %q", o, fp)
		}
		seen[fp] = true
	}
}
