package core

import (
	"math/big"
	"testing"

	"phom/internal/graph"
)

// allDirectedGraphs enumerates every unlabeled directed graph on n
// vertices without self-loops (self-loops are covered separately: the
// paper's tree classes exclude them but homomorphism semantics must
// still be right).
func allDirectedGraphs(n int, withLoops bool) []*graph.Graph {
	var pairs [][2]graph.Vertex
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j || withLoops {
				pairs = append(pairs, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
			}
		}
	}
	var out []*graph.Graph
	for mask := 0; mask < 1<<uint(len(pairs)); mask++ {
		g := graph.New(n)
		for b, p := range pairs {
			if mask&(1<<uint(b)) != 0 {
				g.MustAddEdge(p[0], p[1], graph.Unlabeled)
			}
		}
		out = append(out, g)
	}
	return out
}

// TestExhaustiveSmallUnlabeled: for EVERY pair of unlabeled graphs with
// ≤ 3 query vertices (no loops) and 3 instance vertices, with all
// instance edges at probability 1/2, the dispatched solver must agree
// with world enumeration whenever it takes a polynomial-time route. This
// exhaustively covers every small shape: empty graphs, isolated
// vertices, antiparallel pairs, stars, paths, and all their unions.
func TestExhaustiveSmallUnlabeled(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	queries := allDirectedGraphs(3, false)
	instances := allDirectedGraphs(3, false)
	checked := 0
	for _, q := range queries {
		for _, ig := range instances {
			h := graph.NewProbGraph(ig)
			for i := 0; i < ig.NumEdges(); i++ {
				if err := h.SetProb(i, graph.RatHalf); err != nil {
					t.Fatal(err)
				}
			}
			res, err := Solve(q, h, &Options{DisableFallback: true})
			if err != nil {
				continue // hard cell: no PTIME route for this pair
			}
			checked++
			want := BruteForce(q, h)
			if res.Prob.Cmp(want) != 0 {
				t.Fatalf("exhaustive mismatch: Solve=%s (via %v) brute=%s\nq=%v\nh=%v",
					res.Prob.RatString(), res.Method, want.RatString(), q, ig)
			}
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d pairs took a PTIME route; expected broad coverage", checked)
	}
	t.Logf("exhaustively validated %d PTIME-solved pairs", checked)
}

// TestExhaustiveSelfLoops: instances with self-loops are legal graphs
// (E ⊆ V²); they are never in the tree classes, but the brute-force path
// and the trivial/label shortcuts must handle them.
func TestExhaustiveSelfLoops(t *testing.T) {
	queries := allDirectedGraphs(2, true)
	instances := allDirectedGraphs(2, true)
	for _, q := range queries {
		for _, ig := range instances {
			h := graph.NewProbGraph(ig)
			for i := 0; i < ig.NumEdges(); i++ {
				if err := h.SetProb(i, graph.RatHalf); err != nil {
					t.Fatal(err)
				}
			}
			res, err := Solve(q, h, nil)
			if err != nil {
				t.Fatalf("solver failed on loops: %v\nq=%v\nh=%v", err, q, ig)
			}
			want := BruteForce(q, h)
			if res.Prob.Cmp(want) != 0 {
				t.Fatalf("self-loop mismatch: %s vs %s\nq=%v\nh=%v",
					res.Prob.RatString(), want.RatString(), q, ig)
			}
		}
	}
}

// TestExhaustivePathQueries: every unlabeled path query →^m for
// m = 1 … 5 against every 4-vertex polytree-or-smaller instance shape,
// at mixed probabilities. Covers the Prop 5.4 pipeline exhaustively on
// small polytrees.
func TestExhaustivePathQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	third := big.NewRat(1, 3)
	for _, ig := range allDirectedGraphs(4, false) {
		if !ig.InClass(graph.ClassUPT) {
			continue
		}
		h := graph.NewProbGraph(ig)
		for i := 0; i < ig.NumEdges(); i++ {
			p := graph.RatHalf
			if i%2 == 0 {
				p = third
			}
			if err := h.SetProb(i, p); err != nil {
				t.Fatal(err)
			}
		}
		for m := 1; m <= 5; m++ {
			q := graph.UnlabeledPath(m)
			res, err := Solve(q, h, &Options{DisableFallback: true})
			if err != nil {
				t.Fatalf("⊔PT instance refused: %v\nh=%v", err, ig)
			}
			want := BruteForce(q, h)
			if res.Prob.Cmp(want) != 0 {
				t.Fatalf("path query mismatch (m=%d): %s vs %s\nh=%v",
					m, res.Prob.RatString(), want.RatString(), ig)
			}
		}
	}
}
