package core

// incremental.go: component-localized recompilation. A structural edge
// delta on a live instance (internal/instance) renumbers the edge list
// and changes at most the components incident to the delta; every other
// component's compiled part — the per-component dynamic programs that
// dominate compile cost — is still valid up to edge renumbering. The
// Lemma 3.7 Components composite is exactly the seam: PatchCompile
// diffs the component partitions of the old and new structure, reuses
// the untouched parts copy-on-write (plan.RemapEdges), recompiles only
// the touched components through the exported Part* compilers of
// internal/plan, and re-seals the spliced composite. Anything it cannot
// prove local — a route change (the tightest class moved), an opaque or
// constant plan, a UCQ plan, a vertex-count change — falls back to a
// full CompileContext, so the result is always exactly what a
// from-scratch compile would produce.

import (
	"context"
	"sync"

	"phom/internal/graph"
	"phom/internal/graphio"
	"phom/internal/phomerr"
	"phom/internal/plan"
)

// PatchCompile is PatchCompileContext under context.Background().
func PatchCompile(q *graph.Graph, old *CompiledPlan, oldG *graph.Graph, newH *graph.ProbGraph, opts *Options) (*CompiledPlan, bool, error) {
	return PatchCompileContext(context.Background(), q, old, oldG, newH, opts)
}

// PatchCompileContext compiles a plan for the single-query job
// (q, newH, opts), reusing the untouched per-component parts of old — a
// plan previously compiled for the same (q, opts) against oldG, the
// structure newH's underlying graph was derived from by edge deltas.
// The returned plan is semantically identical to
// CompileContext(ctx, q, newH, opts): same method, same exact
// probabilities (RatString-byte-identical) under every probability
// assignment. The boolean reports whether the incremental splice path
// was taken (false: a full recompile ran instead — still a correct
// plan, just none of the old work reused).
func PatchCompileContext(ctx context.Context, q *graph.Graph, old *CompiledPlan, oldG *graph.Graph, newH *graph.ProbGraph, opts *Options) (*CompiledPlan, bool, error) {
	cp, err := patchCompile(ctx, q, old, oldG, newH, opts)
	if err != nil {
		return nil, false, err
	}
	if cp != nil {
		return cp, true, nil
	}
	cp, err = CompileContext(ctx, q, newH, opts)
	return cp, false, err
}

// patchCompile attempts the splice; a nil, nil return means "not
// provably local — run a full compile".
func patchCompile(ctx context.Context, q *graph.Graph, old *CompiledPlan, oldG *graph.Graph, newH *graph.ProbGraph, opts *Options) (*CompiledPlan, error) {
	if old == nil || old.opaque || old.tree == nil || oldG == nil {
		return nil, nil
	}
	oldComposite, ok := old.tree.(plan.Components)
	if !ok {
		return nil, nil
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if q.NumVertices() == 0 || q.NumEdges() == 0 {
		return nil, nil // trivial/invalid shapes: let CompileContext decide
	}
	newG := newH.G
	if newG.NumVertices() != oldG.NumVertices() || newG.NumVertices() == 0 {
		return nil, nil
	}
	if err := newH.Validate(); err != nil {
		return nil, nil // full compile produces the typed error
	}

	// Re-run the dispatch guards on the new structure: the splice is
	// sound only if a from-scratch compile would pick the same route.
	// The guards are linear class-membership scans — cheap next to the
	// per-component dynamic programs the splice is saving. The new
	// graph is a fresh value (structural deltas rebuild, never mutate),
	// so its TightestClass memo starts clean and nothing stale is
	// consulted here.
	hLabels := map[graph.Label]bool{}
	for _, l := range newG.Labels() {
		hLabels[l] = true
	}
	for _, l := range q.Labels() {
		if !hLabels[l] {
			return nil, nil // route moves to MethodLabelMismatch
		}
	}
	unlabeled := len(hLabels) <= 1
	var route *solveRoute
	for i := range solveRoutes {
		if err := phomerr.FromContext(ctx); err != nil {
			return nil, err
		}
		if solveRoutes[i].applies(q, newH, unlabeled) {
			route = &solveRoutes[i]
			break
		}
	}
	if route == nil || route.method != old.method {
		return nil, nil
	}

	// The per-component compiler of the old plan's route. m>0 holds for
	// the path-shaped routes whenever the old tree is a Components
	// composite (m=0 compiles to a Const, which was rejected above).
	var compilePart func(comp *graph.ProbGraph, edgeMap []int) (plan.Plan, error)
	switch old.method {
	case MethodXProperty2WP:
		compilePart = func(comp *graph.ProbGraph, em []int) (plan.Plan, error) {
			return plan.PartConnectedOn2WP(q, comp, em)
		}
	case MethodBetaAcyclicDWT:
		compilePart = func(comp *graph.ProbGraph, em []int) (plan.Plan, error) {
			return plan.Part1WPOnDWT(q, comp, em)
		}
	case MethodGradedDWT:
		m, graded := q.DifferenceOfLevels()
		if !graded || m == 0 {
			return nil, nil
		}
		compilePart = func(comp *graph.ProbGraph, em []int) (plan.Plan, error) {
			return plan.PartDirectedPathOnDWT(comp, m, em)
		}
	case MethodAutomatonPT:
		m := q.Height()
		if m == 0 {
			return nil, nil
		}
		compilePart = func(comp *graph.ProbGraph, em []int) (plan.Plan, error) {
			return plan.PartDirectedPathOnPolytree(comp, m, em)
		}
	default:
		return nil, nil
	}

	// Diff the component partitions. Components are listed in the same
	// deterministic order (sorted vertices, ordered by smallest vertex)
	// the compilers consumed, so old part ci belongs to old component ci.
	oldVS := oldG.ConnectedComponents()
	if len(oldComposite.Parts) != len(oldVS) {
		return nil, nil
	}
	newVS := newG.ConnectedComponents()
	oldCompOf := make([]int, oldG.NumVertices())
	for ci, vs := range oldVS {
		for _, v := range vs {
			oldCompOf[v] = ci
		}
	}

	// Global edge renumbering old → new: an old edge survives iff the
	// new graph carries the same (from, to, label) triple. Per-component
	// edge counts on both sides detect additions and removals.
	remap := make([]int, oldG.NumEdges())
	oldCnt := make([]int, len(oldVS))
	for i := 0; i < oldG.NumEdges(); i++ {
		e := oldG.Edge(i)
		oldCnt[oldCompOf[e.From]]++
		remap[i] = -1
		if j, ok := newG.EdgeIndex(e.From, e.To); ok && newG.Edge(j).Label == e.Label {
			remap[i] = j
		}
	}
	newCompOf := make([]int, newG.NumVertices())
	for cj, vs := range newVS {
		for _, v := range vs {
			newCompOf[v] = cj
		}
	}
	newCnt := make([]int, len(newVS))
	for j := 0; j < newG.NumEdges(); j++ {
		newCnt[newCompOf[newG.Edge(j).From]]++
	}
	// An old component is intact iff it reappears verbatim: same vertex
	// set (both sides sorted), every edge surviving, equal edge count on
	// the new side (no additions hiding behind equal vertex sets).
	intactOld := make([]int, len(newVS)) // new comp -> old comp, or -1
	for cj, vs := range newVS {
		intactOld[cj] = -1
		ci := oldCompOf[vs[0]]
		ovs := oldVS[ci]
		if len(ovs) != len(vs) || oldCnt[ci] != newCnt[cj] {
			continue
		}
		same := true
		for k := range vs {
			if ovs[k] != vs[k] {
				same = false
				break
			}
		}
		if same {
			intactOld[cj] = ci
		}
	}
	// Edge survival is per old component: one lost edge taints its
	// component only, but the vertex-set match above could pair a new
	// component with an old one whose edges changed in place (removed
	// and re-added under another label), so re-check survival.
	for cj, ci := range intactOld {
		if ci < 0 {
			continue
		}
		for i := 0; i < oldG.NumEdges(); i++ {
			if oldCompOf[oldG.Edge(i).From] == ci && remap[i] < 0 {
				intactOld[cj] = -1
				break
			}
		}
	}

	parts := make([]plan.Plan, len(newVS))
	for cj := range newVS {
		if err := phomerr.FromContext(ctx); err != nil {
			return nil, err
		}
		if ci := intactOld[cj]; ci >= 0 {
			np, err := plan.RemapEdges(oldComposite.Parts[ci], remap)
			if err != nil {
				return nil, nil // defensive: fall back rather than fail
			}
			parts[cj] = np
			continue
		}
		// Touched component: rebuild its probabilistic subgraph the same
		// way ComponentsWithEdges does and recompile just this part.
		sub, vmap := newG.InducedSubgraph(newVS[cj])
		comp := graph.NewProbGraph(sub)
		em := make([]int, 0, sub.NumEdges())
		for j := 0; j < newG.NumEdges(); j++ {
			e := newG.Edge(j)
			nf, okf := vmap[e.From]
			nt, okt := vmap[e.To]
			if okf && okt {
				comp.MustSetEdgeProb(nf, nt, newH.Prob(j))
				em = append(em, j)
			}
		}
		part, err := compilePart(comp, em)
		if err != nil {
			return nil, err
		}
		parts[cj] = part
	}

	qCanon := graphio.CanonicalGraph(q)
	key := sync.OnceValues(func() (string, []int) {
		return graphio.StructKeyJob([]string{qCanon}, newG, opts.StructFingerprint())
	})
	return seal(ctx, old.method, plan.Components{Parts: parts}, newG.NumEdges(), key, opts)
}
