package core

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"strconv"

	"phom/internal/graph"
	"phom/internal/phomerr"
	"phom/internal/plan"
)

// Method identifies the algorithm the solver used.
type Method int

// Solver methods. PTIME methods realize the tractable cells of
// Tables 1–3; the baselines are exponential and are used only on cells
// the paper proves #P-hard (or when forced).
const (
	MethodTrivial        Method = iota // edgeless query: probability 1
	MethodLabelMismatch                // query uses a label absent from the instance: probability 0
	MethodGradedDWT                    // Proposition 3.6 (arbitrary query, ⊔DWT instance, unlabeled)
	MethodBetaAcyclicDWT               // Proposition 4.10 (1WP query, ⊔DWT instance) via β-acyclic lineage
	MethodXProperty2WP                 // Proposition 4.11 (connected query, ⊔2WP instance)
	MethodAutomatonPT                  // Propositions 5.4/5.5 (⊔DWT query, ⊔PT instance) via tree automaton + d-DNNF
	MethodBruteForce                   // possible-world enumeration (exponential baseline)
	MethodLineage                      // match enumeration + Shannon expansion (exponential baseline)
	MethodKarpLuby                     // seeded Karp–Luby (ε,δ) estimator over the lineage DNF (approx mode)
)

var methodNames = map[Method]string{
	MethodTrivial:        "trivial",
	MethodLabelMismatch:  "label-mismatch",
	MethodGradedDWT:      "graded-dwt (Prop 3.6)",
	MethodBetaAcyclicDWT: "beta-acyclic-dwt (Prop 4.10)",
	MethodXProperty2WP:   "x-property-2wp (Prop 4.11)",
	MethodAutomatonPT:    "automaton-polytree (Props 5.4/5.5)",
	MethodBruteForce:     "brute-force",
	MethodLineage:        "lineage-shannon",
	MethodKarpLuby:       "karp-luby",
}

func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return "method(?)"
}

// PTime reports whether the method has polynomial-time combined
// complexity. MethodKarpLuby is polynomial in the *lineage* size but
// the lineage itself can be exponential-many matches deep, and its
// answer is statistical rather than exact, so it does not count.
func (m Method) PTime() bool {
	return m != MethodBruteForce && m != MethodLineage && m != MethodKarpLuby
}

// DefaultMatchLimit is the default cap on the number of matches
// enumerated by the lineage fallback.
const DefaultMatchLimit = 1 << 16

// Options configures the solver.
type Options struct {
	// BruteForceLimit caps the number of uncertain edges accepted by the
	// brute-force fallback. 0 means DefaultBruteForceLimit.
	BruteForceLimit int
	// MatchLimit caps the number of matches enumerated by the lineage
	// fallback. 0 means DefaultMatchLimit.
	MatchLimit int
	// DisableFallback makes Solve fail instead of running an exponential
	// baseline on an intractable case.
	DisableFallback bool
	// Precision selects the numeric substrate of plan evaluation: exact
	// rational arithmetic (the zero value), the certified float64
	// interval kernel (PrecisionFast), or float-first with exact
	// fallback beyond FloatTolerance (PrecisionAuto). Compilation is
	// unaffected — the same plan serves every mode.
	Precision Precision
	// FloatTolerance is the widest certified enclosure PrecisionAuto
	// accepts before falling back to exact arithmetic, as an absolute
	// probability error. 0 means DefaultFloatTolerance; it must be a
	// finite, non-negative float.
	FloatTolerance float64
	// Epsilon is the PrecisionApprox relative error bound, in (0,1).
	// 0 means DefaultEpsilon. It must be 0 under every other precision
	// mode — a non-approx job carrying an ε is a caller bug, and
	// Validate rejects it rather than silently ignoring it.
	Epsilon float64
	// Delta is the PrecisionApprox failure probability budget, in (0,1).
	// 0 means DefaultDelta; like Epsilon it is rejected outside approx
	// mode.
	Delta float64
	// Seed seeds the PrecisionApprox PCG sampler; equal seeds reproduce
	// the estimate byte-for-byte. Like Epsilon it is rejected outside
	// approx mode (0, the default seed, is always accepted).
	Seed uint64
}

func (o *Options) bruteLimit() int {
	if o == nil || o.BruteForceLimit == 0 {
		return DefaultBruteForceLimit
	}
	return o.BruteForceLimit
}

func (o *Options) matchLimit() int {
	if o == nil || o.MatchLimit == 0 {
		return DefaultMatchLimit
	}
	return o.MatchLimit
}

func (o *Options) disableFallback() bool {
	return o != nil && o.DisableFallback
}

// Validate rejects option values the solver would otherwise silently
// misread: negative limits are not "unbounded" (0 means default; the
// baselines treat a negative cap as no cap, which callers almost never
// intend). Solve, SolveUCQ and Compile call this on entry. Failures are
// typed phomerr.CodeBadInput.
func (o *Options) Validate() error {
	if o == nil {
		return nil
	}
	if o.BruteForceLimit < 0 {
		return phomerr.New(phomerr.CodeBadInput, "core: negative BruteForceLimit %d (use 0 for the default)", o.BruteForceLimit)
	}
	if o.MatchLimit < 0 {
		return phomerr.New(phomerr.CodeBadInput, "core: negative MatchLimit %d (use 0 for the default)", o.MatchLimit)
	}
	if o.Precision < 0 || o.Precision >= numPrecisions {
		return phomerr.New(phomerr.CodeBadInput, "core: unknown Precision %d", int(o.Precision))
	}
	// NaN would make every tolerance comparison false (auto always falls
	// back — silently buying exact cost under a "fast" flag), negative
	// or infinite tolerances are never what a caller means.
	if math.IsNaN(o.FloatTolerance) || math.IsInf(o.FloatTolerance, 0) || o.FloatTolerance < 0 {
		return phomerr.New(phomerr.CodeBadInput, "core: FloatTolerance %v is not a finite non-negative float (use 0 for the default)", o.FloatTolerance)
	}
	if o.Precision == PrecisionApprox {
		if o.Epsilon != 0 && !(o.Epsilon > 0 && o.Epsilon < 1) {
			return phomerr.New(phomerr.CodeBadInput, "core: Epsilon %v outside (0,1) (use 0 for the default)", o.Epsilon)
		}
		if o.Delta != 0 && !(o.Delta > 0 && o.Delta < 1) {
			return phomerr.New(phomerr.CodeBadInput, "core: Delta %v outside (0,1) (use 0 for the default)", o.Delta)
		}
	} else if o.Epsilon != 0 || o.Delta != 0 || o.Seed != 0 {
		// Approx parameters on a non-approx job would be silently dead;
		// reject them so a caller who meant precision=approx finds out.
		return phomerr.New(phomerr.CodeBadInput, "core: Epsilon/Delta/Seed require Precision approx (got %s)", o.EffectivePrecision())
	}
	return nil
}

// Fingerprint renders the options with defaults resolved, uniquely
// identifying the solver behavior they select; nil options and
// explicitly spelled-out defaults fingerprint identically. Package
// engine keys its result cache on this, so any new Options field that
// affects results MUST be added here.
func (o *Options) Fingerprint() string {
	// The tolerance affects results only in auto mode (exact and fast
	// never consult it), so it joins the fingerprint only there —
	// otherwise two fast jobs differing in an unused tolerance would
	// spuriously miss the result cache. It is rendered in hex float
	// form, which is lossless: two tolerances fingerprint identically
	// iff they are the same float64.
	tol := "-"
	if o.EffectivePrecision() == PrecisionAuto {
		tol = strconv.FormatFloat(o.EffectiveFloatTolerance(), 'x', -1, 64)
	}
	// The approx parameters likewise matter only in approx mode (Validate
	// rejects them elsewhere, but a nil-options job must fingerprint like
	// an all-defaults one). Epsilon and delta render as lossless hex
	// floats; the seed is part of the result contract (equal seeds are
	// byte-identical), so it keys the cache too.
	ap := "-"
	if o.EffectivePrecision() == PrecisionApprox {
		ap = fmt.Sprintf("%s,%s,%d",
			strconv.FormatFloat(o.EffectiveEpsilon(), 'x', -1, 64),
			strconv.FormatFloat(o.EffectiveDelta(), 'x', -1, 64),
			o.Seed)
	}
	return fmt.Sprintf("%s;prec=%s;tol=%s;approx=%s", o.StructFingerprint(), o.EffectivePrecision(), tol, ap)
}

// StructFingerprint renders only the options that affect plan
// *compilation* — the baseline limits and the fallback switch —
// excluding evaluation policy (precision, tolerance), which routes at
// evaluation time over the same compiled plan. The engine keys its
// plan cache and plan snapshots on this, so one compiled structure
// serves every precision mode and snapshots stay warm across
// -precision changes.
func (o *Options) StructFingerprint() string {
	return fmt.Sprintf("brute=%d;match=%d;nofallback=%t", o.bruteLimit(), o.matchLimit(), o.disableFallback())
}

// Result is the outcome of Solve.
type Result struct {
	// Prob is the computed probability. On the exact substrate it is
	// the mathematically exact answer; on the fast substrate it is the
	// exact rational value of the float64 point estimate, within Bounds
	// of the true probability.
	Prob   *big.Rat
	Method Method
	// Precision is the numeric substrate that produced Prob:
	// PrecisionExact (rational arithmetic, including every fallback),
	// PrecisionFast (the certified float64 interval kernel), or
	// PrecisionApprox (the Karp–Luby sampler — only on #P-hard cells; an
	// approx job on a tractable cell reports PrecisionExact because the
	// answer IS exact). It is never PrecisionAuto — auto is a routing
	// policy, not a substrate.
	Precision Precision
	// Bounds encloses the exact probability. Under PrecisionFast it is
	// the certified enclosure of the float kernel (machine-checked);
	// under PrecisionApprox it is the (1−δ) Hoeffding confidence
	// interval of the sampler (statistical — it holds with probability
	// 1−δ, not always). It is non-nil exactly when Precision is
	// PrecisionFast or PrecisionApprox.
	Bounds *plan.Enclosure
	// ApproxSamples is the number of Monte-Carlo samples the Karp–Luby
	// estimator drew; non-zero only when Precision is PrecisionApprox
	// (and zero even there if the lineage short-circuited exactly).
	ApproxSamples int64
}

// Solve computes Pr(G ⇝ H), dispatching to the polynomial-time algorithm
// covering the input pair when one exists (following the tractability
// frontier of Tables 1–3) and otherwise, unless disabled, to an
// exponential exact baseline.
//
// Solve is the composition of the two pipeline stages: Compile builds
// the probability-independent plan (the guard table over the tractable
// cells lives there), and Evaluate runs the linear probability phase
// against h's own edge probabilities. Callers that re-solve the same
// structure under changing probabilities should call Compile once and
// Evaluate per assignment.
func Solve(q *graph.Graph, h *graph.ProbGraph, opts *Options) (*Result, error) {
	return SolveContext(context.Background(), q, h, opts)
}

// SolveContext is Solve under a context: compilation (the guard-table
// dispatch and the compile-time dynamic programs), the exponential
// baselines, and exact plan evaluation all poll ctx at cooperative
// checkpoints, so a cancelled or deadlined context aborts the job
// within one checkpoint interval and the error satisfies
// errors.Is(err, phomerr.ErrCanceled) (or ErrDeadline). A run that
// completes is byte-identical to Solve.
func SolveContext(ctx context.Context, q *graph.Graph, h *graph.ProbGraph, opts *Options) (*Result, error) {
	cp, err := CompileContext(ctx, q, h, opts)
	if err != nil {
		return nil, err
	}
	return cp.EvaluateOptsContext(ctx, h.Probs(), opts)
}
