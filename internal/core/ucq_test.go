package core

import (
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
)

// ucqCells lists the cells for which SolveUCQ must dispatch a lifted
// PTIME algorithm.
var ucqCells = []struct {
	name    string
	qc, ic  graph.Class
	labeled bool
}{
	{"connected on 2WP labeled", graph.ClassConnected, graph.Class2WP, true},
	{"connected on U2WP labeled", graph.ClassConnected, graph.ClassU2WP, true},
	{"1WP on DWT labeled", graph.Class1WP, graph.ClassDWT, true},
	{"1WP on UDWT labeled", graph.Class1WP, graph.ClassUDWT, true},
	{"any on DWT unlabeled", graph.ClassAll, graph.ClassDWT, false},
	{"any on UDWT unlabeled", graph.ClassAll, graph.ClassUDWT, false},
	{"UDWT on PT unlabeled", graph.ClassUDWT, graph.ClassPT, false},
	{"DWT on UPT unlabeled", graph.ClassDWT, graph.ClassUPT, false},
}

// TestSolveUCQMatchesBruteForce: the lifted algorithms must agree with
// world enumeration of the disjunction on every covered cell.
func TestSolveUCQMatchesBruteForce(t *testing.T) {
	for _, cell := range ucqCells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			labels := oneLabel
			if cell.labeled {
				labels = twoLabels
			}
			r := rand.New(rand.NewSource(int64(len(cell.name))))
			for trial := 0; trial < 50; trial++ {
				k := 1 + r.Intn(3)
				qs := make(UCQ, k)
				for i := range qs {
					qs[i] = gen.RandInClass(r, cell.qc, 1+r.Intn(4), labels)
					if qs[i].NumEdges() == 0 {
						qs[i] = gen.RandInClass(r, cell.qc, 2, labels)
					}
				}
				h := gen.RandProb(r, gen.RandInClass(r, cell.ic, 1+r.Intn(8), labels), 0.3)
				res, err := SolveUCQ(qs, h, &Options{DisableFallback: true})
				if err != nil {
					t.Fatalf("trial %d: lifted algorithm refused: %v", trial, err)
				}
				if !res.Method.PTime() {
					t.Fatalf("trial %d: exponential method %v on lifted cell", trial, res.Method)
				}
				want, err := BruteForceUCQ(qs, h, 0)
				if err != nil {
					t.Fatal(err)
				}
				if res.Prob.Cmp(want) != 0 {
					t.Fatalf("trial %d: SolveUCQ=%s (via %v) brute=%s\nqs=%v\nh=%v",
						trial, res.Prob.RatString(), res.Method, want.RatString(), qs, h)
				}
			}
		})
	}
}

func TestSolveUCQFallback(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		qs := UCQ{
			gen.RandInClass(r, graph.Class2WP, 2+r.Intn(3), twoLabels),
			gen.RandInClass(r, graph.ClassDWT, 2+r.Intn(3), twoLabels),
		}
		h := gen.RandProb(r, gen.RandInClass(r, graph.ClassDWT, 2+r.Intn(6), twoLabels), 0.3)
		res, err := SolveUCQ(qs, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := BruteForceUCQ(qs, h, 0)
		if res.Prob.Cmp(want) != 0 {
			t.Fatalf("UCQ fallback mismatch: %s vs %s", res.Prob.RatString(), want.RatString())
		}
	}
}

func TestSolveUCQTrivia(t *testing.T) {
	h := graph.NewProbGraph(graph.Path1WP("R"))
	// Empty union is false.
	res, err := SolveUCQ(nil, h, nil)
	if err != nil || res.Prob.Sign() != 0 {
		t.Fatalf("empty UCQ: %v %v", res, err)
	}
	// An edgeless disjunct makes the union certain.
	res, err = SolveUCQ(UCQ{graph.Path1WP("Z"), graph.New(2)}, h, nil)
	if err != nil || res.Prob.Cmp(graph.RatOne) != 0 {
		t.Fatalf("edgeless disjunct: %v %v", res, err)
	}
	// All-mismatched labels give 0.
	res, err = SolveUCQ(UCQ{graph.Path1WP("Z"), graph.Path1WP("Y")}, h, nil)
	if err != nil || res.Prob.Sign() != 0 || res.Method != MethodLabelMismatch {
		t.Fatalf("label mismatch union: %v %v", res, err)
	}
}

// TestUCQSubsumesSingleQuery: SolveUCQ on a singleton union must equal
// Solve on the query.
func TestUCQSubsumesSingleQuery(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		q := gen.RandInClass(r, graph.ClassConnected, 1+r.Intn(4), twoLabels)
		h := gen.RandProb(r, gen.RandInClass(r, graph.Class2WP, 1+r.Intn(8), twoLabels), 0.3)
		single, err := Solve(q, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		union, err := SolveUCQ(UCQ{q}, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		if single.Prob.Cmp(union.Prob) != 0 {
			t.Fatalf("singleton union differs: %s vs %s", single.Prob.RatString(), union.Prob.RatString())
		}
	}
}

// TestUCQMonotone: adding a disjunct never decreases the probability.
func TestUCQMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		q1 := gen.RandInClass(r, graph.ClassConnected, 1+r.Intn(4), twoLabels)
		q2 := gen.RandInClass(r, graph.ClassConnected, 1+r.Intn(4), twoLabels)
		h := gen.RandProb(r, gen.RandInClass(r, graph.Class2WP, 1+r.Intn(8), twoLabels), 0.3)
		p1, err := SolveUCQ(UCQ{q1}, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		p12, err := SolveUCQ(UCQ{q1, q2}, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p12.Prob.Cmp(p1.Prob) < 0 {
			t.Fatalf("union probability decreased: %s -> %s", p1.Prob.RatString(), p12.Prob.RatString())
		}
	}
}

func TestCountWorlds(t *testing.T) {
	// One coin on a two-edge chain; query is the full chain: 1 world.
	g := graph.Path1WP("R", "S")
	h := graph.NewProbGraph(g)
	h.MustSetEdgeProb(0, 1, graph.RatHalf)
	h.MustSetEdgeProb(1, 2, graph.RatHalf)
	count, coins, err := CountWorlds(graph.Path1WP("R", "S"), h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if coins != 2 || count.Int64() != 1 {
		t.Fatalf("count=%v coins=%d, want 1 of 2²", count, coins)
	}
	// Reject non-half probabilities.
	h2 := graph.NewProbGraph(g)
	h2.MustSetEdgeProb(0, 1, graph.Rat("1/3"))
	if _, _, err := CountWorlds(graph.Path1WP("R", "S"), h2, nil); err == nil {
		t.Fatal("non-unweighted instance accepted")
	}
}

// TestCountWorldsMatchesDirectEnumeration on random unweighted inputs.
func TestCountWorldsMatchesDirectEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		q := gen.RandInClass(r, graph.ClassConnected, 1+r.Intn(4), twoLabels)
		inst := gen.RandInClass(r, graph.ClassAll, 1+r.Intn(6), twoLabels)
		h := graph.NewProbGraph(inst)
		for i := 0; i < inst.NumEdges(); i++ {
			if r.Intn(2) == 0 {
				if err := h.SetProb(i, graph.RatHalf); err != nil {
					t.Fatal(err)
				}
			}
		}
		count, coins, err := CountWorlds(q, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Direct: count satisfying assignments of the coins.
		want := big.NewInt(0)
		uncertain := h.UncertainEdges()
		keep := make([]bool, inst.NumEdges())
		for i := range keep {
			keep[i] = h.Prob(i).Cmp(graph.RatOne) == 0
		}
		var rec func(i int)
		rec = func(i int) {
			if i == len(uncertain) {
				if graph.HasHomomorphism(q, inst.SubgraphKeeping(keep)) {
					want.Add(want, big.NewInt(1))
				}
				return
			}
			keep[uncertain[i]] = true
			rec(i + 1)
			keep[uncertain[i]] = false
			rec(i + 1)
		}
		rec(0)
		if count.Cmp(want) != 0 || coins != len(uncertain) {
			t.Fatalf("CountWorlds=%v/2^%d, direct=%v/2^%d", count, coins, want, len(uncertain))
		}
	}
}
