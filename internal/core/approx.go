package core

// This file is the approximate-evaluation side of the dispatch
// pipeline: opaque (#P-hard cell) plans evaluated under
// PrecisionApprox route here instead of into the exponential exact
// baselines. The plan's lineage DNF — one clause per match image of
// the query (or of any disjunct, for a UCQ) on the instance structure
// — is extracted once per plan and memoized: it depends only on
// structure, never on probabilities, so every reweight of a cached
// plan reuses it and pays only the sampling loop. The estimator
// itself lives in internal/approx.

import (
	"context"
	"math/big"
	"sync"

	"phom/internal/approx"
	"phom/internal/boolform"
	"phom/internal/graph"
	"phom/internal/phomerr"
	"phom/internal/plan"
)

// approxState is the per-plan sampling artifact of an opaque plan: the
// probability-independent lineage extraction and its memoized result.
// It lives behind a pointer on CompiledPlan (the struct embeds a mutex,
// and UnmarshalBinary overwrites plans wholesale).
type approxState struct {
	// extract enumerates the matches of the plan's query set on the
	// instance structure and returns the lineage DNF over the instance's
	// edge indices. It is bounded by the plan's match limit and polls
	// ctx, so it fails typed (CodeLimit / CodeCanceled) rather than
	// running away.
	extract func(ctx context.Context) (*boolform.DNF, error)

	mu  sync.Mutex
	dnf *boolform.DNF
	err error // terminal extraction failure, cached (never a cancellation)
}

// lineage returns the plan's lineage DNF, extracting it on first use.
// The extraction runs under the mutex — concurrent evaluations of one
// plan wait for the leader rather than duplicating the enumeration —
// and its outcome is cached except for cancellations, which are the
// caller's context firing, not a property of the plan.
func (a *approxState) lineage(ctx context.Context) (*boolform.DNF, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dnf != nil || a.err != nil {
		return a.dnf, a.err
	}
	dnf, err := a.extract(ctx)
	if err != nil {
		switch phomerr.CodeOf(err) {
		case phomerr.CodeCanceled, phomerr.CodeDeadline:
			return nil, err
		}
		a.err = err
		return nil, err
	}
	a.dnf = dnf
	return dnf, nil
}

// evaluateApprox runs the Karp–Luby estimator over the opaque plan's
// lineage DNF. The returned result carries the point estimate (the
// exact rational value of the float64 estimate), MethodKarpLuby, the
// statistical (1−δ) Hoeffding bounds and the drawn sample count.
func (cp *CompiledPlan) evaluateApprox(ctx context.Context, probs []*big.Rat, pol evalPolicy) (*Result, error) {
	dnf, err := cp.approx.lineage(ctx)
	if err != nil {
		return nil, err
	}
	est, err := approx.KarpLuby(ctx, dnf, probs, approx.Params{
		Epsilon: pol.eps,
		Delta:   pol.delta,
		Seed:    pol.seed,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Prob:          new(big.Rat).SetFloat64(est.P),
		Method:        MethodKarpLuby,
		Precision:     PrecisionApprox,
		Bounds:        &plan.Enclosure{Lo: est.Lo, Hi: est.Hi},
		ApproxSamples: est.Samples,
	}, nil
}

// cqLineageExtract returns the lineage extraction of a single
// conjunctive query: the MatchLineage DNF over the instance's edge
// indices, capped at matchLimit enumerated matches.
func cqLineageExtract(q *graph.Graph, g *graph.Graph, matchLimit int) func(context.Context) (*boolform.DNF, error) {
	return func(ctx context.Context) (*boolform.DNF, error) {
		return MatchLineageContext(ctx, q, g, matchLimit)
	}
}

// ucqLineageExtract returns the lineage extraction of a union of
// conjunctive queries: the clause union of the per-disjunct lineages
// (a valuation satisfies the union lineage iff some disjunct matches),
// absorbed to inclusion-minimal clauses. matchLimit caps the total
// number of enumerated matches across all disjuncts.
func ucqLineageExtract(qs UCQ, g *graph.Graph, matchLimit int) func(context.Context) (*boolform.DNF, error) {
	// The disjunct list is captured by value at compile time; copy so a
	// caller mutating its slice cannot change the plan's semantics.
	qsCopy := append(UCQ(nil), qs...)
	return func(ctx context.Context) (*boolform.DNF, error) {
		union := boolform.NewDNF(g.NumEdges())
		remaining := matchLimit
		for _, q := range qsCopy {
			if matchLimit > 0 && remaining <= 0 {
				// Charging each disjunct's clauses against one shared budget
				// keeps a k-way union from enumerating k× the single-query cap.
				return nil, phomerr.New(phomerr.CodeLimit, "core: union lineage exceeds %d matches", matchLimit)
			}
			dnf, err := MatchLineageContext(ctx, q, g, remaining)
			if err != nil {
				return nil, err
			}
			remaining -= len(dnf.Clauses)
			for _, c := range dnf.Clauses {
				union.AddClause(c...)
			}
		}
		return union.Absorb(), nil
	}
}
