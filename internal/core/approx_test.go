package core

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/phomerr"
)

// approxOpts builds approx-mode options with the loose (ε,δ) the
// solver-level statistical tests run under: the Dyer sample count stays
// in the low thousands per evaluation, so hundreds of seeds fit in a
// unit-test budget.
func approxOpts(seed uint64) *Options {
	return &Options{Precision: PrecisionApprox, Epsilon: 0.4, Delta: 0.3, Seed: seed}
}

// TestApproxAnswersWhereHard is the headline routing contract: on a
// #P-hard cell the approx mode produces a Karp–Luby estimate with
// statistical bounds, while every result field keeps its documented
// shape.
func TestApproxAnswersWhereHard(t *testing.T) {
	h := hardHalfInstance(t, 8, 6)
	q := graph.UnlabeledPath(3)
	res, err := Solve(q, h, approxOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision != PrecisionApprox || res.Method != MethodKarpLuby {
		t.Fatalf("hard-cell approx result: precision %v, method %v", res.Precision, res.Method)
	}
	if res.Bounds == nil {
		t.Fatal("approx result without Hoeffding bounds")
	}
	if res.ApproxSamples <= 0 {
		t.Fatalf("approx result drew %d samples", res.ApproxSamples)
	}
	p, _ := res.Prob.Float64()
	if p < res.Bounds.Lo || p > res.Bounds.Hi || res.Bounds.Lo < 0 || res.Bounds.Hi > 1 {
		t.Fatalf("estimate %v outside its bounds [%v, %v]", p, res.Bounds.Lo, res.Bounds.Hi)
	}
}

// TestApproxDifferentialHardCell is the solver-level half of the
// statistical soundness suite (the estimator-level half lives in
// internal/approx): on a hard cell small enough that the brute-force
// baseline is an oracle, the empirical failure rate of |p̂ − p| ≤ ε·p
// across 200 fixed seeds stays within the δ budget plus binomial slack.
func TestApproxDifferentialHardCell(t *testing.T) {
	h := hardHalfInstance(t, 8, 6)
	q := graph.UnlabeledPath(3)
	exact, err := Solve(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	exactF, _ := exact.Prob.Float64()
	if exactF <= 0 {
		t.Fatalf("degenerate oracle probability %v", exactF)
	}

	// Compile once: the 200 evaluations share the plan's memoized
	// lineage DNF, so the match enumeration is paid a single time.
	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Opaque() {
		t.Fatal("expected an opaque plan on the hard cell")
	}
	const seeds = 200
	const eps, delta = 0.4, 0.3
	failures := 0
	for seed := uint64(0); seed < seeds; seed++ {
		res, err := cp.EvaluateOpts(h.Probs(), approxOpts(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, _ := res.Prob.Float64()
		if diff := p - exactF; diff > eps*exactF || diff < -eps*exactF {
			failures++
		}
	}
	// failures ~ Bin(200, q) with q ≤ δ = 0.3 by the estimator's
	// guarantee: more than δ·N + 4·√(δ(1−δ)N) ≈ 86 would put the true
	// failure rate above δ with overwhelming confidence.
	if failures > 86 {
		t.Fatalf("%d/%d runs outside ε·p (ε=%v), δ budget is %v", failures, seeds, eps, delta)
	}
}

// TestApproxDeterministicEdgesExact: probability-0/1 edges decide the
// formula, so the approx mode short-circuits to the exact answer with
// zero samples — byte-identical to the exact solver.
func TestApproxDeterministicEdgesExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := gen.RandConnected(r, 8, 6, nil)
	if g.InClass(graph.ClassUPT) || g.InClass(graph.ClassU2WP) || g.InClass(graph.ClassUDWT) {
		t.Fatal("instance accidentally fell in a tractable class")
	}
	h := graph.NewProbGraph(g)
	one := big.NewRat(1, 1)
	for i := 0; i < g.NumEdges(); i++ {
		p := one
		if i%5 == 0 {
			p = new(big.Rat)
		}
		if err := h.SetProb(i, p); err != nil {
			t.Fatal(err)
		}
	}
	q := graph.UnlabeledPath(3)
	exact, err := Solve(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(q, h, approxOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob.Cmp(exact.Prob) != 0 {
		t.Fatalf("deterministic edges: approx %s, exact %s", res.Prob.RatString(), exact.Prob.RatString())
	}
	if res.ApproxSamples != 0 {
		t.Fatalf("deterministic edges drew %d samples, want short-circuit", res.ApproxSamples)
	}
}

// TestApproxSeedDeterminism: equal seeds reproduce the whole Result
// byte-for-byte; distinct seeds drive distinct sample paths.
func TestApproxSeedDeterminism(t *testing.T) {
	h := hardHalfInstance(t, 8, 6)
	q := graph.UnlabeledPath(3)
	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cp.EvaluateOpts(h.Probs(), approxOpts(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cp.EvaluateOpts(h.Probs(), approxOpts(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Prob.Cmp(b.Prob) != 0 || *a.Bounds != *b.Bounds || a.ApproxSamples != b.ApproxSamples {
		t.Fatalf("equal seeds disagree: %+v vs %+v", a, b)
	}
	c, err := cp.EvaluateOpts(h.Probs(), approxOpts(43))
	if err != nil {
		t.Fatal(err)
	}
	if a.Prob.Cmp(c.Prob) == 0 {
		t.Fatalf("seeds 42 and 43 produced identical estimates %s", a.Prob.RatString())
	}
}

// TestApproxTractableStaysExact: the approx mode never samples where a
// polynomial-time exact algorithm exists — a tractable plan evaluates
// exactly and reports so.
func TestApproxTractableStaysExact(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	q := gen.Rand1WP(r, 3, nil)
	h := gen.RandProb(r, gen.Rand2WP(r, 9, nil), 0.4)
	exact, err := Solve(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(q, h, approxOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision != PrecisionExact {
		t.Fatalf("tractable approx job served precision %v, want exact", res.Precision)
	}
	if res.Method == MethodKarpLuby {
		t.Fatal("tractable approx job routed to the sampler")
	}
	if res.Prob.Cmp(exact.Prob) != 0 {
		t.Fatalf("tractable approx %s != exact %s", res.Prob.RatString(), exact.Prob.RatString())
	}
	if res.ApproxSamples != 0 || res.Bounds != nil {
		t.Fatalf("tractable approx result carries sampler fields: %+v", res)
	}
}

// TestApproxDisableFallback: with the fallback disabled a hard cell
// still refuses under exact mode — pinned, typed — while the approx
// mode answers on the very same compiled plan (the plan cache shares
// plans across precision modes, so both behaviors must coexist on one
// CompiledPlan).
func TestApproxDisableFallback(t *testing.T) {
	h := hardHalfInstance(t, 8, 6)
	q := graph.UnlabeledPath(3)
	opts := approxOpts(3)
	opts.DisableFallback = true
	cp, err := Compile(q, h, opts)
	if err != nil {
		t.Fatalf("approx compile with DisableFallback refused: %v", err)
	}
	res, err := cp.EvaluateOpts(h.Probs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision != PrecisionApprox || res.ApproxSamples <= 0 {
		t.Fatalf("nofallback approx result: %+v", res)
	}
	// The same plan under exact options keeps the pinned refusal.
	if _, err := cp.EvaluateOpts(h.Probs(), &Options{DisableFallback: true}); !errors.Is(err, phomerr.ErrIntractable) {
		t.Fatalf("exact evaluate on nofallback plan err = %v, want ErrIntractable", err)
	}
	// And plain Solve still refuses outright without approx.
	if _, err := Solve(q, h, &Options{DisableFallback: true}); !errors.Is(err, phomerr.ErrIntractable) {
		t.Fatalf("exact solve err = %v, want ErrIntractable", err)
	}
}

// TestApproxLineageMemoized: reweighting an approx plan reuses the
// extracted DNF — the match enumeration runs once per structure, not
// once per probability vector.
func TestApproxLineageMemoized(t *testing.T) {
	h := hardHalfInstance(t, 8, 6)
	q := graph.UnlabeledPath(3)
	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cp.approx == nil {
		t.Fatal("opaque plan without approx state")
	}
	if _, err := cp.EvaluateOpts(h.Probs(), approxOpts(1)); err != nil {
		t.Fatal(err)
	}
	cp.approx.mu.Lock()
	first := cp.approx.dnf
	cp.approx.mu.Unlock()
	if first == nil {
		t.Fatal("lineage not memoized after first approx evaluation")
	}
	// Reweight: same structure, different probabilities.
	r := rand.New(rand.NewSource(17))
	probs := make([]*big.Rat, h.G.NumEdges())
	for i := range probs {
		probs[i] = big.NewRat(int64(1+r.Intn(7)), 8)
	}
	if _, err := cp.EvaluateOpts(probs, approxOpts(2)); err != nil {
		t.Fatal(err)
	}
	cp.approx.mu.Lock()
	second := cp.approx.dnf
	cp.approx.mu.Unlock()
	if second != first {
		t.Fatal("reweight re-extracted the lineage instead of reusing the memo")
	}
}

// TestApproxUCQ: the union path builds the disjuncts' union lineage and
// samples it; a fixed seed pins the estimate against the brute-force
// union oracle within ε·p (deterministic because the seed is).
func TestApproxUCQ(t *testing.T) {
	h := hardHalfInstance(t, 8, 6)
	qs := UCQ{graph.UnlabeledPath(3), graph.UnlabeledPath(4)}
	exact, err := SolveUCQ(qs, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	exactF, _ := exact.Prob.Float64()
	res, err := SolveUCQ(qs, h, approxOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision != PrecisionApprox || res.Method != MethodKarpLuby || res.ApproxSamples <= 0 {
		t.Fatalf("UCQ approx result: %+v", res)
	}
	p, _ := res.Prob.Float64()
	if diff := p - exactF; diff > 0.4*exactF || diff < -0.4*exactF {
		t.Fatalf("UCQ approx estimate %v too far from exact %v (seed-pinned run)", p, exactF)
	}
}

// TestApproxBatchLanes: batched approx evaluation matches K independent
// single-vector calls lane for lane, and a malformed lane fails only
// itself.
func TestApproxBatchLanes(t *testing.T) {
	h := hardHalfInstance(t, 8, 6)
	q := graph.UnlabeledPath(3)
	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(23))
	good := make([]*big.Rat, h.G.NumEdges())
	for i := range good {
		good[i] = big.NewRat(int64(1+r.Intn(7)), 8)
	}
	bad := []*big.Rat{big.NewRat(1, 2)} // wrong length
	opts := approxOpts(6)
	outs := cp.EvaluateBatchOpts([][]*big.Rat{h.Probs(), bad, good}, opts)
	if len(outs) != 3 {
		t.Fatalf("got %d lanes", len(outs))
	}
	if outs[1].Err == nil || !errors.Is(outs[1].Err, phomerr.ErrBadInput) {
		t.Fatalf("malformed lane err = %v, want ErrBadInput", outs[1].Err)
	}
	for _, k := range []int{0, 2} {
		if outs[k].Err != nil {
			t.Fatalf("lane %d: %v", k, outs[k].Err)
		}
		probs := h.Probs()
		if k == 2 {
			probs = good
		}
		want, err := cp.EvaluateOpts(probs, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := outs[k].Result
		if got.Prob.Cmp(want.Prob) != 0 || got.Precision != want.Precision || got.ApproxSamples != want.ApproxSamples {
			t.Fatalf("lane %d diverges from the single-vector call: %+v vs %+v", k, got, want)
		}
	}
}

// TestApproxFingerprintSeparation: the (ε,δ,seed) triple keys results —
// distinct approx parameters must not share a result-cache entry, and
// non-approx fingerprints ignore them entirely.
func TestApproxFingerprintSeparation(t *testing.T) {
	base := approxOpts(1)
	fps := map[string]string{
		"base":       base.Fingerprint(),
		"other-seed": approxOpts(2).Fingerprint(),
		"other-eps":  (&Options{Precision: PrecisionApprox, Epsilon: 0.2, Delta: 0.3, Seed: 1}).Fingerprint(),
		"other-del":  (&Options{Precision: PrecisionApprox, Epsilon: 0.4, Delta: 0.1, Seed: 1}).Fingerprint(),
		"exact":      (&Options{}).Fingerprint(),
	}
	seen := map[string]string{}
	for name, fp := range fps {
		if prev, dup := seen[fp]; dup {
			t.Fatalf("options %q and %q share fingerprint %q", name, prev, fp)
		}
		seen[fp] = name
	}
	// Defaults spelled out fingerprint like defaults left implicit.
	implicit := &Options{Precision: PrecisionApprox}
	explicit := &Options{Precision: PrecisionApprox, Epsilon: DefaultEpsilon, Delta: DefaultDelta}
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Fatalf("default approx params fingerprint differently: %q vs %q", implicit.Fingerprint(), explicit.Fingerprint())
	}
	// Structure fingerprints ignore evaluation policy: one compiled plan
	// serves exact and approx jobs alike.
	if base.StructFingerprint() != (&Options{}).StructFingerprint() {
		t.Fatalf("StructFingerprint depends on precision: %q vs %q", base.StructFingerprint(), (&Options{}).StructFingerprint())
	}
}

// TestApproxCancellation: a pre-canceled context aborts the sampling
// loop through the solver entry point with the typed error.
func TestApproxCancellation(t *testing.T) {
	h := hardHalfInstance(t, 8, 6)
	q := graph.UnlabeledPath(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Default (ε,δ): thousands of samples, far past the checkpoint
	// interval.
	_, err := SolveContext(ctx, q, h, &Options{Precision: PrecisionApprox})
	if !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("pre-canceled approx solve err = %v, want ErrCanceled", err)
	}
}
