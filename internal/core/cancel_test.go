package core

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/phomerr"
)

// hardHalfInstance builds an unlabeled instance with cycles (so no
// tractable cell applies to any query) whose every edge is uncertain at
// probability 1/2 — the worst case for the brute-force baseline:
// 2^edges possible worlds.
func hardHalfInstance(t *testing.T, n, extra int) *graph.ProbGraph {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	g := gen.RandConnected(r, n, extra, nil)
	h := graph.NewProbGraph(g)
	for i := 0; i < g.NumEdges(); i++ {
		if err := h.SetProb(i, graph.RatHalf); err != nil {
			t.Fatal(err)
		}
	}
	if g.InClass(graph.ClassUPT) || g.InClass(graph.ClassU2WP) || g.InClass(graph.ClassUDWT) {
		t.Fatal("hard instance accidentally fell in a tractable class")
	}
	return h
}

// TestBruteForceCancelMidEnumeration: cancelling the context while the
// possible-world enumeration runs aborts it within the checkpoint
// contract — promptly, with an error satisfying both the typed and the
// context-package sentinels — instead of walking all 2^24 worlds.
func TestBruteForceCancelMidEnumeration(t *testing.T) {
	h := hardHalfInstance(t, 12, 13) // ≥ 24 uncertain edges
	q := graph.UnlabeledPath(3)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(25 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := BruteForceLimitContext(ctx, q, h, h.G.NumEdges())
	elapsed := time.Since(start)
	if !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v must unwrap to context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v: checkpoints are not firing", elapsed)
	}
}

// TestOpaqueEvaluateCanceledDeterministic: an opaque plan evaluated
// under an already-cancelled context aborts at the first checkpoint of
// its baseline — deterministically, because the world recursion has
// more than phomerr.CheckInterval branches.
func TestOpaqueEvaluateCanceledDeterministic(t *testing.T) {
	h := hardHalfInstance(t, 8, 6) // ≥ 13 uncertain edges → > 2^13 branches
	q := graph.UnlabeledPath(3)
	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Opaque() {
		t.Fatal("expected an opaque plan on the hard cell")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cp.EvaluateOptsContext(ctx, h.Probs(), nil); !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("opaque evaluate err = %v, want ErrCanceled", err)
	}
	// The same plan still evaluates fine under a live context.
	res, err := cp.EvaluateOptsContext(context.Background(), h.Probs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob.Sign() <= 0 {
		t.Fatalf("implausible probability %s", res.Prob.RatString())
	}
}

// TestCompileContextPreCanceled: every context-aware entry point
// rejects an already-done context up front with the typed error.
func TestCompileContextPreCanceled(t *testing.T) {
	q := graph.UnlabeledPath(2)
	h := graph.NewProbGraph(graph.UnlabeledPath(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := CompileContext(ctx, q, h, nil); !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("CompileContext err = %v, want ErrCanceled", err)
	}
	if _, err := CompileUCQContext(ctx, UCQ{q}, h, nil); !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("CompileUCQContext err = %v, want ErrCanceled", err)
	}
	if _, err := SolveContext(ctx, q, h, nil); !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("SolveContext err = %v, want ErrCanceled", err)
	}
	if _, err := SolveUCQContext(ctx, UCQ{q}, h, nil); !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("SolveUCQContext err = %v, want ErrCanceled", err)
	}
	if _, _, err := CountWorldsContext(ctx, q, h, nil); !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("CountWorldsContext err = %v, want ErrCanceled", err)
	}
}

// TestSolveContextDeadline: an expired deadline surfaces as ErrDeadline
// (and context.DeadlineExceeded), distinct from ErrCanceled.
func TestSolveContextDeadline(t *testing.T) {
	q := graph.UnlabeledPath(2)
	h := graph.NewProbGraph(graph.UnlabeledPath(4))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := SolveContext(ctx, q, h, nil)
	if !errors.Is(err, phomerr.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("err = %v must not be ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v must unwrap to context.DeadlineExceeded", err)
	}
}

// TestTypedErrorCodes pins the taxonomy on the classic failure modes.
func TestTypedErrorCodes(t *testing.T) {
	q := graph.UnlabeledPath(3)
	hard := hardHalfInstance(t, 8, 6)

	// Intractable: fallback disabled on a #P-hard cell.
	if _, err := Solve(q, hard, &Options{DisableFallback: true}); !errors.Is(err, phomerr.ErrIntractable) {
		t.Fatalf("DisableFallback err = %v, want ErrIntractable", err)
	}
	// Limit: more uncertain edges than the brute-force cap accepts.
	if _, err := BruteForceLimitContext(context.Background(), q, hard, 2); !errors.Is(err, phomerr.ErrLimit) {
		t.Fatalf("BruteForceLimit err = %v, want ErrLimit", err)
	}
	// Limit through the lineage match cap.
	if _, err := LineageShannonContext(context.Background(), q, hard, 1); !errors.Is(err, phomerr.ErrLimit) {
		t.Fatalf("LineageShannon err = %v, want ErrLimit", err)
	}
	// Bad input: negative limits, empty graphs, bad probabilities.
	if err := (&Options{BruteForceLimit: -1}).Validate(); !errors.Is(err, phomerr.ErrBadInput) {
		t.Fatalf("Validate err = %v, want ErrBadInput", err)
	}
	if _, err := Compile(graph.New(0), hard, nil); !errors.Is(err, phomerr.ErrBadInput) {
		t.Fatalf("empty query err = %v, want ErrBadInput", err)
	}
	if _, _, err := CountWorlds(q, hard2Thirds(t), nil); !errors.Is(err, phomerr.ErrBadInput) {
		t.Fatalf("CountWorlds err = %v, want ErrBadInput", err)
	}
	cp, err := Compile(graph.UnlabeledPath(2), graph.NewProbGraph(graph.UnlabeledPath(4)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Evaluate([]*big.Rat{big.NewRat(1, 2)}); !errors.Is(err, phomerr.ErrBadInput) {
		t.Fatalf("short prob vector err = %v, want ErrBadInput", err)
	}
}

func hard2Thirds(t *testing.T) *graph.ProbGraph {
	t.Helper()
	h := graph.NewProbGraph(graph.UnlabeledPath(3))
	if err := h.SetProb(0, big.NewRat(2, 3)); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestContextCompletionByteIdentical: a run that completes under a live
// context is byte-identical to the context-free call, on a tractable
// and on a hard cell.
func TestContextCompletionByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cases := []struct {
		name string
		q    *graph.Graph
		h    *graph.ProbGraph
	}{
		{"tractable-2wp", gen.Rand1WP(r, 3, nil), gen.RandProb(r, gen.Rand2WP(r, 9, nil), 0.4)},
		{"hard-opaque", graph.UnlabeledPath(3), hardHalfInstance(t, 7, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v1, err1 := Solve(tc.q, tc.h, nil)
			v2, err2 := SolveContext(context.Background(), tc.q, tc.h, nil)
			if err1 != nil || err2 != nil {
				t.Fatalf("errs: %v, %v", err1, err2)
			}
			if v1.Prob.RatString() != v2.Prob.RatString() || v1.Method != v2.Method {
				t.Fatalf("v1 (%s, %v) != v2 (%s, %v)",
					v1.Prob.RatString(), v1.Method, v2.Prob.RatString(), v2.Method)
			}
		})
	}
}
