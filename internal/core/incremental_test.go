package core

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/instance"
	"phom/internal/phomerr"
	"phom/internal/plan"
)

// randDeltaBatch generates 1–3 valid deltas against g: probability
// updates on existing edges, removals of existing edges, insertions of
// absent pairs. Edges touched earlier in the batch are tracked so the
// batch stays valid when instance.Apply replays it sequentially.
func randDeltaBatch(r *rand.Rand, g *graph.Graph, labels []graph.Label) []instance.Delta {
	type pe struct{ from, to graph.Vertex }
	present := map[pe]bool{}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		present[pe{e.From, e.To}] = true
	}
	n := g.NumVertices()
	var out []instance.Delta
	for k := 1 + r.Intn(3); k > 0; k-- {
		switch r.Intn(3) {
		case 0: // set_prob
			var live []pe
			for p, ok := range present {
				if ok {
					live = append(live, p)
				}
			}
			if len(live) == 0 {
				continue
			}
			p := live[r.Intn(len(live))]
			out = append(out, instance.Delta{Op: instance.OpSetProb, From: p.from, To: p.to, Prob: gen.RandRat(r)})
		case 1: // add_edge
			u, v := graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))
			if u == v || present[pe{u, v}] {
				continue
			}
			present[pe{u, v}] = true
			out = append(out, instance.Delta{Op: instance.OpAddEdge, From: u, To: v,
				Label: gen.RandLabel(r, labels), Prob: gen.RandRat(r)})
		case 2: // remove_edge
			var live []pe
			for p, ok := range present {
				if ok {
					live = append(live, p)
				}
			}
			if len(live) < 2 {
				continue // keep at least one edge around
			}
			p := live[r.Intn(len(live))]
			present[pe{p.from, p.to}] = false
			out = append(out, instance.Delta{Op: instance.OpRemoveEdge, From: p.from, To: p.to})
		}
	}
	return out
}

// TestPatchCompileDifferentialCorpus is the byte-identity pin of
// incremental maintenance: over random delta streams on every generator
// family — the tractable union classes that exercise the splice and the
// ER/BA/power-law models that exercise the fallback — the plan carried
// forward by PatchCompile answers every probability query with exactly
// the RatString a from-scratch compile of the current structure
// produces, and lands on the same method and structure key.
func TestPatchCompileDifferentialCorpus(t *testing.T) {
	type caseDef struct {
		fam   gen.Family
		n     int
		query func(r *rand.Rand, g *graph.Graph) *graph.Graph
	}
	walk := func(r *rand.Rand, g *graph.Graph) *graph.Graph { return gen.RandWalkQuery(r, g, 2) }
	upath := func(r *rand.Rand, g *graph.Graph) *graph.Graph { return graph.UnlabeledPath(1 + r.Intn(2)) }
	cases := []caseDef{
		{gen.FamU2WP, 12, walk},
		{gen.FamUDWT, 12, upath},
		{gen.FamUPT, 10, upath},
		{gen.FamER, 7, walk},
		{gen.FamBA, 6, upath},
		{gen.FamPLaw, 7, upath},
	}
	opts := &Options{BruteForceLimit: 18}
	spliced := 0
	for seed := int64(0); seed < 6; seed++ {
		for _, c := range cases {
			r := rand.New(rand.NewSource(seed*31 + int64(c.fam)))
			g := gen.RandFamily(r, c.fam, c.n, nil)
			if g.NumEdges() == 0 {
				continue
			}
			h := gen.RandProb(r, g, 0.3)
			q := c.query(r, g)
			if q == nil || q.NumEdges() == 0 {
				continue
			}
			cur, err := Compile(q, h, opts)
			if err != nil {
				if phomerr.CodeOf(err) == phomerr.CodeLimit {
					continue // too wild for the fallback budget; not this test's business
				}
				t.Fatalf("seed %d fam %v: initial compile: %v", seed, c.fam, err)
			}
			inst, err := instance.New("diff", h)
			if err != nil {
				t.Fatalf("instance.New: %v", err)
			}
			curG := h.G
			for step := 0; step < 5; step++ {
				batch := randDeltaBatch(r, inst.Snapshot().H.G, nil)
				if len(batch) == 0 {
					continue
				}
				if _, err := inst.Apply(-1, batch); err != nil {
					t.Fatalf("seed %d fam %v step %d: Apply: %v", seed, c.fam, step, err)
				}
				newH := inst.Snapshot().H
				patched, incremental, perr := PatchCompile(q, cur, curG, newH, opts)
				scratch, serr := Compile(q, newH, opts)
				if (perr == nil) != (serr == nil) || phomerr.CodeOf(perr) != phomerr.CodeOf(serr) {
					t.Fatalf("seed %d fam %v step %d: patch err %v vs scratch err %v", seed, c.fam, step, perr, serr)
				}
				if perr != nil {
					break // e.g. grew past the fallback budget; both sides agree
				}
				if incremental {
					spliced++
				}
				probs := newH.Probs()
				pr, err1 := patched.Evaluate(probs)
				sr, err2 := scratch.Evaluate(probs)
				if err1 != nil || err2 != nil {
					t.Fatalf("seed %d fam %v step %d: evaluate: %v / %v", seed, c.fam, step, err1, err2)
				}
				if pr.Prob.RatString() != sr.Prob.RatString() {
					t.Fatalf("seed %d fam %v step %d: incremental=%v prob %s != scratch %s",
						seed, c.fam, step, incremental, pr.Prob.RatString(), sr.Prob.RatString())
				}
				if pr.Method != sr.Method {
					t.Fatalf("seed %d fam %v step %d: method %v != %v", seed, c.fam, step, pr.Method, sr.Method)
				}
				if patched.StructKey() != scratch.StructKey() {
					t.Fatalf("seed %d fam %v step %d: struct keys diverge", seed, c.fam, step)
				}
				cur, curG = patched, newH.G // compound: next step patches the patched plan
			}
		}
	}
	if spliced == 0 {
		t.Fatal("corpus never took the incremental splice path; the test is vacuous")
	}
}

// TestPatchCompileSplicesOnlyTouchedComponent pins the copy-on-write
// seam directly: deleting one edge of a three-path ⊔2WP instance
// recompiles the split component only — every untouched part of the new
// composite shares its compiled interval system pointer with the old
// plan.
func TestPatchCompileSplicesOnlyTouchedComponent(t *testing.T) {
	part := func() *graph.Graph { return graph.UnlabeledPath(2) } // 3 vertices, 2 edges
	g, _ := graph.DisjointUnion(part(), part(), part())
	h := graph.NewProbGraph(g)
	h.MustSetEdgeProb(0, 1, big.NewRat(1, 2))
	h.MustSetEdgeProb(4, 5, big.NewRat(1, 3))
	q := graph.UnlabeledPath(1)

	old, err := Compile(q, h, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if m, ok := old.Method(); !ok || m != MethodXProperty2WP {
		t.Fatalf("method = %v, want MethodXProperty2WP", m)
	}
	inst, err := instance.New("cow", h)
	if err != nil {
		t.Fatalf("instance.New: %v", err)
	}
	if _, err := inst.Apply(-1, []instance.Delta{{Op: instance.OpRemoveEdge, From: 3, To: 4}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	newH := inst.Snapshot().H
	cp, incremental, err := PatchCompile(q, old, g, newH, nil)
	if err != nil {
		t.Fatalf("PatchCompile: %v", err)
	}
	if !incremental {
		t.Fatal("single-component edge delta did not take the splice path")
	}
	oldParts := old.tree.(plan.Components).Parts
	newParts := cp.tree.(plan.Components).Parts
	if len(oldParts) != 3 || len(newParts) != 4 {
		t.Fatalf("parts = %d -> %d, want 3 -> 4", len(oldParts), len(newParts))
	}
	// New components in order: {0,1,2} (intact), {3} (split), {4,5}
	// (split), {6,7,8} (intact). Intact parts must share their compiled
	// systems with the old plan's parts 0 and 2.
	if newParts[0].(plan.Interval).System != oldParts[0].(plan.Interval).System {
		t.Error("untouched component 0 was recompiled")
	}
	if newParts[3].(plan.Interval).System != oldParts[2].(plan.Interval).System {
		t.Error("untouched component 2 was recompiled")
	}
	if newParts[1].(plan.Interval).System == oldParts[1].(plan.Interval).System ||
		newParts[2].(plan.Interval).System == oldParts[1].(plan.Interval).System {
		t.Error("split component still shares the stale compiled system")
	}
	// And the spliced plan answers exactly like a fresh compile.
	scratch, err := Compile(q, newH, nil)
	if err != nil {
		t.Fatalf("scratch compile: %v", err)
	}
	pr, err := cp.Evaluate(newH.Probs())
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	sr, err := scratch.Evaluate(newH.Probs())
	if err != nil {
		t.Fatalf("evaluate scratch: %v", err)
	}
	if pr.Prob.RatString() != sr.Prob.RatString() {
		t.Fatalf("spliced %s != scratch %s", pr.Prob.RatString(), sr.Prob.RatString())
	}
}

// TestPatchCompileProbabilityOnly pins the zero-recompile property of a
// probability-only delta: the structure did not move, so every
// component is intact and the whole composite is carried over
// copy-on-write.
func TestPatchCompileProbabilityOnly(t *testing.T) {
	g, _ := graph.DisjointUnion(graph.UnlabeledPath(3), graph.UnlabeledPath(2))
	h := graph.NewProbGraph(g)
	q := graph.UnlabeledPath(2)
	old, err := Compile(q, h, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inst, _ := instance.New("p", h)
	if _, err := inst.Apply(-1, []instance.Delta{
		{Op: instance.OpSetProb, From: 0, To: 1, Prob: big.NewRat(2, 7)},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	newH := inst.Snapshot().H
	cp, incremental, err := PatchCompile(q, old, g, newH, nil)
	if err != nil {
		t.Fatalf("PatchCompile: %v", err)
	}
	if !incremental {
		t.Fatal("probability-only delta did not splice")
	}
	oldParts := old.tree.(plan.Components).Parts
	newParts := cp.tree.(plan.Components).Parts
	for i := range oldParts {
		if newParts[i].(plan.Interval).System != oldParts[i].(plan.Interval).System {
			t.Errorf("part %d recompiled on a probability-only delta", i)
		}
	}
	if cp.StructKey() != old.StructKey() {
		t.Error("structure key moved on a probability-only delta")
	}
}

// TestPatchCompileRouteChangeFallsBack pins the safety valve: a delta
// that moves the instance off the old route's class (here a 2WP forest
// gaining a branching vertex, leaving ⊔2WP) must refuse to splice and
// fall back to a full — still correct — compile.
func TestPatchCompileRouteChangeFallsBack(t *testing.T) {
	g, _ := graph.DisjointUnion(graph.UnlabeledPath(3), graph.UnlabeledPath(2))
	h := graph.NewProbGraph(g)
	q := graph.UnlabeledPath(1)
	old, err := Compile(q, h, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inst, _ := instance.New("rc", h)
	// An edge into the middle of the second path gives vertex 5 three
	// neighbors: the instance leaves ⊔2WP (it is now a polytree, so the
	// route moves to the automaton method for this unlabeled query).
	if _, err := inst.Apply(-1, []instance.Delta{
		{Op: instance.OpAddEdge, From: 0, To: 5, Label: graph.Unlabeled, Prob: big.NewRat(1, 2)},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	newH := inst.Snapshot().H
	cp, incremental, err := PatchCompile(q, old, g, newH, nil)
	if err != nil {
		t.Fatalf("PatchCompile: %v", err)
	}
	if incremental {
		t.Fatal("splice claimed across a route change")
	}
	scratch, err := Compile(q, newH, nil)
	if err != nil {
		t.Fatalf("scratch: %v", err)
	}
	pr, _ := cp.Evaluate(newH.Probs())
	sr, _ := scratch.Evaluate(newH.Probs())
	if pr == nil || sr == nil || pr.Prob.RatString() != sr.Prob.RatString() {
		t.Fatalf("fallback result mismatch: %v vs %v", pr, sr)
	}
	if pr.Method != sr.Method {
		t.Fatalf("fallback method %v != %v", pr.Method, sr.Method)
	}
}

// TestPatchCompileConflictErrType sanity-checks the typed conflict the
// instance layer hands the stack (it is core's callers that map it, but
// the corpus above routes through instance.Apply, so pin it here too).
func TestPatchCompileConflictErrType(t *testing.T) {
	h := graph.NewProbGraph(graph.UnlabeledPath(2))
	inst, _ := instance.New("cas", h)
	_, err := inst.Apply(7, []instance.Delta{{Op: instance.OpSetProb, From: 0, To: 1, Prob: graph.RatOne}})
	if !errors.Is(err, phomerr.ErrConflict) {
		t.Fatalf("stale ifVersion error = %v, want ErrConflict", err)
	}
}
