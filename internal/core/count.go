package core

import (
	"context"
	"fmt"
	"math/big"

	"phom/internal/graph"
	"phom/internal/phomerr"
)

// This file implements the unweighted variant of PHom suggested in the
// paper's conclusion (§6): all uncertain edges carry probability 1/2 (a
// counting-CSP flavor), and the answer is the integer number of
// satisfying worlds rather than a probability. The two are related by
// #worlds = Pr · 2^#coins, so every tractability and hardness result
// transfers; the API below enforces the {0, 1/2, 1} discipline and
// recovers exact integer counts through the (PTIME when possible)
// solver.

// IsUnweighted reports whether every edge probability of h lies in
// {0, 1/2, 1}.
func IsUnweighted(h *graph.ProbGraph) bool {
	for i := 0; i < h.G.NumEdges(); i++ {
		p := h.Prob(i)
		if p.Sign() != 0 && p.Cmp(graph.RatHalf) != 0 && p.Cmp(graph.RatOne) != 0 {
			return false
		}
	}
	return true
}

// CountWorlds computes the number of possible worlds of h (over its
// uncertain edges, which must all have probability 1/2) to which q has a
// homomorphism. It dispatches through Solve, so the count is obtained in
// polynomial time exactly when the cell is tractable. The second result
// is the number of coins: the count is out of 2^coins worlds.
func CountWorlds(q *graph.Graph, h *graph.ProbGraph, opts *Options) (*big.Int, int, error) {
	return CountWorldsContext(context.Background(), q, h, opts)
}

// CountWorldsContext is CountWorlds under a context, dispatching
// through SolveContext (same cancellation contract).
func CountWorldsContext(ctx context.Context, q *graph.Graph, h *graph.ProbGraph, opts *Options) (*big.Int, int, error) {
	if !IsUnweighted(h) {
		return nil, 0, phomerr.New(phomerr.CodeBadInput, "core: CountWorlds requires all edge probabilities in {0, 1/2, 1}")
	}
	coins := len(h.UncertainEdges())
	res, err := SolveContext(ctx, q, h, opts)
	if err != nil {
		return nil, 0, err
	}
	scaled := new(big.Rat).Mul(res.Prob, new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(coins))))
	if !scaled.IsInt() {
		return nil, 0, fmt.Errorf("core: internal error: count %s not integral", scaled.RatString())
	}
	return new(big.Int).Set(scaled.Num()), coins, nil
}
