package core

import (
	"math/rand"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
)

// TestFallbackChainUsesLineageWhenBruteTooLarge: on a #P-hard cell whose
// instance has too many coins for world enumeration but few matches, the
// solver must fall through to the match-enumeration baseline and stay
// exact.
func TestFallbackChainUsesLineageWhenBruteTooLarge(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// A labeled branching DWT with 14 uncertain edges: 2WP query on DWT
	// is #P-hard (Prop 4.5), and 2^14 worlds exceed the configured brute
	// limit (the oracle below enumerates them without the limit).
	inst := gen.RandDWT(r, 31, twoLabels)
	h := graph.NewProbGraph(inst)
	for i := 0; i < 14; i++ {
		if err := h.SetProb(i, graph.RatHalf); err != nil {
			t.Fatal(err)
		}
	}
	q := graph.Path2WP(graph.Fwd("R"), graph.Bwd("S"))
	res, err := Solve(q, h, &Options{BruteForceLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodLineage {
		t.Fatalf("expected lineage fallback, got %v", res.Method)
	}
	// Cross-check against brute force (feasible without the limit).
	want := BruteForce(q, h)
	if res.Prob.Cmp(want) != 0 {
		t.Fatalf("lineage fallback inexact: %s vs %s", res.Prob.RatString(), want.RatString())
	}
}

// TestMatchLimitExhaustionSurfacesError: when both baselines are out of
// budget the solver reports an error rather than an approximation.
func TestMatchLimitExhaustionSurfacesError(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	// A dense unlabeled instance with many coins and many matches.
	inst := gen.RandConnected(r, 26, 20, nil)
	h := graph.NewProbGraph(inst)
	for i := 0; i < inst.NumEdges(); i++ {
		if err := h.SetProb(i, graph.RatHalf); err != nil {
			t.Fatal(err)
		}
	}
	q := graph.UnlabeledPath(2)
	_, err := Solve(q, h, &Options{BruteForceLimit: 5, MatchLimit: 2})
	if err == nil {
		t.Fatal("expected an error when both baselines are capped")
	}
}

// TestOptionsDefaults: nil options behave like the documented defaults.
func TestOptionsDefaults(t *testing.T) {
	var o *Options
	if o.bruteLimit() != DefaultBruteForceLimit {
		t.Fatalf("nil options brute limit = %d", o.bruteLimit())
	}
	if o.matchLimit() != 1<<16 {
		t.Fatalf("nil options match limit = %d", o.matchLimit())
	}
	o = &Options{BruteForceLimit: 7, MatchLimit: 9}
	if o.bruteLimit() != 7 || o.matchLimit() != 9 {
		t.Fatal("explicit options ignored")
	}
}

// TestVerdictString covers the display form used by cmd/phomtables.
func TestVerdictString(t *testing.T) {
	v := Predict(graph.Class1WP, graph.ClassDWT, true)
	if v.String() != "PTIME [Prop 4.10 + Lemma 3.7]" {
		t.Fatalf("verdict renders as %q", v)
	}
	v = Predict(graph.Class1WP, graph.ClassPT, true)
	if v.String() != "#P-hard [Prop 4.1]" {
		t.Fatalf("verdict renders as %q", v)
	}
}

// TestSolveIsDeterministic: the solver returns identical results and
// methods across repeated invocations (no map-iteration dependence).
func TestSolveIsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		q := gen.RandInClass(r, graph.ClassConnected, 1+r.Intn(4), twoLabels)
		h := gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, 2+r.Intn(8), twoLabels), 0.3)
		first, err := Solve(q, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			again, err := Solve(q, h, nil)
			if err != nil {
				t.Fatal(err)
			}
			if first.Prob.Cmp(again.Prob) != 0 || first.Method != again.Method {
				t.Fatalf("nondeterministic solve: %v/%s vs %v/%s",
					first.Method, first.Prob.RatString(), again.Method, again.Prob.RatString())
			}
		}
	}
}
