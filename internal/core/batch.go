package core

import (
	"context"
	"math/big"
)

// This file is the batched half of the dual-precision evaluation
// contract: evaluating one compiled plan against K probability vectors
// in a single pass. The fast and auto modes dispatch the plan's program
// once through plan.ExecFloatBatch (one instruction decode for all K
// lanes) and apply the serve-or-fall-back decision per lane, so a batch
// keeps the exact-fallback semantics of K independent EvaluateOpts
// calls while paying interpreter dispatch once. Exact mode and opaque
// plans have no vectorizable kernel and degrade to a per-lane loop —
// the results are identical either way, batching is purely a
// performance property.

// BatchOutcome is the per-lane outcome of a batched evaluation: exactly
// one of Result and Err is non-nil.
type BatchOutcome struct {
	Result *Result
	Err    error
}

// EvaluateBatchOpts evaluates the plan against every probability vector
// of probVecs and returns one outcome per lane, in lane order. Each
// lane's outcome — result, precision served, certified bounds, or
// error — is identical to what EvaluateOpts(probVecs[k], opts) would
// return; a malformed lane fails only itself. Under the fast and auto
// precision modes the lanes share one batched kernel dispatch.
func (cp *CompiledPlan) EvaluateBatchOpts(probVecs [][]*big.Rat, opts *Options) []BatchOutcome {
	return cp.EvaluateBatchOptsContext(context.Background(), probVecs, opts)
}

// EvaluateBatchOptsContext is EvaluateBatchOpts under a context:
// cancellation aborts the batched kernel at an op checkpoint and any
// per-lane exact fallbacks at theirs, so a cancelled batch surfaces the
// typed cancellation error on the lanes that had not completed.
func (cp *CompiledPlan) EvaluateBatchOptsContext(ctx context.Context, probVecs [][]*big.Rat, opts *Options) []BatchOutcome {
	pol := opts.policy()
	out := make([]BatchOutcome, len(probVecs))
	if len(probVecs) == 0 {
		return out
	}

	// Opaque plans, exact mode and approx mode have no vectorizable
	// kernel: the lanes loop through the routing core one by one (an
	// approx batch still shares the plan's memoized lineage DNF, so the
	// extraction cost is paid once).
	if cp.opaque || pol.prec == PrecisionExact || pol.prec == PrecisionApprox {
		for k, probs := range probVecs {
			res, err := cp.evaluate(ctx, probs, pol)
			out[k] = BatchOutcome{Result: res, Err: err}
		}
		return out
	}

	// Fast/auto: validate every lane first so one malformed vector
	// cannot fail the shared kernel dispatch for the others.
	valid := make([]int, 0, len(probVecs))
	for k, probs := range probVecs {
		if err := cp.validateProbs(probs); err != nil {
			out[k] = BatchOutcome{Err: err}
			continue
		}
		valid = append(valid, k)
	}
	if len(valid) == 0 {
		return out
	}
	vecs := make([][]*big.Rat, len(valid))
	for i, k := range valid {
		vecs[i] = probVecs[k]
	}

	ivs, err := cp.prog.ExecFloatBatchCtx(ctx, vecs)
	for i, k := range valid {
		if err == nil {
			if res, ok := cp.serveFloat(ivs[i], pol.prec, pol.tol); ok {
				out[k] = BatchOutcome{Result: res}
				continue
			}
		}
		// Kernel failure (cancellation, degenerate arithmetic) or a lane
		// the serve decision rejected (NaN enclosure, auto-mode tolerance
		// miss): exact fallback, byte-identical to PrecisionExact.
		pr, execErr := cp.prog.ExecCtx(ctx, probVecs[k])
		if execErr != nil {
			out[k] = BatchOutcome{Err: execErr}
			continue
		}
		out[k] = BatchOutcome{Result: &Result{Prob: pr, Method: cp.method, Precision: PrecisionExact}}
	}
	return out
}
