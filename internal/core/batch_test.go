package core

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/phomerr"
)

// TestEvaluateBatchMatchesPerLane is the batch API's acceptance test:
// for every tractable cell and every precision mode, each lane of
// EvaluateBatchOptsContext is identical — probability bytes, method,
// precision served, certified bounds — to an independent EvaluateOpts
// call on that lane's vector.
func TestEvaluateBatchMatchesPerLane(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	modes := []*Options{
		nil,
		{Precision: PrecisionFast},
		{Precision: PrecisionAuto},
		{Precision: PrecisionAuto, FloatTolerance: 1e-30}, // forces fallback lanes
	}
	for _, job := range tractableJobs(r, 16) {
		cp, err := Compile(job.q, job.h, nil)
		if err != nil {
			t.Fatalf("%s: Compile: %v", job.name, err)
		}
		n := job.h.G.NumEdges()
		lanes := 5
		vecs := make([][]*big.Rat, lanes)
		for k := range vecs {
			vecs[k] = make([]*big.Rat, n)
			for i := range vecs[k] {
				vecs[k][i] = big.NewRat(int64(r.Intn(17)), 16)
			}
		}
		for _, opts := range modes {
			if cp.Opaque() && opts.EffectivePrecision() != PrecisionExact {
				continue // opaque evaluation under float modes is covered below
			}
			got := cp.EvaluateBatchOpts(vecs, opts)
			if len(got) != lanes {
				t.Fatalf("%s: %d outcomes for %d lanes", job.name, len(got), lanes)
			}
			for k := range vecs {
				want, err := cp.EvaluateOpts(vecs[k], opts)
				if err != nil {
					t.Fatalf("%s lane %d: %v", job.name, k, err)
				}
				if got[k].Err != nil {
					t.Fatalf("%s lane %d: batch error %v", job.name, k, got[k].Err)
				}
				res := got[k].Result
				if res.Prob.Cmp(want.Prob) != 0 {
					t.Fatalf("%s lane %d (%s): batch %s != single %s",
						job.name, k, opts.Fingerprint(), res.Prob.RatString(), want.Prob.RatString())
				}
				if res.Precision != want.Precision || res.Method != want.Method {
					t.Fatalf("%s lane %d: batch (%v, %v) != single (%v, %v)",
						job.name, k, res.Precision, res.Method, want.Precision, want.Method)
				}
				if (res.Bounds == nil) != (want.Bounds == nil) {
					t.Fatalf("%s lane %d: bounds presence mismatch", job.name, k)
				}
				if res.Bounds != nil && *res.Bounds != *want.Bounds {
					t.Fatalf("%s lane %d: batch bounds %v != single %v", job.name, k, res.Bounds, want.Bounds)
				}
			}
		}
	}
}

// TestEvaluateBatchOpaque: opaque plans batch by degrading to the
// per-lane loop; results still match single-vector evaluation.
func TestEvaluateBatchOpaque(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	rs := []graph.Label{"R", "S"}
	q := gen.Rand1WP(r, 3, rs)
	h := gen.RandProb(r, gen.RandGraph(r, 5, 7, rs), 0.5)
	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Opaque() {
		t.Skip("random hard cell compiled tractable")
	}
	n := h.G.NumEdges()
	vecs := make([][]*big.Rat, 3)
	for k := range vecs {
		vecs[k] = make([]*big.Rat, n)
		for i := range vecs[k] {
			vecs[k][i] = big.NewRat(int64(r.Intn(5)), 4)
		}
	}
	for _, opts := range []*Options{nil, {Precision: PrecisionFast}} {
		got := cp.EvaluateBatchOpts(vecs, opts)
		for k := range vecs {
			want, err := cp.EvaluateOpts(vecs[k], opts)
			if err != nil {
				t.Fatal(err)
			}
			if got[k].Err != nil || got[k].Result.Prob.Cmp(want.Prob) != 0 {
				t.Fatalf("lane %d: batch (%v, %v) != single %s",
					k, got[k].Result, got[k].Err, want.Prob.RatString())
			}
		}
	}
}

// TestEvaluateBatchBadLaneIsolated: a malformed lane fails with a typed
// bad-input error while its neighbours evaluate normally.
func TestEvaluateBatchBadLaneIsolated(t *testing.T) {
	q := graph.Path1WP("R")
	hg := graph.New(3)
	hg.MustAddEdge(0, 1, "R")
	hg.MustAddEdge(1, 2, "R")
	h := graph.NewProbGraph(hg)
	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := []*big.Rat{big.NewRat(1, 2), big.NewRat(1, 3)}
	vecs := [][]*big.Rat{
		good,
		{big.NewRat(1, 2)},                   // wrong length
		{big.NewRat(1, 2), nil},              // nil entry
		{big.NewRat(3, 2), big.NewRat(0, 1)}, // out of range
		good,
	}
	for _, opts := range []*Options{nil, {Precision: PrecisionFast}, {Precision: PrecisionAuto}} {
		got := cp.EvaluateBatchOpts(vecs, opts)
		for _, k := range []int{1, 2, 3} {
			if got[k].Err == nil || !errors.Is(got[k].Err, phomerr.ErrBadInput) {
				t.Fatalf("opts %s lane %d: err = %v, want ErrBadInput", opts.Fingerprint(), k, got[k].Err)
			}
		}
		want, err := cp.EvaluateOpts(good, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 4} {
			if got[k].Err != nil || got[k].Result.Prob.Cmp(want.Prob) != 0 {
				t.Fatalf("opts %s lane %d: good lane damaged: (%v, %v)",
					opts.Fingerprint(), k, got[k].Result, got[k].Err)
			}
		}
	}
}

// TestEvaluateBatchCanceled: a cancelled context surfaces the typed
// cancellation error on the affected lanes.
func TestEvaluateBatchCanceled(t *testing.T) {
	q := graph.Path1WP("R")
	hg := graph.New(2)
	hg.MustAddEdge(0, 1, "R")
	h := graph.NewProbGraph(hg)
	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	vecs := [][]*big.Rat{{big.NewRat(1, 3)}, {big.NewRat(1, 7)}}
	// The one-op program finishes under any checkpoint interval, so use
	// exact mode, whose per-lane ExecCtx checks the context up front...
	got := cp.EvaluateBatchOptsContext(ctx, vecs, nil)
	for k := range got {
		if got[k].Err == nil {
			// Tiny programs may complete before the first checkpoint;
			// that is allowed by the cancellation contract.
			continue
		}
		if !errors.Is(got[k].Err, phomerr.ErrCanceled) {
			t.Fatalf("lane %d: err = %v, want ErrCanceled", k, got[k].Err)
		}
	}
	if got[0].Err == nil && got[0].Result == nil {
		t.Fatal("lane 0: neither result nor error")
	}
}
