package core

import (
	"fmt"

	"phom/internal/graph"
)

// Verdict is the predicted combined complexity of a PHom cell: one
// (query class, instance class, labeled?) combination of Tables 1–3.
type Verdict struct {
	Tractable bool
	// Reason cites the paper result the verdict follows from, e.g.
	// "Prop 4.10 + Lemma 3.7" or "Prop 4.1 (⊇ 1WP ⊆ query, PT ⊆ instance)".
	Reason string
}

func (v Verdict) String() string {
	if v.Tractable {
		return "PTIME [" + v.Reason + "]"
	}
	return "#P-hard [" + v.Reason + "]"
}

type cell struct {
	q, i   graph.Class
	reason string
}

// Maximal tractable pairs: a cell (qc, ic) is PTIME iff qc ⊆ q and ic ⊆ i
// for one of these.
var (
	tractableLabeled = []cell{
		{graph.Class1WP, graph.ClassUDWT, "Prop 4.10 + Lemma 3.7"},
		{graph.ClassConnected, graph.ClassU2WP, "Prop 4.11 + Lemma 3.7"},
	}
	tractableUnlabeled = []cell{
		{graph.Class1WP, graph.ClassUPT, "Prop 5.4 + Lemma 3.7"},
		{graph.ClassUDWT, graph.ClassUPT, "Prop 5.5 + Lemma 3.7"},
		{graph.ClassConnected, graph.ClassU2WP, "Prop 4.11 + Lemma 3.7"},
		{graph.ClassAll, graph.ClassUDWT, "Prop 3.6"},
	}
	// Minimal hard pairs: a cell (qc, ic) is #P-hard iff q ⊆ qc and
	// i ⊆ ic for one of these. The paper's dichotomy means every cell is
	// covered by exactly one of the two lists; TestDichotomyCoverage
	// verifies this exhaustively.
	hardLabeled = []cell{
		{graph.ClassU1WP, graph.Class1WP, "Prop 3.3"},
		{graph.Class1WP, graph.ClassPT, "Prop 4.1"},
		{graph.Class2WP, graph.ClassDWT, "Prop 4.5"},
		{graph.ClassDWT, graph.ClassDWT, "Prop 4.4"},
	}
	hardUnlabeled = []cell{
		{graph.ClassU2WP, graph.Class2WP, "Prop 3.4"},
		{graph.Class2WP, graph.ClassPT, "Prop 5.6"},
		{graph.Class1WP, graph.ClassConnected, "Prop 5.1"},
	}
)

// PredictInput locates the tightest Tables 1–3 cell of a concrete input
// pair — the tightest classes of query and instance, and whether the
// pair is in the labeled setting — and returns that cell's verdict.
// Shared by cmd/phom -classify and the cmd/phomserve responses so the
// two never diverge.
func PredictInput(q *graph.Graph, h *graph.ProbGraph) (qc, ic graph.Class, labeled bool, v Verdict) {
	qc = q.TightestClass()
	ic = h.G.TightestClass()
	labeled = len(h.G.Labels()) > 1 || len(q.Labels()) > 1
	return qc, ic, labeled, Predict(qc, ic, labeled)
}

// Predict returns the combined complexity of PHom restricted to query
// graphs in qc and instance graphs in ic, in the labeled (PHomL) or
// unlabeled (PHom̸L) setting, as classified by the paper's Tables 1–3.
// The classification is a dichotomy: every cell is PTIME or #P-hard.
func Predict(qc, ic graph.Class, labeled bool) Verdict {
	tract, hard := tractableUnlabeled, hardUnlabeled
	if labeled {
		tract, hard = tractableLabeled, hardLabeled
	}
	for _, t := range tract {
		if graph.ClassIncluded(qc, t.q) && graph.ClassIncluded(ic, t.i) {
			return Verdict{Tractable: true, Reason: t.reason}
		}
	}
	for _, hd := range hard {
		if graph.ClassIncluded(hd.q, qc) && graph.ClassIncluded(hd.i, ic) {
			return Verdict{Tractable: false, Reason: hd.reason}
		}
	}
	// The paper's dichotomy leaves no gap; reaching this indicates a bug
	// in the border lists (caught by TestDichotomyCoverage).
	return Verdict{Tractable: false, Reason: fmt.Sprintf("UNCOVERED CELL (%v, %v, labeled=%v)", qc, ic, labeled)}
}
