package core

import (
	"fmt"
	"math/big"

	"phom/internal/betadnf"
	"phom/internal/graph"
	"phom/internal/lineage"
)

// This file extends the solver to unions of conjunctive queries (UCQs),
// one of the query-language extensions suggested in the paper's
// conclusion (§6, after [20]). A UCQ is a disjunction G₁ ∨ … ∨ G_k of
// query graphs; PHom asks for the probability that at least one disjunct
// has a homomorphism to the instance.
//
// The tractable cases lift to unions because the lineage of a disjunction
// is the union of the disjunct lineages, and the β-acyclic clause
// families used by Propositions 4.10 and 4.11 are closed under union:
//
//   - on ⊔2WP instances, the union of interval systems is an interval
//     system (Proposition 4.11 lifts to UCQs of connected queries);
//   - on ⊔DWT instances, the union of chain systems is a chain system
//     after keeping, per node, the shortest clause (absorption;
//     Proposition 4.10 lifts to UCQs of labeled 1WP queries);
//   - in the unlabeled setting, a union of ⊔DWT queries is equivalent to
//     →^m for m the minimum of the per-disjunct path lengths, so
//     Propositions 3.6 and 5.5 lift as well.

// UCQ is a union (disjunction) of query graphs.
type UCQ []*graph.Graph

// BruteForceUCQ computes Pr(G₁ ∨ … ∨ G_k ⇝ H) by world enumeration; it
// is the oracle for SolveUCQ. maxUncertain caps the enumerated coins
// (0 = unbounded).
func BruteForceUCQ(qs UCQ, h *graph.ProbGraph, maxUncertain int) (*big.Rat, error) {
	uncertain := h.UncertainEdges()
	if maxUncertain > 0 && len(uncertain) > maxUncertain {
		return nil, fmt.Errorf("core: %d uncertain edges exceed limit %d", len(uncertain), maxUncertain)
	}
	g := h.G
	keep := make([]bool, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		keep[i] = h.Prob(i).Cmp(graph.RatOne) == 0
	}
	one := big.NewRat(1, 1)
	total := new(big.Rat)
	var rec func(i int, w *big.Rat)
	rec = func(i int, w *big.Rat) {
		if w.Sign() == 0 {
			return
		}
		if i == len(uncertain) {
			world := g.SubgraphKeeping(keep)
			for _, q := range qs {
				if graph.HasHomomorphism(q, world) {
					total.Add(total, w)
					return
				}
			}
			return
		}
		ei := uncertain[i]
		keep[ei] = true
		rec(i+1, new(big.Rat).Mul(w, h.Prob(ei)))
		keep[ei] = false
		rec(i+1, new(big.Rat).Mul(w, new(big.Rat).Sub(one, h.Prob(ei))))
	}
	rec(0, big.NewRat(1, 1))
	return total, nil
}

// SolveUCQ computes Pr(G₁ ∨ … ∨ G_k ⇝ H), dispatching to a lifted
// polynomial-time algorithm when every disjunct falls in a compatible
// tractable cell, and otherwise to the exponential baseline (unless
// disabled).
func SolveUCQ(qs UCQ, h *graph.ProbGraph, opts *Options) (*Result, error) {
	if len(qs) == 0 {
		return &Result{Prob: new(big.Rat), Method: MethodTrivial}, nil
	}
	if h.G.NumVertices() == 0 {
		return nil, fmt.Errorf("core: empty instance graph")
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	hLabels := map[graph.Label]bool{}
	for _, l := range h.G.Labels() {
		hLabels[l] = true
	}
	// Drop disjuncts that can never match; an edgeless disjunct matches
	// always.
	var live UCQ
	for _, q := range qs {
		if q.NumVertices() == 0 {
			return nil, fmt.Errorf("core: empty query graph in union")
		}
		if q.NumEdges() == 0 {
			return &Result{Prob: big.NewRat(1, 1), Method: MethodTrivial}, nil
		}
		ok := true
		for _, l := range q.Labels() {
			if !hLabels[l] {
				ok = false
				break
			}
		}
		if ok {
			live = append(live, q)
		}
	}
	if len(live) == 0 {
		return &Result{Prob: new(big.Rat), Method: MethodLabelMismatch}, nil
	}
	unlabeled := len(hLabels) <= 1

	allConnected := true
	for _, q := range live {
		if !q.IsConnected() {
			allConnected = false
			break
		}
	}

	// Unlabeled ⊔DWT-equivalent unions collapse to the shortest path.
	if unlabeled {
		minM, graded := -1, true
		for _, q := range live {
			m, ok := q.DifferenceOfLevels()
			if !ok {
				continue // non-graded disjunct: contributes only on ⊔DWT instances, where it is 0
			}
			if minM < 0 || m < minM {
				minM = m
			}
			_ = graded
		}
		if h.G.InClass(graph.ClassUDWT) {
			// Prop 3.6 lifted: non-graded disjuncts never match a forest
			// world; the rest collapse to →^minM.
			if minM < 0 {
				return &Result{Prob: new(big.Rat), Method: MethodGradedDWT}, nil
			}
			p, err := DirectedPathProbOnDWTs(h, minM)
			if err != nil {
				return nil, err
			}
			return &Result{Prob: p, Method: MethodGradedDWT}, nil
		}
		if h.G.InClass(graph.ClassUPT) {
			// Prop 5.5 lifted, when every disjunct is a ⊔DWT query (the
			// equivalence with →^m then holds on all instances).
			allUDWT := true
			for _, q := range live {
				if !q.InClass(graph.ClassUDWT) {
					allUDWT = false
					break
				}
			}
			if allUDWT {
				m := 0
				for i, q := range live {
					hq := q.Height()
					if i == 0 || hq < m {
						m = hq
					}
				}
				p, err := DirectedPathProbOnPolytrees(h, m)
				if err != nil {
					return nil, err
				}
				return &Result{Prob: p, Method: MethodAutomatonPT}, nil
			}
		}
	}

	// Connected disjuncts on ⊔2WP instances: merged interval lineage.
	if allConnected && h.G.InClass(graph.ClassU2WP) {
		var parts []*big.Rat
		for _, comp := range h.Components() {
			merged := &betadnf.IntervalSystem{NumVars: comp.G.NumVertices() - 1}
			var probs []*big.Rat
			for _, q := range live {
				lin, err := lineage.ConnectedOn2WP(q, comp)
				if err != nil {
					return nil, err
				}
				merged.Clauses = append(merged.Clauses, lin.System.Clauses...)
				probs = lin.Probs
			}
			if probs == nil {
				probs = []*big.Rat{}
			}
			p, err := merged.Prob(probs)
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		}
		return &Result{Prob: combineComponents(parts), Method: MethodXProperty2WP}, nil
	}

	// Labeled 1WP disjuncts on ⊔DWT instances: merged chain lineage
	// (keep the shortest clause per node).
	all1WP := true
	for _, q := range live {
		if !q.Is1WP() {
			all1WP = false
			break
		}
	}
	if all1WP && h.G.InClass(graph.ClassUDWT) {
		var parts []*big.Rat
		for _, comp := range h.Components() {
			var merged *betadnf.ChainSystem
			var probs []*big.Rat
			for _, q := range live {
				lin, err := lineage.Path1WPOnDWT(q, comp)
				if err != nil {
					return nil, err
				}
				if merged == nil {
					merged = lin.System
					probs = lin.Probs
					continue
				}
				for v, l := range lin.System.ChainLen {
					if l != 0 && (merged.ChainLen[v] == 0 || l < merged.ChainLen[v]) {
						merged.ChainLen[v] = l
					}
				}
			}
			p, err := merged.Prob(probs)
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		}
		return &Result{Prob: combineComponents(parts), Method: MethodBetaAcyclicDWT}, nil
	}

	if opts != nil && opts.DisableFallback {
		return nil, fmt.Errorf("core: no lifted polynomial-time algorithm applies to this UCQ and fallback is disabled")
	}
	p, err := BruteForceUCQ(live, h, opts.bruteLimit())
	if err != nil {
		return nil, err
	}
	return &Result{Prob: p, Method: MethodBruteForce}, nil
}
