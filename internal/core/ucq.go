package core

import (
	"context"
	"math/big"

	"phom/internal/graph"
	"phom/internal/phomerr"
)

// This file extends the solver to unions of conjunctive queries (UCQs),
// one of the query-language extensions suggested in the paper's
// conclusion (§6, after [20]). A UCQ is a disjunction G₁ ∨ … ∨ G_k of
// query graphs; PHom asks for the probability that at least one disjunct
// has a homomorphism to the instance.
//
// The tractable cases lift to unions because the lineage of a disjunction
// is the union of the disjunct lineages, and the β-acyclic clause
// families used by Propositions 4.10 and 4.11 are closed under union:
//
//   - on ⊔2WP instances, the union of interval systems is an interval
//     system (Proposition 4.11 lifts to UCQs of connected queries);
//   - on ⊔DWT instances, the union of chain systems is a chain system
//     after keeping, per node, the shortest clause (absorption;
//     Proposition 4.10 lifts to UCQs of labeled 1WP queries);
//   - in the unlabeled setting, a union of ⊔DWT queries is equivalent to
//     →^m for m the minimum of the per-disjunct path lengths, so
//     Propositions 3.6 and 5.5 lift as well.

// UCQ is a union (disjunction) of query graphs.
type UCQ []*graph.Graph

// BruteForceUCQ computes Pr(G₁ ∨ … ∨ G_k ⇝ H) by world enumeration; it
// is the oracle for SolveUCQ. maxUncertain caps the enumerated coins
// (0 = unbounded).
func BruteForceUCQ(qs UCQ, h *graph.ProbGraph, maxUncertain int) (*big.Rat, error) {
	return BruteForceUCQContext(context.Background(), qs, h, maxUncertain)
}

// BruteForceUCQContext is BruteForceUCQ with cooperative cancellation,
// polled every phomerr.CheckInterval branches of the world recursion.
func BruteForceUCQContext(ctx context.Context, qs UCQ, h *graph.ProbGraph, maxUncertain int) (*big.Rat, error) {
	uncertain := h.UncertainEdges()
	if maxUncertain > 0 && len(uncertain) > maxUncertain {
		return nil, phomerr.New(phomerr.CodeLimit,
			"core: %d uncertain edges exceed limit %d", len(uncertain), maxUncertain)
	}
	g := h.G
	keep := make([]bool, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		keep[i] = h.Prob(i).Cmp(graph.RatOne) == 0
	}
	cp := phomerr.NewCheckpoint(ctx)
	one := big.NewRat(1, 1)
	total := new(big.Rat)
	var abort error
	var rec func(i int, w *big.Rat)
	rec = func(i int, w *big.Rat) {
		if abort != nil || w.Sign() == 0 {
			return
		}
		if abort = cp.Check(); abort != nil {
			return
		}
		if i == len(uncertain) {
			world := g.SubgraphKeeping(keep)
			for _, q := range qs {
				if graph.HasHomomorphism(q, world) {
					total.Add(total, w)
					return
				}
			}
			return
		}
		ei := uncertain[i]
		keep[ei] = true
		rec(i+1, new(big.Rat).Mul(w, h.Prob(ei)))
		keep[ei] = false
		rec(i+1, new(big.Rat).Mul(w, new(big.Rat).Sub(one, h.Prob(ei))))
	}
	rec(0, big.NewRat(1, 1))
	if abort != nil {
		return nil, abort
	}
	return total, nil
}

// SolveUCQ computes Pr(G₁ ∨ … ∨ G_k ⇝ H), dispatching to a lifted
// polynomial-time algorithm when every disjunct falls in a compatible
// tractable cell, and otherwise to the exponential baseline (unless
// disabled). Like Solve it is the composition of the two pipeline
// stages: CompileUCQ builds the probability-independent plan and
// Evaluate runs the linear phase against h's own probabilities.
func SolveUCQ(qs UCQ, h *graph.ProbGraph, opts *Options) (*Result, error) {
	return SolveUCQContext(context.Background(), qs, h, opts)
}

// SolveUCQContext is SolveUCQ under a context, with the same
// cancellation contract as SolveContext; a run that completes is
// byte-identical to SolveUCQ.
func SolveUCQContext(ctx context.Context, qs UCQ, h *graph.ProbGraph, opts *Options) (*Result, error) {
	cp, err := CompileUCQContext(ctx, qs, h, opts)
	if err != nil {
		return nil, err
	}
	return cp.EvaluateOptsContext(ctx, h.Probs(), opts)
}
