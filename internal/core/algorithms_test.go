package core

import (
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
)

// TestTwoIndependentAlgorithmsAgreeOnDWT: a DWT instance is also a
// polytree, so the unlabeled path probability can be computed both by
// the chain-system dynamic program (Proposition 4.10's machinery) and by
// the tree-automaton/d-DNNF pipeline (Proposition 5.4). The two code
// paths share nothing; they must agree exactly.
func TestTwoIndependentAlgorithmsAgreeOnDWT(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		h := gen.RandProb(r, gen.RandDWT(r, 2+r.Intn(20), nil), 0.3)
		m := r.Intn(7)
		viaChain, err := DirectedPathProbOnDWTs(h, m)
		if err != nil {
			t.Fatal(err)
		}
		viaAutomaton, err := DirectedPathProbOnPolytrees(h, m)
		if err != nil {
			t.Fatal(err)
		}
		if viaChain.Cmp(viaAutomaton) != 0 {
			t.Fatalf("chain DP %s vs automaton %s (m=%d)\nh=%v",
				viaChain.RatString(), viaAutomaton.RatString(), m, h)
		}
	}
}

// TestSolveAllOnDWTUngradedIsZero: non-graded queries (cycles or jumping
// paths) have probability 0 on forest instances (Proposition 3.6).
func TestSolveAllOnDWTUngradedIsZero(t *testing.T) {
	h := gen.RandProb(rand.New(rand.NewSource(3)), gen.RandDWT(rand.New(rand.NewSource(3)), 8, nil), 0.3)
	// A directed cycle.
	cyc := graph.New(3)
	cyc.MustAddEdge(0, 1, graph.Unlabeled)
	cyc.MustAddEdge(1, 2, graph.Unlabeled)
	cyc.MustAddEdge(2, 0, graph.Unlabeled)
	p, err := SolveAllOnDWT(cyc, h)
	if err != nil || p.Sign() != 0 {
		t.Fatalf("cycle query: %v %v", p, err)
	}
	// A jumping edge.
	jump := graph.New(3)
	jump.MustAddEdge(0, 1, graph.Unlabeled)
	jump.MustAddEdge(1, 2, graph.Unlabeled)
	jump.MustAddEdge(0, 2, graph.Unlabeled)
	p, err = SolveAllOnDWT(jump, h)
	if err != nil || p.Sign() != 0 {
		t.Fatalf("jumping query: %v %v", p, err)
	}
	// And brute force agrees.
	if BruteForce(jump, h).Sign() != 0 {
		t.Fatal("brute force disagrees on ungraded query")
	}
}

// TestAlgorithmsRejectWrongClasses: each algorithm validates its
// preconditions instead of silently computing nonsense.
func TestAlgorithmsRejectWrongClasses(t *testing.T) {
	poly := graph.New(3) // polytree that is not a DWT
	poly.MustAddEdge(0, 1, graph.Unlabeled)
	poly.MustAddEdge(2, 1, graph.Unlabeled)
	hPoly := graph.NewProbGraph(poly)

	if _, err := SolvePath1WPOnDWT(graph.UnlabeledPath(2), hPoly); err == nil {
		t.Fatal("Prop 4.10 accepted a non-DWT instance")
	}
	if _, err := SolveAllOnDWT(graph.UnlabeledPath(2), hPoly); err == nil {
		t.Fatal("Prop 3.6 accepted a non-⊔DWT instance")
	}
	tri := graph.New(3)
	tri.MustAddEdge(0, 1, graph.Unlabeled)
	tri.MustAddEdge(1, 2, graph.Unlabeled)
	tri.MustAddEdge(0, 2, graph.Unlabeled)
	hTri := graph.NewProbGraph(tri)
	if _, err := DirectedPathProbOnPolytrees(hTri, 2); err == nil {
		t.Fatal("Prop 5.4 accepted a non-polytree instance")
	}
	if _, err := SolveConnectedOn2WP(graph.UnlabeledPath(1), hTri); err == nil {
		t.Fatal("Prop 4.11 accepted a non-2WP instance")
	}
	if _, err := SolveUDWTQueryOnPolytrees(tri, hPoly); err == nil {
		t.Fatal("Prop 5.5 accepted a non-⊔DWT query")
	}
}

// TestZeroAndOneProbabilityEdges: failure injection around the
// degenerate probabilities: p=0 edges can never appear, p=1 edges always
// do; the solvers must treat them consistently with brute force.
func TestZeroAndOneProbabilityEdges(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		inst := gen.RandInClass(r, graph.ClassDWT, 2+r.Intn(8), nil)
		h := graph.NewProbGraph(inst)
		for i := 0; i < inst.NumEdges(); i++ {
			switch r.Intn(3) {
			case 0:
				if err := h.SetProb(i, graph.RatZero); err != nil {
					t.Fatal(err)
				}
			case 1:
				if err := h.SetProb(i, graph.RatHalf); err != nil {
					t.Fatal(err)
				}
			}
		}
		q := graph.UnlabeledPath(1 + r.Intn(4))
		res, err := Solve(q, h, &Options{DisableFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForce(q, h)
		if res.Prob.Cmp(want) != 0 {
			t.Fatalf("degenerate probabilities: %s vs %s\nh=%v", res.Prob.RatString(), want.RatString(), h)
		}
	}
}

// TestProbabilityRange: every solver output lies in [0, 1].
func TestProbabilityRange(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	one := big.NewRat(1, 1)
	for trial := 0; trial < 150; trial++ {
		q := gen.RandInClass(r, graph.ClassAll, 1+r.Intn(5), twoLabels)
		h := gen.RandProb(r, gen.RandInClass(r, graph.ClassAll, 1+r.Intn(6), twoLabels), 0.3)
		res, err := Solve(q, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Prob.Sign() < 0 || res.Prob.Cmp(one) > 0 {
			t.Fatalf("probability out of range: %s", res.Prob.RatString())
		}
	}
}

// TestMonotoneInProbabilities: raising an edge probability never lowers
// Pr(G ⇝ H) (PHom is monotone; matches can only become more likely).
func TestMonotoneInProbabilities(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 80; trial++ {
		q := gen.RandInClass(r, graph.Class1WP, 2+r.Intn(3), nil)
		inst := gen.RandInClass(r, graph.ClassPT, 2+r.Intn(7), nil)
		h := gen.RandProb(r, inst, 0.3)
		res1, err := Solve(q, h, &Options{DisableFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		// Raise one random edge's probability.
		h2 := h.Clone()
		i := r.Intn(inst.NumEdges())
		raised := new(big.Rat).Add(h.Prob(i), new(big.Rat).SetFrac64(1, 2))
		if raised.Cmp(graph.RatOne) > 0 {
			raised.SetInt64(1)
		}
		if err := h2.SetProb(i, raised); err != nil {
			t.Fatal(err)
		}
		res2, err := Solve(q, h2, &Options{DisableFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		if res2.Prob.Cmp(res1.Prob) < 0 {
			t.Fatalf("raising an edge probability lowered the result: %s -> %s",
				res1.Prob.RatString(), res2.Prob.RatString())
		}
	}
}

// TestLemma37Decomposition: the component decomposition must equal the
// direct computation on the union, via the automaton path on forests of
// polytrees.
func TestLemma37Decomposition(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 80; trial++ {
		k := 2 + r.Intn(3)
		parts := make([]*graph.Graph, k)
		for i := range parts {
			parts[i] = gen.RandPolytree(r, 1+r.Intn(5), nil)
		}
		u, _ := graph.DisjointUnion(parts...)
		h := gen.RandProb(r, u, 0.3)
		m := 1 + r.Intn(4)
		got, err := DirectedPathProbOnPolytrees(h, m)
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForce(graph.UnlabeledPath(m), h)
		if got.Cmp(want) != 0 {
			t.Fatalf("Lemma 3.7 decomposition wrong: %s vs %s", got.RatString(), want.RatString())
		}
	}
}

// TestFloatDPDriftBounded: the float64 ablation path must stay within
// 1e-9 of the exact rational result on moderate instances.
func TestFloatDPDriftBounded(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		h := gen.RandProb(r, gen.RandDWT(r, 50, nil), 0.3)
		m := 1 + r.Intn(4)
		exact, err := DirectedPathProbOnDWTs(h, m)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild the chain system for the float evaluation.
		res, err := Solve(graph.UnlabeledPath(m), h, &Options{DisableFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		ef, _ := exact.Float64()
		rf, _ := res.Prob.Float64()
		if diff := ef - rf; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("float drift too large: %g vs %g", ef, rf)
		}
	}
}

// TestSolverUsesExpectedMethod pins the routing decisions.
func TestSolverUsesExpectedMethod(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	cases := []struct {
		name   string
		q      *graph.Graph
		h      *graph.ProbGraph
		method Method
	}{
		{
			"labeled path on branching tree",
			graph.Path1WP("R", "S"),
			graph.NewProbGraph(star3("R", "S", "R")),
			MethodBetaAcyclicDWT,
		},
		{
			"connected on 2WP",
			graph.Path2WP(graph.Fwd("R"), graph.Bwd("S")),
			graph.NewProbGraph(gen.Rand2WP(r, 6, twoLabels)),
			MethodXProperty2WP,
		},
		{
			"unlabeled query on branching DWT",
			graph.UnlabeledPath(2),
			graph.NewProbGraph(star3(graph.Unlabeled, graph.Unlabeled, graph.Unlabeled)),
			MethodGradedDWT,
		},
		{
			"unlabeled path on genuine polytree",
			graph.UnlabeledPath(2),
			graph.NewProbGraph(genuinePolytree()),
			MethodAutomatonPT,
		},
	}
	for _, c := range cases {
		res, err := Solve(c.q, c.h, &Options{DisableFallback: true})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Method != c.method {
			t.Errorf("%s: routed to %v, want %v", c.name, res.Method, c.method)
		}
	}
}

// star3 is a root with three children (a DWT that is not a 2WP).
func star3(l1, l2, l3 graph.Label) *graph.Graph {
	g := graph.New(4)
	g.MustAddEdge(0, 1, l1)
	g.MustAddEdge(0, 2, l2)
	g.MustAddEdge(0, 3, l3)
	return g
}

// genuinePolytree has in-degree 2 and branching (neither DWT nor 2WP).
func genuinePolytree() *graph.Graph {
	g := graph.New(5)
	g.MustAddEdge(0, 1, graph.Unlabeled)
	g.MustAddEdge(2, 1, graph.Unlabeled)
	g.MustAddEdge(2, 3, graph.Unlabeled)
	g.MustAddEdge(2, 4, graph.Unlabeled)
	return g
}
