// Package core implements the paper's primary contribution: the
// polynomial-time algorithms for the tractable cases of the probabilistic
// graph homomorphism problem PHom (Propositions 3.6, 4.10, 4.11, 5.4 and
// 5.5, with Lemma 3.7 for disconnected instances), the exponential exact
// baselines used on #P-hard cases, the dispatching solver that routes an
// input pair to the best applicable algorithm, and the complexity
// classifier encoding Tables 1–3.
//
// Solving is a two-stage pipeline (Compile and CompiledPlan.Evaluate;
// Solve composes them) with dual-precision evaluation: plans execute on
// exact rational arithmetic by default, or on the certified float64
// interval kernel of internal/plan under Options.Precision, with the
// auto mode falling back to exact rationals whenever the certified
// error bound exceeds Options.FloatTolerance. See DESIGN.md,
// "Numerics: dual-precision evaluation".
package core
