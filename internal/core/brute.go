package core

import (
	"context"
	"math/big"

	"phom/internal/boolform"
	"phom/internal/graph"
	"phom/internal/phomerr"
)

// DefaultBruteForceLimit bounds the number of uncertain edges the
// possible-world enumeration accepts by default (2^22 worlds).
const DefaultBruteForceLimit = 22

// BruteForce computes Pr(G ⇝ H) exactly by enumerating the possible
// worlds of H, branching only on edges with probability strictly between
// 0 and 1. It is exponential in the number of uncertain edges and serves
// as the ground-truth oracle for every other algorithm, and as the exact
// baseline for the #P-hard cells of Tables 1–3.
func BruteForce(q *graph.Graph, h *graph.ProbGraph) *big.Rat {
	r, err := BruteForceLimit(q, h, 0)
	if err != nil {
		panic(err) // unreachable: limit 0 means unbounded, context never fires
	}
	return r
}

// BruteForceLimit is BruteForce with a cap on the number of uncertain
// edges (0 = unbounded).
func BruteForceLimit(q *graph.Graph, h *graph.ProbGraph, maxUncertain int) (*big.Rat, error) {
	return BruteForceLimitContext(context.Background(), q, h, maxUncertain)
}

// BruteForceLimitContext is BruteForceLimit with cooperative
// cancellation: the world enumeration polls ctx every
// phomerr.CheckInterval branches, so a cancelled context aborts the
// exponential recursion within one checkpoint interval (plus the cost
// of the homomorphism check of a single world) and returns the typed
// cancellation error.
func BruteForceLimitContext(ctx context.Context, q *graph.Graph, h *graph.ProbGraph, maxUncertain int) (*big.Rat, error) {
	uncertain := h.UncertainEdges()
	if maxUncertain > 0 && len(uncertain) > maxUncertain {
		return nil, phomerr.New(phomerr.CodeLimit,
			"core: %d uncertain edges exceed brute-force limit %d", len(uncertain), maxUncertain)
	}
	g := h.G
	keep := make([]bool, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		keep[i] = h.Prob(i).Cmp(graph.RatOne) == 0
	}
	cp := phomerr.NewCheckpoint(ctx)
	one := big.NewRat(1, 1)
	total := new(big.Rat)
	var abort error
	var rec func(i int, w *big.Rat)
	rec = func(i int, w *big.Rat) {
		if abort != nil || w.Sign() == 0 {
			return
		}
		if abort = cp.Check(); abort != nil {
			return
		}
		if i == len(uncertain) {
			world := g.SubgraphKeeping(keep)
			if graph.HasHomomorphism(q, world) {
				total.Add(total, w)
			}
			return
		}
		ei := uncertain[i]
		keep[ei] = true
		rec(i+1, new(big.Rat).Mul(w, h.Prob(ei)))
		keep[ei] = false
		rec(i+1, new(big.Rat).Mul(w, new(big.Rat).Sub(one, h.Prob(ei))))
	}
	rec(0, big.NewRat(1, 1))
	if abort != nil {
		return nil, abort
	}
	return total, nil
}

// LineageShannon computes Pr(G ⇝ H) by enumerating every homomorphism
// from G to H, collecting the DNF lineage whose clauses are the edge sets
// of the match images (Definition 4.6), and evaluating its probability by
// Shannon expansion. Both phases are exponential in the worst case, but
// on instances with few matches this baseline vastly outperforms world
// enumeration; it is the second exact baseline (ablation experiment E18).
// maxMatches caps the number of enumerated homomorphisms (0 = unbounded).
func LineageShannon(q *graph.Graph, h *graph.ProbGraph, maxMatches int) (*big.Rat, error) {
	return LineageShannonContext(context.Background(), q, h, maxMatches)
}

// LineageShannonContext is LineageShannon with cooperative
// cancellation, polled once per enumerated homomorphism (amortized by
// phomerr.CheckInterval).
func LineageShannonContext(ctx context.Context, q *graph.Graph, h *graph.ProbGraph, maxMatches int) (*big.Rat, error) {
	if q.NumEdges() == 0 {
		if q.NumVertices() > 0 && h.G.NumVertices() > 0 {
			return big.NewRat(1, 1), nil
		}
		return new(big.Rat), nil
	}
	dnf, err := MatchLineageContext(ctx, q, h.G, maxMatches)
	if err != nil {
		return nil, err
	}
	probs := make([]*big.Rat, h.G.NumEdges())
	for i := range probs {
		probs[i] = h.Prob(i)
	}
	// The Shannon expansion is the second exponential phase of this
	// baseline; it polls the same ctx, so cancellation covers match
	// enumeration and expansion alike (ROADMAP item 2).
	return dnf.ShannonProbContext(ctx, probs)
}

// MatchLineage builds the DNF lineage of q on the (deterministic part of
// the) instance g: one clause per distinct match image, over the edge
// indices of g. maxMatches caps enumeration (0 = unbounded).
func MatchLineage(q, g *graph.Graph, maxMatches int) (*boolform.DNF, error) {
	return MatchLineageContext(context.Background(), q, g, maxMatches)
}

// MatchLineageContext is MatchLineage with cooperative cancellation,
// polled once per enumerated homomorphism.
func MatchLineageContext(ctx context.Context, q, g *graph.Graph, maxMatches int) (*boolform.DNF, error) {
	dnf := boolform.NewDNF(g.NumEdges())
	seen := map[string]bool{}
	cp := phomerr.NewCheckpoint(ctx)
	count := 0
	exceeded := false
	var abort error
	graph.ForEachHomomorphism(q, g, func(hm graph.Homomorphism) bool {
		if abort = cp.Check(); abort != nil {
			return false
		}
		count++
		if maxMatches > 0 && count > maxMatches {
			exceeded = true
			return false
		}
		clause := make([]boolform.Var, 0, q.NumEdges())
		for _, e := range q.Edges() {
			ei, ok := g.EdgeIndex(hm[e.From], hm[e.To])
			if !ok {
				panic("core: homomorphism image misses an edge")
			}
			clause = append(clause, boolform.Var(ei))
		}
		key := clauseKey(clause)
		if !seen[key] {
			seen[key] = true
			dnf.AddClause(clause...)
		}
		return true
	})
	if abort != nil {
		return nil, abort
	}
	if exceeded {
		return nil, phomerr.New(phomerr.CodeLimit, "core: more than %d matches", maxMatches)
	}
	return dnf.Absorb(), nil
}

func clauseKey(vars []boolform.Var) string {
	sorted := append([]boolform.Var(nil), vars...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	b := make([]byte, 0, len(sorted)*3)
	for _, v := range sorted {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(b)
}
