package core

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/graph"
)

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{
		{"", PrecisionExact},
		{"exact", PrecisionExact},
		{"fast", PrecisionFast},
		{"auto", PrecisionAuto},
	} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"fats", "EXACT", "float", "auto ", "0"} {
		if _, err := ParsePrecision(bad); err == nil {
			t.Fatalf("ParsePrecision(%q) accepted", bad)
		}
	}
	if PrecisionFast.String() != "fast" || PrecisionAuto.String() != "auto" || PrecisionExact.String() != "exact" {
		t.Fatal("precision names changed")
	}
}

// TestOptionsValidatePrecision pins the new option checks: out-of-range
// precision values and negative/NaN/Inf tolerances are errors, never
// silent defaults.
func TestOptionsValidatePrecision(t *testing.T) {
	good := []Options{
		{},
		{Precision: PrecisionFast},
		{Precision: PrecisionAuto, FloatTolerance: 1e-12},
		{FloatTolerance: 0.5},
		{Precision: PrecisionApprox},
		{Precision: PrecisionApprox, Epsilon: 0.1, Delta: 0.05, Seed: 7},
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v", o, err)
		}
	}
	bad := []Options{
		{Precision: Precision(4)},
		{Precision: Precision(-1)},
		{FloatTolerance: -1e-9},
		{FloatTolerance: math.NaN()},
		{FloatTolerance: math.Inf(1)},
		{Precision: PrecisionApprox, Epsilon: 1},
		{Precision: PrecisionApprox, Epsilon: -0.1},
		{Precision: PrecisionApprox, Delta: 1.5},
		{Precision: PrecisionApprox, Delta: math.NaN()},
		{Epsilon: 0.1},
		{Delta: 0.1},
		{Seed: 1},
		{Precision: PrecisionFast, Epsilon: 0.1},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted", o)
		}
	}
	// Solve rejects them on entry, like the other option checks.
	q := graph.UnlabeledPath(1)
	h := graph.NewProbGraph(graph.UnlabeledPath(1))
	if _, err := Solve(q, h, &Options{FloatTolerance: math.NaN()}); err == nil {
		t.Fatal("Solve accepted a NaN tolerance")
	}
}

// TestFingerprintPrecision pins that precision and tolerance take part
// in the options fingerprint (the engine's result cache must not serve
// a float answer to an exact-precision job or vice versa), with
// defaults normalizing like the other fields.
func TestFingerprintPrecision(t *testing.T) {
	var nilOpts *Options
	if nilOpts.Fingerprint() != (&Options{Precision: PrecisionExact, FloatTolerance: DefaultFloatTolerance}).Fingerprint() {
		t.Fatal("nil options fingerprint differs from spelled-out defaults")
	}
	seen := map[string]bool{}
	for _, o := range []*Options{
		nil,
		{Precision: PrecisionFast},
		{Precision: PrecisionAuto},
		{Precision: PrecisionAuto, FloatTolerance: 1e-12},
	} {
		fp := o.Fingerprint()
		if seen[fp] {
			t.Fatalf("fingerprint collision for %+v: %s", o, fp)
		}
		seen[fp] = true
	}
	// The tolerance only matters in auto mode: exact and fast jobs
	// never consult it, so it must not split their cache entries.
	if (&Options{Precision: PrecisionFast, FloatTolerance: 1e-6}).Fingerprint() !=
		(&Options{Precision: PrecisionFast, FloatTolerance: 1e-12}).Fingerprint() {
		t.Fatal("unused tolerance split the fast-mode fingerprint")
	}
	// The structure fingerprint strips evaluation policy entirely, so
	// every precision mode shares one compiled-plan identity.
	base := (&Options{}).StructFingerprint()
	for _, o := range []*Options{
		nil,
		{Precision: PrecisionFast},
		{Precision: PrecisionAuto, FloatTolerance: 1e-12},
	} {
		if o.StructFingerprint() != base {
			t.Fatalf("StructFingerprint differs for %+v", o)
		}
	}
	if (&Options{BruteForceLimit: 10}).StructFingerprint() == base {
		t.Fatal("StructFingerprint ignored a compile-affecting option")
	}
}

// TestPrecisionDifferentialGuardRows is the dual-precision acceptance
// differential: for every guard-table row (the four tractable cells and
// every Const short-circuit) and seeded reweightings, the exact answer
// must lie inside the float path's certified enclosure, and the auto
// mode must either serve a within-tolerance float answer or fall back
// to rationals byte-identical to exact precision.
func TestPrecisionDifferentialGuardRows(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	var jobs []struct {
		name string
		q    *graph.Graph
		h    *graph.ProbGraph
	}
	for _, j := range tractableJobs(r, 18) {
		if j.name == "baseline (hard cell)" {
			continue // opaque: covered by TestPrecisionOpaqueFallsBack
		}
		jobs = append(jobs, j)
	}
	jobs = append(jobs, constJobs(r, 18)...)
	for _, job := range jobs {
		cp, err := Compile(job.q, job.h, nil)
		if err != nil {
			t.Fatalf("%s: Compile: %v", job.name, err)
		}
		for reweight := 0; reweight < 4; reweight++ {
			probs := job.h.Probs()
			exact, err := cp.EvaluateOpts(probs, nil)
			if err != nil {
				t.Fatalf("%s: exact: %v", job.name, err)
			}
			if exact.Precision != PrecisionExact || exact.Bounds != nil {
				t.Fatalf("%s: exact result claims substrate %v, bounds %v", job.name, exact.Precision, exact.Bounds)
			}

			fast, err := cp.EvaluateOpts(probs, &Options{Precision: PrecisionFast})
			if err != nil {
				t.Fatalf("%s: fast: %v", job.name, err)
			}
			if fast.Precision != PrecisionFast || fast.Bounds == nil {
				t.Fatalf("%s: fast result has substrate %v, bounds %v", job.name, fast.Precision, fast.Bounds)
			}
			if !fast.Bounds.Contains(exact.Prob) {
				t.Fatalf("%s: exact %s outside certified enclosure [%g, %g]",
					job.name, exact.Prob.RatString(), fast.Bounds.Lo, fast.Bounds.Hi)
			}
			// The point estimate and the exact answer both lie in the
			// enclosure, so their exact-rational distance is at most
			// the exact width (computed in rationals, not floats).
			d := new(big.Rat).Sub(fast.Prob, exact.Prob)
			d.Abs(d)
			width := new(big.Rat).Sub(new(big.Rat).SetFloat64(fast.Bounds.Hi), new(big.Rat).SetFloat64(fast.Bounds.Lo))
			if d.Cmp(width) > 0 {
				t.Fatalf("%s: fast point estimate off by %s, more than the certified width %s",
					job.name, d.FloatString(20), width.FloatString(20))
			}

			for _, tol := range []float64{DefaultFloatTolerance, 5e-324} {
				auto, err := cp.EvaluateOpts(probs, &Options{Precision: PrecisionAuto, FloatTolerance: tol})
				if err != nil {
					t.Fatalf("%s: auto: %v", job.name, err)
				}
				switch auto.Precision {
				case PrecisionFast:
					if auto.Bounds == nil || !(auto.Bounds.Width() <= tol) {
						t.Fatalf("%s: auto served a float answer wider than tol %g", job.name, tol)
					}
					if !auto.Bounds.Contains(exact.Prob) {
						t.Fatalf("%s: auto enclosure does not contain the exact answer", job.name)
					}
				case PrecisionExact:
					if auto.Bounds != nil {
						t.Fatalf("%s: auto fallback carries bounds", job.name)
					}
					if auto.Prob.RatString() != exact.Prob.RatString() {
						t.Fatalf("%s: auto fallback %s differs from exact %s",
							job.name, auto.Prob.RatString(), exact.Prob.RatString())
					}
				default:
					t.Fatalf("%s: result claims substrate %v", job.name, auto.Precision)
				}
			}
			reweightRandomly(r, job.h)
		}
	}
}

// TestPrecisionToleranceBoundaries drives the fallback decision across
// tolerance boundaries on a fixed one-edge plan, including probability
// values at and near 0 and 1, where float rounding behaves differently
// (subnormal-tight enclosures near 0, ulp-of-1-wide ones near 1).
func TestPrecisionToleranceBoundaries(t *testing.T) {
	q := graph.Path1WP("R")
	hg := graph.New(2)
	hg.MustAddEdge(0, 1, "R")
	h := graph.NewProbGraph(hg)

	third := big.NewRat(1, 3)
	tiny := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Exp(big.NewInt(10), big.NewInt(300), nil))
	nearOne := new(big.Rat).Sub(graph.RatOne, tiny)

	cases := []struct {
		name     string
		p        *big.Rat
		tol      float64
		wantFast bool
	}{
		// 1/3 rounds: the enclosure is a couple of ulps (~1e-16) wide.
		{"1/3 loose tol", third, 1e-9, true},
		{"1/3 boundary tol", third, 1e-15, true},
		{"1/3 tight tol", third, 1e-18, false},
		// Exactly representable endpoints: zero-width enclosures pass
		// any tolerance, including the smallest positive float.
		{"p=0 smallest tol", new(big.Rat), 5e-324, true},
		{"p=1 smallest tol", new(big.Rat).Set(graph.RatOne), 5e-324, true},
		{"p=1/2 smallest tol", big.NewRat(1, 2), 5e-324, true},
		// Near 1, the enclosure cannot be tighter than an ulp of 1.
		{"near-1 loose tol", nearOne, 1e-9, true},
		{"near-1 tight tol", nearOne, 1e-17, false},
		// Near 0 the chain DP emits 1−(1−p), which the lowering-time
		// optimizer collapses to p itself, so the enclosure is ulp-of-p
		// scale (~1e-316 here), not ulp-of-1 scale. Only a tolerance
		// below that forces fallback.
		{"near-0 loose tol", tiny, 1e-9, true},
		{"near-0 tol below ulp(1)", tiny, 1e-17, true},
		{"near-0 tight tol", tiny, 1e-317, false},
	}
	for _, tc := range cases {
		if err := h.SetProb(0, tc.p); err != nil {
			t.Fatal(err)
		}
		exact, err := Solve(q, h, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		res, err := Solve(q, h, &Options{Precision: PrecisionAuto, FloatTolerance: tc.tol})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := res.Precision == PrecisionFast; got != tc.wantFast {
			width := "-"
			if res.Bounds != nil {
				width = res.Bounds.String()
			}
			t.Fatalf("%s: served %v (bounds %s), want fast=%v", tc.name, res.Precision, width, tc.wantFast)
		}
		if res.Precision == PrecisionExact && res.Prob.RatString() != exact.Prob.RatString() {
			t.Fatalf("%s: fallback diverged from exact", tc.name)
		}
		if res.Bounds != nil && !res.Bounds.Contains(exact.Prob) {
			t.Fatalf("%s: enclosure [%g, %g] misses exact %s",
				tc.name, res.Bounds.Lo, res.Bounds.Hi, exact.Prob.FloatString(20))
		}
	}
}

// TestFastEstimateIsAProbability pins the clamping contract: even when
// the certified enclosure straddles 0 or 1 (exact answers at the
// boundary), the served point estimate is itself a valid probability —
// downstream consumers (log-space code, estimates re-used as edge
// probabilities) must never see -5.6e-17 or 1.0000000000000002.
func TestFastEstimateIsAProbability(t *testing.T) {
	q := graph.Path1WP("R")
	hg := graph.New(2)
	hg.MustAddEdge(0, 1, "R")
	h := graph.NewProbGraph(hg)
	tiny := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Exp(big.NewInt(10), big.NewInt(30), nil))
	for _, p := range []*big.Rat{
		new(big.Rat),                         // exactly 0: enclosure may straddle 0
		new(big.Rat).Set(tiny),               // near 0
		new(big.Rat).Sub(graph.RatOne, tiny), // near 1
		new(big.Rat).Set(graph.RatOne),       // exactly 1
	} {
		if err := h.SetProb(0, p); err != nil {
			t.Fatal(err)
		}
		res, err := Solve(q, h, &Options{Precision: PrecisionFast})
		if err != nil {
			t.Fatal(err)
		}
		if res.Precision != PrecisionFast {
			t.Fatalf("p=%s: fast request answered on %v", p.RatString(), res.Precision)
		}
		if res.Prob.Sign() < 0 || res.Prob.Cmp(graph.RatOne) > 0 {
			t.Fatalf("p=%s: fast estimate %s outside [0,1]", p.RatString(), res.Prob.RatString())
		}
	}
}

// TestPrecisionOpaqueFallsBack pins the opaque contract under the fast
// modes: hard-cell plans have no float kernel, so every precision mode
// answers exactly (and reports the exact substrate).
func TestPrecisionOpaqueFallsBack(t *testing.T) {
	// A 2-cycle query on a 2-cycle instance is outside every tractable
	// cell (the instance is not a polytree).
	q := graph.New(2)
	q.MustAddEdge(0, 1, graph.Unlabeled)
	q.MustAddEdge(1, 0, graph.Unlabeled)
	hg := graph.New(2)
	hg.MustAddEdge(0, 1, graph.Unlabeled)
	hg.MustAddEdge(1, 0, graph.Unlabeled)
	h := graph.NewProbGraph(hg)
	h.MustSetEdgeProb(0, 1, big.NewRat(1, 3))
	h.MustSetEdgeProb(1, 0, big.NewRat(2, 3))

	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Opaque() {
		t.Fatal("expected an opaque plan for the cyclic pair")
	}
	exact, err := cp.EvaluateOpts(h.Probs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []*Options{
		{Precision: PrecisionFast},
		{Precision: PrecisionAuto},
	} {
		res, err := cp.EvaluateOpts(h.Probs(), opts)
		if err != nil {
			t.Fatalf("%v: %v", opts.Precision, err)
		}
		if res.Precision != PrecisionExact || res.Bounds != nil {
			t.Fatalf("%v: opaque evaluation claims substrate %v", opts.Precision, res.Precision)
		}
		if res.Prob.RatString() != exact.Prob.RatString() {
			t.Fatalf("%v: opaque result diverged", opts.Precision)
		}
	}
}

// TestCompiledPrecisionSticks pins that a plan compiled with a fast
// precision keeps it for plain Evaluate calls (the public Compile +
// Evaluate flow), while a plan restored from bytes reverts to exact.
func TestCompiledPrecisionSticks(t *testing.T) {
	q := graph.Path1WP("R")
	hg := graph.New(3)
	hg.MustAddEdge(0, 1, "R")
	hg.MustAddEdge(1, 2, "R")
	h := graph.NewProbGraph(hg)
	h.MustSetEdgeProb(0, 1, big.NewRat(1, 3))
	h.MustSetEdgeProb(1, 2, big.NewRat(1, 7))

	cp, err := Compile(q, h, &Options{Precision: PrecisionFast})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cp.Evaluate(h.Probs())
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision != PrecisionFast || res.Bounds == nil {
		t.Fatalf("fast-compiled plan evaluated on substrate %v", res.Precision)
	}

	data, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := new(CompiledPlan)
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	rres, err := restored.Evaluate(h.Probs())
	if err != nil {
		t.Fatal(err)
	}
	if rres.Precision != PrecisionExact {
		t.Fatalf("restored plan evaluated on substrate %v, want exact", rres.Precision)
	}
	// But the job's options still route it, via EvaluateOpts.
	rfast, err := restored.EvaluateOpts(h.Probs(), &Options{Precision: PrecisionFast})
	if err != nil {
		t.Fatal(err)
	}
	if rfast.Precision != PrecisionFast || rfast.Bounds == nil {
		t.Fatal("EvaluateOpts did not route a restored plan to the float kernel")
	}
	if !rfast.Bounds.Contains(rres.Prob) {
		t.Fatal("restored plan's enclosure misses the exact answer")
	}
}
