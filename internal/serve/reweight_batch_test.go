package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
)

// randProbsVec builds one probs-override map over the example
// instance's uncertain edges.
func randProbsVec(r *rand.Rand) map[string]string {
	keys := []string{"0>2", "1>2", "1>3", "0>3", "2>3"}
	vec := make(map[string]string, len(keys))
	for _, k := range keys {
		vec[k] = fmt.Sprintf("%d/17", 1+r.Intn(16))
	}
	return vec
}

// TestReweightBatchMatchesSingle: the multi-vector reweight answers
// each vector exactly as a single-vector /reweight of the same map
// would, in request order, and reports the lanes went through the
// batched kernel.
func TestReweightBatchMatchesSingle(t *testing.T) {
	ts := newTestServer(t)
	r := rand.New(rand.NewSource(11))
	vecs := make([]map[string]string, 8)
	for i := range vecs {
		vecs[i] = randProbsVec(r)
	}

	resp, body := postJSON(t, ts.URL+"/reweight", ReweightRequest{
		SolveRequest: SolveRequest{QueryText: exampleQueryText, InstanceText: exampleInstanceText},
		ProbsBatch:   vecs,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(vecs) {
		t.Fatalf("%d results for %d vectors", len(br.Results), len(vecs))
	}
	if br.Stats.BatchRuns == 0 || br.Stats.BatchLanes < uint64(len(vecs)) {
		t.Errorf("batch_runs=%d batch_lanes=%d: lanes did not route through the batched kernel",
			br.Stats.BatchRuns, br.Stats.BatchLanes)
	}

	// A second server answers each vector individually; answers must
	// match byte-for-byte.
	ts2 := newTestServer(t)
	for i, vec := range vecs {
		if br.Results[i].Error != "" {
			t.Fatalf("lane %d: %s", i, br.Results[i].Error)
		}
		sResp, sBody := postJSON(t, ts2.URL+"/reweight", ReweightRequest{
			SolveRequest: SolveRequest{QueryText: exampleQueryText, InstanceText: exampleInstanceText},
			Probs:        vec,
		})
		if sResp.StatusCode != http.StatusOK {
			t.Fatalf("single reweight %d: status %d: %s", i, sResp.StatusCode, sBody)
		}
		var sr SolveResponse
		if err := json.Unmarshal(sBody, &sr); err != nil {
			t.Fatal(err)
		}
		if br.Results[i].Prob != sr.Prob {
			t.Errorf("lane %d: batch prob %s, single prob %s", i, br.Results[i].Prob, sr.Prob)
		}
		if br.Results[i].Method != sr.Method {
			t.Errorf("lane %d: batch method %s, single method %s", i, br.Results[i].Method, sr.Method)
		}
	}
}

// TestReweightBatchFastBounds: under fast precision every lane carries
// its own certified enclosure and the point estimate sits inside it.
// The tractable 1WP-on-path pair is used (the example pair is #P-hard
// and would fall back to exact brute force).
func TestReweightBatchFastBounds(t *testing.T) {
	ts := newTestServer(t)
	r := rand.New(rand.NewSource(13))
	vecs := make([]map[string]string, 4)
	for i := range vecs {
		vecs[i] = map[string]string{
			"0>1": fmt.Sprintf("%d/17", 1+r.Intn(16)),
			"1>2": fmt.Sprintf("%d/17", 1+r.Intn(16)),
		}
	}
	resp, body := postJSON(t, ts.URL+"/reweight", ReweightRequest{
		SolveRequest: SolveRequest{
			QueryText:    precQueryText,
			InstanceText: precInstanceText,
			Options:      &SolveOptions{Precision: "fast"},
		},
		ProbsBatch: vecs,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	for i, res := range br.Results {
		if res.Error != "" {
			t.Fatalf("lane %d: %s", i, res.Error)
		}
		if res.Precision != "fast" {
			t.Errorf("lane %d: precision %q, want fast", i, res.Precision)
		}
		if res.ProbLo == nil || res.ProbHi == nil {
			t.Fatalf("lane %d: fast result without bounds", i)
		}
		if res.ProbFloat < *res.ProbLo || res.ProbFloat > *res.ProbHi {
			t.Errorf("lane %d: prob_float %v outside [%v, %v]", i, res.ProbFloat, *res.ProbLo, *res.ProbHi)
		}
	}
}

// TestReweightBatchBadInput: malformed vectors, the probs/probs_batch
// exclusivity rule and the size cap are 400s before anything executes.
func TestReweightBatchBadInput(t *testing.T) {
	ts := newTestServer(t)
	base := SolveRequest{QueryText: exampleQueryText, InstanceText: exampleInstanceText}

	cases := []struct {
		name string
		req  ReweightRequest
	}{
		{"both forms", ReweightRequest{SolveRequest: base,
			Probs:      map[string]string{"1>2": "1/2"},
			ProbsBatch: []map[string]string{{"1>2": "1/3"}}}},
		{"bad key", ReweightRequest{SolveRequest: base, ProbsBatch: []map[string]string{{"nope": "1/2"}}}},
		{"bad value", ReweightRequest{SolveRequest: base, ProbsBatch: []map[string]string{{"1>2": "seven"}}}},
		{"out of range", ReweightRequest{SolveRequest: base, ProbsBatch: []map[string]string{{"1>2": "3/2"}}}},
		{"unknown edge", ReweightRequest{SolveRequest: base, ProbsBatch: []map[string]string{{"3>0": "1/2"}}}},
		{"bad lane after good", ReweightRequest{SolveRequest: base,
			ProbsBatch: []map[string]string{{"1>2": "1/2"}, {"1>2": "bad"}}}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/reweight", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
	}

	// An explicitly-empty probs_batch is a 400, not a silent fallback to
	// the single-vector form (the Go struct's omitempty would drop it, so
	// post it raw).
	resp0, body0 := postRaw(t, ts.URL+"/reweight", fmt.Sprintf(
		`{"query_text": %q, "instance_text": %q, "probs_batch": []}`,
		exampleQueryText, exampleInstanceText))
	if resp0.StatusCode != http.StatusBadRequest {
		t.Errorf("empty probs_batch: status %d, want 400: %s", resp0.StatusCode, body0)
	}

	over := make([]map[string]string, MaxBatchJobs+1)
	for i := range over {
		over[i] = map[string]string{"1>2": "1/2"}
	}
	resp, body := postJSON(t, ts.URL+"/reweight", ReweightRequest{SolveRequest: base, ProbsBatch: over})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestReweightBatchPlanReuse: the lanes of one multi-vector reweight
// share a single compiled plan, and a later multi-vector reweight of
// the same structure recompiles nothing.
func TestReweightBatchPlanReuse(t *testing.T) {
	ts := newTestServer(t)
	r := rand.New(rand.NewSource(17))
	post := func() BatchResponse {
		t.Helper()
		vecs := make([]map[string]string, 6)
		for i := range vecs {
			vecs[i] = randProbsVec(r)
		}
		resp, body := postJSON(t, ts.URL+"/reweight", ReweightRequest{
			SolveRequest: SolveRequest{QueryText: exampleQueryText, InstanceText: exampleInstanceText},
			ProbsBatch:   vecs,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var br BatchResponse
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatal(err)
		}
		return br
	}
	first := post()
	if first.Stats.PlanCompiles != 1 {
		t.Errorf("first batch: plan_compiles = %d, want 1", first.Stats.PlanCompiles)
	}
	second := post()
	if second.Stats.PlanCompiles != 1 {
		t.Errorf("second batch: plan_compiles = %d, want 1 (structure already cached)", second.Stats.PlanCompiles)
	}
	if second.Stats.PlanHits == 0 {
		t.Error("second batch: expected plan hits")
	}
}
