package serve

// instances.go: the live-instance half of the wire protocol. An
// instance is a named, versioned mutable probabilistic graph registered
// with the engine (engine.CreateInstance); clients mutate it with typed
// delta batches under an optimistic if_version check (409 on a stale
// version) and solve/reweight/batch against whatever snapshot is
// current, without re-shipping the graph on every request. Endpoints:
//
//	POST   /instances                create (server mints an id if absent)
//	GET    /instances                list ids
//	GET    /instances/{id}           version, size, per-component class census
//	DELETE /instances/{id}           unregister, evict caches
//	POST   /instances/{id}/delta     apply a delta batch (if_version CAS)
//	POST   /instances/{id}/solve     SolveRequest minus the instance fields
//	POST   /instances/{id}/reweight  ReweightRequest minus the instance fields
//	POST   /instances/{id}/batch     BatchRequest minus the instance fields
//
// The solve-shaped endpoints answer with the ordinary wire types plus
// the X-Phom-Instance-Version header naming the snapshot version that
// answered — under concurrent deltas a solve runs copy-on-write against
// the version it resolved, never a torn half-applied state.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"phom/internal/engine"
	"phom/internal/graph"
	"phom/internal/graphio"
	"phom/internal/instance"
	"phom/internal/phomerr"
)

// InstanceVersionHeader reports, on instance-scoped solve responses,
// the snapshot version the answer was computed against.
const InstanceVersionHeader = "X-Phom-Instance-Version"

// CreateInstanceRequest creates a live instance. The graph comes in
// either wire format, exactly like a solve request's instance.
type CreateInstanceRequest struct {
	// ID names the instance; empty lets the server mint a unique id.
	ID           string          `json:"id,omitempty"`
	Instance     json.RawMessage `json:"instance,omitempty"`
	InstanceText string          `json:"instance_text,omitempty"`
}

// InstanceInfoResponse describes a live instance: its current version
// and the structural census the dispatch of Tables 1–3 sees — how many
// connected components sit in each tightest class.
type InstanceInfoResponse struct {
	ID            string         `json:"id"`
	Version       uint64         `json:"version"`
	Vertices      int            `json:"vertices"`
	Edges         int            `json:"edges"`
	ClassCensus   map[string]int `json:"class_census"`
	DeltasApplied int64          `json:"deltas_applied"`
}

// InstanceListResponse lists the live instance ids.
type InstanceListResponse struct {
	Instances []string `json:"instances"`
}

// DeltaOp is one wire-form delta: op is "set_prob", "add_edge" or
// "remove_edge"; edge addresses the endpoints as "from>to"; prob is an
// exact rational ("1/2", "0.35") — required for set_prob, optional for
// add_edge (default 1); label is for add_edge (default the unlabeled
// label).
type DeltaOp struct {
	Op    string `json:"op"`
	Edge  string `json:"edge"`
	Label string `json:"label,omitempty"`
	Prob  string `json:"prob,omitempty"`
}

// DeltaRequest applies a batch of deltas atomically. if_version, when
// present, is the optimistic concurrency check: the batch applies only
// if the instance is still at that version, otherwise the request fails
// with 409 and the code "conflict" (re-read the version and retry).
// Absent means unconditional.
type DeltaRequest struct {
	IfVersion *int64    `json:"if_version,omitempty"`
	Deltas    []DeltaOp `json:"deltas"`
}

// DeltaResponse reports a committed delta batch.
type DeltaResponse struct {
	ID         string `json:"id"`
	Version    uint64 `json:"version"`
	Structural bool   `json:"structural"`
	Applied    int    `json:"applied"`
	ElapsedUS  int64  `json:"elapsed_us"`
}

// handleInstances serves the collection: POST creates, GET lists.
func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		WriteJSON(w, http.StatusOK, InstanceListResponse{Instances: s.engine.ListInstances()})
	case http.MethodPost:
		var req CreateInstanceRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		var (
			h   *graph.ProbGraph
			err error
		)
		switch {
		case req.Instance != nil && req.InstanceText != "":
			WriteError(w, http.StatusBadRequest, "provide instance or instance_text, not both")
			return
		case req.Instance != nil:
			h, err = graphio.UnmarshalProbGraphJSON(req.Instance)
		case req.InstanceText != "":
			h, err = graphio.ParseProbGraph(strings.NewReader(req.InstanceText))
		default:
			WriteError(w, http.StatusBadRequest, "no instance: provide instance or instance_text")
			return
		}
		if err != nil {
			WriteError(w, http.StatusBadRequest, "bad instance: "+err.Error())
			return
		}
		in, err := s.engine.CreateInstance(req.ID, h)
		if err != nil {
			WriteTypedError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, instanceInfo(in))
	default:
		WriteError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// handleInstanceScoped routes /instances/{id} and /instances/{id}/{op}.
func (s *Server) handleInstanceScoped(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/instances/")
	id, op, _ := strings.Cut(rest, "/")
	if id == "" {
		WriteError(w, http.StatusNotFound, "missing instance id")
		return
	}
	switch op {
	case "":
		s.handleInstanceRoot(w, r, id)
	case "delta":
		s.handleInstanceDelta(w, r, id)
	case "solve":
		s.handleInstanceSolve(w, r, id)
	case "reweight":
		s.handleInstanceReweight(w, r, id)
	case "batch":
		s.handleInstanceBatch(w, r, id)
	default:
		WriteError(w, http.StatusNotFound, fmt.Sprintf("unknown instance operation %q", op))
	}
}

func (s *Server) handleInstanceRoot(w http.ResponseWriter, r *http.Request, id string) {
	switch r.Method {
	case http.MethodGet:
		in, ok := s.engine.Instance(id)
		if !ok {
			writeNoInstance(w, id)
			return
		}
		WriteJSON(w, http.StatusOK, instanceInfo(in))
	case http.MethodDelete:
		if !s.engine.DeleteInstance(id) {
			writeNoInstance(w, id)
			return
		}
		WriteJSON(w, http.StatusOK, map[string]string{"deleted": id})
	default:
		WriteError(w, http.StatusMethodNotAllowed, "GET or DELETE only")
	}
}

func (s *Server) handleInstanceDelta(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req DeltaRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	deltas, err := parseDeltas(req.Deltas)
	if err != nil {
		WriteTypedError(w, phomerr.Wrap(phomerr.CodeBadInput, err))
		return
	}
	ifVersion := int64(-1)
	if req.IfVersion != nil {
		if *req.IfVersion < 0 {
			WriteError(w, http.StatusBadRequest, fmt.Sprintf("if_version %d is negative", *req.IfVersion))
			return
		}
		ifVersion = *req.IfVersion
	}
	start := time.Now()
	res, err := s.engine.ApplyDelta(id, ifVersion, deltas)
	if err != nil {
		if errors.Is(err, engine.ErrNoInstance) {
			writeNoInstance(w, id)
			return
		}
		WriteTypedError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, DeltaResponse{
		ID:         id,
		Version:    res.New.Version,
		Structural: res.Structural,
		Applied:    len(deltas),
		ElapsedUS:  time.Since(start).Microseconds(),
	})
}

func (s *Server) handleInstanceSolve(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	job, ok := s.instanceJob(w, id, &req)
	if !ok {
		return
	}
	resp, jerr := s.runJob(r.Context(), job)
	if jerr != nil {
		WriteJSON(w, StatusOf(jerr), resp)
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInstanceReweight(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ReweightRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	job, ok := s.instanceJob(w, id, &req.SolveRequest)
	if !ok {
		return
	}
	if len(req.Probs) > 0 && len(req.ProbsBatch) > 0 {
		WriteError(w, http.StatusBadRequest, "provide probs or probs_batch, not both")
		return
	}
	if req.ProbsBatch != nil {
		s.reweightBatch(w, r, job, req.ProbsBatch)
		return
	}
	if len(req.Probs) > 0 {
		inst, err := applyProbs(job.Instance, req.Probs)
		if err != nil {
			WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		job.Instance = inst
	}
	resp, jerr := s.runJob(r.Context(), job)
	if jerr != nil {
		WriteJSON(w, StatusOf(jerr), resp)
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInstanceBatch(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Resolve the snapshot once so every job of the batch answers the
	// same version even under concurrent deltas; fail the whole batch
	// only when the instance itself is gone.
	if _, ok := s.engine.Instance(id); !ok {
		writeNoInstance(w, id)
		return
	}
	var version uint64
	s.serveBatch(w, r, req, func(jr SolveRequest) (engine.Job, error) {
		job, err := s.resolveInstanceJob(id, &jr)
		if err != nil {
			return engine.Job{}, err
		}
		if v := job.version; version == 0 {
			version = v
		}
		return job.Job, nil
	})
}

// versionedJob carries the snapshot version alongside the resolved job.
type versionedJob struct {
	engine.Job
	version uint64
}

// resolveInstanceJob parses the instance-less request skeleton and
// binds it to the instance's current snapshot through the engine's
// tracking registry.
func (s *Server) resolveInstanceJob(id string, req *SolveRequest) (versionedJob, error) {
	if req.Instance != nil || req.InstanceText != "" {
		return versionedJob{}, fmt.Errorf("instance-scoped request must not carry an instance field")
	}
	job, err := req.jobSkeleton(s.defPrec, s.defTol)
	if err != nil {
		return versionedJob{}, err
	}
	job, version, err := s.engine.InstanceJob(id, job)
	if err != nil {
		return versionedJob{}, err
	}
	return versionedJob{Job: job, version: version}, nil
}

// instanceJob is resolveInstanceJob with the error handling of the
// single-job endpoints: 404 for a missing instance, typed 400 for a
// malformed request, and the snapshot version stamped on the response
// headers.
func (s *Server) instanceJob(w http.ResponseWriter, id string, req *SolveRequest) (engine.Job, bool) {
	vj, err := s.resolveInstanceJob(id, req)
	if err != nil {
		if errors.Is(err, engine.ErrNoInstance) {
			writeNoInstance(w, id)
			return engine.Job{}, false
		}
		WriteTypedError(w, phomerr.Wrap(phomerr.CodeBadInput, err))
		return engine.Job{}, false
	}
	w.Header().Set(InstanceVersionHeader, fmt.Sprintf("%d", vj.version))
	return vj.Job, true
}

func parseDeltas(ops []DeltaOp) ([]instance.Delta, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("empty delta batch")
	}
	out := make([]instance.Delta, len(ops))
	for i, op := range ops {
		o, err := instance.ParseOp(op.Op)
		if err != nil {
			return nil, fmt.Errorf("delta %d: %v", i, err)
		}
		from, to, ok := graphio.ParseEdgeKey(op.Edge)
		if !ok {
			return nil, fmt.Errorf("delta %d: bad edge %q: want \"from>to\"", i, op.Edge)
		}
		d := instance.Delta{Op: o, From: graph.Vertex(from), To: graph.Vertex(to)}
		if op.Prob != "" {
			p, err := graphio.ParseRat(op.Prob)
			if err != nil {
				return nil, fmt.Errorf("delta %d: bad prob: %v", i, err)
			}
			d.Prob = p
		}
		if o == instance.OpSetProb && d.Prob == nil {
			return nil, fmt.Errorf("delta %d: set_prob needs a prob", i)
		}
		if o == instance.OpAddEdge {
			d.Label = graph.Unlabeled
			if op.Label != "" {
				d.Label = graph.Label(op.Label)
			}
		} else if op.Label != "" {
			return nil, fmt.Errorf("delta %d: label is only valid on add_edge", i)
		}
		out[i] = d
	}
	return out, nil
}

func instanceInfo(in *instance.Instance) InstanceInfoResponse {
	snap := in.Snapshot()
	return InstanceInfoResponse{
		ID:            in.ID(),
		Version:       snap.Version,
		Vertices:      snap.H.G.NumVertices(),
		Edges:         snap.H.G.NumEdges(),
		ClassCensus:   instance.ClassCensus(snap.H.G),
		DeltasApplied: in.DeltasApplied(),
	}
}

func writeNoInstance(w http.ResponseWriter, id string) {
	WriteJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("no such instance %q", id)})
}
