package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// A three-vertex path with all edges on label R. The single-R-edge
// query matches iff at least one edge survives:
// Pr = 1 − (1−p01)(1−p12) = 1 − (1/2)(2/3) = 2/3.
const (
	liveInstanceText = `
vertices 3
edge 0 1 R 1/2
edge 1 2 R 1/3
`
	oneEdgeQueryText = `
vertices 2
edge 0 1 R
`
)

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func createLiveInstance(t *testing.T, url, id string) InstanceInfoResponse {
	t.Helper()
	resp, body := postJSON(t, url+"/instances", CreateInstanceRequest{
		ID:           id,
		InstanceText: liveInstanceText,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create instance: status %d: %s", resp.StatusCode, body)
	}
	var info InstanceInfoResponse
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

func solveLive(t *testing.T, url, id string) (*http.Response, SolveResponse) {
	t.Helper()
	resp, body := postJSON(t, url+"/instances/"+id+"/solve", SolveRequest{QueryText: oneEdgeQueryText})
	var sr SolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("solve response: %v: %s", err, body)
		}
	}
	return resp, sr
}

func TestInstanceLifecycleOverWire(t *testing.T) {
	ts := newTestServer(t)

	info := createLiveInstance(t, ts.URL, "live")
	if info.ID != "live" || info.Version != 1 || info.Vertices != 3 || info.Edges != 2 {
		t.Fatalf("created info = %+v", info)
	}
	if info.ClassCensus["1WP"] != 1 {
		t.Fatalf("class census = %v, want one 1WP component", info.ClassCensus)
	}

	// Solve against version 1.
	resp, sr := solveLive(t, ts.URL, "live")
	if resp.StatusCode != http.StatusOK || sr.Prob != "2/3" {
		t.Fatalf("solve v1: status %d prob %q, want 2/3", resp.StatusCode, sr.Prob)
	}
	if got := resp.Header.Get(InstanceVersionHeader); got != "1" {
		t.Fatalf("%s = %q, want 1", InstanceVersionHeader, got)
	}

	// Probability delta under a matching if_version.
	v := int64(1)
	resp, body := postJSON(t, ts.URL+"/instances/live/delta", DeltaRequest{
		IfVersion: &v,
		Deltas:    []DeltaOp{{Op: "set_prob", Edge: "0>1", Prob: "1/4"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: status %d: %s", resp.StatusCode, body)
	}
	var dr DeltaResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Version != 2 || dr.Structural || dr.Applied != 1 {
		t.Fatalf("delta response = %+v", dr)
	}

	// Pr = 1 − (3/4)(2/3) = 1/2 at version 2.
	resp, sr = solveLive(t, ts.URL, "live")
	if sr.Prob != "1/2" || resp.Header.Get(InstanceVersionHeader) != "2" {
		t.Fatalf("solve v2: prob %q header %q", sr.Prob, resp.Header.Get(InstanceVersionHeader))
	}

	// Structural delta: drop edge 1>2 entirely; Pr = 1/4.
	resp, body = postJSON(t, ts.URL+"/instances/live/delta", DeltaRequest{
		Deltas: []DeltaOp{{Op: "remove_edge", Edge: "1>2"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("structural delta: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Version != 3 || !dr.Structural {
		t.Fatalf("structural delta response = %+v", dr)
	}
	if _, sr = solveLive(t, ts.URL, "live"); sr.Prob != "1/4" {
		t.Fatalf("solve v3: prob %q, want 1/4", sr.Prob)
	}

	// Info reflects the mutations; the list shows the instance.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/instances/live", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("info: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 3 || info.Edges != 1 || info.DeltasApplied != 2 {
		t.Fatalf("info after deltas = %+v", info)
	}
	_, body = doJSON(t, http.MethodGet, ts.URL+"/instances", nil)
	var list InstanceListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Instances) != 1 || list.Instances[0] != "live" {
		t.Fatalf("list = %v", list.Instances)
	}
}

func TestInstanceUnknownIDIs404(t *testing.T) {
	ts := newTestServer(t)
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/instances/ghost"},
		{http.MethodDelete, "/instances/ghost"},
		{http.MethodPost, "/instances/ghost/solve"},
		{http.MethodPost, "/instances/ghost/reweight"},
		{http.MethodPost, "/instances/ghost/batch"},
	} {
		var body any
		switch c.path {
		case "/instances/ghost/solve", "/instances/ghost/reweight":
			body = SolveRequest{QueryText: oneEdgeQueryText}
		case "/instances/ghost/batch":
			body = BatchRequest{Jobs: []SolveRequest{{QueryText: oneEdgeQueryText}}}
		}
		resp, b := doJSON(t, c.method, ts.URL+c.path, body)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d: %s", c.method, c.path, resp.StatusCode, b)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/instances/ghost/delta", DeltaRequest{
		Deltas: []DeltaOp{{Op: "set_prob", Edge: "0>1", Prob: "1/2"}},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delta on ghost: status %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/instances/ghost/truncate", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown op: status %d", resp.StatusCode)
	}
}

func TestInstanceStaleIfVersionIs409(t *testing.T) {
	ts := newTestServer(t)
	createLiveInstance(t, ts.URL, "cas")
	stale := int64(7)
	resp, body := postJSON(t, ts.URL+"/instances/cas/delta", DeltaRequest{
		IfVersion: &stale,
		Deltas:    []DeltaOp{{Op: "set_prob", Edge: "0>1", Prob: "1/4"}},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale if_version: status %d: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "conflict" {
		t.Fatalf("error code = %q, want conflict", er.Code)
	}
	// The failed CAS left the instance untouched.
	if _, sr := solveLive(t, ts.URL, "cas"); sr.Prob != "2/3" {
		t.Fatalf("prob after failed CAS = %q, want 2/3", sr.Prob)
	}
}

func TestInstanceMalformedDeltaIs400(t *testing.T) {
	ts := newTestServer(t)
	createLiveInstance(t, ts.URL, "bad")
	cases := []DeltaRequest{
		{}, // empty batch
		{Deltas: []DeltaOp{{Op: "truncate", Edge: "0>1"}}},                      // unknown op
		{Deltas: []DeltaOp{{Op: "set_prob", Edge: "zero to one", Prob: "1/2"}}}, // bad edge key
		{Deltas: []DeltaOp{{Op: "set_prob", Edge: "0>1"}}},                      // missing prob
		{Deltas: []DeltaOp{{Op: "set_prob", Edge: "0>1", Prob: "3/2"}}},         // out of range
		{Deltas: []DeltaOp{{Op: "remove_edge", Edge: "0>1", Label: "R"}}},       // label on remove
		{Deltas: []DeltaOp{{Op: "remove_edge", Edge: "0>2"}}},                   // no such edge
		{Deltas: []DeltaOp{{Op: "add_edge", Edge: "0>9"}}},                      // endpoint out of range
	}
	for i, req := range cases {
		resp, body := postJSON(t, ts.URL+"/instances/bad/delta", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	neg := int64(-3)
	resp, _ := postJSON(t, ts.URL+"/instances/bad/delta", DeltaRequest{
		IfVersion: &neg,
		Deltas:    []DeltaOp{{Op: "set_prob", Edge: "0>1", Prob: "1/2"}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative if_version: status %d", resp.StatusCode)
	}
	// Instance-scoped solve must not smuggle its own instance.
	resp, _ = postJSON(t, ts.URL+"/instances/bad/solve", SolveRequest{
		QueryText:    oneEdgeQueryText,
		InstanceText: liveInstanceText,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("inline instance on scoped solve: status %d", resp.StatusCode)
	}
	// None of the rejects committed anything.
	var info InstanceInfoResponse
	_, body := doJSON(t, http.MethodGet, ts.URL+"/instances/bad", nil)
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.DeltasApplied != 0 {
		t.Fatalf("rejected deltas mutated the instance: %+v", info)
	}
}

func TestInstanceDeleteThenSolve(t *testing.T) {
	ts := newTestServer(t)
	createLiveInstance(t, ts.URL, "gone")
	if resp, sr := solveLive(t, ts.URL, "gone"); resp.StatusCode != http.StatusOK || sr.Prob != "2/3" {
		t.Fatalf("pre-delete solve failed: %d %q", resp.StatusCode, sr.Prob)
	}
	resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/instances/gone", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if resp, _ := solveLive(t, ts.URL, "gone"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("solve after delete: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/instances/gone", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404", resp.StatusCode)
	}
}

func TestInstanceCreateValidation(t *testing.T) {
	ts := newTestServer(t)
	// No instance payload.
	resp, _ := postJSON(t, ts.URL+"/instances", CreateInstanceRequest{ID: "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing instance: status %d", resp.StatusCode)
	}
	// Unparsable graph.
	resp, _ = postJSON(t, ts.URL+"/instances", CreateInstanceRequest{InstanceText: "vertices banana"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage instance: status %d", resp.StatusCode)
	}
	// Duplicate id.
	createLiveInstance(t, ts.URL, "dup")
	resp, _ = postJSON(t, ts.URL+"/instances", CreateInstanceRequest{ID: "dup", InstanceText: liveInstanceText})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate id: status %d", resp.StatusCode)
	}
	// Server-minted id comes back non-empty and distinct.
	resp, body := postJSON(t, ts.URL+"/instances", CreateInstanceRequest{InstanceText: liveInstanceText})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("minted create: status %d: %s", resp.StatusCode, body)
	}
	var info InstanceInfoResponse
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.ID == "dup" {
		t.Fatalf("minted id = %q", info.ID)
	}
}

func TestInstanceReweightAndBatch(t *testing.T) {
	ts := newTestServer(t)
	createLiveInstance(t, ts.URL, "rw")

	// Reweight overrides ride on top of the live snapshot without
	// mutating it: forcing edge 0>1 certain gives Pr = 1.
	resp, body := postJSON(t, ts.URL+"/instances/rw/reweight", ReweightRequest{
		SolveRequest: SolveRequest{QueryText: oneEdgeQueryText},
		Probs:        map[string]string{"0>1": "1"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reweight: status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Prob != "1" {
		t.Fatalf("reweighted prob = %q, want 1", sr.Prob)
	}
	if _, base := solveLive(t, ts.URL, "rw"); base.Prob != "2/3" {
		t.Fatalf("reweight mutated the live instance: %q", base.Prob)
	}

	// Batch: two jobs against the same snapshot.
	resp, body = postJSON(t, ts.URL+"/instances/rw/batch", BatchRequest{
		Jobs: []SolveRequest{
			{QueryText: oneEdgeQueryText},
			{QueryText: oneEdgeQueryText},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("batch results = %d, want 2", len(br.Results))
	}
	for i, r := range br.Results {
		if r.Prob != "2/3" {
			t.Fatalf("batch job %d: prob %q, want 2/3", i, r.Prob)
		}
	}
	// A batch job smuggling its own instance is rejected per-job.
	resp, body = postJSON(t, ts.URL+"/instances/rw/batch", BatchRequest{
		Jobs: []SolveRequest{{QueryText: oneEdgeQueryText, InstanceText: liveInstanceText}},
	})
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("batch with inline instance: %v: %s", err, body)
	}
	if len(br.Results) != 1 || br.Results[0].Error == "" {
		t.Fatalf("inline-instance batch job should fail per-job: %s", body)
	}
}
