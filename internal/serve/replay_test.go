package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"time"

	"phom/internal/gen"
	"phom/internal/replay"
)

// TestReplayMixedWorkload drives the phomgen load-replay engine against
// a real phomserve handler over every traffic kind and asserts the two
// accounting halves agree: every response status is inside the typed
// taxonomy, every streamed NDJSON batch line is accounted for, and the
// server's own per-status counters sum to the number of requests the
// replay fired.
func TestReplayMixedWorkload(t *testing.T) {
	ts := newTestServer(t)
	rep, err := replay.Run(context.Background(), replay.Options{
		BaseURL:     ts.URL,
		Requests:    60,
		Concurrency: 4,
		Seed:        7,
		Mix:         replay.Mix{Solve: 4, Reweight: 8, ReweightBatch: 3, Batch: 2, Stream: 2, Bad: 1, Hard: 1},
		Family:      gen.FamBA,
		N:           40,
		BatchSize:   5,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 60 {
		t.Fatalf("fired %d requests, want 60", rep.Requests)
	}
	if rep.Unaccounted() != 0 {
		t.Fatalf("%d unaccounted responses (off-taxonomy %d, body errors %d): %v",
			rep.Unaccounted(), rep.OffTaxonomy, rep.BodyErrors, rep.Failures)
	}
	for status, n := range rep.ByStatus {
		if !replay.TaxonomyStatuses[status] {
			t.Errorf("status %d (%d responses) outside the typed taxonomy", status, n)
		}
	}
	// The seeded mix must actually exercise the error taxonomy, not
	// just the happy path: malformed requests draw 400, fallback-less
	// hard-cell requests draw 422.
	if rep.ByStatus[http.StatusOK] == 0 {
		t.Error("no successful responses")
	}
	if rep.ByKind["bad"] > 0 && rep.ByStatus[http.StatusBadRequest] == 0 {
		t.Error("bad requests fired but no 400 observed")
	}
	if rep.ByKind["hard"] > 0 && rep.ByStatus[http.StatusUnprocessableEntity] == 0 {
		t.Error("hard requests fired but no 422 observed")
	}
	// Streamed NDJSON accounting: one line per submitted job, one done
	// trailer per stream.
	if rep.ByKind["stream"] > 0 {
		if rep.StreamJobs == 0 || rep.StreamLines != rep.StreamJobs {
			t.Errorf("stream lines %d != stream jobs %d", rep.StreamLines, rep.StreamJobs)
		}
		if rep.StreamTrailers != rep.ByKind["stream"] {
			t.Errorf("%d trailers for %d stream requests", rep.StreamTrailers, rep.ByKind["stream"])
		}
	}

	// Server-side accounting must agree with the client's.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	var served uint64
	for _, n := range health.HTTP {
		served += n
	}
	if served != uint64(rep.Requests) {
		t.Errorf("server served %d responses, replay fired %d", served, rep.Requests)
	}
}

// TestRequestIDEcho: the instrumentation middleware must echo the
// client's request id on every path, including errors and streams.
func TestRequestIDEcho(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/solve", "/batch?stream=1", "/healthz"} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(RequestIDHeader, "req-42")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(RequestIDHeader); got != "req-42" {
			t.Errorf("%s: request id echo %q, want %q", path, got, "req-42")
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := replay.ParseMix("solve:3,stream:1")
	if err != nil || m.Solve != 3 || m.Stream != 1 || m.Reweight != 0 {
		t.Fatalf("ParseMix: %+v, %v", m, err)
	}
	m, err = replay.ParseMix("reweight_batch:5,solve:1")
	if err != nil || m.ReweightBatch != 5 || m.Solve != 1 {
		t.Fatalf("ParseMix reweight_batch: %+v, %v", m, err)
	}
	if m, err := replay.ParseMix(""); err != nil || m != replay.DefaultMix {
		t.Fatalf("empty mix: %+v, %v", m, err)
	}
	if m, err := replay.ParseMix("default"); err != nil || m != replay.DefaultMix {
		t.Fatalf("default preset: %+v, %v", m, err)
	}
	m, err = replay.ParseMix("reweight-heavy")
	if err != nil || m != replay.ReweightHeavyMix || m.ReweightBatch == 0 {
		t.Fatalf("reweight-heavy preset: %+v, %v", m, err)
	}
	for _, bad := range []string{"solve", "solve:x", "warp:1", "solve:0"} {
		if _, err := replay.ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestReplayReweightHeavy: the reweight-heavy preset fires multi-vector
// reweights that come back as full per-vector result arrays, and the
// server routes their lanes through the engine's batched kernel.
func TestReplayReweightHeavy(t *testing.T) {
	ts := newTestServer(t)
	rep, err := replay.Run(context.Background(), replay.Options{
		BaseURL:     ts.URL,
		Requests:    16,
		Concurrency: 4,
		Seed:        9,
		Mix:         replay.ReweightHeavyMix,
		Family:      gen.FamBA,
		N:           32,
		BatchSize:   4,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unaccounted() != 0 {
		t.Fatalf("%d unaccounted responses (off-taxonomy %d, body errors %d): %v",
			rep.Unaccounted(), rep.OffTaxonomy, rep.BodyErrors, rep.Failures)
	}
	if rep.ByKind["reweight_batch"] == 0 {
		t.Fatal("reweight-heavy mix fired no reweight_batch requests")
	}

	// The lanes must have gone through the batched kernel, not the
	// per-job path: the server's engine stats are exposed on /healthz.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Stats.BatchRuns == 0 || health.Stats.BatchLanes == 0 {
		t.Errorf("batch_runs=%d batch_lanes=%d after reweight-heavy replay: lanes did not batch",
			health.Stats.BatchRuns, health.Stats.BatchLanes)
	}
}

// TestReplayDeltaMix: the delta preset creates live instances up
// front, then interleaves delta batches (200), deliberately stale CAS
// batches (409), and instance-scoped solves/reweights — with every
// status accounted inside the taxonomy and the engine's delta counter
// moving.
func TestReplayDeltaMix(t *testing.T) {
	ts := newTestServer(t)
	rep, err := replay.Run(context.Background(), replay.Options{
		BaseURL:     ts.URL,
		Requests:    48,
		Concurrency: 4,
		Seed:        13,
		Mix:         replay.DeltaMix,
		Family:      gen.FamBA,
		N:           24,
		JobTimeout:  500 * time.Millisecond,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unaccounted() != 0 {
		t.Fatalf("%d unaccounted responses (off-taxonomy %d, body errors %d): %v",
			rep.Unaccounted(), rep.OffTaxonomy, rep.BodyErrors, rep.Failures)
	}
	if rep.ByKind["delta"] == 0 {
		t.Fatal("delta mix fired no delta requests")
	}
	// The seeded mix must hit both halves of the CAS contract.
	if rep.ByStatus[http.StatusOK] == 0 {
		t.Error("no successful responses")
	}
	if rep.ByStatus[http.StatusConflict] == 0 {
		t.Error("no 409 observed: the stale-CAS sub-kind never fired or was misaccounted")
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Stats.Instances == 0 || health.Stats.DeltasApplied == 0 {
		t.Errorf("instances=%d deltas_applied=%d after delta replay",
			health.Stats.Instances, health.Stats.DeltasApplied)
	}
}

func TestParseMixDelta(t *testing.T) {
	m, err := replay.ParseMix("delta:6,solve:1")
	if err != nil || m.Delta != 6 || m.Solve != 1 {
		t.Fatalf("ParseMix delta: %+v, %v", m, err)
	}
	if m, err := replay.ParseMix("delta"); err != nil || m != replay.DeltaMix || m.Delta == 0 {
		t.Fatalf("delta preset: %+v, %v", m, err)
	}
}
