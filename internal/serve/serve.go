// Package serve implements the phomserve HTTP layer: the JSON wire
// protocol (/solve, /reweight, /batch with NDJSON streaming,
// /plans/export, /plans/import, /healthz) routed onto a shared
// engine.Engine. It is a library rather than part of cmd/phomserve so
// the gateway tier (internal/gateway), the in-process test harnesses
// and phombench's multi-replica experiments can boot backend replicas
// without spawning processes; cmd/phomserve is a thin flag-parsing
// main over serve.New. The exported wire types (SolveRequest,
// SolveResponse, StreamLine, …) are the single definition of the
// protocol — the gateway decodes and re-encodes backend NDJSON through
// them, which is what keeps gate-merged stream lines byte-compatible
// with single-backend ones.
package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"phom/internal/core"
	"phom/internal/engine"
	"phom/internal/graph"
	"phom/internal/graphio"
	"phom/internal/phomerr"
)

// Request limits: a single request must not be able to exhaust the
// server's memory or pin a worker on unbounded exponential work.
const (
	// DefaultMaxBodyBytes is the default request-body cap (-maxbody);
	// bodies beyond the cap are refused with 413.
	DefaultMaxBodyBytes = 8 << 20 // 8 MiB per request
	// MaxBatchJobs caps the jobs of one /batch request (and the vectors
	// of one probs_batch). Exported so the gateway refuses oversized
	// batches the same way a single backend would instead of sharding
	// them into individually legal sub-batches.
	MaxBatchJobs       = 4096
	maxBruteForceLimit = 26      // client-requested coins cap (2^26 worlds)
	maxMatchLimit      = 1 << 20 // client-requested match-enumeration cap
)

// Wire types. Graphs are accepted in both formats understood by the
// repo's tooling: the graphio JSON object ({"vertices": n, "edges":
// [...]}) and the line-oriented text format that cmd/phom reads
// ("vertices 4\nedge 0 1 R 1/2\n..."), the latter in the *_text fields.

type SolveOptions struct {
	BruteForceLimit int  `json:"brute_force_limit,omitempty"`
	MatchLimit      int  `json:"match_limit,omitempty"`
	DisableFallback bool `json:"disable_fallback,omitempty"`
	// TimeoutMS is this job's execution budget in milliseconds: once it
	// elapses the job fails with the deadline error code (HTTP 408 on
	// /solve and /reweight; error code "deadline" in batch results).
	// 0 means no per-job timeout — the job is still bounded by the
	// connection's lifetime and the server's shutdown.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Precision selects the numeric substrate: "exact" (default),
	// "fast" (float64 with a certified error bound), "auto" (float64
	// when the bound is within float_tolerance, exact otherwise) or
	// "approx" (the seeded Karp–Luby (ε,δ) estimator on #P-hard cells,
	// exact on tractable ones). Anything else is a 400, never a silent
	// default. Accepted on /solve, /reweight and /batch alike.
	Precision string `json:"precision,omitempty"`
	// FloatTolerance is the widest certified error the auto mode serves
	// without falling back to exact arithmetic (absolute probability
	// error; 0 means the server default).
	FloatTolerance float64 `json:"float_tolerance,omitempty"`
	// Epsilon and Delta are the approx-mode guarantee — relative error
	// epsilon with failure probability delta, each in (0,1); 0 means the
	// solver default (0.05 / 0.01). Seed makes the estimate reproducible:
	// equal requests with equal seeds answer byte-identically. All three
	// are rejected with a 400 unless precision is "approx" — they would
	// otherwise be silently dead.
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

type SolveRequest struct {
	Query        json.RawMessage   `json:"query,omitempty"`
	Queries      []json.RawMessage `json:"queries,omitempty"`
	QueryText    string            `json:"query_text,omitempty"`
	QueriesText  []string          `json:"queries_text,omitempty"`
	Instance     json.RawMessage   `json:"instance,omitempty"`
	InstanceText string            `json:"instance_text,omitempty"`
	Options      *SolveOptions     `json:"options,omitempty"`
}

type VerdictResponse struct {
	QueryClass    string `json:"query_class"`
	InstanceClass string `json:"instance_class"`
	Labeled       bool   `json:"labeled"`
	Tractable     bool   `json:"tractable"`
	Verdict       string `json:"verdict"`
}

type SolveResponse struct {
	Prob      string  `json:"prob,omitempty"`
	ProbFloat float64 `json:"prob_float,omitempty"`
	// Code is the typed error code accompanying Error ("bad-input",
	// "limit", "intractable", "canceled", "deadline", "unavailable",
	// "unknown"); empty on success. It is the machine-readable form —
	// clients should dispatch on it, not on the error text.
	Code string `json:"code,omitempty"`
	// Precision is the substrate that produced the answer: "exact",
	// "fast" or "approx". A job requesting fast/auto can legitimately
	// report "exact" — that is the fallback contract, and the answer is
	// then byte-identical to an exact-precision solve; an approx job
	// reports "exact" when it landed on a tractable cell (no sampling).
	Precision string `json:"precision,omitempty"`
	// ProbLo/ProbHi bound the exact probability. Under precision "fast"
	// they are the certified enclosure of the float kernel — exact ∈
	// [prob_lo, prob_hi] is machine-checked. Under precision "approx"
	// they are the (1−δ) Hoeffding confidence interval of the sampler —
	// statistical, not certified. Pointers, not bare floats: a bound
	// that is exactly 0 must still serialize (omitempty would drop it),
	// so both fields are present exactly when precision is "fast" or
	// "approx".
	ProbLo *float64 `json:"prob_lo,omitempty"`
	ProbHi *float64 `json:"prob_hi,omitempty"`
	// ApproxSamples is the number of Monte-Carlo samples the approx
	// mode drew; present only when precision is "approx" (and 0 even
	// then if the lineage short-circuited exactly).
	ApproxSamples int64            `json:"approx_samples,omitempty"`
	Method        string           `json:"method,omitempty"`
	PTime         bool             `json:"ptime,omitempty"`
	CacheHit      bool             `json:"cache_hit,omitempty"`
	Shared        bool             `json:"shared,omitempty"`
	PlanHit       bool             `json:"plan_hit,omitempty"`
	Predicted     *VerdictResponse `json:"predicted,omitempty"`
	ElapsedUS     int64            `json:"elapsed_us"`
	Error         string           `json:"error,omitempty"`
}

// ReweightRequest is a solve request plus a probability remap: the
// /reweight endpoint solves the job with the given edge probabilities
// substituted into the instance. Structure-identical jobs share a
// compiled plan in the engine, so a reweight of a previously seen
// structure pays only linear evaluation (plan_hit in the response).
type ReweightRequest struct {
	SolveRequest
	// Probs overrides edge probabilities: keys are "from>to" endpoint
	// pairs, values exact rationals in [0, 1] ("1/2", "0.35").
	Probs map[string]string `json:"probs,omitempty"`
	// ProbsBatch is the multi-vector form: each element is a Probs-style
	// override map, and the response is a BatchResponse with one result
	// per vector (same order). All vectors share the request's query and
	// instance structure, which is exactly the shape the engine's
	// vectorized reweight path batches into one kernel dispatch.
	// Mutually exclusive with Probs.
	ProbsBatch []map[string]string `json:"probs_batch,omitempty"`
}

type BatchRequest struct {
	Jobs []SolveRequest `json:"jobs"`
}

type BatchResponse struct {
	Results []SolveResponse `json:"results"`
	Stats   engine.Stats    `json:"stats"`
	// ElapsedUS is the wall-clock time of the whole batch; each
	// result's elapsed_us is that job's own latency.
	ElapsedUS int64 `json:"elapsed_us"`
}

type HealthResponse struct {
	Status  string       `json:"status"`
	Workers int          `json:"workers"`
	Stats   engine.Stats `json:"stats"`
	// Shard is the replica's shard name (-shard), echoed so a gateway
	// operator can tell which member of the tier answered a probe.
	Shard string `json:"shard,omitempty"`
	// UptimeMS is the monotonic time since this process created its
	// server, in milliseconds. The gateway watches it across probes: an
	// uptime regression means the replica restarted (losing its plan
	// cache) even if no probe ever failed, and triggers a warm-start
	// snapshot push.
	UptimeMS int64 `json:"uptime_ms"`
	// HTTP counts every response served since startup, keyed by status
	// code — the server-side half of phomgen's replay accounting (a
	// replay is clean when the two sides agree).
	HTTP map[string]uint64 `json:"http,omitempty"`
}

type ErrorResponse struct {
	Error string `json:"error"`
	// Code is the typed error code (see SolveResponse.Code).
	Code string `json:"code,omitempty"`
}

// StatusClientClosedRequest is the non-standard (nginx-convention)
// status reported when the client's request context is cancelled —
// there is no standard code for "caller gave up", and 499 is the
// widely understood one.
const StatusClientClosedRequest = 499

// StatusOf maps the typed error taxonomy onto HTTP statuses:
// bad-input → 400, deadline → 408, conflict → 409 (a stale if_version
// optimistic check on an instance delta), limit and intractable → 422
// (the request is well-formed but cannot be answered under its
// constraints), canceled → 499, unavailable → 503, and anything
// unknown → 422 (the historical catch-all for solver failures).
func StatusOf(err error) int {
	switch phomerr.CodeOf(err) {
	case phomerr.CodeBadInput:
		return http.StatusBadRequest
	case phomerr.CodeDeadline:
		return http.StatusRequestTimeout
	case phomerr.CodeConflict:
		return http.StatusConflict
	case phomerr.CodeCanceled:
		return StatusClientClosedRequest
	case phomerr.CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// Server routes HTTP requests onto a shared engine.
type Server struct {
	engine  *engine.Engine
	maxBody int64 // request-body cap in bytes; ≤0 means DefaultMaxBodyBytes
	// defPrec and defTol are the precision mode and auto tolerance
	// applied to jobs that do not specify their own (-precision,
	// -floattol); an explicit "precision" in the request always wins.
	defPrec core.Precision
	defTol  float64
	// shard names this replica in a sharded tier (-shard); surfaced
	// through /healthz so probes can tell replicas apart.
	shard string
	// start anchors the /healthz uptime_ms monotonic clock.
	start time.Time
	// httpByStatus counts served responses per status code, under
	// httpMu; surfaced through /healthz for replay accounting.
	httpMu       sync.Mutex
	httpByStatus map[int]uint64
}

func New(e *engine.Engine) *Server {
	return &Server{engine: e, start: time.Now(), httpByStatus: map[int]uint64{}}
}

// WithMaxBody sets the request-body cap (the -maxbody flag).
func (s *Server) WithMaxBody(n int64) *Server {
	s.maxBody = n
	return s
}

// WithPrecision sets the default precision mode and auto tolerance
// (the -precision and -floattol flags).
func (s *Server) WithPrecision(p core.Precision, tol float64) *Server {
	s.defPrec = p
	s.defTol = tol
	return s
}

// WithShard names this replica in a sharded tier (the -shard flag);
// the name is reported by /healthz.
func (s *Server) WithShard(name string) *Server {
	s.shard = name
	return s
}

func (s *Server) bodyLimit() int64 {
	if s.maxBody > 0 {
		return s.maxBody
	}
	return DefaultMaxBodyBytes
}

// decodeBody decodes a JSON request body bounded by the server's body
// cap, reporting (writing the response itself) and returning false on
// failure. Oversized bodies are a 413, not a generic 400: the request
// may be well-formed, the server just refuses to read that much.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit())).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		WriteError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		return false
	}
	WriteError(w, http.StatusBadRequest, "bad request body: "+err.Error())
	return false
}

func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/reweight", s.handleReweight)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/instances", s.handleInstances)
	mux.HandleFunc("/instances/", s.handleInstanceScoped)
	mux.HandleFunc("/plans/export", s.handlePlansExport)
	mux.HandleFunc("/plans/import", s.handlePlansImport)
	mux.HandleFunc("/healthz", s.handleHealth)
	return s.instrument(mux)
}

// RequestIDHeader carries the request id: echoed verbatim from request
// to response when the client sets it (so a load generator can pair
// every response with the request that caused it without trusting
// ordering), minted by the server when absent. A gateway propagates
// the ingress id to the backend hop, so one id traces a request across
// the whole tier.
const RequestIDHeader = "X-Phom-Request-Id"

// idPrefix and idCounter mint process-unique request ids for requests
// that arrive without one: a random boot prefix plus a monotonic
// counter, cheap and collision-free across replicas.
var (
	idPrefix  = func() string { var b [4]byte; _, _ = rand.Read(b[:]); return hex.EncodeToString(b[:]) }()
	idCounter atomic.Uint64
)

// MintRequestID returns a fresh process-unique request id.
func MintRequestID() string {
	return idPrefix + "-" + strconv.FormatUint(idCounter.Add(1), 10)
}

// EnsureRequestID returns the request's id, minting one (and storing it
// back into the request headers, so downstream handlers and proxied
// hops see it) when the client did not send one.
func EnsureRequestID(r *http.Request) string {
	id := r.Header.Get(RequestIDHeader)
	if id == "" {
		id = MintRequestID()
		r.Header.Set(RequestIDHeader, id)
	}
	return id
}

// instrument wraps the mux with the replay-target plumbing: the
// request-id mint/echo and the per-status response counters surfaced
// by /healthz.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(RequestIDHeader, EnsureRequestID(r))
		sw := &StatusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		s.httpMu.Lock()
		s.httpByStatus[sw.Status()]++
		s.httpMu.Unlock()
	})
}

// StatusWriter records the response status. It must keep forwarding
// Flush: the streamed batch path type-asserts http.Flusher on the
// writer it is handed, and NDJSON streaming dies silently without it.
type StatusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *StatusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *StatusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *StatusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Status returns the recorded status (200 if the handler never wrote).
func (sw *StatusWriter) Status() int {
	if sw.status == 0 {
		return http.StatusOK
	}
	return sw.status
}

// httpCounts snapshots the per-status counters for /healthz.
func (s *Server) httpCounts() map[string]uint64 {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	out := make(map[string]uint64, len(s.httpByStatus))
	for code, n := range s.httpByStatus {
		out[strconv.Itoa(code)] = n
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	WriteJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Workers:  s.engine.Workers(),
		Stats:    s.engine.Stats(),
		Shard:    s.shard,
		UptimeMS: time.Since(s.start).Milliseconds(),
		HTTP:     s.httpCounts(),
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	job, err := req.toJob(s.defPrec, s.defTol)
	if err != nil {
		WriteTypedError(w, phomerr.Wrap(phomerr.CodeBadInput, err))
		return
	}
	resp, jerr := s.runJob(r.Context(), job)
	if jerr != nil {
		WriteJSON(w, StatusOf(jerr), resp)
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

// handleReweight solves a job with updated edge probabilities: the wire
// job plus a {"from>to": "p"} probability map applied on top of the
// instance. It exists for the dominant serving pattern — re-evaluating
// a known query/instance topology under new weights — which the
// engine's structure-keyed plan cache answers without recompiling
// (plan_hit reports whether that happened).
func (s *Server) handleReweight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ReweightRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	job, err := req.SolveRequest.toJob(s.defPrec, s.defTol)
	if err != nil {
		WriteTypedError(w, phomerr.Wrap(phomerr.CodeBadInput, err))
		return
	}
	if len(req.Probs) > 0 && len(req.ProbsBatch) > 0 {
		WriteError(w, http.StatusBadRequest, "provide probs or probs_batch, not both")
		return
	}
	if req.ProbsBatch != nil {
		s.reweightBatch(w, r, job, req.ProbsBatch)
		return
	}
	if len(req.Probs) > 0 {
		inst, err := applyProbs(job.Instance, req.Probs)
		if err != nil {
			WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		job.Instance = inst
	}
	resp, jerr := s.runJob(r.Context(), job)
	if jerr != nil {
		WriteJSON(w, StatusOf(jerr), resp)
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

// applyProbs returns an instance with the {"from>to": "p"} override map
// applied on top of base. The copy shares base's graph value
// (graph.ProbGraph.CloneProbs), so the instances built for the lanes of
// one multi-vector reweight are recognized as one structure by the
// engine's batch grouping.
func applyProbs(base *graph.ProbGraph, probs map[string]string) (*graph.ProbGraph, error) {
	inst := base.CloneProbs()
	// Distinct JSON keys can normalize to the same edge ("0>1" vs
	// " 0>1"); map iteration order must never decide which wins.
	seen := make(map[[2]int]bool, len(probs))
	for key, val := range probs {
		from, to, ok := graphio.ParseEdgeKey(key)
		if !ok {
			return nil, fmt.Errorf("bad probs key %q: want \"from>to\"", key)
		}
		if seen[[2]int{from, to}] {
			return nil, fmt.Errorf("duplicate probs entry for edge %d>%d", from, to)
		}
		seen[[2]int{from, to}] = true
		p, err := graphio.ParseRat(val)
		if err != nil {
			return nil, fmt.Errorf("bad probability for edge %q: %v", key, err)
		}
		if err := inst.SetEdgeProb(graph.Vertex(from), graph.Vertex(to), p); err != nil {
			return nil, fmt.Errorf("probs[%q]: %v", key, err)
		}
	}
	return inst, nil
}

// reweightBatch serves the multi-vector form of /reweight: one job per
// probability vector, all sharing the request's query and instance
// structure. Malformed vectors are a 400 before anything executes;
// per-vector solver failures surface inside the corresponding result,
// exactly like /batch. The lanes are submitted in one Engine.Stream
// call so the engine's same-structure grouping routes them through the
// vectorized kernel (stats.batch_runs/batch_lanes in the response show
// it happened).
func (s *Server) reweightBatch(w http.ResponseWriter, r *http.Request, job engine.Job, vecs []map[string]string) {
	if len(vecs) == 0 {
		WriteError(w, http.StatusBadRequest, "probs_batch is empty")
		return
	}
	if len(vecs) > MaxBatchJobs {
		WriteError(w, http.StatusBadRequest, fmt.Sprintf("probs_batch has %d vectors, limit is %d", len(vecs), MaxBatchJobs))
		return
	}
	jobs := make([]engine.Job, len(vecs))
	for k, pm := range vecs {
		inst, err := applyProbs(job.Instance, pm)
		if err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Sprintf("probs_batch[%d]: %v", k, err))
			return
		}
		lane := job
		lane.Instance = inst
		jobs[k] = lane
	}
	start := time.Now()
	results := make([]SolveResponse, len(jobs))
	for sr := range s.engine.Stream(r.Context(), jobs) {
		// elapsed_us is completion-order latency (batch start to this
		// lane's delivery), matching the streamed /batch convention.
		results[sr.Index] = buildResponse(jobs[sr.Index], sr.JobResult, time.Since(start))
	}
	WriteJSON(w, http.StatusOK, BatchResponse{
		Results:   results,
		Stats:     s.engine.Stats(),
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

// handlePlansExport streams a snapshot of the engine's compiled-plan
// cache in the canonical binary format — the export half of
// warm-start serving: ship the snapshot to a fresh replica (or keep it
// across restarts) and structurally known jobs never recompile. The
// snapshot is buffered before the first response byte so failures
// still get a proper status.
func (s *Server) handlePlansExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var buf bytes.Buffer
	n, err := s.engine.SavePlans(&buf)
	if err != nil {
		WriteError(w, http.StatusInternalServerError, "plan export: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Phom-Plans", strconv.Itoa(n))
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

type plansImportResponse struct {
	Loaded       int `json:"loaded"`
	PlanCacheLen int `json:"plan_cache_len"`
}

// handlePlansImport restores a snapshot produced by /plans/export into
// the engine's plan cache. Records are fully validated; a corrupt
// snapshot is rejected without panicking, and records decoded before
// the corruption point stay loaded (the response reports how many).
func (s *Server) handlePlansImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	n, err := s.engine.LoadPlans(http.MaxBytesReader(w, r.Body, s.bodyLimit()))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			WriteError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("snapshot exceeds %d bytes", tooBig.Limit))
			return
		}
		WriteError(w, http.StatusBadRequest, "plan import: "+err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, plansImportResponse{
		Loaded:       n,
		PlanCacheLen: s.engine.Stats().PlanCacheLen,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.serveBatch(w, r, req, func(jr SolveRequest) (engine.Job, error) {
		return jr.toJob(s.defPrec, s.defTol)
	})
}

// serveBatch runs a parsed batch request with toJob resolving each wire
// job. The indirection is what lets /instances/{id}/batch reuse the
// whole batch machinery (validation, streaming, per-job accounting)
// with jobs bound to a live instance snapshot instead of an inline
// instance field.
func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request, req BatchRequest, toJob func(SolveRequest) (engine.Job, error)) {
	if len(req.Jobs) == 0 {
		WriteError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	if len(req.Jobs) > MaxBatchJobs {
		WriteError(w, http.StatusBadRequest, fmt.Sprintf("batch has %d jobs, limit is %d", len(req.Jobs), MaxBatchJobs))
		return
	}
	if streamRequested(r) {
		s.streamBatch(w, r, req, toJob)
		return
	}
	// Parse every job first; parse failures surface per job, and only
	// well-formed jobs reach the engine. Each job is timed individually
	// (runJob), so elapsed_us is that job's latency, not the batch's;
	// the engine's worker pool bounds the actual compute concurrency.
	results := make([]SolveResponse, len(req.Jobs))
	start := time.Now()
	var wg sync.WaitGroup
	for i, jr := range req.Jobs {
		job, err := toJob(jr)
		if err != nil {
			results[i] = parseFailure(err)
			continue
		}
		wg.Add(1)
		go func(i int, job engine.Job) {
			defer wg.Done()
			results[i], _ = s.runJob(r.Context(), job)
		}(i, job)
	}
	wg.Wait()
	WriteJSON(w, http.StatusOK, BatchResponse{
		Results:   results,
		Stats:     s.engine.Stats(),
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

// streamRequested reports whether a /batch request opted into NDJSON
// streaming (?stream=1 or ?stream=true).
func streamRequested(r *http.Request) bool {
	v := r.URL.Query().Get("stream")
	return v == "1" || v == "true"
}

// StreamLine is one NDJSON line of /batch?stream=1: the response of
// the batch job at Index, emitted when that job completes. elapsed_us
// on a streamed line is the time from the start of the batch to this
// job's delivery (completion-order latency), not the job's solo cost.
type StreamLine struct {
	Index int `json:"index"`
	SolveResponse
	// RequestID is the request's traced id (minted or client-provided,
	// propagated across gateway hops), echoed on every line so a
	// stream merged by the gateway from several backends still
	// attributes each line to the ingress request that caused it.
	RequestID string `json:"request_id,omitempty"`
}

// StreamTrailer is the final NDJSON line of a streamed batch: a
// summary marker carrying the engine counters and the batch wall-clock
// time, so clients know the stream ended deliberately rather than by a
// dropped connection.
type StreamTrailer struct {
	Done      bool         `json:"done"`
	Jobs      int          `json:"jobs"`
	Stats     engine.Stats `json:"stats"`
	ElapsedUS int64        `json:"elapsed_us"`
}

// streamBatch serves /batch?stream=1: results are written as NDJSON in
// completion order — one line per job, fast jobs first, each tagged
// with its input index — followed by a trailer line. Backed by
// Engine.Stream, so a huge batch starts answering after its first job
// and the server never buffers the full result slice; cancelling the
// request (client disconnect) aborts the remaining jobs at their next
// cooperative checkpoint.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, req BatchRequest, toJob func(SolveRequest) (engine.Job, error)) {
	start := time.Now()
	reqID := r.Header.Get(RequestIDHeader) // set by instrument when absent
	// Parse first: malformed jobs yield immediate error lines and never
	// reach the engine; idx maps engine-stream positions back to the
	// caller's job numbering.
	jobs := make([]engine.Job, 0, len(req.Jobs))
	idx := make([]int, 0, len(req.Jobs))
	parseFailures := make([]StreamLine, 0)
	for i, jr := range req.Jobs {
		job, err := toJob(jr)
		if err != nil {
			parseFailures = append(parseFailures, StreamLine{Index: i, SolveResponse: parseFailure(err), RequestID: reqID})
			continue
		}
		jobs = append(jobs, job)
		idx = append(idx, i)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(v any) {
		_ = enc.Encode(v) // Encode appends the newline NDJSON needs
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, line := range parseFailures {
		emit(line)
	}
	for sr := range s.engine.Stream(r.Context(), jobs) {
		resp := buildResponse(jobs[sr.Index], sr.JobResult, time.Since(start))
		emit(StreamLine{Index: idx[sr.Index], SolveResponse: resp, RequestID: reqID})
	}
	emit(StreamTrailer{
		Done:      true,
		Jobs:      len(req.Jobs),
		Stats:     s.engine.Stats(),
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

// parseFailure is the per-job response for a request that failed to
// parse (never submitted to the engine).
func parseFailure(err error) SolveResponse {
	terr := phomerr.Wrap(phomerr.CodeBadInput, err)
	return SolveResponse{Error: terr.Error(), Code: phomerr.CodeOf(terr).String()}
}

func (s *Server) runJob(ctx context.Context, job engine.Job) (SolveResponse, error) {
	start := time.Now()
	jr := s.engine.DoContext(ctx, job)
	return buildResponse(job, jr, time.Since(start)), jr.Err
}

func buildResponse(job engine.Job, jr engine.JobResult, elapsed time.Duration) SolveResponse {
	resp := SolveResponse{ElapsedUS: elapsed.Microseconds(), CacheHit: jr.CacheHit, Shared: jr.Shared, PlanHit: jr.PlanHit}
	if jr.Err != nil {
		resp.Error = jr.Err.Error()
		resp.Code = phomerr.CodeOf(jr.Err).String()
		return resp
	}
	resp.Prob = jr.Result.Prob.RatString()
	resp.ProbFloat, _ = jr.Result.Prob.Float64()
	resp.Precision = jr.Result.Precision.String()
	if jr.Result.Bounds != nil {
		lo, hi := jr.Result.Bounds.Lo, jr.Result.Bounds.Hi
		resp.ProbLo, resp.ProbHi = &lo, &hi
	}
	resp.ApproxSamples = jr.Result.ApproxSamples
	resp.Method = jr.Result.Method.String()
	resp.PTime = jr.Result.Method.PTime()
	// The Tables 1–3 verdict is defined per conjunctive query; report it
	// for single-query jobs only.
	if job.Query != nil {
		qc, ic, labeled, v := core.PredictInput(job.Query, job.Instance)
		resp.Predicted = &VerdictResponse{
			QueryClass:    qc.String(),
			InstanceClass: ic.String(),
			Labeled:       labeled,
			Tractable:     v.Tractable,
			Verdict:       v.String(),
		}
	}
	return resp
}

// toJob parses the wire request into an engine job. defPrec and defTol
// are the server's default precision mode and auto tolerance, applied
// when the request does not choose its own.
func (r *SolveRequest) toJob(defPrec core.Precision, defTol float64) (engine.Job, error) {
	job, err := r.jobSkeleton(defPrec, defTol)
	if err != nil {
		return job, err
	}
	switch {
	case r.Instance != nil && r.InstanceText != "":
		return job, fmt.Errorf("provide instance or instance_text, not both")
	case r.Instance != nil:
		job.Instance, err = graphio.UnmarshalProbGraphJSON(r.Instance)
	case r.InstanceText != "":
		job.Instance, err = graphio.ParseProbGraph(strings.NewReader(r.InstanceText))
	default:
		return job, fmt.Errorf("no instance: provide instance or instance_text")
	}
	if err != nil {
		return job, fmt.Errorf("bad instance: %v", err)
	}
	return job, nil
}

// jobSkeleton parses everything of the wire request except the instance
// — queries, options, timeout — leaving job.Instance nil. It is the
// shared front half of toJob and of the instance-scoped endpoints,
// whose instance is the live registered one rather than a request
// field.
func (r *SolveRequest) jobSkeleton(defPrec core.Precision, defTol float64) (engine.Job, error) {
	var job engine.Job

	queries, err := r.parseQueries()
	if err != nil {
		return job, err
	}
	switch len(queries) {
	case 0:
		return job, fmt.Errorf("no query: provide query, queries, query_text or queries_text")
	case 1:
		job.Query = queries[0]
	default:
		job.Queries = queries
	}

	if r.Options != nil {
		// Negative limits would mean "unbounded" to the solver; reject
		// them along with values above the server-side caps so one
		// request cannot pin a worker on days of exponential work.
		if r.Options.BruteForceLimit < 0 || r.Options.BruteForceLimit > maxBruteForceLimit {
			return job, fmt.Errorf("brute_force_limit %d outside [0, %d]", r.Options.BruteForceLimit, maxBruteForceLimit)
		}
		if r.Options.MatchLimit < 0 || r.Options.MatchLimit > maxMatchLimit {
			return job, fmt.Errorf("match_limit %d outside [0, %d]", r.Options.MatchLimit, maxMatchLimit)
		}
		if r.Options.TimeoutMS < 0 {
			return job, fmt.Errorf("timeout_ms %d is negative", r.Options.TimeoutMS)
		}
		job.Timeout = time.Duration(r.Options.TimeoutMS) * time.Millisecond
		// A malformed precision is a 400, never a silent default: a
		// client that typed "fats" must not silently pay exact-precision
		// latency (or worse, believe a float answer is exact).
		prec := defPrec
		if r.Options.Precision != "" {
			var err error
			if prec, err = core.ParsePrecision(r.Options.Precision); err != nil {
				return job, fmt.Errorf("bad precision %q: want \"exact\", \"fast\", \"auto\" or \"approx\"", r.Options.Precision)
			}
		}
		tol := r.Options.FloatTolerance
		if tol == 0 {
			tol = defTol
		}
		job.Opts = &core.Options{
			BruteForceLimit: r.Options.BruteForceLimit,
			MatchLimit:      r.Options.MatchLimit,
			DisableFallback: r.Options.DisableFallback,
			Precision:       prec,
			FloatTolerance:  tol,
			Epsilon:         r.Options.Epsilon,
			Delta:           r.Options.Delta,
			Seed:            r.Options.Seed,
		}
		// One definition of a valid tolerance / (ε,δ) pair: the solver's
		// own (finite non-negative tolerance; epsilon and delta in (0,1)
		// and only under approx). Rejecting here turns it into a 400
		// rather than a per-job solver error.
		if err := job.Opts.Validate(); err != nil {
			return job, err
		}
	} else if defPrec != core.PrecisionExact || defTol != 0 {
		job.Opts = &core.Options{Precision: defPrec, FloatTolerance: defTol}
	}
	return job, nil
}

func (r *SolveRequest) parseQueries() ([]*graph.Graph, error) {
	forms := 0
	for _, set := range []bool{r.Query != nil, len(r.Queries) > 0, r.QueryText != "", len(r.QueriesText) > 0} {
		if set {
			forms++
		}
	}
	if forms > 1 {
		return nil, fmt.Errorf("provide exactly one of query, queries, query_text, queries_text")
	}
	var raw []json.RawMessage
	var texts []string
	switch {
	case r.Query != nil:
		raw = []json.RawMessage{r.Query}
	case len(r.Queries) > 0:
		raw = r.Queries
	case r.QueryText != "":
		texts = []string{r.QueryText}
	case len(r.QueriesText) > 0:
		texts = r.QueriesText
	}
	var out []*graph.Graph
	for i, m := range raw {
		q, err := parseQueryJSON(m)
		if err != nil {
			return nil, fmt.Errorf("bad query %d: %v", i, err)
		}
		out = append(out, q)
	}
	for i, t := range texts {
		q, err := graphio.ParseGraph(strings.NewReader(t))
		if err != nil {
			return nil, fmt.Errorf("bad query %d: %v", i, err)
		}
		out = append(out, q)
	}
	return out, nil
}

// parseQueryJSON decodes a query graph from the JSON wire form,
// rejecting probability annotations (query graphs are deterministic).
func parseQueryJSON(data []byte) (*graph.Graph, error) {
	pg, err := graphio.UnmarshalProbGraphJSON(data)
	if err != nil {
		return nil, err
	}
	for i := 0; i < pg.G.NumEdges(); i++ {
		if pg.Prob(i).Cmp(graph.RatOne) != 0 {
			return nil, fmt.Errorf("query graph has a probability on edge %d", i)
		}
	}
	return pg.G, nil
}

func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func WriteError(w http.ResponseWriter, status int, msg string) {
	WriteJSON(w, status, ErrorResponse{Error: msg})
}

// WriteTypedError reports a typed error with its taxonomy-derived
// status and machine-readable code.
func WriteTypedError(w http.ResponseWriter, err error) {
	WriteJSON(w, StatusOf(err), ErrorResponse{Error: err.Error(), Code: phomerr.CodeOf(err).String()})
}
