package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"phom/internal/engine"
)

// Example 2.2 / Figure 1 of the paper: Pr(G ⇝ H) = 287/500 = 0.574.
const (
	exampleQueryText = `
vertices 4
edge 0 1 R
edge 1 2 S
edge 3 2 S
`
	exampleInstanceText = `
vertices 4
edge 0 1 R
edge 0 2 R 0.1
edge 1 2 R 0.8
edge 1 3 R 0.1
edge 0 3 R 0.05
edge 2 3 S 0.7
`
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4})
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(New(eng).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestSolveTextFormat(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/solve", SolveRequest{
		QueryText:    exampleQueryText,
		InstanceText: exampleInstanceText,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Prob != "287/500" {
		t.Errorf("prob = %q, want 287/500 (Example 2.2)", sr.Prob)
	}
	if sr.ProbFloat != 0.574 {
		t.Errorf("prob_float = %v, want 0.574", sr.ProbFloat)
	}
	if sr.PTime {
		t.Errorf("method %q reported as PTIME; Example 2.2 needs a baseline", sr.Method)
	}
	if sr.Predicted == nil || sr.Predicted.Tractable {
		t.Errorf("predicted = %+v, want a #P-hard verdict", sr.Predicted)
	}
	if !sr.Predicted.Labeled {
		t.Error("predicted verdict should be for the labeled setting")
	}
}

func TestSolveJSONFormatAndCacheHit(t *testing.T) {
	ts := newTestServer(t)
	// The same instance in the JSON wire form; "1/2"-style and decimal
	// rationals are equivalent.
	req := map[string]any{
		"query": map[string]any{
			"vertices": 4,
			"edges": []map[string]any{
				{"from": 0, "to": 1, "label": "R"},
				{"from": 1, "to": 2, "label": "S"},
				{"from": 3, "to": 2, "label": "S"},
			},
		},
		"instance": map[string]any{
			"vertices": 4,
			"edges": []map[string]any{
				{"from": 0, "to": 1, "label": "R"},
				{"from": 0, "to": 2, "label": "R", "prob": "1/10"},
				{"from": 1, "to": 2, "label": "R", "prob": "4/5"},
				{"from": 1, "to": 3, "label": "R", "prob": "1/10"},
				{"from": 0, "to": 3, "label": "R", "prob": "1/20"},
				{"from": 2, "to": 3, "label": "S", "prob": "7/10"},
			},
		},
	}
	var first, second SolveResponse
	for i, dst := range []*SolveResponse{&first, &second} {
		resp, body := postJSON(t, ts.URL+"/solve", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, dst); err != nil {
			t.Fatal(err)
		}
	}
	if first.Prob != "287/500" || second.Prob != "287/500" {
		t.Errorf("probs = %q, %q, want 287/500", first.Prob, second.Prob)
	}
	if first.CacheHit {
		t.Error("first request was a cache hit")
	}
	if !second.CacheHit {
		t.Error("identical second request missed the cache")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	good := SolveRequest{QueryText: exampleQueryText, InstanceText: exampleInstanceText}
	ucq := SolveRequest{
		QueriesText:  []string{"vertices 2\nedge 0 1 R\n", "vertices 2\nedge 0 1 S\n"},
		InstanceText: exampleInstanceText,
	}
	bad := SolveRequest{QueryText: "vertices zero\n", InstanceText: exampleInstanceText}
	hard := SolveRequest{
		QueryText:    exampleQueryText,
		InstanceText: exampleInstanceText,
		Options:      &SolveOptions{DisableFallback: true},
	}
	resp, body := postJSON(t, ts.URL+"/batch", BatchRequest{Jobs: []SolveRequest{good, ucq, bad, good, hard}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(br.Results))
	}
	if br.Results[0].Prob != "287/500" {
		t.Errorf("job 0: prob = %q, want 287/500", br.Results[0].Prob)
	}
	if br.Results[1].Error != "" || br.Results[1].Prob == "" {
		t.Errorf("job 1 (UCQ): %+v", br.Results[1])
	}
	if br.Results[1].Predicted != nil {
		t.Error("job 1 (UCQ): per-CQ verdict reported for a union")
	}
	if br.Results[2].Error == "" {
		t.Error("job 2: parse error not reported")
	}
	if br.Results[3].Prob != "287/500" {
		t.Errorf("job 3: prob = %q, want 287/500", br.Results[3].Prob)
	}
	// Jobs 0 and 3 are identical and run concurrently; whichever
	// registers second is a cache hit or coalesces onto the leader.
	if !(br.Results[0].CacheHit || br.Results[0].Shared || br.Results[3].CacheHit || br.Results[3].Shared) {
		t.Error("duplicate jobs neither cached nor coalesced")
	}
	if br.Results[4].Error == "" {
		t.Error("job 4: disable_fallback on a hard input did not error")
	}
	if br.Stats.Submitted == 0 || br.Stats.Solved == 0 {
		t.Errorf("stats not populated: %+v", br.Stats)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Workers != 4 {
		t.Errorf("health = %+v", hr)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"malformed json", "/solve", "{", http.StatusBadRequest},
		{"no query", "/solve", `{"instance_text": "vertices 1\n"}`, http.StatusBadRequest},
		{"no instance", "/solve", fmt.Sprintf(`{"query_text": %q}`, "vertices 2\nedge 0 1 R\n"), http.StatusBadRequest},
		{"two query forms", "/solve", fmt.Sprintf(`{"query_text": %q, "queries_text": [%q], "instance_text": %q}`,
			"vertices 2\nedge 0 1 R\n", "vertices 2\nedge 0 1 R\n", "vertices 1\n"), http.StatusBadRequest},
		{"probability on query", "/solve", fmt.Sprintf(`{"query_text": %q, "instance_text": %q}`,
			"vertices 2\nedge 0 1 R 1/2\n", "vertices 1\n"), http.StatusBadRequest},
		{"brute limit above cap", "/solve", fmt.Sprintf(`{"query_text": %q, "instance_text": %q, "options": {"brute_force_limit": 64}}`,
			"vertices 2\nedge 0 1 R\n", "vertices 2\nedge 0 1 R\n"), http.StatusBadRequest},
		{"negative match limit", "/solve", fmt.Sprintf(`{"query_text": %q, "instance_text": %q, "options": {"match_limit": -1}}`,
			"vertices 2\nedge 0 1 R\n", "vertices 2\nedge 0 1 R\n"), http.StatusBadRequest},
		{"empty batch", "/batch", `{"jobs": []}`, http.StatusBadRequest},
		{"oversize batch", "/batch",
			`{"jobs": [` + strings.Repeat("{},", MaxBatchJobs) + `{}]}`,
			http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	// Wrong methods.
	if resp, _ := http.Get(ts.URL + "/solve"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz: status %d", resp.StatusCode)
	}
}

// TestReweight: the reweight endpoint applies the probability map, hits
// the engine's plan cache on a previously seen structure, and returns
// exact results for the new weights.
func TestReweight(t *testing.T) {
	ts := newTestServer(t)
	// Prop 4.10 cell: 1WP query on a DWT instance, so the reweight path
	// evaluates a cached plan rather than re-solving a baseline.
	queryText := "vertices 3\nedge 0 1 R\nedge 1 2 S\n"
	instanceText := "vertices 4\nedge 0 1 R 1/2\nedge 1 2 S 1/3\nedge 1 3 S 1/5\n"

	// Prime the plan cache through /solve.
	resp, body := postJSON(t, ts.URL+"/solve", SolveRequest{
		QueryText: queryText, InstanceText: instanceText,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: status %d: %s", resp.StatusCode, body)
	}

	// Reweight all three edges; the oracle value is derived below.
	rw := map[string]any{
		"query_text":    queryText,
		"instance_text": instanceText,
		"probs":         map[string]string{"0>1": "1/4", "1>2": "1/2", "1>3": "0.25"},
	}
	resp, body = postJSON(t, ts.URL+"/reweight", rw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reweight: status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.PlanHit {
		t.Errorf("reweight of a seen structure missed the plan cache: %s", body)
	}
	if sr.CacheHit {
		t.Error("reweight with fresh probabilities must not be a result-cache hit")
	}
	// Oracle: Pr(R01·S12 ∨ R01·S13) = p01·(1 − (1 − p12)(1 − p13))
	//       = 1/4 · (1 − 1/2 · 3/4) = 1/4 · 5/8 = 5/32.
	if sr.Prob != "5/32" {
		t.Errorf("reweighted prob = %q, want 5/32", sr.Prob)
	}

	// A second identical reweight is a plain result-cache hit.
	resp, body = postJSON(t, ts.URL+"/reweight", rw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat: status %d: %s", resp.StatusCode, body)
	}
	var sr2 SolveResponse
	if err := json.Unmarshal(body, &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.CacheHit || sr2.Prob != "5/32" {
		t.Errorf("repeat reweight: %+v", sr2)
	}

	// The plan counters surface in /healthz.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Stats.PlanHits == 0 || hr.Stats.PlanCompiles == 0 || hr.Stats.PlanCacheLen == 0 {
		t.Errorf("plan counters not surfaced: %+v", hr.Stats)
	}
}

// TestReweightWithoutProbs: omitting probs solves the instance as sent,
// so /reweight degrades to /solve (plus plan-cache provenance).
func TestReweightWithoutProbs(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/reweight", SolveRequest{
		QueryText:    exampleQueryText,
		InstanceText: exampleInstanceText,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Prob != "287/500" {
		t.Errorf("prob = %q, want 287/500", sr.Prob)
	}
}

func TestReweightBadRequests(t *testing.T) {
	ts := newTestServer(t)
	queryText := "vertices 2\nedge 0 1 R\n"
	instanceText := "vertices 2\nedge 0 1 R 1/2\n"
	cases := []struct {
		name  string
		probs map[string]string
	}{
		{"bad key", map[string]string{"zero>one": "1/2"}},
		{"missing arrow", map[string]string{"01": "1/2"}},
		{"no such edge", map[string]string{"1>0": "1/2"}},
		{"bad rational", map[string]string{"0>1": "a/b"}},
		{"out of range", map[string]string{"0>1": "3/2"}},
		{"huge exponent", map[string]string{"0>1": "1e999999"}},
		{"duplicate edge after normalization", map[string]string{"0>1": "1/2", " 0>1": "1/3"}},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/reweight", map[string]any{
			"query_text":    queryText,
			"instance_text": instanceText,
			"probs":         c.probs,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, body)
		}
	}
	if resp, _ := http.Get(ts.URL + "/reweight"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /reweight: status %d", resp.StatusCode)
	}
}
