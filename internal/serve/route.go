package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"phom/internal/approx"
	"phom/internal/core"
	"phom/internal/graphio"
)

// RouteInfo is what a gateway needs to place one wire job on a
// consistent-hash ring and price it for admission control, derived
// without executing anything.
type RouteInfo struct {
	// Key is the job's routing key: graphio.StructKey over the
	// canonical query set and the probability-stripped instance
	// structure, with an empty options fingerprint. Jobs that differ
	// only in probabilities or evaluation policy share a Key, which is
	// exactly the plan-cache locality a sharded tier wants: every
	// reweight of one structure lands on the replica that compiled it.
	// For a job that does not parse, Key is a deterministic hash of the
	// raw body bytes instead (the job still needs a backend — the
	// owning backend produces the authoritative 400, byte-identical to
	// an unsharded deployment's).
	Key string
	// Edges is the instance's edge count, the size axis of the cost
	// model (0 when the job did not parse).
	Edges int
	// Hard reports that the dispatch lattice predicts a #P-hard cell
	// for at least one disjunct: the job will take the exponential
	// fallback (or be refused, when DisableFallback is set).
	Hard bool
	// DisableFallback mirrors options.disable_fallback: a hard job
	// with the fallback disabled is a fast typed refusal, not heavy
	// work, and the cost model prices it accordingly.
	DisableFallback bool
	// Vectors is the multi-vector width of a reweight (len of
	// probs_batch), 1 for everything else; evaluation cost scales with
	// it.
	Vectors int
	// Approx reports that the job requested precision "approx": a hard
	// cell is then answered by the Karp–Luby sampler, whose cost is the
	// sample count below, not the 2^k of the exponential baselines.
	Approx bool
	// ApproxSamples is the gateway's estimate of the sampler's budget
	// for this job — the Dyer/Karp–Luby sample count at the requested
	// (ε,δ) with the instance's edge count standing in for the lineage
	// clause count (the true count is not known without enumerating
	// matches, which routing must not do). 0 unless Approx.
	ApproxSamples int64
	// ParseErr is the parse failure for jobs routed by raw-byte hash.
	ParseErr error
}

// RouteJob parses one solve/reweight wire job just far enough to route
// it. It never fails: malformed jobs get a byte-hash key and their
// ParseErr recorded, so the gateway can still proxy them to a
// deterministic backend and let it produce the authoritative error.
func RouteJob(raw []byte) RouteInfo {
	var req ReweightRequest // superset of SolveRequest; extra fields ignored on plain solves
	if err := json.Unmarshal(raw, &req); err != nil {
		return rawRoute(raw, err)
	}
	return routeParsed(&req)
}

// routeParsed derives the RouteInfo of a decoded wire job.
func routeParsed(req *ReweightRequest) RouteInfo {
	job, err := req.SolveRequest.toJob(core.PrecisionExact, 0)
	if err != nil {
		raw, merr := json.Marshal(req)
		if merr != nil {
			raw = nil
		}
		return rawRoute(raw, err)
	}
	qs, err := job.Disjuncts()
	if err != nil {
		raw, _ := json.Marshal(req)
		return rawRoute(raw, err)
	}
	canon := make([]string, len(qs))
	for i, q := range qs {
		canon[i] = graphio.CanonicalGraph(q)
	}
	// Disjunct order is irrelevant to the result, so it must be
	// irrelevant to placement too (mirrors the engine's job keying).
	sort.Strings(canon)
	info := RouteInfo{
		Key:     graphio.StructKey(canon, graphio.CanonicalGraph(job.Instance.G), ""),
		Edges:   job.Instance.G.NumEdges(),
		Vectors: 1,
	}
	for _, q := range qs {
		if _, _, _, v := core.PredictInput(q, job.Instance); !v.Tractable {
			info.Hard = true
			break
		}
	}
	if job.Opts != nil {
		info.DisableFallback = job.Opts.DisableFallback
	}
	approxRouteFields(&info, req.Options)
	if n := len(req.ProbsBatch); n > 1 {
		info.Vectors = n
	}
	return info
}

// approxRouteFields fills the approx-mode fields of info from the wire
// options. It is deliberately envelope-based (not parsed-job-based) so
// the cache-hit path, which never builds a job, derives the same
// values. Out-of-range (ε,δ) fall back to the solver defaults here —
// the owning backend produces the authoritative 400; routing only needs
// a sane price.
func approxRouteFields(info *RouteInfo, o *SolveOptions) {
	if o == nil {
		return
	}
	if p, err := core.ParsePrecision(o.Precision); err != nil || p != core.PrecisionApprox {
		return
	}
	eps, delta := o.Epsilon, o.Delta
	if !(eps > 0 && eps < 1) {
		eps = core.DefaultEpsilon
	}
	if !(delta > 0 && delta < 1) {
		delta = core.DefaultDelta
	}
	info.Approx = true
	info.ApproxSamples = approx.SampleCount(info.Edges+1, eps, delta)
}

// rawRoute keys an unparseable job by its raw bytes: deterministic, so
// repeated sends of the same bad body always hit the same backend.
func rawRoute(raw []byte, err error) RouteInfo {
	h := sha256.Sum256(append([]byte("route-raw\n"), raw...))
	return RouteInfo{Key: hex.EncodeToString(h[:]), Vectors: 1, ParseErr: err}
}

// DefaultRouteCacheSize is the default capacity of a RouteCache.
const DefaultRouteCacheSize = 4096

// RouteCache memoizes the structure-derived part of RouteInfo (Key,
// Edges, Hard) by a fingerprint of the request's structure-bearing
// fields. The dominant serving pattern — reweighting a known
// query/instance under fresh probabilities — repeats those fields
// verbatim on every request, but deriving RouteInfo from scratch parses
// and classifies the whole instance each time, which can cost as much
// as the backend's own warm evaluation. A cache hit reduces routing to
// one envelope decode and a hash. Request-variant fields
// (DisableFallback, Vectors) are re-derived from the envelope on every
// call; parse failures are never cached (their raw-byte keys depend on
// the full body, probabilities included).
type RouteCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used; values are *routeEntry
}

type routeEntry struct {
	fp   string
	info RouteInfo // Vectors/DisableFallback normalized (1, false)
}

// NewRouteCache returns a RouteCache holding up to size structures
// (DefaultRouteCacheSize when size <= 0).
func NewRouteCache(size int) *RouteCache {
	if size <= 0 {
		size = DefaultRouteCacheSize
	}
	return &RouteCache{max: size, entries: make(map[string]*list.Element), order: list.New()}
}

// Len returns the number of cached structures.
func (c *RouteCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Route is RouteJob through the cache: identical results, with the
// parse/classify work skipped when the request's structure fields have
// been routed before.
func (c *RouteCache) Route(raw []byte) RouteInfo {
	var req ReweightRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return rawRoute(raw, err)
	}
	fp := routeFingerprint(&req)
	if info, ok := c.get(fp); ok {
		if req.Options != nil {
			info.DisableFallback = req.Options.DisableFallback
		}
		approxRouteFields(&info, req.Options)
		if n := len(req.ProbsBatch); n > 1 {
			info.Vectors = n
		}
		return info
	}
	info := routeParsed(&req)
	if info.ParseErr == nil {
		cached := info
		cached.Vectors = 1
		cached.DisableFallback = false
		cached.Approx = false
		cached.ApproxSamples = 0
		c.put(fp, cached)
	}
	return info
}

// Batch is RouteBatch through the cache.
func (c *RouteCache) Batch(raw []byte) (jobs []json.RawMessage, infos []RouteInfo, err error) {
	jobs, err = splitBatch(raw)
	if err != nil {
		return nil, nil, err
	}
	infos = make([]RouteInfo, len(jobs))
	for i, j := range jobs {
		infos[i] = c.Route(j)
	}
	return jobs, infos, nil
}

func (c *RouteCache) get(fp string) (RouteInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		return RouteInfo{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*routeEntry).info, true
}

func (c *RouteCache) put(fp string, info RouteInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		c.order.MoveToFront(el)
		el.Value.(*routeEntry).info = info
		return
	}
	c.entries[fp] = c.order.PushFront(&routeEntry{fp: fp, info: info})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*routeEntry).fp)
	}
}

// routeFingerprint hashes exactly the fields of a wire job that
// determine its structure-derived RouteInfo: queries and instance in
// every wire form. Probability maps and evaluation options are
// deliberately excluded — they never move a job between shards.
func routeFingerprint(req *ReweightRequest) string {
	h := sha256.New()
	section := func(tag string, b []byte) {
		fmt.Fprintf(h, "%s %d\n", tag, len(b))
		h.Write(b)
	}
	section("query", req.Query)
	for _, q := range req.Queries {
		section("queries", q)
	}
	section("query_text", []byte(req.QueryText))
	for _, q := range req.QueriesText {
		section("queries_text", []byte(q))
	}
	section("instance", req.Instance)
	section("instance_text", []byte(req.InstanceText))
	return hex.EncodeToString(h.Sum(nil))
}

// RouteBatch splits a /batch body into its per-job raw messages and
// their RouteInfos. The raw job bytes are preserved verbatim so the
// gateway's per-shard sub-batches re-marshal each job untouched — the
// backends parse exactly what the client sent.
func RouteBatch(raw []byte) (jobs []json.RawMessage, infos []RouteInfo, err error) {
	jobs, err = splitBatch(raw)
	if err != nil {
		return nil, nil, err
	}
	infos = make([]RouteInfo, len(jobs))
	for i, j := range jobs {
		infos[i] = RouteJob(j)
	}
	return jobs, infos, nil
}

func splitBatch(raw []byte) ([]json.RawMessage, error) {
	var req struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	return req.Jobs, nil
}
