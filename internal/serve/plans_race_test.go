package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestPlansImportRacingSolves pins the warm-start safety property the
// gateway relies on: a POST /plans/import landing while a batch of
// solves and reweights is in flight must not corrupt the plan cache —
// every answer produced during the race, and every answer produced
// after it, is byte-identical to a race-free baseline. (The engine adds
// imported records under its lock one at a time, so an import can only
// ever swap a compiled plan for an equivalent one, never expose a
// half-written cache to an evaluating job.)
func TestPlansImportRacingSolves(t *testing.T) {
	ts := newTestServer(t)

	// A small structure family: distinct path queries over the shared
	// tractable instance, each reweighted with several vectors.
	var jobs []ReweightRequest
	for i := 0; i < 6; i++ {
		rq := reweightBody(fmt.Sprintf("%d/7", 1+i%6))
		if i%2 == 1 {
			rq.QueryText = "vertices 3\nedge 0 1 R\nedge 1 2 S\n"
		}
		jobs = append(jobs, rq)
	}
	answers := func() []string {
		out := make([]string, len(jobs))
		for i, rq := range jobs {
			resp, body := postJSON(t, ts.URL+"/reweight", rq)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("reweight %d: status %d: %s", i, resp.StatusCode, body)
			}
			var sr SolveResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Prob == "" {
				t.Fatalf("reweight %d: empty prob: %s", i, body)
			}
			out[i] = sr.Prob
		}
		return out
	}

	// Baseline (also warms the plan cache) and its exported snapshot.
	baseline := answers()
	getResp, err := http.Get(ts.URL + "/plans/export")
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if err != nil || len(snapshot) == 0 {
		t.Fatalf("export: %v (%d bytes)", err, len(snapshot))
	}

	// The race: importers hammer /plans/import while solvers replay the
	// job set; every in-race answer must equal the baseline exactly.
	const rounds = 8
	var wg sync.WaitGroup
	errc := make(chan error, rounds+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds*2; r++ {
			resp, err := http.Post(ts.URL+"/plans/import", "application/octet-stream", bytes.NewReader(snapshot))
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("import status %d", resp.StatusCode)
				return
			}
		}
	}()
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, rq := range jobs {
				b, _ := json.Marshal(rq)
				resp, err := http.Post(ts.URL+"/reweight", "application/json", bytes.NewReader(b))
				if err != nil {
					errc <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var sr SolveResponse
				if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &sr) != nil {
					errc <- fmt.Errorf("mid-import reweight %d: status %d: %s", i, resp.StatusCode, body)
					return
				}
				if sr.Prob != baseline[i] {
					errc <- fmt.Errorf("mid-import reweight %d answered %q, baseline %q", i, sr.Prob, baseline[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// And after the dust settles: still byte-identical.
	after := answers()
	for i := range baseline {
		if after[i] != baseline[i] {
			t.Fatalf("post-import reweight %d answered %q, baseline %q", i, after[i], baseline[i])
		}
	}
}
