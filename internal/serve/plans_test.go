package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"phom/internal/engine"
)

// A tractable cell (Prop 4.10: labeled 1WP query on a DWT instance) —
// unlike Example 2.2, its plan is structural, hence serializable.
const (
	tractableQueryText    = "vertices 2\nedge 0 1 R\n"
	tractableInstanceText = `
vertices 4
edge 0 1 R 1/2
edge 1 2 S 1/3
edge 0 3 R 1/4
`
)

// reweightBody builds a /reweight request over the tractable instance
// with one probability substituted.
func reweightBody(p string) ReweightRequest {
	return ReweightRequest{
		SolveRequest: SolveRequest{
			QueryText:    tractableQueryText,
			InstanceText: tractableInstanceText,
		},
		Probs: map[string]string{"0>1": p},
	}
}

// TestPlansExportImportWarmStart drives the full warm-start serving
// flow over HTTP: warm a server, export its plan snapshot, import it
// into a second server backed by a fresh engine, and verify the second
// server answers a reweight of the same structure as a plan hit with
// zero compilations.
func TestPlansExportImportWarmStart(t *testing.T) {
	ts := newTestServer(t)

	// Warm: one solve compiles the structure.
	resp, body := postJSON(t, ts.URL+"/solve", SolveRequest{
		QueryText:    tractableQueryText,
		InstanceText: tractableInstanceText,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: status %d: %s", resp.StatusCode, body)
	}

	// Export.
	getResp, err := http.Get(ts.URL + "/plans/export")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d", getResp.StatusCode)
	}
	if got := getResp.Header.Get("X-Phom-Plans"); got != "1" {
		t.Fatalf("export header X-Phom-Plans = %q, want 1", got)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot body")
	}

	// Import into a fresh engine behind a second server.
	eng2 := engine.New(engine.Options{Workers: 2})
	t.Cleanup(func() { eng2.Close() })
	ts2 := httptest.NewServer(New(eng2).Handler())
	t.Cleanup(ts2.Close)
	impResp, err := http.Post(ts2.URL+"/plans/import", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	impBody, _ := io.ReadAll(impResp.Body)
	impResp.Body.Close()
	if impResp.StatusCode != http.StatusOK {
		t.Fatalf("import: status %d: %s", impResp.StatusCode, impBody)
	}
	var imp plansImportResponse
	if err := json.Unmarshal(impBody, &imp); err != nil {
		t.Fatal(err)
	}
	if imp.Loaded != 1 || imp.PlanCacheLen != 1 {
		t.Fatalf("import response %+v, want loaded=1 plan_cache_len=1", imp)
	}

	// A reweight of the imported structure is a plan hit, no compiles.
	rwResp, rwBody := postJSON(t, ts2.URL+"/reweight", reweightBody("1/4"))
	if rwResp.StatusCode != http.StatusOK {
		t.Fatalf("warm reweight: status %d: %s", rwResp.StatusCode, rwBody)
	}
	var sr SolveResponse
	if err := json.Unmarshal(rwBody, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.PlanHit {
		t.Fatalf("warm reweight was not a plan hit: %s", rwBody)
	}
	st := eng2.Stats()
	if st.PlanCompiles != 0 {
		t.Fatalf("warm server compiled %d plans, want 0", st.PlanCompiles)
	}
	if st.PlansLoaded != 1 {
		t.Fatalf("plans_loaded = %d, want 1", st.PlansLoaded)
	}

	// The warm answer matches the cold answer for the same weights.
	coldResp, coldBody := postJSON(t, ts.URL+"/reweight", reweightBody("1/4"))
	if coldResp.StatusCode != http.StatusOK {
		t.Fatalf("cold reweight: status %d: %s", coldResp.StatusCode, coldBody)
	}
	var cold SolveResponse
	if err := json.Unmarshal(coldBody, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Prob != sr.Prob {
		t.Fatalf("warm %s vs cold %s", sr.Prob, cold.Prob)
	}
}

func TestPlansImportRejectsGarbage(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/plans/import", "application/octet-stream",
		strings.NewReader("this is not a snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestPlansEndpointsMethods(t *testing.T) {
	ts := newTestServer(t)
	if resp, _ := postJSON(t, ts.URL+"/plans/export", struct{}{}); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /plans/export: status %d, want 405", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/plans/import")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /plans/import: status %d, want 405", resp.StatusCode)
	}
}

// TestHealthzReportsSnapshotCounters: the snapshot counters surface in
// /healthz.
func TestHealthzReportsSnapshotCounters(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, key := range []string{"plans_loaded", "plans_saved", "snapshot_errors", "plan_hits", "plan_compiles"} {
		if !strings.Contains(string(body), key) {
			t.Errorf("/healthz missing %q: %s", key, body)
		}
	}
}

// TestMaxBodyLimit: oversized request bodies are refused with 413 on
// every body-reading endpoint, honoring the -maxbody setting.
func TestMaxBodyLimit(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(New(eng).WithMaxBody(512).Handler())
	t.Cleanup(ts.Close)

	huge := fmt.Sprintf(`{"query_text": %q, "instance_text": %q}`,
		exampleQueryText+strings.Repeat("# padding\n", 200), exampleInstanceText)
	for _, path := range []string{"/solve", "/reweight", "/batch"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413: %s", path, resp.StatusCode, body)
		}
	}
	// /plans/import reads binary, so the oversized body needs a valid
	// snapshot header and a record length that drags the reader past
	// the cap (a bad magic would 400 before the limit is reached).
	bigSnap := append([]byte("phomsnap1"), 0xC0, 0x84, 0x3D) // record length 1000000
	bigSnap = append(bigSnap, bytes.Repeat([]byte{0}, 2048)...)
	resp, err := http.Post(ts.URL+"/plans/import", "application/octet-stream", bytes.NewReader(bigSnap))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("/plans/import: status %d, want 413: %s", resp.StatusCode, body)
	}
	// A small request still works under the tight limit.
	resp, body = postJSON(t, ts.URL+"/solve", SolveRequest{
		QueryText:    exampleQueryText,
		InstanceText: exampleInstanceText,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small request under -maxbody: status %d: %s", resp.StatusCode, body)
	}
}
