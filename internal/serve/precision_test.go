package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"phom/internal/core"
	"phom/internal/engine"
)

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// A tractable job (1WP query on a labeled path instance, Prop 4.10)
// with non-dyadic probabilities, so the fast path genuinely rounds.
const (
	precQueryText    = "vertices 2\nedge 0 1 R\n"
	precInstanceText = "vertices 3\nedge 0 1 R 1/3\nedge 1 2 R 2/7\n"
)

func precRequest(opts *SolveOptions) SolveRequest {
	return SolveRequest{
		QueryText:    precQueryText,
		InstanceText: precInstanceText,
		Options:      opts,
	}
}

func TestSolvePrecisionFast(t *testing.T) {
	ts := newTestServer(t)

	// Exact baseline.
	resp, body := postJSON(t, ts.URL+"/solve", precRequest(nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var exact SolveResponse
	if err := json.Unmarshal(body, &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Precision != "exact" || exact.ProbLo != nil || exact.ProbHi != nil {
		t.Fatalf("exact response carries fast-path fields: %s", body)
	}

	// Fast: certified bounds straddling the true probability.
	resp, body = postJSON(t, ts.URL+"/solve", precRequest(&SolveOptions{Precision: "fast"}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var fast SolveResponse
	if err := json.Unmarshal(body, &fast); err != nil {
		t.Fatal(err)
	}
	if fast.Precision != "fast" {
		t.Fatalf("precision = %q, want fast: %s", fast.Precision, body)
	}
	if fast.ProbLo == nil || fast.ProbHi == nil {
		t.Fatalf("fast response is missing its bounds: %s", body)
	}
	if !(*fast.ProbLo <= exact.ProbFloat && exact.ProbFloat <= *fast.ProbHi) {
		t.Fatalf("enclosure [%g, %g] misses the exact answer %g", *fast.ProbLo, *fast.ProbHi, exact.ProbFloat)
	}
	if fast.Prob == "" {
		t.Fatal("fast response has no rational point estimate")
	}

	// Auto with an unreachable tolerance: exact fallback, byte-identical.
	resp, body = postJSON(t, ts.URL+"/solve", precRequest(&SolveOptions{Precision: "auto", FloatTolerance: 5e-324}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var auto SolveResponse
	if err := json.Unmarshal(body, &auto); err != nil {
		t.Fatal(err)
	}
	if auto.Precision != "exact" {
		t.Fatalf("auto under subnormal tolerance served %q", auto.Precision)
	}
	if auto.Prob != exact.Prob {
		t.Fatalf("auto fallback %q differs from exact %q", auto.Prob, exact.Prob)
	}

	// The healthz counters saw one fast answer and one fallback.
	resp, body = getURL(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hr HealthResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Stats.FloatFast != 1 || hr.Stats.FloatFallbacks != 1 {
		t.Fatalf("healthz float counters = %d/%d, want 1/1", hr.Stats.FloatFast, hr.Stats.FloatFallbacks)
	}
}

// TestPrecisionMalformedIsA400 pins the hardening satellite: a
// malformed precision (or tolerance) never silently defaults.
func TestPrecisionMalformedIsA400(t *testing.T) {
	ts := newTestServer(t)
	for _, bad := range []*SolveOptions{
		{Precision: "fats"},
		{Precision: "EXACT"},
		{Precision: "rational"},
		{FloatTolerance: -1e-9},
	} {
		resp, body := postJSON(t, ts.URL+"/solve", precRequest(bad))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("options %+v: status %d, want 400: %s", bad, resp.StatusCode, body)
		}
	}
	// NaN/Inf tolerances cannot be expressed in JSON numbers: encoding
	// them client-side fails before a request is even sent, and a raw
	// "NaN" literal in the body is a JSON parse error (also a 400).
	resp, body := postRaw(t, ts.URL+"/solve",
		`{"query_text": "vertices 2\nedge 0 1 R\n", "instance_text": "vertices 2\nedge 0 1 R 1/2\n", "options": {"float_tolerance": NaN}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN tolerance: status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestPrecisionOnReweightAndBatch pins that /reweight and /batch accept
// the precision field like /solve does.
func TestPrecisionOnReweightAndBatch(t *testing.T) {
	ts := newTestServer(t)

	resp, body := postJSON(t, ts.URL+"/reweight", ReweightRequest{
		SolveRequest: precRequest(&SolveOptions{Precision: "fast"}),
		Probs:        map[string]string{"0>1": "3/5"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reweight status %d: %s", resp.StatusCode, body)
	}
	var rw SolveResponse
	if err := json.Unmarshal(body, &rw); err != nil {
		t.Fatal(err)
	}
	if rw.Precision != "fast" || rw.ProbLo == nil || rw.ProbHi == nil {
		t.Fatalf("reweight ignored precision: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/batch", BatchRequest{Jobs: []SolveRequest{
		precRequest(nil),
		precRequest(&SolveOptions{Precision: "fast"}),
		precRequest(&SolveOptions{Precision: "nope"}),
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Precision != "exact" || br.Results[1].Precision != "fast" {
		t.Fatalf("batch precisions = %q, %q", br.Results[0].Precision, br.Results[1].Precision)
	}
	if br.Results[2].Error == "" {
		t.Fatal("batch accepted a malformed precision")
	}
}

// TestServerDefaultPrecision pins the -precision/-floattol flags: jobs
// without options inherit the server default, explicit options win.
func TestServerDefaultPrecision(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(New(eng).WithPrecision(core.PrecisionFast, 0).Handler())
	t.Cleanup(ts.Close)

	resp, body := postJSON(t, ts.URL+"/solve", precRequest(nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Precision != "fast" {
		t.Fatalf("default precision not applied: %q", sr.Precision)
	}
	resp, body = postJSON(t, ts.URL+"/solve", precRequest(&SolveOptions{Precision: "exact"}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Precision != "exact" {
		t.Fatalf("explicit exact did not override the server default: %q", sr.Precision)
	}
}
