package serve

import (
	"encoding/json"
	"fmt"
	"testing"
)

func routeBody(t *testing.T, fields map[string]any) []byte {
	t.Helper()
	b, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRouteJobKeysAndClasses(t *testing.T) {
	solve := routeBody(t, map[string]any{
		"query_text": tractableQueryText, "instance_text": tractableInstanceText,
	})
	info := RouteJob(solve)
	if info.ParseErr != nil {
		t.Fatalf("parse error: %v", info.ParseErr)
	}
	if info.Key == "" || info.Edges == 0 || info.Vectors != 1 {
		t.Fatalf("bad route info: %+v", info)
	}

	// Probability variants co-locate: same structure, same key.
	rw := routeBody(t, map[string]any{
		"query_text": tractableQueryText, "instance_text": tractableInstanceText,
		"probs": map[string]string{"0>1": "1/7"},
	})
	if got := RouteJob(rw); got.Key != info.Key {
		t.Fatalf("reweight of the same structure routed elsewhere: %s vs %s", got.Key, info.Key)
	}

	// Malformed bodies still get a deterministic key.
	bad := []byte(`{"query_text": 42`)
	b1, b2 := RouteJob(bad), RouteJob(bad)
	if b1.ParseErr == nil || b1.Key == "" || b1.Key != b2.Key {
		t.Fatalf("raw routing not deterministic: %+v vs %+v", b1, b2)
	}
	if b1.Key == info.Key {
		t.Fatal("raw key collided with a parsed key")
	}
}

// TestRouteCacheEquivalence pins the cache's contract: Route returns
// exactly what RouteJob returns, for hits and misses alike, while
// probability variants of one structure share a single cached entry.
func TestRouteCacheEquivalence(t *testing.T) {
	c := NewRouteCache(0)
	bodies := [][]byte{
		routeBody(t, map[string]any{"query_text": tractableQueryText, "instance_text": tractableInstanceText}),
		routeBody(t, map[string]any{
			"query_text": tractableQueryText, "instance_text": tractableInstanceText,
			"probs": map[string]string{"0>1": "1/3"},
		}),
		routeBody(t, map[string]any{
			"query_text": tractableQueryText, "instance_text": tractableInstanceText,
			"probs_batch": []map[string]string{{"0>1": "1/3"}, {"0>1": "2/3"}, {"0>1": "1/5"}},
		}),
		routeBody(t, map[string]any{
			"query_text": tractableQueryText, "instance_text": tractableInstanceText,
			"options": map[string]any{"disable_fallback": true},
		}),
		routeBody(t, map[string]any{"query_text": "vertices 1\n", "instance_text": tractableInstanceText}),
	}
	for pass := 0; pass < 2; pass++ { // second pass served from cache
		for i, b := range bodies {
			want, got := RouteJob(b), c.Route(b)
			if got.Key != want.Key || got.Edges != want.Edges || got.Hard != want.Hard ||
				got.DisableFallback != want.DisableFallback || got.Vectors != want.Vectors {
				t.Fatalf("pass %d body %d: cache diverged: %+v vs %+v", pass, i, got, want)
			}
		}
	}
	// All probability/options variants of the shared structure collapse
	// to one entry; the distinct query is the second.
	if n := c.Len(); n != 2 {
		t.Fatalf("cached %d structures, want 2", n)
	}

	// Unparseable bodies bypass the cache entirely.
	before := c.Len()
	if info := c.Route([]byte(`{"nope`)); info.ParseErr == nil {
		t.Fatal("want parse error")
	}
	if c.Len() != before {
		t.Fatal("parse failure was cached")
	}
}

func TestRouteCacheEviction(t *testing.T) {
	c := NewRouteCache(2)
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf("vertices %d\n", i+1)
		c.Route(routeBody(t, map[string]any{"query_text": q, "instance_text": tractableInstanceText}))
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", n)
	}
}
