package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

// approxSolveRequest is the E26 shape in miniature: a #P-hard job whose
// brute-force horizon (2^24 worlds) is beyond any test budget, under
// loose approx parameters so the sample count stays small.
func approxSolveRequest(opts *SolveOptions) SolveRequest {
	return SolveRequest{
		QueryText:    hardQueryText,
		InstanceText: hardInstanceText(),
		Options:      opts,
	}
}

func approxServeOpts(seed uint64) *SolveOptions {
	return &SolveOptions{Precision: "approx", Epsilon: 0.2, Delta: 0.1, Seed: seed}
}

// TestSolveApproxRoundTrip: a hard cell the exact mode can only refuse
// (under disable_fallback) or grind exponentially on answers under
// precision "approx" with statistical bounds and a sample count, and
// the healthz counters record the run.
func TestSolveApproxRoundTrip(t *testing.T) {
	ts := newTestServer(t)

	// The same hard job refuses outright under exact + disable_fallback.
	resp, body := postJSON(t, ts.URL+"/solve", approxSolveRequest(&SolveOptions{DisableFallback: true}))
	assertStatusCode(t, resp, body, http.StatusUnprocessableEntity, "intractable")

	// Approx answers it — even with the fallback disabled.
	opts := approxServeOpts(7)
	opts.DisableFallback = true
	resp, body = postJSON(t, ts.URL+"/solve", approxSolveRequest(opts))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("approx status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Precision != "approx" || sr.Method != "karp-luby" {
		t.Fatalf("approx response served precision %q method %q: %s", sr.Precision, sr.Method, body)
	}
	if sr.ProbLo == nil || sr.ProbHi == nil {
		t.Fatalf("approx response is missing its bounds: %s", body)
	}
	if sr.ApproxSamples <= 0 {
		t.Fatalf("approx response drew %d samples: %s", sr.ApproxSamples, body)
	}
	if !(*sr.ProbLo <= sr.ProbFloat && sr.ProbFloat <= *sr.ProbHi) {
		t.Fatalf("estimate %g outside its bounds [%g, %g]", sr.ProbFloat, *sr.ProbLo, *sr.ProbHi)
	}

	resp, body = getURL(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hr HealthResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Stats.ApproxRuns != 1 || hr.Stats.ApproxSamples != uint64(sr.ApproxSamples) {
		t.Fatalf("healthz approx counters = %d/%d, want 1/%d",
			hr.Stats.ApproxRuns, hr.Stats.ApproxSamples, sr.ApproxSamples)
	}
}

// TestApproxSeedDeterminismOverHTTP: equal requests with equal seeds
// answer identically on every result field; a different seed moves the
// estimate.
func TestApproxSeedDeterminismOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	get := func(seed uint64) SolveResponse {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/solve", approxSolveRequest(approxServeOpts(seed)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var sr SolveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	a, b := get(7), get(7)
	if a.Prob != b.Prob || a.ProbFloat != b.ProbFloat ||
		*a.ProbLo != *b.ProbLo || *a.ProbHi != *b.ProbHi || a.ApproxSamples != b.ApproxSamples {
		t.Fatalf("equal seeds disagree: %+v vs %+v", a, b)
	}
	if c := get(8); c.Prob == a.Prob {
		t.Fatalf("seeds 7 and 8 produced identical estimates %q", a.Prob)
	}
}

// TestApproxMalformedIsA400 pins the hardening contract: malformed or
// misplaced approx parameters are typed 400s, never silently defaulted
// and never silently dead.
func TestApproxMalformedIsA400(t *testing.T) {
	ts := newTestServer(t)
	for _, bad := range []*SolveOptions{
		{Precision: "approx", Epsilon: 1.5},
		{Precision: "approx", Epsilon: -0.1},
		{Precision: "approx", Delta: 1},
		{Precision: "approx", Delta: -2},
		{Precision: "exact", Epsilon: 0.1},
		{Precision: "fast", Delta: 0.1},
		{Seed: 7}, // seed without approx is dead weight → reject
		{Precision: "aprox"},
	} {
		resp, body := postJSON(t, ts.URL+"/solve", approxSolveRequest(bad))
		assertStatusCode(t, resp, body, http.StatusBadRequest, "bad-input")
	}
	// A fractional or negative seed is a JSON decoding error: uint64.
	for _, raw := range []string{
		`{"query_text": "vertices 2\nedge 0 1 R\n", "instance_text": "vertices 2\nedge 0 1 R 1/2\n", "options": {"precision": "approx", "seed": -1}}`,
		`{"query_text": "vertices 2\nedge 0 1 R\n", "instance_text": "vertices 2\nedge 0 1 R 1/2\n", "options": {"precision": "approx", "seed": 0.5}}`,
	} {
		resp, body := postRaw(t, ts.URL+"/solve", raw)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("raw seed: status %d, want 400: %s", resp.StatusCode, body)
		}
	}
}

// TestApproxOnReweightAndBatch: /reweight and /batch accept the approx
// options like /solve does, and a malformed approx lane in a batch
// fails only itself.
func TestApproxOnReweightAndBatch(t *testing.T) {
	ts := newTestServer(t)

	rwReq := ReweightRequest{
		SolveRequest: approxSolveRequest(approxServeOpts(3)),
		Probs:        map[string]string{"0>1": "3/5"},
	}
	resp, body := postJSON(t, ts.URL+"/reweight", rwReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reweight status %d: %s", resp.StatusCode, body)
	}
	var rw SolveResponse
	if err := json.Unmarshal(body, &rw); err != nil {
		t.Fatal(err)
	}
	if rw.Precision != "approx" || rw.ProbLo == nil || rw.ProbHi == nil || rw.ApproxSamples <= 0 {
		t.Fatalf("reweight ignored approx options: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/batch", BatchRequest{Jobs: []SolveRequest{
		approxSolveRequest(approxServeOpts(3)),
		approxSolveRequest(&SolveOptions{Precision: "approx", Epsilon: 2}),
		precRequest(approxServeOpts(1)), // tractable: answers exactly
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Precision != "approx" || br.Results[0].ApproxSamples <= 0 {
		t.Fatalf("batch approx lane: %+v", br.Results[0])
	}
	if br.Results[1].Error == "" || br.Results[1].Code != "bad-input" {
		t.Fatalf("batch accepted a malformed epsilon: %+v", br.Results[1])
	}
	if br.Results[2].Error != "" || br.Results[2].Precision != "exact" {
		t.Fatalf("tractable approx lane: %+v", br.Results[2])
	}
}
