package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"phom/internal/engine"
	"phom/internal/phomerr"
)

// hardInstanceText is an unlabeled instance with cycles in its
// underlying graph (no tractable cell applies) whose 24 edges are all
// uncertain at 1/2: 2^24 possible worlds, far beyond any test budget,
// so only cancellation/timeouts can end a brute-force solve on it.
func hardInstanceText() string {
	var b strings.Builder
	n := 9
	fmt.Fprintf(&b, "vertices %d\n", n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j <= i+3; j++ {
			fmt.Fprintf(&b, "edge %d %d R 1/2\n", i, j)
		}
	}
	return b.String()
}

const hardQueryText = "vertices 3\nedge 0 1 R\nedge 1 2 R\n"

// TestStatusOfMapping pins the documented error-code → HTTP-status
// table.
func TestStatusOfMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{phomerr.ErrBadInput, http.StatusBadRequest},
		{phomerr.ErrDeadline, http.StatusRequestTimeout},
		{phomerr.ErrLimit, http.StatusUnprocessableEntity},
		{phomerr.ErrIntractable, http.StatusUnprocessableEntity},
		{phomerr.ErrCanceled, StatusClientClosedRequest},
		{phomerr.ErrUnavailable, http.StatusServiceUnavailable},
		{fmt.Errorf("mystery"), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		if got := StatusOf(tc.err); got != tc.want {
			t.Errorf("StatusOf(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestTypedErrorStatuses exercises the mapping end to end over HTTP:
// each failure mode lands on its documented status with its
// machine-readable code in the body.
func TestTypedErrorStatuses(t *testing.T) {
	ts := newTestServer(t)

	t.Run("bad-input-400", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/solve", SolveRequest{
			QueryText:    "vertices nope",
			InstanceText: exampleInstanceText,
		})
		assertStatusCode(t, resp, body, http.StatusBadRequest, "bad-input")
	})
	t.Run("negative-timeout-400", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/solve", SolveRequest{
			QueryText:    hardQueryText,
			InstanceText: hardInstanceText(),
			Options:      &SolveOptions{TimeoutMS: -5},
		})
		assertStatusCode(t, resp, body, http.StatusBadRequest, "bad-input")
	})
	t.Run("deadline-408", func(t *testing.T) {
		start := time.Now()
		resp, body := postJSON(t, ts.URL+"/solve", SolveRequest{
			QueryText:    hardQueryText,
			InstanceText: hardInstanceText(),
			Options:      &SolveOptions{BruteForceLimit: 26, TimeoutMS: 50},
		})
		if elapsed := time.Since(start); elapsed > 15*time.Second {
			t.Fatalf("timeout took %v to fire", elapsed)
		}
		assertStatusCode(t, resp, body, http.StatusRequestTimeout, "deadline")
	})
	t.Run("intractable-422", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/solve", SolveRequest{
			QueryText:    hardQueryText,
			InstanceText: hardInstanceText(),
			Options:      &SolveOptions{DisableFallback: true},
		})
		assertStatusCode(t, resp, body, http.StatusUnprocessableEntity, "intractable")
	})
	t.Run("limit-422", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/solve", SolveRequest{
			QueryText:    hardQueryText,
			InstanceText: hardInstanceText(),
			Options:      &SolveOptions{BruteForceLimit: 2, MatchLimit: 1},
		})
		assertStatusCode(t, resp, body, http.StatusUnprocessableEntity, "limit")
	})
	t.Run("unavailable-503", func(t *testing.T) {
		eng := engine.New(engine.Options{Workers: 1})
		closedTS := httptest.NewServer(New(eng).Handler())
		defer closedTS.Close()
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, closedTS.URL+"/solve", SolveRequest{
			QueryText:    exampleQueryText,
			InstanceText: exampleInstanceText,
		})
		assertStatusCode(t, resp, body, http.StatusServiceUnavailable, "unavailable")
	})
}

func assertStatusCode(t *testing.T, resp *http.Response, body []byte, wantStatus int, wantCode string) {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, wantStatus, body)
	}
	var payload struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	if payload.Code != wantCode {
		t.Fatalf("code %q, want %q (body %s)", payload.Code, wantCode, body)
	}
}

// TestBatchStreaming: /batch?stream=1 answers NDJSON in completion
// order — malformed jobs as immediate bad-input lines, solved jobs
// tagged with their input index, and a final done trailer — with
// results identical to a plain solve.
func TestBatchStreaming(t *testing.T) {
	ts := newTestServer(t)

	// The reference answer via the plain endpoint.
	_, refBody := postJSON(t, ts.URL+"/solve", SolveRequest{
		QueryText:    exampleQueryText,
		InstanceText: exampleInstanceText,
	})
	var ref SolveResponse
	if err := json.Unmarshal(refBody, &ref); err != nil {
		t.Fatal(err)
	}

	req := BatchRequest{Jobs: []SolveRequest{
		{QueryText: exampleQueryText, InstanceText: exampleInstanceText},
		{QueryText: "vertices nope", InstanceText: exampleInstanceText},
		{QueryText: exampleQueryText, InstanceText: exampleInstanceText},
	}}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/batch?stream=1", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}

	type line struct {
		Index int    `json:"index"`
		Prob  string `json:"prob"`
		Error string `json:"error"`
		Code  string `json:"code"`
		Done  bool   `json:"done"`
		Jobs  int    `json:"jobs"`
	}
	var lines []line
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 results + trailer", len(lines))
	}
	trailer := lines[len(lines)-1]
	if !trailer.Done || trailer.Jobs != 3 {
		t.Fatalf("trailer %+v", trailer)
	}
	seen := map[int]line{}
	for _, l := range lines[:len(lines)-1] {
		if _, dup := seen[l.Index]; dup {
			t.Fatalf("index %d delivered twice", l.Index)
		}
		seen[l.Index] = l
	}
	for _, i := range []int{0, 2} {
		l, ok := seen[i]
		if !ok {
			t.Fatalf("missing result for job %d", i)
		}
		if l.Prob != ref.Prob {
			t.Fatalf("job %d prob %q, want %q", i, l.Prob, ref.Prob)
		}
	}
	if l := seen[1]; l.Code != "bad-input" || l.Error == "" {
		t.Fatalf("malformed job line %+v, want bad-input error", l)
	}
}

// TestStreamingDeliversFastJobsFirst: with one exponential job and one
// trivial job in a streamed batch, the trivial result arrives first
// and the hard one resolves by its timeout — completion order, not
// submission order.
func TestStreamingDeliversFastJobsFirst(t *testing.T) {
	ts := newTestServer(t)
	req := BatchRequest{Jobs: []SolveRequest{
		{QueryText: hardQueryText, InstanceText: hardInstanceText(),
			Options: &SolveOptions{BruteForceLimit: 26, TimeoutMS: 300}},
		{QueryText: exampleQueryText, InstanceText: exampleInstanceText},
	}}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/batch?stream=true", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type line struct {
		Index int    `json:"index"`
		Code  string `json:"code"`
		Done  bool   `json:"done"`
	}
	var order []line
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatal(err)
		}
		if !l.Done {
			order = append(order, l)
		}
	}
	if len(order) != 2 {
		t.Fatalf("got %d result lines", len(order))
	}
	if order[0].Index != 1 {
		t.Fatalf("fast job was not delivered first: %+v", order)
	}
	if order[1].Code != "deadline" {
		t.Fatalf("hard job code %q, want deadline", order[1].Code)
	}
}

// TestShutdownCancelsInflightJobs is the serve-context regression: an
// engine wired to a shutdown context aborts a running brute-force solve
// when that context is cancelled — the HTTP caller gets 499 promptly
// instead of holding a worker for 2^24 worlds.
func TestShutdownCancelsInflightJobs(t *testing.T) {
	serveCtx, shutdown := context.WithCancel(context.Background())
	defer shutdown()
	eng := engine.New(engine.Options{Workers: 2, BaseContext: serveCtx})
	ts := httptest.NewServer(New(eng).Handler())
	defer ts.Close()

	type result struct {
		status int
		code   string
		err    error
	}
	done := make(chan result, 1)
	go func() {
		// postJSON would t.Fatal off the test goroutine (FailNow must
		// run on the test goroutine); report transport errors through
		// the channel instead.
		b, err := json.Marshal(SolveRequest{
			QueryText:    hardQueryText,
			InstanceText: hardInstanceText(),
			Options:      &SolveOptions{BruteForceLimit: 26},
		})
		if err != nil {
			done <- result{err: err}
			return
		}
		resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(b))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var payload struct {
			Code string `json:"code"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&payload)
		done <- result{status: resp.StatusCode, code: payload.Code}
	}()

	// Let the job start chewing, then pull the plug the way main does
	// on SIGTERM.
	time.Sleep(150 * time.Millisecond)
	shutdown()

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("POST failed: %v", r.err)
		}
		if r.status != StatusClientClosedRequest {
			t.Fatalf("status %d, want %d", r.status, StatusClientClosedRequest)
		}
		if r.code != "canceled" {
			t.Fatalf("code %q, want canceled", r.code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown did not cancel the in-flight job")
	}

	// The drained engine closes promptly: no worker is still enumerating.
	closed := make(chan error, 1)
	go func() { closed <- eng.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("engine.Close hung after shutdown")
	}
}
