package phomerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSentinelIs(t *testing.T) {
	err := New(CodeLimit, "23 coins exceed limit %d", 22)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("errors.Is(%v, ErrLimit) = false", err)
	}
	for _, other := range []*Error{ErrBadInput, ErrIntractable, ErrCanceled, ErrDeadline, ErrUnavailable, ErrConflict} {
		if errors.Is(err, other) {
			t.Fatalf("errors.Is(%v, %v) = true", err, other)
		}
	}
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeLimit {
		t.Fatalf("errors.As code = %v, want CodeLimit", e.Code)
	}
}

func TestWrapPreservesInnermostCode(t *testing.T) {
	if Wrap(CodeBadInput, nil) != nil {
		t.Fatal("Wrap(nil) != nil")
	}
	inner := New(CodeCanceled, "canceled mid-compile")
	outer := Wrap(CodeUnknown, fmt.Errorf("solve: %w", inner))
	if !errors.Is(outer, ErrCanceled) {
		t.Fatalf("wrapped error lost its inner code: %v", outer)
	}
	if CodeOf(outer) != CodeCanceled {
		t.Fatalf("CodeOf = %v, want CodeCanceled", CodeOf(outer))
	}

	plain := Wrap(CodeBadInput, errors.New("negative probability"))
	if CodeOf(plain) != CodeBadInput {
		t.Fatalf("CodeOf = %v, want CodeBadInput", CodeOf(plain))
	}
}

func TestCodeOfContextErrors(t *testing.T) {
	if got := CodeOf(context.Canceled); got != CodeCanceled {
		t.Fatalf("CodeOf(context.Canceled) = %v", got)
	}
	if got := CodeOf(fmt.Errorf("job: %w", context.DeadlineExceeded)); got != CodeDeadline {
		t.Fatalf("CodeOf(wrapped DeadlineExceeded) = %v", got)
	}
	if got := CodeOf(errors.New("mystery")); got != CodeUnknown {
		t.Fatalf("CodeOf(mystery) = %v", got)
	}
}

func TestFromContext(t *testing.T) {
	if err := FromContext(context.Background()); err != nil {
		t.Fatalf("FromContext(Background) = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("FromContext(cancelled) = %v: want both ErrCanceled and context.Canceled", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	derr := FromContext(dctx)
	if !errors.Is(derr, ErrDeadline) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("FromContext(deadline) = %v: want both ErrDeadline and context.DeadlineExceeded", derr)
	}
}

func TestCheckpoint(t *testing.T) {
	var nilCP *Checkpoint
	if err := nilCP.Check(); err != nil {
		t.Fatalf("nil checkpoint Check = %v", err)
	}
	if err := nilCP.CheckNow(); err != nil {
		t.Fatalf("nil checkpoint CheckNow = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cp := NewCheckpoint(ctx)
	for i := 0; i < 10*CheckInterval; i++ {
		if err := cp.Check(); err != nil {
			t.Fatalf("live context fired at iteration %d: %v", i, err)
		}
	}
	cancel()
	var got error
	for i := 0; i < CheckInterval; i++ {
		if got = cp.Check(); got != nil {
			break
		}
	}
	if !errors.Is(got, ErrCanceled) {
		t.Fatalf("cancelled checkpoint within one interval = %v, want ErrCanceled", got)
	}
	if err := cp.CheckNow(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("CheckNow after cancel = %v", err)
	}
}

func TestConflictSentinel(t *testing.T) {
	err := New(CodeConflict, "instance at version %d, caller expected %d", 7, 3)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("errors.Is(%v, ErrConflict) = false", err)
	}
	if CodeOf(err) != CodeConflict {
		t.Fatalf("CodeOf = %v, want CodeConflict", CodeOf(err))
	}
	if ErrConflict.Error() != "conflict" {
		t.Fatalf("sentinel text = %q", ErrConflict.Error())
	}
}

func TestErrorStrings(t *testing.T) {
	if ErrIntractable.Error() != "intractable" {
		t.Fatalf("sentinel text = %q", ErrIntractable.Error())
	}
	err := New(CodeBadInput, "edge %d probability %s outside [0,1]", 3, "7/2")
	if want := "edge 3 probability 7/2 outside [0,1]"; err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
	if Code(200).String() != "code(200)" {
		t.Fatalf("out-of-range code String = %q", Code(200).String())
	}
}
