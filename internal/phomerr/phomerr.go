// Package phomerr defines the typed error taxonomy and the cooperative
// cancellation primitives of the v2 request API.
//
// Every failure the public API can report carries a Code classifying
// its failure mode (bad input, a resource limit, proven intractability,
// cancellation, a missed deadline, an unavailable engine), wrapped in
// an *Error that is errors.Is/As-compatible both with the per-code
// sentinels (ErrBadInput, ErrCanceled, …) and — for the cancellation
// codes — with the context package's own context.Canceled and
// context.DeadlineExceeded. The serving layer maps codes to HTTP
// statuses; see CodeOf.
//
// The Checkpoint type is the cancellation side of the contract: long
// computations (possible-world enumeration, compile-time dynamic
// programs) poll a Checkpoint from their inner loops, and a cancelled
// context makes the computation abort within one checkpoint interval
// (CheckInterval iterations) of the cancellation.
package phomerr

import (
	"context"
	"errors"
	"fmt"
)

// Code classifies a failure of the request API.
type Code uint8

const (
	// CodeUnknown marks errors outside the taxonomy (internal failures,
	// unwrapped causes). It has no sentinel and maps to a generic
	// server-side failure.
	CodeUnknown Code = iota
	// CodeBadInput: the request itself is malformed — an empty query,
	// an invalid probability, out-of-range options.
	CodeBadInput
	// CodeLimit: the job exceeded a configured resource cap (the
	// brute-force coin limit, the lineage match limit).
	CodeLimit
	// CodeIntractable: the input pair lies in a #P-hard cell of
	// Tables 1–3 and the exponential fallback is disabled.
	CodeIntractable
	// CodeCanceled: the request's context was cancelled.
	CodeCanceled
	// CodeDeadline: the request's deadline (or per-job timeout) passed.
	CodeDeadline
	// CodeUnavailable: the serving component cannot accept work (a
	// closed engine, a shutting-down server).
	CodeUnavailable
	// CodeConflict: an optimistic concurrency check failed — the
	// caller's if_version no longer matches the instance's current
	// version. The request was well-formed; retrying against the fresh
	// version may succeed.
	CodeConflict

	numCodes = iota // count of defined codes, for validation
)

var codeNames = [numCodes]string{
	"unknown", "bad-input", "limit", "intractable", "canceled", "deadline", "unavailable", "conflict",
}

func (c Code) String() string {
	if int(c) >= len(codeNames) {
		return fmt.Sprintf("code(%d)", int(c))
	}
	return codeNames[c]
}

// Error is a typed failure: a taxonomy code plus an optional wrapped
// cause. It implements the errors.Is/As protocol so that
//
//	errors.Is(err, phomerr.ErrCanceled)
//
// holds for any error whose chain contains an *Error with CodeCanceled
// (and likewise for the other sentinels), while errors.Is(err,
// context.Canceled) keeps working through Unwrap.
type Error struct {
	Code Code
	Err  error // wrapped cause; nil for bare sentinels
}

func (e *Error) Error() string {
	if e.Err != nil {
		return e.Err.Error()
	}
	return e.Code.String()
}

// Unwrap exposes the wrapped cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is makes any *Error with a matching code satisfy errors.Is against
// the bare sentinels (an *Error target with no cause of its own).
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Err == nil && t.Code == e.Code
}

// The per-code sentinels. Compare with errors.Is; never mutate.
var (
	ErrBadInput    = &Error{Code: CodeBadInput}
	ErrLimit       = &Error{Code: CodeLimit}
	ErrIntractable = &Error{Code: CodeIntractable}
	ErrCanceled    = &Error{Code: CodeCanceled}
	ErrDeadline    = &Error{Code: CodeDeadline}
	ErrUnavailable = &Error{Code: CodeUnavailable}
	ErrConflict    = &Error{Code: CodeConflict}
)

// New builds a typed error from a format string.
func New(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Err: fmt.Errorf(format, args...)}
}

// Wrap attaches a code to an existing error, preserving the cause for
// errors.Is/As. Wrapping nil returns nil; wrapping an error that
// already carries a code anywhere in its chain returns it unchanged
// (the innermost classification wins — a cancelled compile inside a
// larger operation stays CodeCanceled).
func Wrap(code Code, err error) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return err
	}
	return &Error{Code: code, Err: err}
}

// CodeOf extracts the taxonomy code from an error chain, mapping bare
// context errors to their cancellation codes and everything unknown to
// CodeUnknown.
func CodeOf(err error) Code {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	switch {
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	}
	return CodeUnknown
}

// FromContext converts a context's failure state into its typed error:
// nil while ctx is live, ErrCanceled/ErrDeadline (wrapping ctx.Err())
// once it is done. It is the single translation point between the
// context package and the taxonomy.
func FromContext(ctx context.Context) error {
	switch err := ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeDeadline, Err: err}
	default:
		return &Error{Code: CodeCanceled, Err: err}
	}
}

// CheckInterval is how many loop iterations a checkpointed computation
// may run between context polls: the cancellation contract is that a
// cancelled context aborts the computation within one interval (plus
// the cost of a single iteration).
const CheckInterval = 1024

// Checkpoint is a cheap cancellation poll for tight loops: Check
// increments a counter and consults the context only every
// CheckInterval-th call, so the common case costs one increment and
// one branch. The zero interval of a nil Checkpoint never fails, so
// context-free call paths can pass nil all the way down.
//
// A Checkpoint is single-goroutine state: each computation owns its
// own (they are never shared across workers).
type Checkpoint struct {
	ctx context.Context
	n   uint32
}

// NewCheckpoint returns a checkpoint polling ctx. A nil or Background
// context yields checkpoints that never fire, at the same per-call
// cost.
func NewCheckpoint(ctx context.Context) *Checkpoint {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Checkpoint{ctx: ctx}
}

// Check returns nil in the common case and the context's typed
// cancellation error (ErrCanceled/ErrDeadline) on the polls where the
// context turns out to be done. Nil receivers always return nil.
func (c *Checkpoint) Check() error {
	if c == nil {
		return nil
	}
	c.n++
	if c.n%CheckInterval != 0 {
		return nil
	}
	return FromContext(c.ctx)
}

// CheckNow polls the context immediately, bypassing the interval — for
// checkpoint sites that are already coarse (per dispatch route, per
// component) where the amortization would only delay the abort.
func (c *Checkpoint) CheckNow() error {
	if c == nil {
		return nil
	}
	return FromContext(c.ctx)
}
