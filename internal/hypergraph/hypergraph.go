package hypergraph

import "sort"

// Hypergraph is a finite hypergraph over vertices 0 … NumVertices−1.
// Hyperedges are stored as sorted slices of distinct vertices; empty
// hyperedges are not allowed at construction (they arise only internally
// during elimination, where they are dropped, following Definition 4.7).
type Hypergraph struct {
	NumVertices int
	Edges       [][]int
}

// New returns a hypergraph with n vertices and no hyperedges.
func New(n int) *Hypergraph { return &Hypergraph{NumVertices: n} }

// AddEdge inserts a hyperedge (normalized: sorted, deduplicated). Empty
// edges and out-of-range vertices panic.
func (h *Hypergraph) AddEdge(vs ...int) {
	if len(vs) == 0 {
		panic("hypergraph: empty hyperedge")
	}
	e := append([]int(nil), vs...)
	sort.Ints(e)
	out := e[:0]
	for i, v := range e {
		if v < 0 || v >= h.NumVertices {
			panic("hypergraph: vertex out of range")
		}
		if i == 0 || v != e[i-1] {
			out = append(out, v)
		}
	}
	h.Edges = append(h.Edges, out)
}

// incident returns (copies of) the current hyperedges containing v.
func incident(edges [][]int, v int) [][]int {
	var out [][]int
	for _, e := range edges {
		if contains(e, v) {
			out = append(out, e)
		}
	}
	return out
}

func contains(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

func subset(a, b []int) bool { // both sorted
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

// IsBetaLeaf reports whether vertex v is a β-leaf of the hypergraph: the
// hyperedges containing v are totally ordered by inclusion
// (Definition 4.7, after [10]).
func (h *Hypergraph) IsBetaLeaf(v int) bool {
	return isBetaLeaf(h.Edges, v)
}

func isBetaLeaf(edges [][]int, v int) bool {
	inc := incident(edges, v)
	sort.Slice(inc, func(i, j int) bool { return len(inc[i]) < len(inc[j]) })
	for i := 0; i+1 < len(inc); i++ {
		if !subset(inc[i], inc[i+1]) {
			return false
		}
	}
	return true
}

// BetaEliminationOrder returns a β-elimination order for h if one exists
// (Definition 4.7): a sequence of vertices such that each is a β-leaf of
// the hypergraph obtained by removing the previous ones (dropping emptied
// hyperedges). The order lists every vertex of h; vertices in no
// hyperedge are trivially β-leaves. The second result reports whether h
// is β-acyclic.
//
// β-leaf elimination is confluent (removing one β-leaf cannot destroy
// another's property in a way that blocks elimination — see [10]), so the
// greedy strategy used here is a correct and polynomial-time decision
// procedure.
func (h *Hypergraph) BetaEliminationOrder() ([]int, bool) {
	edges := make([][]int, 0, len(h.Edges))
	for _, e := range h.Edges {
		edges = append(edges, append([]int(nil), e...))
	}
	alive := make([]bool, h.NumVertices)
	remaining := 0
	for v := 0; v < h.NumVertices; v++ {
		alive[v] = true
		remaining++
	}
	order := make([]int, 0, h.NumVertices)
	for remaining > 0 {
		found := -1
		for v := 0; v < h.NumVertices; v++ {
			if alive[v] && isBetaLeaf(edges, v) {
				found = v
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		order = append(order, found)
		alive[found] = false
		remaining--
		edges = removeVertex(edges, found)
	}
	return order, true
}

func removeVertex(edges [][]int, v int) [][]int {
	var out [][]int
	for _, e := range edges {
		if !contains(e, v) {
			out = append(out, e)
			continue
		}
		ne := make([]int, 0, len(e)-1)
		for _, u := range e {
			if u != v {
				ne = append(ne, u)
			}
		}
		if len(ne) > 0 {
			out = append(out, ne)
		}
	}
	return out
}

// IsBetaAcyclic reports whether h admits a β-elimination order.
func (h *Hypergraph) IsBetaAcyclic() bool {
	_, ok := h.BetaEliminationOrder()
	return ok
}

// VerifyBetaEliminationOrder checks that order is a valid β-elimination
// order for h: it must enumerate each vertex exactly once, and each
// vertex must be a β-leaf at its turn.
func (h *Hypergraph) VerifyBetaEliminationOrder(order []int) bool {
	if len(order) != h.NumVertices {
		return false
	}
	seen := make([]bool, h.NumVertices)
	edges := make([][]int, 0, len(h.Edges))
	for _, e := range h.Edges {
		edges = append(edges, append([]int(nil), e...))
	}
	for _, v := range order {
		if v < 0 || v >= h.NumVertices || seen[v] {
			return false
		}
		seen[v] = true
		if !isBetaLeaf(edges, v) {
			return false
		}
		edges = removeVertex(edges, v)
	}
	return true
}

// IsAlphaAcyclic reports whether h is α-acyclic, via the GYO reduction:
// repeatedly remove vertices occurring in a single hyperedge ("ears") and
// hyperedges contained in other hyperedges; h is α-acyclic iff this
// empties the hypergraph. β-acyclicity strictly implies α-acyclicity;
// this is provided for completeness of the acyclicity toolbox.
func (h *Hypergraph) IsAlphaAcyclic() bool {
	edges := make([][]int, 0, len(h.Edges))
	for _, e := range h.Edges {
		edges = append(edges, append([]int(nil), e...))
	}
	for {
		changed := false
		// Remove vertices occurring in exactly one hyperedge.
		count := map[int]int{}
		for _, e := range edges {
			for _, v := range e {
				count[v]++
			}
		}
		var next [][]int
		for _, e := range edges {
			ne := e[:0:0]
			for _, v := range e {
				if count[v] > 1 {
					ne = append(ne, v)
				} else {
					changed = true
				}
			}
			if len(ne) > 0 {
				next = append(next, ne)
			} else {
				changed = true
			}
		}
		edges = next
		// Remove hyperedges contained in another hyperedge.
		var kept [][]int
		for i, e := range edges {
			dominated := false
			for j, f := range edges {
				if i == j {
					continue
				}
				if subset(e, f) && (len(e) < len(f) || i > j) {
					dominated = true
					break
				}
			}
			if dominated {
				changed = true
			} else {
				kept = append(kept, e)
			}
		}
		edges = kept
		if len(edges) == 0 {
			return true
		}
		if !changed {
			return false
		}
	}
}
