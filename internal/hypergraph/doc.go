// Package hypergraph implements hypergraphs and the acyclicity notions the
// paper relies on: β-leaves, β-elimination orders and β-acyclicity
// (Definition 4.7), plus α-acyclicity (GYO reduction) for context. The
// β-acyclicity test certifies that the lineages built by the tractable
// cases of §4.2 have the structure required by Theorem 4.9.
package hypergraph
