package hypergraph

import (
	"math/rand"
	"testing"
)

func TestNestedFamilyIsBetaAcyclic(t *testing.T) {
	// Clauses totally ordered by inclusion: the canonical β-acyclic case.
	h := New(4)
	h.AddEdge(0)
	h.AddEdge(0, 1)
	h.AddEdge(0, 1, 2)
	h.AddEdge(0, 1, 2, 3)
	order, ok := h.BetaEliminationOrder()
	if !ok {
		t.Fatal("nested family should be β-acyclic")
	}
	if !h.VerifyBetaEliminationOrder(order) {
		t.Fatalf("returned order %v does not verify", order)
	}
}

func TestTriangleNotBetaAcyclic(t *testing.T) {
	// {a,b}, {b,c}, {a,c}: every vertex lies in two incomparable edges.
	h := New(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(0, 2)
	if h.IsBetaAcyclic() {
		t.Fatal("triangle should not be β-acyclic")
	}
	if h.IsAlphaAcyclic() {
		t.Fatal("triangle should not be α-acyclic either")
	}
}

func TestAlphaButNotBetaAcyclic(t *testing.T) {
	// The classic separator: adding {a,b,c} to the triangle makes it
	// α-acyclic but not β-acyclic.
	h := New(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(0, 2)
	h.AddEdge(0, 1, 2)
	if !h.IsAlphaAcyclic() {
		t.Fatal("triangle + cover should be α-acyclic")
	}
	if h.IsBetaAcyclic() {
		t.Fatal("triangle + cover must not be β-acyclic (β-acyclicity is hereditary)")
	}
}

func TestBetaImpliesAlpha(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		h := randHypergraph(r)
		if h.IsBetaAcyclic() && !h.IsAlphaAcyclic() {
			t.Fatalf("β-acyclic hypergraph not α-acyclic: %v", h.Edges)
		}
	}
}

func randHypergraph(r *rand.Rand) *Hypergraph {
	n := 1 + r.Intn(6)
	h := New(n)
	m := r.Intn(6)
	for k := 0; k < m; k++ {
		w := 1 + r.Intn(n)
		vs := make([]int, w)
		for i := range vs {
			vs[i] = r.Intn(n)
		}
		h.AddEdge(vs...)
	}
	return h
}

// TestEliminationOrderAlwaysVerifies: whenever the greedy finds an order,
// the independent verifier must accept it.
func TestEliminationOrderAlwaysVerifies(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		h := randHypergraph(r)
		if order, ok := h.BetaEliminationOrder(); ok {
			if !h.VerifyBetaEliminationOrder(order) {
				t.Fatalf("greedy order %v rejected by verifier on %v", order, h.Edges)
			}
		}
	}
}

// TestBetaAcyclicityHereditary: removing a vertex from a β-acyclic
// hypergraph keeps it β-acyclic (β-acyclicity is closed under vertex
// deletion, unlike α-acyclicity).
func TestBetaAcyclicityHereditary(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		h := randHypergraph(r)
		if !h.IsBetaAcyclic() {
			continue
		}
		v := r.Intn(h.NumVertices)
		sub := New(h.NumVertices)
		for _, e := range h.Edges {
			var ne []int
			for _, u := range e {
				if u != v {
					ne = append(ne, u)
				}
			}
			if len(ne) > 0 {
				sub.AddEdge(ne...)
			}
		}
		if !sub.IsBetaAcyclic() {
			t.Fatalf("vertex deletion broke β-acyclicity: %v minus %d", h.Edges, v)
		}
	}
}

func TestIsBetaLeaf(t *testing.T) {
	h := New(3)
	h.AddEdge(0, 1)
	h.AddEdge(0, 1, 2)
	if !h.IsBetaLeaf(0) {
		t.Fatal("vertex 0's edges are nested: should be a β-leaf")
	}
	h2 := New(3)
	h2.AddEdge(0, 1)
	h2.AddEdge(0, 2)
	if h2.IsBetaLeaf(0) {
		t.Fatal("vertex 0 lies in incomparable edges: not a β-leaf")
	}
	if !h2.IsBetaLeaf(1) || !h2.IsBetaLeaf(2) {
		t.Fatal("vertices 1 and 2 are in a single edge each: β-leaves")
	}
}

func TestVerifyRejectsBadOrders(t *testing.T) {
	h := New(3)
	h.AddEdge(0, 1)
	h.AddEdge(0, 2)
	// 0 first is invalid (not a β-leaf); 1, 2, 0 is valid.
	if h.VerifyBetaEliminationOrder([]int{0, 1, 2}) {
		t.Fatal("verifier accepted a non-β-leaf first")
	}
	if !h.VerifyBetaEliminationOrder([]int{1, 2, 0}) {
		t.Fatal("verifier rejected a valid order")
	}
	if h.VerifyBetaEliminationOrder([]int{1, 1, 0}) {
		t.Fatal("verifier accepted a repeated vertex")
	}
	if h.VerifyBetaEliminationOrder([]int{1, 2}) {
		t.Fatal("verifier accepted a short order")
	}
}

func TestEmptyHypergraph(t *testing.T) {
	h := New(3) // vertices but no edges
	order, ok := h.BetaEliminationOrder()
	if !ok || len(order) != 3 {
		t.Fatal("edgeless hypergraph is trivially β-acyclic")
	}
	if !h.IsAlphaAcyclic() {
		t.Fatal("edgeless hypergraph is α-acyclic")
	}
}
