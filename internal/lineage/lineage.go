package lineage

import (
	"fmt"
	"math/big"

	"phom/internal/betadnf"
	"phom/internal/boolform"
	"phom/internal/graph"
	"phom/internal/xprop"
)

// ChainLineage is the lineage of a 1WP query on a DWT instance, in both
// generic DNF form (over instance edge indices) and the chain-system form
// consumed by the PTIME evaluator.
type ChainLineage struct {
	DNF        *boolform.DNF        // variables: instance edge indices
	System     *betadnf.ChainSystem // nodes: instance vertices
	Probs      []*big.Rat           // per node: probability of its parent edge
	ParentEdge []int                // per node: instance edge index of its parent edge; −1 for roots
}

// Path1WPOnDWT builds the lineage of the 1WP query q on the DWT instance
// h (Proposition 4.10). The query must have at least one edge.
func Path1WPOnDWT(q *graph.Graph, h *graph.ProbGraph) (*ChainLineage, error) {
	labels, ok := pathLabels(q)
	if !ok {
		return nil, fmt.Errorf("lineage: query is not a 1WP: %v", q)
	}
	m := len(labels)
	if m == 0 {
		return nil, fmt.Errorf("lineage: edgeless 1WP query has trivial lineage")
	}
	g := h.G
	if !g.IsDWT() {
		return nil, fmt.Errorf("lineage: instance is not a DWT: %v", g)
	}
	n := g.NumVertices()
	parent := make([]int, n)
	parentEdge := make([]int, n)
	probs := make([]*big.Rat, n)
	for v := 0; v < n; v++ {
		parent[v] = -1
		parentEdge[v] = -1
		probs[v] = graph.RatOne
		if in := g.InEdges(graph.Vertex(v)); len(in) == 1 {
			e := g.Edge(in[0])
			parent[v] = int(e.From)
			parentEdge[v] = in[0]
			probs[v] = h.Prob(in[0])
		}
	}
	chainLen := make([]int, n)
	dnf := boolform.NewDNF(g.NumEdges())
	for v := 0; v < n; v++ {
		// Candidate minimal match: the downward path of m edges ending at
		// v; labels must read R1 … Rm from top to bottom.
		clause := make([]boolform.Var, 0, m)
		cur := v
		ok := true
		for i := m - 1; i >= 0; i-- {
			ei := parentEdge[cur]
			if ei < 0 || g.Edge(ei).Label != labels[i] {
				ok = false
				break
			}
			clause = append(clause, boolform.Var(ei))
			cur = parent[cur]
		}
		if ok {
			chainLen[v] = m
			dnf.AddClause(clause...)
		}
	}
	return &ChainLineage{
		DNF:        dnf,
		System:     &betadnf.ChainSystem{Parent: parent, ChainLen: chainLen},
		Probs:      probs,
		ParentEdge: parentEdge,
	}, nil
}

// pathLabels returns the label sequence R1 … Rm of a 1WP query, following
// the unique walk from its source.
func pathLabels(q *graph.Graph) ([]graph.Label, bool) {
	if !q.Is1WP() {
		return nil, false
	}
	if q.NumVertices() == 1 {
		return nil, true
	}
	var start graph.Vertex = -1
	for v := 0; v < q.NumVertices(); v++ {
		if q.InDegree(graph.Vertex(v)) == 0 {
			start = graph.Vertex(v)
			break
		}
	}
	var labels []graph.Label
	v := start
	for len(q.OutEdges(v)) == 1 {
		e := q.Edge(q.OutEdges(v)[0])
		labels = append(labels, e.Label)
		v = e.To
	}
	return labels, true
}

// IntervalLineage is the lineage of a connected query on a 2WP instance:
// the generic DNF (over instance edge indices) plus the interval-system
// form over edges in path order.
type IntervalLineage struct {
	DNF    *boolform.DNF           // variables: instance edge indices
	System *betadnf.IntervalSystem // variables: path positions 0 … n−2
	Probs  []*big.Rat              // per position
	EdgeAt []int                   // path position → instance edge index
}

// PathOrder returns the vertices of a 2WP instance in path order
// (starting from the endpoint with the smaller vertex id, for
// determinism) and, per position i, the instance edge index linking
// position i to i+1.
func PathOrder(g *graph.Graph) ([]graph.Vertex, []int, error) {
	if !g.Is2WP() {
		return nil, nil, fmt.Errorf("lineage: instance is not a 2WP: %v", g)
	}
	n := g.NumVertices()
	if n == 1 {
		return []graph.Vertex{0}, nil, nil
	}
	start := graph.Vertex(-1)
	for v := 0; v < n; v++ {
		if g.UndirectedDegree(graph.Vertex(v)) == 1 {
			start = graph.Vertex(v)
			break
		}
	}
	order := make([]graph.Vertex, 0, n)
	edges := make([]int, 0, n-1)
	prev := graph.Vertex(-1)
	cur := start
	for {
		order = append(order, cur)
		next := graph.Vertex(-1)
		for _, u := range g.Neighbors(cur) {
			if u != prev {
				next = u
				break
			}
		}
		if next < 0 {
			break
		}
		if ei, ok := g.EdgeIndex(cur, next); ok {
			edges = append(edges, ei)
		} else if ei, ok := g.EdgeIndex(next, cur); ok {
			edges = append(edges, ei)
		}
		prev, cur = cur, next
	}
	if len(order) != n {
		return nil, nil, fmt.Errorf("lineage: 2WP walk covered %d of %d vertices", len(order), n)
	}
	return order, edges, nil
}

// ConnectedOn2WP builds the lineage of the connected query q on the 2WP
// instance h (Proposition 4.11). The query must have at least one edge.
func ConnectedOn2WP(q *graph.Graph, h *graph.ProbGraph) (*IntervalLineage, error) {
	if !q.IsConnected() {
		return nil, fmt.Errorf("lineage: query is not connected: %v", q)
	}
	if q.NumEdges() == 0 {
		return nil, fmt.Errorf("lineage: edgeless query has trivial lineage")
	}
	order, edgeAt, err := PathOrder(h.G)
	if err != nil {
		return nil, err
	}
	n := len(order)
	dnf := boolform.NewDNF(h.G.NumEdges())
	sys := &betadnf.IntervalSystem{NumVars: n - 1}
	probs := make([]*big.Rat, n-1)
	for i := range probs {
		probs[i] = h.Prob(edgeAt[i])
	}
	// Minimal matches are the inclusion-minimal subpaths [i, j] with
	// q ⇝ subpath. Homomorphism into a longer subpath is implied by
	// homomorphism into a shorter one it contains, so for each left
	// endpoint i the admissible right endpoints are upward closed and the
	// minimal one is nondecreasing in i: a two-pointer sweep suffices.
	j := 0
	for i := 0; i < n; i++ {
		if j < i {
			j = i
		}
		for j < n && !queryMapsToSubpath(q, h.G, order, i, j) {
			j++
		}
		if j == n {
			break
		}
		// Clause: edge positions i … j−1 (nonempty since q has an edge).
		sys.Clauses = append(sys.Clauses, betadnf.Interval{Lo: i, Hi: j - 1})
		clause := make([]boolform.Var, 0, j-i)
		for p := i; p < j; p++ {
			clause = append(clause, boolform.Var(edgeAt[p]))
		}
		dnf.AddClause(clause...)
	}
	return &IntervalLineage{DNF: dnf, System: sys, Probs: probs, EdgeAt: edgeAt}, nil
}

// queryMapsToSubpath decides q ⇝ H[order[i..j]] using the X-property
// algorithm: the subpath trivially has the X-property w.r.t. the order
// a_i < … < a_j (§4.2).
func queryMapsToSubpath(q, g *graph.Graph, order []graph.Vertex, i, j int) bool {
	vs := order[i : j+1]
	sub, _ := g.InducedSubgraph(vs)
	return xprop.HasHomomorphism(q, sub, xprop.IdentityOrder(len(vs)))
}
