// Package lineage builds Boolean lineage representations (Definition 4.6)
// of query graphs on probabilistic instance graphs for the two tractable
// labeled cases of §4.2:
//
//   - Proposition 4.10: a one-way path query on a downward tree instance.
//     Minimal matches are downward paths with the query's label sequence;
//     at most one ends at each instance vertex, so the lineage is a
//     positive DNF with O(|H|) clauses, each an ancestor chain.
//   - Proposition 4.11: a connected query on a two-way path instance.
//     Minimal matches are connected subpaths, identified by their
//     endpoints; homomorphism into each candidate subpath is decided with
//     the X-property algorithm of Theorem 4.13.
//
// Both lineages are β-acyclic (verified in tests via package hypergraph)
// and are evaluated in polynomial time by package betadnf.
package lineage
