package lineage

import (
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/boolform"
	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/hypergraph"
)

var twoLabels = []graph.Label{"R", "S"}

// dnfHypergraph views a DNF as the hypergraph of Definition 4.8.
func dnfHypergraph(f *boolform.DNF) *hypergraph.Hypergraph {
	h := hypergraph.New(f.NumVars)
	for _, c := range f.Clauses {
		if len(c) == 0 {
			continue
		}
		vs := make([]int, len(c))
		for i, v := range c {
			vs[i] = int(v)
		}
		h.AddEdge(vs...)
	}
	return h
}

// worldEval checks a lineage DNF against the definition: it must be true
// on exactly the worlds admitting a homomorphism (Definition 4.6).
func worldEval(t *testing.T, q *graph.Graph, h *graph.ProbGraph, dnf *boolform.DNF) {
	t.Helper()
	ne := h.G.NumEdges()
	if ne > 14 {
		return
	}
	nu := make([]bool, ne)
	for mask := 0; mask < 1<<uint(ne); mask++ {
		for i := 0; i < ne; i++ {
			nu[i] = mask&(1<<uint(i)) != 0
		}
		world := h.G.SubgraphKeeping(nu)
		want := graph.HasHomomorphism(q, world)
		if got := dnf.Eval(nu); got != want {
			t.Fatalf("lineage wrong at world %v: dnf=%v hom=%v\nq=%v\nh=%v\ndnf=%v",
				nu, got, want, q, h.G, dnf)
		}
	}
}

func TestPath1WPOnDWTLineage(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 150; trial++ {
		q := gen.Rand1WP(r, 2+r.Intn(3), twoLabels)
		inst := gen.RandDWT(r, 1+r.Intn(9), twoLabels)
		h := gen.RandProb(r, inst, 0.3)
		lin, err := Path1WPOnDWT(q, h)
		if err != nil {
			t.Fatal(err)
		}
		// The lineage captures homomorphism on every world.
		worldEval(t, q, h, lin.DNF)
		// The lineage is β-acyclic (§4.2: eliminable bottom-up).
		if !dnfHypergraph(lin.DNF).IsBetaAcyclic() {
			t.Fatalf("Prop 4.10 lineage not β-acyclic: %v", lin.DNF)
		}
		// The chain system agrees with the generic DNF probability.
		probs := make([]*big.Rat, h.G.NumEdges())
		for i := range probs {
			probs[i] = h.Prob(i)
		}
		want := lin.DNF.ShannonProb(probs)
		got, err := lin.System.Prob(lin.Probs)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("chain system %s vs DNF %s", got.RatString(), want.RatString())
		}
	}
}

func TestPath1WPOnDWTRejects(t *testing.T) {
	h := graph.NewProbGraph(gen.RandDWT(rand.New(rand.NewSource(2)), 4, twoLabels))
	if _, err := Path1WPOnDWT(graph.Path2WP(graph.Fwd("R"), graph.Bwd("R")), h); err == nil {
		t.Fatal("2WP query accepted")
	}
	if _, err := Path1WPOnDWT(graph.Path1WP(), h); err == nil {
		t.Fatal("edgeless query accepted")
	}
	cyc := graph.New(2)
	cyc.MustAddEdge(0, 1, "R")
	cyc.MustAddEdge(1, 0, "R")
	if _, err := Path1WPOnDWT(graph.Path1WP("R"), graph.NewProbGraph(cyc)); err == nil {
		t.Fatal("non-DWT instance accepted")
	}
}

func TestPathOrder(t *testing.T) {
	h := graph.Path2WP(graph.Fwd("R"), graph.Bwd("S"), graph.Fwd("T"))
	order, edges, err := PathOrder(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 || len(edges) != 3 {
		t.Fatalf("order=%v edges=%v", order, edges)
	}
	if order[0] != 0 && order[0] != 3 {
		t.Fatalf("walk must start at an endpoint, got %v", order)
	}
	// Each consecutive pair must be joined by the listed edge.
	for i := 0; i < 3; i++ {
		e := h.Edge(edges[i])
		a, b := order[i], order[i+1]
		if !((e.From == a && e.To == b) || (e.From == b && e.To == a)) {
			t.Fatalf("edge %v does not join %v and %v", e, a, b)
		}
	}
}

func TestConnectedOn2WPLineage(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		q := gen.RandInClass(r, graph.ClassConnected, 1+r.Intn(4), twoLabels)
		if q.NumEdges() == 0 {
			continue
		}
		inst := gen.Rand2WP(r, 1+r.Intn(9), twoLabels)
		h := gen.RandProb(r, inst, 0.3)
		lin, err := ConnectedOn2WP(q, h)
		if err != nil {
			t.Fatal(err)
		}
		worldEval(t, q, h, lin.DNF)
		if !dnfHypergraph(lin.DNF).IsBetaAcyclic() {
			t.Fatalf("Prop 4.11 lineage not β-acyclic: %v", lin.DNF)
		}
		probs := make([]*big.Rat, h.G.NumEdges())
		for i := range probs {
			probs[i] = h.Prob(i)
		}
		want := lin.DNF.ShannonProb(probs)
		got, err := lin.System.Prob(lin.Probs)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("interval system %s vs DNF %s\nq=%v\nh=%v", got.RatString(), want.RatString(), q, h.G)
		}
	}
}

func TestConnectedOn2WPRejects(t *testing.T) {
	h := graph.NewProbGraph(graph.Path2WP(graph.Fwd("R")))
	disc, _ := graph.DisjointUnion(graph.Path1WP("R"), graph.Path1WP("R"))
	if _, err := ConnectedOn2WP(disc, h); err == nil {
		t.Fatal("disconnected query accepted")
	}
	tree := graph.New(4)
	tree.MustAddEdge(0, 1, "R")
	tree.MustAddEdge(0, 2, "R")
	tree.MustAddEdge(0, 3, "R")
	if _, err := ConnectedOn2WP(graph.Path1WP("R"), graph.NewProbGraph(tree)); err == nil {
		t.Fatal("branching instance accepted")
	}
}

// TestMinimalClausesOnly: the two-pointer sweep should not emit a clause
// strictly containing another clause with the same right endpoint going
// unnoticed — absorption keeps the formula small. We only check the count
// stays ≤ number of positions.
func TestClauseCountLinear(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		q := gen.RandInClass(r, graph.ClassConnected, 1+r.Intn(4), twoLabels)
		if q.NumEdges() == 0 {
			continue
		}
		inst := gen.Rand2WP(r, 2+r.Intn(20), twoLabels)
		h := gen.RandProb(r, inst, 0.5)
		lin, err := ConnectedOn2WP(q, h)
		if err != nil {
			t.Fatal(err)
		}
		if len(lin.System.Clauses) > inst.NumVertices() {
			t.Fatalf("%d clauses for %d vertices: sweep must be linear",
				len(lin.System.Clauses), inst.NumVertices())
		}
	}
}
