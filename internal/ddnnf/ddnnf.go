package ddnnf

import (
	"fmt"
	"math/big"
)

// Gate identifies a gate of a Circuit.
type Gate int

type kind uint8

const (
	kindFalse kind = iota
	kindTrue
	kindLit
	kindAnd
	kindOr
)

type gateData struct {
	kind   kind
	v      int  // for kindLit
	neg    bool // for kindLit
	inputs []Gate
}

// Circuit is an NNF Boolean circuit over variables 0 … NumVars−1, built
// bottom-up: gates can only reference previously created gates, so the
// circuit is acyclic by construction.
type Circuit struct {
	numVars int
	gates   []gateData
}

// New returns an empty circuit over n variables.
func New(n int) *Circuit { return &Circuit{numVars: n} }

// NumVars returns the number of variables.
func (c *Circuit) NumVars() int { return c.numVars }

// NumGates returns the number of gates created so far.
func (c *Circuit) NumGates() int { return len(c.gates) }

func (c *Circuit) add(g gateData) Gate {
	c.gates = append(c.gates, g)
	return Gate(len(c.gates) - 1)
}

// False returns a constant-false gate.
func (c *Circuit) False() Gate { return c.add(gateData{kind: kindFalse}) }

// True returns a constant-true gate.
func (c *Circuit) True() Gate { return c.add(gateData{kind: kindTrue}) }

// Literal returns the gate for variable v (negated if neg).
func (c *Circuit) Literal(v int, neg bool) Gate {
	if v < 0 || v >= c.numVars {
		panic(fmt.Sprintf("ddnnf: variable %d out of range", v))
	}
	return c.add(gateData{kind: kindLit, v: v, neg: neg})
}

// And returns a conjunction gate over the inputs. Zero inputs yield true.
func (c *Circuit) And(inputs ...Gate) Gate {
	if len(inputs) == 1 {
		return inputs[0]
	}
	return c.add(gateData{kind: kindAnd, inputs: append([]Gate(nil), inputs...)})
}

// Or returns a disjunction gate over the inputs. Zero inputs yield false.
func (c *Circuit) Or(inputs ...Gate) Gate {
	if len(inputs) == 1 {
		return inputs[0]
	}
	return c.add(gateData{kind: kindOr, inputs: append([]Gate(nil), inputs...)})
}

// Eval evaluates gate g under valuation nu.
func (c *Circuit) Eval(g Gate, nu []bool) bool {
	memo := make([]int8, len(c.gates)) // 0 unknown, 1 false, 2 true
	var rec func(Gate) bool
	rec = func(g Gate) bool {
		if memo[g] != 0 {
			return memo[g] == 2
		}
		gd := c.gates[g]
		var r bool
		switch gd.kind {
		case kindFalse:
			r = false
		case kindTrue:
			r = true
		case kindLit:
			r = nu[gd.v] != gd.neg
		case kindAnd:
			r = true
			for _, in := range gd.inputs {
				if !rec(in) {
					r = false
					break
				}
			}
		case kindOr:
			r = false
			for _, in := range gd.inputs {
				if rec(in) {
					r = true
					break
				}
			}
		}
		if r {
			memo[g] = 2
		} else {
			memo[g] = 1
		}
		return r
	}
	return rec(g)
}

// Prob computes the probability that gate g evaluates to true when
// variable v is true independently with probability probs[v]. The result
// is correct only for d-DNNF circuits (AND → ×, OR → +); validate with
// CheckDecomposable and CheckDeterministicExhaustive in tests.
func (c *Circuit) Prob(g Gate, probs []*big.Rat) *big.Rat {
	if len(probs) != c.numVars {
		panic("ddnnf: probability vector length mismatch")
	}
	memo := make([]*big.Rat, len(c.gates))
	one := big.NewRat(1, 1)
	var rec func(Gate) *big.Rat
	rec = func(g Gate) *big.Rat {
		if memo[g] != nil {
			return memo[g]
		}
		gd := c.gates[g]
		var r *big.Rat
		switch gd.kind {
		case kindFalse:
			r = new(big.Rat)
		case kindTrue:
			r = big.NewRat(1, 1)
		case kindLit:
			if gd.neg {
				r = new(big.Rat).Sub(one, probs[gd.v])
			} else {
				r = new(big.Rat).Set(probs[gd.v])
			}
		case kindAnd:
			r = big.NewRat(1, 1)
			for _, in := range gd.inputs {
				r.Mul(r, rec(in))
			}
		case kindOr:
			r = new(big.Rat)
			for _, in := range gd.inputs {
				r.Add(r, rec(in))
			}
		}
		memo[g] = r
		return r
	}
	return rec(g)
}

// VarSupport returns the set of variables the subcircuit rooted at g
// depends on (syntactically), as a sorted slice.
func (c *Circuit) VarSupport(g Gate) []int {
	memo := make(map[Gate]map[int]struct{})
	var rec func(Gate) map[int]struct{}
	rec = func(g Gate) map[int]struct{} {
		if s, ok := memo[g]; ok {
			return s
		}
		gd := c.gates[g]
		s := map[int]struct{}{}
		switch gd.kind {
		case kindLit:
			s[gd.v] = struct{}{}
		case kindAnd, kindOr:
			for _, in := range gd.inputs {
				for v := range rec(in) {
					s[v] = struct{}{}
				}
			}
		}
		memo[g] = s
		return s
	}
	set := rec(g)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// CheckDecomposable verifies property (ii) of Definition 5.3 on the
// subcircuit rooted at g: the inputs of every AND gate depend on pairwise
// disjoint variable sets.
func (c *Circuit) CheckDecomposable(g Gate) error {
	supports := make(map[Gate]map[int]struct{})
	var support func(Gate) map[int]struct{}
	support = func(g Gate) map[int]struct{} {
		if s, ok := supports[g]; ok {
			return s
		}
		gd := c.gates[g]
		s := map[int]struct{}{}
		switch gd.kind {
		case kindLit:
			s[gd.v] = struct{}{}
		case kindAnd, kindOr:
			for _, in := range gd.inputs {
				for v := range support(in) {
					s[v] = struct{}{}
				}
			}
		}
		supports[g] = s
		return s
	}
	seen := make(map[Gate]bool)
	var rec func(Gate) error
	rec = func(g Gate) error {
		if seen[g] {
			return nil
		}
		seen[g] = true
		gd := c.gates[g]
		if gd.kind == kindAnd {
			union := map[int]struct{}{}
			for _, in := range gd.inputs {
				for v := range support(in) {
					if _, dup := union[v]; dup {
						return fmt.Errorf("ddnnf: AND gate %d not decomposable on variable %d", g, v)
					}
					union[v] = struct{}{}
				}
			}
		}
		if gd.kind == kindAnd || gd.kind == kindOr {
			for _, in := range gd.inputs {
				if err := rec(in); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return rec(g)
}

// CheckDeterministicExhaustive verifies property (iii) of Definition 5.3
// on the subcircuit rooted at g by enumerating all valuations: under
// every valuation, at most one input of each OR gate is true. Exponential
// in NumVars; the test suite uses it on circuits with few variables.
func (c *Circuit) CheckDeterministicExhaustive(g Gate) error {
	if c.numVars > 24 {
		return fmt.Errorf("ddnnf: exhaustive determinism check refused for %d variables", c.numVars)
	}
	// Collect OR gates reachable from g.
	var ors []Gate
	seen := make(map[Gate]bool)
	var collect func(Gate)
	collect = func(g Gate) {
		if seen[g] {
			return
		}
		seen[g] = true
		gd := c.gates[g]
		if gd.kind == kindOr {
			ors = append(ors, g)
		}
		for _, in := range gd.inputs {
			collect(in)
		}
	}
	collect(g)
	nu := make([]bool, c.numVars)
	for mask := 0; mask < 1<<uint(c.numVars); mask++ {
		for v := 0; v < c.numVars; v++ {
			nu[v] = mask&(1<<uint(v)) != 0
		}
		for _, og := range ors {
			trues := 0
			for _, in := range c.gates[og].inputs {
				if c.Eval(in, nu) {
					trues++
				}
			}
			if trues > 1 {
				return fmt.Errorf("ddnnf: OR gate %d has %d true inputs under valuation %0*b", og, trues, c.numVars, mask)
			}
		}
	}
	return nil
}
