package ddnnf

import (
	"math/big"
	"testing"
)

func half() *big.Rat { return big.NewRat(1, 2) }

func TestConstants(t *testing.T) {
	c := New(1)
	tt, ff := c.True(), c.False()
	if !c.Eval(tt, []bool{false}) || c.Eval(ff, []bool{false}) {
		t.Fatal("constants broken")
	}
	if c.Prob(tt, []*big.Rat{half()}).Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatal("Prob(true) != 1")
	}
	if c.Prob(ff, []*big.Rat{half()}).Sign() != 0 {
		t.Fatal("Prob(false) != 0")
	}
}

func TestLiteralsAndNegation(t *testing.T) {
	c := New(2)
	x := c.Literal(0, false)
	notY := c.Literal(1, true)
	if !c.Eval(x, []bool{true, false}) || c.Eval(x, []bool{false, false}) {
		t.Fatal("literal eval broken")
	}
	if !c.Eval(notY, []bool{false, false}) || c.Eval(notY, []bool{false, true}) {
		t.Fatal("negated literal eval broken")
	}
	probs := []*big.Rat{big.NewRat(1, 3), big.NewRat(1, 4)}
	if c.Prob(x, probs).Cmp(big.NewRat(1, 3)) != 0 {
		t.Fatal("Prob(x) wrong")
	}
	if c.Prob(notY, probs).Cmp(big.NewRat(3, 4)) != 0 {
		t.Fatal("Prob(¬y) wrong")
	}
}

// xorCircuit builds the canonical d-DNNF for x ⊕ y:
// (x ∧ ¬y) ∨ (¬x ∧ y).
func xorCircuit() (*Circuit, Gate) {
	c := New(2)
	g := c.Or(
		c.And(c.Literal(0, false), c.Literal(1, true)),
		c.And(c.Literal(0, true), c.Literal(1, false)),
	)
	return c, g
}

func TestXorCircuit(t *testing.T) {
	c, g := xorCircuit()
	if err := c.CheckDecomposable(g); err != nil {
		t.Fatalf("xor should be decomposable: %v", err)
	}
	if err := c.CheckDeterministicExhaustive(g); err != nil {
		t.Fatalf("xor should be deterministic: %v", err)
	}
	probs := []*big.Rat{big.NewRat(1, 3), big.NewRat(1, 5)}
	// Pr = (1/3)(4/5) + (2/3)(1/5) = 4/15 + 2/15 = 6/15 = 2/5.
	if got := c.Prob(g, probs); got.Cmp(big.NewRat(2, 5)) != 0 {
		t.Fatalf("Prob(xor) = %s, want 2/5", got.RatString())
	}
}

func TestNonDecomposableDetected(t *testing.T) {
	c := New(1)
	g := c.And(c.Literal(0, false), c.Literal(0, false))
	if err := c.CheckDecomposable(g); err == nil {
		t.Fatal("x ∧ x should fail decomposability")
	}
}

func TestNonDeterministicDetected(t *testing.T) {
	c := New(2)
	g := c.Or(c.Literal(0, false), c.Literal(1, false))
	if err := c.CheckDeterministicExhaustive(g); err == nil {
		t.Fatal("x ∨ y should fail determinism (both can be true)")
	}
}

func TestOrSumOverstatesWithoutDeterminism(t *testing.T) {
	// Documents why determinism matters: Prob on a non-deterministic OR
	// overstates (1/2 + 1/2 = 1 instead of 3/4).
	c := New(2)
	g := c.Or(c.Literal(0, false), c.Literal(1, false))
	got := c.Prob(g, []*big.Rat{half(), half()})
	if got.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("expected the documented overcount of 1, got %s", got.RatString())
	}
}

func TestVarSupport(t *testing.T) {
	c := New(3)
	g := c.And(c.Literal(0, false), c.Or(c.Literal(2, true), c.False()))
	sup := c.VarSupport(g)
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Fatalf("support = %v, want [0 2]", sup)
	}
}

func TestSingleInputGatesCollapse(t *testing.T) {
	c := New(1)
	x := c.Literal(0, false)
	if c.And(x) != x || c.Or(x) != x {
		t.Fatal("single-input gates should collapse to their input")
	}
}

func TestEmptyGates(t *testing.T) {
	c := New(1)
	if !c.Eval(c.And(), []bool{false}) {
		t.Fatal("empty AND must be true")
	}
	if c.Eval(c.Or(), []bool{true}) {
		t.Fatal("empty OR must be false")
	}
}

func TestExhaustiveCheckRefusesLargeCircuits(t *testing.T) {
	c := New(30)
	g := c.True()
	if err := c.CheckDeterministicExhaustive(g); err == nil {
		t.Fatal("exhaustive check must refuse 30 variables")
	}
}
