package ddnnf

import (
	"fmt"
	"math/big"
)

// OpEmitter receives the flattened arithmetic of EmitOps: one Mul per
// AND input, one Add per OR input, Load/OneMinus for literals — the
// linear-time d-DNNF probability computation as straight-line code.
// Load yields the probability of circuit variable v (the emitter owns
// the mapping from variables to instance edges); Release returns a
// register whose value is no longer needed. Implemented by the Program
// builder adapters of internal/plan.
type OpEmitter interface {
	Load(v int) uint32
	Const(v *big.Rat) uint32
	Mul(a, b uint32) uint32
	Add(a, b uint32) uint32
	OneMinus(a uint32) uint32
	Release(r uint32)
	// Failed reports the emitter's sticky-error state (a lowering bug
	// or a cancelled context — plan.Builder polls its context from
	// inside the emit methods). The per-gate recursion consults it and
	// stops descending: emission after a failure would be no-ops
	// anyway, and cutting the traversal short is what makes a cancelled
	// circuit compile return within one checkpoint interval instead of
	// walking every remaining gate.
	Failed() bool
}

var (
	emitOne  = big.NewRat(1, 1)
	emitZero = new(big.Rat)
)

// EmitOps lowers the probability computation of the subcircuit rooted
// at g (the arithmetic of Prob: AND → ×, OR → +) to flat ops on em,
// returning the register holding the result. Gate results are memoized
// like in Prob, so shared subcircuits emit once; their registers are
// consequently shared by later consumers and never released.
func (c *Circuit) EmitOps(g Gate, em OpEmitter) (uint32, error) {
	if int(g) < 0 || int(g) >= len(c.gates) {
		return 0, fmt.Errorf("ddnnf: gate %d of %d", g, len(c.gates))
	}
	memo := make([]uint32, len(c.gates))
	done := make([]bool, len(c.gates))
	var rec func(Gate) uint32
	rec = func(g Gate) uint32 {
		if done[g] {
			return memo[g]
		}
		if em.Failed() {
			return 0 // sticky error; the builder's Finish reports it
		}
		gd := c.gates[g]
		var r uint32
		switch gd.kind {
		case kindFalse:
			r = em.Const(emitZero)
		case kindTrue:
			r = em.Const(emitOne)
		case kindLit:
			if gd.neg {
				lit := em.Load(gd.v)
				r = em.OneMinus(lit)
				em.Release(lit)
			} else {
				r = em.Load(gd.v)
			}
		case kindAnd, kindOr:
			if len(gd.inputs) == 0 {
				if gd.kind == kindAnd {
					r = em.Const(emitOne)
				} else {
					r = em.Const(emitZero)
				}
				break
			}
			// Fold inputs left to right. Intermediate accumulators are
			// fresh registers and releasable; input registers may be
			// memoized gates shared with other parents, so they are not.
			acc := rec(gd.inputs[0])
			fresh := false
			for _, in := range gd.inputs[1:] {
				ri := rec(in)
				var next uint32
				if gd.kind == kindAnd {
					next = em.Mul(acc, ri)
				} else {
					next = em.Add(acc, ri)
				}
				if fresh {
					em.Release(acc)
				}
				acc, fresh = next, true
			}
			r = acc
		}
		memo[g], done[g] = r, true
		return r
	}
	return rec(g), nil
}
