// Package ddnnf implements deterministic decomposable negation normal
// form circuits (Definition 5.3 of the paper, after Darwiche [21]):
// Boolean circuits where negation is applied only to inputs, the inputs of
// every AND gate depend on disjoint variables (decomposability), and the
// inputs of every OR gate are mutually exclusive (determinism). On such
// circuits the Boolean probability computation problem is solvable in
// linear time by replacing AND with × and OR with +.
//
// The circuits built by package treeauto (the lineages of Proposition 5.4)
// are d-DNNF by construction; this package additionally provides
// structural and exhaustive validators used by the test suite.
package ddnnf
