// Package plan defines compiled solver plans: probability-independent
// evaluation artifacts that split PHom solving into a structural
// *compile* phase and a linear *evaluate* phase.
//
// Every tractable cell of the paper (Propositions 3.6, 4.10, 4.11 and
// 5.4/5.5, with Lemma 3.7 for disconnected instances) factors the same
// way: the expensive part of the algorithm — lineage construction,
// automaton compilation, class-driven normalization — depends only on
// the *structure* of the query and instance graphs, while the edge
// probabilities enter exclusively through a final linear dynamic program
// (betadnf.IntervalSystem.Prob, betadnf.ChainSystem.Prob,
// ddnnf.Circuit.Prob). A Plan captures the output of the structural
// phase; Evaluate replays only the linear phase against a probability
// vector indexed by the instance's edge list.
//
// Plans therefore amortize: one compilation serves arbitrarily many
// probability assignments over the same graph pair, which is the
// dominant serving pattern (what-if analysis, probability sweeps,
// streaming weight updates). Package engine caches plans keyed by the
// structure-only job hash of package graphio, and package core builds
// them via the compile functions of this package.
//
// Non-opaque plans lower (Lower) to the flat Program IR — straight-line
// code over a register file — which executes on two numeric substrates:
// Exec interprets it over exact rationals, and ExecFloat over float64
// intervals with per-op directed-rounding error tracking, returning a
// certified Enclosure of the exact answer. Package core routes between
// the substrates per the caller's precision options.
//
// All plans are immutable after construction and safe for concurrent
// Evaluate calls; every Evaluate returns a freshly allocated *big.Rat.
package plan
