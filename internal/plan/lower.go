package plan

import (
	"errors"
	"fmt"
	"math/big"
)

// This file lowers each plan form to the flat Program IR. The substrate
// evaluators own their arithmetic (betadnf and ddnnf EmitOps); the
// adapters here contribute only the variable-to-edge indirection that
// the tree evaluators apply at evaluation time, so the emitted ops load
// straight from the instance probability vector.

// ErrOpaque is returned when lowering or serializing an opaque plan:
// its evaluation re-runs an exponential baseline and is not expressible
// as straight-line arithmetic.
var ErrOpaque = errors.New("plan: opaque plan has no flattened program")

// edgeMapEmitter adapts a Builder to the OpEmitter interfaces of
// betadnf and ddnnf (structurally identical), translating substrate
// variable indices to instance edge indices through varEdge. When
// rootIsOne is set, a negative mapping loads the constant 1 (chain
// roots have no edge above them); otherwise it is an error, recorded
// sticky on the builder.
type edgeMapEmitter struct {
	b         *Builder
	varEdge   []int
	rootIsOne bool
}

func (m *edgeMapEmitter) Load(v int) uint32 {
	if v < 0 || v >= len(m.varEdge) {
		m.b.fail(fmt.Errorf("plan: lowering references variable %d of %d", v, len(m.varEdge)))
		return 0
	}
	ei := m.varEdge[v]
	if ei < 0 {
		if m.rootIsOne {
			return m.b.One()
		}
		m.b.fail(fmt.Errorf("plan: lowering references unmapped variable %d", v))
		return 0
	}
	return m.b.Load(ei)
}

func (m *edgeMapEmitter) Const(v *big.Rat) uint32  { return m.b.Const(v) }
func (m *edgeMapEmitter) Failed() bool             { return m.b.Failed() }
func (m *edgeMapEmitter) Mul(a, b uint32) uint32   { return m.b.Mul(a, b) }
func (m *edgeMapEmitter) Add(a, b uint32) uint32   { return m.b.Add(a, b) }
func (m *edgeMapEmitter) OneMinus(a uint32) uint32 { return m.b.OneMinus(a) }
func (m *edgeMapEmitter) Release(r uint32)         { m.b.Release(r) }

// EmitOps lowers a constant plan to a single constant op.
func (c Const) EmitOps(b *Builder) (uint32, error) {
	return b.Const(c.Value), nil
}

// EmitOps lowers the chain dynamic program with node probabilities
// loaded from the instance edges of NodeEdge (roots load 1).
func (c Chain) EmitOps(b *Builder) (uint32, error) {
	return c.System.EmitOps(&edgeMapEmitter{b: b, varEdge: c.NodeEdge, rootIsOne: true})
}

// EmitOps lowers the interval dynamic program with position
// probabilities loaded from the instance edges of VarEdge.
func (iv Interval) EmitOps(b *Builder) (uint32, error) {
	return iv.System.EmitOps(&edgeMapEmitter{b: b, varEdge: iv.VarEdge})
}

// EmitOps lowers the d-DNNF probability computation with variable
// probabilities loaded from the instance edges of VarEdge.
func (c Circuit) EmitOps(b *Builder) (uint32, error) {
	return c.C.EmitOps(c.Out, &edgeMapEmitter{b: b, varEdge: c.VarEdge})
}

// EmitOps lowers the Lemma 3.7 composite: 1 − Π_i (1 − p_i) over the
// lowered component programs.
func (c Components) EmitOps(b *Builder) (uint32, error) {
	miss := b.One()
	for _, part := range c.Parts {
		p, err := part.EmitOps(b)
		if err != nil {
			return 0, err
		}
		omp := b.OneMinus(p)
		b.Release(p)
		next := b.Mul(miss, omp)
		b.Release(miss)
		b.Release(omp)
		miss = next
	}
	out := b.OneMinus(miss)
	b.Release(miss)
	return out, nil
}

// EmitOps on an opaque plan fails: there is no structure to flatten.
func (o Opaque) EmitOps(b *Builder) (uint32, error) {
	return 0, ErrOpaque
}
