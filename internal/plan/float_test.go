package plan

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// mustProgram builds a program through the Builder, failing the test on
// lowering errors.
func mustProgram(t *testing.T, build func(b *Builder) uint32, numEdges int) *Program {
	t.Helper()
	b := NewBuilder(numEdges)
	p, err := b.Finish(build(b))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEncloseContainsAndIsTight(t *testing.T) {
	huge := new(big.Rat).SetFrac(new(big.Int).Exp(big.NewInt(10), big.NewInt(400), nil), big.NewInt(1))
	cases := []struct {
		name      string
		r         *big.Rat
		zeroWidth bool
	}{
		{"zero", new(big.Rat), true},
		{"one", big.NewRat(1, 1), true},
		{"half", big.NewRat(1, 2), true},
		{"dyadic", big.NewRat(3, 1<<20), true},
		{"third", big.NewRat(1, 3), false},
		{"tenth", big.NewRat(1, 10), false},
		{"big numerator", new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 80), new(big.Int).SetUint64(1<<63)), true},
		{"near zero", new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Exp(big.NewInt(10), big.NewInt(300), nil)), false},
		{"negative third", big.NewRat(-1, 3), false},
		{"huge", huge, false},
	}
	for _, tc := range cases {
		iv := enclose(tc.r)
		if !iv.Contains(tc.r) {
			t.Fatalf("%s: enclose(%s) = %v does not contain it", tc.name, tc.r.RatString(), iv)
		}
		if got := iv.Width() == 0; got != tc.zeroWidth {
			t.Fatalf("%s: enclose(%s) width %g, want zero=%v", tc.name, tc.r.RatString(), iv.Width(), tc.zeroWidth)
		}
		// Tightness: never wider than two ulps of the midpoint (huge
		// values excepted — they clamp to ±MaxFloat64/Inf).
		if f, _ := tc.r.Float64(); !math.IsInf(f, 0) {
			if maxW := 4 * math.Max(math.Abs(f), minNormal) * 0x1p-52; iv.Width() > maxW {
				t.Fatalf("%s: enclosure %v too wide (%g > %g)", tc.name, iv, iv.Width(), maxW)
			}
		}
	}
}

// TestExecFloatKnownValues pins the kernel against hand-computed
// programs with exactly representable arithmetic.
func TestExecFloatKnownValues(t *testing.T) {
	// 1 − (1−p0)(1−p1) with dyadic probabilities: exact all the way.
	p := mustProgram(t, func(b *Builder) uint32 {
		return b.OneMinus(b.Mul(b.OneMinus(b.Load(0)), b.OneMinus(b.Load(1))))
	}, 2)
	iv, err := p.ExecFloat([]*big.Rat{big.NewRat(1, 2), big.NewRat(1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 0.625 || iv.Hi != 0.625 {
		t.Fatalf("ExecFloat = %v, want exactly [0.625, 0.625]", iv)
	}
	// The same with p1 = 1/3: a genuine enclosure around 2/3·…
	want, err := p.Exec([]*big.Rat{big.NewRat(1, 2), big.NewRat(1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	iv, err = p.ExecFloat([]*big.Rat{big.NewRat(1, 2), big.NewRat(1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if iv.Width() == 0 {
		t.Fatal("1/3 cannot convert exactly")
	}
	if !iv.Contains(want) {
		t.Fatalf("enclosure %v misses exact %s", iv, want.RatString())
	}
	if iv.Width() > 1e-15 {
		t.Fatalf("enclosure %v too wide for a 7-op program", iv)
	}
}

func TestExecFloatInputErrors(t *testing.T) {
	p := mustProgram(t, func(b *Builder) uint32 { return b.Load(0) }, 1)
	if _, err := p.ExecFloat(nil); err == nil {
		t.Fatal("accepted a short probability vector")
	}
	if _, err := p.ExecFloat([]*big.Rat{nil}); err == nil {
		t.Fatal("accepted a nil probability")
	}
}

// TestExecFloatOverflowIsSound pins the hostile-program path: constants
// beyond float64 range must either produce a sound (possibly vacuous)
// enclosure or an explicit error — never an unsound finite interval.
func TestExecFloatOverflowIsSound(t *testing.T) {
	huge := new(big.Rat).SetFrac(new(big.Int).Exp(big.NewInt(10), big.NewInt(400), nil), big.NewInt(1))
	// huge · huge: ±Inf bounds are vacuous but sound.
	p := mustProgram(t, func(b *Builder) uint32 {
		h := b.Const(huge)
		return b.Mul(h, h)
	}, 0)
	if iv, err := p.ExecFloat(nil); err == nil {
		exact := new(big.Rat).Mul(huge, huge)
		if !iv.Contains(exact) {
			t.Fatalf("overflow enclosure %v excludes the exact product", iv)
		}
	}
	// huge · 0 is Inf · 0 = NaN in float arithmetic: must error, not
	// return a NaN interval.
	p = mustProgram(t, func(b *Builder) uint32 {
		return b.Mul(b.Const(huge), b.Zero())
	}, 0)
	if iv, err := p.ExecFloat(nil); err == nil {
		if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
			t.Fatalf("NaN enclosure %v escaped", iv)
		}
		if !iv.Contains(new(big.Rat)) {
			t.Fatalf("enclosure %v excludes the exact 0", iv)
		}
	}
}

// randomProbs draws a probability vector mixing dyadic, non-dyadic,
// boundary and extreme values — the distributions the containment fuzz
// target and table tests share.
func randomProbs(r *rand.Rand, n int) []*big.Rat {
	probs := make([]*big.Rat, n)
	for i := range probs {
		switch r.Intn(6) {
		case 0:
			probs[i] = new(big.Rat) // exactly 0
		case 1:
			probs[i] = big.NewRat(1, 1) // exactly 1
		case 2:
			probs[i] = big.NewRat(int64(r.Intn(17)), 16) // dyadic
		case 3:
			probs[i] = big.NewRat(int64(r.Intn(10001)), 10000) // decimal
		case 4:
			// Near 0: 1/10^k.
			probs[i] = new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(1+r.Intn(30))), nil))
		default:
			// Near 1: 1 − 1/10^k.
			eps := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(1+r.Intn(30))), nil))
			probs[i] = new(big.Rat).Sub(big.NewRat(1, 1), eps)
		}
	}
	return probs
}

// randomProgram emits a random valid program over numEdges edges: a
// stream of loads, constants and arithmetic over previously defined
// registers, as the Builder's structural discipline guarantees.
func randomProgram(r *rand.Rand, numEdges, numOps int) (*Program, error) {
	b := NewBuilder(numEdges)
	regs := []uint32{b.Const(big.NewRat(int64(r.Intn(5)), 4))}
	pick := func() uint32 { return regs[r.Intn(len(regs))] }
	for i := 0; i < numOps; i++ {
		switch r.Intn(10) {
		case 0:
			regs = append(regs, b.Const(big.NewRat(int64(r.Intn(9)), int64(1+r.Intn(8)))))
		case 1, 2, 3:
			if numEdges > 0 {
				regs = append(regs, b.Load(r.Intn(numEdges)))
			}
		case 4, 5, 6:
			regs = append(regs, b.Mul(pick(), pick()))
		case 7, 8:
			regs = append(regs, b.Add(pick(), pick()))
		default:
			regs = append(regs, b.OneMinus(pick()))
		}
	}
	return b.Finish(pick())
}

// TestExecFloatContainmentRandom is the deterministic twin of the fuzz
// target: across seeded random programs and probability maps, the exact
// Exec answer always lies in ExecFloat's certified enclosure.
func TestExecFloatContainmentRandom(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for trial := 0; trial < 300; trial++ {
		numEdges := r.Intn(8)
		prog, err := randomProgram(r, numEdges, 1+r.Intn(40))
		if err != nil {
			t.Fatal(err)
		}
		probs := randomProbs(r, numEdges)
		exact, err := prog.Exec(probs)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := prog.ExecFloat(probs)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(exact) {
			t.Fatalf("trial %d: exact %s outside enclosure %v (program %d ops)",
				trial, exact.RatString(), iv, prog.NumOps())
		}
	}
}

// FuzzExecFloatContainment fuzzes the containment invariant: whatever
// program the fuzzer derives and whatever probabilities it assigns, the
// exact rational result must lie inside the float kernel's certified
// enclosure. The program and probability map are derived
// deterministically from the fuzz seed, so failures replay.
func FuzzExecFloatContainment(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(20))
	f.Add(int64(42), uint8(0), uint8(3))
	f.Add(int64(-7), uint8(7), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, edges, ops uint8) {
		r := rand.New(rand.NewSource(seed))
		numEdges := int(edges % 9)
		prog, err := randomProgram(r, numEdges, 1+int(ops)%64)
		if err != nil {
			t.Fatal(err)
		}
		probs := randomProbs(r, numEdges)
		exact, err := prog.Exec(probs)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := prog.ExecFloat(probs)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(exact) {
			t.Fatalf("exact %s outside certified enclosure %v", exact.RatString(), iv)
		}
		if iv.Width() < 0 || math.IsNaN(iv.Width()) {
			t.Fatalf("malformed enclosure %v", iv)
		}
	})
}
