package plan

import (
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
)

// lowerRaw flattens a plan without the Optimize pass — the pre-PR-7
// lowering — so differential tests can compare the optimizer's output
// against the program it started from.
func lowerRaw(t *testing.T, p Plan, numEdges int) *Program {
	t.Helper()
	b := NewBuilder(numEdges)
	out, err := p.EmitOps(b)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := b.Finish(out)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// execString runs Exec and returns the exact result as a RatString,
// failing the test on error.
func execString(t *testing.T, p *Program, probs []*big.Rat) string {
	t.Helper()
	v, err := p.Exec(probs)
	if err != nil {
		t.Fatal(err)
	}
	return v.RatString()
}

// TestOptimizeIdentities pins each algebraic rewrite on a minimal
// hand-built program: the identity fires (op count drops to the
// expected floor) and the exact result is unchanged.
func TestOptimizeIdentities(t *testing.T) {
	probs := []*big.Rat{rat("2/7")}
	cases := []struct {
		name    string
		build   func(b *Builder) uint32
		wantOps int
	}{
		{"mul by one", func(b *Builder) uint32 {
			return b.Mul(b.Load(0), b.One())
		}, 1}, // just the load
		{"mul by zero", func(b *Builder) uint32 {
			return b.Mul(b.Zero(), b.Load(0))
		}, 1}, // just the zero const
		{"add zero", func(b *Builder) uint32 {
			return b.Add(b.Zero(), b.Load(0))
		}, 1},
		{"double complement", func(b *Builder) uint32 {
			return b.OneMinus(b.OneMinus(b.Load(0)))
		}, 1},
		{"const folding", func(b *Builder) uint32 {
			// (1/2 · 1/3) + 1/4 → the single constant 5/12.
			return b.Add(b.Mul(b.Const(rat("1/2")), b.Const(rat("1/3"))), b.Const(rat("1/4")))
		}, 1},
		{"cse shares complements", func(b *Builder) uint32 {
			// (1−x)·(1−x) with two separately emitted complements.
			return b.Mul(b.OneMinus(b.Load(0)), b.OneMinus(b.Load(0)))
		}, 3}, // load, one-minus, mul
		{"commutative cse", func(b *Builder) uint32 {
			// x·(1−x) + (1−x)·x: operand order must not defeat sharing.
			x1, x2 := b.Load(0), b.Load(0)
			return b.Add(b.Mul(x1, b.OneMinus(x1)), b.Mul(b.OneMinus(x2), x2))
		}, 4}, // load, one-minus, mul, add
	}
	for _, tc := range cases {
		b := NewBuilder(1)
		out := tc.build(b)
		raw, err := b.Finish(out)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		opt := raw.Optimize()
		if err := opt.Validate(); err != nil {
			t.Fatalf("%s: optimized program invalid: %v", tc.name, err)
		}
		if opt.NumOps() != tc.wantOps {
			t.Errorf("%s: optimized to %d ops, want %d", tc.name, opt.NumOps(), tc.wantOps)
		}
		if got, want := execString(t, opt, probs), execString(t, raw, probs); got != want {
			t.Errorf("%s: optimized Exec %s != raw %s", tc.name, got, want)
		}
	}
}

// TestOptimizeInvalidUnchanged: a program that fails Validate comes
// back as the identical receiver — Optimize never rewrites what it
// cannot prove equivalent.
func TestOptimizeInvalidUnchanged(t *testing.T) {
	bad := &Program{
		NumEdges: 1,
		NumRegs:  1,
		Ops:      []Op{{Code: OpMul, Dst: 0, A: 0, B: 0}}, // use before def
		Out:      0,
	}
	if got := bad.Optimize(); got != bad {
		t.Fatal("Optimize of an invalid program must return the receiver")
	}
}

// TestOptimizeReducesOpsOnCorpora is the tentpole's corpus assertion:
// on the betadnf (chain/interval trellis) and ddnnf (polytree circuit)
// lowerings the pass strictly reduces op count — those emitters favour
// regularity and emit mul-by-one seeds and repeated complements — and
// the optimized program is RatString-byte-identical to the raw one on
// every random reweight, with a float enclosure that still contains the
// exact value.
func TestOptimizeReducesOpsOnCorpora(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	un := []graph.Label{graph.Unlabeled}
	var rawOps, optOps int
	for trial := 0; trial < 20; trial++ {
		m := 1 + r.Intn(3)
		var p Plan
		var h *graph.ProbGraph
		var err error
		if trial%2 == 0 {
			h = gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 3+r.Intn(6), un), 0.8)
			p, err = DirectedPathOnDWTs(h, m)
		} else {
			h = gen.RandProb(r, gen.RandInClass(r, graph.ClassUPT, 3+r.Intn(6), un), 0.8)
			p, err = DirectedPathOnPolytrees(h, m)
		}
		if err != nil {
			t.Fatal(err)
		}
		n := h.G.NumEdges()
		raw := lowerRaw(t, p, n)
		opt := raw.Optimize()
		if err := opt.Validate(); err != nil {
			t.Fatalf("trial %d: optimized program invalid: %v", trial, err)
		}
		rawOps += raw.NumOps()
		optOps += opt.NumOps()
		if opt.NumOps() >= raw.NumOps() {
			t.Errorf("trial %d: optimizer did not reduce ops (%d → %d)", trial, raw.NumOps(), opt.NumOps())
		}
		for reweight := 0; reweight < 3; reweight++ {
			probs := randomProbs(r, n)
			if got, want := execString(t, opt, probs), execString(t, raw, probs); got != want {
				t.Fatalf("trial %d: optimized Exec %s != raw %s", trial, got, want)
			}
			exact, err := opt.Exec(probs)
			if err != nil {
				t.Fatal(err)
			}
			iv, err := opt.ExecFloat(probs)
			if err != nil {
				t.Fatal(err)
			}
			if !iv.Contains(exact) {
				t.Fatalf("trial %d: optimized enclosure %v misses exact %s", trial, iv, exact.RatString())
			}
		}
	}
	t.Logf("corpus op count: raw %d → optimized %d (%.1f%% removed)",
		rawOps, optOps, 100*float64(rawOps-optOps)/float64(rawOps))
}

// TestOptimizeIdempotent: running the pass on its own output finds
// nothing further to do (the value table is already canonical).
func TestOptimizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		numEdges := r.Intn(8)
		raw, err := randomProgram(r, numEdges, 1+r.Intn(40))
		if err != nil {
			t.Fatal(err)
		}
		opt := raw.Optimize()
		if again := opt.Optimize(); again.NumOps() != opt.NumOps() {
			t.Fatalf("trial %d: second pass changed op count %d → %d", trial, opt.NumOps(), again.NumOps())
		}
	}
}

// TestOptimizeEquivalenceRandom is the deterministic twin of the fuzz
// target below: across seeded random programs and probability maps,
// the optimized program's exact result is byte-identical to the raw
// one's and its enclosure is sound.
func TestOptimizeEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 300; trial++ {
		numEdges := r.Intn(8)
		raw, err := randomProgram(r, numEdges, 1+r.Intn(40))
		if err != nil {
			t.Fatal(err)
		}
		opt := raw.Optimize()
		if err := opt.Validate(); err != nil {
			t.Fatalf("trial %d: optimized program invalid: %v", trial, err)
		}
		if opt.NumOps() > raw.NumOps() {
			t.Fatalf("trial %d: optimizer grew the program (%d → %d)", trial, raw.NumOps(), opt.NumOps())
		}
		probs := randomProbs(r, numEdges)
		exact, err := raw.Exec(probs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := opt.Exec(probs)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(exact) != 0 {
			t.Fatalf("trial %d: optimized Exec %s != raw %s", trial, got.RatString(), exact.RatString())
		}
		iv, err := opt.ExecFloat(probs)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(exact) {
			t.Fatalf("trial %d: optimized enclosure %v misses exact %s", trial, iv, exact.RatString())
		}
	}
}

// FuzzOptimizeEquivalence fuzzes the optimizer's correctness contract:
// whatever program the fuzzer derives, Optimize must produce a valid,
// no-larger program whose exact results are byte-identical and whose
// float enclosure still contains the exact value.
func FuzzOptimizeEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(20))
	f.Add(int64(42), uint8(0), uint8(3))
	f.Add(int64(-7), uint8(7), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, edges, ops uint8) {
		r := rand.New(rand.NewSource(seed))
		numEdges := int(edges % 9)
		raw, err := randomProgram(r, numEdges, 1+int(ops)%64)
		if err != nil {
			t.Fatal(err)
		}
		opt := raw.Optimize()
		if err := opt.Validate(); err != nil {
			t.Fatalf("optimized program invalid: %v", err)
		}
		if opt.NumOps() > raw.NumOps() {
			t.Fatalf("optimizer grew the program (%d → %d)", raw.NumOps(), opt.NumOps())
		}
		probs := randomProbs(r, numEdges)
		exact, err := raw.Exec(probs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := opt.Exec(probs)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(exact) != 0 {
			t.Fatalf("optimized Exec %s != raw %s", got.RatString(), exact.RatString())
		}
		iv, err := opt.ExecFloat(probs)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(exact) {
			t.Fatalf("optimized enclosure %v misses exact %s", iv, exact.RatString())
		}
	})
}
