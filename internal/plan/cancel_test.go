package plan

import (
	"context"
	"errors"
	"math/big"
	"testing"

	"phom/internal/betadnf"
	"phom/internal/phomerr"
)

// bigIntervalPlan builds an interval-system plan whose lowering emits
// far more than phomerr.CheckInterval ops, so the Builder's context
// checkpoint is guaranteed to fire during the compile-time dynamic
// program.
func bigIntervalPlan(nVars, clauseLen int) Interval {
	sys := &betadnf.IntervalSystem{NumVars: nVars}
	for lo := 0; lo+clauseLen-1 < nVars; lo += 2 {
		sys.Clauses = append(sys.Clauses, betadnf.Interval{Lo: lo, Hi: lo + clauseLen - 1})
	}
	varEdge := make([]int, nVars)
	for i := range varEdge {
		varEdge[i] = i
	}
	return Interval{System: sys, VarEdge: varEdge}
}

// TestLowerContextCanceledDeterministic: LowerContext under an
// already-cancelled context fails with the typed cancellation error —
// deterministically, because the trellis unrolls more than one
// checkpoint interval of ops — while the same lowering under a live
// context succeeds and executes.
func TestLowerContextCanceledDeterministic(t *testing.T) {
	p := bigIntervalPlan(256, 16)
	prog, err := LowerContext(context.Background(), p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumOps() <= phomerr.CheckInterval {
		t.Fatalf("test plan too small: %d ops (need > %d for a guaranteed checkpoint)",
			prog.NumOps(), phomerr.CheckInterval)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = LowerContext(ctx, p, 256)
	if !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("LowerContext err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("LowerContext err = %v must unwrap to context.Canceled", err)
	}
}

// TestExecCtxCanceledDeterministic: the exact interpreter aborts a
// cancelled execution at an op checkpoint, and a live-context run is
// byte-identical to Exec.
func TestExecCtxCanceledDeterministic(t *testing.T) {
	p := bigIntervalPlan(256, 16)
	prog, err := Lower(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]*big.Rat, 256)
	for i := range probs {
		probs[i] = big.NewRat(int64(i%7+1), 9)
	}
	want, err := prog.Exec(probs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.ExecCtx(context.Background(), probs)
	if err != nil {
		t.Fatal(err)
	}
	if want.RatString() != got.RatString() {
		t.Fatalf("ExecCtx %s != Exec %s", got.RatString(), want.RatString())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prog.ExecCtx(ctx, probs); !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("ExecCtx err = %v, want ErrCanceled", err)
	}
}

// TestChainEmitCanceled: the chain-system compile loop (betadnf) also
// honors the builder's sticky cancellation through its emitterFailed
// checks.
func TestChainEmitCanceled(t *testing.T) {
	n := 600
	parent := make([]int, n)
	chainLen := make([]int, n)
	nodeEdge := make([]int, n)
	parent[0], nodeEdge[0] = -1, -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
		nodeEdge[v] = v - 1
		if v%3 == 0 {
			chainLen[v] = 3
		}
	}
	cc, err := (&betadnf.ChainSystem{Parent: parent, ChainLen: chainLen}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := Chain{System: cc, NodeEdge: nodeEdge}
	prog, err := Lower(p, n-1)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumOps() <= phomerr.CheckInterval {
		t.Fatalf("chain plan too small: %d ops", prog.NumOps())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LowerContext(ctx, p, n-1); !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("chain LowerContext err = %v, want ErrCanceled", err)
	}
}
