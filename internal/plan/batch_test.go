package plan

import (
	"context"
	"errors"
	"math"
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/phomerr"
)

// TestExecFloatBatchMatchesExecFloat pins the lane-exactness contract:
// every lane of the batched kernel is bitwise identical (Lo and Hi) to
// an independent ExecFloat call on that lane's probability vector.
func TestExecFloatBatchMatchesExecFloat(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 200; trial++ {
		numEdges := r.Intn(8)
		prog, err := randomProgram(r, numEdges, 1+r.Intn(40))
		if err != nil {
			t.Fatal(err)
		}
		lanes := 1 + r.Intn(9)
		probVecs := make([][]*big.Rat, lanes)
		for k := range probVecs {
			probVecs[k] = randomProbs(r, numEdges)
		}
		batch, err := prog.ExecFloatBatch(probVecs)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != lanes {
			t.Fatalf("trial %d: %d enclosures for %d lanes", trial, len(batch), lanes)
		}
		for k := range probVecs {
			single, err := prog.ExecFloat(probVecs[k])
			if err != nil {
				t.Fatal(err)
			}
			if batch[k].Lo != single.Lo || batch[k].Hi != single.Hi {
				t.Fatalf("trial %d lane %d: batch %v != single %v", trial, k, batch[k], single)
			}
			exact, err := prog.Exec(probVecs[k])
			if err != nil {
				t.Fatal(err)
			}
			if !batch[k].Contains(exact) {
				t.Fatalf("trial %d lane %d: enclosure %v misses exact %s", trial, k, batch[k], exact.RatString())
			}
		}
	}
}

// TestExecFloatBatchInputErrors: malformed lanes fail the whole call
// with an error naming the offending lane, and an empty batch is a
// no-op.
func TestExecFloatBatchInputErrors(t *testing.T) {
	prog := mustProgram(t, func(b *Builder) uint32 {
		return b.OneMinus(b.Mul(b.Load(0), b.Load(1)))
	}, 2)

	if out, err := prog.ExecFloatBatch(nil); out != nil || err != nil {
		t.Fatalf("empty batch: got (%v, %v), want (nil, nil)", out, err)
	}
	good := []*big.Rat{rat("1/2"), rat("1/3")}
	if _, err := prog.ExecFloatBatch([][]*big.Rat{good, {rat("1/2")}}); err == nil {
		t.Fatal("short lane 1 must fail")
	}
	if _, err := prog.ExecFloatBatch([][]*big.Rat{good, {rat("1/2"), nil}}); err == nil {
		t.Fatal("nil probability in lane 1 must fail")
	}
}

// TestExecFloatBatchNaNLaneIsolated: a lane whose arithmetic
// degenerates to NaN (overflowing decoded constants) comes back as a
// NaN enclosure without poisoning the other lanes — the per-lane
// fallback contract the engine's batch path relies on.
func TestExecFloatBatchNaNLaneIsolated(t *testing.T) {
	huge := new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), 2000))
	// (huge·huge)·0: the product overflows to +Inf, and Inf·0 is NaN.
	prog := &Program{
		NumEdges: 1,
		NumRegs:  3,
		Consts:   []*big.Rat{huge, new(big.Rat)},
		Ops: []Op{
			{Code: OpLoad, Dst: 0, A: 0},
			{Code: OpMul, Dst: 0, A: 0, B: 0},
			{Code: OpMul, Dst: 0, A: 0, B: 0},
			{Code: OpConst, Dst: 1, A: 1},
			{Code: OpMul, Dst: 2, A: 0, B: 1},
		},
		Out: 2,
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	vecs := [][]*big.Rat{{rat("1/2")}, {huge}, {rat("1/3")}}
	out, err := prog.ExecFloatBatch(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(out[0].Lo) || math.IsNaN(out[2].Lo) {
		t.Fatalf("finite lanes poisoned: %v / %v", out[0], out[2])
	}
	if !math.IsNaN(out[1].Lo) && !math.IsNaN(out[1].Hi) {
		t.Fatalf("overflowing lane should be NaN, got %v", out[1])
	}
	for _, k := range []int{0, 2} {
		exact, err := prog.Exec(vecs[k])
		if err != nil {
			t.Fatal(err)
		}
		if !out[k].Contains(exact) {
			t.Fatalf("lane %d: enclosure %v misses exact %s", k, out[k], exact.RatString())
		}
	}
}

// TestExecFloatBatchCanceled: the batched kernel honors cooperative
// cancellation at its per-op checkpoint.
func TestExecFloatBatchCanceled(t *testing.T) {
	p := bigIntervalPlan(256, 16)
	prog, err := Lower(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumOps() <= phomerr.CheckInterval {
		t.Fatalf("test plan too small: %d ops", prog.NumOps())
	}
	probs := make([]*big.Rat, 256)
	for i := range probs {
		probs[i] = big.NewRat(int64(i%7+1), 9)
	}
	vecs := [][]*big.Rat{probs, probs}
	if _, err := prog.ExecFloatBatchCtx(context.Background(), vecs); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prog.ExecFloatBatchCtx(ctx, vecs); !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("ExecFloatBatchCtx err = %v, want ErrCanceled", err)
	}
}

// benchProgram lowers a moderately sized trellis program for the
// evaluation benchmarks.
func benchProgram(b *testing.B, nVars int) (*Program, []*big.Rat) {
	b.Helper()
	prog, err := Lower(bigIntervalPlan(nVars, 8), nVars)
	if err != nil {
		b.Fatal(err)
	}
	probs := make([]*big.Rat, nVars)
	for i := range probs {
		probs[i] = big.NewRat(int64(i%9+1), 11)
	}
	return prog, probs
}

// BenchmarkExecAllocs pins the pooled exact register file: steady-state
// Exec allocates the result rational and transient big.Int scratch, not
// a fresh register file per call.
func BenchmarkExecAllocs(b *testing.B) {
	prog, probs := benchProgram(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Exec(probs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecFloatAllocs pins the pooled interval register file:
// steady-state ExecFloat is allocation-free.
func BenchmarkExecFloatAllocs(b *testing.B) {
	prog, probs := benchProgram(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.ExecFloat(probs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecFloatBatch measures per-vector cost across batch widths:
// the amortization of instruction dispatch is the whole point of the
// batched kernel.
func BenchmarkExecFloatBatch(b *testing.B) {
	prog, probs := benchProgram(b, 64)
	for _, width := range []int{1, 8, 64, 256} {
		vecs := make([][]*big.Rat, width)
		for k := range vecs {
			vecs[k] = probs
		}
		b.Run(benchWidthName(width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := prog.ExecFloatBatch(vecs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchWidthName(w int) string {
	switch w {
	case 1:
		return "width1"
	case 8:
		return "width8"
	case 64:
		return "width64"
	default:
		return "width256"
	}
}
