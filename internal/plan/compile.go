package plan

import (
	"fmt"

	"phom/internal/betadnf"
	"phom/internal/graph"
	"phom/internal/lineage"
	"phom/internal/treeauto"
)

// This file hosts the per-cell compilers: for every tractable cell of
// Tables 1–3 they run the structural phase of the cell's algorithm on
// (q, h) and return a Plan over h's full edge list. Probabilities of h
// are never read — h serves purely as the structural template — so a
// compiled plan can be evaluated against any probability assignment on
// the same structure. The dispatching between cells stays in package
// core (the guard table of core.Compile), which owns the classification
// logic.
//
// Every compiler is factored as Lemma 3.7 composition over an exported
// per-component Part* function: the full compiler is "ComponentsWithEdges,
// then one Part* call per component". The Part* functions are the seam
// of incremental maintenance (core.PatchCompile): an edge delta confined
// to one component recompiles only that component's part and splices it
// into the existing Components composite.

// Part1WPOnDWT compiles one DWT component's chain part of
// Proposition 4.10: the β-acyclic chain lineage of the labeled 1WP
// query q on comp, with node→edge references mapped through edgeMap
// into the full instance edge list.
func Part1WPOnDWT(q *graph.Graph, comp *graph.ProbGraph, edgeMap []int) (Plan, error) {
	lin, err := lineage.Path1WPOnDWT(q, comp)
	if err != nil {
		return nil, err
	}
	cc, err := lin.System.Compile()
	if err != nil {
		return nil, err
	}
	return Chain{System: cc, NodeEdge: mapEdges(lin.ParentEdge, edgeMap)}, nil
}

// Path1WPOnDWT compiles Proposition 4.10 extended to forests by
// Lemma 3.7: the β-acyclic chain lineage of a labeled 1WP query with at
// least one edge on a ⊔DWT instance.
func Path1WPOnDWT(q *graph.Graph, h *graph.ProbGraph) (Plan, error) {
	comps, edgeMaps := h.ComponentsWithEdges()
	parts := make([]Plan, len(comps))
	for ci, comp := range comps {
		part, err := Part1WPOnDWT(q, comp, edgeMaps[ci])
		if err != nil {
			return nil, err
		}
		parts[ci] = part
	}
	return Components{Parts: parts}, nil
}

// PartConnectedOn2WP compiles one 2WP component's interval part of
// Proposition 4.11 for the connected query q.
func PartConnectedOn2WP(q *graph.Graph, comp *graph.ProbGraph, edgeMap []int) (Plan, error) {
	lin, err := lineage.ConnectedOn2WP(q, comp)
	if err != nil {
		return nil, err
	}
	return Interval{System: lin.System, VarEdge: mapEdges(lin.EdgeAt, edgeMap)}, nil
}

// ConnectedOn2WP compiles Proposition 4.11 extended to forests of paths
// by Lemma 3.7: the interval lineage of a connected query with at least
// one edge on a ⊔2WP instance.
func ConnectedOn2WP(q *graph.Graph, h *graph.ProbGraph) (Plan, error) {
	comps, edgeMaps := h.ComponentsWithEdges()
	parts := make([]Plan, len(comps))
	for ci, comp := range comps {
		part, err := PartConnectedOn2WP(q, comp, edgeMaps[ci])
		if err != nil {
			return nil, err
		}
		parts[ci] = part
	}
	return Components{Parts: parts}, nil
}

// PartDirectedPathOnDWT compiles one DWT component's chain part of
// Proposition 3.6's workhorse: the chain system deciding whether a
// world of comp contains a directed path of m (> 0) edges.
func PartDirectedPathOnDWT(comp *graph.ProbGraph, m int, edgeMap []int) (Plan, error) {
	g := comp.G
	n := g.NumVertices()
	parent := make([]int, n)
	chain := make([]int, n)
	nodeEdge := make([]int, n)
	depth := make([]int, n)
	order, _ := g.TopologicalOrder() // a DWT is a DAG
	for v := 0; v < n; v++ {
		parent[v] = -1
		nodeEdge[v] = -1
	}
	for _, v := range order {
		if in := g.InEdges(v); len(in) == 1 {
			e := g.Edge(in[0])
			parent[v] = int(e.From)
			nodeEdge[v] = in[0]
			depth[v] = depth[e.From] + 1
		}
		if depth[v] >= m {
			chain[v] = m
		}
	}
	cc, err := (&betadnf.ChainSystem{Parent: parent, ChainLen: chain}).Compile()
	if err != nil {
		return nil, err
	}
	return Chain{System: cc, NodeEdge: mapEdges(nodeEdge, edgeMap)}, nil
}

// DirectedPathOnDWTs compiles the workhorse of Proposition 3.6: the
// chain system deciding whether a world of the ⊔DWT instance h contains
// a directed path of m edges. The per-component structure (parents,
// depths, chain clauses) is exactly the one core.DirectedPathProbOnDWTs
// used to build inline; the probability inputs are lifted out into the
// plan's NodeEdge mapping.
func DirectedPathOnDWTs(h *graph.ProbGraph, m int) (Plan, error) {
	if m == 0 {
		return NewConst(graph.RatOne), nil
	}
	if !h.G.InClass(graph.ClassUDWT) {
		return nil, fmt.Errorf("plan: DirectedPathOnDWTs needs a ⊔DWT instance")
	}
	comps, edgeMaps := h.ComponentsWithEdges()
	parts := make([]Plan, len(comps))
	for ci, comp := range comps {
		part, err := PartDirectedPathOnDWT(comp, m, edgeMaps[ci])
		if err != nil {
			return nil, err
		}
		parts[ci] = part
	}
	return Components{Parts: parts}, nil
}

// PartDirectedPathOnPolytree compiles one polytree component's d-DNNF
// circuit part of Proposition 5.4 for the unlabeled path query →^m
// (m > 0).
func PartDirectedPathOnPolytree(comp *graph.ProbGraph, m int, edgeMap []int) (Plan, error) {
	root, err := treeauto.Encode(comp)
	if err != nil {
		return nil, err
	}
	a := &treeauto.Automaton{M: m}
	c, out := a.CompileLineage(root, comp.G.NumEdges())
	return Circuit{C: c, Out: out, VarEdge: edgeMap}, nil
}

// DirectedPathOnPolytrees compiles Proposition 5.4 (with Lemma 3.7): the
// d-DNNF lineage circuits of the automaton for the unlabeled path query
// →^m on every polytree component of the ⊔PT instance h.
func DirectedPathOnPolytrees(h *graph.ProbGraph, m int) (Plan, error) {
	if m == 0 {
		return NewConst(graph.RatOne), nil
	}
	if !h.G.InClass(graph.ClassUPT) {
		return nil, fmt.Errorf("plan: DirectedPathOnPolytrees needs a ⊔PT instance")
	}
	comps, edgeMaps := h.ComponentsWithEdges()
	parts := make([]Plan, len(comps))
	for ci, comp := range comps {
		part, err := PartDirectedPathOnPolytree(comp, m, edgeMaps[ci])
		if err != nil {
			return nil, err
		}
		parts[ci] = part
	}
	return Components{Parts: parts}, nil
}

// UnionConnectedOn2WP compiles the UCQ lift of Proposition 4.11: the
// union of the disjuncts' interval lineages is itself an interval
// system, merged per component.
func UnionConnectedOn2WP(qs []*graph.Graph, h *graph.ProbGraph) (Plan, error) {
	comps, edgeMaps := h.ComponentsWithEdges()
	parts := make([]Plan, len(comps))
	for ci, comp := range comps {
		merged := &betadnf.IntervalSystem{NumVars: comp.G.NumVertices() - 1}
		var varEdge []int
		for _, q := range qs {
			lin, err := lineage.ConnectedOn2WP(q, comp)
			if err != nil {
				return nil, err
			}
			merged.Clauses = append(merged.Clauses, lin.System.Clauses...)
			if varEdge == nil {
				// EdgeAt is instance-side (the component's path order),
				// identical across disjuncts: map it once.
				varEdge = mapEdges(lin.EdgeAt, edgeMaps[ci])
			}
		}
		if varEdge == nil {
			varEdge = []int{}
		}
		parts[ci] = Interval{System: merged, VarEdge: varEdge}
	}
	return Components{Parts: parts}, nil
}

// Union1WPOnDWT compiles the UCQ lift of Proposition 4.10: the union of
// the disjuncts' chain lineages is a chain system after keeping, per
// node, the shortest clause (absorption), merged per component.
func Union1WPOnDWT(qs []*graph.Graph, h *graph.ProbGraph) (Plan, error) {
	comps, edgeMaps := h.ComponentsWithEdges()
	parts := make([]Plan, len(comps))
	for ci, comp := range comps {
		var merged *betadnf.ChainSystem
		var nodeEdge []int
		for _, q := range qs {
			lin, err := lineage.Path1WPOnDWT(q, comp)
			if err != nil {
				return nil, err
			}
			if merged == nil {
				merged = &betadnf.ChainSystem{
					Parent:   lin.System.Parent,
					ChainLen: append([]int(nil), lin.System.ChainLen...),
				}
				nodeEdge = mapEdges(lin.ParentEdge, edgeMaps[ci])
				continue
			}
			for v, l := range lin.System.ChainLen {
				if l != 0 && (merged.ChainLen[v] == 0 || l < merged.ChainLen[v]) {
					merged.ChainLen[v] = l
				}
			}
		}
		cc, err := merged.Compile()
		if err != nil {
			return nil, err
		}
		parts[ci] = Chain{System: cc, NodeEdge: nodeEdge}
	}
	return Components{Parts: parts}, nil
}

// mapEdges rewrites component-local edge indices to indices into the
// full instance edge list, preserving the −1 "no edge" sentinel.
func mapEdges(local, toGlobal []int) []int {
	out := make([]int, len(local))
	for i, ei := range local {
		if ei < 0 {
			out[i] = -1
		} else {
			out[i] = toGlobal[ei]
		}
	}
	return out
}

// RemapEdges returns p with every global edge reference i rewritten to
// remap[i], sharing the compiled systems/circuits of p (the returned
// plan is a fresh value over the same immutable structural artifacts —
// copy-on-write). It is how incremental maintenance carries the parts
// of untouched components across a structural delta that renumbers the
// instance's edge list. A reference to an edge with no new index
// (remap[i] < 0) is an error: such a part belongs to a touched
// component and must be recompiled, not remapped. The −1 "no edge"
// sentinel inside a part is preserved.
func RemapEdges(p Plan, remap []int) (Plan, error) {
	apply := func(refs []int) ([]int, error) {
		out := make([]int, len(refs))
		for i, ei := range refs {
			if ei < 0 {
				out[i] = -1
				continue
			}
			if ei >= len(remap) || remap[ei] < 0 {
				return nil, fmt.Errorf("plan: RemapEdges: edge %d has no image", ei)
			}
			out[i] = remap[ei]
		}
		return out, nil
	}
	switch t := p.(type) {
	case Const:
		return t, nil
	case Chain:
		ne, err := apply(t.NodeEdge)
		if err != nil {
			return nil, err
		}
		return Chain{System: t.System, NodeEdge: ne}, nil
	case Interval:
		ve, err := apply(t.VarEdge)
		if err != nil {
			return nil, err
		}
		return Interval{System: t.System, VarEdge: ve}, nil
	case Circuit:
		ve, err := apply(t.VarEdge)
		if err != nil {
			return nil, err
		}
		return Circuit{C: t.C, Out: t.Out, VarEdge: ve}, nil
	case Components:
		parts := make([]Plan, len(t.Parts))
		for i, part := range t.Parts {
			np, err := RemapEdges(part, remap)
			if err != nil {
				return nil, err
			}
			parts[i] = np
		}
		return Components{Parts: parts}, nil
	}
	return nil, fmt.Errorf("plan: RemapEdges: unsupported plan %T", p)
}
