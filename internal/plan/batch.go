package plan

import (
	"context"
	"fmt"
	"math/big"

	"phom/internal/phomerr"
)

// This file is the batched evaluation kernel: ExecFloatBatch runs one
// Program against K probability vectors simultaneously, over a float64
// interval register *matrix* instead of a register file. The reweight
// serving pattern — one structure, many probability assignments —
// executes the same instruction stream once per vector today; batching
// pays instruction dispatch (the op decode, the switch, the bounds
// checks, the loop bookkeeping) once per op for all K lanes, and turns
// the per-lane arithmetic into tight contiguous loops the hardware can
// pipeline. Each lane's arithmetic is the exact op-for-op sequence
// ExecFloat would run, so lane k's enclosure is bitwise identical to
// ExecFloat(probVecs[k]) whenever the latter succeeds.

// ExecFloatBatch executes the program against K probability vectors at
// once and returns one certified enclosure per lane: Exec(probVecs[k])
// ∈ [out[k].Lo, out[k].Hi] for every lane whose enclosure is finite.
// See ExecFloatBatchCtx for the full contract.
func (p *Program) ExecFloatBatch(probVecs [][]*big.Rat) ([]Enclosure, error) {
	return p.ExecFloatBatchCtx(context.Background(), probVecs)
}

// ExecFloatBatchCtx is ExecFloatBatch with cooperative cancellation
// (one poll per instruction, each instruction now being K lanes of
// work).
//
// Error contract: malformed inputs — a lane of the wrong length, a nil
// probability, an unknown opcode — fail the whole call, exactly as
// they fail ExecFloat. NaN degeneration does NOT: where the
// single-vector kernel errors, a batched lane that degenerates
// (possible only for decoded programs with overflowing constants)
// comes back with NaN endpoints and the other lanes stay valid, so a
// caller can fall back per lane instead of discarding the batch. NaN
// endpoints never escape undetected into a served bound: Enclosure
// arithmetic propagates NaN to the output (directed rounding,
// min/max and the 2Sum test all preserve it), and callers route lanes
// with non-finite enclosures to the exact path (core's serveFloat
// rejects a NaN midpoint).
func (p *Program) ExecFloatBatchCtx(ctx context.Context, probVecs [][]*big.Rat) ([]Enclosure, error) {
	lanes := len(probVecs)
	if lanes == 0 {
		return nil, nil
	}
	for k, v := range probVecs {
		if len(v) != p.NumEdges {
			return nil, fmt.Errorf("plan: lane %d: %d probabilities for a program over %d edges", k, len(v), p.NumEdges)
		}
	}
	cp := phomerr.NewCheckpoint(ctx)
	// Lane-major register matrix: register r of lane k lives at
	// regs[r*lanes+k], so each op's inner loops walk contiguous memory.
	// Pooled like the single-vector register file — the matrix is
	// NumRegs×K and reallocating (and zeroing) it per batch would cost a
	// visible slice of the per-lane budget; define-before-use makes the
	// stale contents invisible.
	rp := getFloatRegs(p.NumRegs * lanes)
	defer floatRegPool.Put(rp)
	regs := *rp
	for i := range p.Ops {
		if err := cp.Check(); err != nil {
			return nil, err
		}
		op := &p.Ops[i]
		dst := regs[int(op.Dst)*lanes : (int(op.Dst)+1)*lanes]
		switch op.Code {
		case OpConst:
			// One rational-to-interval conversion per op, not per lane:
			// constants are lane-invariant.
			e := enclose(p.Consts[op.A])
			for k := range dst {
				dst[k] = e
			}
		case OpLoad:
			for k := range dst {
				pr := probVecs[k][op.A]
				if pr == nil {
					return nil, fmt.Errorf("plan: lane %d: nil probability for edge %d", k, op.A)
				}
				dst[k] = enclose(pr)
			}
		case OpMul:
			a := regs[int(op.A)*lanes : (int(op.A)+1)*lanes]
			b := regs[int(op.B)*lanes : (int(op.B)+1)*lanes]
			for k := range dst {
				dst[k] = mulEnclosure(a[k], b[k])
			}
		case OpAdd:
			a := regs[int(op.A)*lanes : (int(op.A)+1)*lanes]
			b := regs[int(op.B)*lanes : (int(op.B)+1)*lanes]
			for k := range dst {
				dst[k] = Enclosure{Lo: sumLo(a[k].Lo, b[k].Lo), Hi: sumHi(a[k].Hi, b[k].Hi)}
			}
		case OpOneMinus:
			a := regs[int(op.A)*lanes : (int(op.A)+1)*lanes]
			for k := range dst {
				dst[k] = Enclosure{Lo: sumLo(1, -a[k].Hi), Hi: sumHi(1, -a[k].Lo)}
			}
		default:
			return nil, fmt.Errorf("plan: unknown opcode %d", op.Code)
		}
	}
	out := make([]Enclosure, lanes)
	copy(out, regs[int(p.Out)*lanes:(int(p.Out)+1)*lanes])
	return out, nil
}
