package plan

import (
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/betadnf"
	"phom/internal/gen"
	"phom/internal/graph"
)

func rat(s string) *big.Rat { return graph.Rat(s) }

func TestConstEvaluateCopies(t *testing.T) {
	c := NewConst(rat("2/3"))
	a, err := c.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	a.SetInt64(7) // mutating the result must not poison the plan
	b, _ := c.Evaluate(nil)
	if b.Cmp(rat("2/3")) != 0 {
		t.Fatalf("Const mutated through a returned result: %s", b.RatString())
	}
}

func TestComponentsCombination(t *testing.T) {
	c := Components{Parts: []Plan{NewConst(rat("1/2")), NewConst(rat("1/3"))}}
	p, err := c.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 1 − (1 − 1/2)(1 − 1/3) = 2/3.
	if p.Cmp(rat("2/3")) != 0 {
		t.Fatalf("Components = %s, want 2/3", p.RatString())
	}
}

func TestChainEvaluateMapsEdges(t *testing.T) {
	// Two nodes: 1 is the child of 0 through instance edge 3; a clause of
	// length 1 at node 1 means Pr = π(edge 3).
	cc, err := (&betadnf.ChainSystem{Parent: []int{-1, 0}, ChainLen: []int{0, 1}}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	c := Chain{
		System:   cc,
		NodeEdge: []int{-1, 3},
	}
	probs := []*big.Rat{rat("1"), rat("1"), rat("1"), rat("1/4")}
	p, err := c.Evaluate(probs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(rat("1/4")) != 0 {
		t.Fatalf("Chain = %s, want 1/4", p.RatString())
	}
	if _, err := c.Evaluate(probs[:2]); err == nil {
		t.Fatal("expected an out-of-range error for a short probability vector")
	}
}

func TestIntervalEvaluateMapsEdges(t *testing.T) {
	// One variable mapped to instance edge 2; one unit clause.
	iv := Interval{
		System:  &betadnf.IntervalSystem{NumVars: 1, Clauses: []betadnf.Interval{{Lo: 0, Hi: 0}}},
		VarEdge: []int{2},
	}
	probs := []*big.Rat{rat("1"), rat("1"), rat("3/5")}
	p, err := iv.Evaluate(probs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(rat("3/5")) != 0 {
		t.Fatalf("Interval = %s, want 3/5", p.RatString())
	}
	if _, err := iv.Evaluate(probs[:1]); err == nil {
		t.Fatal("expected an out-of-range error for a short probability vector")
	}
}

func TestOpaqueDelegates(t *testing.T) {
	o := Opaque{Eval: func(probs []*big.Rat) (*big.Rat, error) {
		return new(big.Rat).Set(probs[0]), nil
	}}
	p, err := o.Evaluate([]*big.Rat{rat("5/7")})
	if err != nil || p.Cmp(rat("5/7")) != 0 {
		t.Fatalf("Opaque = %v, %v", p, err)
	}
}

// oracleWorlds computes Pr(world contains →^m) on h by world enumeration.
func oracleWorlds(t *testing.T, h *graph.ProbGraph, m int) *big.Rat {
	t.Helper()
	q := graph.UnlabeledPath(m)
	n := h.G.NumEdges()
	keep := make([]bool, n)
	total := new(big.Rat)
	var rec func(i int, w *big.Rat)
	rec = func(i int, w *big.Rat) {
		if w.Sign() == 0 {
			return
		}
		if i == n {
			if graph.HasHomomorphism(q, h.G.SubgraphKeeping(keep)) {
				total.Add(total, w)
			}
			return
		}
		keep[i] = true
		rec(i+1, new(big.Rat).Mul(w, h.Prob(i)))
		keep[i] = false
		rec(i+1, new(big.Rat).Mul(w, new(big.Rat).Sub(graph.RatOne, h.Prob(i))))
	}
	rec(0, big.NewRat(1, 1))
	return total
}

// TestCompiledPlansMatchOracle cross-checks every structural compiler on
// small random instances against possible-world enumeration, evaluating
// the same plan under several distinct probability assignments.
func TestCompiledPlansMatchOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	un := []graph.Label{graph.Unlabeled}
	for trial := 0; trial < 25; trial++ {
		m := 1 + r.Intn(3)
		hg := gen.RandInClass(r, graph.ClassUDWT, 2+r.Intn(6), un)
		h := gen.RandProb(r, hg, 0.8)
		p, err := DirectedPathOnDWTs(h, m)
		if err != nil {
			t.Fatal(err)
		}
		for reweight := 0; reweight < 3; reweight++ {
			got, err := p.Evaluate(h.Probs())
			if err != nil {
				t.Fatal(err)
			}
			if want := oracleWorlds(t, h, m); got.Cmp(want) != 0 {
				t.Fatalf("DWT trial %d: plan %s, oracle %s", trial, got.RatString(), want.RatString())
			}
			randomize(r, h)
		}
	}
	for trial := 0; trial < 25; trial++ {
		m := 1 + r.Intn(3)
		hg := gen.RandInClass(r, graph.ClassUPT, 2+r.Intn(6), un)
		h := gen.RandProb(r, hg, 0.8)
		p, err := DirectedPathOnPolytrees(h, m)
		if err != nil {
			t.Fatal(err)
		}
		for reweight := 0; reweight < 3; reweight++ {
			got, err := p.Evaluate(h.Probs())
			if err != nil {
				t.Fatal(err)
			}
			if want := oracleWorlds(t, h, m); got.Cmp(want) != 0 {
				t.Fatalf("PT trial %d: plan %s, oracle %s", trial, got.RatString(), want.RatString())
			}
			randomize(r, h)
		}
	}
}

// randomize assigns fresh random probabilities to every edge of h.
func randomize(r *rand.Rand, h *graph.ProbGraph) {
	for i := 0; i < h.G.NumEdges(); i++ {
		if err := h.SetProb(i, big.NewRat(int64(r.Intn(17)), 16)); err != nil {
			panic(err)
		}
	}
}
