package plan

import (
	"fmt"
	"math"
	"math/big"
	"sync"
)

// floatRegPool recycles interval register files across ExecFloat calls,
// the same way ratRegPool does for the exact path: the fast kernel's
// per-call cost is a few flops per op, so a register-file allocation
// per call is a measurable fraction of a dense reweight's budget.
// Define-before-use (Validate) makes stale contents invisible.
var floatRegPool sync.Pool

func getFloatRegs(n int) *[]Enclosure {
	if v, ok := floatRegPool.Get().(*[]Enclosure); ok && cap(*v) >= n {
		*v = (*v)[:n]
		return v
	}
	s := make([]Enclosure, n)
	return &s
}

// This file is the second numeric substrate of the Program IR: ExecFloat
// runs the same instruction stream as Exec, but over a float64 register
// file with per-op directed-rounding error tracking. Each register holds
// a closed interval [Lo, Hi] certified to contain the exact rational
// value the corresponding Exec register would hold, so the final
// interval is a machine-checked enclosure of the exact answer — near
// hardware-speed arithmetic whose error bound is a result, not a hope.
// Package core routes evaluation through ExecFloat for the fast and
// auto precision modes, falling back to Exec when the enclosure is
// wider than the caller's tolerance.

// Enclosure is a certified enclosure [Lo, Hi] of an exact rational
// value: the exact value v produced by Exec on the same inputs
// satisfies Lo ≤ v ≤ Hi. A valid interval has Lo ≤ Hi and no NaN
// endpoints; infinite endpoints are possible in principle (overflow on
// hostile decoded programs) and simply make the enclosure vacuous on
// that side.
type Enclosure struct {
	Lo, Hi float64
}

// Width returns the absolute width Hi − Lo of the enclosure — the
// certified absolute-error budget of the point estimate Mid.
func (iv Enclosure) Width() float64 { return iv.Hi - iv.Lo }

// String renders the enclosure as "[lo, hi]".
func (iv Enclosure) String() string { return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi) }

// Mid returns the midpoint of the enclosure, the point estimate whose
// distance to the exact value is at most Width.
func (iv Enclosure) Mid() float64 {
	// Lo + (Hi−Lo)/2 avoids the overflow of (Lo+Hi)/2 on huge bounds.
	return iv.Lo + (iv.Hi-iv.Lo)/2
}

// Contains reports whether the exact rational x lies inside the
// enclosure. It is exact: the float endpoints are converted to
// rationals (every finite float64 is a rational), never the other way
// around. Intervals with NaN endpoints contain nothing.
func (iv Enclosure) Contains(x *big.Rat) bool {
	if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
		return false
	}
	if math.IsInf(iv.Lo, 1) || math.IsInf(iv.Hi, -1) {
		return false
	}
	if !math.IsInf(iv.Lo, -1) && new(big.Rat).SetFloat64(iv.Lo).Cmp(x) > 0 {
		return false
	}
	if !math.IsInf(iv.Hi, 1) && new(big.Rat).SetFloat64(iv.Hi).Cmp(x) < 0 {
		return false
	}
	return true
}

// down and up nudge a round-to-nearest result outward by one ulp in the
// respective direction. A float64 operation on float64 inputs errs by
// at most half an ulp from the exact real result, so the neighbouring
// representable value in each direction is a certified directed-rounding
// bound; this trades at most one ulp of tightness per op for not having
// to touch the FPU rounding mode (which Go cannot portably do).
//
// They are open-coded equivalents of math.Nextafter(x, ∓Inf) — same
// result for every input, NaN and ±Inf included — because Nextafter is
// too large to inline and these run once or twice per op per lane on
// the kernel's hot path. IEEE binary64 ordering makes the neighbour a
// ±1 on the bit pattern within each sign half; only the sign boundary
// (±0) and the receiving infinity need cases of their own.
func down(x float64) float64 {
	if x > 0 { // +Inf lands on MaxFloat64 via the same bits-1
		return math.Float64frombits(math.Float64bits(x) - 1)
	}
	if x < -math.MaxFloat64 || x != x { // -Inf and NaN are fixed points
		return x
	}
	if x < 0 {
		return math.Float64frombits(math.Float64bits(x) + 1)
	}
	return math.Float64frombits(0x8000000000000001) // ±0 → -tiniest subnormal
}

func up(x float64) float64 {
	if x < 0 { // -Inf lands on -MaxFloat64 via the same bits-1
		return math.Float64frombits(math.Float64bits(x) - 1)
	}
	if x > math.MaxFloat64 || x != x { // +Inf and NaN are fixed points
		return x
	}
	if x > 0 {
		return math.Float64frombits(math.Float64bits(x) + 1)
	}
	return math.Float64frombits(1) // ±0 → +tiniest subnormal
}

// sumExact reports whether s is exactly x+y, using the Knuth 2Sum error
// extraction (valid for all finite floats, subnormals included: the
// rounding error of an IEEE addition is always representable, and 2Sum
// recovers it exactly). When it holds, the computed bound needs no
// outward widening — which is what keeps enclosures of dyadic inputs
// (certain edges, probability 1/2) at zero width through entire
// programs.
func sumExact(x, y, s float64) bool {
	bv := s - x
	av := s - bv
	return (y-bv)+(x-av) == 0
}

// sumLo and sumHi return certified lower/upper bounds of x+y.
func sumLo(x, y float64) float64 {
	s := x + y
	if sumExact(x, y, s) {
		return s
	}
	return down(s)
}

func sumHi(x, y float64) float64 {
	s := x + y
	if sumExact(x, y, s) {
		return s
	}
	return up(s)
}

// minNormal is the smallest positive normal float64; below it the FMA
// error extraction of prodExact is not reliable (the rounding error of
// a subnormal product may itself be unrepresentable), so subnormal
// products are always widened.
const minNormal = 0x1p-1022

// prodExact reports whether p is exactly x·y, via fused multiply-add
// error extraction.
func prodExact(x, y, p float64) bool {
	if x == 0 || y == 0 {
		return p == 0 // exact unless the other operand was ±Inf (p NaN)
	}
	if math.Abs(p) < minNormal { // subnormal or zero after underflow
		return false
	}
	return math.FMA(x, y, -p) == 0 // Inf/NaN p fail this, forcing widening
}

// prodBounds returns a certified enclosure of the single product x·y;
// prodLo and prodHi are its one-sided halves for callers that only need
// one bound.
func prodBounds(x, y float64) (lo, hi float64) {
	p := x * y
	if prodExact(x, y, p) {
		return p, p
	}
	return down(p), up(p)
}

func prodLo(x, y float64) float64 {
	p := x * y
	if prodExact(x, y, p) {
		return p
	}
	return down(p)
}

func prodHi(x, y float64) float64 {
	p := x * y
	if prodExact(x, y, p) {
		return p
	}
	return up(p)
}

// enclose returns a one-ulp float64 interval containing the exact
// rational r.
func enclose(r *big.Rat) Enclosure {
	// Fast path for the overwhelmingly common case: numerator and
	// denominator both exactly representable as float64 integers. IEEE
	// division of exact operands is correctly rounded, so the quotient
	// errs by at most half an ulp and the representable neighbours
	// bound it. This skips big.Rat.Float64's arbitrary-precision
	// quotient machinery, which would otherwise dominate the whole
	// float kernel (one conversion per OpLoad).
	const maxExact = 1 << 53
	if num, den := r.Num(), r.Denom(); num.IsInt64() && den.IsInt64() {
		n, d := num.Int64(), den.Int64()
		if n > -maxExact && n < maxExact && d < maxExact {
			q := float64(n) / float64(d)
			if d&(d-1) == 0 {
				// A power-of-two denominator divides exactly (the
				// quotient only shifts the exponent), so dyadic
				// rationals — certain edges, halves, parsed binary
				// fractions — enclose at zero width.
				return Enclosure{Lo: q, Hi: q}
			}
			return Enclosure{Lo: down(q), Hi: up(q)}
		}
	}
	f, exact := r.Float64()
	if exact {
		return Enclosure{Lo: f, Hi: f}
	}
	// Float64 rounds to nearest (ties to even), so the true value lies
	// strictly between the two representable neighbours of f. When |r|
	// overflows, f is ±Inf and Nextafter pulls the finite side back to
	// ±MaxFloat64, which is still a correct bound.
	return Enclosure{Lo: down(f), Hi: up(f)}
}

// mulEnclosure multiplies two intervals. Nonnegative operands — the
// entire probability domain, hence nearly every multiplication a
// lowered program performs — take a two-product fast path: the product
// interval of [a,b]×[c,d] with a,c ≥ 0 is exactly [a·c, b·d], so only
// those two corners need certified bounds. The general four-product
// form remains for the rest (decoded programs may carry arbitrary
// constants, and sound enclosures can dip an ulp below zero); its
// bounds are the min/max of the four per-pair certified enclosures —
// per-pair, because picking the min of the round-to-nearest products
// first and bounding it after could land up to half an ulp above the
// true minimum when two products are within an ulp of each other. A
// NaN operand fails the fast path's comparisons and propagates through
// min/max as before.
func mulEnclosure(a, b Enclosure) Enclosure {
	if a.Lo >= 0 && b.Lo >= 0 {
		return Enclosure{Lo: prodLo(a.Lo, b.Lo), Hi: prodHi(a.Hi, b.Hi)}
	}
	lo, hi := prodBounds(a.Lo, b.Lo)
	for _, xy := range [3][2]float64{{a.Lo, b.Hi}, {a.Hi, b.Lo}, {a.Hi, b.Hi}} {
		l, h := prodBounds(xy[0], xy[1])
		lo, hi = math.Min(lo, l), math.Max(hi, h)
	}
	return Enclosure{Lo: lo, Hi: hi}
}

// ExecFloat interprets the program against probs — the same probability
// vector Exec takes — over float64 intervals and returns a certified
// enclosure of the exact result: Exec(probs) ∈ [Lo, Hi] whenever both
// succeed. Per op it costs a handful of flops instead of arbitrary-
// precision multiplication with GCD normalization, which is what makes
// it the serving fast path; the price is a one-ulp outward widening per
// op, so the final Width grows linearly with program length and stays
// far below any practical tolerance for the linear-size programs the
// tractable cells lower to.
//
// ExecFloat fails only on malformed inputs (wrong vector length, nil
// probabilities, unknown opcodes) or if interval arithmetic degenerates
// to NaN (possible only for decoded programs with overflowing
// constants); it never returns an unsound interval.
func (p *Program) ExecFloat(probs []*big.Rat) (Enclosure, error) {
	if len(probs) != p.NumEdges {
		return Enclosure{}, fmt.Errorf("plan: %d probabilities for a program over %d edges", len(probs), p.NumEdges)
	}
	rp := getFloatRegs(p.NumRegs)
	defer floatRegPool.Put(rp)
	regs := *rp
	for i := range p.Ops {
		op := &p.Ops[i]
		var r Enclosure
		switch op.Code {
		case OpConst:
			r = enclose(p.Consts[op.A])
		case OpLoad:
			pr := probs[op.A]
			if pr == nil {
				return Enclosure{}, fmt.Errorf("plan: nil probability for edge %d", op.A)
			}
			r = enclose(pr)
		case OpMul:
			r = mulEnclosure(regs[op.A], regs[op.B])
		case OpAdd:
			a, b := regs[op.A], regs[op.B]
			r = Enclosure{Lo: sumLo(a.Lo, b.Lo), Hi: sumHi(a.Hi, b.Hi)}
		case OpOneMinus:
			a := regs[op.A]
			r = Enclosure{Lo: sumLo(1, -a.Hi), Hi: sumHi(1, -a.Lo)}
		default:
			return Enclosure{}, fmt.Errorf("plan: unknown opcode %d", op.Code)
		}
		if math.IsNaN(r.Lo) || math.IsNaN(r.Hi) {
			return Enclosure{}, fmt.Errorf("plan: op %d: interval arithmetic degenerated to NaN", i)
		}
		regs[op.Dst] = r
	}
	return regs[p.Out], nil
}
