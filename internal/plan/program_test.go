package plan

import (
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/betadnf"
	"phom/internal/gen"
	"phom/internal/graph"
)

func TestProgramBuilderExec(t *testing.T) {
	// (1 − π0)·π1 + 1/3 over two edges, by hand.
	b := NewBuilder(2)
	p0 := b.Load(0)
	om := b.OneMinus(p0)
	b.Release(p0)
	p1 := b.Load(1)
	m := b.Mul(om, p1)
	b.Release(om)
	b.Release(p1)
	c := b.Const(rat("1/3"))
	out := b.Add(m, c)
	prog, err := b.Finish(out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Exec([]*big.Rat{rat("1/2"), rat("1/4")})
	if err != nil {
		t.Fatal(err)
	}
	if want := rat("11/24"); got.Cmp(want) != 0 {
		t.Fatalf("Exec = %s, want %s", got.RatString(), want.RatString())
	}
	// Register reuse: releasing p0 and om must have bounded the file.
	if prog.NumRegs > 5 {
		t.Errorf("NumRegs = %d, expected reuse to keep it ≤ 5", prog.NumRegs)
	}
}

func TestProgramExecRejectsBadInput(t *testing.T) {
	prog, err := Lower(NewConst(rat("1/2")), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Exec([]*big.Rat{rat("1")}); err == nil {
		t.Fatal("expected a length-mismatch error")
	}
	b := NewBuilder(2)
	out := b.Load(1)
	prog2, err := b.Finish(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog2.Exec([]*big.Rat{rat("1"), nil}); err == nil {
		t.Fatal("expected a nil-probability error")
	}
}

func TestBuilderRejectsBadLoad(t *testing.T) {
	b := NewBuilder(2)
	out := b.Load(5)
	if _, err := b.Finish(out); err == nil {
		t.Fatal("expected a sticky out-of-range error")
	}
}

func TestProgramValidate(t *testing.T) {
	cases := []struct {
		name string
		prog Program
	}{
		{"empty", Program{NumRegs: 1}},
		{"no regs", Program{Ops: []Op{{Code: OpConst}}}},
		{"more regs than ops", Program{NumRegs: 3, Ops: []Op{{Code: OpLoad}}, NumEdges: 1}},
		{"bad opcode", Program{NumRegs: 1, Ops: []Op{{Code: 99}}}},
		{"bad const index", Program{NumRegs: 1, Ops: []Op{{Code: OpConst, A: 1}}}},
		{"nil const", Program{NumRegs: 1, Consts: []*big.Rat{nil}, Ops: []Op{{Code: OpConst}}}},
		{"bad edge", Program{NumRegs: 1, NumEdges: 1, Ops: []Op{{Code: OpLoad, A: 4}}}},
		{"use before def", Program{NumRegs: 2, Ops: []Op{{Code: OpOneMinus, Dst: 0, A: 1}, {Code: OpConst, Dst: 1}}, Consts: []*big.Rat{rat("1")}}},
		{"undefined out", Program{NumRegs: 2, Consts: []*big.Rat{rat("1")}, Ops: []Op{{Code: OpConst, Dst: 0}, {Code: OpConst, Dst: 0}}, Out: 1}},
		{"negative edges", Program{NumEdges: -1, NumRegs: 1, Consts: []*big.Rat{rat("1")}, Ops: []Op{{Code: OpConst}}}},
	}
	for _, tc := range cases {
		if err := tc.prog.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid program", tc.name)
		}
	}
	ok := Program{NumRegs: 1, Consts: []*big.Rat{rat("1/2")}, Ops: []Op{{Code: OpConst, Dst: 0, A: 0}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

// lowerAndCompare checks that the flattened program of p computes
// RatString-byte-identical results to the tree evaluator across several
// reweightings of h.
func lowerAndCompare(t *testing.T, r *rand.Rand, p Plan, h *graph.ProbGraph, what string) {
	t.Helper()
	prog, err := Lower(p, h.G.NumEdges())
	if err != nil {
		t.Fatalf("%s: Lower: %v", what, err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("%s: lowered program invalid: %v", what, err)
	}
	for reweight := 0; reweight < 4; reweight++ {
		probs := h.Probs()
		tree, err := p.Evaluate(probs)
		if err != nil {
			t.Fatalf("%s: tree Evaluate: %v", what, err)
		}
		flat, err := prog.Exec(probs)
		if err != nil {
			t.Fatalf("%s: Exec: %v", what, err)
		}
		if tree.RatString() != flat.RatString() {
			t.Fatalf("%s: tree %s vs program %s", what, tree.RatString(), flat.RatString())
		}
		randomize(r, h)
	}
}

// TestLoweredProgramsMatchTreeEvaluate is the plan-layer differential:
// for every structural compiler, the flattened Program agrees
// byte-identically with the tree evaluation under many probability
// assignments, including degenerate 0/1 weights.
func TestLoweredProgramsMatchTreeEvaluate(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	un := []graph.Label{graph.Unlabeled}
	rs := []graph.Label{"R", "S"}

	for trial := 0; trial < 20; trial++ {
		h := gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 2+r.Intn(10), un), 0.7)
		p, err := DirectedPathOnDWTs(h, 1+r.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		lowerAndCompare(t, r, p, h, "DirectedPathOnDWTs")
	}
	for trial := 0; trial < 20; trial++ {
		h := gen.RandProb(r, gen.RandInClass(r, graph.ClassUPT, 2+r.Intn(10), un), 0.7)
		p, err := DirectedPathOnPolytrees(h, 1+r.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		lowerAndCompare(t, r, p, h, "DirectedPathOnPolytrees")
	}
	for trial := 0; trial < 20; trial++ {
		q := gen.Rand1WP(r, 2+r.Intn(3), rs)
		h := gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 2+r.Intn(10), rs), 0.7)
		p, err := Path1WPOnDWT(q, h)
		if err != nil {
			t.Fatal(err)
		}
		lowerAndCompare(t, r, p, h, "Path1WPOnDWT")
	}
	for trial := 0; trial < 20; trial++ {
		q := gen.RandConnected(r, 2+r.Intn(3), 1, rs)
		h := gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, 2+r.Intn(10), rs), 0.7)
		p, err := ConnectedOn2WP(q, h)
		if err != nil {
			t.Fatal(err)
		}
		lowerAndCompare(t, r, p, h, "ConnectedOn2WP")
	}
	for trial := 0; trial < 10; trial++ {
		qs := []*graph.Graph{gen.Rand1WP(r, 2+r.Intn(2), rs), gen.Rand1WP(r, 2+r.Intn(2), rs)}
		h := gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 2+r.Intn(8), rs), 0.7)
		p, err := Union1WPOnDWT(qs, h)
		if err != nil {
			t.Fatal(err)
		}
		lowerAndCompare(t, r, p, h, "Union1WPOnDWT")
	}
	for trial := 0; trial < 10; trial++ {
		qs := []*graph.Graph{gen.RandConnected(r, 2+r.Intn(2), 1, rs), gen.RandConnected(r, 2+r.Intn(2), 1, rs)}
		h := gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, 2+r.Intn(8), rs), 0.7)
		p, err := UnionConnectedOn2WP(qs, h)
		if err != nil {
			t.Fatal(err)
		}
		lowerAndCompare(t, r, p, h, "UnionConnectedOn2WP")
	}
}

func TestLowerConstAndComponents(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	h := gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, 4, []graph.Label{graph.Unlabeled}), 0.5)
	comp := Components{Parts: []Plan{NewConst(rat("1/3")), NewConst(rat("1/5"))}}
	lowerAndCompare(t, r, comp, h, "Components of Consts")
	lowerAndCompare(t, r, NewConst(rat("0")), h, "Const 0")
	lowerAndCompare(t, r, NewConst(rat("1")), h, "Const 1")
}

func TestLowerOpaqueFails(t *testing.T) {
	o := Opaque{Eval: func(probs []*big.Rat) (*big.Rat, error) { return new(big.Rat), nil }}
	if _, err := Lower(o, 1); err != ErrOpaque {
		t.Fatalf("Lower(Opaque) = %v, want ErrOpaque", err)
	}
}

// TestChainEmitMatchesProbDirect drives the betadnf chain lowering on a
// hand-built multi-level system (deep chains, dead subtrees) where the
// pruning and streak-cap paths all fire.
func TestChainEmitMatchesProbDirect(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sys := &betadnf.ChainSystem{
		//        0 (root)
		//   1        2        3(dead)
		//  4 5       6
		Parent:   []int{-1, 0, 0, 0, 1, 1, 2},
		ChainLen: []int{0, 0, 1, 0, 2, 1, 2},
	}
	cc, err := sys.Compile()
	if err != nil {
		t.Fatal(err)
	}
	n := len(sys.Parent)
	nodeEdge := make([]int, n)
	for i := range nodeEdge {
		nodeEdge[i] = i - 1 // node v reads edge v−1; root reads nothing
	}
	c := Chain{System: cc, NodeEdge: nodeEdge}
	prog, err := Lower(c, n-1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		probs := make([]*big.Rat, n-1)
		for i := range probs {
			probs[i] = big.NewRat(int64(r.Intn(17)), 16)
		}
		tree, err := c.Evaluate(probs)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := prog.Exec(probs)
		if err != nil {
			t.Fatal(err)
		}
		if tree.RatString() != flat.RatString() {
			t.Fatalf("trial %d: tree %s vs program %s", trial, tree.RatString(), flat.RatString())
		}
	}
}
