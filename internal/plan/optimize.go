package plan

import (
	"math/big"
)

// This file implements the lowering-time optimization pass over the
// Program IR. The emit dynamic programs of betadnf and ddnnf favour
// regularity over minimality: chain and interval trellises emit
// mul-by-one accumulator seeds, per-state complements of the same
// variable, and constant subtrees that never vary with π. Optimize
// removes that redundancy with three classic, exactness-preserving
// transformations — constant folding, global value numbering (CSE with
// commutative operand ordering), and dead-op elimination — plus the
// algebraic identities x·1 = x, x·0 = 0, x+0 = x and 1−(1−x) = x.
//
// Every rewrite is exact: program arithmetic is rational, so folding
// and reassociation cannot change a single result bit (Exec of the
// optimized program is RatString-byte-identical to Exec of the
// original). On the float substrate the optimized program runs the
// same-or-fewer interval operations, so its certified enclosure still
// contains the exact value — it is typically tighter, never unsound
// (soundness is a per-op property of the kernel, not of the schedule).
//
// Optimize runs once per lowering (LowerContext); decoded programs are
// executed exactly as encoded, so snapshot round-trips stay
// byte-identical (see graphio's plan encoding).

// vKind enumerates the value forms of the optimizer's value-numbering
// table, mirroring the opcodes.
type vKind uint8

const (
	vConst vKind = iota
	vLoad
	vMul
	vAdd
	vOneMinus
)

// optValue is one entry of the value table: a canonical, deduplicated
// computation. a and b are value ids (operands) for vMul/vAdd, a is a
// value id for vOneMinus and an instance edge index for vLoad, and c is
// the constant for vConst. Operand ids always precede the value's own
// id, so the table is topologically ordered by construction.
type optValue struct {
	kind vKind
	a, b int
	c    *big.Rat
}

// optKey is the hash-consing key of a value.
type optKey struct {
	kind vKind
	a, b int
	c    string // RatString for vConst, "" otherwise
}

type optimizer struct {
	vals   []optValue
	lookup map[optKey]int
}

func (o *optimizer) intern(key optKey, v optValue) int {
	if id, ok := o.lookup[key]; ok {
		return id
	}
	id := len(o.vals)
	o.vals = append(o.vals, v)
	o.lookup[key] = id
	return id
}

// internConst interns an exact constant. r must not be mutated after
// the call (program constant pools are immutable; folded results are
// fresh rationals).
func (o *optimizer) internConst(r *big.Rat) int {
	return o.intern(optKey{kind: vConst, c: r.RatString()}, optValue{kind: vConst, c: r})
}

func (o *optimizer) internLoad(edge int) int {
	return o.intern(optKey{kind: vLoad, a: edge}, optValue{kind: vLoad, a: edge})
}

func (o *optimizer) internMul(a, b int) int {
	va, vb := &o.vals[a], &o.vals[b]
	if va.kind == vConst && vb.kind == vConst {
		return o.internConst(new(big.Rat).Mul(va.c, vb.c))
	}
	// x·1 = x and x·0 = 0 hold exactly; the float kernel's enclosure of
	// the replacement is the operand's own (tighter or equal, and the
	// exact value is unchanged, so it stays sound).
	if va.kind == vConst {
		if va.c.Cmp(ratOne) == 0 {
			return b
		}
		if va.c.Sign() == 0 {
			return a
		}
	}
	if vb.kind == vConst {
		if vb.c.Cmp(ratOne) == 0 {
			return a
		}
		if vb.c.Sign() == 0 {
			return b
		}
	}
	// Multiplication commutes exactly on both substrates (the interval
	// kernel bounds the same four products either way), so order the
	// operands canonically: a·b and b·a share one value.
	if a > b {
		a, b = b, a
	}
	return o.intern(optKey{kind: vMul, a: a, b: b}, optValue{kind: vMul, a: a, b: b})
}

func (o *optimizer) internAdd(a, b int) int {
	va, vb := &o.vals[a], &o.vals[b]
	if va.kind == vConst && vb.kind == vConst {
		return o.internConst(new(big.Rat).Add(va.c, vb.c))
	}
	if va.kind == vConst && va.c.Sign() == 0 {
		return b
	}
	if vb.kind == vConst && vb.c.Sign() == 0 {
		return a
	}
	if a > b {
		a, b = b, a
	}
	return o.intern(optKey{kind: vAdd, a: a, b: b}, optValue{kind: vAdd, a: a, b: b})
}

func (o *optimizer) internOneMinus(a int) int {
	va := &o.vals[a]
	if va.kind == vConst {
		return o.internConst(new(big.Rat).Sub(ratOne, va.c))
	}
	if va.kind == vOneMinus {
		// 1−(1−x) = x exactly.
		return va.a
	}
	return o.intern(optKey{kind: vOneMinus, a: a}, optValue{kind: vOneMinus, a: a})
}

// Optimize returns an equivalent program with redundant arithmetic
// removed: constant subcomputations folded (exactly — rational
// arithmetic has no rounding, so Exec of the result is byte-identical
// to Exec of the receiver on every probability vector), structurally
// identical subcomputations shared, the identities x·1, x·0, x+0 and
// 1−(1−x) applied, and every op whose value cannot reach the output
// register dropped. The receiver is not modified; the result passes
// Validate and its register file is re-allocated by peak liveness.
// Invalid programs are returned unchanged — Optimize never turns a
// decodable program into a different one it cannot prove equivalent.
func (p *Program) Optimize() *Program {
	if err := p.Validate(); err != nil {
		return p
	}
	o := &optimizer{lookup: make(map[optKey]int, len(p.Ops))}
	regVal := make([]int, p.NumRegs)
	for i := range p.Ops {
		op := &p.Ops[i]
		var id int
		switch op.Code {
		case OpConst:
			id = o.internConst(p.Consts[op.A])
		case OpLoad:
			id = o.internLoad(int(op.A))
		case OpMul:
			id = o.internMul(regVal[op.A], regVal[op.B])
		case OpAdd:
			id = o.internAdd(regVal[op.A], regVal[op.B])
		case OpOneMinus:
			id = o.internOneMinus(regVal[op.A])
		}
		regVal[op.Dst] = id
	}
	outVal := regVal[p.Out]

	// Dead-op elimination: only values reachable from the output are
	// rebuilt. Value ids are topologically ordered (operands precede
	// users), so a single ascending emission pass is a valid schedule.
	needed := make([]bool, len(o.vals))
	stack := []int{outVal}
	needed[outVal] = true
	for len(stack) > 0 {
		v := &o.vals[stack[len(stack)-1]]
		stack = stack[:len(stack)-1]
		switch v.kind {
		case vMul, vAdd:
			for _, op := range [2]int{v.a, v.b} {
				if !needed[op] {
					needed[op] = true
					stack = append(stack, op)
				}
			}
		case vOneMinus:
			if !needed[v.a] {
				needed[v.a] = true
				stack = append(stack, v.a)
			}
		}
	}

	// lastUse drives register recycling in the rebuild: a value's
	// register is released right after its last needed user emits.
	lastUse := make([]int, len(o.vals))
	for id, v := range o.vals {
		if !needed[id] {
			continue
		}
		switch v.kind {
		case vMul, vAdd:
			lastUse[v.a], lastUse[v.b] = id, id
		case vOneMinus:
			lastUse[v.a] = id
		}
	}
	lastUse[outVal] = len(o.vals) // the output register is never freed

	b := NewBuilder(p.NumEdges)
	regOf := make([]uint32, len(o.vals))
	for id, v := range o.vals {
		if !needed[id] {
			continue
		}
		switch v.kind {
		case vConst:
			regOf[id] = b.Const(v.c)
		case vLoad:
			regOf[id] = b.Load(v.a)
		case vMul:
			regOf[id] = b.Mul(regOf[v.a], regOf[v.b])
		case vAdd:
			regOf[id] = b.Add(regOf[v.a], regOf[v.b])
		case vOneMinus:
			regOf[id] = b.OneMinus(regOf[v.a])
		}
		switch v.kind {
		case vMul, vAdd:
			if lastUse[v.a] == id {
				b.Release(regOf[v.a])
			}
			if v.b != v.a && lastUse[v.b] == id {
				b.Release(regOf[v.b])
			}
		case vOneMinus:
			if lastUse[v.a] == id {
				b.Release(regOf[v.a])
			}
		}
	}
	np, err := b.Finish(regOf[outVal])
	if err != nil {
		return p // cannot happen for a valid input; keep the proven program
	}
	return np
}
