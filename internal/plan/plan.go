package plan

import (
	"fmt"
	"math/big"

	"phom/internal/betadnf"
	"phom/internal/ddnnf"
	"phom/internal/graph"
)

// Plan is a compiled, probability-independent evaluation artifact. The
// probs argument is indexed by the edge list of the instance the plan
// was compiled from (position i holds π of edge i); callers reweighting
// a structurally identical instance with a different edge numbering must
// permute the vector first (see graphio.CanonicalEdgeOrder).
//
// Evaluate walks the plan tree (the PR 2 evaluation path, kept as the
// differential reference); EmitOps lowers the same arithmetic to the
// flat Program IR, which is what the solver pipeline executes and what
// internal/graphio serializes. Opaque plans do not lower (ErrOpaque).
type Plan interface {
	Evaluate(probs []*big.Rat) (*big.Rat, error)
	EmitOps(b *Builder) (uint32, error)
}

// Const is the plan of a job decided by structure alone: a trivial
// (edgeless) query, a query label absent from the instance, or a
// non-graded query on forest worlds. Its value is independent of π.
type Const struct {
	Value *big.Rat
}

// NewConst returns a Const plan with the given value (copied).
func NewConst(v *big.Rat) Const {
	return Const{Value: new(big.Rat).Set(v)}
}

// Evaluate returns a fresh copy of the constant.
func (c Const) Evaluate(probs []*big.Rat) (*big.Rat, error) {
	return new(big.Rat).Set(c.Value), nil
}

// Chain evaluates a β-acyclic chain system (the lineages of
// Propositions 4.10 and 3.6 on downward-tree instances), precompiled so
// evaluation runs the dynamic program with no per-call setup. NodeEdge
// maps each system node to the instance edge above it (−1 for roots,
// whose probability is fixed to 1).
type Chain struct {
	System   *betadnf.CompiledChain
	NodeEdge []int
}

// Evaluate runs the chain dynamic program under π.
func (c Chain) Evaluate(probs []*big.Rat) (*big.Rat, error) {
	nodeProbs := make([]*big.Rat, len(c.NodeEdge))
	for v, ei := range c.NodeEdge {
		if ei < 0 {
			nodeProbs[v] = graph.RatOne
			continue
		}
		if ei >= len(probs) {
			return nil, fmt.Errorf("plan: chain node %d references edge %d of %d", v, ei, len(probs))
		}
		nodeProbs[v] = probs[ei]
	}
	return c.System.Prob(nodeProbs)
}

// Interval evaluates a β-acyclic interval system (the lineages of
// Proposition 4.11 on two-way-path instances). VarEdge maps each path
// position to the instance edge at that position.
type Interval struct {
	System  *betadnf.IntervalSystem
	VarEdge []int
}

// Evaluate runs the interval dynamic program under π.
func (iv Interval) Evaluate(probs []*big.Rat) (*big.Rat, error) {
	varProbs := make([]*big.Rat, len(iv.VarEdge))
	for i, ei := range iv.VarEdge {
		if ei < 0 || ei >= len(probs) {
			return nil, fmt.Errorf("plan: interval position %d references edge %d of %d", i, ei, len(probs))
		}
		varProbs[i] = probs[ei]
	}
	return iv.System.Prob(varProbs)
}

// Circuit evaluates a d-DNNF lineage circuit (the automaton pipeline of
// Proposition 5.4 on polytree instances). VarEdge maps each circuit
// variable to an instance edge.
type Circuit struct {
	C       *ddnnf.Circuit
	Out     ddnnf.Gate
	VarEdge []int
}

// Evaluate computes the circuit probability under π in linear time.
func (c Circuit) Evaluate(probs []*big.Rat) (*big.Rat, error) {
	varProbs := make([]*big.Rat, len(c.VarEdge))
	for i, ei := range c.VarEdge {
		if ei < 0 || ei >= len(probs) {
			return nil, fmt.Errorf("plan: circuit variable %d references edge %d of %d", i, ei, len(probs))
		}
		varProbs[i] = probs[ei]
	}
	return c.C.Prob(c.Out, varProbs), nil
}

// Components is the Lemma 3.7 composite: for a connected query over a
// disconnected instance, Pr = 1 − Π_i (1 − p_i) over the per-component
// plans, whose edge references all index the full instance edge list.
type Components struct {
	Parts []Plan
}

// Evaluate combines the component probabilities per Lemma 3.7.
func (c Components) Evaluate(probs []*big.Rat) (*big.Rat, error) {
	miss := big.NewRat(1, 1)
	for _, part := range c.Parts {
		p, err := part.Evaluate(probs)
		if err != nil {
			return nil, err
		}
		miss.Mul(miss, p.Sub(graph.RatOne, p))
	}
	return miss.Sub(graph.RatOne, miss), nil
}

// Opaque is a plan with no exploitable structure: evaluation re-solves
// the captured job against each probability assignment. It is the plan
// form of the exponential baselines, kept so that structure-keyed plan
// caching stays total — an opaque hit is correct, merely not faster.
type Opaque struct {
	Eval func(probs []*big.Rat) (*big.Rat, error)
}

// Evaluate re-solves under π.
func (o Opaque) Evaluate(probs []*big.Rat) (*big.Rat, error) {
	return o.Eval(probs)
}
