package plan

import (
	"context"
	"fmt"
	"math/big"
	"sync"

	"phom/internal/phomerr"
)

// This file defines the flattened evaluation IR: a Program is a linear
// instruction stream over a register file of rationals, the common
// compilation target of every non-opaque plan. Where the PR 2 plan tree
// evaluated through a heterogeneous set of Go closures (chain DP,
// interval DP, d-DNNF traversal), a Program is pure data — one op
// array, one constant pool — executed by the single Exec hot loop
// below, and serializable by internal/graphio. The per-substrate tree
// evaluators remain as the differential reference (Plan.Evaluate);
// Lower turns a tree into its Program.

// OpCode enumerates the instruction set. The set is deliberately tiny:
// every tractable cell of the paper evaluates by a straight-line
// sequence of loads, constants, multiplications, additions and
// complementations (the chain and interval dynamic programs unroll —
// their trellises are fixed at compile time — and d-DNNF gates map one
// op per gate input).
type OpCode uint8

const (
	// OpConst sets reg[Dst] to the constant pool entry A.
	OpConst OpCode = iota
	// OpLoad sets reg[Dst] to π[A], the probability of instance edge A.
	OpLoad
	// OpMul sets reg[Dst] to reg[A] · reg[B].
	OpMul
	// OpAdd sets reg[Dst] to reg[A] + reg[B].
	OpAdd
	// OpOneMinus sets reg[Dst] to 1 − reg[A].
	OpOneMinus

	numOpCodes = iota // count of defined opcodes, for validation
)

// Op is one instruction. A and B are register indices for OpMul/OpAdd,
// A is a register index for OpOneMinus, a constant-pool index for
// OpConst, and an instance edge index for OpLoad.
type Op struct {
	Code OpCode
	Dst  uint32
	A    uint32
	B    uint32
}

// Program is a compiled plan flattened into straight-line code: execute
// the ops in order against a register file of NumRegs rationals, then
// read the result from register Out. Programs are immutable after
// construction and safe for concurrent Exec calls (each call owns its
// register file). Programs built by Lower are valid by construction;
// decoded ones must pass Validate before Exec (the decoder of
// internal/graphio enforces this).
type Program struct {
	// NumEdges is the length of the probability vector Exec expects —
	// the edge count of the instance the plan was compiled from.
	NumEdges int
	// NumRegs is the size of the register file.
	NumRegs int
	// Consts is the constant pool (exact rationals).
	Consts []*big.Rat
	// Ops is the instruction stream.
	Ops []Op
	// Out is the register holding the result after the last op.
	Out uint32
}

// NumOps returns the instruction count.
func (p *Program) NumOps() int { return len(p.Ops) }

// Validate checks the program statically: opcode and operand ranges,
// definition before use, and a defined Out register. A valid program
// cannot make Exec panic on any probability vector of length NumEdges.
func (p *Program) Validate() error {
	if p.NumEdges < 0 {
		return fmt.Errorf("plan: negative edge count %d", p.NumEdges)
	}
	if p.NumRegs < 1 {
		return fmt.Errorf("plan: program needs at least one register, has %d", p.NumRegs)
	}
	if len(p.Ops) == 0 {
		return fmt.Errorf("plan: empty instruction stream")
	}
	if p.NumRegs > len(p.Ops) {
		// Every register must be written before use and each op writes
		// exactly one, so more registers than ops means dead registers —
		// and would let a hostile encoding demand unbounded memory.
		return fmt.Errorf("plan: %d registers for %d ops", p.NumRegs, len(p.Ops))
	}
	for i, c := range p.Consts {
		if c == nil {
			return fmt.Errorf("plan: nil constant %d", i)
		}
	}
	defined := make([]bool, p.NumRegs)
	for i, op := range p.Ops {
		if op.Code >= numOpCodes {
			return fmt.Errorf("plan: op %d: unknown opcode %d", i, op.Code)
		}
		if int(op.Dst) >= p.NumRegs {
			return fmt.Errorf("plan: op %d: destination register %d of %d", i, op.Dst, p.NumRegs)
		}
		switch op.Code {
		case OpConst:
			if int(op.A) >= len(p.Consts) {
				return fmt.Errorf("plan: op %d: constant %d of %d", i, op.A, len(p.Consts))
			}
		case OpLoad:
			if int(op.A) >= p.NumEdges {
				return fmt.Errorf("plan: op %d: edge %d of %d", i, op.A, p.NumEdges)
			}
		case OpMul, OpAdd:
			if int(op.A) >= p.NumRegs || !defined[op.A] {
				return fmt.Errorf("plan: op %d: operand register %d undefined", i, op.A)
			}
			if int(op.B) >= p.NumRegs || !defined[op.B] {
				return fmt.Errorf("plan: op %d: operand register %d undefined", i, op.B)
			}
		case OpOneMinus:
			if int(op.A) >= p.NumRegs || !defined[op.A] {
				return fmt.Errorf("plan: op %d: operand register %d undefined", i, op.A)
			}
		}
		defined[op.Dst] = true
	}
	if int(p.Out) >= p.NumRegs || !defined[p.Out] {
		return fmt.Errorf("plan: output register %d undefined", p.Out)
	}
	return nil
}

// Exec interprets the program against the probability vector probs
// (indexed by the edge list of the instance the plan was compiled
// from) and returns a freshly allocated result. All arithmetic is
// exact; the result is the same rational the plan tree's Evaluate
// computes, hence RatString-byte-identical.
func (p *Program) Exec(probs []*big.Rat) (*big.Rat, error) {
	return p.ExecCtx(context.Background(), probs)
}

// ratRegPool recycles exact register files across Exec calls. Pooling
// does more than skip one make: a reused big.Rat keeps the big.Int
// backing arrays its numerators and denominators grew on earlier runs,
// so steady-state reweight serving performs the GCD-normalizing
// arithmetic of OpMul/OpAdd almost entirely in place instead of
// re-allocating limb storage per op. Register files of different
// programs share the pool; an entry too small for the requesting
// program is dropped and replaced (define-before-use makes stale
// register contents invisible, so no clearing is needed).
var ratRegPool sync.Pool

func getRatRegs(n int) *[]big.Rat {
	if v, ok := ratRegPool.Get().(*[]big.Rat); ok && cap(*v) >= n {
		*v = (*v)[:n]
		return v
	}
	s := make([]big.Rat, n)
	return &s
}

// ExecCtx is Exec with cooperative cancellation: the interpreter polls
// ctx every phomerr.CheckInterval ops, so a cancelled context aborts a
// long exact evaluation (programs over large instances run millions of
// big.Rat operations) within one checkpoint interval. The arithmetic
// is unchanged — a run that completes is byte-identical to Exec.
func (p *Program) ExecCtx(ctx context.Context, probs []*big.Rat) (*big.Rat, error) {
	if len(probs) != p.NumEdges {
		return nil, fmt.Errorf("plan: %d probabilities for a program over %d edges", len(probs), p.NumEdges)
	}
	cp := phomerr.NewCheckpoint(ctx)
	rp := getRatRegs(p.NumRegs)
	defer ratRegPool.Put(rp)
	regs := *rp
	one := ratOne
	for i := range p.Ops {
		if err := cp.Check(); err != nil {
			return nil, err
		}
		op := &p.Ops[i]
		switch op.Code {
		case OpConst:
			regs[op.Dst].Set(p.Consts[op.A])
		case OpLoad:
			pr := probs[op.A]
			if pr == nil {
				return nil, fmt.Errorf("plan: nil probability for edge %d", op.A)
			}
			regs[op.Dst].Set(pr)
		case OpMul:
			regs[op.Dst].Mul(&regs[op.A], &regs[op.B])
		case OpAdd:
			regs[op.Dst].Add(&regs[op.A], &regs[op.B])
		case OpOneMinus:
			regs[op.Dst].Sub(one, &regs[op.A])
		default:
			return nil, fmt.Errorf("plan: unknown opcode %d", op.Code)
		}
	}
	return new(big.Rat).Set(&regs[p.Out]), nil
}

// Builder assembles a Program. Lowering code obtains registers from the
// emit methods and returns exhausted ones with Release, which bounds
// the register file by the peak live-value count of the computation
// rather than its length. Errors (out-of-range loads, cancellation) are
// sticky and reported by Finish, so lowering code needs no per-call
// checks; once the builder has failed, every emit method becomes a
// cheap no-op, which is what makes cancellation effective inside the
// compile-time dynamic programs of betadnf and ddnnf — the loops may
// keep running, but they stop allocating registers and ops.
type Builder struct {
	numEdges int
	ops      []Op
	consts   []*big.Rat
	constIdx map[string]uint32
	numRegs  uint32
	free     []uint32
	check    *phomerr.Checkpoint
	err      error
}

// NewBuilder returns a Builder for programs over numEdges instance
// edges, without cancellation (the context-free v1 path).
func NewBuilder(numEdges int) *Builder {
	return &Builder{numEdges: numEdges, constIdx: make(map[string]uint32)}
}

// NewBuilderCtx returns a Builder whose emit methods poll ctx every
// phomerr.CheckInterval ops: when ctx is cancelled mid-lowering the
// builder fails sticky with the typed cancellation error, emission
// degenerates to no-ops, and Finish reports the abort.
func NewBuilderCtx(ctx context.Context, numEdges int) *Builder {
	b := NewBuilder(numEdges)
	b.check = phomerr.NewCheckpoint(ctx)
	return b
}

// step gates every emit method: it reports whether emission should
// proceed, polling the cancellation checkpoint and turning a cancelled
// context into the builder's sticky error.
func (b *Builder) step() bool {
	if b.err != nil {
		return false
	}
	if err := b.check.Check(); err != nil {
		b.err = err
		return false
	}
	return true
}

// Failed reports whether the builder is in its sticky-error state
// (lowering bug or cancellation). The emit loops of betadnf and ddnnf
// consult this through their OpEmitter to break out of compile-time
// dynamic programs early instead of spinning through no-op emission.
func (b *Builder) Failed() bool { return b.err != nil }

func (b *Builder) alloc() uint32 {
	if n := len(b.free); n > 0 {
		r := b.free[n-1]
		b.free = b.free[:n-1]
		return r
	}
	r := b.numRegs
	b.numRegs++
	return r
}

// Release returns a register to the free pool. The value it holds must
// not be referenced by any later op.
func (b *Builder) Release(r uint32) { b.free = append(b.free, r) }

// Load emits reg ← π[edge] and returns the register.
func (b *Builder) Load(edge int) uint32 {
	if !b.step() {
		return 0
	}
	if edge < 0 || edge >= b.numEdges {
		b.fail(fmt.Errorf("plan: load of edge %d of %d", edge, b.numEdges))
		return 0
	}
	dst := b.alloc()
	b.ops = append(b.ops, Op{Code: OpLoad, Dst: dst, A: uint32(edge)})
	return dst
}

// Const emits reg ← v and returns the register. Equal rationals share
// one constant-pool entry.
func (b *Builder) Const(v *big.Rat) uint32 {
	if !b.step() {
		return 0
	}
	key := v.RatString()
	idx, ok := b.constIdx[key]
	if !ok {
		idx = uint32(len(b.consts))
		b.consts = append(b.consts, new(big.Rat).Set(v))
		b.constIdx[key] = idx
	}
	dst := b.alloc()
	b.ops = append(b.ops, Op{Code: OpConst, Dst: dst, A: idx})
	return dst
}

// One emits reg ← 1.
func (b *Builder) One() uint32 { return b.Const(ratOne) }

// Zero emits reg ← 0.
func (b *Builder) Zero() uint32 { return b.Const(ratZero) }

// Mul emits reg ← a·b into a fresh register.
func (b *Builder) Mul(a, r2 uint32) uint32 {
	if !b.step() {
		return 0
	}
	dst := b.alloc()
	b.ops = append(b.ops, Op{Code: OpMul, Dst: dst, A: a, B: r2})
	return dst
}

// Add emits reg ← a+b into a fresh register.
func (b *Builder) Add(a, r2 uint32) uint32 {
	if !b.step() {
		return 0
	}
	dst := b.alloc()
	b.ops = append(b.ops, Op{Code: OpAdd, Dst: dst, A: a, B: r2})
	return dst
}

// OneMinus emits reg ← 1−a into a fresh register.
func (b *Builder) OneMinus(a uint32) uint32 {
	if !b.step() {
		return 0
	}
	dst := b.alloc()
	b.ops = append(b.ops, Op{Code: OpOneMinus, Dst: dst, A: a})
	return dst
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Finish seals the program with out as the result register. The
// returned program is valid by construction; Validate is run once as a
// cheap internal consistency check on the lowering itself.
func (b *Builder) Finish(out uint32) (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := &Program{
		NumEdges: b.numEdges,
		NumRegs:  int(b.numRegs),
		Consts:   b.consts,
		Ops:      b.ops,
		Out:      out,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("plan: lowering produced an invalid program: %v", err)
	}
	return p, nil
}

var (
	ratOne  = big.NewRat(1, 1)
	ratZero = new(big.Rat)
)

// Lower flattens a plan tree into a Program over numEdges instance
// edges and runs the Optimize pass on the result, so every program the
// solver pipeline executes or serializes is already folded, shared and
// dead-op free. Opaque plans have no program (ErrOpaque): their
// evaluation re-runs an exponential baseline and is not expressible as
// straight-line arithmetic.
func Lower(p Plan, numEdges int) (*Program, error) {
	return LowerContext(context.Background(), p, numEdges)
}

// LowerContext is Lower with cooperative cancellation: the builder
// polls ctx every phomerr.CheckInterval emitted ops, so cancelling the
// context aborts the compile-time dynamic programs (the chain/interval
// trellis unrolling of betadnf, the per-gate emission of ddnnf) within
// one checkpoint interval and surfaces the typed cancellation error.
func LowerContext(ctx context.Context, p Plan, numEdges int) (*Program, error) {
	b := NewBuilderCtx(ctx, numEdges)
	out, err := p.EmitOps(b)
	if err != nil {
		return nil, err
	}
	prog, err := b.Finish(out)
	if err != nil {
		return nil, err
	}
	return prog.Optimize(), nil
}
