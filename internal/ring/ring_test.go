package ring

import (
	"fmt"
	"reflect"
	"testing"
)

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("structkey-%d", i*2654435761)
	}
	return ks
}

// Lookups are pure functions of (n, vnodes, key): two rings built with
// the same parameters agree on every owner set. This is what lets the
// gate restart (or a test re-bind backends to new ports) without moving
// a single key.
func TestDeterministic(t *testing.T) {
	a, b := New(5, 64), New(5, 64)
	for _, k := range keys(500) {
		oa, ob := a.Owners(k, 3, nil), b.Owners(k, 3, nil)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("owners(%q) differ: %v vs %v", k, oa, ob)
		}
		if len(oa) != 3 {
			t.Fatalf("owners(%q) = %v, want 3 distinct nodes", k, oa)
		}
		seen := map[int]bool{}
		for _, n := range oa {
			if n < 0 || n >= 5 || seen[n] {
				t.Fatalf("owners(%q) = %v: out of range or duplicate", k, oa)
			}
			seen[n] = true
		}
	}
}

// With DefaultVNodes the primary-owner distribution over many keys is
// roughly fair: no node owns more than twice its fair share.
func TestDistribution(t *testing.T) {
	const nodes, nkeys = 4, 4000
	r := New(nodes, 0)
	counts := make([]int, nodes)
	for _, k := range keys(nkeys) {
		counts[r.Owner(k)]++
	}
	fair := nkeys / nodes
	for n, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Fatalf("node %d owns %d of %d keys (fair %d): %v", n, c, nkeys, fair, counts)
		}
	}
}

// Ejecting a node must move exactly its keys — every key whose primary
// owner is still alive keeps that owner, and orphaned keys land on the
// clockwise successor deterministically.
func TestEjectRehash(t *testing.T) {
	r := New(4, 64)
	const dead = 2
	alive := func(n int) bool { return n != dead }
	moved := 0
	for _, k := range keys(2000) {
		before := r.Owner(k)
		after := r.Owners(k, 1, alive)
		if len(after) != 1 {
			t.Fatalf("owners(%q) with one ejection empty", k)
		}
		if before != dead {
			if after[0] != before {
				t.Fatalf("key %q moved %d->%d though owner alive", k, before, after[0])
			}
			continue
		}
		moved++
		full := r.Owners(k, 2, nil)
		if after[0] != full[1] {
			t.Fatalf("key %q rehashed to %d, want clockwise successor %d", k, after[0], full[1])
		}
	}
	if moved == 0 {
		t.Fatal("ejected node owned no keys; distribution broken")
	}
}

// All owners dead -> the walk still finds any alive node; no alive
// node -> empty.
func TestExhaustiveWalk(t *testing.T) {
	r := New(3, 8)
	only := func(n int) func(int) bool { return func(m int) bool { return m == n } }
	for _, k := range keys(50) {
		for n := 0; n < 3; n++ {
			got := r.Owners(k, 1, only(n))
			if len(got) != 1 || got[0] != n {
				t.Fatalf("owners(%q) with only node %d alive = %v", k, n, got)
			}
		}
		if got := r.Owners(k, 1, func(int) bool { return false }); len(got) != 0 {
			t.Fatalf("owners(%q) with nothing alive = %v, want empty", k, got)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(0, 16)
	if r.Owner("k") != -1 {
		t.Fatal("empty ring must return -1")
	}
	if got := r.Owners("k", 2, nil); len(got) != 0 {
		t.Fatalf("empty ring owners = %v", got)
	}
}
