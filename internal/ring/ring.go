// Package ring implements the consistent-hash ring that phomgate uses
// to place jobs on backend replicas.
//
// Nodes are identified by dense indices 0..n-1 rather than by address:
// the ring's geometry then depends only on (n, vnodes), so routing is
// reproducible across gate restarts and across test runs that bind
// backends to random ports. Each node projects a configurable number of
// virtual nodes onto a 64-bit hash circle; a key is owned by the first
// vnodes clockwise from its hash, and replication factor r means the
// first r distinct nodes on that walk. Removing (ejecting) a node moves
// only the keys it owned to the next node clockwise — the deterministic
// rehash the serving tier relies on for eject/rejoin.
package ring

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is an immutable consistent-hash circle over nodes 0..n-1.
// Liveness is deliberately not ring state: callers pass an alive
// predicate per lookup, so eject/rejoin never mutates the geometry
// (and therefore never moves keys between healthy nodes).
type Ring struct {
	points []point // sorted by hash, ties broken by node index
	nodes  int
	vnodes int
}

type point struct {
	hash uint64
	node int
}

// New builds a ring over n nodes with the given number of virtual
// nodes per node. vnodes <= 0 defaults to DefaultVNodes; n <= 0 yields
// an empty ring whose lookups return nothing.
func New(n, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{nodes: n, vnodes: vnodes}
	if n <= 0 {
		return r
	}
	r.points = make([]point, 0, n*vnodes)
	for node := 0; node < n; node++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hashString("node-" + strconv.Itoa(node) + "-vnode-" + strconv.Itoa(v)), node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// DefaultVNodes spreads each node over enough points that the largest
// node's key share stays within a few percent of fair for small
// clusters (the 2–8 replica deployments phomgate targets).
const DefaultVNodes = 128

// Nodes returns the number of nodes the ring was built over.
func (r *Ring) Nodes() int { return r.nodes }

// VNodes returns the number of virtual nodes each node projects.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the first owner of key, ignoring liveness, or -1 on an
// empty ring.
func (r *Ring) Owner(key string) int {
	owners := r.Owners(key, 1, nil)
	if len(owners) == 0 {
		return -1
	}
	return owners[0]
}

// Owners walks clockwise from key's hash and returns up to n distinct
// nodes accepted by alive (nil accepts every node). The walk covers the
// whole circle, so as long as any acceptable node exists it is found:
// with every preferred owner ejected, a key deterministically drains to
// the next healthy node on the ring.
func (r *Ring) Owners(key string, n int, alive func(node int) bool) []int {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool, n)
	owners := make([]int, 0, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		node := r.points[(start+i)%len(r.points)].node
		if seen[node] {
			continue
		}
		seen[node] = true
		if alive == nil || alive(node) {
			owners = append(owners, node)
		}
	}
	return owners
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return finalize(h.Sum64())
}

// finalize runs a 64-bit avalanche (the splitmix64 finalizer) over the
// fnv sum. fnv-1a alone clusters on the short, structured vnode labels
// ("node-3-vnode-17"), which skews the circle badly at small n; the
// finalizer restores a near-uniform spread without changing determinism.
func finalize(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
