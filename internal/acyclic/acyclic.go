package acyclic

import (
	"fmt"

	"phom/internal/graph"
)

// joinEdge is one parent-child constraint of the rooted query tree.
type joinEdge struct {
	parent, child graph.Vertex
	label         graph.Label
	// childToParent: the instance edge goes from the child's image to the
	// parent's image (the query edge is child → parent).
	childToParent bool
}

// plan is a rooted traversal of one connected component of the query.
type plan struct {
	root  graph.Vertex
	edges []joinEdge // in BFS order from the root
}

// buildPlans roots every component of the polytree query q.
func buildPlans(q *graph.Graph) ([]plan, error) {
	if !q.InClass(graph.ClassUPT) {
		return nil, fmt.Errorf("acyclic: query is not a forest of polytrees: %v", q)
	}
	var plans []plan
	for _, comp := range q.ConnectedComponents() {
		p := plan{root: comp[0]}
		visited := map[graph.Vertex]bool{comp[0]: true}
		queue := []graph.Vertex{comp[0]}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, ei := range q.OutEdges(v) {
				e := q.Edge(ei)
				if !visited[e.To] {
					visited[e.To] = true
					p.edges = append(p.edges, joinEdge{parent: v, child: e.To, label: e.Label, childToParent: false})
					queue = append(queue, e.To)
				}
			}
			for _, ei := range q.InEdges(v) {
				e := q.Edge(ei)
				if !visited[e.From] {
					visited[e.From] = true
					p.edges = append(p.edges, joinEdge{parent: v, child: e.From, label: e.Label, childToParent: true})
					queue = append(queue, e.From)
				}
			}
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// HasHomomorphism decides G ⇝ H for a forest-of-polytrees query G by the
// upward semijoin pass of Yannakakis' algorithm: process the rooted query
// tree leaves-first, keeping for each query vertex the set of instance
// vertices that support a homomorphic image of its whole subtree. It
// runs in O(|G| · |E(H)|) time.
func HasHomomorphism(q, h *graph.Graph) (bool, error) {
	hm, err := FindHomomorphism(q, h)
	if err != nil {
		return false, err
	}
	return hm != nil, nil
}

// FindHomomorphism returns a homomorphism from the forest-of-polytrees
// query q to h, or nil if none exists. It performs the upward semijoin
// pass and then extracts a witness top-down, choosing for each vertex
// the smallest supported image.
func FindHomomorphism(q, h *graph.Graph) (graph.Homomorphism, error) {
	plans, err := buildPlans(q)
	if err != nil {
		return nil, err
	}
	n, m := q.NumVertices(), h.NumVertices()
	if n == 0 {
		return graph.Homomorphism{}, nil
	}
	if m == 0 {
		return nil, nil
	}
	// dom[v][w]: instance vertex w supports the subtree of query vertex v.
	dom := make([][]bool, n)
	for v := range dom {
		dom[v] = make([]bool, m)
		for w := range dom[v] {
			dom[v][w] = true
		}
	}
	out := make(graph.Homomorphism, n)
	for i := range out {
		out[i] = -1
	}
	for _, p := range plans {
		// Upward pass: restrict each parent domain by each child's
		// domain, in reverse BFS order (children before parents).
		for i := len(p.edges) - 1; i >= 0; i-- {
			je := p.edges[i]
			for w := 0; w < m; w++ {
				if !dom[je.parent][w] {
					continue
				}
				if !supported(h, dom[je.child], graph.Vertex(w), je) {
					dom[je.parent][w] = false
				}
			}
		}
		// Root choice.
		root := -1
		for w := 0; w < m; w++ {
			if dom[p.root][w] {
				root = w
				break
			}
		}
		if root < 0 {
			return nil, nil
		}
		out[p.root] = graph.Vertex(root)
		// Downward pass: pick any supported child image consistent with
		// the parent's choice.
		for _, je := range p.edges {
			pw := out[je.parent]
			img := graph.Vertex(-1)
			for _, cand := range childCandidates(h, pw, je) {
				if dom[je.child][cand] {
					img = cand
					break
				}
			}
			if img < 0 {
				return nil, fmt.Errorf("acyclic: internal error: no supported child image after semijoin pass")
			}
			out[je.child] = img
		}
	}
	if !graph.IsHomomorphism(q, h, out) {
		return nil, fmt.Errorf("acyclic: internal error: extracted witness is not a homomorphism")
	}
	return out, nil
}

// supported reports whether parent image w has a child image in
// childDom across the constraint je.
func supported(h *graph.Graph, childDom []bool, w graph.Vertex, je joinEdge) bool {
	for _, cand := range childCandidates(h, w, je) {
		if childDom[cand] {
			return true
		}
	}
	return false
}

// childCandidates lists the instance vertices adjacent to the parent
// image w across the constraint je.
func childCandidates(h *graph.Graph, w graph.Vertex, je joinEdge) []graph.Vertex {
	var out []graph.Vertex
	if je.childToParent {
		// Query edge child → parent: instance edge must enter w.
		for _, ei := range h.InEdges(w) {
			e := h.Edge(ei)
			if e.Label == je.label {
				out = append(out, e.From)
			}
		}
	} else {
		for _, ei := range h.OutEdges(w) {
			e := h.Edge(ei)
			if e.Label == je.label {
				out = append(out, e.To)
			}
		}
	}
	return out
}
