package acyclic

import (
	"math/rand"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
)

var twoLabels = []graph.Label{"R", "S"}

// TestMatchesBacktrackingOracle: Yannakakis semijoin evaluation must
// agree with the backtracking search on random polytree queries over
// arbitrary instances.
func TestMatchesBacktrackingOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 600; trial++ {
		q := gen.RandInClass(r, graph.ClassUPT, 1+r.Intn(6), twoLabels)
		h := gen.RandInClass(r, graph.ClassAll, 1+r.Intn(8), twoLabels)
		got, err := HasHomomorphism(q, h)
		if err != nil {
			t.Fatal(err)
		}
		want := graph.HasHomomorphism(q, h)
		if got != want {
			t.Fatalf("semijoin=%v backtracking=%v\nq=%v\nh=%v", got, want, q, h)
		}
	}
}

// TestWitnessesVerify: every extracted witness must be a real
// homomorphism (FindHomomorphism verifies internally; this re-checks
// independently).
func TestWitnessesVerify(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		q := gen.RandInClass(r, graph.ClassPT, 1+r.Intn(6), twoLabels)
		h := gen.RandInClass(r, graph.ClassConnected, 1+r.Intn(8), twoLabels)
		hm, err := FindHomomorphism(q, h)
		if err != nil {
			t.Fatal(err)
		}
		if hm != nil && !graph.IsHomomorphism(q, h, hm) {
			t.Fatalf("witness does not verify: %v", hm)
		}
	}
}

func TestRejectsCyclicQueries(t *testing.T) {
	cyc := graph.New(3)
	cyc.MustAddEdge(0, 1, "R")
	cyc.MustAddEdge(1, 2, "R")
	cyc.MustAddEdge(2, 0, "R")
	h := graph.New(1)
	h.MustAddEdge(0, 0, "R")
	if _, err := HasHomomorphism(cyc, h); err == nil {
		t.Fatal("cyclic query accepted (the semijoin pass is only complete for forests)")
	}
}

func TestTrivialCases(t *testing.T) {
	// Edgeless query on a non-empty instance.
	ok, err := HasHomomorphism(graph.New(3), graph.New(2))
	if err != nil || !ok {
		t.Fatalf("edgeless query: %v %v", ok, err)
	}
	// Empty instance.
	ok, err = HasHomomorphism(graph.New(1), graph.New(0))
	if err != nil || ok {
		t.Fatalf("empty instance: %v %v", ok, err)
	}
}

func TestDirections(t *testing.T) {
	// Query a → b ← c (polytree with in-degree 2) into various shapes.
	q := graph.New(3)
	q.MustAddEdge(0, 1, "R")
	q.MustAddEdge(2, 1, "R")
	yes := graph.New(2)
	yes.MustAddEdge(0, 1, "R") // a and c can collapse
	ok, err := HasHomomorphism(q, yes)
	if err != nil || !ok {
		t.Fatalf("collapse case: %v %v", ok, err)
	}
	no := graph.New(2)
	no.MustAddEdge(0, 1, "S")
	ok, err = HasHomomorphism(q, no)
	if err != nil || ok {
		t.Fatalf("label mismatch matched: %v %v", ok, err)
	}
}

// BenchmarkSemijoinVsBacktracking: the Yannakakis pass on a long path
// query over a large instance.
func BenchmarkSemijoin(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	q := gen.RandInClass(r, graph.ClassPT, 12, twoLabels)
	h := gen.RandInClass(r, graph.ClassConnected, 512, twoLabels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HasHomomorphism(q, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBacktracking(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	q := gen.RandInClass(r, graph.ClassPT, 12, twoLabels)
	h := gen.RandInClass(r, graph.ClassConnected, 512, twoLabels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = graph.HasHomomorphism(q, h)
	}
}
