// Package acyclic implements Yannakakis-style evaluation of acyclic
// conjunctive queries on (non-probabilistic) graphs: deciding G ⇝ H in
// time O(|G| · |H|) when the query graph G is a polytree — the binary-
// signature analogue of an α-acyclic (indeed Berge-acyclic) conjunctive
// query. The paper's introduction cites Yannakakis' algorithm [36] as
// the model of combined tractability that PHom aims for on the
// probabilistic side; this package provides it as a deterministic
// substrate and as a fast homomorphism test for tree-shaped queries.
//
// For tree-structured constraint networks, establishing directed arc
// consistency leaf-to-root and then assigning root-to-first-support is
// sound and complete (Freuder); this is exactly the semijoin program of
// a join tree of the query.
package acyclic
