// Package treeauto implements the automaton-based algorithm of
// Proposition 5.4: probabilistic evaluation of an unlabeled one-way path
// query of length m on a polytree instance, by (1) encoding the polytree
// as a full binary tree whose nodes carry uncertain Boolean annotations,
// (2) building a bottom-up deterministic tree automaton (Definition 5.2)
// whose states track the longest directed path into, out of, and within
// the processed subinstance, capped at m, and (3) compiling the
// automaton's lineage on the uncertain tree into a d-DNNF circuit whose
// probability is the answer.
//
// The binary encoding differs cosmetically from the left-child-right-
// sibling variant in the paper's appendix but has the same shape: every
// internal node represents one polytree edge (an uncertain annotation),
// its left child encodes the subtree hanging off that edge, and its right
// child encodes the remaining edges incident to the same polytree vertex
// (an ε-continuation). Leaves are ε-nodes. The automaton states are the
// triples ⟨↑:i, ↓:j, Max:k⟩ of the appendix.
package treeauto
