package treeauto

import (
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
)

// longestDirectedPathInWorld computes the length of the longest directed
// path of the world of h keeping exactly the edges in keep, by DAG DP
// (polytree worlds are acyclic).
func longestDirectedPathInWorld(h *graph.ProbGraph, keep []bool) int {
	world := h.G.SubgraphKeeping(keep)
	m, ok := world.LongestDirectedPath()
	if !ok {
		panic("polytree world has a cycle")
	}
	return m
}

func TestEncodeFullBinary(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		g := gen.RandPolytree(r, 1+r.Intn(10), nil)
		h := graph.NewProbGraph(g)
		root, err := Encode(h)
		if err != nil {
			t.Fatal(err)
		}
		// Full binary: every node has 0 or 2 children; every polytree
		// edge appears exactly once.
		seen := map[int]int{}
		var walk func(n *BNode)
		var bad bool
		walk = func(n *BNode) {
			if (n.Left == nil) != (n.Right == nil) {
				bad = true
			}
			if n.Var >= 0 {
				seen[n.Var]++
			}
			if n.Left != nil {
				walk(n.Left)
				walk(n.Right)
			}
		}
		walk(root)
		if bad {
			t.Fatalf("encoding is not full binary")
		}
		if len(seen) != g.NumEdges() {
			t.Fatalf("encoding covers %d of %d edges", len(seen), g.NumEdges())
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("edge %d appears %d times", v, c)
			}
		}
	}
}

func TestEncodeRejectsNonPolytree(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, graph.Unlabeled)
	h := graph.NewProbGraph(g) // disconnected: not a polytree
	if _, err := Encode(h); err == nil {
		t.Fatal("disconnected instance accepted")
	}
}

// TestAutomatonComputesLongestPath: on every world of random small
// polytrees, the automaton's Max component must equal the true longest
// directed path (capped at M).
func TestAutomatonComputesLongestPath(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 150; trial++ {
		g := gen.RandPolytree(r, 1+r.Intn(7), nil)
		h := graph.NewProbGraph(g)
		root, err := Encode(h)
		if err != nil {
			t.Fatal(err)
		}
		m := 1 + r.Intn(5)
		a := &Automaton{M: m}
		ne := g.NumEdges()
		keep := make([]bool, ne)
		for mask := 0; mask < 1<<uint(ne); mask++ {
			for i := 0; i < ne; i++ {
				keep[i] = mask&(1<<uint(i)) != 0
			}
			state := a.Run(root, keep)
			want := longestDirectedPathInWorld(h, keep)
			if want > m {
				want = m
			}
			if state.Max != want {
				t.Fatalf("automaton Max=%d, true longest=%d (m=%d)\ninstance=%v keep=%v",
					state.Max, want, m, g, keep)
			}
			if a.Accepting(state) != (want >= m) {
				t.Fatalf("acceptance wrong")
			}
		}
	}
}

// TestPipelineMatchesDirect: the d-DNNF pipeline and the direct state
// distribution must agree exactly.
func TestPipelineMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		g := gen.RandPolytree(r, 1+r.Intn(9), nil)
		h := gen.RandProb(r, g, 0.3)
		m := r.Intn(6)
		viaCircuit, err := PathProbPolytree(h, m)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := PathProbPolytreeDirect(h, m)
		if err != nil {
			t.Fatal(err)
		}
		if viaCircuit.Cmp(direct) != 0 {
			t.Fatalf("circuit=%s direct=%s (m=%d)", viaCircuit.RatString(), direct.RatString(), m)
		}
	}
}

// TestPipelineMatchesBruteForce: the full Proposition 5.4 pipeline must
// agree with world enumeration.
func TestPipelineMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	one := big.NewRat(1, 1)
	for trial := 0; trial < 100; trial++ {
		g := gen.RandPolytree(r, 1+r.Intn(8), nil)
		h := gen.RandProb(r, g, 0.3)
		m := r.Intn(5)
		got, err := PathProbPolytree(h, m)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over all worlds.
		ne := g.NumEdges()
		want := new(big.Rat)
		keep := make([]bool, ne)
		for mask := 0; mask < 1<<uint(ne); mask++ {
			for i := 0; i < ne; i++ {
				keep[i] = mask&(1<<uint(i)) != 0
			}
			if longestDirectedPathInWorld(h, keep) >= m {
				want.Add(want, h.WorldProb(keep))
			}
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("pipeline=%s brute=%s (m=%d, h=%v)", got.RatString(), want.RatString(), m, h)
		}
		if got.Sign() < 0 || got.Cmp(one) > 0 {
			t.Fatalf("probability out of range: %s", got.RatString())
		}
	}
}

// TestCircuitIsDDNNF: the compiled lineage must pass the structural
// decomposability check and the exhaustive determinism check.
func TestCircuitIsDDNNF(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		g := gen.RandPolytree(r, 1+r.Intn(7), nil)
		h := gen.RandProb(r, g, 0.3)
		m := 1 + r.Intn(4)
		root, err := Encode(h)
		if err != nil {
			t.Fatal(err)
		}
		a := &Automaton{M: m}
		c, out := a.CompileLineage(root, g.NumEdges())
		if err := c.CheckDecomposable(out); err != nil {
			t.Fatalf("not decomposable: %v", err)
		}
		if err := c.CheckDeterministicExhaustive(out); err != nil {
			t.Fatalf("not deterministic: %v", err)
		}
		// The circuit must compute the acceptance function.
		ne := g.NumEdges()
		nu := make([]bool, ne)
		for mask := 0; mask < 1<<uint(ne); mask++ {
			for i := 0; i < ne; i++ {
				nu[i] = mask&(1<<uint(i)) != 0
			}
			got := c.Eval(out, nu)
			want := longestDirectedPathInWorld(h, nu) >= m
			if got != want {
				t.Fatalf("circuit disagrees with semantics at %v", nu)
			}
		}
	}
}

func TestPathProbTrivial(t *testing.T) {
	g := graph.Path1WP(graph.Unlabeled)
	h := graph.NewProbGraph(g)
	p, err := PathProbPolytree(h, 0)
	if err != nil || p.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("m=0 must give probability 1, got %v %v", p, err)
	}
	p, err = PathProbPolytree(h, 5)
	if err != nil || p.Sign() != 0 {
		t.Fatalf("m beyond instance size must give 0, got %v %v", p, err)
	}
}

func TestStateString(t *testing.T) {
	if Eps.String() != "ε" || Down.String() != "↓" || Up.String() != "↑" {
		t.Fatal("Dir String broken")
	}
}
