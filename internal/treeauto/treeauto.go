package treeauto

import (
	"fmt"
	"math/big"

	"phom/internal/ddnnf"
	"phom/internal/graph"
)

// Dir is the alphabet Γ of the encoded tree: the orientation of the
// polytree edge a binary node represents, or Eps for structural nodes.
type Dir uint8

// Alphabet symbols.
const (
	Eps  Dir = iota // structural node: merges two groups of the same vertex
	Down            // polytree edge parent → child
	Up              // polytree edge child → parent
)

func (d Dir) String() string {
	switch d {
	case Eps:
		return "ε"
	case Down:
		return "↓"
	case Up:
		return "↑"
	}
	return "?"
}

// BNode is a node of the full binary encoding. Internal nodes (Dir Down
// or Up) carry the index Var of the polytree edge they represent and its
// probability; their annotation bit is "edge kept". Leaves are Eps nodes
// with no variable. Every node has either zero or two children.
type BNode struct {
	Dir         Dir
	Var         int // polytree edge index; −1 for Eps nodes
	Prob        *big.Rat
	Left, Right *BNode
}

// IsLeaf reports whether n has no children.
func (n *BNode) IsLeaf() bool { return n.Left == nil }

// Size returns the number of nodes of the binary tree.
func (n *BNode) Size() int {
	if n == nil {
		return 0
	}
	return 1 + n.Left.Size() + n.Right.Size()
}

// Encode roots the polytree instance h at vertex 0 and builds its full
// binary encoding. It fails if h is not a polytree (its underlying graph
// must be a tree).
func Encode(h *graph.ProbGraph) (*BNode, error) {
	g := h.G
	if !g.IsPolytree() {
		return nil, fmt.Errorf("treeauto: instance is not a polytree: %v", g)
	}
	return encodeVertex(h, 0, -1), nil
}

// encodeVertex builds the encoding of the subinstance hanging at vertex v
// (entered from parent; parent < 0 at the root). The returned subtree's
// "group vertex" is v.
func encodeVertex(h *graph.ProbGraph, v graph.Vertex, parent graph.Vertex) *BNode {
	g := h.G
	type childEdge struct {
		child graph.Vertex
		dir   Dir
		idx   int
	}
	var kids []childEdge
	for _, ei := range g.OutEdges(v) {
		e := g.Edge(ei)
		if e.To != parent {
			kids = append(kids, childEdge{child: e.To, dir: Down, idx: ei})
		}
	}
	for _, ei := range g.InEdges(v) {
		e := g.Edge(ei)
		if e.From != parent {
			kids = append(kids, childEdge{child: e.From, dir: Up, idx: ei})
		}
	}
	node := &BNode{Dir: Eps, Var: -1, Prob: graph.RatOne}
	// Fold the children right-to-left so the chain reads left-to-right in
	// the original order.
	for i := len(kids) - 1; i >= 0; i-- {
		k := kids[i]
		node = &BNode{
			Dir:   k.dir,
			Var:   k.idx,
			Prob:  h.Prob(k.idx),
			Left:  encodeVertex(h, k.child, v),
			Right: node,
		}
	}
	return node
}

// State is an automaton state ⟨↑:In, ↓:Out, Max⟩: within the subinstance
// encoded by the processed subtree, In is the length of the longest
// directed path ending at the group vertex, Out the longest starting at
// it, and Max the longest anywhere, all capped at the automaton bound m.
type State struct {
	In, Out, Max int
}

// Automaton is the bottom-up deterministic tree automaton A_G of
// Proposition 5.4 for the unlabeled path query →^M: it accepts exactly
// the annotated trees whose world contains a directed path of length ≥ M.
// Q is the set of triples with 0 ≤ In, Out ≤ Max ≤ M (O(M³) states); the
// transition function is computed on demand.
type Automaton struct {
	M int
}

func (a *Automaton) cap(x int) int {
	if x > a.M {
		return a.M
	}
	return x
}

// Init is the initialization function ι: the state of a leaf given its
// annotated symbol. Leaves are ε-nodes representing a bare vertex.
func (a *Automaton) Init(dir Dir, kept bool) State { return State{} }

// Delta is the transition function Δ: the state of an internal node with
// annotated symbol (dir, kept) from its children's states. left is the
// subtree hanging off the represented edge (group: the far endpoint);
// right is the continuation of the same group vertex.
func (a *Automaton) Delta(dir Dir, kept bool, left, right State) State {
	// First fold the represented edge into the left summary, re-rooting
	// it at the near (group) vertex.
	var s State
	switch {
	case dir == Eps:
		s = left // ε internal nodes merge two groups of the same vertex
	case !kept:
		s = State{In: 0, Out: 0, Max: left.Max}
	case dir == Down: // group → far endpoint
		out := a.cap(1 + left.Out)
		s = State{In: 0, Out: out, Max: max(left.Max, out)}
	default: // Up: far endpoint → group
		in := a.cap(1 + left.In)
		s = State{In: in, Out: 0, Max: max(left.Max, in)}
	}
	// Then merge with the continuation: same group vertex, edge-disjoint
	// subinstances, so paths through the vertex combine across sides.
	return State{
		In:  max(s.In, right.In),
		Out: max(s.Out, right.Out),
		Max: a.cap(max(max(s.Max, right.Max), max(s.In+right.Out, right.In+s.Out))),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Accepting reports whether s is a final state: the subinstance contains
// a directed path of length ≥ M (capped, so == M).
func (a *Automaton) Accepting(s State) bool { return s.Max >= a.M }

// Run executes the automaton deterministically on the binary tree with
// the annotation bits given by kept (indexed by polytree edge variable;
// ε-nodes are always annotated 1). Used to validate the automaton against
// direct longest-path computation.
func (a *Automaton) Run(n *BNode, kept []bool) State {
	if n.IsLeaf() {
		return a.Init(n.Dir, true)
	}
	l := a.Run(n.Left, kept)
	r := a.Run(n.Right, kept)
	b := true
	if n.Var >= 0 {
		b = kept[n.Var]
	}
	return a.Delta(n.Dir, b, l, r)
}

// CompileLineage builds the d-DNNF lineage circuit of the automaton on
// the uncertain tree rooted at n: the circuit over the polytree edge
// variables that is true exactly on the worlds the automaton accepts
// (following [5, Proposition 3.1] and [6, Theorem 6.11]). It returns the
// circuit and its output gate.
//
// For every binary node the compiler tracks the reachable states with a
// gate each; OR gates combine (bit, left-state, right-state) triples that
// lead to the same state, which are mutually exclusive because the
// automaton is deterministic bottom-up, and AND gates combine the node's
// own literal with the two children's gates, which depend on disjoint
// edge variables. Hence the circuit is d-DNNF by construction.
func (a *Automaton) CompileLineage(n *BNode, numVars int) (*ddnnf.Circuit, ddnnf.Gate) {
	c := ddnnf.New(numVars)
	states := a.compile(c, n)
	var accepting []ddnnf.Gate
	for s, g := range states {
		if a.Accepting(s) {
			accepting = append(accepting, g)
		}
	}
	// Deterministic order for reproducible circuits.
	sortGates(accepting)
	return c, c.Or(accepting...)
}

func sortGates(gs []ddnnf.Gate) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j] < gs[j-1]; j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}

type combo struct {
	state State
	gate  ddnnf.Gate
}

func (a *Automaton) compile(c *ddnnf.Circuit, n *BNode) map[State]ddnnf.Gate {
	if n.IsLeaf() {
		return map[State]ddnnf.Gate{a.Init(n.Dir, true): c.True()}
	}
	left := a.compileSorted(c, n.Left)
	right := a.compileSorted(c, n.Right)
	acc := make(map[State][]ddnnf.Gate)
	addCombo := func(s State, gs ...ddnnf.Gate) {
		acc[s] = append(acc[s], c.And(gs...))
	}
	if n.Var < 0 {
		// ε internal node: no variable, always annotated 1.
		for _, l := range left {
			for _, r := range right {
				addCombo(a.Delta(n.Dir, true, l.state, r.state), l.gate, r.gate)
			}
		}
	} else {
		lit1 := c.Literal(n.Var, false)
		lit0 := c.Literal(n.Var, true)
		for _, l := range left {
			for _, r := range right {
				addCombo(a.Delta(n.Dir, true, l.state, r.state), lit1, l.gate, r.gate)
				addCombo(a.Delta(n.Dir, false, l.state, r.state), lit0, l.gate, r.gate)
			}
		}
	}
	out := make(map[State]ddnnf.Gate, len(acc))
	for _, s := range sortedStates(acc) {
		gs := acc[s]
		sortGates(gs)
		out[s] = c.Or(gs...)
	}
	return out
}

func (a *Automaton) compileSorted(c *ddnnf.Circuit, n *BNode) []combo {
	m := a.compile(c, n)
	out := make([]combo, 0, len(m))
	for _, s := range sortedStateKeys(m) {
		out = append(out, combo{state: s, gate: m[s]})
	}
	return out
}

func stateLess(a, b State) bool {
	if a.In != b.In {
		return a.In < b.In
	}
	if a.Out != b.Out {
		return a.Out < b.Out
	}
	return a.Max < b.Max
}

func sortedStates(m map[State][]ddnnf.Gate) []State {
	out := make([]State, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sortStateSlice(out)
	return out
}

func sortedStateKeys(m map[State]ddnnf.Gate) []State {
	out := make([]State, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sortStateSlice(out)
	return out
}

func sortStateSlice(out []State) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && stateLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

// PathProbPolytree computes the probability that a possible world of the
// polytree instance h contains a directed path of length ≥ m, via the
// full d-DNNF pipeline of Proposition 5.4. It is the tractable core of
// PHom̸L(1WP, PT).
func PathProbPolytree(h *graph.ProbGraph, m int) (*big.Rat, error) {
	if m == 0 {
		return big.NewRat(1, 1), nil
	}
	root, err := Encode(h)
	if err != nil {
		return nil, err
	}
	a := &Automaton{M: m}
	c, out := a.CompileLineage(root, h.G.NumEdges())
	probs := make([]*big.Rat, h.G.NumEdges())
	for i := range probs {
		probs[i] = h.Prob(i)
	}
	return c.Prob(out, probs), nil
}

// PathProbPolytreeDirect computes the same probability without
// materializing the circuit, by propagating a probability distribution
// over automaton states bottom-up. Used as the ablation counterpart of
// PathProbPolytree (experiment E18) and as an internal cross-check.
func PathProbPolytreeDirect(h *graph.ProbGraph, m int) (*big.Rat, error) {
	if m == 0 {
		return big.NewRat(1, 1), nil
	}
	root, err := Encode(h)
	if err != nil {
		return nil, err
	}
	a := &Automaton{M: m}
	dist := a.distribute(h, root)
	total := new(big.Rat)
	for s, p := range dist {
		if a.Accepting(s) {
			total.Add(total, p)
		}
	}
	return total, nil
}

func (a *Automaton) distribute(h *graph.ProbGraph, n *BNode) map[State]*big.Rat {
	if n.IsLeaf() {
		return map[State]*big.Rat{a.Init(n.Dir, true): big.NewRat(1, 1)}
	}
	left := a.distribute(h, n.Left)
	right := a.distribute(h, n.Right)
	out := make(map[State]*big.Rat)
	accum := func(s State, w *big.Rat) {
		if cur, ok := out[s]; ok {
			cur.Add(cur, w)
		} else {
			out[s] = new(big.Rat).Set(w)
		}
	}
	one := big.NewRat(1, 1)
	for ls, lp := range left {
		for rs, rp := range right {
			w := new(big.Rat).Mul(lp, rp)
			if n.Var < 0 {
				accum(a.Delta(n.Dir, true, ls, rs), w)
				continue
			}
			p := n.Prob
			if p.Sign() != 0 {
				accum(a.Delta(n.Dir, true, ls, rs), new(big.Rat).Mul(w, p))
			}
			q := new(big.Rat).Sub(one, p)
			if q.Sign() != 0 {
				accum(a.Delta(n.Dir, false, ls, rs), new(big.Rat).Mul(w, q))
			}
		}
	}
	return out
}
