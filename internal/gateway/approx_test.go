package gateway

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"phom/internal/costmodel"
	"phom/internal/serve"
)

// hardApproxBody is a #P-hard solve job under approx mode: a cyclic
// unlabeled instance (24 edges at 1/2, beyond the test-budget
// brute-force horizon) with loose (ε,δ) so the sample count stays
// small.
func hardApproxBody(seed uint64) []byte {
	var inst strings.Builder
	inst.WriteString("vertices 9\n")
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9 && j <= i+3; j++ {
			inst.WriteString("edge ")
			inst.WriteString(string(rune('0' + i)))
			inst.WriteString(" ")
			inst.WriteString(string(rune('0' + j)))
			inst.WriteString(" R 1/2\n")
		}
	}
	b, _ := json.Marshal(map[string]any{
		"query_text":    "vertices 3\nedge 0 1 R\nedge 1 2 R\n",
		"instance_text": inst.String(),
		"options": map[string]any{
			"precision": "approx", "epsilon": 0.25, "delta": 0.1, "seed": seed,
		},
	})
	return b
}

// TestGateProxiesApproxByteIdentical: an approx job through the gate
// answers exactly what the backend answers directly — the gate forwards
// the body verbatim and relays the response verbatim, so the seeded
// estimate, its bounds and its sample count all survive the hop.
func TestGateProxiesApproxByteIdentical(t *testing.T) {
	urls, _ := newBackends(t, 1, 2)
	_, gate := newGate(t, Config{Backends: urls, Replication: 1})

	body := hardApproxBody(7)
	direct := postJSON(t, urls[0]+"/solve", body)
	proxied := postJSON(t, gate.URL+"/solve", body)

	var d, p map[string]any
	if err := json.Unmarshal(direct, &d); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(proxied, &p); err != nil {
		t.Fatal(err)
	}
	if d["precision"] != "approx" || d["prob_lo"] == nil || d["prob_hi"] == nil {
		t.Fatalf("backend did not answer approx: %s", direct)
	}
	a, b := normalize(d), normalize(p)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("gate diverged from backend:\n direct:  %v\n proxied: %v", a, b)
	}
}

// TestApproxJobPricing pins the admission-control contract of approx
// mode: a hard job answered by the sampler is priced by its sample
// budget — far below the weight-64 exponential price the same
// structure gets under exact mode — and the routing tier actually
// surfaces the fields jobUnits needs.
func TestApproxJobPricing(t *testing.T) {
	rc := serve.NewRouteCache(16)
	body := hardApproxBody(1)
	info := rc.Route(body)
	if !info.Hard || !info.Approx {
		t.Fatalf("route info missed the approx facts: %+v", info)
	}
	if info.ApproxSamples <= 0 {
		t.Fatalf("route info has no sample budget: %+v", info)
	}
	approxUnits := jobUnits(info)
	exactInfo := info
	exactInfo.Approx = false
	exactInfo.ApproxSamples = 0
	exactUnits := jobUnits(exactInfo)
	if approxUnits >= exactUnits {
		t.Fatalf("approx job priced at %v units, exact twin at %v — sampler must be cheaper", approxUnits, exactUnits)
	}
	if want := costmodel.EstimateApprox(info.Edges, info.ApproxSamples, info.Vectors); approxUnits != want {
		t.Fatalf("jobUnits = %v, want EstimateApprox %v", approxUnits, want)
	}
	// A cache hit re-derives the approx facts from the envelope rather
	// than trusting the structure-keyed entry.
	again := rc.Route(body)
	if !again.Approx || again.ApproxSamples != info.ApproxSamples {
		t.Fatalf("cache-hit route lost the approx facts: %+v", again)
	}
}
