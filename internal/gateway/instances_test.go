package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"phom/internal/engine"
	"phom/internal/serve"
)

const (
	gateInstanceText = `
vertices 3
edge 0 1 R 1/2
edge 1 2 R 1/3
`
	gateQueryText = `
vertices 2
edge 0 1 R
`
)

func postGate(t *testing.T, url, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	switch v := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case []byte:
		rd = bytes.NewReader(v)
	default:
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	resp, err := http.Post(url+path, "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestInstanceStickyRouting drives the full live-instance flow through
// a two-backend gate: each instance must land on exactly one replica,
// every later delta/solve for it must reach that same replica, and the
// gate listing must merge both replicas' id sets.
func TestInstanceStickyRouting(t *testing.T) {
	urls, engines := newBackends(t, 2, 2)
	_, gate := newGate(t, Config{Backends: urls, Replication: 2})

	ids := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	for _, id := range ids {
		resp, body := postGate(t, gate.URL, "/instances", serve.CreateInstanceRequest{
			ID: id, InstanceText: gateInstanceText,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create %s: status %d: %s", id, resp.StatusCode, body)
		}
		// Mutate, then solve: Pr = 1 − (3/4)(2/3) = 1/2. The solve only
		// sees the delta if both hops hit the replica holding the state.
		resp, body = postGate(t, gate.URL, "/instances/"+id+"/delta", serve.DeltaRequest{
			Deltas: []serve.DeltaOp{{Op: "set_prob", Edge: "0>1", Prob: "1/4"}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta %s: status %d: %s", id, resp.StatusCode, body)
		}
		resp, body = postGate(t, gate.URL, "/instances/"+id+"/solve", serve.SolveRequest{QueryText: gateQueryText})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %s: status %d: %s", id, resp.StatusCode, body)
		}
		var sr serve.SolveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Prob != "1/2" {
			t.Fatalf("solve %s: prob %q, want 1/2 (delta lost to a different replica?)", id, sr.Prob)
		}
		// The answering version must survive the proxy hop: clients
		// use the header, not the body, to learn which snapshot spoke.
		if got := resp.Header.Get(serve.InstanceVersionHeader); got != "2" {
			t.Fatalf("solve %s: %s = %q, want 2", id, serve.InstanceVersionHeader, got)
		}
	}

	// Each instance lives on exactly one backend.
	perBackend := make([]int, len(engines))
	for _, id := range ids {
		n := 0
		for i, eng := range engines {
			if _, ok := eng.Instance(id); ok {
				n++
				perBackend[i]++
			}
		}
		if n != 1 {
			t.Fatalf("instance %s exists on %d backends, want exactly 1", id, n)
		}
	}
	if perBackend[0] == 0 || perBackend[1] == 0 {
		t.Logf("placement %v: all instances on one replica (hash skew)", perBackend)
	}

	// The gate listing merges both replicas.
	resp, err := http.Get(gate.URL + "/instances")
	if err != nil {
		t.Fatal(err)
	}
	var list serve.InstanceListResponse
	if derr := json.NewDecoder(resp.Body).Decode(&list); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if len(list.Instances) != len(ids) {
		t.Fatalf("gate listing = %v, want %d ids", list.Instances, len(ids))
	}

	// Unknown ids and stale CAS keep their backend status through the gate.
	if resp, _ := postGate(t, gate.URL, "/instances/ghost/solve", serve.SolveRequest{QueryText: gateQueryText}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost solve via gate: status %d, want 404", resp.StatusCode)
	}
	stale := int64(99)
	resp2, _ := postGate(t, gate.URL, "/instances/alpha/delta", serve.DeltaRequest{
		IfVersion: &stale,
		Deltas:    []serve.DeltaOp{{Op: "set_prob", Edge: "0>1", Prob: "1/8"}},
	})
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("stale CAS via gate: status %d, want 409", resp2.StatusCode)
	}
}

// TestInstanceMintedIDThroughGate checks the gate mints the id before
// placement, so the create and every follow-up hash identically.
func TestInstanceMintedIDThroughGate(t *testing.T) {
	urls, _ := newBackends(t, 2, 2)
	_, gate := newGate(t, Config{Backends: urls})

	resp, body := postGate(t, gate.URL, "/instances", serve.CreateInstanceRequest{InstanceText: gateInstanceText})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("minted create: status %d: %s", resp.StatusCode, body)
	}
	var info serve.InstanceInfoResponse
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.ID, "inst-") {
		t.Fatalf("minted id = %q, want inst- prefix", info.ID)
	}
	resp, body = postGate(t, gate.URL, "/instances/"+info.ID+"/solve", serve.SolveRequest{QueryText: gateQueryText})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve on minted id: status %d: %s", resp.StatusCode, body)
	}
	var sr serve.SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Prob != "2/3" {
		t.Fatalf("prob = %q, want 2/3", sr.Prob)
	}
}

// TestGateRetriesOnConnectionError kills one of two backends without
// telling the gate: single-job hops routed to the corpse must be
// replayed once against the surviving owner and still answer 200, with
// the rescues visible as gate_retries in /healthz.
func TestGateRetriesOnConnectionError(t *testing.T) {
	liveEng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(func() { _ = liveEng.Close() })
	live := httptest.NewServer(serve.New(liveEng).Handler())
	t.Cleanup(live.Close)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from the first byte

	g, gate := newGate(t, Config{Backends: []string{dead.URL, live.URL}, ProbeFailures: 100})

	// Distinct instances spread keys over both owners; every request
	// must succeed whether it routed to the live backend directly or
	// was rescued by the retry.
	for seed := 0; seed < 8; seed++ {
		resp, body := postGate(t, gate.URL, "/solve", serve.SolveRequest{
			QueryText:    pathQuery(2),
			InstanceText: pathInstance(6, seed),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, body)
		}
	}
	var h Health
	getHealth(t, gate.URL, &h)
	if h.GateRetries == 0 {
		t.Fatal("no hop was rescued by the gate retry (expected some keys on the dead owner)")
	}
	if int(h.GateRetries) > 8 {
		t.Fatalf("gate_retries = %d > requests", h.GateRetries)
	}
	_ = g
}

// TestGateRetryStopsAtTypedError: a backend that answers — even with an
// error status — produced a response, and the gate must relay it
// untouched rather than retry it elsewhere.
func TestGateRetryStopsAtTypedError(t *testing.T) {
	urls, _ := newBackends(t, 2, 2)
	_, gate := newGate(t, Config{Backends: urls})

	resp, body := postGate(t, gate.URL, "/solve", serve.SolveRequest{QueryText: "vertices banana"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typed error via gate: status %d: %s", resp.StatusCode, body)
	}
	var h Health
	getHealth(t, gate.URL, &h)
	if h.GateRetries != 0 {
		t.Fatalf("typed backend error was retried: gate_retries = %d", h.GateRetries)
	}
}

// TestGateHealthReportsInstances: probes surface each backend's
// live-instance count and the tier total.
func TestGateHealthReportsInstances(t *testing.T) {
	urls, _ := newBackends(t, 2, 2)
	g, gate := newGate(t, Config{Backends: urls})

	for _, id := range []string{"h1", "h2", "h3"} {
		if resp, body := postGate(t, gate.URL, "/instances", serve.CreateInstanceRequest{
			ID: id, InstanceText: gateInstanceText,
		}); resp.StatusCode != http.StatusOK {
			t.Fatalf("create %s: status %d: %s", id, resp.StatusCode, body)
		}
	}
	g.ProbeNow()
	var h Health
	getHealth(t, gate.URL, &h)
	if h.Instances != 3 {
		t.Fatalf("tier instances = %d, want 3", h.Instances)
	}
	sum := 0
	for _, b := range h.Backends {
		sum += b.Instances
	}
	if sum != 3 {
		t.Fatalf("per-backend instance counts sum to %d, want 3", sum)
	}
}
