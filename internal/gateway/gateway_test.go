package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"phom/internal/engine"
	"phom/internal/replay"
	"phom/internal/serve"
)

// pathQuery is a k-edge path query labeled R in the text wire format.
func pathQuery(k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "vertices %d\n", k+1)
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "edge %d %d R\n", i, i+1)
	}
	return b.String()
}

// pathInstance is an n-edge probabilistic path instance; seed varies
// the probabilities without changing the structure.
func pathInstance(n, seed int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "vertices %d\n", n+1)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "edge %d %d R %d/17\n", i, i+1, 1+(seed+i)%16)
	}
	return b.String()
}

func solveJob(q, inst string) json.RawMessage {
	j, _ := json.Marshal(map[string]any{"query_text": q, "instance_text": inst})
	return j
}

func reweightJob(q, inst string, probs map[string]string) json.RawMessage {
	j, _ := json.Marshal(map[string]any{"query_text": q, "instance_text": inst, "probs": probs})
	return j
}

func batchBody(jobs []json.RawMessage) []byte {
	b, _ := json.Marshal(map[string]any{"jobs": jobs})
	return b
}

// newBackends boots n in-process phomserve replicas.
func newBackends(t *testing.T, n, workers int) ([]string, []*engine.Engine) {
	t.Helper()
	urls := make([]string, n)
	engines := make([]*engine.Engine, n)
	for i := range urls {
		eng := engine.New(engine.Options{Workers: workers})
		srv := httptest.NewServer(serve.New(eng).WithShard("replica-" + strconv.Itoa(i)).Handler())
		t.Cleanup(srv.Close)
		t.Cleanup(func() { _ = eng.Close() })
		urls[i] = srv.URL
		engines[i] = eng
	}
	return urls, engines
}

func newGate(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return g, srv
}

func getHealth(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestMixedReplayThroughGate is the tier's end-to-end accounting check
// (run by CI): a gate over two backends takes the full mixed replay
// traffic — solves, reweights, batches, streams, malformed and
// intractable requests — with zero unaccounted responses, the gate's
// served count reconciling exactly with the fired count, at least one
// batch fanned out across shards and stream-merged, and both backends
// actually sharing the load.
func TestMixedReplayThroughGate(t *testing.T) {
	urls, _ := newBackends(t, 2, 2)
	_, gate := newGate(t, Config{Backends: urls})

	rep, err := replay.Run(context.Background(), replay.Options{
		Targets:     []string{gate.URL},
		Requests:    120,
		Concurrency: 8,
		Seed:        11,
		N:           48,
		BatchSize:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unaccounted() != 0 {
		t.Fatalf("unaccounted responses: %d (off-taxonomy %d, body errors %d): %v",
			rep.Unaccounted(), rep.OffTaxonomy, rep.BodyErrors, rep.Failures)
	}
	if rep.Requests != 120 {
		t.Fatalf("fired %d requests, want 120", rep.Requests)
	}
	var h Health
	getHealth(t, gate.URL, &h)
	served := uint64(0)
	for _, n := range h.HTTP {
		served += n
	}
	if served != uint64(rep.Requests) {
		t.Fatalf("gate served %d responses for %d fired", served, rep.Requests)
	}
	if h.CrossShardBatches < 1 {
		t.Fatalf("no batch crossed shards (cross_shard_batches=%d); sharding untested", h.CrossShardBatches)
	}
	for _, u := range urls {
		var bh serve.HealthResponse
		getHealth(t, u, &bh)
		n := uint64(0)
		for _, c := range bh.HTTP {
			n += c
		}
		if n == 0 {
			t.Fatalf("backend %s served no requests; ring routed everything elsewhere", u)
		}
	}
}

// streamLines posts body to url as /batch?stream=1 and returns the
// decoded result lines keyed by job index plus the trailer count.
func streamLines(t *testing.T, client *http.Client, url string, body []byte, reqID string) (map[int]map[string]any, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/batch?stream=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set(serve.RequestIDHeader, reqID)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	lines := map[int]map[string]any{}
	trailers := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if done, _ := m["done"].(bool); done {
			trailers++
			continue
		}
		idx, ok := m["index"].(float64)
		if !ok {
			t.Fatalf("stream line without index: %q", sc.Text())
		}
		lines[int(idx)] = m
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines, trailers
}

// normalize strips the volatile fields — timings, cache effects, and
// the request id — leaving exactly the answer content that must be
// byte-identical between a single backend and the gate-merged tier.
func normalize(m map[string]any) map[string]any {
	out := map[string]any{}
	for k, v := range m {
		switch k {
		case "elapsed_us", "cache_hit", "shared", "plan_hit", "request_id":
		default:
			out[k] = v
		}
	}
	return out
}

func testJobs() []json.RawMessage {
	var jobs []json.RawMessage
	for s := 0; s < 4; s++ {
		q := pathQuery(1 + s%3)
		inst := pathInstance(4+s, s)
		jobs = append(jobs, solveJob(q, inst))
		jobs = append(jobs, reweightJob(q, inst, map[string]string{"0>1": "3/7"}))
	}
	// A malformed job: the parse-failure line must also be identical
	// across deployments (the gate routes it to a backend instead of
	// answering itself).
	jobs = append(jobs, solveJob("edge 0 1 R\n", pathInstance(4, 0)))
	return jobs
}

// TestStreamMergeByteIdentity pins the acceptance criterion: a
// stream-merged /batch through the gate is byte-identical to a
// single-backend run modulo completion order (volatile fields
// normalized), with original job indices preserved and exactly one
// trailer.
func TestStreamMergeByteIdentity(t *testing.T) {
	jobs := testJobs()
	body := batchBody(jobs)

	soloURLs, _ := newBackends(t, 1, 2)
	solo, soloTrailers := streamLines(t, http.DefaultClient, soloURLs[0], body, "")

	urls, _ := newBackends(t, 3, 2)
	g, gate := newGate(t, Config{Backends: urls, Replication: 1})
	merged, mergedTrailers := streamLines(t, http.DefaultClient, gate.URL, body, "")

	if soloTrailers != 1 || mergedTrailers != 1 {
		t.Fatalf("trailers: solo %d, merged %d, want 1 and 1", soloTrailers, mergedTrailers)
	}
	if len(solo) != len(jobs) || len(merged) != len(jobs) {
		t.Fatalf("lines: solo %d, merged %d, want %d", len(solo), len(merged), len(jobs))
	}
	for i := 0; i < len(jobs); i++ {
		a, b := normalize(solo[i]), normalize(merged[i])
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("job %d diverged:\n solo:   %v\n merged: %v", i, a, b)
		}
	}
	// The batch must actually have been fanned out for the comparison
	// to mean anything.
	if g.crossShardBatches.Load() < 1 {
		t.Fatal("batch did not cross shards; widen the job set")
	}

	// The non-streamed merge must agree byte-for-byte too: raw results
	// scattered back into job order.
	soloResp := postJSON(t, soloURLs[0]+"/batch", body)
	gateResp := postJSON(t, gate.URL+"/batch", body)
	var sr, gr struct {
		Results []map[string]any `json:"results"`
	}
	if err := json.Unmarshal(soloResp, &sr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gateResp, &gr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != len(jobs) || len(gr.Results) != len(jobs) {
		t.Fatalf("batch results: solo %d, gate %d, want %d", len(sr.Results), len(gr.Results), len(jobs))
	}
	for i := range sr.Results {
		a, b := normalize(sr.Results[i]), normalize(gr.Results[i])
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("batch job %d diverged:\n solo: %v\n gate: %v", i, a, b)
		}
	}
}

func postJSON(t *testing.T, url string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// TestRequestIDPropagation: the ingress id rides to the backends and
// comes back on every merged stream line.
func TestRequestIDPropagation(t *testing.T) {
	urls, _ := newBackends(t, 2, 2)
	_, gate := newGate(t, Config{Backends: urls})
	lines, _ := streamLines(t, http.DefaultClient, gate.URL, batchBody(testJobs()), "trace-42")
	for i, m := range lines {
		if got, _ := m["request_id"].(string); got != "trace-42" {
			t.Fatalf("line %d request_id = %q, want trace-42", i, got)
		}
	}
}

// TestShedTypedRetryAfter: a full admission ledger sheds with a typed
// 503 carrying Retry-After, and releasing the budget readmits.
func TestShedTypedRetryAfter(t *testing.T) {
	urls, _ := newBackends(t, 1, 2)
	g, gate := newGate(t, Config{Backends: urls, CostBudget: 50})
	// Occupy almost the whole budget, as an admitted-but-unfinished
	// giant job would.
	if !g.backends[0].ledger.Admit(49.5) {
		t.Fatal("idle ledger refused")
	}
	job := solveJob(pathQuery(2), pathInstance(5, 1))
	resp, err := http.Post(gate.URL+"/solve", "application/json", bytes.NewReader(job))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After %q, want an integer in [1,30]", resp.Header.Get("Retry-After"))
	}
	var e serve.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "unavailable" {
		t.Fatalf("error code %q, want unavailable", e.Code)
	}
	if g.shed.Load() != 1 {
		t.Fatalf("shed counter %d, want 1", g.shed.Load())
	}

	// A shed streamed batch still honors batch semantics: one typed
	// unavailable line per job plus the trailer.
	lines, trailers := streamLines(t, http.DefaultClient, gate.URL, batchBody(testJobs()), "")
	if trailers != 1 {
		t.Fatalf("shed stream trailers = %d", trailers)
	}
	for i, m := range lines {
		if code, _ := m["code"].(string); code != "unavailable" {
			t.Fatalf("shed stream line %d code %q, want unavailable", i, code)
		}
	}

	g.backends[0].ledger.Release(49.5)
	resp2, err := http.Post(gate.URL+"/solve", "application/json", bytes.NewReader(job))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", resp2.StatusCode)
	}
}

// replica is a restartable in-process phomserve bound to a fixed port,
// for kill/rejoin scenarios httptest cannot express.
type replica struct {
	addr string
	eng  *engine.Engine
	hs   *http.Server
}

func startReplica(t *testing.T, addr string) *replica {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	for i := 0; i < 40; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	eng := engine.New(engine.Options{Workers: 2})
	hs := &http.Server{Handler: serve.New(eng).Handler()}
	go func() { _ = hs.Serve(ln) }()
	return &replica{addr: ln.Addr().String(), eng: eng, hs: hs}
}

func (rp *replica) stop() {
	_ = rp.hs.Close()
	_ = rp.eng.Close()
}

// TestWarmStartRejoin pins the acceptance criterion end to end: a
// replica is killed, probed out of the ring (ejected in the shard
// map), restarted cold on the same port, and rejoined with the gate's
// stored snapshot pushed first — so replaying the same structure set
// compiles zero plans.
func TestWarmStartRejoin(t *testing.T) {
	rp := startReplica(t, "")
	defer func() { rp.stop() }()
	g, gate := newGate(t, Config{Backends: []string{"http://" + rp.addr}})

	structures := [][2]string{
		{pathQuery(1), pathInstance(4, 0)},
		{pathQuery(2), pathInstance(5, 1)},
		{pathQuery(3), pathInstance(6, 2)},
	}
	fire := func() {
		for _, s := range structures {
			postJSON(t, gate.URL+"/reweight", reweightJob(s[0], s[1], map[string]string{"0>1": "2/5"}))
		}
	}
	fire()
	if n := g.PullSnapshots(); n != 1 {
		t.Fatalf("snapshotted %d backends, want 1", n)
	}

	rp.stop()
	for i := 0; i < DefaultProbeFailures; i++ {
		g.ProbeNow()
	}
	var h Health
	getHealth(t, gate.URL, &h)
	if !h.Backends[0].Ejected || h.Backends[0].Alive {
		t.Fatalf("killed backend not ejected in shard map: %+v", h.Backends[0])
	}
	// While the whole owner set is down, requests get the typed 503.
	resp, err := http.Post(gate.URL+"/solve", "application/json", bytes.NewReader(solveJob(structures[0][0], structures[0][1])))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve against dead tier: status %d, want 503", resp.StatusCode)
	}

	rp = startReplica(t, rp.addr)
	g.ProbeNow()
	getHealth(t, gate.URL, &h)
	if h.Backends[0].Ejected {
		t.Fatal("restarted backend did not rejoin")
	}

	var bh serve.HealthResponse
	getHealth(t, "http://"+rp.addr, &bh)
	if bh.Stats.PlanCacheLen == 0 {
		t.Fatal("warm-start push left the plan cache empty")
	}
	if bh.Stats.PlanCompiles != 0 {
		t.Fatalf("restarted replica compiled %d plans before serving", bh.Stats.PlanCompiles)
	}

	// The replayed structure set must be served entirely from the
	// pushed snapshot: zero compiles, every reweight a plan hit.
	fire()
	getHealth(t, "http://"+rp.addr, &bh)
	if bh.Stats.PlanCompiles != 0 {
		t.Fatalf("rejoined replica compiled %d plans on the replayed structures (want warm start)", bh.Stats.PlanCompiles)
	}
	if bh.Stats.PlanHits < uint64(len(structures)) {
		t.Fatalf("plan hits %d after replay of %d structures", bh.Stats.PlanHits, len(structures))
	}
}

// TestUptimeRegressionWarmStart: a replica that restarts between probes
// — never observed dead — is detected by its uptime_ms regression and
// still gets the warm-start push.
func TestUptimeRegressionWarmStart(t *testing.T) {
	rp := startReplica(t, "")
	defer func() { rp.stop() }()
	g, gate := newGate(t, Config{Backends: []string{"http://" + rp.addr}})

	postJSON(t, gate.URL+"/reweight", reweightJob(pathQuery(2), pathInstance(5, 3), map[string]string{"0>1": "1/3"}))
	if n := g.PullSnapshots(); n != 1 {
		t.Fatal("snapshot pull failed")
	}
	g.ProbeNow() // record the first uptime
	time.Sleep(150 * time.Millisecond)

	rp.stop()
	rp = startReplica(t, rp.addr)
	g.ProbeNow() // uptime regressed: push without ever seeing it down

	var bh serve.HealthResponse
	getHealth(t, "http://"+rp.addr, &bh)
	if bh.Stats.PlanCacheLen == 0 || bh.Stats.PlanCompiles != 0 {
		t.Fatalf("fast restart not warm-started: cache %d, compiles %d", bh.Stats.PlanCacheLen, bh.Stats.PlanCompiles)
	}
}

// TestHealthShardMap: the gate's /healthz exposes the ring geometry.
func TestHealthShardMap(t *testing.T) {
	urls, _ := newBackends(t, 3, 1)
	_, gate := newGate(t, Config{Backends: urls, Replication: 2, VNodes: 64})
	var h Health
	getHealth(t, gate.URL, &h)
	if h.Status != "ok" || h.UptimeMS < 0 {
		t.Fatalf("health %+v", h)
	}
	if h.Replication != 2 {
		t.Fatalf("replication %d, want 2", h.Replication)
	}
	if len(h.Backends) != 3 {
		t.Fatalf("%d backends in shard map, want 3", len(h.Backends))
	}
	nodes := make([]int, 0, 3)
	for _, b := range h.Backends {
		if b.VNodes != 64 {
			t.Fatalf("backend %d vnodes %d, want 64", b.Node, b.VNodes)
		}
		if b.Ejected || !b.Alive {
			t.Fatalf("healthy backend reported ejected: %+v", b)
		}
		nodes = append(nodes, b.Node)
	}
	sort.Ints(nodes)
	if !reflect.DeepEqual(nodes, []int{0, 1, 2}) {
		t.Fatalf("shard map nodes %v", nodes)
	}
}
