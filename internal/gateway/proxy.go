package gateway

// proxy.go: the single-job hop. /solve and /reweight bodies are read
// once, routed by structure key, priced for admission, and forwarded
// verbatim to the owning replica — the gate never re-encodes a
// single-job body, so responses are byte-identical to an unsharded
// deployment's.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"phom/internal/costmodel"
	"phom/internal/phomerr"
	"phom/internal/serve"
)

// readBody drains the ingress body under the gate's cap, answering the
// same 413 a backend would.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			serve.WriteError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		} else {
			serve.WriteError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		}
		return nil, false
	}
	return body, true
}

// jobUnits prices one routed job: approx-mode jobs on hard cells cost
// their sample budget (the sampler replaces the exponential baseline),
// everything else the class-weighted estimate. Shared by the single-job
// and batch admission paths so a job is priced identically on both.
func jobUnits(info serve.RouteInfo) float64 {
	if info.Hard && info.Approx {
		return costmodel.EstimateApprox(info.Edges, info.ApproxSamples, info.Vectors)
	}
	return costmodel.Estimate(info.Edges, info.Hard, info.DisableFallback, info.Vectors)
}

// handleProxy serves /solve and /reweight: route, admit, forward.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	info := g.routes.Route(body)
	units := jobUnits(info)
	b := g.pick(info.Key)
	if b == nil {
		serve.WriteTypedError(w, errUnavailable("no backend alive for shard"))
		return
	}
	if !b.ledger.Admit(units) {
		g.shedResponse(w, b)
		return
	}
	defer b.ledger.Release(units)
	status, err := g.forward(w, r, b, body, units)
	if err != nil {
		// A connection error means no backend byte reached the client,
		// so the hop is safe to replay: retry once against the next
		// live owner before shedding with the typed 503. (A typed
		// backend error is a response — it is relayed, never retried.)
		if nb := g.pickOther(info.Key, b); nb != nil && nb.ledger.Admit(units) {
			g.retries.Add(1)
			defer nb.ledger.Release(units)
			if _, rerr := g.forward(w, r, nb, body, units); rerr == nil {
				return
			}
		}
		serve.WriteTypedError(w, errUnavailable("backend unreachable: "+err.Error()))
		return
	}
	_ = status
}

// pickOther returns the first alive owner of key other than not, or
// nil when no such backend exists — the retry target after a transport
// failure on the preferred owner.
func (g *Gateway) pickOther(key string, not *backend) *backend {
	owners := g.ring.Owners(key, 1, func(node int) bool {
		return node != not.node && g.isAlive(node)
	})
	if len(owners) == 0 {
		return nil
	}
	return g.backends[owners[0]]
}

// forward sends body to b and relays the backend response to w
// verbatim (status, content type, request id, body bytes). A transport
// error before any byte reached the client is returned for the caller
// to surface as a typed 503 and counts toward the backend's probe
// failures so a crashed replica is ejected without waiting for the
// next probe tick.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, b *backend, body []byte, units float64) (int, error) {
	select {
	case b.sem <- struct{}{}:
	case <-r.Context().Done():
		serve.WriteTypedError(w, phomerr.Wrap(phomerr.CodeCanceled, r.Context().Err()))
		return serve.StatusClientClosedRequest, nil
	}
	defer func() { <-b.sem }()
	b.inflight.Add(1)
	defer b.inflight.Add(-1)

	url := b.url + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	// The ingress id (minted by instrument when the client sent none)
	// rides to the backend, so one id traces the request across hops.
	req.Header.Set(serve.RequestIDHeader, r.Header.Get(serve.RequestIDHeader))

	start := time.Now()
	resp, err := b.client.Do(req)
	if err != nil {
		g.noteTransportFailure(b)
		return 0, err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if v := resp.Header.Get(serve.InstanceVersionHeader); v != "" {
		w.Header().Set(serve.InstanceVersionHeader, v)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	if resp.StatusCode == http.StatusOK {
		g.model.Observe(units, time.Since(start))
	}
	return resp.StatusCode, nil
}

// noteTransportFailure charges a connection-level error against the
// backend's probe-failure count: enough of them eject it from routing
// even between probe ticks.
func (g *Gateway) noteTransportFailure(b *backend) {
	b.mu.Lock()
	b.fails++
	if b.fails >= g.cfg.ProbeFailures {
		b.alive = false
	}
	b.mu.Unlock()
}
