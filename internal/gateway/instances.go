package gateway

// instances.go: sticky routing for live instances. A mutable instance
// exists on exactly one replica, so unlike the stateless hops the gate
// cannot balance instance traffic across an owner set: every request
// for an instance id must land on the same backend, and that placement
// must survive gate restarts. Both follow from hashing the id itself on
// the ring (owner-set width 1 among alive nodes). Creation without a
// client-chosen id mints one at the gate and injects it into the body
// before routing, so the create and every later delta/solve hash to the
// same backend; the listing endpoint is the one fan-out — it merges the
// per-replica id lists.

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sort"
	"strings"

	"phom/internal/serve"
)

// instanceKey is the ring key for an instance id. The "inst:" prefix
// keeps instance placement from colliding with structure-key placement
// of the stateless endpoints.
func instanceKey(id string) string { return "inst:" + id }

// pickInstance returns the primary alive owner for an instance id —
// owner-set width 1, never load-balanced, so repeat requests for one
// instance always reach the replica that holds its state.
func (g *Gateway) pickInstance(id string) *backend {
	owners := g.ring.Owners(instanceKey(id), 1, g.isAlive)
	if len(owners) == 0 {
		return nil
	}
	return g.backends[owners[0]]
}

// handleInstances routes the collection endpoint: POST create goes to
// the id's sticky owner (minting an id first when the client sent
// none); GET list fans out to every alive backend and merges.
func (g *Gateway) handleInstances(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		g.listInstances(w, r)
	case http.MethodPost:
		body, ok := g.readBody(w, r)
		if !ok {
			return
		}
		var req serve.CreateInstanceRequest
		if err := json.Unmarshal(body, &req); err != nil {
			serve.WriteError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if req.ID == "" {
			// Mint here, not at the backend: the id decides placement,
			// so it must exist before the ring lookup.
			var buf [8]byte
			if _, err := rand.Read(buf[:]); err != nil {
				serve.WriteError(w, http.StatusInternalServerError, "minting instance id: "+err.Error())
				return
			}
			req.ID = "inst-" + hex.EncodeToString(buf[:])
			reencoded, err := json.Marshal(req)
			if err != nil {
				serve.WriteError(w, http.StatusBadRequest, "re-encoding create request: "+err.Error())
				return
			}
			body = reencoded
		}
		g.forwardInstance(w, r, req.ID, body)
	default:
		serve.WriteError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// handleInstanceScoped forwards /instances/{id} and /instances/{id}/op
// to the id's sticky owner, pricing the solve-shaped hops for admission.
func (g *Gateway) handleInstanceScoped(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/instances/")
	id, _, _ := strings.Cut(rest, "/")
	if id == "" {
		serve.WriteError(w, http.StatusNotFound, "missing instance id")
		return
	}
	var body []byte
	if r.Method == http.MethodPost {
		var ok bool
		if body, ok = g.readBody(w, r); !ok {
			return
		}
	}
	g.forwardInstance(w, r, id, body)
}

// forwardInstance sends one instance-scoped hop to the id's sticky
// owner. Solve-shaped bodies are priced for admission like the
// stateless hops; deltas and reads ride free (their cost is a graph
// mutation, not a model evaluation). There is no retry-on-next-owner
// here: the next owner does not hold the instance, so a replayed hop
// could only answer 404 — a transport failure sheds immediately.
func (g *Gateway) forwardInstance(w http.ResponseWriter, r *http.Request, id string, body []byte) {
	b := g.pickInstance(id)
	if b == nil {
		serve.WriteTypedError(w, errUnavailable("no backend alive for instance "+id))
		return
	}
	var units float64
	if r.Method == http.MethodPost {
		switch {
		case strings.HasSuffix(r.URL.Path, "/solve"),
			strings.HasSuffix(r.URL.Path, "/reweight"),
			strings.HasSuffix(r.URL.Path, "/batch"):
			units = jobUnits(g.routes.Route(body))
		}
	}
	if units > 0 {
		if !b.ledger.Admit(units) {
			g.shedResponse(w, b)
			return
		}
		defer b.ledger.Release(units)
	}
	if _, err := g.forward(w, r, b, body, units); err != nil {
		serve.WriteTypedError(w, errUnavailable("backend unreachable: "+err.Error()))
	}
}

// listInstances merges /instances from every alive backend into one
// sorted tier-wide listing. A backend that fails to answer contributes
// nothing (its instances are unreachable right now anyway).
func (g *Gateway) listInstances(w http.ResponseWriter, r *http.Request) {
	ids := []string{}
	for _, b := range g.backends {
		b.mu.Lock()
		alive := b.alive
		b.mu.Unlock()
		if !alive {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.url+"/instances", nil)
		if err != nil {
			continue
		}
		resp, err := b.client.Do(req)
		if err != nil {
			g.noteTransportFailure(b)
			continue
		}
		var list serve.InstanceListResponse
		derr := json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		ids = append(ids, list.Instances...)
	}
	sort.Strings(ids)
	serve.WriteJSON(w, http.StatusOK, serve.InstanceListResponse{Instances: ids})
}
