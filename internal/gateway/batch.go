package gateway

// batch.go: /batch across shards. The job list is split by ring owner,
// each sub-batch fans out to its backend concurrently, and the results
// come back together in one response. Job bodies travel as raw bytes
// and non-streamed results are scattered back as raw bytes, so every
// per-job answer is byte-identical to what a single backend would have
// produced. Streamed sub-batches (?stream=1) are NDJSON-merged in
// completion order through the shared serve.StreamLine type — same
// field order, remapped to the caller's job indices — with one
// aggregated trailer. Jobs whose backend dies mid-stream get
// synthesized typed-unavailable lines, so the one-line-per-job + one
// trailer invariant holds even under partial failure.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"phom/internal/engine"
	"phom/internal/phomerr"
	"phom/internal/serve"
)

// shardGroup is one backend's slice of a batch.
type shardGroup struct {
	b     *backend
	orig  []int             // original job indices, in sub-batch order
	raws  []json.RawMessage // the jobs' raw bytes, untouched
	units float64
	shed  bool
}

func unavailableResult(msg string) serve.SolveResponse {
	return serve.SolveResponse{Code: phomerr.CodeUnavailable.String(), Error: msg}
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	jobs, infos, err := g.routes.Batch(body)
	if err != nil || len(jobs) == 0 || len(jobs) > serve.MaxBatchJobs {
		// Malformed envelope, empty list, oversized batch: don't shard —
		// forward the body verbatim to one deterministic backend so the
		// client gets the authoritative error, byte-identical to an
		// unsharded deployment's.
		b := g.pick(g.routes.Route(body).Key)
		if b == nil {
			serve.WriteTypedError(w, errUnavailable("no backend alive for shard"))
			return
		}
		if _, ferr := g.forward(w, r, b, body, 0); ferr != nil {
			serve.WriteTypedError(w, errUnavailable("backend unreachable: "+ferr.Error()))
		}
		return
	}

	// Split by owning backend. Jobs with no alive owner are not lost:
	// they get typed-unavailable results merged in at the end.
	groups := make(map[int]*shardGroup)
	var unrouted []int
	for i, info := range infos {
		b := g.pick(info.Key)
		if b == nil {
			unrouted = append(unrouted, i)
			continue
		}
		grp := groups[b.node]
		if grp == nil {
			grp = &shardGroup{b: b}
			groups[b.node] = grp
		}
		grp.orig = append(grp.orig, i)
		grp.raws = append(grp.raws, jobs[i])
		grp.units += jobUnits(info)
	}
	if len(groups) > 1 {
		g.crossShardBatches.Add(1)
	}
	// Admission is per sub-batch: a refused group sheds its jobs with
	// per-job unavailable results (batch semantics — the batch itself
	// still answers 200, like a backend answering per-job errors).
	for _, grp := range groups {
		if !grp.b.ledger.Admit(grp.units) {
			grp.shed = true
			g.shed.Add(1)
		}
	}
	defer func() {
		for _, grp := range groups {
			if !grp.shed {
				grp.b.ledger.Release(grp.units)
			}
		}
	}()

	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		g.streamMerge(w, r, jobs, groups, unrouted)
		return
	}
	g.collectMerge(w, r, jobs, groups, unrouted)
}

// subBatch re-wraps a group's raw jobs as a /batch body.
func subBatch(raws []json.RawMessage) []byte {
	body, _ := json.Marshal(struct {
		Jobs []json.RawMessage `json:"jobs"`
	}{raws})
	return body
}

// acquire reserves an in-flight slot on b, honoring ctx while queued.
// The returned release is idempotent.
func (g *Gateway) acquire(ctx context.Context, b *backend) (func(), error) {
	select {
	case b.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	b.inflight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			<-b.sem
			b.inflight.Add(-1)
		})
	}, nil
}

// doGroup posts one sub-batch to its backend. The caller owns the
// response body and must call release after draining it.
func (g *Gateway) doGroup(r *http.Request, grp *shardGroup, query string) (*http.Response, func(), error) {
	release, err := g.acquire(r.Context(), grp.b)
	if err != nil {
		return nil, nil, err
	}
	url := grp.b.url + "/batch"
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(subBatch(grp.raws)))
	if err != nil {
		release()
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.RequestIDHeader, r.Header.Get(serve.RequestIDHeader))
	resp, err := grp.b.client.Do(req)
	if err != nil {
		g.noteTransportFailure(grp.b)
		release()
		return nil, nil, err
	}
	return resp, release, nil
}

// rawBatchResponse mirrors serve.BatchResponse with the per-job results
// kept as raw bytes, so the merge never re-encodes a backend's answer.
type rawBatchResponse struct {
	Results   []json.RawMessage `json:"results"`
	Stats     engine.Stats      `json:"stats"`
	ElapsedUS int64             `json:"elapsed_us"`
}

// collectMerge fans the groups out and answers one buffered batch
// response in original job order.
func (g *Gateway) collectMerge(w http.ResponseWriter, r *http.Request, jobs []json.RawMessage, groups map[int]*shardGroup, unrouted []int) {
	start := time.Now()
	results := make([]json.RawMessage, len(jobs))
	var mu sync.Mutex
	var stats engine.Stats
	fill := func(grp *shardGroup, msg string) {
		raw, _ := json.Marshal(unavailableResult(msg))
		for _, o := range grp.orig {
			results[o] = raw
		}
	}
	var wg sync.WaitGroup
	for _, grp := range groups {
		if grp.shed {
			fill(grp, fmt.Sprintf("backend %d over admission budget; retry later", grp.b.node))
			continue
		}
		wg.Add(1)
		go func(grp *shardGroup) {
			defer wg.Done()
			resp, release, err := g.doGroup(r, grp, "")
			if err != nil {
				mu.Lock()
				fill(grp, "backend unreachable: "+err.Error())
				mu.Unlock()
				return
			}
			defer release()
			defer resp.Body.Close()
			var rb rawBatchResponse
			derr := json.NewDecoder(resp.Body).Decode(&rb)
			if resp.StatusCode != http.StatusOK || derr != nil || len(rb.Results) != len(grp.orig) {
				mu.Lock()
				fill(grp, fmt.Sprintf("backend %d batch failed (status %d)", grp.b.node, resp.StatusCode))
				mu.Unlock()
				return
			}
			mu.Lock()
			for j, o := range grp.orig {
				results[o] = rb.Results[j]
			}
			sumStats(&stats, rb.Stats)
			mu.Unlock()
			g.model.Observe(grp.units, time.Since(start))
		}(grp)
	}
	wg.Wait()
	if len(unrouted) > 0 {
		raw, _ := json.Marshal(unavailableResult("no backend alive for shard"))
		for _, o := range unrouted {
			results[o] = raw
		}
	}
	serve.WriteJSON(w, http.StatusOK, rawBatchResponse{
		Results:   results,
		Stats:     stats,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

// streamMerge fans the groups out with ?stream=1 and interleaves their
// NDJSON lines into one completion-order client stream: each backend
// line is decoded into serve.StreamLine, remapped to the caller's job
// index, stamped with the ingress request id, and re-encoded — the
// same struct the backend marshaled, so the merged lines stay
// byte-compatible. Backend trailers are absorbed into one aggregated
// gate trailer.
func (g *Gateway) streamMerge(w http.ResponseWriter, r *http.Request, jobs []json.RawMessage, groups map[int]*shardGroup, unrouted []int) {
	start := time.Now()
	reqID := r.Header.Get(serve.RequestIDHeader)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	writeLine := func(v any) {
		wmu.Lock()
		_ = enc.Encode(v)
		if canFlush {
			flusher.Flush()
		}
		wmu.Unlock()
	}
	synth := func(orig int, msg string) {
		writeLine(serve.StreamLine{Index: orig, SolveResponse: unavailableResult(msg), RequestID: reqID})
	}
	var statsMu sync.Mutex
	var stats engine.Stats
	var wg sync.WaitGroup
	for _, grp := range groups {
		if grp.shed {
			msg := fmt.Sprintf("backend %d over admission budget; retry later", grp.b.node)
			for _, o := range grp.orig {
				synth(o, msg)
			}
			continue
		}
		wg.Add(1)
		go func(grp *shardGroup) {
			defer wg.Done()
			delivered := make([]bool, len(grp.orig))
			defer func() {
				// One line per job, no matter how the backend stream
				// ended: jobs the stream never answered get typed
				// unavailable lines.
				for j, d := range delivered {
					if !d {
						synth(grp.orig[j], fmt.Sprintf("backend %d stream ended early", grp.b.node))
					}
				}
			}()
			resp, release, err := g.doGroup(r, grp, "stream=1")
			if err != nil {
				return
			}
			defer release()
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 64<<10), int(g.cfg.MaxBody))
			for sc.Scan() {
				line := sc.Bytes()
				var probe struct {
					Done bool `json:"done"`
				}
				if json.Unmarshal(line, &probe) != nil {
					continue
				}
				if probe.Done {
					var tr serve.StreamTrailer
					if json.Unmarshal(line, &tr) == nil {
						statsMu.Lock()
						sumStats(&stats, tr.Stats)
						statsMu.Unlock()
					}
					continue
				}
				var sl serve.StreamLine
				if json.Unmarshal(line, &sl) != nil || sl.Index < 0 || sl.Index >= len(grp.orig) {
					continue
				}
				delivered[sl.Index] = true
				sl.Index = grp.orig[sl.Index]
				sl.RequestID = reqID
				writeLine(sl)
			}
			g.model.Observe(grp.units, time.Since(start))
		}(grp)
	}
	wg.Wait()
	for _, o := range unrouted {
		synth(o, "no backend alive for shard")
	}
	writeLine(serve.StreamTrailer{
		Done:      true,
		Jobs:      len(jobs),
		Stats:     stats,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}
