// Package gateway implements phomgate's routing core: a consistent-hash
// front over N phomserve replicas.
//
// Jobs are placed by graphio.StructKey (via serve.RouteJob), so every
// reweight of one structure lands on the replica whose plan cache
// compiled it — sharding multiplies the caches instead of diluting
// them. The ring (internal/ring) identifies replicas by index with
// virtual nodes for balance; a configurable replication factor widens
// each key's owner set, and among the alive owners the gate picks the
// one with the fewest in-flight requests (hot-shard routing). Admission
// control prices each job with internal/costmodel and sheds with a
// typed 503 + Retry-After when a backend's outstanding-work ledger is
// full. A probe loop watches each replica's /healthz: consecutive
// failures eject it from routing (keys deterministically drain to ring
// successors), recovery rejoins it, and an uptime_ms regression — a
// restart the probes never saw as down — triggers a warm-start push of
// the replica's last /plans/export snapshot so it rejoins hot with
// zero recompiles.
//
// /solve and /reweight proxy bodies verbatim to the owning shard;
// /batch splits by shard, fans out, and merges — see batch.go. A
// single-job hop that dies on a connection error (no backend response
// at all) is retried once against the next live owner before the gate
// sheds it with a typed 503. Live instances (/instances...) are sticky:
// an instance's mutable state lives on exactly one replica, so every
// instance-scoped request routes by instance id to the primary alive
// owner — see instances.go. cmd/phomgate is the thin process wrapper.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"phom/internal/costmodel"
	"phom/internal/engine"
	"phom/internal/phomerr"
	"phom/internal/ring"
	"phom/internal/serve"
)

// Defaults for the zero Config fields.
const (
	DefaultMaxInflight   = 32
	DefaultProbeFailures = 3
	defaultProbeTimeout  = 2 * time.Second
)

// Config describes a gateway tier.
type Config struct {
	// Backends are the replica base URLs ("http://127.0.0.1:8081").
	// Ring placement is by slice index, not URL: a gate restarted with
	// the same backend order routes identically even if the replicas
	// re-bound to new ports.
	Backends []string
	// Replication is the owner-set width per key on the ring (clamped
	// to [1, len(Backends)]); the gate picks the least-loaded alive
	// owner per request.
	Replication int
	// VNodes is the virtual-node count per backend (0 = ring default).
	VNodes int
	// MaxInflight bounds concurrently proxied requests per backend
	// (0 = DefaultMaxInflight); excess requests queue at the gate.
	MaxInflight int
	// CostBudget is the per-backend admission ledger budget in cost
	// units (see internal/costmodel); 0 disables shedding.
	CostBudget float64
	// ProbeInterval is the period of the background health-probe loop;
	// 0 disables it (tests drive probes with ProbeNow).
	ProbeInterval time.Duration
	// ProbeFailures is how many consecutive probe failures eject a
	// backend (0 = DefaultProbeFailures).
	ProbeFailures int
	// SnapshotInterval is the period of the background plan-snapshot
	// pull loop; 0 disables it (tests drive pulls with PullSnapshots).
	SnapshotInterval time.Duration
	// SnapshotDir, when set, persists each backend's latest plan
	// snapshot as plans-<index>.bin so warm-start survives gate
	// restarts; existing files are loaded by New.
	SnapshotDir string
	// MaxBody caps ingress request bodies (0 = serve.DefaultMaxBodyBytes).
	MaxBody int64
	// Client, when set, is used for all backend hops instead of the
	// gate's pooled keep-alive client (tests inject httptest clients).
	Client *http.Client
}

// backend is the gate's per-replica state.
type backend struct {
	url    string
	node   int
	client *http.Client
	sem    chan struct{}
	ledger *costmodel.Ledger

	inflight atomic.Int64

	mu            sync.Mutex
	alive         bool
	fails         int
	lastUptime    int64
	lastInstances int
	snapshot      []byte
}

// Gateway routes phomserve traffic across a replica tier.
type Gateway struct {
	cfg      Config
	ring     *ring.Ring
	model    *costmodel.Model
	routes   *serve.RouteCache
	backends []*backend
	start    time.Time

	shed              atomic.Uint64
	crossShardBatches atomic.Uint64
	retries           atomic.Uint64

	httpMu       sync.Mutex
	httpByStatus map[int]uint64

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New builds a gateway over cfg.Backends. It does not start the
// background loops — call Start for that (or drive probes and snapshot
// pulls manually with ProbeNow/PullSnapshots).
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: no backends")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(cfg.Backends) {
		cfg.Replication = len(cfg.Backends)
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.ProbeFailures <= 0 {
		cfg.ProbeFailures = DefaultProbeFailures
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = serve.DefaultMaxBodyBytes
	}
	client := cfg.Client
	if client == nil {
		// One pooled keep-alive client for the whole tier: per-host
		// idle-connection capacity matching the in-flight bound, so
		// steady-state proxying never pays connection setup.
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        len(cfg.Backends) * cfg.MaxInflight,
			MaxIdleConnsPerHost: cfg.MaxInflight,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	g := &Gateway{
		cfg:          cfg,
		ring:         ring.New(len(cfg.Backends), cfg.VNodes),
		model:        costmodel.New(),
		routes:       serve.NewRouteCache(0),
		start:        time.Now(),
		httpByStatus: make(map[int]uint64),
		stop:         make(chan struct{}),
	}
	for i, url := range cfg.Backends {
		b := &backend{
			url:    url,
			node:   i,
			client: client,
			sem:    make(chan struct{}, cfg.MaxInflight),
			ledger: costmodel.NewLedger(cfg.CostBudget),
			alive:  true,
		}
		if cfg.SnapshotDir != "" {
			if snap, err := os.ReadFile(g.snapshotPath(i)); err == nil && len(snap) > 0 {
				b.snapshot = snap
			}
		}
		g.backends = append(g.backends, b)
	}
	return g, nil
}

func (g *Gateway) snapshotPath(node int) string {
	return filepath.Join(g.cfg.SnapshotDir, "plans-"+strconv.Itoa(node)+".bin")
}

// Start launches the probe and snapshot loops whose intervals are set.
func (g *Gateway) Start() {
	if g.cfg.ProbeInterval > 0 {
		g.wg.Add(1)
		go g.loop(g.cfg.ProbeInterval, g.ProbeNow)
	}
	if g.cfg.SnapshotInterval > 0 {
		g.wg.Add(1)
		go g.loop(g.cfg.SnapshotInterval, func() { g.PullSnapshots() })
	}
}

func (g *Gateway) loop(every time.Duration, step func()) {
	defer g.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			step()
		}
	}
}

// Close stops the background loops and waits for them.
func (g *Gateway) Close() {
	g.once.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// Handler returns the gate's HTTP handler.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", g.handleProxy)
	mux.HandleFunc("/reweight", g.handleProxy)
	mux.HandleFunc("/batch", g.handleBatch)
	mux.HandleFunc("/instances", g.handleInstances)
	mux.HandleFunc("/instances/", g.handleInstanceScoped)
	mux.HandleFunc("/healthz", g.handleHealth)
	return g.instrument(mux)
}

// instrument mirrors the backend's: mint/echo the request id and count
// responses by status, so a replay driven at the gate can reconcile
// fired vs served exactly as it does against a single phomserve.
func (g *Gateway) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(serve.RequestIDHeader, serve.EnsureRequestID(r))
		sw := &serve.StatusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		g.httpMu.Lock()
		g.httpByStatus[sw.Status()]++
		g.httpMu.Unlock()
	})
}

// isAlive is the ring's liveness predicate.
func (g *Gateway) isAlive(node int) bool {
	b := g.backends[node]
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.alive
}

// pick returns the backend that should serve key: the alive ring owner
// (replication-wide owner set) with the fewest in-flight requests, or
// nil when every candidate is down.
func (g *Gateway) pick(key string) *backend {
	owners := g.ring.Owners(key, g.cfg.Replication, g.isAlive)
	var best *backend
	for _, node := range owners {
		b := g.backends[node]
		if best == nil || b.inflight.Load() < best.inflight.Load() {
			best = b
		}
	}
	return best
}

// errUnavailable builds the typed 503 the gate sheds with.
func errUnavailable(msg string) error {
	return phomerr.Wrap(phomerr.CodeUnavailable, errors.New(msg))
}

// shedResponse writes the admission-control refusal: typed 503 with a
// Retry-After predicted by the cost model from the refusing backend's
// outstanding work.
func (g *Gateway) shedResponse(w http.ResponseWriter, b *backend) {
	g.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(g.model.RetryAfter(b.ledger.Outstanding())))
	serve.WriteTypedError(w, errUnavailable(
		fmt.Sprintf("backend %d over admission budget; retry later", b.node)))
}

// BackendHealth is one row of the gate's /healthz shard map.
type BackendHealth struct {
	URL    string `json:"url"`
	Node   int    `json:"node"`
	VNodes int    `json:"vnodes"`
	Alive  bool   `json:"alive"`
	// Ejected is the routing consequence spelled out: an ejected
	// backend owns no keys until it rejoins.
	Ejected          bool    `json:"ejected"`
	Inflight         int64   `json:"inflight"`
	OutstandingUnits float64 `json:"outstanding_units"`
	// HasSnapshot reports whether the gate holds a plan snapshot to
	// warm-start this backend with after a restart.
	HasSnapshot bool `json:"has_snapshot"`
	// Instances is the live-instance count the last successful probe
	// saw on this backend (instance state is sticky per replica).
	Instances int `json:"instances"`
}

// Health is the gate's /healthz body: tier-level counters plus the
// current shard map, so rebalances (ejections, rejoins, load skew) are
// observable without scraping every replica.
type Health struct {
	Status      string          `json:"status"`
	UptimeMS    int64           `json:"uptime_ms"`
	Replication int             `json:"replication"`
	Backends    []BackendHealth `json:"backends"`
	// Shed counts admission-control refusals (typed 503s minted by the
	// gate, not by a backend).
	Shed uint64 `json:"shed"`
	// CrossShardBatches counts /batch requests whose jobs spanned more
	// than one backend and were fanned out and merged.
	CrossShardBatches uint64 `json:"cross_shard_batches"`
	// GateRetries counts single-job hops that failed on a connection
	// error and were retried against the next live owner.
	GateRetries uint64 `json:"gate_retries"`
	// Instances is the tier-wide live-instance total as of the last
	// probe round (sum of the per-backend counts below).
	Instances int               `json:"instances"`
	HTTP      map[string]uint64 `json:"http,omitempty"`
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		serve.WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	h := Health{
		Status:            "ok",
		UptimeMS:          time.Since(g.start).Milliseconds(),
		Replication:       g.cfg.Replication,
		Shed:              g.shed.Load(),
		CrossShardBatches: g.crossShardBatches.Load(),
		GateRetries:       g.retries.Load(),
		HTTP:              make(map[string]uint64),
	}
	g.httpMu.Lock()
	for code, n := range g.httpByStatus {
		h.HTTP[strconv.Itoa(code)] = n
	}
	g.httpMu.Unlock()
	for _, b := range g.backends {
		b.mu.Lock()
		alive, snap, insts := b.alive, len(b.snapshot) > 0, b.lastInstances
		b.mu.Unlock()
		h.Instances += insts
		h.Backends = append(h.Backends, BackendHealth{
			URL:              b.url,
			Node:             b.node,
			VNodes:           g.ring.VNodes(),
			Alive:            alive,
			Ejected:          !alive,
			Inflight:         b.inflight.Load(),
			OutstandingUnits: b.ledger.Outstanding(),
			HasSnapshot:      snap,
			Instances:        insts,
		})
	}
	serve.WriteJSON(w, http.StatusOK, h)
}

// ProbeNow runs one synchronous health-probe round over all backends.
func (g *Gateway) ProbeNow() {
	for _, b := range g.backends {
		g.probe(b)
	}
}

// probe checks one backend's /healthz and reconciles routing state:
// consecutive failures eject, success rejoins, and a restart — seen
// either as a dead→alive transition or as an uptime_ms regression on a
// replica that was never probed as down — gets the stored plan
// snapshot pushed before traffic resumes, so it rejoins hot.
func (g *Gateway) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), defaultProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := b.client.Do(req)
	if err == nil {
		var hr serve.HealthResponse
		derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hr)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("healthz status %d (%v)", resp.StatusCode, derr)
		} else {
			b.mu.Lock()
			restarted := !b.alive || hr.UptimeMS < b.lastUptime
			snap := b.snapshot
			b.fails = 0
			b.lastUptime = hr.UptimeMS
			b.lastInstances = hr.Stats.Instances
			b.mu.Unlock()
			if restarted && len(snap) > 0 {
				g.pushSnapshot(b, snap)
			}
			b.mu.Lock()
			b.alive = true
			b.mu.Unlock()
			return
		}
	}
	_ = err
	b.mu.Lock()
	b.fails++
	if b.fails >= g.cfg.ProbeFailures {
		b.alive = false
	}
	b.mu.Unlock()
}

// PullSnapshots pulls /plans/export from every alive backend into the
// gate's snapshot store (and SnapshotDir when configured). It returns
// how many backends were snapshotted.
func (g *Gateway) PullSnapshots() int {
	n := 0
	for _, b := range g.backends {
		b.mu.Lock()
		alive := b.alive
		b.mu.Unlock()
		if !alive {
			continue
		}
		snap, err := g.fetchSnapshot(b)
		if err != nil || len(snap) == 0 {
			continue
		}
		b.mu.Lock()
		b.snapshot = snap
		b.mu.Unlock()
		if g.cfg.SnapshotDir != "" {
			_ = os.WriteFile(g.snapshotPath(b.node), snap, 0o644)
		}
		n++
	}
	return n
}

func (g *Gateway) fetchSnapshot(b *backend) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/plans/export", nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("plans/export status %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBody))
}

func (g *Gateway) pushSnapshot(b *backend, snap []byte) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/plans/import", bytes.NewReader(snap))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := b.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// sumStats adds src's counters into dst field-wise, by reflection so a
// new engine counter is merged without touching the gate.
func sumStats(dst *engine.Stats, src engine.Stats) {
	dv := reflect.ValueOf(dst).Elem()
	sv := reflect.ValueOf(src)
	for i := 0; i < dv.NumField(); i++ {
		switch f := dv.Field(i); f.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(f.Uint() + sv.Field(i).Uint())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(f.Int() + sv.Field(i).Int())
		}
	}
}
