package betadnf

import (
	"fmt"
	"math/big"
)

// Interval is a clause over path variables: the conjunction of the
// variables Lo … Hi inclusive. An interval with Hi < Lo is empty and makes
// the formula true.
type Interval struct {
	Lo, Hi int
}

// IntervalSystem is a positive DNF whose n variables are linearly ordered
// and whose clauses are intervals.
type IntervalSystem struct {
	NumVars int
	Clauses []Interval
}

// Prob returns the probability that at least one clause has all its
// variables true, with variable i true independently with probability
// probs[i].
//
// The dynamic program computes the complementary probability that no
// clause is fully true: scanning variables left to right, the state is
// the current streak of consecutive true variables (capped at the longest
// clause length), and a clause [l, r] fires exactly when the streak at r
// reaches r−l+1.
func (s *IntervalSystem) Prob(probs []*big.Rat) (*big.Rat, error) {
	if len(probs) != s.NumVars {
		return nil, fmt.Errorf("betadnf: %d probabilities for %d variables", len(probs), s.NumVars)
	}
	maxLen := 0
	// minEnd[r] = minimal clause length among clauses ending at r (0 = none).
	minEnd := make([]int, s.NumVars)
	for _, c := range s.Clauses {
		if c.Hi < c.Lo {
			return big.NewRat(1, 1), nil // empty clause: formula is true
		}
		if c.Lo < 0 || c.Hi >= s.NumVars {
			return nil, fmt.Errorf("betadnf: clause [%d,%d] out of range", c.Lo, c.Hi)
		}
		l := c.Hi - c.Lo + 1
		if l > maxLen {
			maxLen = l
		}
		if minEnd[c.Hi] == 0 || l < minEnd[c.Hi] {
			minEnd[c.Hi] = l
		}
	}
	if len(s.Clauses) == 0 {
		return new(big.Rat), nil // false
	}
	one := big.NewRat(1, 1)
	// dist[st] = probability that the scan survives so far with streak st.
	dist := make([]*big.Rat, maxLen+1)
	for i := range dist {
		dist[i] = new(big.Rat)
	}
	dist[0].SetInt64(1)
	next := make([]*big.Rat, maxLen+1)
	for i := range next {
		next[i] = new(big.Rat)
	}
	tmp := new(big.Rat)
	for r := 0; r < s.NumVars; r++ {
		for i := range next {
			next[i].SetInt64(0)
		}
		p := probs[r]
		q := tmp.Sub(one, p)
		for st, w := range dist {
			if w.Sign() == 0 {
				continue
			}
			// Variable r false: streak resets.
			next[0].Add(next[0], new(big.Rat).Mul(w, q))
			// Variable r true: streak extends (capped).
			nst := st + 1
			if nst > maxLen {
				nst = maxLen
			}
			if minEnd[r] != 0 && nst >= minEnd[r] {
				continue // a clause ending at r fired: world lost
			}
			next[nst].Add(next[nst], new(big.Rat).Mul(w, p))
		}
		dist, next = next, dist
	}
	alive := new(big.Rat)
	for _, w := range dist {
		alive.Add(alive, w)
	}
	return alive.Sub(one, alive), nil
}

// ChainSystem is a positive DNF over the parent edges of a rooted forest.
// Node v (v ≠ root) has Parent[v] ≥ 0 and a variable "edge above v". Roots
// have Parent[v] = −1 and no variable. A clause is attached to a node v
// and consists of the ChainLen[v] consecutive edges on the path from v
// towards the root, ending with v's parent edge; ChainLen[v] = 0 means no
// clause at v. When several clauses end at the same node, record the
// minimal length (the others are absorbed).
type ChainSystem struct {
	Parent   []int // per node; −1 for roots
	ChainLen []int // per node; 0 = no clause ends here
}

// Validate checks structural consistency: parents form a forest and chain
// lengths do not exceed node depths.
func (c *ChainSystem) Validate() error {
	n := len(c.Parent)
	if len(c.ChainLen) != n {
		return fmt.Errorf("betadnf: %d chain lengths for %d nodes", len(c.ChainLen), n)
	}
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	var depthOf func(v int) (int, error)
	depthOf = func(v int) (int, error) {
		if depth[v] >= 0 {
			return depth[v], nil
		}
		if depth[v] == -2 {
			return 0, fmt.Errorf("betadnf: parent cycle at node %d", v)
		}
		depth[v] = -2
		d := 0
		if p := c.Parent[v]; p >= 0 {
			if p >= len(c.Parent) {
				return 0, fmt.Errorf("betadnf: parent %d out of range", p)
			}
			pd, err := depthOf(p)
			if err != nil {
				return 0, err
			}
			d = pd + 1
		}
		depth[v] = d
		return d, nil
	}
	for v := 0; v < n; v++ {
		d, err := depthOf(v)
		if err != nil {
			return err
		}
		if c.ChainLen[v] > d {
			return fmt.Errorf("betadnf: clause of length %d at node %d of depth %d", c.ChainLen[v], v, d)
		}
	}
	return nil
}

// Prob returns the probability that at least one clause has all its edges
// present, with the edge above node v present independently with
// probability probs[v] (probs of roots are ignored). It is the one-shot
// form of Compile followed by CompiledChain.Prob.
func (c *ChainSystem) Prob(probs []*big.Rat) (*big.Rat, error) {
	cc, err := c.Compile()
	if err != nil {
		return nil, err
	}
	return cc.Prob(probs)
}

// CompiledChain is the probability-independent part of the chain-system
// dynamic program: validated structure, children lists, traversal order,
// and the live-subtree pruning mask. Compile once and evaluate under
// many probability assignments (the plans of internal/plan do exactly
// this); evaluation then runs pure arithmetic, with no per-call
// validation or traversal setup. A CompiledChain is immutable and safe
// for concurrent Prob calls.
type CompiledChain struct {
	chainLen []int
	children [][]int
	roots    []int
	order    []int // pre-order over live subtrees only
	live     []bool
	cap0     int // longest clause; 0 means no clause at all
}

// Compile validates the system and precomputes the evaluation structure.
func (c *ChainSystem) Compile() (*CompiledChain, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := len(c.Parent)
	cap0 := 0
	for _, l := range c.ChainLen {
		if l > cap0 {
			cap0 = l
		}
	}
	cc := &CompiledChain{
		chainLen: append([]int(nil), c.ChainLen...),
		cap0:     cap0,
	}
	if cap0 == 0 {
		return cc, nil // no clause: the formula is constant false
	}
	children := make([][]int, n)
	var roots []int
	for v := 0; v < n; v++ {
		if p := c.Parent[v]; p >= 0 {
			children[p] = append(children[p], v)
		} else {
			roots = append(roots, v)
		}
	}
	// Iterative pre-order (children after their parent).
	order := make([]int, 0, n)
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		stack = append(stack, children[v]...)
	}
	// live[v]: the subtree of v contains a clause (bottom-up on the
	// reversed pre-order). Dead subtrees are pruned from evaluation: no
	// clause can fire there under any streak, so their f ≡ 1 and a dead
	// child's factor is exactly q + p·1 = 1. On sparse clause sets
	// (labeled lineages, where only nodes ending a label-matching path
	// carry a clause) this collapses evaluation from O(nodes × longest
	// clause) to O(clause-bearing ancestors × longest clause) big.Rat
	// operations.
	live := make([]bool, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		live[v] = c.ChainLen[v] > 0
		for _, u := range children[v] {
			if live[u] {
				live[v] = true
				break
			}
		}
	}
	// Keep only live nodes in the traversal order; dead subtrees are
	// never visited at evaluation time.
	liveOrder := make([]int, 0, len(order))
	for _, v := range order {
		if live[v] {
			liveOrder = append(liveOrder, v)
		}
	}
	cc.children = children
	cc.roots = roots
	cc.order = liveOrder
	cc.live = live
	return cc, nil
}

// Prob evaluates the chain dynamic program under probs (indexed by
// node; probs of roots are ignored; length must match the system).
//
// The dynamic program computes the complementary probability top-down:
// f(v, s) is the probability that no clause fires in the subtree of v
// given that the streak of consecutive present edges ending at v is s.
// Subtrees of distinct children are edge-disjoint, hence independent
// given s, so f multiplies over children.
func (cc *CompiledChain) Prob(probs []*big.Rat) (*big.Rat, error) {
	n := len(cc.chainLen)
	if len(probs) != n {
		return nil, fmt.Errorf("betadnf: %d probabilities for %d nodes", len(probs), n)
	}
	if cc.cap0 == 0 {
		return new(big.Rat), nil
	}
	// f[v][s] for s in 0..cap0, computed only on live subtrees.
	f := make([][]*big.Rat, n)
	one := big.NewRat(1, 1)
	for i := len(cc.order) - 1; i >= 0; i-- {
		v := cc.order[i]
		fv := make([]*big.Rat, cc.cap0+1)
		for s := 0; s <= cc.cap0; s++ {
			acc := big.NewRat(1, 1)
			for _, u := range cc.children[v] {
				if !cc.live[u] {
					continue // f[u] ≡ 1: the child's factor is q + p = 1
				}
				p := probs[u]
				q := new(big.Rat).Sub(one, p)
				// Edge to u absent: child streak 0.
				term := new(big.Rat).Mul(q, f[u][0])
				// Edge to u present: streak extends; clause at u may fire.
				ns := s + 1
				if ns > cc.cap0 {
					ns = cc.cap0
				}
				if !(cc.chainLen[u] != 0 && ns >= cc.chainLen[u]) {
					term.Add(term, new(big.Rat).Mul(p, f[u][ns]))
				}
				acc.Mul(acc, term)
			}
			fv[s] = acc
		}
		f[v] = fv
	}
	alive := big.NewRat(1, 1)
	for _, r := range cc.roots {
		if cc.live[r] {
			alive.Mul(alive, f[r][0])
		}
	}
	return alive.Sub(one, alive), nil
}
