package betadnf

import "fmt"

// ProbFloat is the float64 counterpart of Prob, used by the ablation
// experiment E18 to quantify the cost of exact rational arithmetic.
// Unlike Prob it accumulates rounding error; the tests bound the drift
// against the exact result.
func (s *IntervalSystem) ProbFloat(probs []float64) (float64, error) {
	if len(probs) != s.NumVars {
		return 0, fmt.Errorf("betadnf: %d probabilities for %d variables", len(probs), s.NumVars)
	}
	maxLen := 0
	minEnd := make([]int, s.NumVars)
	for _, c := range s.Clauses {
		if c.Hi < c.Lo {
			return 1, nil
		}
		if c.Lo < 0 || c.Hi >= s.NumVars {
			return 0, fmt.Errorf("betadnf: clause [%d,%d] out of range", c.Lo, c.Hi)
		}
		l := c.Hi - c.Lo + 1
		if l > maxLen {
			maxLen = l
		}
		if minEnd[c.Hi] == 0 || l < minEnd[c.Hi] {
			minEnd[c.Hi] = l
		}
	}
	if len(s.Clauses) == 0 {
		return 0, nil
	}
	dist := make([]float64, maxLen+1)
	next := make([]float64, maxLen+1)
	dist[0] = 1
	for r := 0; r < s.NumVars; r++ {
		for i := range next {
			next[i] = 0
		}
		p := probs[r]
		for st, w := range dist {
			if w == 0 {
				continue
			}
			next[0] += w * (1 - p)
			nst := st + 1
			if nst > maxLen {
				nst = maxLen
			}
			if minEnd[r] != 0 && nst >= minEnd[r] {
				continue
			}
			next[nst] += w * p
		}
		dist, next = next, dist
	}
	alive := 0.0
	for _, w := range dist {
		alive += w
	}
	return 1 - alive, nil
}

// ProbFloat is the float64 counterpart of ChainSystem.Prob (see
// IntervalSystem.ProbFloat).
func (c *ChainSystem) ProbFloat(probs []float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	n := len(c.Parent)
	if len(probs) != n {
		return 0, fmt.Errorf("betadnf: %d probabilities for %d nodes", len(probs), n)
	}
	cap0 := 0
	hasClause := false
	for _, l := range c.ChainLen {
		if l > cap0 {
			cap0 = l
		}
		if l > 0 {
			hasClause = true
		}
	}
	if !hasClause {
		return 0, nil
	}
	children := make([][]int, n)
	var roots []int
	for v := 0; v < n; v++ {
		if p := c.Parent[v]; p >= 0 {
			children[p] = append(children[p], v)
		} else {
			roots = append(roots, v)
		}
	}
	order := make([]int, 0, n)
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		stack = append(stack, children[v]...)
	}
	f := make([][]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		fv := make([]float64, cap0+1)
		for s := 0; s <= cap0; s++ {
			acc := 1.0
			for _, u := range children[v] {
				p := probs[u]
				term := (1 - p) * f[u][0]
				ns := s + 1
				if ns > cap0 {
					ns = cap0
				}
				if !(c.ChainLen[u] != 0 && ns >= c.ChainLen[u]) {
					term += p * f[u][ns]
				}
				acc *= term
			}
			fv[s] = acc
		}
		f[v] = fv
	}
	alive := 1.0
	for _, r := range roots {
		alive *= f[r][0]
	}
	return 1 - alive, nil
}
